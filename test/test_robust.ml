open Lepts_core
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Plan = Lepts_preempt.Plan
module Model = Lepts_power.Model
module Policy = Lepts_dvs.Policy
module Event_sim = Lepts_sim.Event_sim
module Outcome = Lepts_sim.Outcome
module Runner = Lepts_sim.Runner
module Sampler = Lepts_sim.Sampler
module Rng = Lepts_prng.Xoshiro256
module Fault_injector = Lepts_robust.Fault_injector
module Containment = Lepts_robust.Containment
module Robust_solver = Lepts_robust.Robust_solver
module Campaign = Lepts_robust.Campaign

let power = Model.ideal ~v_min:0.5 ~v_max:4. ()

let preemptive_acs () =
  let ts =
    Task_set.scale_wcec_to_utilization
      (Task_set.create
         [ Task.with_ratio ~name:"a" ~period:4 ~wcec:4. ~ratio:0.1;
           Task.with_ratio ~name:"b" ~period:6 ~wcec:5. ~ratio:0.1;
           Task.with_ratio ~name:"c" ~period:12 ~wcec:8. ~ratio:0.1 ])
      ~power ~target:0.7
  in
  let plan = Plan.expand ts in
  let acs, _ = Result.get_ok (Solver.solve_acs ~plan ~power ()) in
  (plan, acs)

let moderate_spec =
  { Fault_injector.seed = 42; overrun_prob = 0.3; overrun_factor = 2.;
    jitter_prob = 0.3; jitter_frac = 0.2; denial_prob = 0.1 }

(* --- Fault injector ------------------------------------------------------ *)

let test_injector_deterministic () =
  let plan, _ = preemptive_acs () in
  let totals = Sampler.fixed plan ~value:`Acec in
  let draw () = Fault_injector.perturb moderate_spec ~round:7 plan ~totals in
  let a = draw () and b = draw () in
  Alcotest.(check bool) "same totals" true
    (a.Fault_injector.totals = b.Fault_injector.totals);
  Alcotest.(check bool) "same trace" true
    (Fault_injector.trace a = Fault_injector.trace b);
  (* Different rounds reseed the generator. *)
  let c = Fault_injector.perturb moderate_spec ~round:8 plan ~totals in
  Alcotest.(check bool) "round changes the draw" true
    (Fault_injector.trace a <> Fault_injector.trace c)

let test_injector_zero_is_identity () =
  let plan, _ = preemptive_acs () in
  let totals = Sampler.fixed plan ~value:`Acec in
  let s = Fault_injector.perturb Fault_injector.zero ~round:3 plan ~totals in
  Alcotest.(check bool) "is_zero" true (Fault_injector.is_zero Fault_injector.zero);
  Alcotest.(check bool) "totals unchanged" true (s.Fault_injector.totals = totals);
  Alcotest.(check bool) "no events" true (Fault_injector.trace s = []);
  Alcotest.(check bool) "budget still enforced" true
    s.Fault_injector.faults.Event_sim.enforce_budget

let test_injector_overruns_exceed_wcec () =
  let plan, _ = preemptive_acs () in
  let ts = plan.Plan.task_set in
  let totals = Sampler.fixed plan ~value:`Wcec in
  let spec = { moderate_spec with overrun_prob = 1.; jitter_prob = 0.; denial_prob = 0. } in
  let counters = Fault_injector.fresh_counters () in
  let s = Fault_injector.perturb spec ~counters ~round:0 plan ~totals in
  let instances =
    Array.fold_left (fun acc per -> acc + Array.length per) 0 totals
  in
  Alcotest.(check int) "every instance overruns" instances
    counters.Fault_injector.overruns;
  Array.iteri
    (fun i per ->
      let wcec = (Task_set.task ts i).Task.wcec in
      Array.iter
        (fun w ->
          Alcotest.(check (float 1e-9)) "actual = factor * wcec"
            (spec.Fault_injector.overrun_factor *. wcec) w)
        per)
    s.Fault_injector.totals;
  Alcotest.(check bool) "budget enforcement off" false
    s.Fault_injector.faults.Event_sim.enforce_budget

let test_injector_validates_spec () =
  let bad = { moderate_spec with overrun_prob = 1.5 } in
  Alcotest.(check bool) "rejects out-of-range probability" true
    (try
       Fault_injector.validate bad;
       false
     with Invalid_argument _ -> true)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_injector_validation_names_each_field () =
  (* Every field has its own rejection, the message names the offending
     field, and NaN never slips through a comparison. *)
  let rejected ~field spec =
    match Fault_injector.validate spec with
    | () -> Alcotest.failf "field %s: bad value accepted" field
    | exception Invalid_argument msg ->
      if not (contains ~sub:field msg) then
        Alcotest.failf "field %s: message %S does not name it" field msg
  in
  let nan = Float.nan in
  rejected ~field:"overrun_prob" { moderate_spec with overrun_prob = -0.1 };
  rejected ~field:"overrun_prob" { moderate_spec with overrun_prob = 1.1 };
  rejected ~field:"overrun_prob" { moderate_spec with overrun_prob = nan };
  rejected ~field:"jitter_prob" { moderate_spec with jitter_prob = -1. };
  rejected ~field:"jitter_prob" { moderate_spec with jitter_prob = 2. };
  rejected ~field:"jitter_prob" { moderate_spec with jitter_prob = nan };
  rejected ~field:"denial_prob" { moderate_spec with denial_prob = -0.5 };
  rejected ~field:"denial_prob" { moderate_spec with denial_prob = 1.5 };
  rejected ~field:"denial_prob" { moderate_spec with denial_prob = nan };
  rejected ~field:"overrun_factor" { moderate_spec with overrun_factor = 0.5 };
  rejected ~field:"overrun_factor" { moderate_spec with overrun_factor = -1. };
  rejected ~field:"overrun_factor" { moderate_spec with overrun_factor = infinity };
  rejected ~field:"overrun_factor" { moderate_spec with overrun_factor = nan };
  rejected ~field:"jitter_frac" { moderate_spec with jitter_frac = -0.1 };
  rejected ~field:"jitter_frac" { moderate_spec with jitter_frac = 1. };
  rejected ~field:"jitter_frac" { moderate_spec with jitter_frac = nan };
  (* Boundary values are legal. *)
  Fault_injector.validate
    { moderate_spec with overrun_prob = 0.; jitter_prob = 1.; denial_prob = 1.;
      overrun_factor = 1.; jitter_frac = 0. }

(* --- Zero-rate scenario is bit-identical --------------------------------- *)

let test_runner_zero_spec_identity () =
  let plan, acs = preemptive_acs () in
  let scenario ~round ~totals =
    let s = Fault_injector.perturb Fault_injector.zero ~round plan ~totals in
    (s.Fault_injector.totals, Some s.Fault_injector.faults)
  in
  let plain =
    Runner.simulate ~rounds:40 ~schedule:acs ~policy:Policy.Greedy
      ~rng:(Rng.create ~seed:17) ()
  in
  let faulted =
    Runner.simulate ~rounds:40 ~scenario ~schedule:acs ~policy:Policy.Greedy
      ~rng:(Rng.create ~seed:17) ()
  in
  Alcotest.(check (float 0.)) "mean identical" plain.Runner.mean_energy
    faulted.Runner.mean_energy;
  Alcotest.(check (float 0.)) "stddev identical" plain.Runner.stddev_energy
    faulted.Runner.stddev_energy;
  Alcotest.(check (float 0.)) "p95 identical" plain.Runner.p95_energy
    faulted.Runner.p95_energy;
  Alcotest.(check (float 0.)) "p99 identical" plain.Runner.p99_energy
    faulted.Runner.p99_energy;
  Alcotest.(check int) "misses identical" plain.Runner.deadline_misses
    faulted.Runner.deadline_misses;
  Alcotest.(check int) "nothing shed" 0 faulted.Runner.shed_instances

(* --- Containment regression ----------------------------------------------- *)

(* The shipped regression scenario for the containment guarantee: a
   severe (10x WCEC) overrun on the first instance of the
   highest-priority task. Unprotected, the unbudgeted residue hogs the
   processor at top priority and drags several other instances past
   their deadlines; contained, the hopeless instance is shed at its
   first dispatch and only it misses. *)
let severe_overrun_scenario () =
  let plan, acs = preemptive_acs () in
  let ts = plan.Plan.task_set in
  let totals = Sampler.fixed plan ~value:`Wcec in
  totals.(0).(0) <- 10. *. (Task_set.task ts 0).Task.wcec;
  let faults =
    { Event_sim.release_offsets = Array.map (Array.map (fun _ -> 0.)) totals;
      enforce_budget = false;
      deny_transition = (fun ~task:_ ~instance:_ ~sub:_ ~now:_ ~requested:_ -> false) }
  in
  (acs, faults, totals)

let test_containment_fewer_misses () =
  let acs, faults, totals = severe_overrun_scenario () in
  let unprotected =
    Event_sim.run ~faults ~schedule:acs ~policy:Policy.Greedy ~totals ()
  in
  let counters = Containment.fresh_counters () in
  let control = Containment.control ~power ~counters () in
  let contained =
    Event_sim.run ~faults ~control ~schedule:acs ~policy:Policy.Greedy ~totals ()
  in
  Alcotest.(check bool) "overrun cascades without containment" true
    (unprotected.Outcome.deadline_misses > 1);
  Alcotest.(check bool) "containment strictly reduces misses" true
    (contained.Outcome.deadline_misses < unprotected.Outcome.deadline_misses);
  Alcotest.(check int) "hopeless instance shed" 1 contained.Outcome.shed_instances;
  Alcotest.(check int) "shed counter agrees" 1 counters.Containment.shed_instances;
  (* Only the shed instance misses: its residue no longer steals time. *)
  Alcotest.(check int) "one miss under containment" 1
    contained.Outcome.deadline_misses

let test_containment_escalates_recoverable_overrun () =
  (* A mild overrun that still fits before the deadline at v_max must be
     escalated, not shed: the instance completes and nothing misses. *)
  let plan, acs = preemptive_acs () in
  let ts = plan.Plan.task_set in
  let totals = Sampler.fixed plan ~value:`Bcec in
  totals.(0).(0) <- 1.2 *. (Task_set.task ts 0).Task.wcec;
  let faults =
    { Event_sim.release_offsets = Array.map (Array.map (fun _ -> 0.)) totals;
      enforce_budget = false;
      deny_transition = (fun ~task:_ ~instance:_ ~sub:_ ~now:_ ~requested:_ -> false) }
  in
  let counters = Containment.fresh_counters () in
  let control = Containment.control ~power ~counters () in
  let o = Event_sim.run ~faults ~control ~schedule:acs ~policy:Policy.Greedy ~totals () in
  Alcotest.(check int) "nothing shed" 0 o.Outcome.shed_instances;
  Alcotest.(check int) "no misses" 0 o.Outcome.deadline_misses;
  Alcotest.(check bool) "overrun was escalated" true
    (counters.Containment.escalated_instances >= 1)

(* A one-task schedule isolates containment boundary behaviour from
   preemption effects: the task owns the whole frame. *)
let solo_acs () =
  let ts =
    Task_set.scale_wcec_to_utilization
      (Task_set.create [ Task.with_ratio ~name:"solo" ~period:4 ~wcec:2. ~ratio:0.5 ])
      ~power ~target:0.5
  in
  let plan = Plan.expand ts in
  let acs, _ = Result.get_ok (Solver.solve_acs ~plan ~power ()) in
  (plan, acs)

let no_faults totals =
  { Event_sim.release_offsets = Array.map (Array.map (fun _ -> 0.)) totals;
    enforce_budget = false;
    deny_transition = (fun ~task:_ ~instance:_ ~sub:_ ~now:_ ~requested:_ -> false) }

let test_containment_overrun_on_deadline_tick () =
  (* Boundary between escalation and shedding: an overrun whose total
     work at v_max completes exactly on the deadline tick. It is not
     hopeless (v_max still makes the deadline), so it must be escalated
     and finish — not shed, not counted as a miss. *)
  let plan, acs = solo_acs () in
  let totals = Sampler.fixed plan ~value:`Wcec in
  let t_cycle = Model.cycle_time power ~v:power.Model.v_max in
  totals.(0).(0) <- 4.0 /. t_cycle;
  (* the entire [0, 4) frame at v_max *)
  let counters = Containment.fresh_counters () in
  let control = Containment.control ~power ~counters () in
  let o =
    Event_sim.run ~faults:(no_faults totals) ~control ~schedule:acs
      ~policy:Policy.Greedy ~totals ()
  in
  Alcotest.(check int) "exact-deadline overrun is not shed" 0
    o.Outcome.shed_instances;
  Alcotest.(check int) "and does not miss" 0 o.Outcome.deadline_misses;
  Alcotest.(check bool) "but is escalated to v_max" true
    (counters.Containment.escalated_instances >= 1);
  (* One cycle more and the instance is hopeless: shed, and only that
     instance misses. *)
  let totals = Sampler.fixed plan ~value:`Wcec in
  totals.(0).(0) <- (4.0 /. t_cycle) +. 1.;
  let counters = Containment.fresh_counters () in
  let control = Containment.control ~power ~counters () in
  let o =
    Event_sim.run ~faults:(no_faults totals) ~control ~schedule:acs
      ~policy:Policy.Greedy ~totals ()
  in
  Alcotest.(check int) "past the tick it is shed" 1 o.Outcome.shed_instances;
  Alcotest.(check int) "the shed instance is the only miss" 1
    o.Outcome.deadline_misses

let test_containment_zero_work_instance () =
  (* The other boundary: a sub-instance whose actual workload is zero
     (a degenerate ACEC draw). It completes at its release, consumes no
     energy, and must trigger neither escalation nor shedding. *)
  let plan, acs = solo_acs () in
  let totals = Sampler.fixed plan ~value:`Wcec in
  totals.(0).(0) <- 0.;
  let counters = Containment.fresh_counters () in
  let control = Containment.control ~power ~counters () in
  let o =
    Event_sim.run ~faults:(no_faults totals) ~control ~schedule:acs
      ~policy:Policy.Greedy ~totals ()
  in
  Alcotest.(check int) "no misses" 0 o.Outcome.deadline_misses;
  Alcotest.(check int) "nothing shed" 0 o.Outcome.shed_instances;
  Alcotest.(check int) "nothing escalated" 0
    counters.Containment.escalated_instances

(* --- Campaign ------------------------------------------------------------- *)

let test_campaign_deterministic () =
  let _, acs = preemptive_acs () in
  let run () =
    Campaign.run ~rounds:30 ~spec:moderate_spec ~schedule:acs
      ~policy:Policy.Greedy ~seed:5 ()
  in
  let a = run () and b = run () in
  Alcotest.(check (float 0.)) "faulty mean identical"
    a.Campaign.faulty.Campaign.summary.Runner.mean_energy
    b.Campaign.faulty.Campaign.summary.Runner.mean_energy;
  Alcotest.(check int) "faulty misses identical"
    a.Campaign.faulty.Campaign.summary.Runner.deadline_misses
    b.Campaign.faulty.Campaign.summary.Runner.deadline_misses;
  Alcotest.(check int) "overrun counts identical"
    a.Campaign.faulty.Campaign.faults.Fault_injector.overruns
    b.Campaign.faulty.Campaign.faults.Fault_injector.overruns;
  Alcotest.(check (float 0.)) "contained mean identical"
    a.Campaign.contained.Campaign.summary.Runner.mean_energy
    b.Campaign.contained.Campaign.summary.Runner.mean_energy

let test_campaign_arms_share_draws () =
  let _, acs = preemptive_acs () in
  let r =
    Campaign.run ~rounds:30 ~spec:Fault_injector.zero ~schedule:acs
      ~policy:Policy.Greedy ~seed:5 ()
  in
  (* With a zero spec all three arms replay the same fault-free draws. *)
  Alcotest.(check (float 0.)) "faulty arm = clean"
    r.Campaign.clean.Runner.mean_energy
    r.Campaign.faulty.Campaign.summary.Runner.mean_energy;
  Alcotest.(check (float 0.)) "contained arm = clean"
    r.Campaign.clean.Runner.mean_energy
    r.Campaign.contained.Campaign.summary.Runner.mean_energy;
  Alcotest.(check int) "no misses anywhere" 0
    (r.Campaign.clean.Runner.deadline_misses
     + r.Campaign.faulty.Campaign.summary.Runner.deadline_misses
     + r.Campaign.contained.Campaign.summary.Runner.deadline_misses)

let test_campaign_parallel_bit_identical () =
  (* The full report — every summary field and every fault/containment
     counter — must not depend on the worker-domain count. *)
  let _, acs = preemptive_acs () in
  let run jobs =
    Campaign.run ~rounds:30 ~jobs ~spec:moderate_spec ~schedule:acs
      ~policy:Policy.Greedy ~seed:5 ()
  in
  let seq = run 1 in
  List.iter
    (fun jobs ->
      let par = run jobs in
      Alcotest.(check bool)
        (Printf.sprintf "report identical at jobs=%d" jobs)
        true (seq = par))
    [ 2; 3 ]

let test_runner_percentiles_ordered () =
  let _, acs = preemptive_acs () in
  let s =
    Runner.simulate ~rounds:100 ~schedule:acs ~policy:Policy.Greedy
      ~rng:(Rng.create ~seed:13) ()
  in
  Alcotest.(check bool) "min <= p95" true (s.Runner.min_energy <= s.Runner.p95_energy);
  Alcotest.(check bool) "p95 <= p99" true (s.Runner.p95_energy <= s.Runner.p99_energy);
  Alcotest.(check bool) "p99 <= max" true (s.Runner.p99_energy <= s.Runner.max_energy)

(* --- Resilient solve pipeline --------------------------------------------- *)

let zero_budget = { Robust_solver.max_outer = 0; max_inner = 0; wall_budget = None }

let test_robust_solver_default_uses_acs () =
  let plan, _ = preemptive_acs () in
  match Robust_solver.solve ~plan ~power () with
  | Error _ -> Alcotest.fail "default pipeline failed"
  | Ok (s, d) ->
    Alcotest.(check bool) "acs chosen" true (d.Robust_solver.chosen = Robust_solver.Acs);
    Alcotest.(check bool) "no failed attempts" true (d.Robust_solver.attempts = []);
    Alcotest.(check bool) "feasible" true (Validate.is_feasible s)

let test_robust_solver_falls_back_to_wcs () =
  let plan, _ = preemptive_acs () in
  let config = { Robust_solver.default_config with acs = zero_budget } in
  match Robust_solver.solve ~config ~plan ~power () with
  | Error _ -> Alcotest.fail "pipeline must survive a failing ACS stage"
  | Ok (s, d) ->
    Alcotest.(check bool) "wcs chosen" true (d.Robust_solver.chosen = Robust_solver.Wcs);
    Alcotest.(check bool) "acs failure named" true
      (List.exists
         (fun (stage, why) ->
           stage = Robust_solver.Acs
           && why = "iteration budget exhausted before start")
         d.Robust_solver.attempts);
    Alcotest.(check bool) "feasible" true (Validate.is_feasible s)

let test_robust_solver_falls_back_to_rm () =
  let plan, _ = preemptive_acs () in
  let config = { Robust_solver.acs = zero_budget; wcs = zero_budget } in
  match Robust_solver.solve ~config ~plan ~power () with
  | Error _ -> Alcotest.fail "RM fallback must not fail on a schedulable set"
  | Ok (s, d) ->
    Alcotest.(check bool) "rm chosen" true
      (d.Robust_solver.chosen = Robust_solver.Rm_vmax);
    Alcotest.(check int) "both NLP stages failed" 2
      (List.length d.Robust_solver.attempts);
    Alcotest.(check bool) "no NLP stats" true (d.Robust_solver.stats = None);
    Alcotest.(check bool) "feasible" true (Validate.is_feasible s)

let test_robust_solver_feasible_on_all_seed_workloads () =
  (* The acceptance property: even with ACS forced to fail, every seed
     workload still yields a feasible schedule via the fallback chain. *)
  let config = { Robust_solver.default_config with acs = zero_budget } in
  List.iter
    (fun n ->
      let gen_config = Lepts_workloads.Random_gen.default_config ~n_tasks:n ~ratio:0.4 in
      let ts =
        Result.get_ok
          (Lepts_workloads.Random_gen.generate gen_config ~power
             ~rng:(Rng.create ~seed:(100 + n)))
      in
      let plan = Plan.expand ts in
      match Robust_solver.solve ~config ~plan ~power () with
      | Error e ->
        Alcotest.failf "n=%d failed: %a" n Solver.pp_error e
      | Ok (s, d) ->
        Alcotest.(check bool) "not acs" true
          (d.Robust_solver.chosen <> Robust_solver.Acs);
        if not (Validate.is_feasible s) then
          Alcotest.failf "n=%d fallback schedule infeasible" n)
    [ 2; 3; 4 ]

let test_robust_solver_unschedulable () =
  (* Utilization far above 1 at v_max: every stage must fail and the
     pipeline reports Unschedulable. *)
  let ts =
    Task_set.create
      [ Task.create ~name:"t1" ~period:2 ~wcec:30. ~acec:20. ~bcec:10.;
        Task.create ~name:"t2" ~period:4 ~wcec:30. ~acec:20. ~bcec:10. ]
  in
  let plan = Plan.expand ts in
  match Robust_solver.solve ~plan ~power () with
  | Ok _ -> Alcotest.fail "accepted an unschedulable task set"
  | Error Solver.Unschedulable -> ()
  | Error e -> Alcotest.failf "expected Unschedulable, got %a" Solver.pp_error e

let test_robust_solver_budget_expiry_annotated () =
  (* A failing stage whose wall budget is spent must say so in its own
     diagnostic — stage name plus elapsed/budget seconds — so a
     multi-stage report never loses which stage timed out. A zero wall
     budget is deterministically spent by the time the failure is
     recorded. *)
  let plan, _ = preemptive_acs () in
  let config =
    { Robust_solver.default_config with
      acs = { Robust_solver.max_outer = 0; max_inner = 0; wall_budget = Some 0. } }
  in
  match Robust_solver.solve ~config ~plan ~power () with
  | Error _ -> Alcotest.fail "pipeline must survive the expired stage"
  | Ok (_, d) ->
    Alcotest.(check bool) "wcs chosen" true (d.Robust_solver.chosen = Robust_solver.Wcs);
    let acs_reason =
      match List.assoc_opt Robust_solver.Acs d.Robust_solver.attempts with
      | Some why -> why
      | None -> Alcotest.fail "ACS failure missing from diagnostics"
    in
    Alcotest.(check bool) "diagnostic names the expired stage" true
      (contains ~sub:"[acs wall budget expired" acs_reason);
    Alcotest.(check bool) "and the budget" true
      (contains ~sub:"of 0.000s budget]" acs_reason)

let test_robust_solver_skip_acs () =
  (* The circuit-open route: the chain starts at WCS and the skip is
     recorded so a degraded schedule still says why. *)
  let plan, _ = preemptive_acs () in
  match Robust_solver.solve ~skip_acs:true ~plan ~power () with
  | Error _ -> Alcotest.fail "skip_acs must still solve via WCS"
  | Ok (s, d) ->
    Alcotest.(check bool) "wcs chosen" true (d.Robust_solver.chosen = Robust_solver.Wcs);
    Alcotest.(check bool) "skip recorded in diagnostics" true
      (d.Robust_solver.attempts
      = [ (Robust_solver.Acs, "skipped (circuit open)") ]);
    Alcotest.(check bool) "feasible" true (Validate.is_feasible s)

let test_diagnostics_printer () =
  let d =
    { Robust_solver.attempts = [ (Robust_solver.Acs, "stalled") ];
      chosen = Robust_solver.Wcs; stats = None }
  in
  let s = String.lowercase_ascii (Format.asprintf "%a" Robust_solver.pp_diagnostics d) in
  Alcotest.(check bool) "names the fallback" true (contains ~sub:"wcs" s);
  Alcotest.(check bool) "names the failed stage" true (contains ~sub:"acs" s)

let suite =
  [ ("injector determinism", `Quick, test_injector_deterministic);
    ("zero spec is identity", `Quick, test_injector_zero_is_identity);
    ("overruns scale WCEC", `Quick, test_injector_overruns_exceed_wcec);
    ("spec validation", `Quick, test_injector_validates_spec);
    ("spec validation names each field", `Quick,
     test_injector_validation_names_each_field);
    ("zero spec runner identity", `Quick, test_runner_zero_spec_identity);
    ("containment reduces misses", `Quick, test_containment_fewer_misses);
    ("recoverable overrun escalated", `Quick, test_containment_escalates_recoverable_overrun);
    ("overrun on the deadline tick", `Quick,
     test_containment_overrun_on_deadline_tick);
    ("zero-work instance benign", `Quick, test_containment_zero_work_instance);
    ("campaign determinism", `Quick, test_campaign_deterministic);
    ("campaign arms share draws", `Quick, test_campaign_arms_share_draws);
    ("campaign parallel bit-identical", `Quick, test_campaign_parallel_bit_identical);
    ("runner percentiles ordered", `Quick, test_runner_percentiles_ordered);
    ("robust solver default", `Quick, test_robust_solver_default_uses_acs);
    ("fallback to WCS", `Quick, test_robust_solver_falls_back_to_wcs);
    ("fallback to RM", `Quick, test_robust_solver_falls_back_to_rm);
    ("feasible on seed workloads", `Quick, test_robust_solver_feasible_on_all_seed_workloads);
    ("unschedulable reported", `Quick, test_robust_solver_unschedulable);
    ("budget expiry annotated", `Quick, test_robust_solver_budget_expiry_annotated);
    ("skip_acs records the skip", `Quick, test_robust_solver_skip_acs);
    ("diagnostics printer", `Quick, test_diagnostics_printer) ]
