open Lepts_par

let test_matches_sequential () =
  let f i = (i * 31) + (i mod 7) in
  List.iter
    (fun n ->
      let expected = Array.init n f in
      List.iter
        (fun jobs ->
          let got, _ = Pool.run ~jobs ~n ~f in
          Alcotest.(check (array int))
            (Printf.sprintf "n=%d jobs=%d" n jobs)
            expected got)
        [ 1; 2; 3; 5; 16 ])
    [ 0; 1; 2; 7; 100; 1000 ]

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "jobs=%d" jobs)
        (Failure "boom")
        (fun () ->
          ignore
            (Pool.run ~jobs ~n:50 ~f:(fun i ->
                 if i = 37 then failwith "boom" else i))))
    [ 1; 3 ]

let test_invalid_args () =
  Alcotest.check_raises "jobs = 0" (Invalid_argument "Pool.run: jobs must be positive")
    (fun () -> ignore (Pool.run ~jobs:0 ~n:1 ~f:(fun i -> i)));
  Alcotest.check_raises "n < 0" (Invalid_argument "Pool.run: n must be non-negative")
    (fun () -> ignore (Pool.run ~jobs:1 ~n:(-1) ~f:(fun i -> i)))

let test_stats_accounting () =
  let n = 200 in
  let _, stats = Pool.run ~jobs:3 ~n ~f:(fun i -> i) in
  Alcotest.(check int) "items" n stats.Pool.items;
  Alcotest.(check int) "per-domain sums to n" n
    (Array.fold_left ( + ) 0 stats.Pool.per_domain_items);
  Alcotest.(check int) "jobs recorded" 3 stats.Pool.jobs;
  Alcotest.(check int) "one busy slot per domain" 3
    (Array.length stats.Pool.per_domain_busy_s)

let test_jobs_capped_at_n () =
  (* More workers than items: capped, and every index still computed once. *)
  let got, stats = Pool.run ~jobs:16 ~n:3 ~f:(fun i -> i * i) in
  Alcotest.(check (array int)) "values" [| 0; 1; 4 |] got;
  Alcotest.(check bool) "jobs capped" true (stats.Pool.jobs <= 3);
  Alcotest.(check int) "per-domain sums to n" 3
    (Array.fold_left ( + ) 0 stats.Pool.per_domain_items)

let test_empty () =
  let got, stats = Pool.run ~jobs:4 ~n:0 ~f:(fun _ -> assert false) in
  Alcotest.(check int) "no results" 0 (Array.length got);
  Alcotest.(check int) "no items" 0 stats.Pool.items

let test_default_jobs_positive () =
  Alcotest.(check bool) "at least one" true (Pool.default_jobs () >= 1)

let test_pool_reuse_across_submits () =
  (* One pool, several batches: same workers, results always match
     sequential. *)
  let pool = Pool.create ~jobs:3 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Alcotest.(check int) "size" 3 (Pool.size pool);
      List.iter
        (fun n ->
          let f i = (i * 13) + n in
          let got, stats = Pool.submit pool ~n ~f in
          Alcotest.(check (array int))
            (Printf.sprintf "batch n=%d" n)
            (Array.init n f) got;
          Alcotest.(check int) "items" n stats.Pool.items;
          Alcotest.(check int) "per-domain sums to n" n
            (Array.fold_left ( + ) 0 stats.Pool.per_domain_items))
        [ 50; 0; 7; 200; 1 ])

let test_pool_usable_after_exception () =
  (* A batch that throws must not poison the workers: the exception
     propagates and the next submit on the same pool still works. *)
  let pool = Pool.create ~jobs:2 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Alcotest.check_raises "mid-batch failure" (Failure "boom") (fun () ->
          ignore
            (Pool.submit pool ~n:40 ~f:(fun i ->
                 if i = 23 then failwith "boom" else i)));
      let got, _ = Pool.submit pool ~n:20 ~f:(fun i -> i * i) in
      Alcotest.(check (array int)) "pool still works"
        (Array.init 20 (fun i -> i * i))
        got)

let test_pool_shutdown_semantics () =
  let pool = Pool.create ~jobs:2 in
  let got, _ = Pool.submit pool ~n:5 ~f:(fun i -> i) in
  Alcotest.(check (array int)) "before shutdown" [| 0; 1; 2; 3; 4 |] got;
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Pool.submit pool ~n:1 ~f:(fun i -> i)));
  Alcotest.check_raises "create with jobs = 0"
    (Invalid_argument "Pool.create: jobs must be positive") (fun () ->
      ignore (Pool.create ~jobs:0))

let test_busy_counts_work_not_waiting () =
  (* Satellite fix: per_domain_busy_s must measure in-chunk time, not
     whole-worker wall time. With one slow item and two workers, the
     idle worker's busy time must be (near) zero even though it waits
     for the batch to finish. *)
  let pool = Pool.create ~jobs:2 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let _, stats = Pool.submit pool ~n:1 ~f:(fun _ -> Unix.sleepf 0.05) in
      let busy = Array.copy stats.Pool.per_domain_busy_s in
      Array.sort compare busy;
      Alcotest.(check bool) "idle worker's busy stays near zero" true
        (busy.(0) < 0.02);
      Alcotest.(check bool) "working domain accounted" true (busy.(1) >= 0.04))

let test_nested_run_falls_back () =
  (* Pool.run issued from inside a pool worker must not deadlock on the
     shared pool: it degrades to sequential with identical results. *)
  let outer = Array.init 6 (fun i -> i) in
  let got, _ =
    Pool.run ~jobs:3 ~n:(Array.length outer) ~f:(fun i ->
        let inner, _ = Pool.run ~jobs:3 ~n:4 ~f:(fun j -> (i * 10) + j) in
        Array.fold_left ( + ) 0 inner)
  in
  let expected =
    Array.map (fun i -> (4 * 10 * i) + 6) outer
  in
  Alcotest.(check (array int)) "nested run matches" expected got

let test_run_matches_ephemeral () =
  (* The persistent-pool run and the spawn-per-call path must agree. *)
  let f i = (i * 31) + (i mod 7) in
  let pooled, _ = Pool.run ~jobs:3 ~n:300 ~f in
  let spawned, _ = Pool.run_ephemeral ~jobs:3 ~n:300 ~f in
  Alcotest.(check (array int)) "same results" spawned pooled

let suite =
  [ ("parallel matches sequential", `Quick, test_matches_sequential);
    ("exception propagates", `Quick, test_exception_propagates);
    ("invalid arguments", `Quick, test_invalid_args);
    ("stats accounting", `Quick, test_stats_accounting);
    ("jobs capped at n", `Quick, test_jobs_capped_at_n);
    ("empty index space", `Quick, test_empty);
    ("default jobs", `Quick, test_default_jobs_positive);
    ("pool reuse across submits", `Quick, test_pool_reuse_across_submits);
    ("pool usable after exception", `Quick, test_pool_usable_after_exception);
    ("pool shutdown semantics", `Quick, test_pool_shutdown_semantics);
    ("busy counts work not waiting", `Quick, test_busy_counts_work_not_waiting);
    ("nested run falls back", `Quick, test_nested_run_falls_back);
    ("run matches ephemeral", `Quick, test_run_matches_ephemeral) ]
