open Lepts_par

let test_matches_sequential () =
  let f i = (i * 31) + (i mod 7) in
  List.iter
    (fun n ->
      let expected = Array.init n f in
      List.iter
        (fun jobs ->
          let got, _ = Pool.run ~jobs ~n ~f in
          Alcotest.(check (array int))
            (Printf.sprintf "n=%d jobs=%d" n jobs)
            expected got)
        [ 1; 2; 3; 5; 16 ])
    [ 0; 1; 2; 7; 100; 1000 ]

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "jobs=%d" jobs)
        (Failure "boom")
        (fun () ->
          ignore
            (Pool.run ~jobs ~n:50 ~f:(fun i ->
                 if i = 37 then failwith "boom" else i))))
    [ 1; 3 ]

let test_invalid_args () =
  Alcotest.check_raises "jobs = 0" (Invalid_argument "Pool.run: jobs must be positive")
    (fun () -> ignore (Pool.run ~jobs:0 ~n:1 ~f:(fun i -> i)));
  Alcotest.check_raises "n < 0" (Invalid_argument "Pool.run: n must be non-negative")
    (fun () -> ignore (Pool.run ~jobs:1 ~n:(-1) ~f:(fun i -> i)))

let test_stats_accounting () =
  let n = 200 in
  let _, stats = Pool.run ~jobs:3 ~n ~f:(fun i -> i) in
  Alcotest.(check int) "items" n stats.Pool.items;
  Alcotest.(check int) "per-domain sums to n" n
    (Array.fold_left ( + ) 0 stats.Pool.per_domain_items);
  Alcotest.(check int) "jobs recorded" 3 stats.Pool.jobs;
  Alcotest.(check int) "one busy slot per domain" 3
    (Array.length stats.Pool.per_domain_busy_s)

let test_jobs_capped_at_n () =
  (* More workers than items: capped, and every index still computed once. *)
  let got, stats = Pool.run ~jobs:16 ~n:3 ~f:(fun i -> i * i) in
  Alcotest.(check (array int)) "values" [| 0; 1; 4 |] got;
  Alcotest.(check bool) "jobs capped" true (stats.Pool.jobs <= 3);
  Alcotest.(check int) "per-domain sums to n" 3
    (Array.fold_left ( + ) 0 stats.Pool.per_domain_items)

let test_empty () =
  let got, stats = Pool.run ~jobs:4 ~n:0 ~f:(fun _ -> assert false) in
  Alcotest.(check int) "no results" 0 (Array.length got);
  Alcotest.(check int) "no items" 0 stats.Pool.items

let test_default_jobs_positive () =
  Alcotest.(check bool) "at least one" true (Pool.default_jobs () >= 1)

let suite =
  [ ("parallel matches sequential", `Quick, test_matches_sequential);
    ("exception propagates", `Quick, test_exception_propagates);
    ("invalid arguments", `Quick, test_invalid_args);
    ("stats accounting", `Quick, test_stats_accounting);
    ("jobs capped at n", `Quick, test_jobs_capped_at_n);
    ("empty index space", `Quick, test_empty);
    ("default jobs", `Quick, test_default_jobs_positive) ]
