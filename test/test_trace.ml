open Lepts_core
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Plan = Lepts_preempt.Plan
module Model = Lepts_power.Model
module Policy = Lepts_dvs.Policy
module Event_sim = Lepts_sim.Event_sim
module Trace = Lepts_sim.Trace
module Sampler = Lepts_sim.Sampler

let power = Model.ideal ~v_min:0.5 ~v_max:4. ()

let fixture () =
  let ts =
    Task_set.scale_wcec_to_utilization
      (Task_set.create
         [ Task.with_ratio ~name:"a" ~period:4 ~wcec:4. ~ratio:0.1;
           Task.with_ratio ~name:"b" ~period:6 ~wcec:5. ~ratio:0.1;
           Task.with_ratio ~name:"c" ~period:12 ~wcec:8. ~ratio:0.1 ])
      ~power ~target:0.7
  in
  let plan = Plan.expand ts in
  let acs, _ = Result.get_ok (Solver.solve_acs ~plan ~power ()) in
  acs

let test_spans_disjoint_and_ordered () =
  let acs = fixture () in
  let totals = Sampler.fixed acs.Static_schedule.plan ~value:`Acec in
  let _, trace = Event_sim.run_traced ~schedule:acs ~policy:Policy.Greedy ~totals () in
  Alcotest.(check bool) "nonempty" true (List.length trace.Trace.spans > 0);
  let rec check = function
    | (a : Trace.span) :: (b :: _ as rest) ->
      Alcotest.(check bool) "ordered, disjoint" true
        (a.Trace.to_time <= b.Trace.from_time +. 1e-9);
      check rest
    | [ _ ] | [] -> ()
  in
  check trace.Trace.spans;
  List.iter
    (fun (s : Trace.span) ->
      Alcotest.(check bool) "positive length" true (s.Trace.to_time > s.Trace.from_time);
      Alcotest.(check bool) "within horizon" true
        (s.Trace.from_time >= 0. && s.Trace.to_time <= trace.Trace.horizon +. 1e-9);
      Alcotest.(check bool) "voltage in range" true
        (s.Trace.voltage >= power.Model.v_min -. 1e-9
         && s.Trace.voltage <= power.Model.v_max +. 1e-9))
    trace.Trace.spans

let test_trace_energy_crosscheck () =
  (* With the ideal model at c0 = 1, cycles = v * dt, so the trace can
     recompute the simulator's energy exactly. *)
  let acs = fixture () in
  let totals = Sampler.fixed acs.Static_schedule.plan ~value:`Acec in
  let outcome, trace = Event_sim.run_traced ~schedule:acs ~policy:Policy.Greedy ~totals () in
  Alcotest.(check (float 1e-6)) "energy recomputable" outcome.Lepts_sim.Outcome.energy
    (Trace.energy trace ~c_eff:1.)

let test_busy_time_bounds () =
  let acs = fixture () in
  let totals = Sampler.fixed acs.Static_schedule.plan ~value:`Wcec in
  let _, trace = Event_sim.run_traced ~schedule:acs ~policy:Policy.Greedy ~totals () in
  let u = Trace.utilization trace in
  Alcotest.(check bool) "utilization in (0, 1]" true (u > 0. && u <= 1. +. 1e-9)

let test_gantt_rendering () =
  let acs = fixture () in
  let totals = Sampler.fixed acs.Static_schedule.plan ~value:`Acec in
  let _, trace = Event_sim.run_traced ~schedule:acs ~policy:Policy.Greedy ~totals () in
  let out = Format.asprintf "%a" (Trace.pp_gantt ~width:48 ~n_tasks:3) trace in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check bool) "one row per task + axis" true (List.length lines >= 4);
  Alcotest.(check bool) "busy cells present" true
    (String.exists (fun c -> c >= '1' && c <= '9') out);
  Alcotest.(check bool) "idle cells present" true (String.contains out '.')

let test_spans_well_formed_under_faults () =
  (* Regression guard for span construction under the harshest
     conditions at once: release jitter, WCEC overruns past the budget,
     transition stalls, and denied voltage switches. Every span must
     still have positive length and the list must stay ordered. The
     horizon is deliberately NOT an upper bound here: with
     [enforce_budget = false] the overrun residue may execute past the
     hyper-period. *)
  let acs = fixture () in
  let totals =
    Array.map
      (Array.map (fun w -> 1.5 *. w))
      (Sampler.fixed acs.Static_schedule.plan ~value:`Wcec)
  in
  let faults =
    { Event_sim.release_offsets =
        Array.map (Array.mapi (fun j _ -> if j mod 2 = 0 then 0.3 else 0.)) totals;
      enforce_budget = false;
      deny_transition =
        (fun ~task:_ ~instance:_ ~sub:_ ~now:_ ~requested:_ -> true) }
  in
  let transition = { Event_sim.time_per_volt = 0.05; energy_per_volt = 0.1 } in
  let _, trace =
    Event_sim.run_traced ~transition ~faults ~schedule:acs ~policy:Policy.Greedy
      ~totals ()
  in
  Alcotest.(check bool) "nonempty" true (List.length trace.Trace.spans > 0);
  let rec check = function
    | (a : Trace.span) :: (b :: _ as rest) ->
      Alcotest.(check bool) "ordered under faults" true
        (a.Trace.to_time <= b.Trace.from_time +. 1e-9);
      check rest
    | [ _ ] | [] -> ()
  in
  check trace.Trace.spans;
  List.iter
    (fun (s : Trace.span) ->
      Alcotest.(check bool) "positive length under faults" true
        (s.Trace.to_time > s.Trace.from_time);
      Alcotest.(check bool) "starts after time zero" true (s.Trace.from_time >= 0.))
    trace.Trace.spans

let test_empty_trace () =
  let t = { Trace.spans = []; horizon = 0. } in
  Alcotest.(check (float 0.)) "no busy time" 0. (Trace.busy_time t);
  Alcotest.(check (float 0.)) "utilization 0" 0. (Trace.utilization t);
  let out = Format.asprintf "%a" (Trace.pp_gantt ?width:None ~n_tasks:2) t in
  Alcotest.(check bool) "renders placeholder" true (String.length out > 0)

let suite =
  [ ("spans disjoint and ordered", `Quick, test_spans_disjoint_and_ordered);
    ("trace energy cross-check", `Quick, test_trace_energy_crosscheck);
    ("busy-time bounds", `Quick, test_busy_time_bounds);
    ("gantt rendering", `Quick, test_gantt_rendering);
    ("spans well-formed under faults", `Quick, test_spans_well_formed_under_faults);
    ("empty trace", `Quick, test_empty_trace) ]
