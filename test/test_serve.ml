module Model = Lepts_power.Model
module Breaker = Lepts_serve.Breaker
module Request = Lepts_serve.Request
module Service = Lepts_serve.Service
module Shard = Lepts_serve.Shard
module Drain = Lepts_serve.Drain

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* --- circuit breaker (logical-clock state machine) ------------------------- *)

let small_breaker = { Breaker.failure_threshold = 2; cooldown = 3; probes = 1 }

let test_breaker_pinned_transitions () =
  (* The acceptance sequence: trip on consecutive failures, cool down,
     half-open a probe, close on its success — at exact logical times. *)
  let b = Breaker.create ~config:small_breaker () in
  Alcotest.(check bool) "closed routes to ACS" true (Breaker.plan_route b ~now:0);
  Breaker.observe b ~now:1 ~routed_acs:true ~ok:false;
  Alcotest.(check bool) "one failure stays closed" true
    (Breaker.state b = Breaker.Closed);
  Alcotest.(check bool) "still routes to ACS" true (Breaker.plan_route b ~now:1);
  Breaker.observe b ~now:2 ~routed_acs:true ~ok:false;
  Alcotest.(check bool) "threshold trips the circuit" true
    (Breaker.state b = Breaker.Open);
  Alcotest.(check bool) "open routes to fallback" false
    (Breaker.plan_route b ~now:3);
  Alcotest.(check bool) "still cooling down" false (Breaker.plan_route b ~now:4);
  Alcotest.(check bool) "cooldown elapsed: probe granted" true
    (Breaker.plan_route b ~now:5);
  Alcotest.(check bool) "probe budget spent: fallback" false
    (Breaker.plan_route b ~now:5);
  Breaker.observe b ~now:6 ~routed_acs:true ~ok:true;
  Alcotest.(check bool) "successful probe closes" true
    (Breaker.state b = Breaker.Closed);
  Alcotest.(check bool) "closed again routes to ACS" true
    (Breaker.plan_route b ~now:7);
  Alcotest.(check bool) "transition log pinned" true
    (Breaker.transitions b
    = [ (2, Breaker.Open); (5, Breaker.Half_open); (6, Breaker.Closed) ])

let test_breaker_failed_probe_reopens () =
  let b = Breaker.create ~config:small_breaker () in
  Breaker.observe b ~now:1 ~routed_acs:true ~ok:false;
  Breaker.observe b ~now:2 ~routed_acs:true ~ok:false;
  Alcotest.(check bool) "half-open after cooldown" true
    (Breaker.plan_route b ~now:5);
  Breaker.observe b ~now:6 ~routed_acs:true ~ok:false;
  Alcotest.(check bool) "failed probe reopens" true
    (Breaker.state b = Breaker.Open);
  (* The new episode cools down from the re-open time, not the first. *)
  Alcotest.(check bool) "cooldown restarts" false (Breaker.plan_route b ~now:8);
  Alcotest.(check bool) "second probe after second cooldown" true
    (Breaker.plan_route b ~now:9);
  Breaker.observe b ~now:10 ~routed_acs:true ~ok:true;
  Alcotest.(check bool) "recovers on the second probe" true
    (Breaker.transitions b
    = [ (2, Breaker.Open); (5, Breaker.Half_open); (6, Breaker.Open);
        (9, Breaker.Half_open); (10, Breaker.Closed) ])

let test_breaker_success_resets_failure_streak () =
  let b = Breaker.create ~config:small_breaker () in
  Breaker.observe b ~now:1 ~routed_acs:true ~ok:false;
  Breaker.observe b ~now:2 ~routed_acs:true ~ok:true;
  Breaker.observe b ~now:3 ~routed_acs:true ~ok:false;
  Alcotest.(check bool) "non-consecutive failures do not trip" true
    (Breaker.state b = Breaker.Closed);
  Breaker.observe b ~now:4 ~routed_acs:true ~ok:false;
  Alcotest.(check bool) "consecutive ones do" true
    (Breaker.state b = Breaker.Open)

let test_breaker_ignores_fallback_outcomes () =
  (* Requests routed around ACS say nothing about the stage: their
     outcomes must not move the state machine. *)
  let b = Breaker.create ~config:small_breaker () in
  for now = 1 to 10 do
    Breaker.observe b ~now ~routed_acs:false ~ok:false
  done;
  Alcotest.(check bool) "fallback failures carry no signal" true
    (Breaker.state b = Breaker.Closed && Breaker.transitions b = [])

let test_breaker_rejects_bad_config () =
  List.iter
    (fun config ->
      Alcotest.(check bool) "non-positive config field rejected" true
        (try ignore (Breaker.create ~config ()); false
         with Invalid_argument _ -> true))
    [ { small_breaker with Breaker.failure_threshold = 0 };
      { small_breaker with Breaker.cooldown = 0 };
      { small_breaker with Breaker.probes = 0 } ]

(* --- request parser -------------------------------------------------------- *)

let test_request_defaults () =
  match Request.of_json {|{"id": "x"}|} with
  | Error msg -> Alcotest.failf "minimal request rejected: %s" msg
  | Ok r ->
    Alcotest.(check string) "id" "x" r.Request.id;
    Alcotest.(check int) "tasks default" 0 r.Request.tasks;
    Alcotest.(check (float 0.)) "ratio default" 0.1 r.Request.ratio;
    Alcotest.(check int) "seed default" 0 r.Request.seed;
    Alcotest.(check int) "rounds default" 0 r.Request.rounds;
    Alcotest.(check bool) "no budget" true (r.Request.budget_ms = None);
    Alcotest.(check bool) "no override" true (r.Request.acs_max_outer = None)

let test_request_roundtrip () =
  let r =
    { Request.id = "rnd-7"; tasks = 3; ratio = 0.5; seed = 7; rounds = 10;
      budget_ms = Some 100; acs_max_outer = Some 5 }
  in
  (match Request.of_json (Request.to_json r) with
  | Error msg -> Alcotest.failf "re-encoding rejected: %s" msg
  | Ok r' -> Alcotest.(check bool) "full request round-trips" true (r = r'));
  let minimal = { r with Request.tasks = 0; ratio = 0.1; seed = 0; rounds = 0;
                  budget_ms = None; acs_max_outer = None } in
  Alcotest.(check string) "defaults omitted on the wire"
    {|{"id":"rnd-7"}|} (Request.to_json minimal)

let test_request_rejections_name_the_field () =
  (* One rejected line per rule; the reason must name what was wrong —
     operators debug shed requests from these strings. *)
  List.iter
    (fun (line, field) ->
      match Request.of_json line with
      | Ok _ -> Alcotest.failf "accepted %s" line
      | Error msg ->
        if not (contains ~sub:field msg) then
          Alcotest.failf "%s: reason %S does not mention %S" line msg field)
    [ ({|{}|}, "id");
      ({|{"id": ""}|}, "id");
      ({|{"id": "x", "tasks": 65}|}, "tasks");
      ({|{"id": "x", "tasks": -1}|}, "tasks");
      ({|{"id": "x", "tasks": 2.5}|}, "tasks");
      ({|{"id": "x", "ratio": 1.5}|}, "ratio");
      ({|{"id": "x", "ratio": -0.1}|}, "ratio");
      ({|{"id": "x", "rounds": -1}|}, "rounds");
      ({|{"id": "x", "budget_ms": 0}|}, "budget_ms");
      ({|{"id": "x", "acs_max_outer": -1}|}, "acs_max_outer");
      ({|{"id": "x", "typo": 1}|}, "typo");
      ({|{"id": "x", "id": "y"}|}, "duplicate");
      ({|{"id": "x"} trailing|}, "trailing");
      ({|not json at all|}, "expected") ]

(* --- service engine -------------------------------------------------------- *)

let power = Model.ideal ~v_min:0.5 ~v_max:4. ()

let quick_config =
  { Service.default_config with
    Service.wave = 1;
    breaker = { Breaker.failure_threshold = 2; cooldown = 2; probes = 1 } }

let stage_of o =
  match o.Service.status with
  | Service.Done { stage; _ } -> stage
  | _ -> "?"

let test_service_breaker_sequence () =
  (* End-to-end acceptance: injected ACS faults (acs_max_outer = 0)
     trip the breaker, the cooldown routes requests to the fallback,
     and a healthy probe closes it — the whole sequence pinned. *)
  let lines =
    [ {|{"id": "f1", "acs_max_outer": 0}|};
      {|{"id": "f2", "acs_max_outer": 0}|};
      {|{"id": "f3", "acs_max_outer": 0}|};
      {|{"id": "f4", "acs_max_outer": 0}|};
      {|{"id": "ok5"}|};
      {|{"id": "ok6"}|} ]
  in
  let r = Service.run ~config:quick_config ~power ~lines () in
  Alcotest.(check bool) "transition sequence pinned" true
    (match r.Service.shards with
    | [ s ] ->
      s.Shard.transitions
      = [ (2, Breaker.Open); (4, Breaker.Half_open); (5, Breaker.Closed) ]
    | _ -> false);
  Alcotest.(check (list bool)) "routes follow the breaker"
    [ true; true; false; false; true; true ]
    (List.map (fun o -> o.Service.routed_acs) r.Service.outcomes);
  Alcotest.(check (list string)) "fallback requests still solved"
    [ "wcs"; "wcs"; "wcs"; "wcs"; "acs"; "acs" ]
    (List.map stage_of r.Service.outcomes);
  Alcotest.(check (list bool)) "degradation tracked per request"
    [ true; true; true; true; false; false ]
    (List.map (fun (o : Service.outcome) -> o.Service.degraded) r.Service.outcomes);
  Alcotest.(check int) "all processed" 6 r.Service.processed;
  Alcotest.(check bool) "no drain, service healthy" true
    ((not r.Service.drained) && not r.Service.degraded)

let test_service_admission_shed () =
  let config = { quick_config with Service.high_water = 2; wave = 8 } in
  let lines =
    [ "nonsense"; {|{"id": "a"}|}; {|{"id": "b"}|}; {|{"id": "c"}|} ]
  in
  let r = Service.run ~config ~power ~lines () in
  Alcotest.(check int) "rejected" 1 r.Service.rejected;
  Alcotest.(check int) "admitted" 2 r.Service.admitted;
  Alcotest.(check int) "shed" 1 r.Service.shed;
  (match r.Service.outcomes with
  | [ bad; a; b; c ] ->
    Alcotest.(check string) "rejected lines get positional ids" "line-1"
      bad.Service.id;
    Alcotest.(check bool) "rejection reason kept" true
      (match bad.Service.status with Service.Rejected _ -> true | _ -> false);
    Alcotest.(check bool) "admitted requests solved" true
      (stage_of a = "acs" && stage_of b = "acs");
    Alcotest.(check bool) "overflow shed, not failed" true
      (c.Service.status = Service.Shed && c.Service.attempts = 0)
  | _ -> Alcotest.fail "expected one outcome per input line")

let test_service_jobs_bit_identical () =
  let lines =
    [ {|{"id": "f1", "acs_max_outer": 0}|};
      {|{"id": "f2", "acs_max_outer": 0}|};
      {|{"id": "sim3", "rounds": 5, "seed": 3}|};
      {|{"id": "sim4", "rounds": 5, "seed": 4}|} ]
  in
  let run jobs =
    Service.run
      ~config:{ quick_config with Service.jobs; shards = 3; wave = 2 }
      ~power ~lines ()
  in
  let seq = run 1 in
  (* The simulated requests exercise the mean-energy path too. *)
  Alcotest.(check bool) "rounds > 0 reports energy" true
    (List.exists
       (fun o ->
         match o.Service.status with
         | Service.Done { mean_energy = Some _; _ } -> true
         | _ -> false)
       seq.Service.outcomes);
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "report identical at jobs=%d" jobs)
        true (seq = run jobs))
    [ 2; 4 ]

let test_service_retries_then_fails () =
  (* A 64-task request cannot satisfy the random generator's
     sub-instance cap (any short period splits every lower-priority
     instance, blowing far past 1000 sub-instances), so every solve
     attempt fails in-band — the deterministic trigger for the
     bounded-retry path. *)
  let attempts_seen = ref [] in
  let before_solve ~attempt (req : Request.t) =
    attempts_seen := (req.Request.id, attempt) :: !attempts_seen
  in
  let config = { quick_config with Service.max_retries = 2 } in
  let r =
    Service.run ~config ~power ~before_solve
      ~lines:[ {|{"id": "doomed", "tasks": 64, "seed": 1}|} ] ()
  in
  (match r.Service.outcomes with
  | [ o ] ->
    Alcotest.(check bool) "failed after exhausting retries" true
      (match o.Service.status with Service.Failed _ -> true | _ -> false);
    Alcotest.(check int) "initial attempt plus two retries" 3
      o.Service.attempts;
    Alcotest.(check int) "no crashes involved" 0 o.Service.crashes;
    Alcotest.(check bool) "request degraded" true o.Service.degraded
  | _ -> Alcotest.fail "expected one outcome");
  Alcotest.(check bool) "every attempt went through the hook" true
    (List.rev !attempts_seen = [ ("doomed", 1); ("doomed", 2); ("doomed", 3) ]);
  Alcotest.(check bool) "solver failure is not service degradation" false
    r.Service.degraded

let test_service_worker_restart_recovers () =
  (* Supervision: two induced worker crashes are absorbed by restarts
     and the third attempt completes the request. *)
  let before_solve ~attempt (req : Request.t) =
    if req.Request.id = "crashy" && attempt <= 2 then failwith "induced crash"
  in
  let r =
    Service.run ~config:quick_config ~power ~before_solve
      ~lines:[ {|{"id": "crashy"}|} ] ()
  in
  match r.Service.outcomes with
  | [ o ] ->
    Alcotest.(check string) "recovered and solved" "acs" (stage_of o);
    Alcotest.(check int) "two restarts absorbed" 2 o.Service.crashes;
    Alcotest.(check int) "three attempts" 3 o.Service.attempts;
    Alcotest.(check bool) "service not degraded" false r.Service.degraded
  | _ -> Alcotest.fail "expected one outcome"

let test_service_worker_crashout_degrades () =
  let before_solve ~attempt:_ (_ : Request.t) = failwith "always crashes" in
  let config = { quick_config with Service.max_worker_crashes = 1 } in
  let r =
    Service.run ~config ~power ~before_solve ~lines:[ {|{"id": "hopeless"}|} ] ()
  in
  match r.Service.outcomes with
  | [ o ] ->
    Alcotest.(check bool) "failed as a crash" true
      (match o.Service.status with
      | Service.Failed msg -> contains ~sub:"crash" msg
      | _ -> false);
    Alcotest.(check int) "restart budget spent" 2 o.Service.crashes;
    Alcotest.(check bool) "service marked degraded" true r.Service.degraded
  | _ -> Alcotest.fail "expected one outcome"

let test_service_drain_keeps_tail () =
  let polls = ref 0 in
  let should_stop () = incr polls; !polls >= 2 in
  let config = { quick_config with Service.wave = 2 } in
  let lines =
    [ {|{"id": "a"}|}; {|{"id": "b"}|}; {|{"id": "c"}|}; {|{"id": "d"}|} ]
  in
  let r = Service.run ~config ~power ~should_stop ~lines () in
  Alcotest.(check bool) "drain recorded" true r.Service.drained;
  Alcotest.(check int) "first wave processed" 2 r.Service.processed;
  Alcotest.(check (list bool)) "tail drained, in order"
    [ false; false; true; true ]
    (List.map
       (fun o -> o.Service.status = Service.Drained)
       r.Service.outcomes);
  Alcotest.(check bool) "drained requests were never attempted" true
    (List.for_all
       (fun o ->
         o.Service.status <> Service.Drained || o.Service.attempts = 0)
       r.Service.outcomes)

let test_service_probe_drain_completes_fold () =
  (* A drain arriving while a half-open probe wave is in flight must
     not leave the breaker stuck in Half_open: the wave's fold always
     completes, so the probe outcome is recorded before the tail is
     drained. The flag is set from inside the probe's own solve. *)
  let drain = ref false in
  let before_solve ~attempt:_ (req : Request.t) =
    if req.Request.id = "probe5" then drain := true
  in
  let should_stop () = !drain in
  let lines =
    [ {|{"id": "f1", "acs_max_outer": 0}|};
      {|{"id": "f2", "acs_max_outer": 0}|};
      {|{"id": "f3", "acs_max_outer": 0}|};
      {|{"id": "f4", "acs_max_outer": 0}|};
      {|{"id": "probe5"}|};
      {|{"id": "tail6"}|} ]
  in
  let r =
    Service.run ~config:quick_config ~power ~before_solve ~should_stop ~lines ()
  in
  Alcotest.(check bool) "drain recorded" true r.Service.drained;
  Alcotest.(check int) "probe wave folded before draining" 5
    r.Service.processed;
  (match r.Service.shards with
  | [ s ] ->
    Alcotest.(check bool) "probe outcome recorded, breaker closed" true
      (s.Shard.transitions
      = [ (2, Breaker.Open); (4, Breaker.Half_open); (5, Breaker.Closed) ])
  | _ -> Alcotest.fail "expected one shard");
  match List.rev r.Service.outcomes with
  | tail :: probe :: _ ->
    Alcotest.(check bool) "probe served" true
      (match probe.Service.status with Service.Done _ -> true | _ -> false);
    Alcotest.(check bool) "tail drained" true
      (tail.Service.status = Service.Drained)
  | _ -> Alcotest.fail "expected six outcomes"

(* Ids that hash to a given shard under [Shard.of_id ~shards:2]. *)
let ids_for_shard ~shards shard n =
  let rec go i acc n =
    if n = 0 then List.rev acc
    else
      let id = Printf.sprintf "req-%d" i in
      if Shard.of_id ~shards id = shard then go (i + 1) (id :: acc) (n - 1)
      else go (i + 1) acc n
  in
  go 0 [] n

let test_shard_assignment () =
  Alcotest.(check int) "assignment is stable"
    (Shard.of_id ~shards:4 "r1") (Shard.of_id ~shards:4 "r1");
  List.iter
    (fun id ->
      Alcotest.(check int) "one shard takes everything" 0
        (Shard.of_id ~shards:1 id))
    [ "a"; "b"; "c"; "" ];
  let hit = Array.make 4 false in
  for i = 0 to 63 do
    hit.(Shard.of_id ~shards:4 (Printf.sprintf "req-%d" i)) <- true
  done;
  Alcotest.(check bool) "64 ids spread over all 4 shards" true
    (Array.for_all Fun.id hit);
  Alcotest.(check bool) "shards < 1 rejected" true
    (try ignore (Shard.of_id ~shards:0 "x"); false
     with Invalid_argument _ -> true)

let test_service_shard_isolation () =
  (* A family of failing requests hashing to one shard trips that
     shard's breaker; the sibling shard keeps serving at ACS. *)
  let bad = ids_for_shard ~shards:2 0 3 in
  let good = ids_for_shard ~shards:2 1 3 in
  let lines =
    List.map
      (fun id -> Printf.sprintf {|{"id": "%s", "acs_max_outer": 0}|} id)
      bad
    @ List.map (fun id -> Printf.sprintf {|{"id": "%s"}|} id) good
  in
  let config = { quick_config with Service.shards = 2; wave = 8 } in
  let r = Service.run ~config ~power ~lines () in
  (match r.Service.shards with
  | [ s0; s1 ] ->
    Alcotest.(check bool) "failing shard tripped" true
      (s0.Shard.transitions <> []);
    Alcotest.(check bool) "healthy shard untouched" true
      (s1.Shard.transitions = []);
    Alcotest.(check int) "failing shard processed its three" 3
      s0.Shard.s_processed;
    Alcotest.(check int) "healthy shard processed its three" 3
      s1.Shard.s_processed
  | _ -> Alcotest.fail "expected two shards");
  List.iter
    (fun o ->
      if List.mem o.Service.id good then
        Alcotest.(check string)
          (o.Service.id ^ " served at full quality despite sibling failures")
          "acs" (stage_of o))
    r.Service.outcomes

let test_service_per_shard_shed () =
  (* The high-water mark is per shard: the second request of a full
     shard is shed even though the service as a whole has room. *)
  let s0 = ids_for_shard ~shards:2 0 2 in
  let s1 = ids_for_shard ~shards:2 1 1 in
  let lines =
    List.map (fun id -> Printf.sprintf {|{"id": "%s"}|} id) (s0 @ s1)
  in
  let config =
    { quick_config with Service.shards = 2; high_water = 1; wave = 8 }
  in
  let r = Service.run ~config ~power ~lines () in
  Alcotest.(check int) "admitted one per shard" 2 r.Service.admitted;
  Alcotest.(check int) "one shed" 1 r.Service.shed;
  (match r.Service.shards with
  | [ sh0; sh1 ] ->
    Alcotest.(check int) "full shard shed its overflow" 1 sh0.Shard.s_shed;
    Alcotest.(check int) "sibling shard shed nothing" 0 sh1.Shard.s_shed
  | _ -> Alcotest.fail "expected two shards");
  match r.Service.outcomes with
  | [ a; b; c ] ->
    Alcotest.(check bool) "first of the full shard served" true
      (match a.Service.status with Service.Done _ -> true | _ -> false);
    Alcotest.(check bool) "overflow shed" true
      (b.Service.status = Service.Shed);
    Alcotest.(check bool) "other shard's request served" true
      (match c.Service.status with Service.Done _ -> true | _ -> false)
  | _ -> Alcotest.fail "expected three outcomes"

let test_drain_flag () =
  Drain.reset ();
  Alcotest.(check bool) "starts clear" false (Drain.requested ());
  Drain.request ();
  Alcotest.(check bool) "sticky once requested" true (Drain.requested ());
  Drain.reset ();
  Alcotest.(check bool) "reset clears" false (Drain.requested ())

let suite =
  [ ("breaker pinned transitions", `Quick, test_breaker_pinned_transitions);
    ("breaker failed probe reopens", `Quick, test_breaker_failed_probe_reopens);
    ("breaker success resets streak", `Quick,
     test_breaker_success_resets_failure_streak);
    ("breaker ignores fallback outcomes", `Quick,
     test_breaker_ignores_fallback_outcomes);
    ("breaker config validated", `Quick, test_breaker_rejects_bad_config);
    ("request defaults", `Quick, test_request_defaults);
    ("request round-trip", `Quick, test_request_roundtrip);
    ("request rejections name the field", `Quick,
     test_request_rejections_name_the_field);
    ("service breaker sequence", `Quick, test_service_breaker_sequence);
    ("service admission shed", `Quick, test_service_admission_shed);
    ("service jobs bit-identical", `Quick, test_service_jobs_bit_identical);
    ("service retries then fails", `Quick, test_service_retries_then_fails);
    ("service worker restart recovers", `Quick,
     test_service_worker_restart_recovers);
    ("service worker crash-out degrades", `Quick,
     test_service_worker_crashout_degrades);
    ("service drain keeps tail", `Quick, test_service_drain_keeps_tail);
    ("service probe drain completes fold", `Quick,
     test_service_probe_drain_completes_fold);
    ("shard assignment", `Quick, test_shard_assignment);
    ("service shard isolation", `Quick, test_service_shard_isolation);
    ("service per-shard shed", `Quick, test_service_per_shard_shed);
    ("drain flag", `Quick, test_drain_flag) ]
