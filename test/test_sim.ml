open Lepts_core
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Plan = Lepts_preempt.Plan
module Model = Lepts_power.Model
module Policy = Lepts_dvs.Policy
module Sampler = Lepts_sim.Sampler
module Event_sim = Lepts_sim.Event_sim
module Sequence = Lepts_sim.Sequence
module Outcome = Lepts_sim.Outcome
module Runner = Lepts_sim.Runner

let power = Model.ideal ~v_min:0.5 ~v_max:4. ()

let preemptive_pair () =
  let ts =
    Task_set.scale_wcec_to_utilization
      (Task_set.create
         [ Task.with_ratio ~name:"a" ~period:4 ~wcec:4. ~ratio:0.1;
           Task.with_ratio ~name:"b" ~period:6 ~wcec:5. ~ratio:0.1;
           Task.with_ratio ~name:"c" ~period:12 ~wcec:8. ~ratio:0.1 ])
      ~power ~target:0.7
  in
  let plan = Plan.expand ts in
  let wcs, _ = Result.get_ok (Solver.solve_wcs ~plan ~power ()) in
  let acs, _ =
    Result.get_ok
      (Solver.solve_acs
         ~warm_starts:[ (wcs.Static_schedule.end_times, wcs.Static_schedule.quotas) ]
         ~plan ~power ())
  in
  (plan, wcs, acs)

let test_sampler_bounds () =
  let plan, _, _ = preemptive_pair () in
  let rng = Lepts_prng.Xoshiro256.create ~seed:3 in
  for _ = 1 to 50 do
    let totals = Sampler.instance_totals plan ~rng in
    Array.iteri
      (fun i per ->
        let task = Task_set.task plan.Plan.task_set i in
        Array.iter
          (fun w ->
            if w < task.Task.bcec -. 1e-9 || w > task.Task.wcec +. 1e-9 then
              Alcotest.failf "sample %g outside [%g, %g]" w task.Task.bcec task.Task.wcec)
          per)
      totals
  done

let test_sampler_fixed () =
  let plan, _, _ = preemptive_pair () in
  let totals = Sampler.fixed plan ~value:`Wcec in
  Array.iteri
    (fun i per ->
      let task = Task_set.task plan.Plan.task_set i in
      Array.iter (fun w -> Alcotest.(check (float 0.)) "wcec" task.Task.wcec w) per)
    totals

let test_sampler_traversal_order_regression () =
  (* Instance draws must depend only on (base state, flat instance
     index). We reconstruct the totals by walking the plan in the
     reverse order and deriving each instance's stream by key; any
     hidden threading of a shared stream through the traversal would
     break the equality. *)
  let plan, _, _ = preemptive_pair () in
  let rng = Lepts_prng.Xoshiro256.create ~seed:41 in
  let replay = Lepts_prng.Xoshiro256.copy rng in
  let totals = Sampler.instance_totals plan ~rng in
  let base = Lepts_prng.Xoshiro256.split replay in
  let n_tasks = Array.length plan.Plan.instance_subs in
  let offset = Array.make n_tasks 0 in
  for i = 1 to n_tasks - 1 do
    offset.(i) <- offset.(i - 1) + Array.length plan.Plan.instance_subs.(i - 1)
  done;
  for i = n_tasks - 1 downto 0 do
    let task = Task_set.task plan.Plan.task_set i in
    let per = plan.Plan.instance_subs.(i) in
    for j = Array.length per - 1 downto 0 do
      let child = Lepts_prng.Xoshiro256.split_key base ~key:(offset.(i) + j) in
      Alcotest.(check (float 0.)) "permuted traversal identical"
        totals.(i).(j)
        (Sampler.draw Sampler.Truncated_normal child task)
    done
  done

let test_sampler_successive_calls_differ () =
  let plan, _, _ = preemptive_pair () in
  let rng = Lepts_prng.Xoshiro256.create ~seed:43 in
  let a = Sampler.instance_totals plan ~rng in
  let b = Sampler.instance_totals plan ~rng in
  Alcotest.(check bool) "fresh hyper-period each call" true (a <> b)

let test_event_sim_worst_case_no_misses () =
  let plan, wcs, acs = preemptive_pair () in
  let totals = Sampler.fixed plan ~value:`Wcec in
  List.iter
    (fun s ->
      let o = Event_sim.run ~schedule:s ~policy:Policy.Greedy ~totals () in
      Alcotest.(check int) "no misses under WCEC" 0 o.Outcome.deadline_misses)
    [ wcs; acs ]

let test_event_sim_matches_sequence () =
  (* Under budget-enforced RM the event-driven run coincides with the
     closed-form executor on any fixed workloads. *)
  let plan, wcs, acs = preemptive_pair () in
  let rng = Lepts_prng.Xoshiro256.create ~seed:5 in
  List.iter
    (fun s ->
      List.iter
        (fun value ->
          let totals = Sampler.fixed plan ~value in
          let ev = Event_sim.run ~schedule:s ~policy:Policy.Greedy ~totals () in
          let sq = Sequence.run ~schedule:s ~totals in
          Alcotest.(check (float 1e-6)) "energies equal" sq.Outcome.energy
            ev.Outcome.energy;
          Alcotest.(check int) "misses equal" sq.Outcome.deadline_misses
            ev.Outcome.deadline_misses)
        [ `Bcec; `Acec; `Wcec ];
      (* And on sampled workloads. *)
      for _ = 1 to 10 do
        let totals = Sampler.instance_totals plan ~rng in
        let ev = Event_sim.run ~schedule:s ~policy:Policy.Greedy ~totals () in
        let sq = Sequence.run ~schedule:s ~totals in
        Alcotest.(check (float 1e-6)) "sampled energies equal" sq.Outcome.energy
          ev.Outcome.energy
      done)
    [ wcs; acs ]

let test_event_sim_matches_predicted_on_acec () =
  let _, wcs, acs = preemptive_pair () in
  List.iter
    (fun s ->
      let totals = Sampler.fixed s.Static_schedule.plan ~value:`Acec in
      let ev = Event_sim.run ~schedule:s ~policy:Policy.Greedy ~totals () in
      Alcotest.(check (float 1e-6)) "closed form = simulation"
        (Static_schedule.predicted_energy s ~mode:Objective.Average)
        ev.Outcome.energy)
    [ wcs; acs ]

let test_policy_ordering () =
  (* Greedy <= static <= max-speed on any workload draw. *)
  let plan, _, acs = preemptive_pair () in
  let rng = Lepts_prng.Xoshiro256.create ~seed:11 in
  for _ = 1 to 20 do
    let totals = Sampler.instance_totals plan ~rng in
    let energy policy =
      (Event_sim.run ~schedule:acs ~policy ~totals ()).Outcome.energy
    in
    let g = energy Policy.Greedy
    and st = energy Policy.Static_voltage
    and mx = energy Policy.Max_speed in
    Alcotest.(check bool) "greedy <= static" true (g <= st +. 1e-9);
    Alcotest.(check bool) "static <= max-speed" true (st <= mx +. 1e-9)
  done

let test_max_speed_energy_exact () =
  (* At v_max, energy is just c_eff * v_max^2 * total executed cycles. *)
  let plan, _, acs = preemptive_pair () in
  let totals = Sampler.fixed plan ~value:`Wcec in
  let o = Event_sim.run ~schedule:acs ~policy:Policy.Max_speed ~totals () in
  let total_cycles =
    Array.fold_left
      (fun acc per -> Array.fold_left ( +. ) acc per)
      0. totals
  in
  Alcotest.(check (float 1e-6)) "E = w vmax^2" (total_cycles *. 16.) o.Outcome.energy

let test_zero_workload_instances () =
  let plan, _, acs = preemptive_pair () in
  let totals = Array.map (Array.map (fun _ -> 0.)) plan.Plan.instance_subs in
  let totals = Array.map (Array.map float_of_int) (Array.map (Array.map int_of_float) totals) in
  let o = Event_sim.run ~schedule:acs ~policy:Policy.Greedy ~totals () in
  Alcotest.(check (float 0.)) "no energy" 0. o.Outcome.energy;
  Alcotest.(check int) "no misses" 0 o.Outcome.deadline_misses

let test_finish_times_recorded () =
  let plan, _, acs = preemptive_pair () in
  let totals = Sampler.fixed plan ~value:`Acec in
  let o = Event_sim.run ~schedule:acs ~policy:Policy.Greedy ~totals () in
  Array.iteri
    (fun i per ->
      let period = (Task_set.task plan.Plan.task_set i).Task.period in
      Array.iteri
        (fun j f ->
          if Float.is_nan f then Alcotest.fail "missing finish time";
          let release = float_of_int (j * period) in
          let deadline = float_of_int ((j + 1) * period) in
          Alcotest.(check bool) "within window" true (f >= release && f <= deadline))
        per)
    o.Outcome.finish_times

let test_runner_statistics () =
  let _, _, acs = preemptive_pair () in
  let rng = Lepts_prng.Xoshiro256.create ~seed:9 in
  let s = Runner.simulate ~rounds:50 ~schedule:acs ~policy:Policy.Greedy ~rng () in
  Alcotest.(check int) "rounds" 50 s.Runner.rounds;
  Alcotest.(check int) "no misses" 0 s.Runner.deadline_misses;
  Alcotest.(check bool) "min <= mean <= max" true
    (s.Runner.min_energy <= s.Runner.mean_energy
     && s.Runner.mean_energy <= s.Runner.max_energy);
  Alcotest.(check bool) "positive spread" true (s.Runner.stddev_energy > 0.)

let test_runner_deterministic () =
  let _, _, acs = preemptive_pair () in
  let run seed =
    Runner.simulate ~rounds:20 ~schedule:acs ~policy:Policy.Greedy
      ~rng:(Lepts_prng.Xoshiro256.create ~seed) ()
  in
  let a = run 4 and b = run 4 in
  Alcotest.(check (float 0.)) "same seed, same mean" a.Runner.mean_energy
    b.Runner.mean_energy;
  let c = run 5 in
  Alcotest.(check bool) "different seed differs" true
    (Float.abs (a.Runner.mean_energy -. c.Runner.mean_energy) > 1e-12)

let check_summary_equal msg (a : Runner.summary) (b : Runner.summary) =
  Alcotest.(check int) (msg ^ ": rounds") a.Runner.rounds b.Runner.rounds;
  Alcotest.(check (float 0.)) (msg ^ ": mean") a.Runner.mean_energy b.Runner.mean_energy;
  Alcotest.(check (float 0.)) (msg ^ ": stddev") a.Runner.stddev_energy
    b.Runner.stddev_energy;
  Alcotest.(check (float 0.)) (msg ^ ": min") a.Runner.min_energy b.Runner.min_energy;
  Alcotest.(check (float 0.)) (msg ^ ": max") a.Runner.max_energy b.Runner.max_energy;
  Alcotest.(check (float 0.)) (msg ^ ": p95") a.Runner.p95_energy b.Runner.p95_energy;
  Alcotest.(check (float 0.)) (msg ^ ": p99") a.Runner.p99_energy b.Runner.p99_energy;
  Alcotest.(check int) (msg ^ ": misses") a.Runner.deadline_misses
    b.Runner.deadline_misses;
  Alcotest.(check int) (msg ^ ": shed") a.Runner.shed_instances b.Runner.shed_instances

let test_runner_parallel_bit_identical () =
  let _, _, acs = preemptive_pair () in
  let run jobs =
    Runner.simulate ~rounds:40 ~jobs ~schedule:acs ~policy:Policy.Greedy
      ~rng:(Lepts_prng.Xoshiro256.create ~seed:6) ()
  in
  let seq = run 1 in
  List.iter
    (fun jobs -> check_summary_equal (Printf.sprintf "jobs=%d" jobs) seq (run jobs))
    [ 2; 3; 7 ]

let test_runner_pure_in_rng () =
  (* [simulate] must never advance the caller's generator: the same
     generator object used twice yields the same summary. *)
  let _, _, acs = preemptive_pair () in
  let rng = Lepts_prng.Xoshiro256.create ~seed:12 in
  let run () = Runner.simulate ~rounds:15 ~schedule:acs ~policy:Policy.Greedy ~rng () in
  check_summary_equal "same rng twice" (run ()) (run ())

let test_runner_single_round_summary () =
  let _, _, acs = preemptive_pair () in
  let s =
    Runner.simulate ~rounds:1 ~schedule:acs ~policy:Policy.Greedy
      ~rng:(Lepts_prng.Xoshiro256.create ~seed:14) ()
  in
  Alcotest.(check int) "one round" 1 s.Runner.rounds;
  Alcotest.(check bool) "stddev undefined" true (Float.is_nan s.Runner.stddev_energy);
  Alcotest.(check (float 0.)) "min = mean" s.Runner.mean_energy s.Runner.min_energy;
  Alcotest.(check (float 0.)) "max = mean" s.Runner.mean_energy s.Runner.max_energy;
  Alcotest.(check (float 0.)) "p95 = mean" s.Runner.mean_energy s.Runner.p95_energy;
  Alcotest.(check (float 0.)) "p99 = mean" s.Runner.mean_energy s.Runner.p99_energy

let test_runner_stats_reported () =
  let _, _, acs = preemptive_pair () in
  let seen = ref None in
  ignore
    (Runner.simulate ~rounds:20 ~jobs:2 ~on_stats:(fun s -> seen := Some s)
       ~schedule:acs ~policy:Policy.Greedy
       ~rng:(Lepts_prng.Xoshiro256.create ~seed:16) ());
  match !seen with
  | None -> Alcotest.fail "on_stats not called"
  | Some s ->
    Alcotest.(check int) "items = rounds" 20 s.Lepts_par.Pool.items;
    Alcotest.(check int) "jobs" 2 s.Lepts_par.Pool.jobs

let test_runner_invalid_rounds () =
  let _, _, acs = preemptive_pair () in
  Alcotest.check_raises "rounds positive"
    (Invalid_argument "Runner.simulate: rounds must be positive") (fun () ->
      ignore
        (Runner.simulate ~rounds:0 ~schedule:acs ~policy:Policy.Greedy
           ~rng:(Lepts_prng.Xoshiro256.create ~seed:1) ()))

let test_budget_enforcement_prevents_miss () =
  (* The regression that motivated budget-enforced readiness: an ACS
     schedule whose higher-priority task would otherwise run its next
     segment's quota early and push a lower-priority task past its
     worst-case window. Under WCEC workloads there must be no miss. *)
  let ts =
    Task_set.scale_wcec_to_utilization
      (Task_set.create
         [ Task.with_ratio ~name:"t1" ~period:4 ~wcec:4. ~ratio:0.1;
           Task.with_ratio ~name:"t2" ~period:6 ~wcec:5. ~ratio:0.1;
           Task.with_ratio ~name:"t3" ~period:12 ~wcec:8. ~ratio:0.1 ])
      ~power ~target:0.7
  in
  let plan = Plan.expand ts in
  let acs, _ = Result.get_ok (Solver.solve_acs ~plan ~power ()) in
  let totals = Sampler.fixed plan ~value:`Wcec in
  let o = Event_sim.run ~schedule:acs ~policy:Policy.Greedy ~totals () in
  Alcotest.(check int) "worst case meets deadlines" 0 o.Outcome.deadline_misses

let suite =
  [ ("sampler respects bounds", `Quick, test_sampler_bounds);
    ("sampler fixed values", `Quick, test_sampler_fixed);
    ("sampler traversal-order regression", `Quick, test_sampler_traversal_order_regression);
    ("sampler successive calls differ", `Quick, test_sampler_successive_calls_differ);
    ("worst case meets deadlines", `Quick, test_event_sim_worst_case_no_misses);
    ("event sim = sequence executor", `Quick, test_event_sim_matches_sequence);
    ("event sim = closed form on ACEC", `Quick, test_event_sim_matches_predicted_on_acec);
    ("policy energy ordering", `Quick, test_policy_ordering);
    ("max-speed energy exact", `Quick, test_max_speed_energy_exact);
    ("zero workloads", `Quick, test_zero_workload_instances);
    ("finish times recorded", `Quick, test_finish_times_recorded);
    ("runner statistics", `Quick, test_runner_statistics);
    ("runner determinism", `Quick, test_runner_deterministic);
    ("runner parallel bit-identical", `Quick, test_runner_parallel_bit_identical);
    ("runner pure in rng", `Quick, test_runner_pure_in_rng);
    ("runner single-round summary", `Quick, test_runner_single_round_summary);
    ("runner pool stats reported", `Quick, test_runner_stats_reported);
    ("runner invalid rounds", `Quick, test_runner_invalid_rounds);
    ("budget enforcement regression", `Quick, test_budget_enforcement_prevents_miss) ]
