module Model = Lepts_power.Model
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Experiments = Lepts_experiments

let power = Model.ideal ~v_min:0.5 ~v_max:4. ()

(* A small fast task set so the whole ablation battery stays quick. *)
let ts () =
  Task_set.scale_wcec_to_utilization
    (Task_set.create
       [ Task.with_ratio ~name:"a" ~period:4 ~wcec:4. ~ratio:0.1;
         Task.with_ratio ~name:"b" ~period:8 ~wcec:6. ~ratio:0.1 ])
    ~power ~target:0.7

let render = Lepts_util.Table.render

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let test_formulations () =
  match Experiments.Ablations.formulations ~task_set:(ts ()) ~power () with
  | Error e -> Alcotest.failf "formulations: %a" Lepts_core.Solver.pp_error e
  | Ok table ->
    let s = render table in
    Alcotest.(check bool) "mentions both" true
      (contains ~affix:"literal" s && contains ~affix:"slack" s)

let test_objectives () =
  match Experiments.Ablations.objectives ~rounds:60 ~task_set:(ts ()) ~power ~seed:3 () with
  | Error e -> Alcotest.failf "objectives: %a" Lepts_core.Solver.pp_error e
  | Ok table ->
    let s = render table in
    Alcotest.(check bool) "three rows" true
      (contains ~affix:"WCS" s
      && contains ~affix:"ACS" s
      && contains ~affix:"stochastic" s)

let test_quantization () =
  match
    Experiments.Ablations.quantization ~rounds:60 ~steps:[ 4; 8 ] ~task_set:(ts ())
      ~power ~seed:3 ()
  with
  | Error e -> Alcotest.failf "quantization: %a" Lepts_core.Solver.pp_error e
  | Ok table ->
    let s = render table in
    Alcotest.(check bool) "continuous + 2 levels" true
      (contains ~affix:"continuous" s
      && contains ~affix:"4" s)

let test_structures () =
  match Experiments.Ablations.structures ~task_set:(ts ()) ~power () with
  | Error e -> Alcotest.failf "structures: %a" Lepts_core.Solver.pp_error e
  | Ok table ->
    let s = render table in
    Alcotest.(check bool) "has rows" true
      (contains ~affix:"preemptive" s
      && contains ~affix:"YDS" s)

let test_utilization_sweep () =
  let points =
    Experiments.Utilization_sweep.run ~utilizations:[ 0.4; 0.7 ] ~rounds:60
      ~task_set:(ts ()) ~power ~seed:5 ()
  in
  Alcotest.(check int) "both points measured" 2 (List.length points);
  List.iter
    (fun p ->
      Alcotest.(check bool) "finite" true
        (Float.is_finite p.Experiments.Utilization_sweep.improvement_pct))
    points;
  let s = render (Experiments.Utilization_sweep.to_table points) in
  Alcotest.(check bool) "renders" true (String.length s > 50)

let suite =
  [ ("formulations table", `Slow, test_formulations);
    ("objectives table", `Slow, test_objectives);
    ("quantization table", `Slow, test_quantization);
    ("structures table", `Slow, test_structures);
    ("utilization sweep", `Slow, test_utilization_sweep) ]

let test_transition_sweep () =
  match
    Experiments.Transition_sweep.run ~overheads:[ 0.; 0.02 ] ~rounds:40
      ~task_set:(ts ()) ~power ~seed:7 ()
  with
  | Error e -> Alcotest.failf "transition sweep: %a" Lepts_core.Solver.pp_error e
  | Ok points -> (
    match points with
    | [ zero; withov ] ->
      Alcotest.(check (float 1e-9)) "baseline inflation 0" 0.
        zero.Experiments.Transition_sweep.energy_inflation_pct;
      Alcotest.(check bool) "overhead inflates energy" true
        (withov.Experiments.Transition_sweep.energy_inflation_pct > 0.)
    | _ -> Alcotest.fail "expected two points")

let suite = suite @ [ ("transition overhead sweep", `Slow, test_transition_sweep) ]

let test_distribution_sweep () =
  match
    Experiments.Distribution_sweep.run ~rounds:60 ~task_set:(ts ()) ~power ~seed:9 ()
  with
  | Error e -> Alcotest.failf "distribution sweep: %a" Lepts_core.Solver.pp_error e
  | Ok points ->
    Alcotest.(check int) "four distributions" 4 (List.length points);
    List.iter
      (fun p ->
        Alcotest.(check int) "no misses under any distribution" 0
          p.Experiments.Distribution_sweep.misses)
      points

let suite = suite @ [ ("distribution sweep", `Slow, test_distribution_sweep) ]
