(* Aggregated test runner: `dune runtest` executes every suite. *)

let () =
  Alcotest.run "lepts"
    [ ("util", Test_util.suite);
      ("prng", Test_prng.suite);
      ("par", Test_par.suite);
      ("linalg", Test_linalg.suite);
      ("optim", Test_optim.suite);
      ("power", Test_power.suite);
      ("task", Test_task.suite);
      ("preempt", Test_preempt.suite);
      ("waterfall", Test_waterfall.suite);
      ("objective", Test_objective.suite);
      ("solver", Test_solver.suite);
      ("structure", Test_structure.suite);
      ("warm", Test_warm.suite);
      ("validate", Test_validate.suite);
      ("dvs", Test_dvs.suite);
      ("sim", Test_sim.suite);
      ("robust", Test_robust.suite);
      ("adaptive", Test_adaptive.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("serve", Test_serve.suite);
      ("transport", Test_transport.suite);
      ("daemon", Test_daemon.suite);
      ("workloads", Test_workloads.suite);
      ("experiments", Test_experiments.suite);
      ("extensions", Test_extensions.suite);
      ("yds", Test_yds.suite);
      ("trace", Test_trace.suite);
      ("nonpreemptive", Test_nonpreemptive.suite);
      ("export", Test_export.suite);
      ("properties", Test_properties.suite);
      ("ablations", Test_ablations.suite);
      ("obs", Test_obs.suite) ]
