module Model = Lepts_power.Model
module Request = Lepts_serve.Request
module Service = Lepts_serve.Service
module Shard = Lepts_serve.Shard
module Chaos = Lepts_serve.Chaos
module Transport = Lepts_serve.Transport

let power = Model.ideal ~v_min:0.5 ~v_max:4. ()

let with_path f =
  let path = Filename.temp_file "lepts-test" ".transport" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let with_dir f =
  let dir = Filename.temp_file "lepts-test" ".spool" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat dir name))
          (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let chaos_of spec =
  match Chaos.of_string spec with
  | Ok p -> Chaos.create ~profile:p
  | Error msg -> Alcotest.failf "profile %S rejected: %s" spec msg

let render_report r =
  let path = Filename.temp_file "lepts-test" ".report" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Service.print_report ~oc r;
      close_out oc;
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s)

(* --- the arrival journal --------------------------------------------------- *)

let sample_batches =
  [ { Transport.b_now_ms = 0;
      b_arrivals =
        [ { Transport.a_seq = 1; a_at_ms = 0;
            a_payload = Ok {|{"id": "spaced out", "seed": 3}|} };
          { Transport.a_seq = 2; a_at_ms = 7;
            a_payload = Error "oversized line: 99 bytes exceeds limit 64" } ];
      b_closed = false; b_drain = false };
    { Transport.b_now_ms = 250;
      b_arrivals =
        [ { Transport.a_seq = 3; a_at_ms = 250; a_payload = Ok {|{"id":"b"}|} } ];
      b_closed = true; b_drain = false } ]

let drain_replay source =
  let rec go acc =
    let b = Transport.poll source ~pending:false in
    if b.Transport.b_closed && b.Transport.b_arrivals = [] then List.rev acc
    else go (b :: acc)
  in
  go []

let test_journal_roundtrip () =
  with_path @@ fun path ->
  let j = Transport.Journal.create () in
  List.iter (Transport.Journal.record j) sample_batches;
  Alcotest.(check int) "batches counted" 2 (Transport.Journal.batches j);
  Transport.Journal.save j ~path;
  let source =
    match Transport.replay ~path with
    | Ok s -> s
    | Error msg -> Alcotest.failf "own journal refused: %s" msg
  in
  let got = drain_replay source in
  (* The closing batch is consumed by the drain loop's own termination
     test, so compare against everything it returned plus the tail. *)
  Alcotest.(check bool) "arrivals, stamps and diagnostics round-trip" true
    (got = sample_batches
    || got @ [ { Transport.b_now_ms = 250; b_arrivals = []; b_closed = true;
                 b_drain = false } ]
       = sample_batches)

let test_journal_refuses_foreign_file () =
  with_path @@ fun path ->
  let oc = open_out path in
  output_string oc "not a journal\n";
  close_out oc;
  match Transport.replay ~path with
  | Ok _ -> Alcotest.fail "accepted a non-journal file"
  | Error msg ->
    Alcotest.(check bool) "names a failed check" true
      (contains ~sub:"check failed" msg)

(* --- deadline-aware admission ---------------------------------------------- *)

(* The acceptance pin: a request whose budget lapses while queued is
   shed with status [expired] and is never dispatched — its id never
   reaches a worker. Replayed from a journal, so the timing is exact
   and the test is deterministic. *)
let test_replay_expires_queued_deadline () =
  with_path @@ fun path ->
  let j = Transport.Journal.create () in
  List.iter (Transport.Journal.record j)
    [ { Transport.b_now_ms = 0;
        b_arrivals =
          [ { Transport.a_seq = 1; a_at_ms = 0;
              a_payload = Ok {|{"id":"keep"}|} };
            { Transport.a_seq = 2; a_at_ms = 0;
              a_payload = Ok {|{"id":"late","budget_ms":100}|} } ];
        b_closed = false; b_drain = false };
      { Transport.b_now_ms = 500; b_arrivals = []; b_closed = true;
        b_drain = false } ];
  Transport.Journal.save j ~path;
  let run () =
    let solved = ref [] in
    let source =
      match Transport.replay ~path with
      | Ok s -> s
      | Error msg -> Alcotest.failf "journal refused: %s" msg
    in
    let r =
      Service.run_source
        ~config:{ Service.default_config with Service.wave = 1 }
        ~power
        ~before_solve:(fun ~attempt:_ (req : Request.t) ->
          solved := req.Request.id :: !solved)
        ~source ()
    in
    (r, !solved)
  in
  let r, solved = run () in
  Alcotest.(check int) "one expired" 1 r.Service.expired;
  Alcotest.(check int) "one processed" 1 r.Service.processed;
  Alcotest.(check bool) "expired request never dispatched" false
    (List.mem "late" solved);
  Alcotest.(check bool) "the other request solved" true
    (List.mem "keep" solved);
  (match r.Service.outcomes with
  | [ keep; late ] ->
    Alcotest.(check bool) "keep done" true
      (match keep.Service.status with Service.Done _ -> true | _ -> false);
    Alcotest.(check bool) "late expired" true
      (late.Service.status = Service.Expired);
    Alcotest.(check int) "expired made no attempts" 0 late.Service.attempts
  | _ -> Alcotest.fail "expected exactly two outcomes");
  (match r.Service.shards with
  | [ s ] ->
    Alcotest.(check int) "shard counts the expiry" 1 s.Shard.s_expired;
    Alcotest.(check int) "shard still processed the rest" 1
      s.Shard.s_processed
  | _ -> Alcotest.fail "expected one shard");
  Alcotest.(check bool) "summary reports the expiry" true
    (contains ~sub:{|"expired":1|} (render_report r));
  (* Equal replays produce byte-identical reports. *)
  let r2, _ = run () in
  Alcotest.(check string) "replay byte-stable" (render_report r)
    (render_report r2)

(* --- socket ingress -------------------------------------------------------- *)

let socket_client ~path lines ~partial =
  (* Connect with a short retry in case the listener's accept loop has
     not run yet, stream the lines, leave [partial] unterminated. *)
  let rec connect tries =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error _ when tries > 0 ->
      Unix.close fd;
      Unix.sleepf 0.02;
      connect (tries - 1)
  in
  let fd = connect 100 in
  let send s = ignore (Unix.write_substring fd s 0 (String.length s)) in
  (try
     List.iter (fun l -> send (l ^ "\n")) lines;
     Option.iter send partial
   with Unix.Unix_error _ -> ());
  Unix.close fd

let test_socket_end_to_end_with_replay () =
  with_dir @@ fun dir ->
  let sock = Filename.concat dir "lepts.sock" in
  let journal_path = Filename.concat dir "arrivals.journal" in
  let source =
    match
      Transport.socket ~read_timeout_ms:5000 ~max_line_bytes:64
        ~idle_exit_ms:300 ~path:sock ()
    with
    | Ok s -> s
    | Error msg -> Alcotest.failf "socket refused: %s" msg
  in
  let client =
    Domain.spawn (fun () ->
        socket_client ~path:sock
          [ {|{"id":"s1"}|}; String.make 80 'x' ]
          ~partial:(Some {|{"id":"part|}))
  in
  let journal = Transport.Journal.create () in
  let live = Service.run_source ~power ~journal ~source () in
  Domain.join client;
  Transport.close source;
  Alcotest.(check bool) "socket file removed on close" false
    (Sys.file_exists sock);
  Transport.Journal.save journal ~path:journal_path;
  let statuses =
    List.map (fun (o : Service.outcome) -> o.Service.status)
      live.Service.outcomes
  in
  (match statuses with
  | [ Service.Done _; Service.Rejected over; Service.Rejected part ] ->
    Alcotest.(check bool) "oversized line diagnosed" true
      (contains ~sub:"oversized line: 80 bytes exceeds limit 64" over);
    Alcotest.(check bool) "partial line diagnosed" true
      (contains ~sub:"connection closed mid-line after" part)
  | _ ->
    Alcotest.failf "unexpected outcomes: %s"
      (String.concat "; "
         (List.map
            (fun s -> Format.asprintf "%a" Service.pp_status s)
            statuses)));
  (* The journal replays the live run byte-identically — the whole
     point of recording arrivals. *)
  let replayed =
    match Transport.replay ~path:journal_path with
    | Ok source -> Service.run_source ~power ~source ()
    | Error msg -> Alcotest.failf "journal refused: %s" msg
  in
  Alcotest.(check string) "replay report byte-identical to live"
    (render_report live) (render_report replayed);
  let replayed4 =
    match Transport.replay ~path:journal_path with
    | Ok source ->
      Service.run_source
        ~config:{ Service.default_config with Service.jobs = 4 }
        ~power ~source ()
    | Error msg -> Alcotest.failf "journal refused: %s" msg
  in
  Alcotest.(check string) "replay byte-identical at jobs=4"
    (render_report live) (render_report replayed4)

let test_socket_chaos_cut () =
  with_dir @@ fun dir ->
  let sock = Filename.concat dir "cut.sock" in
  let source =
    match
      Transport.socket ~idle_exit_ms:300 ~chaos:(chaos_of "cut=1,seed=1")
        ~path:sock ()
    with
    | Ok s -> s
    | Error msg -> Alcotest.failf "socket refused: %s" msg
  in
  let client =
    Domain.spawn (fun () ->
        socket_client ~path:sock [ {|{"id":"doomed"}|} ] ~partial:None)
  in
  let r = Service.run_source ~power ~source () in
  Domain.join client;
  Transport.close source;
  match r.Service.outcomes with
  | [ { Service.status = Service.Rejected msg; _ } ] ->
    Alcotest.(check bool) "cut reported as a mid-line close" true
      (contains ~sub:"connection closed mid-line" msg)
  | _ -> Alcotest.fail "chaos cut did not reject the line"

(* --- spool ingress --------------------------------------------------------- *)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let test_spool_consumes_files () =
  with_dir @@ fun dir ->
  write_file (Filename.concat dir "b-second.ndjson") {|{"id":"two"}|};
  write_file
    (Filename.concat dir "a-first.ndjson")
    "{\"id\":\"one\"}\nnot json\n";
  write_file (Filename.concat dir "ignored.tmp") {|{"id":"never"}|};
  let source =
    match Transport.spool ~idle_exit_ms:300 ~dir () with
    | Ok s -> s
    | Error msg -> Alcotest.failf "spool refused: %s" msg
  in
  let r = Service.run_source ~power ~source () in
  Transport.close source;
  let ids = List.map (fun (o : Service.outcome) -> o.Service.id) r.Service.outcomes in
  Alcotest.(check (list string)) "files consumed in name order, bad line rejected"
    [ "one"; "line-2"; "two" ] ids;
  Alcotest.(check bool) "consumed files deleted" false
    (Sys.file_exists (Filename.concat dir "a-first.ndjson"));
  Alcotest.(check bool) "in-progress files left alone" true
    (Sys.file_exists (Filename.concat dir "ignored.tmp"))

let test_spool_chaos_flip_deterministic () =
  let run () =
    with_dir @@ fun dir ->
    write_file (Filename.concat dir "batch.ndjson")
      "{\"id\":\"f1\"}\n{\"id\":\"f2\"}\n";
    let source =
      match
        Transport.spool ~idle_exit_ms:300 ~chaos:(chaos_of "flip=1,seed=4")
          ~dir ()
      with
      | Ok s -> s
      | Error msg -> Alcotest.failf "spool refused: %s" msg
    in
    let r = Service.run_source ~power ~source () in
    Transport.close source;
    r
  in
  (* The flip is keyed by (seed, file name), so equal runs corrupt the
     same bit and the reports diff clean — chaos never costs replay. *)
  Alcotest.(check string) "flip injection deterministic"
    (render_report (run ()))
    (render_report (run ()))

(* --- coalescing and warm chains -------------------------------------------- *)

let test_coalescing_single_solve_fans_out () =
  let solves = Atomic.make 0 in
  let r =
    Service.run ~power
      ~before_solve:(fun ~attempt:_ _ -> Atomic.incr solves)
      ~lines:
        [ {|{"id":"cx1","seed":5,"rounds":3}|};
          {|{"id":"cx2","seed":5,"rounds":3}|} ]
      ()
  in
  Alcotest.(check int) "one solve for two identical requests" 1
    (Atomic.get solves);
  Alcotest.(check int) "follower counted as coalesced" 1 r.Service.coalesced;
  Alcotest.(check int) "both processed" 2 r.Service.processed;
  match r.Service.outcomes with
  | [ a; b ] ->
    Alcotest.(check bool) "leader solved" true
      (match a.Service.status with Service.Done _ -> true | _ -> false);
    Alcotest.(check bool) "identical responses (exact energy bits)" true
      (a.Service.status = b.Service.status)
  | _ -> Alcotest.fail "expected two outcomes"

let test_warm_chain_bit_identical () =
  let lines =
    [ {|{"id":"w1","tasks":3,"seed":7,"ratio":0.2,"rounds":3}|};
      {|{"id":"w2","tasks":3,"seed":7,"ratio":0.8,"rounds":3}|} ]
  in
  let run jobs =
    Service.run ~config:{ Service.default_config with Service.jobs } ~power
      ~lines ()
  in
  let r1 = run 1 in
  Alcotest.(check int) "chained requests are not coalesced" 0
    r1.Service.coalesced;
  Alcotest.(check bool) "both family members solved" true
    (List.for_all
       (fun (o : Service.outcome) ->
         match o.Service.status with Service.Done _ -> true | _ -> false)
       r1.Service.outcomes);
  Alcotest.(check string) "warm chain bit-identical across jobs"
    (render_report r1)
    (render_report (run 4));
  Alcotest.(check string) "warm chain bit-identical across runs"
    (render_report r1)
    (render_report (run 1))

let suite =
  [ ("journal round-trip", `Quick, test_journal_roundtrip);
    ("journal refuses foreign file", `Quick, test_journal_refuses_foreign_file);
    ("replay expires queued deadline", `Quick,
     test_replay_expires_queued_deadline);
    ("socket end-to-end with replay", `Quick,
     test_socket_end_to_end_with_replay);
    ("socket chaos cut", `Quick, test_socket_chaos_cut);
    ("spool consumes files", `Quick, test_spool_consumes_files);
    ("spool chaos flip deterministic", `Quick,
     test_spool_chaos_flip_deterministic);
    ("coalescing single solve fans out", `Quick,
     test_coalescing_single_solve_fans_out);
    ("warm chain bit-identical", `Quick, test_warm_chain_bit_identical) ]
