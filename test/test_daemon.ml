module Model = Lepts_power.Model
module Request = Lepts_serve.Request
module Service = Lepts_serve.Service
module Cache = Lepts_serve.Cache
module Chaos = Lepts_serve.Chaos
module Daemon = Lepts_serve.Daemon
module Checkpoint = Lepts_robust.Checkpoint

let power = Model.ideal ~v_min:0.5 ~v_max:4. ()

let with_path f =
  let path = Filename.temp_file "lepts-test" ".cache" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  contents

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let req ?(id = "a") ?(tasks = 0) ?(ratio = 0.1) ?(seed = 0) ?(rounds = 0)
    ?budget_ms ?acs_max_outer () =
  { Request.id; tasks; ratio; seed; rounds; budget_ms; acs_max_outer }

(* --- content-addressed keys ------------------------------------------------ *)

let test_cache_key_ignores_id () =
  let base = req ~id:"client-1" ~tasks:3 ~ratio:0.3 ~seed:7 ~rounds:5 () in
  Alcotest.(check string) "same content, different client: same key"
    (Cache.key base)
    (Cache.key { base with Request.id = "client-2" });
  List.iter
    (fun (label, other) ->
      Alcotest.(check bool) (label ^ " changes the key") true
        (Cache.key base <> Cache.key other))
    [ ("tasks", { base with Request.tasks = 4 });
      ("ratio", { base with Request.ratio = 0.30000000000000004 });
      ("seed", { base with Request.seed = 8 });
      ("rounds", { base with Request.rounds = 6 });
      ("budget_ms", { base with Request.budget_ms = Some 100 });
      ("acs_max_outer", { base with Request.acs_max_outer = Some 3 }) ]

(* --- provenance rules ------------------------------------------------------ *)

let entry ?(stage = "acs") ?mean_energy ?(attempts = 1) ?(crashes = 0)
    ?schedule provenance =
  { Cache.stage; mean_energy; attempts; crashes; provenance; schedule }

let test_cache_provenance_rules () =
  let c = Cache.create ~fingerprint:"fp" () in
  let key = "k1" in
  Alcotest.(check bool) "empty cache misses" true (Cache.find c ~key = `Miss);
  (* A degraded schedule is stored but never served as authoritative. *)
  Cache.store c ~key (entry ~stage:"wcs" Cache.Fallback);
  (match Cache.find c ~key with
  | `Stale e ->
    Alcotest.(check string) "stale entry keeps its stage" "wcs" e.Cache.stage
  | `Hit _ -> Alcotest.fail "served a fallback schedule as authoritative"
  | `Miss -> Alcotest.fail "stored entry lost");
  (* A later full-ACS solve of the same content upgrades it in place. *)
  Cache.store c ~key (entry Cache.Authoritative);
  (match Cache.find c ~key with
  | `Hit e -> Alcotest.(check string) "upgraded" "acs" e.Cache.stage
  | _ -> Alcotest.fail "authoritative entry not served");
  (* ... and is never demoted by a degraded re-solve. *)
  Cache.store c ~key (entry ~stage:"rm-vmax" Cache.Fallback);
  (match Cache.find c ~key with
  | `Hit e -> Alcotest.(check string) "not demoted" "acs" e.Cache.stage
  | _ -> Alcotest.fail "authoritative entry demoted");
  let s = Cache.stats c in
  Alcotest.(check int) "one insert" 1 s.Cache.s_inserts;
  Alcotest.(check int) "one upgrade" 1 s.Cache.s_upgrades;
  Alcotest.(check int) "one entry" 1 s.Cache.entries

(* --- snapshot persistence -------------------------------------------------- *)

let test_cache_snapshot_roundtrip () =
  with_path @@ fun path ->
  let fp = Checkpoint.fingerprint ~parts:[ "roundtrip" ] in
  let c = Cache.create ~fingerprint:fp () in
  Cache.store c ~key:"ka" (entry ~mean_energy:0.1 ~attempts:2 Cache.Authoritative);
  Cache.store c ~key:"kb" (entry ~stage:"wcs" ~crashes:1 Cache.Fallback);
  Cache.store c ~key:"kc" (entry ~mean_energy:1e-300 Cache.Authoritative);
  Cache.save c ~path;
  let c' =
    match Cache.load ~path ~fingerprint:fp () with
    | Ok c' -> c'
    | Error msg -> Alcotest.failf "valid snapshot refused: %s" msg
  in
  Alcotest.(check int) "all entries back" 3 (Cache.size c');
  (match Cache.find c' ~key:"ka" with
  | `Hit e ->
    Alcotest.(check bool) "float bits exact" true
      (e.Cache.mean_energy = Some 0.1);
    Alcotest.(check int) "attempts kept" 2 e.Cache.attempts
  | _ -> Alcotest.fail "ka lost");
  (match Cache.find c' ~key:"kb" with
  | `Stale e -> Alcotest.(check int) "crashes kept" 1 e.Cache.crashes
  | _ -> Alcotest.fail "fallback provenance lost in the round-trip");
  (* Re-saving the loaded cache reproduces the file byte for byte. *)
  let first = read_file path in
  Cache.save c' ~path;
  Alcotest.(check string) "snapshot byte-stable" first (read_file path)

let test_cache_snapshot_refusals () =
  with_path @@ fun path ->
  let fp = Checkpoint.fingerprint ~parts:[ "refusals" ] in
  let c = Cache.create ~fingerprint:fp () in
  Cache.store c ~key:"ka" (entry Cache.Authoritative);
  Cache.save c ~path;
  let good = read_file path in
  (* Fingerprint: a snapshot from a differently-configured daemon. *)
  let other = Checkpoint.fingerprint ~parts:[ "other-power-model" ] in
  (match Cache.load ~path ~fingerprint:other () with
  | Ok _ -> Alcotest.fail "accepted a foreign snapshot"
  | Error msg ->
    Alcotest.(check bool) "names the fingerprint check and both prints" true
      (contains ~sub:"fingerprint check failed" msg
      && contains ~sub:fp msg && contains ~sub:other msg));
  (* Checksum: one flipped byte. *)
  let flipped = Bytes.of_string good in
  Bytes.set flipped (String.index good 'k') 'K';
  write_file path (Bytes.to_string flipped);
  (match Cache.load ~path ~fingerprint:fp () with
  | Ok _ -> Alcotest.fail "accepted a corrupt snapshot"
  | Error msg ->
    Alcotest.(check bool) "names the checksum check" true
      (contains ~sub:"checksum check failed" msg));
  (* Truncation (a torn write). *)
  write_file path (String.sub good 0 (String.length good - 7));
  (match Cache.load ~path ~fingerprint:fp () with
  | Ok _ -> Alcotest.fail "accepted a truncated snapshot"
  | Error msg ->
    Alcotest.(check bool) "truncation caught" true
      (contains ~sub:"check failed" msg));
  (* Magic: a checkpoint is not a cache. *)
  write_file path
    (Checkpoint.Snapshot.render ~magic:"lepts-checkpoint" ~version:1
       ~fingerprint:fp ~body:[]);
  (match Cache.load ~path ~fingerprint:fp () with
  | Ok _ -> Alcotest.fail "accepted another family's snapshot"
  | Error msg ->
    Alcotest.(check bool) "names the magic check" true
      (contains ~sub:"magic check failed" msg));
  (* Version: future format. *)
  write_file path
    (Checkpoint.Snapshot.render ~magic:"lepts-cache" ~version:99
       ~fingerprint:fp ~body:[]);
  (match Cache.load ~path ~fingerprint:fp () with
  | Ok _ -> Alcotest.fail "accepted a future version"
  | Error msg ->
    Alcotest.(check bool) "names the version check" true
      (contains ~sub:"version check failed" msg));
  (* Body: a malformed entry line in a checksum-valid file. *)
  write_file path
    (Checkpoint.Snapshot.render ~magic:"lepts-cache" ~version:2
       ~fingerprint:fp ~body:[ "bound -"; "entry only-three fields" ]);
  match Cache.load ~path ~fingerprint:fp () with
  | Ok _ -> Alcotest.fail "accepted a malformed entry"
  | Error msg ->
    Alcotest.(check bool) "names the malformed line" true
      (contains ~sub:"malformed line" msg)

(* --- bounded cache --------------------------------------------------------- *)

let test_cache_bound_evicts_deterministically () =
  let make () =
    let c = Cache.create ~max_entries:2 ~fingerprint:"fp" () in
    Cache.store ~wave:1 c ~key:"k1" (entry Cache.Authoritative);
    Cache.store ~wave:1 c ~key:"k2" (entry ~stage:"wcs" Cache.Fallback);
    Cache.store ~wave:2 c ~key:"k3" (entry Cache.Authoritative);
    c
  in
  let c = make () in
  Alcotest.(check int) "never exceeds the bound" 2 (Cache.size c);
  Alcotest.(check int) "one eviction counted" 1
    (Cache.stats c).Cache.s_evictions;
  (* Fallback entries go first, whatever their recency. *)
  Alcotest.(check bool) "fallback evicted first" true
    (Cache.find c ~key:"k2" = `Miss);
  (match Cache.find c ~key:"k1" with
  | `Hit _ -> ()
  | _ -> Alcotest.fail "authoritative entry evicted before the fallback");
  (* The acceptance pin: equal runs under eviction pressure evict the
     same keys — their snapshots are byte-identical. *)
  with_path @@ fun p1 ->
  with_path @@ fun p2 ->
  Cache.save (make ()) ~path:p1;
  Cache.save (make ()) ~path:p2;
  Alcotest.(check string) "equal runs, byte-identical snapshots"
    (read_file p1) (read_file p2)

let test_cache_load_zero_entries () =
  with_path @@ fun path ->
  let fp = Checkpoint.fingerprint ~parts:[ "empty" ] in
  Cache.save (Cache.create ~fingerprint:fp ()) ~path;
  match Cache.load ~path ~fingerprint:fp () with
  | Ok c ->
    Alcotest.(check int) "zero entries round-trip" 0 (Cache.size c);
    Alcotest.(check bool) "unboundedness preserved" true
      (Cache.max_entries c = None)
  | Error msg -> Alcotest.failf "empty snapshot refused: %s" msg

let test_cache_load_truncates_larger_snapshot () =
  with_path @@ fun path ->
  let fp = Checkpoint.fingerprint ~parts:[ "trunc" ] in
  let c = Cache.create ~fingerprint:fp () in
  Cache.store ~wave:1 c ~key:"k1" (entry Cache.Authoritative);
  Cache.store ~wave:2 c ~key:"k2" (entry Cache.Authoritative);
  Cache.store ~wave:3 c ~key:"k3" (entry Cache.Authoritative);
  Cache.store ~wave:1 c ~key:"k0" (entry ~stage:"wcs" Cache.Fallback);
  Cache.save c ~path;
  (* A snapshot over the daemon's bound is truncated deterministically
     in eviction order — never refused. *)
  let c2 =
    match Cache.load ~max_entries:2 ~path ~fingerprint:fp () with
    | Ok c2 -> c2
    | Error msg -> Alcotest.failf "bounded load refused: %s" msg
  in
  Alcotest.(check int) "truncated to the bound" 2 (Cache.size c2);
  Alcotest.(check int) "truncation counted as evictions" 2
    (Cache.stats c2).Cache.s_evictions;
  Alcotest.(check bool) "fallback dropped first" true
    (Cache.find c2 ~key:"k0" = `Miss);
  Alcotest.(check bool) "oldest authoritative dropped next" true
    (Cache.find c2 ~key:"k1" = `Miss);
  Alcotest.(check bool) "daemon bound adopted" true
    (Cache.max_entries c2 = Some 2);
  (* save → load → save is byte-identical once the bound settled. *)
  with_path @@ fun p2 ->
  with_path @@ fun p3 ->
  Cache.save c2 ~path:p2;
  match Cache.load ~path:p2 ~fingerprint:fp () with
  | Ok c3 ->
    Cache.save c3 ~path:p3;
    Alcotest.(check string) "save→load→save byte-identical" (read_file p2)
      (read_file p3)
  | Error msg -> Alcotest.failf "re-load refused: %s" msg

(* --- warm restart byte-identity (the acceptance gate) ---------------------- *)

let serve_lines =
  [ {|{"id": "a1", "rounds": 4, "seed": 1}|};
    {|{"id": "b2", "rounds": 4, "seed": 2}|};
    {|{"id": "bad3", "acs_max_outer": 0}|};
    {|{"id": "c4", "rounds": 4, "seed": 3}|};
    {|{"id": "dup5", "rounds": 4, "seed": 1}|} ]

let daemon_config ?cache_path ?(jobs = 1) () =
  { Daemon.service = { Service.default_config with Service.jobs; wave = 2 };
    cache_path; snapshot_every = 1; health_every = 0; journal_path = None;
    max_cache_entries = None }

let energy_bits (r : Service.report) =
  List.filter_map
    (fun (o : Service.outcome) ->
      match o.Service.status with
      | Service.Done { mean_energy = Some e; _ } ->
        Some (Int64.bits_of_float e)
      | _ -> None)
    r.Service.outcomes

let test_daemon_warm_restart_identical () =
  with_path @@ fun path ->
  let solved = ref [] in
  let before_solve ~attempt:_ (r : Request.t) =
    solved := r.Request.id :: !solved
  in
  let run ?(jobs = 1) () =
    solved := [];
    Daemon.run
      ~config:(daemon_config ~cache_path:path ~jobs ())
      ~power ~before_solve ~lines:serve_lines ()
  in
  let cold = run () in
  Alcotest.(check bool) "first run is cold" true
    (cold.Daemon.start = Daemon.Cold);
  (* dup5 has a1's content: served from the cache within the same run. *)
  Alcotest.(check bool) "intra-run hit skips the solve" false
    (List.mem "dup5" !solved);
  Alcotest.(check bool) "intra-run hit counted" true
    ((Cache.stats cold.Daemon.cache).Cache.s_hits > 0);
  let cold_solved = !solved in
  let warm = run () in
  (match warm.Daemon.start with
  | Daemon.Warm n -> Alcotest.(check bool) "warm with entries" true (n > 0)
  | _ -> Alcotest.fail "second run did not start warm");
  (* The gate: byte-identical reports, exact energy bits included. *)
  Alcotest.(check bool) "warm report identical to cold" true
    (warm.Daemon.report = cold.Daemon.report);
  Alcotest.(check bool) "mean energies bit-identical" true
    (energy_bits warm.Daemon.report = energy_bits cold.Daemon.report);
  (* Only the degraded request re-solves: its entry has fallback
     provenance, which the cache refuses to serve as authoritative. *)
  Alcotest.(check bool) "acs-solved requests served from cache" true
    (not (List.mem "a1" !solved) && not (List.mem "b2" !solved));
  Alcotest.(check bool) "fallback-provenance request re-solved" true
    (List.mem "bad3" !solved);
  Alcotest.(check bool) "cold run solved the acs requests" true
    (List.mem "a1" cold_solved);
  (* And the whole thing is jobs-independent, cache and shards included. *)
  let warm4 = run ~jobs:4 () in
  Alcotest.(check bool) "warm report identical at jobs=4" true
    (warm4.Daemon.report = cold.Daemon.report)

let test_daemon_refuses_corrupt_snapshot () =
  with_path @@ fun path ->
  let run () =
    Daemon.run
      ~config:(daemon_config ~cache_path:path ())
      ~power ~lines:serve_lines ()
  in
  let cold = run () in
  let contents = read_file path in
  let mangled = Bytes.of_string contents in
  Bytes.set mangled (String.length contents / 2)
    (Char.chr (Char.code (Bytes.get mangled (String.length contents / 2)) lxor 1));
  write_file path (Bytes.to_string mangled);
  let recovered = run () in
  (match recovered.Daemon.start with
  | Daemon.Refused msg ->
    Alcotest.(check bool) "diagnostic names the failed check" true
      (contains ~sub:"check failed" msg)
  | _ -> Alcotest.fail "corrupt snapshot not refused");
  (* A refused snapshot falls back to a cold start — same answers. *)
  Alcotest.(check bool) "cold fallback still serves identically" true
    (recovered.Daemon.report = cold.Daemon.report)

let test_daemon_fingerprint_pins_power_model () =
  with_path @@ fun path ->
  let _ =
    Daemon.run
      ~config:(daemon_config ~cache_path:path ())
      ~power ~lines:serve_lines ()
  in
  let other_power = Model.ideal ~v_min:0.5 ~v_max:3.5 () in
  let r =
    Daemon.run
      ~config:(daemon_config ~cache_path:path ())
      ~power:other_power ~lines:serve_lines ()
  in
  match r.Daemon.start with
  | Daemon.Refused msg ->
    Alcotest.(check bool) "names the fingerprint check" true
      (contains ~sub:"fingerprint check failed" msg)
  | _ -> Alcotest.fail "schedules computed under another power model accepted"

let test_daemon_bounded_cache_same_answers () =
  with_path @@ fun path ->
  let bounded =
    Daemon.run
      ~config:
        { (daemon_config ~cache_path:path ()) with
          Daemon.max_cache_entries = Some 1 }
      ~power ~lines:serve_lines ()
  in
  Alcotest.(check bool) "bound respected" true
    (Cache.size bounded.Daemon.cache <= 1);
  Alcotest.(check bool) "entries were evicted" true
    ((Cache.stats bounded.Daemon.cache).Cache.s_evictions > 0);
  (* Eviction changes what is cached, never what is answered. *)
  let unbounded =
    Daemon.run ~config:(daemon_config ()) ~power ~lines:serve_lines ()
  in
  Alcotest.(check bool) "eviction never changes answers" true
    (bounded.Daemon.report = unbounded.Daemon.report)

(* --- chaos harness --------------------------------------------------------- *)

let test_chaos_profile_parser () =
  (match Chaos.of_string "crash=0.2,slow=0.1,slow-ms=2,drop=0.1,corrupt=1,seed=7" with
  | Error msg -> Alcotest.failf "valid profile rejected: %s" msg
  | Ok p ->
    Alcotest.(check bool) "all fields parsed" true
      (p.Chaos.seed = 7 && p.Chaos.crash_prob = 0.2 && p.Chaos.slow_prob = 0.1
      && p.Chaos.slow_ms = 2 && p.Chaos.drop_prob = 0.1
      && p.Chaos.corrupt_snapshot));
  List.iter
    (fun (spec, expect) ->
      match Chaos.of_string spec with
      | Ok _ -> Alcotest.failf "accepted %S" spec
      | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%S rejected mentioning %S" spec expect)
          true (contains ~sub:expect msg))
    [ ("", "empty");
      ("crash", "key=value");
      ("banana=1", "unknown key");
      ("crash=lots", "not a number");
      ("slow-ms=2.5", "not an integer");
      ("crash=1.5", "crash");
      ("crash=nan", "crash");
      ("drop=-0.1", "drop") ]

let chaos_of spec =
  match Chaos.of_string spec with
  | Ok p -> Chaos.create ~profile:p
  | Error msg -> Alcotest.failf "profile %S rejected: %s" spec msg

let test_chaos_deterministic () =
  (* The chaos-smoke acceptance: a fixed-seed profile injects the same
     faults on every run — reports and trailers diff clean. *)
  let run () =
    Daemon.run
      ~config:(daemon_config ())
      ~power
      ~chaos:(chaos_of "crash=0.4,drop=0.2,seed=11")
      ~lines:serve_lines ()
  in
  let a = run () in
  let b = run () in
  Alcotest.(check bool) "reports identical" true
    (a.Daemon.report = b.Daemon.report);
  (match (a.Daemon.chaos_line, b.Daemon.chaos_line) with
  | Some la, Some lb ->
    Alcotest.(check string) "chaos trailers identical" la lb;
    Alcotest.(check bool) "trailer says corruption skipped" true
      (contains ~sub:{|"snapshot":"skipped"|} la)
  | _ -> Alcotest.fail "chaos trailer missing")

let test_chaos_crash_injection_restarts () =
  (* Injected crashes go through the real supervision loop: workers
     restart and the requests still complete. *)
  let config =
    { (daemon_config ()) with
      Daemon.service =
        { Service.default_config with Service.wave = 2; max_worker_crashes = 8 } }
  in
  let r =
    Daemon.run ~config ~power
      ~chaos:(chaos_of "crash=0.6,seed=3")
      ~lines:serve_lines ()
  in
  let crashes =
    List.fold_left
      (fun acc (o : Service.outcome) -> acc + o.Service.crashes)
      0 r.Daemon.report.Service.outcomes
  in
  Alcotest.(check bool) "some crashes injected" true (crashes > 0);
  Alcotest.(check bool) "crashed workers restarted and served" true
    (List.exists
       (fun (o : Service.outcome) ->
         o.Service.crashes > 0
         && match o.Service.status with Service.Done _ -> true | _ -> false)
       r.Daemon.report.Service.outcomes)

let test_chaos_drop_injection () =
  let r =
    Daemon.run
      ~config:(daemon_config ())
      ~power
      ~chaos:(chaos_of "drop=0.5,seed=5")
      ~lines:serve_lines ()
  in
  let kept = List.length r.Daemon.report.Service.outcomes in
  Alcotest.(check bool) "some requests dropped before admission" true
    (kept < List.length serve_lines);
  match r.Daemon.chaos_line with
  | Some line ->
    Alcotest.(check bool) "trailer counts the drops" true
      (contains
         ~sub:(Printf.sprintf "\"dropped\":%d" (List.length serve_lines - kept))
         line)
  | None -> Alcotest.fail "chaos trailer missing"

let test_chaos_snapshot_corruption_refused_and_restored () =
  with_path @@ fun path ->
  let r =
    Daemon.run
      ~config:(daemon_config ~cache_path:path ())
      ~power
      ~chaos:(chaos_of "corrupt=1,seed=9")
      ~lines:serve_lines ()
  in
  (match r.Daemon.chaos_line with
  | Some line ->
    Alcotest.(check bool) "validating reload refused the corruption" true
      (contains ~sub:{|"snapshot":"corrupted+refused"|} line)
  | None -> Alcotest.fail "chaos trailer missing");
  (* The harness restores the good bytes, so the next start is warm. *)
  match Cache.load ~path ~fingerprint:(Cache.fingerprint r.Daemon.cache) () with
  | Ok c -> Alcotest.(check bool) "snapshot restored" true (Cache.size c > 0)
  | Error msg -> Alcotest.failf "restored snapshot unreadable: %s" msg

let suite =
  [ ("cache key ignores id", `Quick, test_cache_key_ignores_id);
    ("cache provenance rules", `Quick, test_cache_provenance_rules);
    ("cache snapshot round-trip", `Quick, test_cache_snapshot_roundtrip);
    ("cache snapshot refusals", `Quick, test_cache_snapshot_refusals);
    ("cache bound evicts deterministically", `Quick,
     test_cache_bound_evicts_deterministically);
    ("cache load zero entries", `Quick, test_cache_load_zero_entries);
    ("cache load truncates larger snapshot", `Quick,
     test_cache_load_truncates_larger_snapshot);
    ("daemon bounded cache same answers", `Quick,
     test_daemon_bounded_cache_same_answers);
    ("daemon warm restart identical", `Quick,
     test_daemon_warm_restart_identical);
    ("daemon refuses corrupt snapshot", `Quick,
     test_daemon_refuses_corrupt_snapshot);
    ("daemon fingerprint pins power model", `Quick,
     test_daemon_fingerprint_pins_power_model);
    ("chaos profile parser", `Quick, test_chaos_profile_parser);
    ("chaos deterministic", `Quick, test_chaos_deterministic);
    ("chaos crash injection restarts", `Quick,
     test_chaos_crash_injection_restarts);
    ("chaos drop injection", `Quick, test_chaos_drop_injection);
    ("chaos snapshot corruption refused", `Quick,
     test_chaos_snapshot_corruption_refused_and_restored) ]
