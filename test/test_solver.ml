open Lepts_core
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Plan = Lepts_preempt.Plan
module Model = Lepts_power.Model

let power = Model.ideal ~v_min:1. ~v_max:4. ()

let motivation_ts () =
  Task_set.create
    [ Task.create ~name:"t1" ~period:20 ~wcec:20. ~acec:10. ~bcec:0.;
      Task.create ~name:"t2" ~period:20 ~wcec:20. ~acec:10. ~bcec:0.;
      Task.create ~name:"t3" ~period:20 ~wcec:20. ~acec:10. ~bcec:0. ]

let preemptive_ts () =
  Task_set.scale_wcec_to_utilization
    (Task_set.create
       [ Task.with_ratio ~name:"a" ~period:4 ~wcec:4. ~ratio:0.1;
         Task.with_ratio ~name:"b" ~period:6 ~wcec:5. ~ratio:0.1;
         Task.with_ratio ~name:"c" ~period:12 ~wcec:8. ~ratio:0.1 ])
    ~power:(Model.ideal ~v_min:0.5 ~v_max:4. ())
    ~target:0.7

let solve_pair plan power =
  let wcs, _ = Result.get_ok (Solver.solve_wcs ~plan ~power ()) in
  let acs, _ =
    Result.get_ok
      (Solver.solve_acs
         ~warm_starts:[ (wcs.Static_schedule.end_times, wcs.Static_schedule.quotas) ]
         ~plan ~power ())
  in
  (wcs, acs)

let test_initial_point_feasible () =
  let plan = Plan.expand (preemptive_ts ()) in
  let power = Model.ideal ~v_min:0.5 ~v_max:4. () in
  match Solver.initial_point ~plan ~power with
  | Error _ -> Alcotest.fail "schedulable set rejected"
  | Ok (e, q) ->
    let schedule = Static_schedule.create ~plan ~power ~end_times:e ~quotas:q in
    Alcotest.(check bool) "greedy fill is feasible" true (Validate.is_feasible schedule)

let test_initial_point_unschedulable () =
  let ts =
    Task_set.create
      [ Task.create ~name:"a" ~period:4 ~wcec:10. ~acec:5. ~bcec:0.;
        Task.create ~name:"b" ~period:4 ~wcec:10. ~acec:5. ~bcec:0. ]
  in
  let plan = Plan.expand ts in
  (match Solver.initial_point ~plan ~power with
  | Error Solver.Unschedulable -> ()
  | Error (Solver.Solver_stalled _) -> Alcotest.fail "wrong error"
  | Ok _ -> Alcotest.fail "overloaded set accepted");
  (match Solver.solve_acs ~plan ~power () with
  | Error Solver.Unschedulable -> ()
  | Error (Solver.Solver_stalled _) | Ok _ -> Alcotest.fail "solve must reject too")

let test_wcs_motivation_optimum () =
  (* The known closed-form optimum: uniform 3 V, ends at 6.67/13.33/20,
     energy 540. *)
  let plan = Plan.expand (motivation_ts ()) in
  let wcs, stats = Result.get_ok (Solver.solve_wcs ~plan ~power ()) in
  Alcotest.(check (float 0.05)) "e1" (20. /. 3.) wcs.Static_schedule.end_times.(0);
  Alcotest.(check (float 0.05)) "e2" (40. /. 3.) wcs.Static_schedule.end_times.(1);
  Alcotest.(check (float 0.05)) "e3" 20. wcs.Static_schedule.end_times.(2);
  Alcotest.(check (float 0.5)) "worst energy" 540. stats.Solver.objective

let test_acs_motivation_optimum () =
  (* The paper's "another schedule": ends 10/15/20, average energy 120,
     worst-case 720. *)
  let plan = Plan.expand (motivation_ts ()) in
  let _, acs = solve_pair plan power in
  Alcotest.(check (float 0.05)) "e1" 10. acs.Static_schedule.end_times.(0);
  Alcotest.(check (float 0.05)) "e2" 15. acs.Static_schedule.end_times.(1);
  Alcotest.(check (float 0.05)) "e3" 20. acs.Static_schedule.end_times.(2);
  Alcotest.(check (float 0.5)) "average energy" 120.
    (Static_schedule.predicted_energy acs ~mode:Objective.Average);
  Alcotest.(check (float 1.)) "worst energy" 720.
    (Static_schedule.predicted_energy acs ~mode:Objective.Worst)

let test_both_feasible_preemptive () =
  let power = Model.ideal ~v_min:0.5 ~v_max:4. () in
  let plan = Plan.expand (preemptive_ts ()) in
  let wcs, acs = solve_pair plan power in
  Alcotest.(check bool) "WCS feasible" true (Validate.is_feasible wcs);
  Alcotest.(check bool) "ACS feasible" true (Validate.is_feasible acs)

let test_acs_beats_wcs_on_average () =
  let power = Model.ideal ~v_min:0.5 ~v_max:4. () in
  let plan = Plan.expand (preemptive_ts ()) in
  let wcs, acs = solve_pair plan power in
  let avg s = Static_schedule.predicted_energy s ~mode:Objective.Average in
  Alcotest.(check bool) "ACS <= WCS on average objective" true
    (avg acs <= avg wcs +. 1e-6)

let test_wcs_beats_acs_on_worst () =
  let power = Model.ideal ~v_min:0.5 ~v_max:4. () in
  let plan = Plan.expand (preemptive_ts ()) in
  let wcs, acs = solve_pair plan power in
  let worst s = Static_schedule.predicted_energy s ~mode:Objective.Worst in
  Alcotest.(check bool) "WCS <= ACS on worst objective" true
    (worst wcs <= worst acs +. 1e-6)

let test_quota_sums () =
  let power = Model.ideal ~v_min:0.5 ~v_max:4. () in
  let ts = preemptive_ts () in
  let plan = Plan.expand ts in
  let _, acs = solve_pair plan power in
  Array.iteri
    (fun i per_instance ->
      let wcec = (Task_set.task ts i).Task.wcec in
      Array.iteri
        (fun j _ ->
          Alcotest.(check (float 1e-6)) "quota sum = WCEC" wcec
            (Static_schedule.quota_of_instance acs ~task:i ~instance:j))
        per_instance)
    plan.Plan.instance_subs

let test_end_times_within_segments () =
  let power = Model.ideal ~v_min:0.5 ~v_max:4. () in
  let plan = Plan.expand (preemptive_ts ()) in
  let wcs, acs = solve_pair plan power in
  List.iter
    (fun s ->
      Array.iteri
        (fun k (sub : Lepts_preempt.Sub_instance.t) ->
          let e = s.Static_schedule.end_times.(k) in
          Alcotest.(check bool) "within segment" true
            (e >= sub.Lepts_preempt.Sub_instance.release -. 1e-9
             && e <= sub.Lepts_preempt.Sub_instance.boundary +. 1e-9))
        plan.Plan.order)
    [ wcs; acs ]

let test_random_sets_solve_and_validate () =
  (* Property over generated task sets: both solves succeed, validate,
     and ACS never loses on the average objective. *)
  let power = Model.ideal ~v_min:0.5 ~v_max:4. () in
  let rng = Lepts_prng.Xoshiro256.create ~seed:123 in
  for i = 0 to 4 do
    let n = 2 + (i mod 3) in
    let config = Lepts_workloads.Random_gen.default_config ~n_tasks:n ~ratio:0.3 in
    (* Cap the size to keep the test quick. *)
    let config = { config with Lepts_workloads.Random_gen.max_sub_instances = 120 } in
    match Lepts_workloads.Random_gen.generate config ~power ~rng with
    | Error msg -> Alcotest.failf "generation failed: %s" msg
    | Ok ts ->
      let plan = Plan.expand ts in
      let wcs, acs = solve_pair plan power in
      Alcotest.(check bool) "wcs feasible" true (Validate.is_feasible wcs);
      Alcotest.(check bool) "acs feasible" true (Validate.is_feasible acs);
      let avg s = Static_schedule.predicted_energy s ~mode:Objective.Average in
      Alcotest.(check bool) "acs no worse" true (avg acs <= avg wcs +. 1e-6)
  done

let test_alap_never_infeasible () =
  (* The ALAP start point used internally must remain feasible: check
     via a full solve on a set with tight boundaries. *)
  let power = Model.ideal ~v_min:0.5 ~v_max:4. () in
  let ts =
    Task_set.create
      [ Task.with_ratio ~name:"x" ~period:6 ~wcec:5. ~ratio:0.5;
        Task.with_ratio ~name:"y" ~period:8 ~wcec:5. ~ratio:0.5;
        Task.with_ratio ~name:"z" ~period:24 ~wcec:10. ~ratio:0.5 ]
  in
  let plan = Plan.expand ts in
  let _, acs = solve_pair plan power in
  Alcotest.(check bool) "feasible" true (Validate.is_feasible acs)

let test_alpha_model_solve () =
  (* The full pipeline with the alpha-power delay model (numerical
     gradients): small instance to stay quick. *)
  let alpha =
    Model.create ~v_min:1. ~v_max:4. (Model.Alpha { k = 0.25; v_th = 0.3; alpha = 1.5 })
  in
  let ts =
    Task_set.create
      [ Task.create ~name:"t1" ~period:20 ~wcec:20. ~acec:10. ~bcec:0.;
        Task.create ~name:"t2" ~period:20 ~wcec:20. ~acec:10. ~bcec:0. ]
  in
  let plan = Plan.expand ts in
  match Solver.solve_acs ~max_outer:8 ~max_inner:300 ~plan ~power:alpha () with
  | Error e -> Alcotest.failf "alpha solve failed: %a" Solver.pp_error e
  | Ok (schedule, _) ->
    Alcotest.(check bool) "feasible under alpha model" true
      (Validate.is_feasible schedule)

let check_bits_arr msg expect got =
  Alcotest.(check int) (msg ^ ": length") (Array.length expect) (Array.length got);
  Array.iteri
    (fun i x ->
      if not (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float got.(i)))
      then Alcotest.failf "%s.(%d): %h <> %h" msg i x got.(i))
    expect

let test_parallel_multistart_bit_identical () =
  (* Without a wall budget the multi-start is deterministic: every
     [jobs] value must return exactly the same schedule and stats on
     both the simple and the preemptive set. *)
  let run_set ts power =
    let plan = Plan.expand ts in
    let solve jobs =
      let wcs, _ = Result.get_ok (Solver.solve_wcs ~jobs ~plan ~power ()) in
      let acs, stats =
        Result.get_ok
          (Solver.solve_acs ~jobs
             ~warm_starts:
               [ (wcs.Static_schedule.end_times, wcs.Static_schedule.quotas) ]
             ~plan ~power ())
      in
      (wcs, acs, stats)
    in
    let wcs1, acs1, stats1 = solve 1 in
    List.iter
      (fun jobs ->
        let wcsj, acsj, statsj = solve jobs in
        check_bits_arr "wcs end-times" wcs1.Static_schedule.end_times
          wcsj.Static_schedule.end_times;
        check_bits_arr "wcs quotas" wcs1.Static_schedule.quotas
          wcsj.Static_schedule.quotas;
        check_bits_arr "acs end-times" acs1.Static_schedule.end_times
          acsj.Static_schedule.end_times;
        check_bits_arr "acs quotas" acs1.Static_schedule.quotas
          acsj.Static_schedule.quotas;
        check_bits_arr "objective" [| stats1.Solver.objective |]
          [| statsj.Solver.objective |];
        Alcotest.(check int) "outer iterations" stats1.Solver.outer_iterations
          statsj.Solver.outer_iterations)
      [ 2; 4 ]
  in
  run_set (motivation_ts ()) power;
  run_set (preemptive_ts ()) (Model.ideal ~v_min:0.5 ~v_max:4. ())

let test_wall_budget_returns () =
  (* A tiny wall budget must still return a usable schedule (at least
     one start always runs), and a generous one matches the unbudgeted
     result. *)
  let plan = Plan.expand (motivation_ts ()) in
  (match Solver.solve_acs ~wall_budget:1e-9 ~plan ~power () with
  | Error e -> Alcotest.failf "budgeted solve failed: %a" Solver.pp_error e
  | Ok (schedule, _) ->
    Alcotest.(check bool) "feasible under tiny budget" true
      (Validate.is_feasible schedule));
  let unbudgeted, _ = Result.get_ok (Solver.solve_acs ~plan ~power ()) in
  let generous, _ =
    Result.get_ok (Solver.solve_acs ~wall_budget:3600. ~plan ~power ())
  in
  check_bits_arr "generous budget = no budget"
    unbudgeted.Static_schedule.end_times generous.Static_schedule.end_times

let test_stats_reported () =
  let plan = Plan.expand (motivation_ts ()) in
  let _, stats = Result.get_ok (Solver.solve_acs ~plan ~power ()) in
  Alcotest.(check bool) "outer > 0" true (stats.Solver.outer_iterations > 0);
  Alcotest.(check bool) "violation small" true (stats.Solver.max_violation < 1e-3)

let suite =
  [ ("initial point feasible", `Quick, test_initial_point_feasible);
    ("unschedulable rejected", `Quick, test_initial_point_unschedulable);
    ("WCS motivation optimum", `Quick, test_wcs_motivation_optimum);
    ("ACS motivation optimum", `Quick, test_acs_motivation_optimum);
    ("both feasible (preemptive)", `Quick, test_both_feasible_preemptive);
    ("ACS <= WCS on average", `Quick, test_acs_beats_wcs_on_average);
    ("WCS <= ACS on worst", `Quick, test_wcs_beats_acs_on_worst);
    ("quota sums equal WCEC", `Quick, test_quota_sums);
    ("end-times within segments", `Quick, test_end_times_within_segments);
    ("random sets solve + validate", `Slow, test_random_sets_solve_and_validate);
    ("tight boundaries stay feasible", `Quick, test_alap_never_infeasible);
    ("alpha-power model solve", `Slow, test_alpha_model_solve);
    ("stats reported", `Quick, test_stats_reported);
    ("parallel multi-start bit-identical", `Slow, test_parallel_multistart_bit_identical);
    ("wall budget returns a schedule", `Quick, test_wall_budget_returns) ]
