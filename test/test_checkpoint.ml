module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Plan = Lepts_preempt.Plan
module Model = Lepts_power.Model
module Policy = Lepts_dvs.Policy
module Rng = Lepts_prng.Xoshiro256
module Checkpoint = Lepts_robust.Checkpoint
module Campaign = Lepts_robust.Campaign
module Fault_injector = Lepts_robust.Fault_injector

let power = Model.ideal ~v_min:0.5 ~v_max:4. ()

(* A path in the temp directory that does not exist yet (a fresh
   session must see no file), cleaned up afterwards. *)
let with_path f =
  let path = Filename.temp_file "lepts-test" ".ckpt" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  contents

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let encode_int x = [ string_of_int x ]

let decode_int = function
  | [ s ] -> int_of_string s
  | _ -> failwith "bad int entry"

let session_ok = function
  | Ok s -> s
  | Error msg -> Alcotest.failf "session refused: %s" msg

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* --- fingerprints and field codecs ---------------------------------------- *)

let test_fingerprint_canonical () =
  let a = Checkpoint.fingerprint ~parts:[ "faults"; "seed=5" ] in
  let b = Checkpoint.fingerprint ~parts:[ "faults"; "seed=5" ] in
  let c = Checkpoint.fingerprint ~parts:[ "seed=5"; "faults" ] in
  Alcotest.(check string) "deterministic" a b;
  Alcotest.(check bool) "order matters" true (a <> c);
  Alcotest.(check int) "hex64" 16 (String.length a);
  let h = Checkpoint.hash_floats [| 1.; 2.; 0.1 |] in
  Alcotest.(check string) "float hash deterministic" h
    (Checkpoint.hash_floats [| 1.; 2.; 0.1 |]);
  Alcotest.(check bool) "float hash sees content" true
    (h <> Checkpoint.hash_floats [| 1.; 2.; 0.2 |])

let test_float_field_exact () =
  (* The codec must round-trip the IEEE-754 bits exactly — resumed
     energies may not drift by even one ulp. *)
  List.iter
    (fun x ->
      let y = Checkpoint.float_of_field (Checkpoint.float_field x) in
      Alcotest.(check bool)
        (Printf.sprintf "%h round-trips" x)
        true
        (Int64.bits_of_float x = Int64.bits_of_float y))
    [ 0.; -0.; 1. /. 3.; 4. *. atan 1.; 1e-310; max_float; min_float;
      infinity; neg_infinity; Float.nan ];
  Alcotest.(check bool) "malformed field raises" true
    (try ignore (Checkpoint.float_of_field "not-hex"); false
     with Failure _ -> true)

(* --- save / load ----------------------------------------------------------- *)

let test_save_load_roundtrip () =
  with_path @@ fun path ->
  let fp = Checkpoint.fingerprint ~parts:[ "roundtrip" ] in
  let session = session_ok (Checkpoint.start ~path ~resume:false ~fingerprint:fp) in
  let computed = ref 0 in
  let a =
    Checkpoint.map_indices ~session ~section:"sq" ~encode:encode_int
      ~decode:decode_int ~jobs:1 ~n:20
      ~f:(fun i -> incr computed; i * i)
      ()
  in
  Alcotest.(check int) "all units computed once" 20 !computed;
  let session2 = session_ok (Checkpoint.start ~path ~resume:true ~fingerprint:fp) in
  Alcotest.(check int) "entries persisted" 20
    (Checkpoint.entries session2 ~section:"sq");
  let b =
    Checkpoint.map_indices ~session:session2 ~section:"sq" ~encode:encode_int
      ~decode:decode_int ~jobs:1 ~n:20
      ~f:(fun _ -> Alcotest.fail "cached entry recomputed")
      ()
  in
  Alcotest.(check bool) "resumed array bit-identical" true (a = b)

let test_resume_computes_only_missing () =
  with_path @@ fun path ->
  let fp = Checkpoint.fingerprint ~parts:[ "partial" ] in
  let session = session_ok (Checkpoint.start ~path ~resume:false ~fingerprint:fp) in
  let _ =
    Checkpoint.map_indices ~session ~chunk:4 ~section:"sq" ~encode:encode_int
      ~decode:decode_int ~jobs:1 ~n:8 ~f:(fun i -> i * i) ()
  in
  (* A longer run over the same section: only indices 8..19 are new. *)
  let session2 = session_ok (Checkpoint.start ~path ~resume:true ~fingerprint:fp) in
  let calls = ref [] in
  let out =
    Checkpoint.map_indices ~session:session2 ~section:"sq" ~encode:encode_int
      ~decode:decode_int ~jobs:1 ~n:20
      ~f:(fun i -> calls := i :: !calls; i * i)
      ()
  in
  Alcotest.(check int) "only the missing tail computed" 12 (List.length !calls);
  List.iter
    (fun i ->
      Alcotest.(check bool) "no cached index recomputed" true (i >= 8))
    !calls;
  Array.iteri
    (fun i v -> Alcotest.(check int) "values in index order" (i * i) v)
    out

let test_sections_are_independent () =
  with_path @@ fun path ->
  let fp = Checkpoint.fingerprint ~parts:[ "sections" ] in
  let session = session_ok (Checkpoint.start ~path ~resume:false ~fingerprint:fp) in
  let run section f =
    Checkpoint.map_indices ~session ~section ~encode:encode_int
      ~decode:decode_int ~jobs:1 ~n:5 ~f ()
  in
  let a = run "double" (fun i -> 2 * i) in
  let b = run "triple" (fun i -> 3 * i) in
  Alcotest.(check int) "section a isolated" 5
    (Checkpoint.entries session ~section:"double");
  Alcotest.(check int) "section b isolated" 5
    (Checkpoint.entries session ~section:"triple");
  Alcotest.(check bool) "distinct results" true (a.(4) = 8 && b.(4) = 12)

(* --- refusal paths --------------------------------------------------------- *)

let test_corrupt_file_refused () =
  with_path @@ fun path ->
  let fp = Checkpoint.fingerprint ~parts:[ "corrupt" ] in
  let session = session_ok (Checkpoint.start ~path ~resume:false ~fingerprint:fp) in
  let _ =
    Checkpoint.map_indices ~session ~section:"sq" ~encode:encode_int
      ~decode:decode_int ~jobs:1 ~n:4 ~f:(fun i -> i) ()
  in
  let contents = read_file path in
  (* Flip one payload byte: the checksum must catch it. *)
  let mangled = Bytes.of_string contents in
  let target = String.index contents 'q' in
  Bytes.set mangled target 'Q';
  write_file path (Bytes.to_string mangled);
  (match Checkpoint.start ~path ~resume:true ~fingerprint:fp with
  | Ok _ -> Alcotest.fail "loaded a corrupt checkpoint"
  | Error msg ->
    Alcotest.(check bool) "names the checksum" true
      (contains ~sub:"checksum" msg));
  (* Truncation (a torn write) is caught the same way. *)
  write_file path (String.sub contents 0 (String.length contents - 10));
  match Checkpoint.start ~path ~resume:true ~fingerprint:fp with
  | Ok _ -> Alcotest.fail "loaded a truncated checkpoint"
  | Error _ -> ()

let test_version_mismatch_refused () =
  with_path @@ fun path ->
  write_file path "lepts-checkpoint/99\nfingerprint 0\nchecksum 0\n";
  match Checkpoint.start ~path ~resume:true ~fingerprint:"00" with
  | Ok _ -> Alcotest.fail "loaded an unsupported version"
  | Error msg ->
    Alcotest.(check bool) "names the version" true (contains ~sub:"version" msg)

let test_snapshot_check_diagnostics () =
  (* Every refusal names the check that tripped — magic, version,
     checksum or fingerprint — so an operator can tell a wrong artifact
     from a torn write from a foreign run. *)
  with_path @@ fun path ->
  let refuse ~check contents =
    write_file path contents;
    match Checkpoint.Snapshot.read ~path ~magic:"lepts-demo" ~version:1 with
    | Ok _ -> Alcotest.failf "accepted a snapshot failing the %s check" check
    | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "names the %s check in %S" check msg)
        true
        (contains ~sub:(check ^ " check failed") msg && contains ~sub:path msg)
  in
  let good =
    Checkpoint.Snapshot.render ~magic:"lepts-demo" ~version:1
      ~fingerprint:"aa" ~body:[ "entry x" ]
  in
  (* Magic: a different family's snapshot, a headerless file, an empty
     file. *)
  refuse ~check:"magic"
    (Checkpoint.Snapshot.render ~magic:"lepts-other" ~version:1
       ~fingerprint:"aa" ~body:[]);
  refuse ~check:"magic" "not a snapshot at all\n";
  refuse ~check:"magic" "";
  (* Version: same family, future format. *)
  refuse ~check:"version"
    (Checkpoint.Snapshot.render ~magic:"lepts-demo" ~version:99
       ~fingerprint:"aa" ~body:[]);
  (* Checksum: one flipped payload byte, and a truncated tail. *)
  let flipped = Bytes.of_string good in
  Bytes.set flipped (String.index good 'x') 'y';
  refuse ~check:"checksum" (Bytes.to_string flipped);
  refuse ~check:"checksum" (String.sub good 0 (String.length good - 5));
  (* Fingerprint: a checksum-valid file missing its fingerprint line.
     [fingerprint ~parts] joins with '\n', so these parts reproduce the
     framing checksum of the bare-header payload. *)
  refuse ~check:"fingerprint"
    ("lepts-demo/1\nchecksum "
    ^ Checkpoint.fingerprint ~parts:[ "lepts-demo/1"; "" ]
    ^ "\n");
  (* Round-trip sanity: the untouched snapshot parses back. *)
  write_file path good;
  match Checkpoint.Snapshot.read ~path ~magic:"lepts-demo" ~version:1 with
  | Ok (fp, body) ->
    Alcotest.(check string) "fingerprint round-trips" "aa" fp;
    Alcotest.(check (list string)) "body round-trips" [ "entry x" ] body
  | Error msg -> Alcotest.failf "refused a valid snapshot: %s" msg

let test_fingerprint_mismatch_refused () =
  with_path @@ fun path ->
  let fp = Checkpoint.fingerprint ~parts:[ "run-a" ] in
  let session = session_ok (Checkpoint.start ~path ~resume:false ~fingerprint:fp) in
  Checkpoint.save session;
  let other = Checkpoint.fingerprint ~parts:[ "run-b" ] in
  (* Both modes must refuse: splicing rounds from a different run's
     parameters would corrupt the result stream silently. *)
  List.iter
    (fun resume ->
      match Checkpoint.start ~path ~resume ~fingerprint:other with
      | Ok _ -> Alcotest.fail "accepted a foreign checkpoint"
      | Error msg ->
        Alcotest.(check bool) "names both fingerprints" true
          (contains ~sub:fp msg && contains ~sub:other msg))
    [ true; false ]

let test_resume_requires_file () =
  with_path @@ fun path ->
  match Checkpoint.start ~path ~resume:true ~fingerprint:"00" with
  | Ok _ -> Alcotest.fail "resumed from nothing"
  | Error msg ->
    Alcotest.(check bool) "says there is nothing to resume" true
      (contains ~sub:"no checkpoint" msg)

(* --- graceful drain -------------------------------------------------------- *)

let test_drain_saves_and_raises () =
  with_path @@ fun path ->
  let fp = Checkpoint.fingerprint ~parts:[ "drain" ] in
  let session = session_ok (Checkpoint.start ~path ~resume:false ~fingerprint:fp) in
  let polls = ref 0 in
  let should_stop () = incr polls; !polls >= 2 in
  (* Poll sequence: once before the first chunk (false), once after it
     (true) -> exactly one chunk lands on disk, then Drained. *)
  (try
     ignore
       (Checkpoint.map_indices ~session ~chunk:4 ~should_stop ~section:"sq"
          ~encode:encode_int ~decode:decode_int ~jobs:1 ~n:10 ~f:(fun i -> i) ());
     Alcotest.fail "expected Drained"
   with Checkpoint.Drained -> ());
  let session2 = session_ok (Checkpoint.start ~path ~resume:true ~fingerprint:fp) in
  Alcotest.(check int) "one chunk persisted" 4
    (Checkpoint.entries session2 ~section:"sq");
  let out =
    Checkpoint.map_indices ~session:session2 ~section:"sq" ~encode:encode_int
      ~decode:decode_int ~jobs:1 ~n:10 ~f:(fun i -> i) ()
  in
  Alcotest.(check bool) "resume completes the map" true
    (out = Array.init 10 Fun.id);
  (* A drain request with nothing left to compute is a no-op: the run
     finishes instead of raising. *)
  let done_ =
    Checkpoint.map_indices ~session:session2 ~should_stop:(fun () -> true)
      ~section:"sq" ~encode:encode_int ~decode:decode_int ~jobs:1 ~n:10
      ~f:(fun _ -> Alcotest.fail "nothing should run")
      ()
  in
  Alcotest.(check bool) "fully-cached map ignores drain" true
    (done_ = Array.init 10 Fun.id)

(* --- campaign kill/resume bit-identity ------------------------------------- *)

let acs_schedule () =
  let ts =
    Task_set.scale_wcec_to_utilization
      (Task_set.create
         [ Task.with_ratio ~name:"a" ~period:4 ~wcec:4. ~ratio:0.1;
           Task.with_ratio ~name:"b" ~period:6 ~wcec:5. ~ratio:0.1;
           Task.with_ratio ~name:"c" ~period:12 ~wcec:8. ~ratio:0.1 ])
      ~power ~target:0.7
  in
  let plan = Plan.expand ts in
  fst (Result.get_ok (Lepts_core.Solver.solve_acs ~plan ~power ()))

let moderate_spec =
  { Fault_injector.seed = 42; overrun_prob = 0.3; overrun_factor = 2.;
    jitter_prob = 0.3; jitter_frac = 0.2; denial_prob = 0.1 }

let test_campaign_drain_resume_bit_identical () =
  (* The acceptance property behind the CI crash-recovery job, run
     in-process: interrupt a checkpointed campaign mid-arm, resume it,
     and require the resumed report to equal the uninterrupted one on
     every field. 120 rounds with the default chunk of 50 puts the
     drain two chunks into the first arm. *)
  with_path @@ fun path ->
  let acs = acs_schedule () in
  let campaign ?checkpoint ?should_stop () =
    Campaign.run ~rounds:120 ?checkpoint ?should_stop ~spec:moderate_spec
      ~schedule:acs ~policy:Policy.Greedy ~seed:5 ()
  in
  let uninterrupted = campaign () in
  let fp = Checkpoint.fingerprint ~parts:[ "campaign-test" ] in
  let session = session_ok (Checkpoint.start ~path ~resume:false ~fingerprint:fp) in
  let polls = ref 0 in
  let should_stop () = incr polls; !polls >= 3 in
  (try
     ignore (campaign ~checkpoint:session ~should_stop ());
     Alcotest.fail "expected the campaign to drain"
   with Checkpoint.Drained -> ());
  let session2 = session_ok (Checkpoint.start ~path ~resume:true ~fingerprint:fp) in
  Alcotest.(check int) "two chunks of the clean arm on disk" 100
    (Checkpoint.entries session2 ~section:"clean");
  let resumed = campaign ~checkpoint:session2 () in
  Alcotest.(check bool) "resumed report bit-identical" true
    (uninterrupted = resumed)

let suite =
  [ ("fingerprint canonical", `Quick, test_fingerprint_canonical);
    ("float field exact", `Quick, test_float_field_exact);
    ("save/load round trip", `Quick, test_save_load_roundtrip);
    ("resume computes only missing", `Quick, test_resume_computes_only_missing);
    ("sections independent", `Quick, test_sections_are_independent);
    ("corrupt file refused", `Quick, test_corrupt_file_refused);
    ("version mismatch refused", `Quick, test_version_mismatch_refused);
    ("snapshot check diagnostics", `Quick, test_snapshot_check_diagnostics);
    ("fingerprint mismatch refused", `Quick, test_fingerprint_mismatch_refused);
    ("resume requires a file", `Quick, test_resume_requires_file);
    ("drain saves and raises", `Quick, test_drain_saves_and_raises);
    ("campaign drain/resume bit-identical", `Quick,
     test_campaign_drain_resume_bit_identical) ]
