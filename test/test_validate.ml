open Lepts_core
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Plan = Lepts_preempt.Plan
module Sub = Lepts_preempt.Sub_instance
module Model = Lepts_power.Model

let power = Model.ideal ~v_min:1. ~v_max:4. ()

let plan3 () =
  Plan.expand
    (Task_set.create
       [ Task.create ~name:"t1" ~period:20 ~wcec:20. ~acec:10. ~bcec:0.;
         Task.create ~name:"t2" ~period:20 ~wcec:20. ~acec:10. ~bcec:0.;
         Task.create ~name:"t3" ~period:20 ~wcec:20. ~acec:10. ~bcec:0. ])

let schedule plan e q = Static_schedule.create ~plan ~power ~end_times:e ~quotas:q

let test_feasible_passes () =
  let plan = plan3 () in
  let s = schedule plan [| 10.; 15.; 20. |] [| 20.; 20.; 20. |] in
  Alcotest.(check bool) "valid" true (Validate.is_feasible s)

let test_quota_sum_violation () =
  let plan = plan3 () in
  let s = schedule plan [| 10.; 15.; 20. |] [| 20.; 15.; 20. |] in
  match Validate.check s with
  | Ok () -> Alcotest.fail "missing quota violation"
  | Error vs ->
    Alcotest.(check bool) "mentions the instance" true
      (List.exists (fun v -> v.Validate.where = "T2.1") vs)

let test_overvoltage_violation () =
  (* Too little room between end-times: needs more than v_max. *)
  let plan = plan3 () in
  let s = schedule plan [| 10.; 12.; 20. |] [| 20.; 20.; 20. |] in
  match Validate.check s with
  | Ok () -> Alcotest.fail "missing v_max violation"
  | Error vs ->
    Alcotest.(check bool) "voltage violation reported" true
      (List.exists
         (fun v ->
           String.length v.Validate.what >= 18
           && String.sub v.Validate.what 0 18 = "worst-case voltage")
         vs)

let test_deadline_violation () =
  let plan = plan3 () in
  (* End-time beyond the period/deadline. *)
  let s = schedule plan [| 10.; 15.; 25. |] [| 20.; 20.; 20. |] in
  match Validate.check s with
  | Ok () -> Alcotest.fail "missing deadline violation"
  | Error vs ->
    Alcotest.(check bool) "names the offending sub and deadline" true
      (List.exists
         (fun v ->
           v.Validate.where = "T3.1.1"
           && v.Validate.what = "end-time 25 exceeds deadline 20")
         vs)

let test_boundary_violation () =
  (* Two periods: t2's first segment ends at t1's second release (a
     boundary strictly before t2's deadline). Pushing that end-time past
     the boundary — but not past the deadline — must produce a boundary
     violation record, not a deadline one. *)
  let plan =
    Plan.expand
      (Task_set.create
         [ Task.create ~name:"t1" ~period:4 ~wcec:4. ~acec:2. ~bcec:0.;
           Task.create ~name:"t2" ~period:8 ~wcec:4. ~acec:2. ~bcec:0. ])
  in
  let base = Result.get_ok (Solver.solve_wcs ~plan ~power ()) |> fst in
  let sub =
    Array.to_list plan.Plan.order
    |> List.find (fun s -> s.Sub.boundary < s.Sub.deadline -. 1e-9)
  in
  let e = Array.copy base.Static_schedule.end_times in
  e.(sub.Sub.index) <-
    sub.Sub.boundary +. (0.5 *. (sub.Sub.deadline -. sub.Sub.boundary));
  let s = schedule plan e base.Static_schedule.quotas in
  match Validate.check s with
  | Ok () -> Alcotest.fail "missing boundary violation"
  | Error vs ->
    let expected =
      Printf.sprintf "end-time %g exceeds segment boundary %g"
        e.(sub.Sub.index) sub.Sub.boundary
    in
    Alcotest.(check bool) "boundary record present" true
      (List.exists
         (fun v -> v.Validate.where = Sub.label sub && v.Validate.what = expected)
         vs);
    let contains ~needle hay =
      let n = String.length needle and m = String.length hay in
      let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "no deadline record" true
      (not
         (List.exists
            (fun v ->
              v.Validate.where = Sub.label sub
              && contains ~needle:"exceeds deadline" v.Validate.what)
            vs))

let test_below_vmin_is_fine () =
  (* Big window, tiny quota: worst voltage below v_min is allowed (the
     processor idles after finishing early). *)
  let plan =
    Plan.expand
      (Task_set.create [ Task.create ~name:"t" ~period:100 ~wcec:1. ~acec:0.5 ~bcec:0. ])
  in
  let s = schedule plan [| 100. |] [| 1. |] in
  Alcotest.(check bool) "valid" true (Validate.is_feasible s)

let test_zero_quota_ignores_window () =
  (* A zero-quota sub-instance contributes nothing; degenerate windows
     on it are fine. *)
  let plan = plan3 () in
  let s = schedule plan [| 10.; 10.; 20. |] [| 20.; 0.; 40. |] in
  (* quotas must still sum right per instance: t2 has 0 <> 20. *)
  (match Validate.check s with
  | Ok () -> Alcotest.fail "sum check should fire"
  | Error vs -> Alcotest.(check int) "only sum violations" 2 (List.length vs))

let test_structural_checks () =
  let plan = plan3 () in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Static_schedule.create: vector length mismatch") (fun () ->
      ignore (schedule plan [| 1. |] [| 1. |]));
  Alcotest.check_raises "negative quota"
    (Invalid_argument "Static_schedule.create: negative quota") (fun () ->
      ignore (schedule plan [| 10.; 15.; 20. |] [| -1.; 20.; 20. |]))

let test_avg_workloads () =
  let plan = plan3 () in
  let s = schedule plan [| 10.; 15.; 20. |] [| 20.; 20.; 20. |] in
  let w = Static_schedule.avg_workloads s in
  (* Unsplit tasks: average workload = ACEC. *)
  Alcotest.(check (array (float 1e-9))) "acec" [| 10.; 10.; 10. |] w

let test_pp_violation () =
  let v = { Validate.where = "T1.1"; what = "broken" } in
  Alcotest.(check string) "format" "T1.1: broken"
    (Format.asprintf "%a" Validate.pp_violation v)

let suite =
  [ ("feasible schedule passes", `Quick, test_feasible_passes);
    ("quota sum violation", `Quick, test_quota_sum_violation);
    ("over-voltage violation", `Quick, test_overvoltage_violation);
    ("deadline violation", `Quick, test_deadline_violation);
    ("boundary violation", `Quick, test_boundary_violation);
    ("below v_min allowed", `Quick, test_below_vmin_is_fine);
    ("zero-quota windows ignored", `Quick, test_zero_quota_ignores_window);
    ("structural checks", `Quick, test_structural_checks);
    ("avg workloads", `Quick, test_avg_workloads);
    ("violation printer", `Quick, test_pp_violation) ]
