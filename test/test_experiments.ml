module Model = Lepts_power.Model
module Experiments = Lepts_experiments

let power = Model.ideal ~v_min:0.5 ~v_max:4. ()

let test_sweeps_jobs_bit_identical () =
  (* Every experiment that takes [jobs] must return structurally equal
     results at -j 1 and -j 4 (the records are all floats/ints/strings,
     so [=] is exact). Small round counts: this gates determinism, not
     statistics. *)
  let ts = Experiments.Motivation.task_set () in
  let mpower = Experiments.Motivation.power () in
  let util jobs =
    Experiments.Utilization_sweep.run ~utilizations:[ 0.5; 0.7 ] ~rounds:40
      ~jobs ~task_set:ts ~power:mpower ~seed:11 ()
  in
  Alcotest.(check bool) "utilization sweep" true (util 1 = util 4);
  let trans jobs =
    Result.get_ok
      (Experiments.Transition_sweep.run ~overheads:[ 0.; 0.01 ] ~rounds:40 ~jobs
         ~task_set:ts ~power:mpower ~seed:12 ())
  in
  Alcotest.(check bool) "transition sweep" true (trans 1 = trans 4);
  let dist jobs =
    Result.get_ok
      (Experiments.Distribution_sweep.run ~rounds:40 ~jobs ~task_set:ts
         ~power:mpower ~seed:13 ())
  in
  Alcotest.(check bool) "distribution sweep" true (dist 1 = dist 4)

let test_fig6a_jobs_bit_identical () =
  let config =
    { Experiments.Fig6a.quick_config with
      task_counts = [ 2 ]; ratios = [ 0.5 ]; sets_per_point = 3; rounds = 30 }
  in
  let run jobs solver_jobs =
    Experiments.Fig6a.run ~jobs ~solver_jobs config ~power
  in
  let base = run 1 1 in
  Alcotest.(check bool) "set-level jobs" true (base = run 4 1);
  Alcotest.(check bool) "solver-level jobs" true (base = run 1 4);
  Alcotest.(check bool) "both levels" true (base = run 2 2)

let test_motivation_reproduces_paper () =
  match Experiments.Motivation.run () with
  | Error e -> Alcotest.failf "motivation failed: %a" Lepts_core.Solver.pp_error e
  | Ok r ->
    Alcotest.(check (float 0.1)) "WCS e1" 6.67 r.Experiments.Motivation.wcs_end_times.(0);
    Alcotest.(check (float 0.1)) "WCS e2" 13.33 r.wcs_end_times.(1);
    Alcotest.(check (float 0.1)) "ACS e1" 10. r.acs_end_times.(0);
    Alcotest.(check (float 0.1)) "ACS e2" 15. r.acs_end_times.(1);
    Alcotest.(check (float 0.1)) "ACS e3" 20. r.acs_end_times.(2);
    Alcotest.(check (float 1.)) "avg improvement ~24-25%" 24.7 r.improvement_pct;
    Alcotest.(check (float 1.)) "worst penalty ~33%" 33.3 r.worst_penalty_pct;
    Alcotest.(check (float 0.05)) "task1 worst V" 2. r.acs_worst_voltages.(0);
    Alcotest.(check (float 0.05)) "task2 worst V" 4. r.acs_worst_voltages.(1);
    let table = Format.asprintf "%s" (Lepts_util.Table.render (Experiments.Motivation.to_table r)) in
    Alcotest.(check bool) "table renders" true (String.length table > 100)

let test_improvement_measure () =
  let ts = Experiments.Motivation.task_set () in
  let power = Experiments.Motivation.power () in
  match Experiments.Improvement.measure ~rounds:50 ~task_set:ts ~power ~sim_seed:3 () with
  | Error e -> Alcotest.failf "measure failed: %a" Lepts_core.Solver.pp_error e
  | Ok r ->
    Alcotest.(check int) "no WCS misses" 0 r.Experiments.Improvement.wcs_misses;
    Alcotest.(check int) "no ACS misses" 0 r.acs_misses;
    Alcotest.(check bool) "ACS saves energy" true (r.improvement_pct > 0.);
    Alcotest.(check int) "3 sub-instances" 3 r.sub_instances

let test_fig6a_tiny_sweep () =
  let config =
    { Experiments.Fig6a.quick_config with
      task_counts = [ 2; 3 ]; ratios = [ 0.1; 0.9 ]; sets_per_point = 2; rounds = 30 }
  in
  let points = Experiments.Fig6a.run config ~power in
  Alcotest.(check int) "4 points" 4 (List.length points);
  List.iter
    (fun p ->
      Alcotest.(check int) "no deadline misses" 0 p.Experiments.Fig6a.total_misses;
      Alcotest.(check bool) "sets measured" true (p.sets_measured > 0);
      Alcotest.(check bool) "improvement finite" true
        (Float.is_finite p.mean_improvement_pct))
    points;
  let table = Lepts_util.Table.render (Experiments.Fig6a.to_table points) in
  Alcotest.(check bool) "table renders" true (String.length table > 50)

let test_fig6a_ratio_trend () =
  (* The paper's robust qualitative claim: more workload variation
     (smaller ratio) gives more improvement. Averaged over a few sets
     at a fixed task count. *)
  let config =
    { Experiments.Fig6a.quick_config with
      task_counts = [ 3 ]; ratios = [ 0.1; 0.9 ]; sets_per_point = 4; rounds = 60 }
  in
  match Experiments.Fig6a.run config ~power with
  | [ low; high ] ->
    Alcotest.(check bool) "0.1 beats 0.9" true
      (low.Experiments.Fig6a.mean_improvement_pct
       > high.Experiments.Fig6a.mean_improvement_pct)
  | _ -> Alcotest.fail "expected two points"

let test_fig6b_cnc () =
  let config =
    { Experiments.Fig6b.quick_config with ratios = [ 0.1 ]; rounds = 30; include_gap = false }
  in
  match Experiments.Fig6b.run config ~power with
  | [ p ] ->
    Alcotest.(check string) "application" "CNC" p.Experiments.Fig6b.application;
    Alcotest.(check int) "no misses" 0 p.misses;
    Alcotest.(check bool) "positive improvement" true (p.improvement_pct > 0.)
  | _ -> Alcotest.fail "expected one point"

let test_policies_ablation () =
  let ts = Experiments.Motivation.task_set () in
  let power = Experiments.Motivation.power () in
  match Experiments.Policies.run ~rounds:40 ~task_set:ts ~power ~seed:5 () with
  | Error e -> Alcotest.failf "policies failed: %a" Lepts_core.Solver.pp_error e
  | Ok cells ->
    Alcotest.(check int) "2 schedules x 3 policies" 6 (List.length cells);
    List.iter
      (fun c -> Alcotest.(check int) "no misses" 0 c.Experiments.Policies.misses)
      cells;
    (* Greedy must beat max-speed on both schedules. *)
    let energy schedule policy =
      (List.find
         (fun c ->
           c.Experiments.Policies.schedule = schedule
           && c.Experiments.Policies.policy = policy)
         cells)
        .Experiments.Policies.mean_energy
    in
    List.iter
      (fun s ->
        Alcotest.(check bool) "greedy <= static" true
          (energy s Lepts_dvs.Policy.Greedy <= energy s Lepts_dvs.Policy.Static_voltage +. 1e-9);
        Alcotest.(check bool) "static <= max-speed" true
          (energy s Lepts_dvs.Policy.Static_voltage
           <= energy s Lepts_dvs.Policy.Max_speed +. 1e-9))
      [ "WCS"; "ACS" ]

let suite =
  [ ("motivation reproduces paper", `Quick, test_motivation_reproduces_paper);
    ("improvement measurement", `Quick, test_improvement_measure);
    ("fig6a tiny sweep", `Slow, test_fig6a_tiny_sweep);
    ("fig6a ratio trend", `Slow, test_fig6a_ratio_trend);
    ("fig6b CNC point", `Slow, test_fig6b_cnc);
    ("policy ablation", `Quick, test_policies_ablation);
    ("sweeps bit-identical across jobs", `Slow, test_sweeps_jobs_bit_identical);
    ("fig6a bit-identical across jobs", `Slow, test_fig6a_jobs_bit_identical) ]
