(* The structure-exploiting solve path (DESIGN.md §12): the fast
   kernels — flat block projection, incremental forward sweeps, pruned
   penalty/multiplier/adjoint loops — must be bit-identical to the
   dense reference kernels, at every level from a single projection to
   a full multi-start solve. *)

open Lepts_core
module Plan = Lepts_preempt.Plan
module Model = Lepts_power.Model
module Projection = Lepts_optim.Projection
module Pg = Lepts_optim.Projected_gradient
module Rng = Lepts_prng.Xoshiro256

let power = Model.ideal ~v_min:0.5 ~v_max:4. ()

let check_bits_arr msg (expect : float array) (got : float array) =
  Alcotest.(check int) (msg ^ " length") (Array.length expect) (Array.length got);
  Array.iteri
    (fun i x ->
      if not (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float got.(i)))
      then Alcotest.failf "%s.(%d): %h <> %h" msg i x got.(i))
    expect

(* --- projection kernels ------------------------------------------------- *)

let sizes = [ 1; 2; 3; 4; 7; 16; 17; 31; 32; 33; 64; 88; 200; 255; 256; 257; 300; 512 ]

(* Random inputs plus the adversarial shapes: heavy ties (the sort
   order is only unique up to ties), negatives (clipped coordinates),
   all zeros, and a zero total. *)
let projection_inputs rng n =
  let random = Array.init n (fun _ -> Rng.uniform rng ~lo:(-2.) ~hi:5.) in
  let ties =
    Array.init n (fun _ -> float_of_int (Rng.int rng ~bound:4) /. 2.)
  in
  [ (random, 3.5); (random, 0.); (ties, 2.25); (Array.make n 0., 1.) ]

let test_fast_projection_bit_identical () =
  let rng = Rng.create ~seed:41 in
  List.iter
    (fun n ->
      List.iter
        (fun (x, total) ->
          let reference = Array.copy x in
          Projection.simplex_ip ~total ~scratch:(Array.make n 0.) reference;
          let fast = Array.copy x in
          (* Deliberately oversized buffers: the fast kernel projects a
             prefix of a shared max-length allocation. *)
          let fast_buf = Array.make (n + 3) nan in
          Array.blit fast 0 fast_buf 0 n;
          Projection.simplex_fast_ip ~total ~scratch:(Array.make (n + 3) nan)
            ~n fast_buf;
          check_bits_arr
            (Printf.sprintf "fast projection n=%d total=%g" n total)
            reference (Array.sub fast_buf 0 n))
        (projection_inputs rng n))
    sizes

let test_condat_projection_agrees () =
  let rng = Rng.create ~seed:43 in
  List.iter
    (fun n ->
      List.iter
        (fun (x, total) ->
          let reference = Array.copy x in
          Projection.simplex_ip ~total ~scratch:(Array.make n 0.) reference;
          let condat = Array.copy x in
          Projection.simplex_condat_ip ~total ~scratch:(Array.make n nan)
            ~n condat;
          let sum = ref 0. in
          Array.iteri
            (fun i v ->
              if v < 0. then Alcotest.failf "condat n=%d: negative %g" n v;
              sum := !sum +. v;
              let scale = Float.max 1. (Float.max (Float.abs reference.(i)) total) in
              if Float.abs (v -. reference.(i)) > 1e-12 *. scale then
                Alcotest.failf "condat n=%d total=%g .(%d): %.17g vs %.17g"
                  n total i v reference.(i))
            condat;
          if Float.abs (!sum -. total) > 1e-8 *. Float.max 1. total then
            Alcotest.failf "condat n=%d: sum %g <> total %g" n !sum total)
        (projection_inputs rng n))
    sizes

(* --- workspace block index ---------------------------------------------- *)

let test_block_index_matches_plan () =
  let plans =
    [ Plan.expand (Lepts_workloads.Cnc.task_set ~power ~ratio:0.1 ());
      (let rng = Rng.create ~seed:105 in
       Plan.expand
         (Result.get_ok
            (Lepts_workloads.Random_gen.generate
               (Lepts_workloads.Random_gen.default_config ~n_tasks:5 ~ratio:0.3)
               ~power ~rng))) ]
  in
  List.iter
    (fun plan ->
      let ws = Workspace.create plan in
      let m = Plan.size plan in
      Alcotest.(check int) "offsets span m" m ws.Workspace.blk_off.(ws.Workspace.n_blocks);
      (* The flat index must list every instance's sub-instances
         contiguously, in (task, instance) order, tagged with the
         owning task — exactly the simplex constraints of the NLP. *)
      let b = ref 0 in
      Array.iteri
        (fun i per ->
          Array.iter
            (fun subs ->
              let off = ws.Workspace.blk_off.(!b) in
              Alcotest.(check int) "block length" (Array.length subs)
                (ws.Workspace.blk_off.(!b + 1) - off);
              Alcotest.(check int) "block task" i ws.Workspace.blk_task.(!b);
              Array.iteri
                (fun j k ->
                  Alcotest.(check int) "block element" k
                    ws.Workspace.blk_idx.(off + j))
                subs;
              incr b)
            per)
        plan.Plan.instance_subs;
      Alcotest.(check int) "every instance is a block" !b ws.Workspace.n_blocks;
      let seen = Array.make m false in
      Array.iter (fun k -> seen.(k) <- true) ws.Workspace.blk_idx;
      Alcotest.(check bool) "index is a permutation" true
        (Array.for_all Fun.id seen))
    plans

(* --- full solves --------------------------------------------------------- *)

(* Random task sets at several sizes and ratios; [max_sub_instances]
   keeps each solve fast enough for the suite. *)
let solve_fixtures =
  lazy
    (let rng = Rng.create ~seed:2026 in
     List.filter_map
       (fun (n, ratio) ->
         let config =
           { (Lepts_workloads.Random_gen.default_config ~n_tasks:n ~ratio) with
             Lepts_workloads.Random_gen.max_sub_instances = 150 }
         in
         match Lepts_workloads.Random_gen.generate config ~power ~rng with
         | Error _ -> None
         | Ok ts -> Some (Plan.expand ts))
       [ (2, 0.2); (3, 0.5); (4, 0.2); (5, 0.3) ])

let test_fast_solve_bit_identical () =
  List.iter
    (fun plan ->
      List.iter
        (fun mode ->
          let solve structure =
            Result.get_ok (Solver.solve ~structure ~mode ~plan ~power ())
          in
          let exact, exact_stats = solve Solver.Exact in
          let fast, fast_stats = solve Solver.Fast in
          check_bits_arr "end-times" exact.Static_schedule.end_times
            fast.Static_schedule.end_times;
          check_bits_arr "quotas" exact.Static_schedule.quotas
            fast.Static_schedule.quotas;
          check_bits_arr "objective" [| exact_stats.Solver.objective |]
            [| fast_stats.Solver.objective |];
          (* Never-worse is implied by bit-identity; stated separately so
             a future fast-path change that breaks identity still has a
             quality floor to answer to. *)
          Alcotest.(check bool) "fast never worse" true
            (fast_stats.Solver.objective
             <= exact_stats.Solver.objective +. 1e-12))
        [ Objective.Average; Objective.Worst ])
    (Lazy.force solve_fixtures)

let test_warm_fast_matches_warm_exact () =
  let plan = Plan.expand (Lepts_workloads.Cnc.task_set ~power ~ratio:0.1 ()) in
  let wcs, _ = Result.get_ok (Solver.solve_wcs ~plan ~power ()) in
  let warm structure =
    Result.get_ok
      (Solver.solve_warm ~structure ~mode:Objective.Average ~prev:wcs ~plan
         ~power ())
  in
  let exact, exact_stats = warm Solver.Exact in
  let fast, fast_stats = warm Solver.Fast in
  check_bits_arr "warm end-times" exact.Static_schedule.end_times
    fast.Static_schedule.end_times;
  check_bits_arr "warm quotas" exact.Static_schedule.quotas
    fast.Static_schedule.quotas;
  Alcotest.(check bool) "warm fast never worse" true
    (fast_stats.Solver.objective <= exact_stats.Solver.objective +. 1e-12)

let test_budgeted_fast_solve_returns () =
  (* The coarsened wall-budget polling (one clock read per 32 inner
     iterations) must still latch: an already-expired budget returns the
     best repaired iterate instead of spinning. *)
  let plan = Plan.expand (Lepts_workloads.Cnc.task_set ~power ~ratio:0.1 ()) in
  match Solver.solve_acs ~wall_budget:1e-9 ~structure:Solver.Fast ~plan ~power () with
  | Error e -> Alcotest.failf "budgeted fast solve failed: %a" Solver.pp_error e
  | Ok (schedule, _) ->
    Alcotest.(check bool) "feasible under expired budget" true
      (Validate.is_feasible schedule)

(* --- should_stop --------------------------------------------------------- *)

let quadratic_problem () =
  let f (x : float array) = Array.fold_left (fun acc v -> acc +. (v *. v)) 0. x in
  let grad_into (x : float array) ~into =
    Array.iteri (fun i v -> into.(i) <- 2. *. v) x
  in
  let project_ip (_ : float array) = () in
  (f, grad_into, project_ip)

let test_should_stop_halts_descent () =
  let f, grad_into, project_ip = quadratic_problem () in
  let r =
    Pg.minimize_ws ~should_stop:(fun () -> true) ~f ~grad_into ~project_ip
      ~x0:[| 3.; -1. |] ()
  in
  Alcotest.(check int) "no iterations" 0 r.Pg.iterations;
  Alcotest.(check bool) "not converged" false r.Pg.converged;
  check_bits_arr "iterate untouched" [| 3.; -1. |] r.Pg.x

let test_should_stop_false_is_inert () =
  let f, grad_into, project_ip = quadratic_problem () in
  let run ?should_stop () =
    Pg.minimize_ws ?should_stop ~f ~grad_into ~project_ip ~x0:[| 3.; -1. |] ()
  in
  let plain = run () in
  let polled = run ~should_stop:(fun () -> false) () in
  Alcotest.(check int) "same iterations" plain.Pg.iterations polled.Pg.iterations;
  Alcotest.(check bool) "same convergence" plain.Pg.converged polled.Pg.converged;
  check_bits_arr "same minimiser" plain.Pg.x polled.Pg.x;
  check_bits_arr "same value" [| plain.Pg.value |] [| polled.Pg.value |]

let suite =
  [ ("fast projection bit-identical", `Quick, test_fast_projection_bit_identical);
    ("condat projection agrees to 1e-12", `Quick, test_condat_projection_agrees);
    ("block index matches plan", `Quick, test_block_index_matches_plan);
    ("fast solve bit-identical to exact", `Slow, test_fast_solve_bit_identical);
    ("warm fast matches warm exact", `Quick, test_warm_fast_matches_warm_exact);
    ("budgeted fast solve returns", `Quick, test_budgeted_fast_solve_returns);
    ("should_stop halts descent", `Quick, test_should_stop_halts_descent);
    ("absent should_stop signal is inert", `Quick, test_should_stop_false_is_inert) ]
