open Lepts_prng

let test_splitmix_deterministic () =
  let a = Splitmix64.create 42L and b = Splitmix64.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Splitmix64.next a) (Splitmix64.next b)
  done

let test_splitmix_reference () =
  (* Reference outputs for seed 1234567 from the public-domain C
     implementation (Vigna). *)
  let sm = Splitmix64.create 1234567L in
  let expected = [ 0x599ed017fb08fc85L; 0x2c73f08458540fa5L; 0x883ebce5a3f27c77L ] in
  List.iter
    (fun e -> Alcotest.(check int64) "reference" e (Splitmix64.next sm))
    expected

let test_splitmix_copy () =
  let a = Splitmix64.create 5L in
  ignore (Splitmix64.next a);
  let b = Splitmix64.copy a in
  Alcotest.(check int64) "copy diverges identically" (Splitmix64.next a)
    (Splitmix64.next b)

let test_xoshiro_deterministic () =
  let a = Xoshiro256.create ~seed:7 and b = Xoshiro256.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Xoshiro256.next_int64 a)
      (Xoshiro256.next_int64 b)
  done

let test_xoshiro_seeds_differ () =
  let a = Xoshiro256.create ~seed:1 and b = Xoshiro256.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Int64.equal (Xoshiro256.next_int64 a) (Xoshiro256.next_int64 b) then incr same
  done;
  Alcotest.(check int) "streams differ" 0 !same

let test_float_range () =
  let rng = Xoshiro256.create ~seed:3 in
  for _ = 1 to 10_000 do
    let x = Xoshiro256.float rng in
    if x < 0. || x >= 1. then Alcotest.failf "float out of [0,1): %f" x
  done

let test_float_mean () =
  let rng = Xoshiro256.create ~seed:11 in
  let n = 100_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Xoshiro256.float rng
  done;
  let mean = !acc /. float_of_int n in
  if Float.abs (mean -. 0.5) > 0.01 then Alcotest.failf "biased mean %f" mean

let test_uniform_bounds () =
  let rng = Xoshiro256.create ~seed:5 in
  for _ = 1 to 1000 do
    let x = Xoshiro256.uniform rng ~lo:(-3.) ~hi:7. in
    if x < -3. || x >= 7. then Alcotest.failf "uniform out of range: %f" x
  done

let test_int_bounds () =
  let rng = Xoshiro256.create ~seed:9 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let i = Xoshiro256.int rng ~bound:10 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c -> if c < 800 || c > 1200 then Alcotest.failf "bucket %d skewed: %d" i c)
    counts

let test_int_invalid () =
  let rng = Xoshiro256.create ~seed:1 in
  Alcotest.check_raises "bound zero"
    (Invalid_argument "Xoshiro256.int: bound must be positive") (fun () ->
      ignore (Xoshiro256.int rng ~bound:0))

let test_int_bound_one () =
  let rng = Xoshiro256.create ~seed:1 in
  for _ = 1 to 100 do
    Alcotest.(check int) "always 0" 0 (Xoshiro256.int rng ~bound:1)
  done

let test_split_independent () =
  let parent = Xoshiro256.create ~seed:21 in
  let child = Xoshiro256.split parent in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Int64.equal (Xoshiro256.next_int64 parent) (Xoshiro256.next_int64 child) then
      incr same
  done;
  Alcotest.(check int) "split streams differ" 0 !same

let test_split_key_pure () =
  let parent = Xoshiro256.create ~seed:77 in
  let before = Xoshiro256.copy parent in
  let a = Xoshiro256.split_key parent ~key:3 in
  let b = Xoshiro256.split_key parent ~key:3 in
  (* Same (state, key) twice: identical child streams. *)
  for _ = 1 to 50 do
    Alcotest.(check int64) "same child" (Xoshiro256.next_int64 a)
      (Xoshiro256.next_int64 b)
  done;
  (* And the parent was never advanced. *)
  for _ = 1 to 20 do
    Alcotest.(check int64) "parent untouched" (Xoshiro256.next_int64 before)
      (Xoshiro256.next_int64 parent)
  done

let test_split_key_order_independent () =
  (* Children derived in any order are identical: the crux of the
     per-round stream discipline. *)
  let parent = Xoshiro256.create ~seed:78 in
  let forward = List.map (fun k -> Xoshiro256.split_key parent ~key:k) [ 0; 1; 2; 3 ] in
  let backward = List.rev_map (fun k -> Xoshiro256.split_key parent ~key:k) [ 3; 2; 1; 0 ] in
  List.iter2
    (fun a b ->
      for _ = 1 to 20 do
        Alcotest.(check int64) "order independent" (Xoshiro256.next_int64 a)
          (Xoshiro256.next_int64 b)
      done)
    forward backward

let test_split_key_distinct () =
  let parent = Xoshiro256.create ~seed:79 in
  let children = Array.init 32 (fun k -> Xoshiro256.split_key parent ~key:k) in
  let firsts = Array.map Xoshiro256.next_int64 children in
  Array.iteri
    (fun i x ->
      Array.iteri
        (fun j y ->
          if i < j && Int64.equal x y then
            Alcotest.failf "keys %d and %d collide on first output" i j)
        firsts)
    firsts

let test_copy_snapshot () =
  let a = Xoshiro256.create ~seed:8 in
  ignore (Xoshiro256.next_int64 a);
  let b = Xoshiro256.copy a in
  for _ = 1 to 20 do
    Alcotest.(check int64) "snapshot equal" (Xoshiro256.next_int64 a)
      (Xoshiro256.next_int64 b)
  done

let test_normal_moments () =
  let rng = Xoshiro256.create ~seed:13 in
  let n = 100_000 in
  let xs = Array.init n (fun _ -> Dist.normal rng ~mu:5. ~sigma:2.) in
  let mean = Lepts_util.Stats.mean xs in
  let sd = Lepts_util.Stats.stddev xs in
  if Float.abs (mean -. 5.) > 0.05 then Alcotest.failf "normal mean %f" mean;
  if Float.abs (sd -. 2.) > 0.05 then Alcotest.failf "normal sd %f" sd

let test_normal_zero_sigma () =
  let rng = Xoshiro256.create ~seed:13 in
  Alcotest.(check (float 0.)) "degenerate" 3.5 (Dist.normal rng ~mu:3.5 ~sigma:0.)

let test_normal_negative_sigma () =
  let rng = Xoshiro256.create ~seed:13 in
  Alcotest.check_raises "negative sigma"
    (Invalid_argument "Dist.normal: negative sigma") (fun () ->
      ignore (Dist.normal rng ~mu:0. ~sigma:(-1.)))

let test_truncated_normal_bounds () =
  let rng = Xoshiro256.create ~seed:17 in
  for _ = 1 to 10_000 do
    let x = Dist.truncated_normal rng ~mu:10. ~sigma:5. ~lo:2. ~hi:20. in
    if x < 2. || x > 20. then Alcotest.failf "out of bounds: %f" x
  done

let test_truncated_normal_mean () =
  (* Symmetric truncation keeps the mean. *)
  let rng = Xoshiro256.create ~seed:19 in
  let n = 50_000 in
  let xs =
    Array.init n (fun _ -> Dist.truncated_normal rng ~mu:10. ~sigma:2. ~lo:4. ~hi:16.)
  in
  let mean = Lepts_util.Stats.mean xs in
  if Float.abs (mean -. 10.) > 0.05 then Alcotest.failf "truncated mean %f" mean

let test_truncated_normal_degenerate () =
  let rng = Xoshiro256.create ~seed:23 in
  Alcotest.(check (float 0.)) "zero sigma clamps" 8.
    (Dist.truncated_normal rng ~mu:100. ~sigma:0. ~lo:0. ~hi:8.);
  Alcotest.check_raises "lo > hi" (Invalid_argument "Dist.truncated_normal: lo > hi")
    (fun () -> ignore (Dist.truncated_normal rng ~mu:0. ~sigma:1. ~lo:1. ~hi:0.))

let test_normal_cdf_values () =
  let check x expected =
    if Float.abs (Dist.normal_cdf x -. expected) > 1e-6 then
      Alcotest.failf "cdf(%f) = %.8f, expected %.8f" x (Dist.normal_cdf x) expected
  in
  check 0. 0.5;
  check 1. 0.8413447461;
  check (-1.) 0.1586552539;
  check 1.96 0.9750021049;
  check (-3.) 0.0013498980

let test_normal_icdf_roundtrip () =
  for i = -60 to 60 do
    let x = float_of_int i /. 10. in
    let x' = Dist.normal_icdf (Dist.normal_cdf x) in
    if Float.abs (x' -. x) > 1e-4 then
      Alcotest.failf "icdf(cdf(%f)) = %f" x x'
  done;
  Alcotest.check_raises "p = 0"
    (Invalid_argument "Dist.normal_icdf: p must be in (0, 1)") (fun () ->
      ignore (Dist.normal_icdf 0.));
  Alcotest.check_raises "p = 1"
    (Invalid_argument "Dist.normal_icdf: p must be in (0, 1)") (fun () ->
      ignore (Dist.normal_icdf 1.))

let test_truncated_normal_far_tail () =
  (* Interval [5, 6] sigmas above the mean: rejection essentially never
     accepts, so this exercises the inverse-CDF fallback. The clamping
     fallback this replaced returned exactly 5.0 with a point mass. *)
  let rng = Xoshiro256.create ~seed:31 in
  let n = 20_000 in
  let at_bounds = ref 0 in
  let xs =
    Array.init n (fun _ ->
        let x = Dist.truncated_normal rng ~mu:0. ~sigma:1. ~lo:5. ~hi:6. in
        if x < 5. || x > 6. then Alcotest.failf "out of [5,6]: %f" x;
        if x = 5. || x = 6. then incr at_bounds;
        x)
  in
  if !at_bounds > n / 100 then
    Alcotest.failf "point mass at bounds: %d of %d draws" !at_bounds n;
  (* Exact conditional mean of N(0,1) on [5,6] is ~5.1870. *)
  let mean = Lepts_util.Stats.mean xs in
  if Float.abs (mean -. 5.187) > 0.05 then
    Alcotest.failf "far-tail mean %f, expected ~5.187" mean

let test_uniform_choice () =
  let rng = Xoshiro256.create ~seed:29 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let x = Dist.uniform_choice rng arr in
    if not (Array.exists (( = ) x) arr) then Alcotest.failf "foreign element %d" x
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Dist.uniform_choice: empty array")
    (fun () -> ignore (Dist.uniform_choice rng [||]))

let suite =
  [ ("splitmix deterministic", `Quick, test_splitmix_deterministic);
    ("splitmix reference vectors", `Quick, test_splitmix_reference);
    ("splitmix copy", `Quick, test_splitmix_copy);
    ("xoshiro deterministic", `Quick, test_xoshiro_deterministic);
    ("xoshiro seeds differ", `Quick, test_xoshiro_seeds_differ);
    ("float in [0,1)", `Quick, test_float_range);
    ("float mean", `Quick, test_float_mean);
    ("uniform bounds", `Quick, test_uniform_bounds);
    ("int bounds uniform", `Quick, test_int_bounds);
    ("int invalid bound", `Quick, test_int_invalid);
    ("int bound one", `Quick, test_int_bound_one);
    ("split independence", `Quick, test_split_independent);
    ("split_key pure", `Quick, test_split_key_pure);
    ("split_key order independent", `Quick, test_split_key_order_independent);
    ("split_key distinct keys", `Quick, test_split_key_distinct);
    ("copy snapshot", `Quick, test_copy_snapshot);
    ("normal moments", `Quick, test_normal_moments);
    ("normal zero sigma", `Quick, test_normal_zero_sigma);
    ("normal negative sigma", `Quick, test_normal_negative_sigma);
    ("truncated normal bounds", `Quick, test_truncated_normal_bounds);
    ("truncated normal mean", `Quick, test_truncated_normal_mean);
    ("truncated normal degenerate", `Quick, test_truncated_normal_degenerate);
    ("normal cdf reference values", `Quick, test_normal_cdf_values);
    ("normal icdf round-trip", `Quick, test_normal_icdf_roundtrip);
    ("truncated normal far tail unbiased", `Quick, test_truncated_normal_far_tail);
    ("uniform choice", `Quick, test_uniform_choice) ]
