(* Warm-start continuation and incremental re-solve (Solver.solve_warm /
   Solver.resolve_incremental): bit-identity on converged instances,
   never-worse under exhausted budgets, and the structural fallbacks. *)

open Lepts_core
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Plan = Lepts_preempt.Plan
module Model = Lepts_power.Model
module Continuation = Lepts_experiments.Continuation

let power = Model.ideal ~v_min:0.5 ~v_max:4. ()

let preemptive_ts () =
  Task_set.scale_wcec_to_utilization
    (Task_set.create
       [ Task.with_ratio ~name:"a" ~period:4 ~wcec:4. ~ratio:0.1;
         Task.with_ratio ~name:"b" ~period:6 ~wcec:5. ~ratio:0.1;
         Task.with_ratio ~name:"c" ~period:12 ~wcec:8. ~ratio:0.1 ])
    ~power ~target:0.7

(* Same structure (periods, WCECs) as [preemptive_ts], different ACECs:
   the serve-cache / adaptive-estimator case resolve_incremental's warm
   path is for. *)
let acec_shifted_ts () =
  Task_set.scale_wcec_to_utilization
    (Task_set.create
       [ Task.with_ratio ~name:"a" ~period:4 ~wcec:4. ~ratio:0.6;
         Task.with_ratio ~name:"b" ~period:6 ~wcec:5. ~ratio:0.6;
         Task.with_ratio ~name:"c" ~period:12 ~wcec:8. ~ratio:0.6 ])
    ~power ~target:0.7

let check_bits name expected got =
  Alcotest.(check int)
    (name ^ " length") (Array.length expected) (Array.length got);
  Array.iteri
    (fun i x ->
      Alcotest.(check int64)
        (Printf.sprintf "%s[%d]" name i)
        (Int64.bits_of_float x)
        (Int64.bits_of_float got.(i)))
    expected

let check_schedule_bits name (a : Static_schedule.t) (b : Static_schedule.t) =
  check_bits (name ^ " end_times") a.Static_schedule.end_times
    b.Static_schedule.end_times;
  check_bits (name ^ " quotas") a.Static_schedule.quotas
    b.Static_schedule.quotas

let solve_cold ?jobs ~mode plan =
  Result.get_ok (Solver.solve ?jobs ~mode ~plan ~power ())

let test_warm_converged_bit_identical () =
  (* Drive an instance to the warm fixpoint (each accepted continuation
     must improve by > improvement_rel, so this terminates), then check
     that re-solving the converged instance returns the previous
     schedule bit for bit, with outer = inner = 0 marking "seed kept". *)
  let plan = Plan.expand (preemptive_ts ()) in
  List.iter
    (fun mode ->
      let prev = ref (fst (solve_cold ~mode plan)) in
      let converged = ref false in
      for _ = 1 to 10 do
        if not !converged then begin
          let next, stats =
            Result.get_ok (Solver.solve_warm ~mode ~prev:!prev ~plan ~power ())
          in
          if stats.Solver.outer_iterations = 0 then converged := true;
          prev := next
        end
      done;
      Alcotest.(check bool) "reached the warm fixpoint" true !converged;
      let warm, stats =
        Result.get_ok (Solver.solve_warm ~mode ~prev:!prev ~plan ~power ())
      in
      check_schedule_bits "warm = prev" !prev warm;
      Alcotest.(check int) "outer = 0 (seed kept)" 0 stats.Solver.outer_iterations;
      Alcotest.(check int) "inner = 0 (seed kept)" 0 stats.Solver.inner_iterations)
    [ Objective.Average; Objective.Worst ]

let test_warm_never_worse_than_seed () =
  (* Continuing an Average solve from the WCS optimum: whatever the
     descent does, the result may not be worse than the seed evaluated
     under the current (Average) objective. *)
  let plan = Plan.expand (preemptive_ts ()) in
  let wcs, _ = Result.get_ok (Solver.solve_wcs ~plan ~power ()) in
  let seed_energy =
    Static_schedule.predicted_energy wcs ~mode:Objective.Average
  in
  let warm, stats =
    Result.get_ok
      (Solver.solve_warm ~mode:Objective.Average ~prev:wcs ~plan ~power ())
  in
  Alcotest.(check bool) "feasible" true (Validate.is_feasible warm);
  Alcotest.(check bool) "never worse than seed" true
    (stats.Solver.objective <= seed_energy +. 1e-9)

let test_warm_exhausted_budget_returns_seed () =
  (* With no budget left the continuation cannot run; the seed must
     come back unchanged rather than an error or a worse point. *)
  let plan = Plan.expand (preemptive_ts ()) in
  let prev, _ = solve_cold ~mode:Objective.Average plan in
  let warm, stats =
    Result.get_ok
      (Solver.solve_warm ~wall_budget:0. ~mode:Objective.Average ~prev ~plan
         ~power ())
  in
  check_schedule_bits "seed returned" prev warm;
  Alcotest.(check bool) "never worse" true
    (stats.Solver.objective
    <= Static_schedule.predicted_energy prev ~mode:Objective.Average +. 1e-9)

let test_warm_jobs_independent () =
  (* The continuation is a single descent: [jobs] must not change its
     bits (it only parallelises the structural-fallback cold solve). *)
  let plan = Plan.expand (preemptive_ts ()) in
  let wcs, _ = Result.get_ok (Solver.solve_wcs ~plan ~power ()) in
  let w1, s1 =
    Result.get_ok
      (Solver.solve_warm ~jobs:1 ~mode:Objective.Average ~prev:wcs ~plan
         ~power ())
  in
  let w4, s4 =
    Result.get_ok
      (Solver.solve_warm ~jobs:4 ~mode:Objective.Average ~prev:wcs ~plan
         ~power ())
  in
  check_schedule_bits "jobs 1 = jobs 4" w1 w4;
  Alcotest.(check int64) "objective bits" (Int64.bits_of_float s1.Solver.objective)
    (Int64.bits_of_float s4.Solver.objective)

let test_resolve_incremental_acec_change () =
  (* Only the ACECs moved: the warm path must apply (a single
     continuation descent), stay feasible, and never be worse than the
     previous solution re-evaluated under the new workloads. *)
  let plan1 = Plan.expand (preemptive_ts ()) in
  let prev, _ = solve_cold ~mode:Objective.Average plan1 in
  let plan2 = Plan.expand (acec_shifted_ts ()) in
  let seed_energy =
    Static_schedule.predicted_energy
      (Static_schedule.create ~plan:plan2 ~power
         ~end_times:prev.Static_schedule.end_times
         ~quotas:prev.Static_schedule.quotas)
      ~mode:Objective.Average
  in
  let next, stats =
    Result.get_ok
      (Solver.resolve_incremental ~mode:Objective.Average ~prev ~plan:plan2
         ~power ())
  in
  Alcotest.(check bool) "feasible under new plan" true
    (Validate.is_feasible next);
  Alcotest.(check bool) "never worse than carried-over seed" true
    (stats.Solver.objective <= seed_energy +. 1e-9)

let test_resolve_incremental_structural_fallback () =
  (* Task count changed: nothing to continue from, so the incremental
     entry point must degrade to the plain cold solve, bit for bit. *)
  let plan1 = Plan.expand (preemptive_ts ()) in
  let prev, _ = solve_cold ~mode:Objective.Average plan1 in
  let ts2 =
    Task_set.create
      [ Task.create ~name:"t1" ~period:20 ~wcec:20. ~acec:10. ~bcec:0.;
        Task.create ~name:"t2" ~period:20 ~wcec:20. ~acec:10. ~bcec:0. ]
  in
  let plan2 = Plan.expand ts2 in
  let inc, _ =
    Result.get_ok
      (Solver.resolve_incremental ~mode:Objective.Average ~prev ~plan:plan2
         ~power ())
  in
  let cold, _ = solve_cold ~mode:Objective.Average plan2 in
  check_schedule_bits "fallback = cold" cold inc

let test_continuation_sweep () =
  (* Warm and cold ratio sweeps agree bit-for-bit on the (always cold)
     first point; every warm point stays feasible and never worse than
     chaining would allow; the [continued] flags record the order. *)
  let build ~ratio =
    Task_set.scale_wcec_to_utilization
      (Task_set.create
         [ Task.with_ratio ~name:"a" ~period:4 ~wcec:4. ~ratio;
           Task.with_ratio ~name:"b" ~period:6 ~wcec:5. ~ratio;
           Task.with_ratio ~name:"c" ~period:12 ~wcec:8. ~ratio ])
      ~power ~target:0.6
  in
  let ratios = [ 0.2; 0.5; 0.8 ] in
  let cold =
    Result.get_ok (Continuation.run ~warm:false ~ratios ~build ~power ())
  in
  let warm =
    Result.get_ok (Continuation.run ~warm:true ~ratios ~build ~power ())
  in
  Alcotest.(check int) "points" 3 (List.length warm.Continuation.points);
  Alcotest.(check (list bool)) "continued flags" [ false; true; true ]
    (List.map
       (fun p -> p.Continuation.continued)
       warm.Continuation.points);
  let first l = List.hd l.Continuation.points in
  Alcotest.(check int64) "first point bits equal"
    (Int64.bits_of_float (first cold).Continuation.predicted_energy)
    (Int64.bits_of_float (first warm).Continuation.predicted_energy);
  List.iter2
    (fun (c : Continuation.point) (w : Continuation.point) ->
      Alcotest.(check bool)
        (Printf.sprintf "ratio %.1f warm close to cold" c.Continuation.ratio)
        true
        (w.Continuation.predicted_energy
        <= c.Continuation.predicted_energy *. 1.05 +. 1e-9))
    cold.Continuation.points warm.Continuation.points

let suite =
  [ ("warm re-solve of converged instance is bit-identical", `Quick,
     test_warm_converged_bit_identical);
    ("warm solve never worse than seed", `Quick, test_warm_never_worse_than_seed);
    ("exhausted budget returns the seed", `Quick,
     test_warm_exhausted_budget_returns_seed);
    ("warm result independent of jobs", `Quick, test_warm_jobs_independent);
    ("incremental re-solve after ACEC change", `Quick,
     test_resolve_incremental_acec_change);
    ("incremental re-solve structural fallback", `Quick,
     test_resolve_incremental_structural_fallback);
    ("continuation ratio sweep", `Quick, test_continuation_sweep) ]
