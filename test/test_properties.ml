(* Cross-cutting invariants checked over randomly generated task sets,
   schedules and workloads — the system-level safety net. *)

open Lepts_core
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Plan = Lepts_preempt.Plan
module Model = Lepts_power.Model
module Policy = Lepts_dvs.Policy
module Sampler = Lepts_sim.Sampler
module Event_sim = Lepts_sim.Event_sim
module Outcome = Lepts_sim.Outcome

let power = Model.ideal ~v_min:0.5 ~v_max:4. ()

(* A pool of solved random task sets, shared across properties to keep
   the suite fast. *)
let fixtures =
  lazy
    (let rng = Lepts_prng.Xoshiro256.create ~seed:2024 in
     List.filter_map
       (fun n ->
         let config =
           { (Lepts_workloads.Random_gen.default_config ~n_tasks:n ~ratio:0.2) with
             Lepts_workloads.Random_gen.max_sub_instances = 150 }
         in
         match Lepts_workloads.Random_gen.generate config ~power ~rng with
         | Error _ -> None
         | Ok ts -> (
           let plan = Plan.expand ts in
           match Solver.solve_acs ~plan ~power () with
           | Error _ -> None
           | Ok (acs, _) -> Some (ts, plan, acs)))
       [ 2; 3; 4; 5 ])

let executed_work plan ~(schedule : Static_schedule.t) ~totals =
  (* Work the runtime actually executes: actual capped at quota sums. *)
  let total = ref 0. in
  Array.iteri
    (fun i per ->
      Array.iteri
        (fun j _ ->
          let quota_sum =
            Array.fold_left
              (fun acc k -> acc +. schedule.Static_schedule.quotas.(k))
              0.
              plan.Plan.instance_subs.(i).(j)
          in
          total := !total +. Float.min totals.(i).(j) quota_sum)
        per)
    plan.Plan.instance_subs;
  !total

let test_energy_bounds () =
  (* Any greedy run's energy lies between pricing all executed work at
     v_min and at v_max. *)
  let rng = Lepts_prng.Xoshiro256.create ~seed:5 in
  List.iter
    (fun (_, plan, acs) ->
      for _ = 1 to 10 do
        let totals = Sampler.instance_totals plan ~rng in
        let o = Event_sim.run ~schedule:acs ~policy:Policy.Greedy ~totals () in
        let w = executed_work plan ~schedule:acs ~totals in
        let lo = Model.energy power ~v:power.Model.v_min ~cycles:w in
        let hi = Model.energy power ~v:power.Model.v_max ~cycles:w in
        if o.Outcome.energy < lo -. 1e-6 || o.Outcome.energy > hi +. 1e-6 then
          Alcotest.failf "energy %g outside [%g, %g]" o.Outcome.energy lo hi
      done)
    (Lazy.force fixtures)

let test_no_misses_on_any_draw () =
  let rng = Lepts_prng.Xoshiro256.create ~seed:6 in
  List.iter
    (fun (_, plan, acs) ->
      for _ = 1 to 20 do
        let totals = Sampler.instance_totals plan ~rng in
        let o = Event_sim.run ~schedule:acs ~policy:Policy.Greedy ~totals () in
        Alcotest.(check int) "no misses" 0 o.Outcome.deadline_misses
      done)
    (Lazy.force fixtures)

let test_bcec_cheaper_than_wcec () =
  List.iter
    (fun (_, plan, acs) ->
      let energy value =
        (Event_sim.run ~schedule:acs ~policy:Policy.Greedy
           ~totals:(Sampler.fixed plan ~value) ())
          .Outcome.energy
      in
      Alcotest.(check bool) "BCEC <= ACEC" true (energy `Bcec <= energy `Acec +. 1e-9);
      Alcotest.(check bool) "ACEC <= WCEC" true (energy `Acec <= energy `Wcec +. 1e-9))
    (Lazy.force fixtures)

let test_predicted_equals_simulated_everywhere () =
  List.iter
    (fun (_, plan, acs) ->
      ignore plan;
      List.iter
        (fun (mode, value) ->
          let totals = Sampler.fixed acs.Static_schedule.plan ~value in
          let o = Event_sim.run ~schedule:acs ~policy:Policy.Greedy ~totals () in
          Alcotest.(check (float 1e-6)) "closed form = event sim"
            (Static_schedule.predicted_energy acs ~mode)
            o.Outcome.energy)
        [ (Objective.Average, `Acec); (Objective.Worst, `Wcec) ])
    (Lazy.force fixtures)

let test_export_matches_plan () =
  List.iter
    (fun (_, plan, acs) ->
      let rows = Export.schedule_to_rows acs in
      Alcotest.(check int) "rows = sub-instances" (Plan.size plan) (List.length rows))
    (Lazy.force fixtures)

let test_validate_agrees_with_simulation () =
  (* Whatever the validator accepts must run the worst case without a
     miss; corrupting the schedule must be caught by at least one of
     validator or simulator. *)
  let rng = Lepts_prng.Xoshiro256.create ~seed:9 in
  List.iter
    (fun (_, plan, acs) ->
      Alcotest.(check bool) "accepted" true (Validate.is_feasible acs);
      let totals = Sampler.fixed plan ~value:`Wcec in
      let o = Event_sim.run ~schedule:acs ~policy:Policy.Greedy ~totals () in
      Alcotest.(check int) "worst case clean" 0 o.Outcome.deadline_misses;
      (* Corrupt: steal most of a random positive quota. *)
      let quotas = Array.copy acs.Static_schedule.quotas in
      let positive =
        Array.to_list acs.Static_schedule.plan.Plan.order
        |> List.filter_map (fun (s : Lepts_preempt.Sub_instance.t) ->
               if quotas.(s.Lepts_preempt.Sub_instance.index) > 0.5 then
                 Some s.Lepts_preempt.Sub_instance.index
               else None)
      in
      if positive <> [] then begin
        let k = List.nth positive (Lepts_prng.Xoshiro256.int rng ~bound:(List.length positive)) in
        quotas.(k) <- quotas.(k) *. 0.25;
        let corrupted =
          Static_schedule.create ~plan:acs.Static_schedule.plan ~power
            ~end_times:acs.Static_schedule.end_times ~quotas
        in
        Alcotest.(check bool) "corruption detected" false
          (Validate.is_feasible corrupted)
      end)
    (Lazy.force fixtures)

let test_solver_idempotent_warm_start () =
  (* Re-solving warm-started from its own solution must not get
     worse. *)
  List.iter
    (fun (_, plan, acs) ->
      match
        Solver.solve_acs
          ~warm_starts:[ (acs.Static_schedule.end_times, acs.Static_schedule.quotas) ]
          ~plan ~power ()
      with
      | Error e -> Alcotest.failf "re-solve failed: %a" Solver.pp_error e
      | Ok (again, _) ->
        let e s = Static_schedule.predicted_energy s ~mode:Objective.Average in
        Alcotest.(check bool) "no regression" true (e again <= e acs +. 1e-6))
    (Lazy.force fixtures)

(* --- serve wire format ----------------------------------------------------- *)

module Request = Lepts_serve.Request
module Cache = Lepts_serve.Cache
module Rng = Lepts_prng.Xoshiro256

(* Random requests covering the whole wire surface: ids that need every
   escape, defaulted and explicit fields, and ratios chosen to lose
   bits under a naive float printer (0.1 +. 0.2, 1/3, random draws). *)
let random_request rng =
  let alphabet = "abcXYZ09 _-./\\\"\n\t" in
  let id =
    let n = 1 + Rng.int rng ~bound:12 in
    String.init n (fun _ ->
        alphabet.[Rng.int rng ~bound:(String.length alphabet)])
  in
  { Request.id;
    tasks = Rng.int rng ~bound:65;
    ratio =
      (match Rng.int rng ~bound:4 with
      | 0 -> 0.1
      | 1 -> 0.1 +. 0.2
      | 2 -> 1. /. 3.
      | _ -> Rng.float rng);
    seed = Rng.int rng ~bound:1_000_000;
    rounds = Rng.int rng ~bound:50;
    budget_ms =
      (if Rng.int rng ~bound:2 = 0 then None
       else Some (1 + Rng.int rng ~bound:10_000));
    acs_max_outer =
      (if Rng.int rng ~bound:2 = 0 then None
       else Some (Rng.int rng ~bound:10)) }

let test_request_json_roundtrip () =
  let rng = Rng.create ~seed:77 in
  for _ = 1 to 500 do
    let r = random_request rng in
    match Request.of_json (Request.to_json r) with
    | Ok r' ->
      if r' <> r then
        Alcotest.failf "round-trip mutated %s into %s" (Request.to_json r)
          (Request.to_json r')
    | Error msg ->
      Alcotest.failf "round-trip rejected %s: %s" (Request.to_json r) msg
  done

let test_cache_key_content_addressed () =
  let rng = Rng.create ~seed:78 in
  for _ = 1 to 500 do
    let r = random_request rng in
    let other = random_request rng in
    (* The id is the client's name for the request, never its content. *)
    if Cache.key r <> Cache.key { r with Request.id = other.Request.id } then
      Alcotest.failf "id changed the key of %s" (Request.to_json r);
    (* The family key blinds exactly the ratio — nothing else. *)
    if
      Cache.family_key r
      <> Cache.family_key { r with Request.ratio = other.Request.ratio }
    then Alcotest.failf "ratio changed the family key of %s" (Request.to_json r);
    if
      other.Request.ratio <> r.Request.ratio
      && Cache.key r = Cache.key { r with Request.ratio = other.Request.ratio }
    then Alcotest.failf "ratio did not change the key of %s" (Request.to_json r)
  done

let suite =
  [ ("request JSON round-trip", `Quick, test_request_json_roundtrip);
    ("cache key content-addressed", `Quick, test_cache_key_content_addressed);
    ("energy bounds", `Quick, test_energy_bounds);
    ("no misses on any draw", `Quick, test_no_misses_on_any_draw);
    ("workload monotone energy", `Quick, test_bcec_cheaper_than_wcec);
    ("predicted = simulated (both modes)", `Quick, test_predicted_equals_simulated_everywhere);
    ("export covers the plan", `Quick, test_export_matches_plan);
    ("validator vs simulator", `Quick, test_validate_agrees_with_simulation);
    ("warm-start idempotence", `Slow, test_solver_idempotent_warm_start) ]
