open Lepts_core
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Plan = Lepts_preempt.Plan
module Model = Lepts_power.Model

let power = Model.ideal ~v_min:1. ~v_max:4. ()

(* The motivational example: 3 equal-period tasks, WCEC 20, ACEC 10. *)
let motivation_plan () =
  Plan.expand
    (Task_set.create
       [ Task.create ~name:"t1" ~period:20 ~wcec:20. ~acec:10. ~bcec:0.;
         Task.create ~name:"t2" ~period:20 ~wcec:20. ~acec:10. ~bcec:0.;
         Task.create ~name:"t3" ~period:20 ~wcec:20. ~acec:10. ~bcec:0. ])

let quotas3 = [| 20.; 20.; 20. |]

let test_wcs_schedule_average_energy () =
  (* WCS end-times 6.67/13.33/20 under greedy reclamation on the
     average workload: energies computed by hand in the paper's
     Fig 1(b) reconstruction (~159.4). *)
  let plan = motivation_plan () in
  let totals = Objective.instance_totals Objective.Average plan in
  let e = [| 20. /. 3.; 40. /. 3.; 20. |] in
  let energy = Objective.eval ~plan ~power ~totals ~e ~w_hat:quotas3 in
  (* task1: v = 20/6.667 = 3, E = 10*9 = 90, finishes at 10/3.
     task2: v = 20/(13.33-3.33) = 2, E = 40, finishes at 8.33.
     task3: v = 20/(20-8.33) = 1.714, E = 29.39. *)
  Alcotest.(check (float 0.1)) "Fig 1(b) energy" 159.39 energy

let test_acs_schedule_average_energy () =
  let plan = motivation_plan () in
  let totals = Objective.instance_totals Objective.Average plan in
  let energy =
    Objective.eval ~plan ~power ~totals ~e:[| 10.; 15.; 20. |] ~w_hat:quotas3
  in
  (* All three tasks run at 2 V on 10 Mcycles: 3 * 40 = 120 (Fig 2). *)
  Alcotest.(check (float 1e-6)) "Fig 2 energy" 120. energy

let test_worst_case_energy () =
  let plan = motivation_plan () in
  let totals = Objective.instance_totals Objective.Worst plan in
  let wcs = Objective.eval ~plan ~power ~totals ~e:[| 20. /. 3.; 40. /. 3.; 20. |] ~w_hat:quotas3 in
  Alcotest.(check (float 1e-6)) "WCS worst = 3 * 20 * 9" 540. wcs;
  let acs = Objective.eval ~plan ~power ~totals ~e:[| 10.; 15.; 20. |] ~w_hat:quotas3 in
  (* 20*4 + 20*16 + 20*16 = 720 (Fig 1(c)). *)
  Alcotest.(check (float 1e-6)) "ACS worst" 720. acs

let test_trace_consistency () =
  let plan = motivation_plan () in
  let totals = Objective.instance_totals Objective.Average plan in
  let e = [| 10.; 15.; 20. |] in
  let tr = Objective.trace ~plan ~power ~totals ~e ~w_hat:quotas3 in
  Alcotest.(check (float 1e-9)) "energy matches eval"
    (Objective.eval ~plan ~power ~totals ~e ~w_hat:quotas3)
    tr.Objective.energy;
  (* Greedy: each task starts when the previous finishes. *)
  Alcotest.(check (float 1e-9)) "t2 starts at t1 finish"
    tr.Objective.finish_times.(0) tr.Objective.start_times.(1);
  Alcotest.(check (float 1e-9)) "voltages 2V" 2. tr.Objective.voltages.(0)

let test_vmin_clamp () =
  (* Tiny average workload with a huge window: the voltage clamps at
     v_min, execution finishes early. *)
  let plan =
    Plan.expand
      (Task_set.create [ Task.create ~name:"t" ~period:100 ~wcec:1. ~acec:0.5 ~bcec:0. ])
  in
  let totals = Objective.instance_totals Objective.Average plan in
  let tr = Objective.trace ~plan ~power ~totals ~e:[| 100. |] ~w_hat:[| 1. |] in
  Alcotest.(check (float 1e-9)) "clamped" power.Model.v_min tr.Objective.voltages.(0);
  Alcotest.(check bool) "finishes early" true (tr.Objective.finish_times.(0) < 100.)

let test_vmax_clamp_on_infeasible () =
  (* A window too small for the quota prices at v_max (bounded), like
     the runtime would behave; feasibility is the constraints' job. *)
  let plan =
    Plan.expand
      (Task_set.create [ Task.create ~name:"t" ~period:10 ~wcec:20. ~acec:20. ~bcec:0. ])
  in
  let totals = Objective.instance_totals Objective.Worst plan in
  let e = [| 1. |] in
  let energy = Objective.eval ~plan ~power ~totals ~e ~w_hat:[| 20. |] in
  Alcotest.(check (float 1e-6)) "priced at v_max" (20. *. 16.) energy

let test_zero_quota_skipped () =
  let plan = motivation_plan () in
  let totals = Objective.instance_totals Objective.Average plan in
  (* Give task2 zero quota: its ACEC cannot run, no energy charged for
     it, task3 starts after task1. *)
  let tr =
    Objective.trace ~plan ~power ~totals ~e:[| 10.; 15.; 20. |]
      ~w_hat:[| 20.; 0.; 20. |]
  in
  Alcotest.(check (float 0.)) "no voltage for empty sub" 0. tr.Objective.voltages.(1);
  Alcotest.(check (float 1e-9)) "t3 starts at t1 finish"
    tr.Objective.finish_times.(0) tr.Objective.start_times.(2)

let test_gradient_matches_numdiff_interior () =
  (* At a clean interior point of the motivational example the adjoint
     must match central differences to high accuracy. *)
  let plan = motivation_plan () in
  let totals = Objective.instance_totals Objective.Average plan in
  let e = [| 8.; 14.; 19.5 |] in
  let m = 3 in
  let f x =
    Objective.eval ~plan ~power ~totals ~e:(Array.sub x 0 m) ~w_hat:(Array.sub x m m)
  in
  let x = Array.append e quotas3 in
  let _, de, dq = Objective.eval_with_gradient ~plan ~power ~totals ~e ~w_hat:quotas3 in
  let num = Lepts_optim.Numdiff.gradient ~h:1e-7 ~f x in
  let ana = Array.append de dq in
  Array.iteri
    (fun i a ->
      let rel = Float.abs (a -. num.(i)) /. Float.max 1. (Float.abs num.(i)) in
      if rel > 1e-5 then Alcotest.failf "coord %d: ana %g vs num %g" i a num.(i))
    ana

let test_gradient_random_feasible_points () =
  (* Random feasible schedules on a preemptive task set: gradients are
     validated coordinate-wise away from kinks. *)
  let ts =
    Task_set.create
      [ Task.with_ratio ~name:"a" ~period:4 ~wcec:3. ~ratio:0.3;
        Task.with_ratio ~name:"b" ~period:8 ~wcec:5. ~ratio:0.3 ]
  in
  let plan = Plan.expand ts in
  let m = Plan.size plan in
  let totals = Objective.instance_totals Objective.Average plan in
  let rng = Lepts_prng.Xoshiro256.create ~seed:77 in
  let power = Model.ideal ~v_min:0.1 ~v_max:8. () in
  for _ = 1 to 20 do
    (* Build a feasible-ish point: greedy fill then stretch randomly. *)
    match Solver.initial_point ~plan ~power with
    | Error _ -> Alcotest.fail "schedulable"
    | Ok (e0, q0) ->
      let e =
        Array.mapi
          (fun k ek ->
            let b = plan.Plan.order.(k).Lepts_preempt.Sub_instance.boundary in
            ek +. (Lepts_prng.Xoshiro256.float rng *. 0.7 *. (b -. ek)))
          e0
      in
      let f x =
        Objective.eval ~plan ~power ~totals ~e:(Array.sub x 0 m) ~w_hat:(Array.sub x m m)
      in
      let x = Array.append e q0 in
      let fx, de, dq = Objective.eval_with_gradient ~plan ~power ~totals ~e ~w_hat:q0 in
      Alcotest.(check (float 1e-9)) "value agrees" (f x) fx;
      let num = Lepts_optim.Numdiff.gradient ~h:1e-7 ~f x in
      let ana = Array.append de dq in
      let bad = ref 0 in
      Array.iteri
        (fun i a ->
          let rel = Float.abs (a -. num.(i)) /. Float.max 1. (Float.abs num.(i)) in
          if rel > 1e-3 then incr bad)
        ana;
      (* Allow a few kink coordinates; systematic errors would touch
         most coordinates. *)
      if !bad > (2 * m) / 4 then
        Alcotest.failf "%d of %d gradient coords disagree" !bad (2 * m)
  done

let test_alpha_model_eval () =
  (* The alpha-power model evaluates (no analytic gradient). *)
  let alpha = Model.create ~v_min:1. ~v_max:4. (Model.Alpha { k = 0.5; v_th = 0.4; alpha = 1.6 }) in
  let plan = motivation_plan () in
  let totals = Objective.instance_totals Objective.Average plan in
  let energy =
    Objective.eval ~plan ~power:alpha ~totals ~e:[| 10.; 15.; 20. |] ~w_hat:quotas3
  in
  Alcotest.(check bool) "finite positive" true (energy > 0. && Float.is_finite energy);
  Alcotest.check_raises "no adjoint for alpha"
    (Invalid_argument "Objective.eval_with_gradient: analytic adjoint requires ideal delay")
    (fun () ->
      ignore
        (Objective.eval_with_gradient ~plan ~power:alpha ~totals ~e:[| 10.; 15.; 20. |]
           ~w_hat:quotas3))

let test_length_mismatch () =
  let plan = motivation_plan () in
  let totals = Objective.instance_totals Objective.Average plan in
  Alcotest.check_raises "bad lengths"
    (Invalid_argument "Objective: vector length does not match plan size") (fun () ->
      ignore (Objective.eval ~plan ~power ~totals ~e:[| 1. |] ~w_hat:[| 1. |]))

let test_instance_totals () =
  let plan = motivation_plan () in
  let avg = Objective.instance_totals Objective.Average plan in
  let worst = Objective.instance_totals Objective.Worst plan in
  Alcotest.(check (float 0.)) "acec" 10. avg.(0).(0);
  Alcotest.(check (float 0.)) "wcec" 20. worst.(2).(0)

(* --- Workspace kernels: bit-for-bit parity with the allocating paths --- *)

let check_bits msg expect got =
  if not (Int64.equal (Int64.bits_of_float expect) (Int64.bits_of_float got)) then
    Alcotest.failf "%s: %h <> %h" msg expect got

let check_bits_arr msg expect got =
  Alcotest.(check int) (msg ^ ": length") (Array.length expect) (Array.length got);
  Array.iteri
    (fun i x -> check_bits (Printf.sprintf "%s.(%d)" msg i) x got.(i))
    expect

let test_ws_eval_bitwise () =
  let plan = motivation_plan () in
  let ws = Workspace.create plan in
  (* Points chosen to walk every branch: greedy/stretched end-times,
     worst-case totals, a zero quota (skip branch), and — via the
     separate fixtures below — both voltage clamps and the window
     floor. *)
  let points =
    [ (Objective.Average, [| 20. /. 3.; 40. /. 3.; 20. |], quotas3);
      (Objective.Average, [| 10.; 15.; 20. |], quotas3);
      (Objective.Worst, [| 10.; 15.; 20. |], quotas3);
      (Objective.Average, [| 10.; 15.; 20. |], [| 20.; 0.; 20. |]);
      (Objective.Average, [| 0.; 15.; 20. |], quotas3) ]
  in
  List.iter
    (fun (mode, e, w_hat) ->
      let totals = Objective.instance_totals mode plan in
      let expect = Objective.eval ~plan ~power ~totals ~e ~w_hat in
      check_bits "eval_ws" expect (Objective.eval_ws ws ~power ~totals ~e ~w_hat);
      (* Same workspace again: reuse must not leak state between calls. *)
      check_bits "eval_ws (reused)" expect
        (Objective.eval_ws ws ~power ~totals ~e ~w_hat))
    points;
  (* v_min clamp fixture. *)
  let tiny =
    Plan.expand
      (Task_set.create
         [ Task.create ~name:"t" ~period:100 ~wcec:1. ~acec:0.5 ~bcec:0. ])
  in
  let totals = Objective.instance_totals Objective.Average tiny in
  let ws = Workspace.create tiny in
  check_bits "eval_ws (v_min clamp)"
    (Objective.eval ~plan:tiny ~power ~totals ~e:[| 100. |] ~w_hat:[| 1. |])
    (Objective.eval_ws ws ~power ~totals ~e:[| 100. |] ~w_hat:[| 1. |])

let test_ws_eval_alpha_bitwise () =
  let alpha =
    Model.create ~v_min:1. ~v_max:4.
      (Model.Alpha { k = 0.5; v_th = 0.4; alpha = 1.6 })
  in
  let plan = motivation_plan () in
  let ws = Workspace.create plan in
  let totals = Objective.instance_totals Objective.Average plan in
  let e = [| 10.; 15.; 20. |] in
  check_bits "alpha eval_ws"
    (Objective.eval ~plan ~power:alpha ~totals ~e ~w_hat:quotas3)
    (Objective.eval_ws ws ~power:alpha ~totals ~e ~w_hat:quotas3)

let test_ws_gradient_bitwise_random () =
  (* Random feasible-ish points on a genuinely preemptive plan: value
     and both gradient blocks must agree bit-for-bit with the
     allocating adjoint, with the workspace reused across points. *)
  let ts =
    Task_set.create
      [ Task.with_ratio ~name:"a" ~period:4 ~wcec:3. ~ratio:0.3;
        Task.with_ratio ~name:"b" ~period:8 ~wcec:5. ~ratio:0.3 ]
  in
  let plan = Plan.expand ts in
  let m = Plan.size plan in
  let totals = Objective.instance_totals Objective.Average plan in
  let rng = Lepts_prng.Xoshiro256.create ~seed:99 in
  let power = Model.ideal ~v_min:0.1 ~v_max:8. () in
  let ws = Workspace.create plan in
  let de = Array.make m 0. and dwq = Array.make m 0. in
  for round = 1 to 30 do
    match Solver.initial_point ~plan ~power with
    | Error _ -> Alcotest.fail "schedulable"
    | Ok (e0, q0) ->
      let e =
        Array.mapi
          (fun k ek ->
            let b = plan.Plan.order.(k).Lepts_preempt.Sub_instance.boundary in
            ek +. (Lepts_prng.Xoshiro256.float rng *. 0.7 *. (b -. ek)))
          e0
      in
      (* Every few rounds, force the branch cases: a zeroed quota, a
         collapsed window (floor guard) and an over-tight window
         (v_max clamp). *)
      if round mod 3 = 0 then q0.(round mod m) <- 0.;
      if round mod 4 = 0 then e.(round mod m) <- 0.;
      if round mod 5 = 0 then
        e.(round mod m) <- plan.Plan.order.(round mod m).Lepts_preempt.Sub_instance.release +. 1e-6;
      let fx, de_ref, dq_ref =
        Objective.eval_with_gradient ~plan ~power ~totals ~e ~w_hat:q0
      in
      let fx_ws =
        Objective.eval_with_gradient_ws ws ~power ~totals ~e ~w_hat:q0 ~de ~dwq
      in
      check_bits "gradient value" fx fx_ws;
      check_bits_arr "de" de_ref de;
      check_bits_arr "dwq" dq_ref dwq
  done

let test_ws_gradient_branch_points_numdiff () =
  (* Firmly-in-branch points where the objective is locally flat in the
     branch coordinate, so central differences agree with the one-sided
     adjoint: a v_min-clamped schedule and a floored window. *)
  let tiny =
    Plan.expand
      (Task_set.create
         [ Task.create ~name:"t" ~period:100 ~wcec:1. ~acec:0.5 ~bcec:0. ])
  in
  let totals = Objective.instance_totals Objective.Average tiny in
  let check_point plan totals e w_hat =
    let m = Plan.size plan in
    let ws = Workspace.create plan in
    let de = Array.make m 0. and dwq = Array.make m 0. in
    let fx_ws =
      Objective.eval_with_gradient_ws ws ~power ~totals ~e ~w_hat ~de ~dwq
    in
    let fx, de_ref, dq_ref =
      Objective.eval_with_gradient ~plan ~power ~totals ~e ~w_hat
    in
    check_bits "branch value" fx fx_ws;
    check_bits_arr "branch de" de_ref de;
    check_bits_arr "branch dwq" dq_ref dwq;
    let f x =
      Objective.eval ~plan ~power ~totals ~e:(Array.sub x 0 m)
        ~w_hat:(Array.sub x m m)
    in
    let num = Lepts_optim.Numdiff.gradient ~h:1e-7 ~f (Array.append e w_hat) in
    Array.iteri
      (fun i a ->
        let rel = Float.abs (a -. num.(i)) /. Float.max 1. (Float.abs num.(i)) in
        if rel > 1e-5 then Alcotest.failf "branch coord %d: ana %g vs num %g" i a num.(i))
      (Array.append de dq_ref)
  in
  (* v_min clamp: huge window, tiny workload. *)
  check_point tiny totals [| 100. |] [| 1. |];
  (* Window floor: end-time far below the release. *)
  let plan = motivation_plan () in
  let totals3 = Objective.instance_totals Objective.Average plan in
  check_point plan totals3 [| -5.; 15.; 20. |] quotas3

let test_ws_error_paths () =
  let plan = motivation_plan () in
  let ws = Workspace.create plan in
  let totals = Objective.instance_totals Objective.Average plan in
  Alcotest.check_raises "bad lengths"
    (Invalid_argument "Objective: vector length does not match plan size")
    (fun () ->
      ignore (Objective.eval_ws ws ~power ~totals ~e:[| 1. |] ~w_hat:[| 1. |]));
  Alcotest.check_raises "bad gradient buffers"
    (Invalid_argument "Objective.eval_with_gradient_ws: gradient buffer length mismatch")
    (fun () ->
      ignore
        (Objective.eval_with_gradient_ws ws ~power ~totals ~e:[| 10.; 15.; 20. |]
           ~w_hat:quotas3 ~de:[| 0. |] ~dwq:[| 0. |]));
  let alpha =
    Model.create ~v_min:1. ~v_max:4.
      (Model.Alpha { k = 0.5; v_th = 0.4; alpha = 1.6 })
  in
  Alcotest.check_raises "no adjoint for alpha"
    (Invalid_argument "Objective.eval_with_gradient: analytic adjoint requires ideal delay")
    (fun () ->
      ignore
        (Objective.eval_with_gradient_ws ws ~power:alpha ~totals
           ~e:[| 10.; 15.; 20. |] ~w_hat:quotas3
           ~de:(Array.make 3 0.) ~dwq:(Array.make 3 0.)))

let suite =
  [ ("Fig 1(b): WCS average energy", `Quick, test_wcs_schedule_average_energy);
    ("Fig 2: ACS average energy", `Quick, test_acs_schedule_average_energy);
    ("Fig 1(a)/(c): worst-case energies", `Quick, test_worst_case_energy);
    ("trace consistency", `Quick, test_trace_consistency);
    ("v_min clamping", `Quick, test_vmin_clamp);
    ("v_max clamp on infeasible windows", `Quick, test_vmax_clamp_on_infeasible);
    ("zero-quota sub-instances skipped", `Quick, test_zero_quota_skipped);
    ("adjoint vs numdiff (interior)", `Quick, test_gradient_matches_numdiff_interior);
    ("adjoint vs numdiff (random feasible)", `Quick, test_gradient_random_feasible_points);
    ("alpha model evaluation", `Quick, test_alpha_model_eval);
    ("length mismatch", `Quick, test_length_mismatch);
    ("instance totals", `Quick, test_instance_totals);
    ("workspace eval bit-identical", `Quick, test_ws_eval_bitwise);
    ("workspace eval bit-identical (alpha)", `Quick, test_ws_eval_alpha_bitwise);
    ("workspace adjoint bit-identical (random)", `Quick, test_ws_gradient_bitwise_random);
    ("workspace adjoint branch points + numdiff", `Quick, test_ws_gradient_branch_points_numdiff);
    ("workspace error paths", `Quick, test_ws_error_paths) ]
