open Lepts_optim
module Vec = Lepts_linalg.Vec

let check_float eps = Alcotest.(check (float eps))

(* Classic test functions. *)
let sphere x = Vec.dot x x
let sphere_grad x = Vec.scale 2. x

let rosenbrock x =
  let a = 1. -. x.(0) and b = x.(1) -. (x.(0) *. x.(0)) in
  (a *. a) +. (100. *. b *. b)

let rosenbrock_grad x =
  let b = x.(1) -. (x.(0) *. x.(0)) in
  [| (-2. *. (1. -. x.(0))) -. (400. *. x.(0) *. b); 200. *. b |]

let quadratic_bowl c x = Vec.dot (Vec.sub x c) (Vec.sub x c)

(* --- Numdiff ------------------------------------------------------------ *)

let test_numdiff_quadratic () =
  let x = [| 1.; -2.; 3. |] in
  let g = Numdiff.gradient ~f:sphere x in
  Array.iteri
    (fun i gi -> check_float 1e-5 "d sphere" (2. *. x.(i)) gi)
    g

let test_numdiff_rosenbrock () =
  let x = [| 0.3; -0.7 |] in
  let num = Numdiff.gradient ~f:rosenbrock x in
  let ana = rosenbrock_grad x in
  Array.iteri (fun i gi -> check_float 1e-4 "d rosenbrock" ana.(i) gi) num

let test_numdiff_does_not_mutate () =
  let x = [| 1.; 2. |] in
  let copy = Array.copy x in
  ignore (Numdiff.gradient ~f:sphere x);
  Alcotest.(check bool) "input intact" true (x = copy)

let test_directional () =
  let x = [| 1.; 1. |] in
  let d = Numdiff.directional ~f:sphere x ~dir:[| 1.; 0. |] in
  check_float 1e-5 "directional" 2. d;
  check_float 0. "zero direction" 0. (Numdiff.directional ~f:sphere x ~dir:[| 0.; 0. |])

(* --- Non-finite guards --------------------------------------------------- *)

let raises_non_finite f =
  try
    ignore (f ());
    false
  with Guard.Non_finite _ -> true

let test_numdiff_guards_nan () =
  (* A NaN objective near the evaluation point must trip the guard, not
     silently poison the gradient. *)
  let f x = if x.(0) > 1. then Float.nan else sphere x in
  Alcotest.(check bool) "nan objective detected" true
    (raises_non_finite (fun () -> Numdiff.gradient ~f [| 1.; 0. |]));
  let g x = if x.(0) > 1. then Float.infinity else sphere x in
  Alcotest.(check bool) "inf objective detected" true
    (raises_non_finite (fun () -> Numdiff.gradient ~f:g [| 1.; 0. |]))

let test_pg_guards_nan_at_start () =
  let f _ = Float.nan in
  let grad x = Vec.scale 2. x in
  Alcotest.(check bool) "nan objective at x0 detected" true
    (raises_non_finite (fun () ->
         Projected_gradient.minimize ~f ~grad ~project:Fun.id ~x0:[| 1. |] ()))

let test_pg_guards_nan_gradient () =
  let grad _ = [| Float.nan |] in
  Alcotest.(check bool) "nan gradient detected" true
    (raises_non_finite (fun () ->
         Projected_gradient.minimize ~f:sphere ~grad ~project:Fun.id ~x0:[| 1. |] ()))

let test_guard_passes_finite () =
  Alcotest.(check (float 0.)) "finite passthrough" 3.5
    (Guard.finite ~where:"x" 3.5);
  Alcotest.(check bool) "vector passthrough" true
    (Guard.finite_vec ~where:"v" [| 1.; 2. |] = [| 1.; 2. |])

(* --- Line search -------------------------------------------------------- *)

let test_backtracking_accepts () =
  let x = [| 4. |] in
  let fx = sphere x in
  let dir = [| -8. |] in
  match Line_search.backtracking ~f:sphere ~x ~fx ~dir ~slope:(Vec.dot dir (sphere_grad x)) ~init:1. () with
  | None -> Alcotest.fail "no step found"
  | Some r ->
    Alcotest.(check bool) "decreased" true (r.Line_search.value < fx)

let test_backtracking_rejects_ascent () =
  let x = [| 4. |] in
  match Line_search.backtracking ~f:sphere ~x ~fx:(sphere x) ~dir:[| 8. |] ~slope:64. ~init:1. () with
  | None -> ()
  | Some _ -> Alcotest.fail "accepted an ascent direction"

(* --- L-BFGS ------------------------------------------------------------- *)

let test_lbfgs_sphere () =
  let r = Lbfgs.minimize ~f:sphere ~grad:sphere_grad ~x0:[| 5.; -3.; 2. |] () in
  Alcotest.(check bool) "converged" true r.Lbfgs.converged;
  check_float 1e-10 "minimum value" 0. r.Lbfgs.value

let test_lbfgs_shifted_quadratic () =
  let c = [| 1.; 2.; 3.; 4. |] in
  let f = quadratic_bowl c in
  let grad x = Vec.scale 2. (Vec.sub x c) in
  let r = Lbfgs.minimize ~f ~grad ~x0:(Vec.zeros 4) () in
  Alcotest.(check bool) "found center" true (Vec.dist2 r.Lbfgs.x c < 1e-6)

let test_lbfgs_rosenbrock () =
  let r =
    Lbfgs.minimize ~max_iter:2000 ~f:rosenbrock ~grad:rosenbrock_grad
      ~x0:[| -1.2; 1. |] ()
  in
  Alcotest.(check bool) "reaches (1,1)" true (Vec.dist2 r.Lbfgs.x [| 1.; 1. |] < 1e-4)

let test_lbfgs_already_optimal () =
  let r = Lbfgs.minimize ~f:sphere ~grad:sphere_grad ~x0:(Vec.zeros 3) () in
  Alcotest.(check int) "no iterations" 0 r.Lbfgs.iterations;
  Alcotest.(check bool) "converged" true r.Lbfgs.converged

let test_lbfgs_illconditioned () =
  (* Diagonal quadratic with condition number 1e4. *)
  let d = [| 1.; 100. |] in
  let f x = (d.(0) *. x.(0) *. x.(0)) +. (d.(1) *. x.(1) *. x.(1)) in
  let grad x = [| 2. *. d.(0) *. x.(0); 2. *. d.(1) *. x.(1) |] in
  let r = Lbfgs.minimize ~max_iter:1000 ~f ~grad ~x0:[| 1.; 1. |] () in
  check_float 1e-8 "ill-conditioned minimum" 0. r.Lbfgs.value

(* --- Projections -------------------------------------------------------- *)

let test_box_projection () =
  let p = Projection.box ~lo:[| 0.; 0. |] ~hi:[| 1.; 2. |] [| -1.; 5. |] in
  Alcotest.(check (float 0.)) "clamped low" 0. p.(0);
  Alcotest.(check (float 0.)) "clamped high" 2. p.(1)

let simplex_sum x = Array.fold_left ( +. ) 0. x

let test_simplex_projection_basic () =
  let p = Projection.simplex ~total:1. [| 0.5; 0.5 |] in
  check_float 1e-12 "already feasible" 0.5 p.(0);
  let p = Projection.simplex ~total:1. [| 2.; 0. |] in
  check_float 1e-12 "vertex" 1. p.(0);
  check_float 1e-12 "vertex zero" 0. p.(1)

let test_simplex_projection_negative () =
  let p = Projection.simplex ~total:6. [| -1.; 5.; 10. |] in
  check_float 1e-9 "sums to total" 6. (simplex_sum p);
  Array.iter (fun v -> Alcotest.(check bool) "non-negative" true (v >= 0.)) p

let test_simplex_projection_property () =
  (* Projection optimality: for all feasible z, <x - p, z - p> <= 0. *)
  let rng = Lepts_prng.Xoshiro256.create ~seed:71 in
  for _ = 1 to 200 do
    let n = 1 + Lepts_prng.Xoshiro256.int rng ~bound:6 in
    let total = Lepts_prng.Xoshiro256.uniform rng ~lo:0.1 ~hi:10. in
    let x = Array.init n (fun _ -> Lepts_prng.Xoshiro256.uniform rng ~lo:(-5.) ~hi:5.) in
    let p = Projection.simplex ~total x in
    check_float 1e-8 "sum" total (simplex_sum p);
    Array.iter (fun v -> if v < -1e-12 then Alcotest.failf "negative %g" v) p;
    (* random feasible point via normalized exponentials *)
    let z = Array.init n (fun _ -> -.log (Float.max 1e-9 (Lepts_prng.Xoshiro256.float rng))) in
    let zs = simplex_sum z in
    let z = Array.map (fun v -> total *. v /. zs) z in
    let inner = Vec.dot (Vec.sub x p) (Vec.sub z p) in
    if inner > 1e-7 then Alcotest.failf "not a projection: %g" inner
  done

let test_blocks_projection () =
  let proj = Projection.blocks
      [| Projection.simplex ~total:1.; (fun s -> Array.map (Float.max 0.) s) |]
      ~offsets:[| (0, 2); (2, 2) |] in
  let p = proj [| 3.; 0.; -1.; 4. |] in
  check_float 1e-9 "simplex block" 1. (p.(0) +. p.(1));
  Alcotest.(check (float 0.)) "box block" 0. p.(2);
  Alcotest.(check (float 0.)) "untouched" 4. p.(3)

(* --- Projected gradient -------------------------------------------------- *)

let test_pg_unconstrained () =
  let r =
    Projected_gradient.minimize ~f:sphere ~grad:sphere_grad ~project:Fun.id
      ~x0:[| 4.; -2. |] ()
  in
  check_float 1e-8 "min" 0. r.Projected_gradient.value

let test_pg_box_active () =
  (* min (x-3)^2 over [0, 1]: solution at the bound x = 1. *)
  let f x = (x.(0) -. 3.) ** 2. in
  let grad x = [| 2. *. (x.(0) -. 3.) |] in
  let project = Projection.box ~lo:[| 0. |] ~hi:[| 1. |] in
  let r = Projected_gradient.minimize ~f ~grad ~project ~x0:[| 0. |] () in
  check_float 1e-8 "active bound" 1. r.Projected_gradient.x.(0)

let test_pg_simplex () =
  (* min sum (x_i - c_i)^2 over the simplex: projection of c. *)
  let c = [| 0.9; 0.4; -0.3 |] in
  let f x = Vec.dot (Vec.sub x c) (Vec.sub x c) in
  let grad x = Vec.scale 2. (Vec.sub x c) in
  let project = Projection.simplex ~total:1. in
  let r = Projected_gradient.minimize ~f ~grad ~project ~x0:[| 0.4; 0.3; 0.3 |] () in
  let expected = Projection.simplex ~total:1. c in
  Alcotest.(check bool) "matches direct projection" true
    (Vec.dist2 r.Projected_gradient.x expected < 1e-6)

let test_pg_infeasible_start () =
  let f x = Vec.dot x x in
  let grad x = Vec.scale 2. x in
  let project = Projection.box ~lo:[| 1.; 1. |] ~hi:[| 2.; 2. |] in
  let r = Projected_gradient.minimize ~f ~grad ~project ~x0:[| -10.; 10. |] () in
  Alcotest.(check bool) "lands at corner" true
    (Vec.dist2 r.Projected_gradient.x [| 1.; 1. |] < 1e-7)

(* --- NLP / augmented Lagrangian ------------------------------------------ *)

let test_linear_constraint () =
  let c = Nlp.linear_constraint ~name:"test" ~coeffs:[ (0, 2.); (2, -1.) ] ~bound:3. in
  check_float 1e-12 "value" (-1.) (c.Nlp.value [| 1.; 9.; 0. |]);
  let g = Nlp.constraint_gradient c [| 0.; 0.; 0. |] in
  Alcotest.(check bool) "gradient" true (g = [| 2.; 0.; -1. |])

let test_al_equality_via_projection () =
  (* min (x0-2)^2 + (x1-2)^2 s.t. x on simplex(1): symmetric -> (0.5, 0.5). *)
  let f x = ((x.(0) -. 2.) ** 2.) +. ((x.(1) -. 2.) ** 2.) in
  let grad x = [| 2. *. (x.(0) -. 2.); 2. *. (x.(1) -. 2.) |] in
  let problem =
    { Nlp.dim = 2; objective = f; gradient = grad; inequalities = [];
      project = Projection.simplex ~total:1. }
  in
  let r = Augmented_lagrangian.solve problem ~x0:[| 1.; 0. |] in
  Alcotest.(check bool) "symmetric solution" true
    (Vec.dist2 r.Augmented_lagrangian.x [| 0.5; 0.5 |] < 1e-6)

let test_al_inequality_active () =
  (* min x^2 + y^2  s.t. x + y >= 1  (as 1 - x - y <= 0): optimum (0.5, 0.5). *)
  let f x = Vec.dot x x in
  let grad x = Vec.scale 2. x in
  let c =
    Nlp.linear_constraint ~name:"sum>=1" ~coeffs:[ (0, -1.); (1, -1.) ] ~bound:(-1.)
  in
  let problem =
    { Nlp.dim = 2; objective = f; gradient = grad; inequalities = [ c ];
      project = Fun.id }
  in
  let r = Augmented_lagrangian.solve problem ~x0:[| 0.; 0. |] in
  Alcotest.(check bool) "converged" true r.Augmented_lagrangian.converged;
  Alcotest.(check bool) "KKT point" true
    (Vec.dist2 r.Augmented_lagrangian.x [| 0.5; 0.5 |] < 1e-4)

let test_al_inequality_inactive () =
  (* Same objective, constraint x + y <= 10 is inactive: optimum origin. *)
  let f x = Vec.dot x x in
  let grad x = Vec.scale 2. x in
  let c = Nlp.linear_constraint ~name:"loose" ~coeffs:[ (0, 1.); (1, 1.) ] ~bound:10. in
  let problem =
    { Nlp.dim = 2; objective = f; gradient = grad; inequalities = [ c ];
      project = Fun.id }
  in
  let r = Augmented_lagrangian.solve problem ~x0:[| 3.; 4. |] in
  check_float 1e-6 "origin" 0. r.Augmented_lagrangian.value

let test_al_multiple_constraints () =
  (* min (x-3)^2 s.t. x <= 1 and -x <= 0 -> x = 1. *)
  let f x = (x.(0) -. 3.) ** 2. in
  let grad x = [| 2. *. (x.(0) -. 3.) |] in
  let problem =
    { Nlp.dim = 1; objective = f; gradient = grad;
      inequalities =
        [ Nlp.linear_constraint ~name:"ub" ~coeffs:[ (0, 1.) ] ~bound:1.;
          Nlp.linear_constraint ~name:"lb" ~coeffs:[ (0, -1.) ] ~bound:0. ];
      project = Fun.id }
  in
  let r = Augmented_lagrangian.solve problem ~x0:[| 0.5 |] in
  check_float 1e-4 "bound" 1. r.Augmented_lagrangian.x.(0)

let test_nlp_max_violation () =
  (* Feasible region: 2 <= x <= 5. *)
  let c1 = Nlp.linear_constraint ~name:"lb" ~coeffs:[ (0, -1.) ] ~bound:(-2.) in
  let c2 = Nlp.linear_constraint ~name:"ub" ~coeffs:[ (0, 1.) ] ~bound:5. in
  let p = Nlp.with_numerical_gradient ~dim:1 ~objective:(fun _ -> 0.)
      ~inequalities:[ c1; c2 ] () in
  check_float 1e-12 "violated by 1" 1. (Nlp.max_violation p [| 1. |]);
  check_float 1e-12 "feasible" 0. (Nlp.max_violation p [| 2.5 |]);
  check_float 1e-12 "upper violated" 2. (Nlp.max_violation p [| 7. |])

(* --- Workspace variants: bit-for-bit parity ----------------------------- *)

let check_bits msg expect got =
  if not (Int64.equal (Int64.bits_of_float expect) (Int64.bits_of_float got)) then
    Alcotest.failf "%s: %h <> %h" msg expect got

let test_simplex_ip_bitwise () =
  (* Random vectors — duplicates, negatives, zeros, a large block — and
     assorted totals: the in-place projection (with its monomorphic
     sort) must return exactly [Projection.simplex]'s values. *)
  let rng = Lepts_prng.Xoshiro256.create ~seed:1234 in
  let rand_vec n =
    Array.init n (fun _ -> (Lepts_prng.Xoshiro256.float rng *. 10.) -. 4.)
  in
  let cases =
    [ ([| 0.5; 0.5 |], 1.); ([| 2.; 0. |], 1.); ([| -1.; 5.; 10. |], 6.);
      ([| 3.; 3.; 3.; 3. |], 5.); ([| 0.; 0.; 0. |], 2.);
      (rand_vec 7, 4.2); (rand_vec 19, 0.); (rand_vec 19, 11.5);
      (rand_vec 64, 30.) ]
  in
  List.iter
    (fun (x, total) ->
      let expect = Projection.simplex ~total x in
      let got = Array.copy x in
      let scratch = Array.make (Array.length x) 0. in
      Projection.simplex_ip ~total ~scratch got;
      Array.iteri
        (fun i v -> check_bits (Printf.sprintf "coord %d" i) v got.(i))
        expect)
    cases

let test_minimize_ws_bitwise () =
  (* The allocating front-end and the workspace core must agree exactly
     on a projected problem that takes real iterations to solve. *)
  let c = [| 0.3; 1.4; -0.2; 0.9 |] in
  let f x = quadratic_bowl c x in
  let grad x = Vec.scale 2. (Vec.sub x c) in
  let project x =
    let out = Array.copy x in
    let scratch = Array.make (Array.length x) 0. in
    Projection.simplex_ip ~total:1. ~scratch out;
    out
  in
  let x0 = [| 2.; -1.; 0.5; 3. |] in
  let r =
    Projected_gradient.minimize ~max_iter:500 ~f ~grad ~project ~x0 ()
  in
  let grad_into x ~into = Array.blit (grad x) 0 into 0 (Array.length x) in
  let project_ip x =
    let scratch = Array.make (Array.length x) 0. in
    Projection.simplex_ip ~total:1. ~scratch x
  in
  let r_ws =
    Projected_gradient.minimize_ws ~max_iter:500 ~f ~grad_into ~project_ip ~x0 ()
  in
  Alcotest.(check bool) "converged" true r_ws.Projected_gradient.converged;
  Alcotest.(check int) "iterations" r.Projected_gradient.iterations
    r_ws.Projected_gradient.iterations;
  check_bits "value" r.Projected_gradient.value r_ws.Projected_gradient.value;
  check_bits "step norm" r.Projected_gradient.step_norm
    r_ws.Projected_gradient.step_norm;
  Array.iteri
    (fun i v -> check_bits (Printf.sprintf "x.(%d)" i) v r_ws.Projected_gradient.x.(i))
    r.Projected_gradient.x

let suite =
  [ ("numdiff quadratic", `Quick, test_numdiff_quadratic);
    ("numdiff rosenbrock", `Quick, test_numdiff_rosenbrock);
    ("numdiff purity", `Quick, test_numdiff_does_not_mutate);
    ("directional derivative", `Quick, test_directional);
    ("numdiff nan guard", `Quick, test_numdiff_guards_nan);
    ("pg nan objective guard", `Quick, test_pg_guards_nan_at_start);
    ("pg nan gradient guard", `Quick, test_pg_guards_nan_gradient);
    ("guard finite passthrough", `Quick, test_guard_passes_finite);
    ("backtracking accepts descent", `Quick, test_backtracking_accepts);
    ("backtracking rejects ascent", `Quick, test_backtracking_rejects_ascent);
    ("lbfgs sphere", `Quick, test_lbfgs_sphere);
    ("lbfgs shifted quadratic", `Quick, test_lbfgs_shifted_quadratic);
    ("lbfgs rosenbrock", `Quick, test_lbfgs_rosenbrock);
    ("lbfgs at optimum", `Quick, test_lbfgs_already_optimal);
    ("lbfgs ill-conditioned", `Quick, test_lbfgs_illconditioned);
    ("box projection", `Quick, test_box_projection);
    ("simplex projection basic", `Quick, test_simplex_projection_basic);
    ("simplex projection negatives", `Quick, test_simplex_projection_negative);
    ("simplex projection optimality", `Quick, test_simplex_projection_property);
    ("block projection", `Quick, test_blocks_projection);
    ("pg unconstrained", `Quick, test_pg_unconstrained);
    ("pg active box", `Quick, test_pg_box_active);
    ("pg simplex", `Quick, test_pg_simplex);
    ("pg infeasible start", `Quick, test_pg_infeasible_start);
    ("linear constraint", `Quick, test_linear_constraint);
    ("al projection equality", `Quick, test_al_equality_via_projection);
    ("al active inequality", `Quick, test_al_inequality_active);
    ("al inactive inequality", `Quick, test_al_inequality_inactive);
    ("al multiple constraints", `Quick, test_al_multiple_constraints);
    ("nlp max violation", `Quick, test_nlp_max_violation);
    ("simplex_ip bit-identical to simplex", `Quick, test_simplex_ip_bitwise);
    ("minimize_ws bit-identical to minimize", `Quick, test_minimize_ws_bitwise) ]
