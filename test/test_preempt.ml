open Lepts_preempt
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set

let mk ~name ~period = Task.create ~name ~period ~wcec:1. ~acec:0.5 ~bcec:0.

let three_task_plan () =
  (* The shape of the paper's Figs 3-4: periods 3 / 6 / 9 with
     hyper-period 18. *)
  Plan.expand
    (Task_set.create [ mk ~name:"t1" ~period:3; mk ~name:"t2" ~period:6; mk ~name:"t3" ~period:9 ])

let test_single_task () =
  let plan = Plan.expand (Task_set.create [ mk ~name:"only" ~period:5 ]) in
  Alcotest.(check int) "one sub-instance" 1 (Plan.size plan);
  let s = plan.Plan.order.(0) in
  Alcotest.(check (float 0.)) "release" 0. s.Sub_instance.release;
  Alcotest.(check (float 0.)) "boundary = deadline" 5. s.Sub_instance.boundary;
  Alcotest.(check (float 0.)) "deadline" 5. s.Sub_instance.deadline

let test_equal_periods_no_split () =
  (* Equal periods: no preemption, one sub-instance each, priority by
     input order (the motivational example's structure). *)
  let plan =
    Plan.expand
      (Task_set.create [ mk ~name:"a" ~period:20; mk ~name:"b" ~period:20; mk ~name:"c" ~period:20 ])
  in
  Alcotest.(check int) "three subs" 3 (Plan.size plan);
  Array.iter
    (fun (s : Sub_instance.t) ->
      Alcotest.(check int) "unsplit" 0 s.Sub_instance.segment;
      Alcotest.(check (float 0.)) "boundary" 20. s.Sub_instance.boundary)
    plan.Plan.order

let test_split_counts () =
  (* T1 (P=3) never split; T2 (P=6) split at 3 within each window;
     T3 (P=9) split at its windows' interior T1/T2 releases. *)
  let plan = three_task_plan () in
  Alcotest.(check int) "hyper period" 18 (int_of_float (Plan.hyper_period plan));
  let count ~task =
    Array.fold_left
      (fun acc (s : Sub_instance.t) -> if s.Sub_instance.task = task then acc + 1 else acc)
      0 plan.Plan.order
  in
  Alcotest.(check int) "t1: 6 instances x 1" 6 (count ~task:0);
  Alcotest.(check int) "t2: 3 instances x 2" 6 (count ~task:1);
  (* T3 windows [0,9): cuts {3,6}; [9,18): cuts {12,15} (12 from both
     T1 and T2), so 3 segments each. *)
  Alcotest.(check int) "t3: 2 instances x 3" 6 (count ~task:2);
  Alcotest.(check int) "sub_instance_count agrees" (Plan.size plan)
    (Plan.sub_instance_count
       (Task_set.create [ mk ~name:"t1" ~period:3; mk ~name:"t2" ~period:6; mk ~name:"t3" ~period:9 ]))

let test_segments_partition_window () =
  (* Segments of one instance tile [release, deadline) without gaps. *)
  let plan = three_task_plan () in
  Array.iteri
    (fun i per_instance ->
      Array.iteri
        (fun j idxs ->
          let subs = Array.map (fun k -> plan.Plan.order.(k)) idxs in
          let period = (Lepts_task.Task_set.task plan.Plan.task_set i).Task.period in
          Alcotest.(check (float 0.)) "starts at release"
            (float_of_int (j * period))
            subs.(0).Sub_instance.release;
          Alcotest.(check (float 0.)) "ends at deadline"
            (float_of_int ((j + 1) * period))
            subs.(Array.length subs - 1).Sub_instance.boundary;
          for k = 0 to Array.length subs - 2 do
            Alcotest.(check (float 0.)) "contiguous" subs.(k).Sub_instance.boundary
              subs.(k + 1).Sub_instance.release
          done)
        per_instance)
    plan.Plan.instance_subs

let test_boundaries_are_hp_releases () =
  let plan = three_task_plan () in
  Array.iter
    (fun (s : Sub_instance.t) ->
      if s.Sub_instance.boundary < s.Sub_instance.deadline then begin
        (* An interior boundary must be a release of some higher-priority task. *)
        let b = int_of_float s.Sub_instance.boundary in
        let is_release =
          List.exists
            (fun h ->
              let period = (Lepts_task.Task_set.task plan.Plan.task_set h).Task.period in
              b mod period = 0)
            (List.init s.Sub_instance.task Fun.id)
        in
        Alcotest.(check bool) "interior boundary is an HP release" true is_release
      end)
    plan.Plan.order

let test_total_order_sorted () =
  let plan = three_task_plan () in
  let order = plan.Plan.order in
  for k = 1 to Array.length order - 1 do
    let a = order.(k - 1) and b = order.(k) in
    let ok =
      a.Sub_instance.release < b.Sub_instance.release
      || (a.Sub_instance.release = b.Sub_instance.release
          && a.Sub_instance.task <= b.Sub_instance.task)
    in
    Alcotest.(check bool) "sorted by (release, priority)" true ok;
    Alcotest.(check int) "indices sequential" k b.Sub_instance.index
  done

let test_instance_subs_ascending () =
  let plan = three_task_plan () in
  Array.iter
    (Array.iter (fun idxs ->
         for p = 1 to Array.length idxs - 1 do
           Alcotest.(check bool) "segment order = total order" true
             (idxs.(p - 1) < idxs.(p))
         done))
    plan.Plan.instance_subs

let test_no_hp_release_inside_segment () =
  (* The defining property: no higher-priority release strictly inside
     any segment. *)
  let ts =
    Task_set.create
      [ mk ~name:"a" ~period:4; mk ~name:"b" ~period:6; mk ~name:"c" ~period:12;
        mk ~name:"d" ~period:24 ]
  in
  let plan = Plan.expand ts in
  Array.iter
    (fun (s : Sub_instance.t) ->
      for h = 0 to s.Sub_instance.task - 1 do
        let period = (Lepts_task.Task_set.task plan.Plan.task_set h).Task.period in
        let r = ref 0. in
        while !r < s.Sub_instance.boundary do
          if !r > s.Sub_instance.release +. 1e-9
             && !r < s.Sub_instance.boundary -. 1e-9
          then
            Alcotest.failf "release %g of task %d inside segment %s" !r h
              (Sub_instance.label s);
          r := !r +. float_of_int period
        done
      done)
    plan.Plan.order

let test_label () =
  let plan = three_task_plan () in
  Alcotest.(check string) "first label" "T1.1.1" (Sub_instance.label plan.Plan.order.(0))

let test_coprime_periods () =
  (* Coprime periods stress the expansion: hyper-period 35. *)
  let ts = Task_set.create [ mk ~name:"a" ~period:5; mk ~name:"b" ~period:7 ] in
  let plan = Plan.expand ts in
  Alcotest.(check (float 0.)) "hyper" 35. (Plan.hyper_period plan);
  (* b has 5 instances; window 7 contains 1-2 interior multiples of 5. *)
  let b_subs =
    Array.to_list plan.Plan.order
    |> List.filter (fun (s : Sub_instance.t) -> s.Sub_instance.task = 1)
  in
  (* Windows [0,7) [7,14) [14,21) [21,28) [28,35) contain 1,1,2,1,1
     interior multiples of 5 -> 2+2+3+2+2 = 11 segments. *)
  Alcotest.(check int) "b sub count" 11 (List.length b_subs)

let test_pp_timeline_runs () =
  let plan = three_task_plan () in
  let s = Format.asprintf "%a" Plan.pp_timeline plan in
  Alcotest.(check bool) "mentions hyper-period" true
    (String.length s > 0 && String.sub s 0 12 = "hyper-period")

let test_next_in_instance () =
  (* The successor index must agree with a direct walk of
     [instance_subs] on every plan shape we have: the preemptive
     three-task plan and the coprime-period one. *)
  let check plan =
    let expected = Array.make (Plan.size plan) (-2) in
    Array.iter
      (Array.iter (fun idxs ->
           let n = Array.length idxs in
           for pos = 0 to n - 1 do
             expected.(idxs.(pos)) <- (if pos = n - 1 then -1 else idxs.(pos + 1))
           done))
      plan.Plan.instance_subs;
    Array.iteri
      (fun k exp ->
        Alcotest.(check int) (Printf.sprintf "successor of %d" k) exp
          plan.Plan.next_in_instance.(k))
      expected
  in
  check (three_task_plan ());
  check
    (Plan.expand
       (Task_set.create [ mk ~name:"p" ~period:4; mk ~name:"q" ~period:7 ]))

let suite =
  [ ("single task", `Quick, test_single_task);
    ("equal periods unsplit", `Quick, test_equal_periods_no_split);
    ("split counts (Figs 3-4)", `Quick, test_split_counts);
    ("segments partition windows", `Quick, test_segments_partition_window);
    ("boundaries are HP releases", `Quick, test_boundaries_are_hp_releases);
    ("total order sorted", `Quick, test_total_order_sorted);
    ("instance subs ascending", `Quick, test_instance_subs_ascending);
    ("no HP release inside segments", `Quick, test_no_hp_release_inside_segment);
    ("labels", `Quick, test_label);
    ("coprime periods", `Quick, test_coprime_periods);
    ("timeline printer", `Quick, test_pp_timeline_runs);
    ("next_in_instance successor index", `Quick, test_next_in_instance) ]
