(* Observability layer: metrics registry semantics, telemetry rings,
   exporter golden output, and the load-bearing guarantees — solver
   results bit-identical with telemetry on/off (sequential and
   parallel), and span trees identical across domain counts. *)

module Metrics = Lepts_obs.Metrics
module Telemetry = Lepts_obs.Telemetry
module Span = Lepts_obs.Span
module Export = Lepts_obs.Export
module Solver = Lepts_core.Solver
module Static_schedule = Lepts_core.Static_schedule
module Plan = Lepts_preempt.Plan

(* --- metrics ----------------------------------------------------------- *)

let test_counter_gauge () =
  let t = Metrics.create () in
  let c = Metrics.counter t "c" in
  Metrics.incr c;
  Metrics.incr ~by:41 c;
  Alcotest.(check int) "counter accumulates" 42 (Metrics.counter_value c);
  Alcotest.check_raises "negative increment rejected"
    (Invalid_argument "Metrics.incr: counters only go up") (fun () ->
      Metrics.incr ~by:(-1) c);
  let c' = Metrics.counter t "c" in
  Metrics.incr c';
  Alcotest.(check int) "same identity, same cell" 43 (Metrics.counter_value c);
  let g = Metrics.gauge ~labels:[ ("k", "v") ] t "g" in
  Metrics.set g 2.5;
  Metrics.set g 1.5;
  match Metrics.snapshot t with
  | [ { Metrics.name = "c"; value = Counter_v 43; _ };
      { Metrics.name = "g"; labels = [ ("k", "v") ]; value = Gauge_v 1.5; _ } ] ->
    ()
  | samples ->
    Alcotest.failf "unexpected snapshot (%d samples)" (List.length samples)

let test_histogram () =
  let t = Metrics.create () in
  let h = Metrics.histogram ~buckets:[| 1.; 2. |] t "h" in
  Metrics.observe h 0.5;
  Metrics.observe h 1.5;
  Metrics.observe h 9.;
  (match Metrics.snapshot t with
  | [ { Metrics.value = Histogram_v { upper; counts; sum; count }; _ } ] ->
    Alcotest.(check (array (float 0.))) "upper bounds" [| 1.; 2. |] upper;
    Alcotest.(check (array int)) "bucket counts" [| 1; 1; 1 |] counts;
    Alcotest.(check (float 1e-6)) "sum" 11. sum;
    Alcotest.(check int) "count" 3 count
  | _ -> Alcotest.fail "expected one histogram sample");
  Metrics.reset t;
  (match Metrics.snapshot t with
  | [ { Metrics.value = Histogram_v { counts; count; _ }; _ } ] ->
    Alcotest.(check (array int)) "reset zeroes buckets" [| 0; 0; 0 |] counts;
    Alcotest.(check int) "reset zeroes count" 0 count
  | _ -> Alcotest.fail "identity survives reset");
  Alcotest.check_raises "unsorted buckets rejected"
    (Invalid_argument "Metrics.histogram: bucket bounds must be strictly increasing")
    (fun () -> ignore (Metrics.histogram ~buckets:[| 2.; 1. |] t "h2"))

let test_histogram_concurrent () =
  (* Atomic adds commute: the aggregate is exact under contention. *)
  let t = Metrics.create () in
  let h = Metrics.histogram ~buckets:[| 10.; 100. |] t "h" in
  let c = Metrics.counter t "c" in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for i = 1 to 1000 do
              Metrics.observe h (float_of_int (i mod 30));
              Metrics.incr c
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "counter exact" 4000 (Metrics.counter_value c);
  match Metrics.snapshot t with
  | [ _; { Metrics.value = Histogram_v { count; _ }; _ } ] ->
    Alcotest.(check int) "histogram count exact" 4000 count
  | _ -> Alcotest.fail "expected counter + histogram"

(* --- telemetry rings --------------------------------------------------- *)

let test_ring_wraparound () =
  let r = Telemetry.ring ~capacity:4 in
  for i = 1 to 10 do
    Telemetry.set_phase r ((i + 4) / 5);
    Telemetry.push r ~iteration:i ~objective:(float_of_int i) ~step:0.5
      ~step_norm:0.25 ~backtracks:0 ~projections:1
  done;
  Alcotest.(check int) "pushed counts everything" 10 (Telemetry.pushed r);
  Alcotest.(check int) "length capped at capacity" 4 (Telemetry.length r);
  let kept = Telemetry.records r in
  Alcotest.(check (list int)) "keeps the last records, oldest first"
    [ 7; 8; 9; 10 ]
    (List.map (fun (rec_ : Telemetry.record) -> rec_.Telemetry.iteration) kept);
  List.iter
    (fun (rec_ : Telemetry.record) ->
      Alcotest.(check int) "phase tag" 2 rec_.Telemetry.outer)
    kept;
  Telemetry.clear r;
  Alcotest.(check int) "clear" 0 (Telemetry.pushed r)

let test_collector_bounds () =
  let c = Telemetry.collector ~max_solves:2 () in
  let s1 = Telemetry.register c ~label:"b" in
  let s2 = Telemetry.register c ~label:"a" in
  let s3 = Telemetry.register c ~label:"z" in
  Alcotest.(check bool) "first two kept" true (s1 <> None && s2 <> None);
  Alcotest.(check bool) "third dropped" true (s3 = None);
  Alcotest.(check int) "drop counted" 1 (Telemetry.dropped c);
  Alcotest.(check (list string)) "solves sorted by label" [ "a"; "b" ]
    (List.map (fun (s : Telemetry.solve) -> s.Telemetry.label) (Telemetry.solves c))

(* --- exporters --------------------------------------------------------- *)

let golden_report () =
  let t = Metrics.create () in
  let c = Metrics.counter ~help:"a counter" t "test_counter" in
  Metrics.incr ~by:3 c;
  let g = Metrics.gauge ~labels:[ ("k", "v") ] t "test_gauge" in
  Metrics.set g 1.5;
  let h = Metrics.histogram ~buckets:[| 1.; 2. |] t "test_hist" in
  Metrics.observe h 0.5;
  Metrics.observe h 1.5;
  Metrics.observe h 9.;
  let solve = Telemetry.solve_sink ~capacity:4 ~label:"s" () in
  Telemetry.init_starts solve ~n:1;
  let start = Telemetry.start_slot solve 0 in
  Telemetry.set_phase start.Telemetry.s_ring 1;
  Telemetry.push start.Telemetry.s_ring ~iteration:1 ~objective:2.5 ~step:0.5
    ~step_norm:0.25 ~backtracks:0 ~projections:1;
  start.Telemetry.outer_rounds <- 1;
  start.Telemetry.inner_iterations <- 1;
  start.Telemetry.final_objective <- 2.5;
  { Export.command = "golden"; argv = [ "lepts"; "golden" ]; elapsed_s = 1.25;
    metrics = Metrics.snapshot t;
    spans = [ { Span.path = "a/b"; count = 2; total_s = 0.5; max_s = 0.375 } ];
    solves = [ solve ]; dropped_solves = 1 }

let test_json_golden () =
  let expected =
    "{\"schema\":\"lepts-obs-report/1\",\"command\":\"golden\",\
     \"argv\":[\"lepts\",\"golden\"],\"elapsed_s\":1.25,\"metrics\":[\
     {\"name\":\"test_counter\",\"labels\":{},\"help\":\"a counter\",\
     \"kind\":\"counter\",\"value\":3},\
     {\"name\":\"test_gauge\",\"labels\":{\"k\":\"v\"},\
     \"kind\":\"gauge\",\"value\":1.5},\
     {\"name\":\"test_hist\",\"labels\":{},\"kind\":\"histogram\",\
     \"upper\":[1,2],\"counts\":[1,1,1],\"sum\":11,\"count\":3}],\
     \"spans\":[{\"path\":\"a/b\",\"count\":2,\"total_s\":0.5,\"max_s\":0.375}],\
     \"solves\":[{\"label\":\"s\",\"starts\":[{\"start\":0,\"outer_rounds\":1,\
     \"inner_iterations\":1,\"final_objective\":2.5,\"records_seen\":1,\
     \"records\":[{\"outer\":1,\"iteration\":1,\"objective\":2.5,\"step\":0.5,\
     \"step_norm\":0.25,\"backtracks\":0,\"projections\":1}]}]}],\
     \"dropped_solves\":1}\n"
  in
  Alcotest.(check string) "JSON byte-stable" expected
    (Export.to_json (golden_report ()))

let test_csv_golden () =
  let r = golden_report () in
  Alcotest.(check string) "convergence CSV"
    "solve,start,outer,iteration,objective,step,step_norm,backtracks,projections\n\
     s,0,1,1,2.5,0.5,0.25,0,1\n"
    (Export.convergence_csv r);
  Alcotest.(check string) "metrics CSV"
    "kind,name,labels,field,value\n\
     counter,test_counter,,value,3\n\
     gauge,test_gauge,k=v,value,1.5\n\
     histogram,test_hist,,le=1,1\n\
     histogram,test_hist,,le=2,1\n\
     histogram,test_hist,,le=+Inf,1\n\
     histogram,test_hist,,sum,11\n\
     histogram,test_hist,,count,3\n\
     span,a/b,,count,2\n\
     span,a/b,,total_s,0.5\n\
     span,a/b,,max_s,0.375\n"
    (Export.metrics_csv r)

let test_prometheus_golden () =
  Alcotest.(check string) "Prometheus text"
    "# HELP test_counter a counter\n\
     # TYPE test_counter counter\n\
     test_counter 3\n\
     # TYPE test_gauge gauge\n\
     test_gauge{k=\"v\"} 1.5\n\
     # TYPE test_hist histogram\n\
     test_hist_bucket{le=\"1\"} 1\n\
     test_hist_bucket{le=\"2\"} 2\n\
     test_hist_bucket{le=\"+Inf\"} 3\n\
     test_hist_sum 11\n\
     test_hist_count 3\n\
     # TYPE lepts_span_seconds_total counter\n\
     lepts_span_seconds_total{path=\"a/b\"} 0.5\n\
     # TYPE lepts_span_count counter\n\
     lepts_span_count{path=\"a/b\"} 2\n"
    (Export.to_prometheus (golden_report ()))

(* A minimal recursive-descent JSON well-formedness check: the report
   of a real captured solve must parse, whatever its float values. *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let fail () = raise Exit in
  let expect c = if peek () = Some c then incr pos else fail () in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some ('t' | 'f' | 'n') -> keyword ()
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else begin
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos; members ()
        | Some '}' -> incr pos
        | _ -> fail ()
      in
      members ()
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else begin
      let rec elements () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos; elements ()
        | Some ']' -> incr pos
        | _ -> fail ()
      in
      elements ()
    end
  and string_lit () =
    expect '"';
    let rec chars () =
      if !pos >= n then fail ()
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' -> pos := !pos + 2; chars ()
        | _ -> incr pos; chars ()
    in
    chars ()
  and keyword () =
    let try_kw kw =
      if !pos + String.length kw <= n && String.sub s !pos (String.length kw) = kw
      then begin pos := !pos + String.length kw; true end
      else false
    in
    if not (try_kw "true" || try_kw "false" || try_kw "null") then fail ()
  and number () =
    let number_char = function
      | '-' | '+' | '.' | 'e' | 'E' | '0' .. '9' -> true
      | _ -> false
    in
    let start = !pos in
    while !pos < n && number_char s.[!pos] do incr pos done;
    if !pos = start then fail ()
  in
  match
    value ();
    skip_ws ();
    !pos = n
  with
  | reached_end -> reached_end
  | exception Exit -> false

let motivation_plan_power () =
  let power = Lepts_experiments.Motivation.power () in
  (Plan.expand (Lepts_experiments.Motivation.task_set ()), power)

let test_real_report_json_valid () =
  let plan, power = motivation_plan_power () in
  let collector = Telemetry.collector () in
  let telemetry = Option.get (Telemetry.register collector ~label:"acs") in
  (match Solver.solve_acs ~telemetry ~plan ~power () with
  | Error _ -> Alcotest.fail "solve failed"
  | Ok _ -> ());
  let registry = Metrics.create () in
  Metrics.incr (Metrics.counter ~help:"with \"quotes\"\nand newline" registry "c");
  let report =
    Export.report ~command:"test" ~argv:[ "a \"b\"" ] ~elapsed_s:0.5
      ~metrics:registry ~telemetry:collector ()
  in
  Alcotest.(check bool) "captured records present" true
    (List.exists
       (fun (s : Telemetry.solve) ->
         Array.exists
           (fun (st : Telemetry.start) -> Telemetry.pushed st.Telemetry.s_ring > 0)
           s.Telemetry.starts)
       report.Export.solves);
  Alcotest.(check bool) "JSON parses" true (json_valid (Export.to_json report));
  Alcotest.(check bool) "golden JSON parses too" true
    (json_valid (Export.to_json (golden_report ())))

(* --- the load-bearing guarantee: telemetry is observational ------------ *)

let schedule_bits (s : Static_schedule.t) =
  ( Array.map Int64.bits_of_float s.Static_schedule.end_times,
    Array.map Int64.bits_of_float s.Static_schedule.quotas )

let test_bit_identity_on_off () =
  let plan, power = motivation_plan_power () in
  let plain, plain_stats = Result.get_ok (Solver.solve_acs ~plan ~power ()) in
  let check_against label solve =
    let observed, observed_stats = Result.get_ok (solve ()) in
    Alcotest.(check (pair (array int64) (array int64)))
      (label ^ ": schedule bits identical") (schedule_bits plain)
      (schedule_bits observed);
    Alcotest.(check int64)
      (label ^ ": objective bits identical")
      (Int64.bits_of_float plain_stats.Solver.objective)
      (Int64.bits_of_float observed_stats.Solver.objective)
  in
  let sink () = Telemetry.solve_sink ~label:"t" () in
  let seq_sink = sink () in
  check_against "telemetry, sequential" (fun () ->
      Solver.solve_acs ~telemetry:seq_sink ~plan ~power ());
  check_against "telemetry, jobs=4" (fun () ->
      Solver.solve_acs ~telemetry:(sink ()) ~jobs:4 ~plan ~power ());
  (* The capture must actually have captured something, each start
     written exactly once. *)
  Alcotest.(check bool) "records captured" true
    (Array.for_all
       (fun (st : Telemetry.start) -> Telemetry.pushed st.Telemetry.s_ring > 0)
       seq_sink.Telemetry.starts);
  Array.iter
    (fun (st : Telemetry.start) ->
      Alcotest.(check bool) "outcome recorded" true
        (st.Telemetry.outer_rounds > 0
        && (st.Telemetry.failure <> None
           || Float.is_finite st.Telemetry.final_objective)))
    seq_sink.Telemetry.starts

(* --- span determinism across domain counts ----------------------------- *)

let span_shape aggs =
  List.map (fun (a : Span.agg) -> (a.Span.path, a.Span.count)) aggs

let test_span_merge_deterministic () =
  let plan, power = motivation_plan_power () in
  Fun.protect
    ~finally:(fun () ->
      Span.set_enabled false;
      Span.reset ())
    (fun () ->
      Span.set_enabled true;
      let shape jobs =
        Span.reset ();
        ignore (Result.get_ok (Solver.solve_acs ~jobs ~plan ~power ()));
        span_shape (Span.report ())
      in
      let seq = shape 1 in
      Alcotest.(check bool) "spans recorded" true (seq <> []);
      Alcotest.(check (list (pair string int))) "jobs=2 same tree" seq (shape 2);
      Alcotest.(check (list (pair string int))) "jobs=4 same tree" seq (shape 4))

let test_span_nesting_and_raise () =
  Fun.protect
    ~finally:(fun () ->
      Span.set_enabled false;
      Span.reset ())
    (fun () ->
      Span.set_enabled true;
      Span.reset ();
      Span.with_ ~name:"outer" (fun () ->
          Alcotest.(check (option string)) "current" (Some "outer") (Span.current ());
          Span.with_ ~name:"inner" ignore;
          Span.with_ ~name:"inner" ignore);
      (try Span.with_ ~name:"raises" (fun () -> failwith "boom") with _ -> ());
      Alcotest.(check (list (pair string int))) "paths and counts"
        [ ("outer", 1); ("outer/inner", 2); ("raises", 1) ]
        (span_shape (Span.report ())))

(* --- pipeline degradation counters ------------------------------------- *)

let test_pipeline_degradation_counters () =
  let plan, power = motivation_plan_power () in
  let counter name stage =
    Metrics.counter ~labels:[ ("stage", stage) ] Metrics.default name
  in
  let value = Metrics.counter_value in
  let degradations = Metrics.counter Metrics.default "lepts_pipeline_degradations_total" in
  let acs_failures = counter "lepts_pipeline_failures_total" "acs" in
  let wcs_chosen = counter "lepts_pipeline_chosen_total" "wcs" in
  let before = (value degradations, value acs_failures, value wcs_chosen) in
  (* An exhausted ACS budget forces the WCS fallback: a degradation. *)
  let config =
    { Lepts_robust.Robust_solver.default_config with
      acs = { Lepts_robust.Robust_solver.default_budget with max_outer = 0 } }
  in
  let collector = Telemetry.collector () in
  (match Lepts_robust.Robust_solver.solve ~config ~telemetry:collector ~plan ~power () with
  | Error _ -> Alcotest.fail "pipeline failed outright"
  | Ok (_, diagnostics) ->
    Alcotest.(check bool) "fell back to wcs" true
      (diagnostics.Lepts_robust.Robust_solver.chosen = Lepts_robust.Robust_solver.Wcs));
  let d0, f0, c0 = before in
  Alcotest.(check int) "degradation counted" (d0 + 1) (value degradations);
  Alcotest.(check int) "acs failure counted" (f0 + 1) (value acs_failures);
  Alcotest.(check int) "wcs win counted" (c0 + 1) (value wcs_chosen);
  (* Only the stage that ran registered a sink. *)
  Alcotest.(check (list string)) "only wcs captured" [ "pipeline:wcs" ]
    (List.map
       (fun (s : Telemetry.solve) -> s.Telemetry.label)
       (Telemetry.solves collector))

let suite =
  [ Alcotest.test_case "counter and gauge" `Quick test_counter_gauge;
    Alcotest.test_case "histogram buckets, sum, reset" `Quick test_histogram;
    Alcotest.test_case "concurrent updates are exact" `Quick test_histogram_concurrent;
    Alcotest.test_case "ring wraparound keeps the tail" `Quick test_ring_wraparound;
    Alcotest.test_case "collector bounds and counts drops" `Quick test_collector_bounds;
    Alcotest.test_case "JSON export golden" `Quick test_json_golden;
    Alcotest.test_case "CSV exports golden" `Quick test_csv_golden;
    Alcotest.test_case "Prometheus export golden" `Quick test_prometheus_golden;
    Alcotest.test_case "real report is valid JSON" `Quick test_real_report_json_valid;
    Alcotest.test_case "solver bit-identical with telemetry (seq + par)" `Quick
      test_bit_identity_on_off;
    Alcotest.test_case "span tree identical across jobs" `Quick
      test_span_merge_deterministic;
    Alcotest.test_case "span nesting, counts, raise safety" `Quick
      test_span_nesting_and_raise;
    Alcotest.test_case "pipeline degradation counters" `Quick
      test_pipeline_degradation_counters ]
