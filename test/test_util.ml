open Lepts_util

let check_float = Alcotest.(check (float 1e-9))

let test_gcd () =
  Alcotest.(check int) "gcd 12 18" 6 (Num_ext.gcd 12 18);
  Alcotest.(check int) "gcd 7 13" 1 (Num_ext.gcd 7 13);
  Alcotest.(check int) "gcd 0 5" 5 (Num_ext.gcd 0 5);
  Alcotest.(check int) "gcd 5 0" 5 (Num_ext.gcd 5 0);
  Alcotest.(check int) "gcd 0 0" 0 (Num_ext.gcd 0 0);
  Alcotest.(check int) "gcd negative" 6 (Num_ext.gcd (-12) 18)

let test_lcm () =
  Alcotest.(check int) "lcm 4 6" 12 (Num_ext.lcm 4 6);
  Alcotest.(check int) "lcm 5 7" 35 (Num_ext.lcm 5 7);
  Alcotest.(check int) "lcm 0 5" 0 (Num_ext.lcm 0 5);
  Alcotest.(check int) "lcm equal" 9 (Num_ext.lcm 9 9)

let test_lcm_list () =
  Alcotest.(check int) "empty" 1 (Num_ext.lcm_list []);
  Alcotest.(check int) "singleton" 8 (Num_ext.lcm_list [ 8 ]);
  Alcotest.(check int) "periods" 96 (Num_ext.lcm_list [ 24; 48; 96 ]);
  Alcotest.(check int) "coprimes" 30 (Num_ext.lcm_list [ 2; 3; 5 ])

let test_lcm_overflow () =
  Alcotest.check_raises "overflow" (Invalid_argument "Num_ext.lcm: overflow")
    (fun () -> ignore (Num_ext.lcm max_int (max_int - 1)))

let test_clamp () =
  check_float "inside" 3. (Num_ext.clamp ~lo:0. ~hi:10. 3.);
  check_float "below" 0. (Num_ext.clamp ~lo:0. ~hi:10. (-5.));
  check_float "above" 10. (Num_ext.clamp ~lo:0. ~hi:10. 15.);
  check_float "degenerate interval" 2. (Num_ext.clamp ~lo:2. ~hi:2. 7.)

let test_approx_equal () =
  Alcotest.(check bool) "equal" true (Num_ext.approx_equal 1.0 1.0);
  Alcotest.(check bool) "close" true (Num_ext.approx_equal 1.0 (1.0 +. 1e-12));
  Alcotest.(check bool) "far" false (Num_ext.approx_equal 1.0 1.1);
  Alcotest.(check bool) "relative on large" true
    (Num_ext.approx_equal 1e12 (1e12 +. 1.));
  Alcotest.(check bool) "custom eps" true (Num_ext.approx_equal ~eps:0.2 1.0 1.1)

let test_sum () =
  check_float "empty" 0. (Num_ext.sum [||]);
  check_float "simple" 6. (Num_ext.sum [| 1.; 2.; 3. |]);
  (* Kahan compensation: naive summation loses the small terms. *)
  let xs = Array.make 10_001 1e-10 in
  xs.(0) <- 1e10;
  check_float "compensated" (1e10 +. 1e-6) (Num_ext.sum xs)

let test_divide () =
  check_float "normal" 2.5 (Num_ext.divide 5. ~by:2.);
  Alcotest.check_raises "zero" Division_by_zero (fun () ->
      ignore (Num_ext.divide 1. ~by:0.))

let test_fmin_fmax () =
  check_float "fmin" 1. (Num_ext.fmin 1. 2.);
  check_float "fmax" 2. (Num_ext.fmax 1. 2.);
  Alcotest.(check bool) "fmin nan" true (Float.is_nan (Num_ext.fmin Float.nan 1.));
  Alcotest.(check bool) "fmax nan" true (Float.is_nan (Num_ext.fmax 1. Float.nan))

let test_mean_variance () =
  check_float "mean" 2. (Stats.mean [| 1.; 2.; 3. |]);
  check_float "variance" 1. (Stats.variance [| 1.; 2.; 3. |]);
  check_float "stddev" 1. (Stats.stddev [| 1.; 2.; 3. |]);
  check_float "variance pair" 0.5 (Stats.variance [| 1.; 2. |]);
  (* Sample variance is undefined below two samples: it must refuse, not
     silently report zero spread. *)
  Alcotest.check_raises "variance singleton"
    (Invalid_argument "Stats.variance: need at least two samples") (fun () ->
      ignore (Stats.variance [| 5. |]));
  Alcotest.check_raises "variance empty"
    (Invalid_argument "Stats.variance: need at least two samples") (fun () ->
      ignore (Stats.variance [||]));
  Alcotest.check_raises "mean empty" (Invalid_argument "Stats.mean: empty array")
    (fun () -> ignore (Stats.mean [||]))

let test_min_max () =
  let lo, hi = Stats.min_max [| 3.; 1.; 2. |] in
  check_float "min" 1. lo;
  check_float "max" 3. hi

let test_percentile () =
  let xs = [| 10.; 20.; 30.; 40.; 50. |] in
  check_float "p0" 10. (Stats.percentile xs ~p:0.);
  check_float "p50" 30. (Stats.percentile xs ~p:50.);
  check_float "p100" 50. (Stats.percentile xs ~p:100.);
  check_float "p25 interpolated" 20. (Stats.percentile xs ~p:25.);
  check_float "p10 interpolated" 14. (Stats.percentile xs ~p:10.);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile xs ~p:101.));
  Alcotest.check_raises "negative p"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile xs ~p:(-1.)))

let test_percentile_edges () =
  (* Single element: every percentile is that element. *)
  List.iter
    (fun p -> check_float "singleton" 7. (Stats.percentile [| 7. |] ~p))
    [ 0.; 25.; 50.; 100. ];
  (* Ties: interpolation between equal neighbours stays on the tie. *)
  let ties = [| 1.; 2.; 2.; 2.; 3. |] in
  check_float "ties p25" 2. (Stats.percentile ties ~p:25.);
  check_float "ties p50" 2. (Stats.percentile ties ~p:50.);
  check_float "ties p75" 2. (Stats.percentile ties ~p:75.);
  (* Unsorted input: percentile must sort internally. *)
  let unsorted = [| 50.; 10.; 40.; 20.; 30. |] in
  check_float "unsorted p0" 10. (Stats.percentile unsorted ~p:0.);
  check_float "unsorted p100" 50. (Stats.percentile unsorted ~p:100.);
  check_float "unsorted p50" 30. (Stats.percentile unsorted ~p:50.)

let test_geometric_mean () =
  check_float "powers of two" 4. (Stats.geometric_mean [| 2.; 8. |]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geometric_mean: non-positive element") (fun () ->
      ignore (Stats.geometric_mean [| 1.; 0. |]))

let test_table_render () =
  let t = Table.create ~header:[ "a"; "long-col" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  let rendered = Table.render t in
  Alcotest.(check bool) "has header" true
    (String.length rendered > 0 && String.sub rendered 0 1 <> " " || true);
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check int) "line count (2 rows + header + rule + trailing)" 5
    (List.length lines);
  (* All lines share the same width. *)
  let widths =
    List.filter_map
      (fun l -> if l = "" then None else Some (String.length l))
      lines
  in
  List.iter (fun w -> Alcotest.(check int) "aligned" (List.hd widths) w) widths

let test_table_mismatch () =
  let t = Table.create ~header:[ "a"; "b" ] in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Table.add_row: cell count does not match header") (fun () ->
      Table.add_row t [ "only-one" ])

let test_table_cells () =
  Alcotest.(check string) "float" "3.14" (Table.float_cell ~decimals:2 3.14159);
  Alcotest.(check string) "percent" "12.3 %" (Table.percent_cell 12.34)

let suite =
  [ ("gcd", `Quick, test_gcd);
    ("lcm", `Quick, test_lcm);
    ("lcm_list", `Quick, test_lcm_list);
    ("lcm overflow", `Quick, test_lcm_overflow);
    ("clamp", `Quick, test_clamp);
    ("approx_equal", `Quick, test_approx_equal);
    ("kahan sum", `Quick, test_sum);
    ("divide", `Quick, test_divide);
    ("fmin/fmax nan", `Quick, test_fmin_fmax);
    ("mean/variance", `Quick, test_mean_variance);
    ("min_max", `Quick, test_min_max);
    ("percentile", `Quick, test_percentile);
    ("percentile edge cases", `Quick, test_percentile_edges);
    ("geometric mean", `Quick, test_geometric_mean);
    ("table render", `Quick, test_table_render);
    ("table arity", `Quick, test_table_mismatch);
    ("table cells", `Quick, test_table_cells) ]
