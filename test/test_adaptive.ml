(* The online estimator/re-solve loop (doc/ADAPTATION.md): predictor
   edge cases, the consumed-cycle accounting it observes, and the
   determinism of the full adaptive campaign. *)

open Lepts_core
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Plan = Lepts_preempt.Plan
module Model = Lepts_power.Model
module Policy = Lepts_dvs.Policy
module Event_sim = Lepts_sim.Event_sim
module Outcome = Lepts_sim.Outcome
module Sampler = Lepts_sim.Sampler
module Estimator = Lepts_sim.Estimator
module Metrics = Lepts_obs.Metrics
module Fault_injector = Lepts_robust.Fault_injector
module Adaptive = Lepts_robust.Adaptive

let power = Model.ideal ~v_min:0.5 ~v_max:4. ()

(* One task, one instance per hyper-period: the estimator's per-task
   sample equals the consumed array, so predictions are exact. *)
let single_plan =
  Plan.expand
    (Task_set.create
       [ Task.create ~name:"t" ~period:10 ~wcec:20. ~acec:10. ~bcec:0. ])

let three_task_set =
  Task_set.scale_wcec_to_utilization
    (Task_set.create
       [ Task.with_ratio ~name:"a" ~period:4 ~wcec:4. ~ratio:0.1;
         Task.with_ratio ~name:"b" ~period:6 ~wcec:5. ~ratio:0.1;
         Task.with_ratio ~name:"c" ~period:12 ~wcec:8. ~ratio:0.1 ])
    ~power ~target:0.7

let acs_schedule plan = fst (Result.get_ok (Solver.solve_acs ~plan ~power ()))

let config ?(predictor = Estimator.Ewma { alpha = 1.0 }) ?(threshold = 0.1)
    ?(hysteresis = 0.) ?(budget = 8) () =
  { Estimator.predictor; drift_threshold = threshold; hysteresis;
    resolve_budget = budget }

let check_floats = Alcotest.(check (array (float 1e-9)))

(* --- predictor edge cases ------------------------------------------------ *)

let test_zero_observation_start () =
  let est = Estimator.create (config ()) ~plan:single_plan in
  Alcotest.(check int) "no observations" 0 (Estimator.observations est);
  check_floats "estimate = offline ACEC" [| 10. |] (Estimator.estimates est);
  Alcotest.(check (float 0.)) "no drift" 0. (Estimator.drift est);
  match Estimator.decide est with
  | _, Estimator.Keep -> ()
  | _ -> Alcotest.fail "zero observations must keep the plan"

let test_single_observation_linear_is_last_value () =
  let est =
    Estimator.create
      (config ~predictor:(Estimator.Linear_rate { window = 5 }) ())
      ~plan:single_plan
  in
  let est = Estimator.observe est ~consumed:[| 14. |] in
  (* One point has no slope: the prediction is the observation. *)
  check_floats "last-value" [| 14. |] (Estimator.estimates est);
  (* A second point turns on the extrapolation: 16 + (16 - 14) / 1. *)
  let est = Estimator.observe est ~consumed:[| 16. |] in
  check_floats "one-step extrapolation" [| 18. |] (Estimator.estimates est)

let test_ewma_fold_and_clamp () =
  let est =
    Estimator.create (config ~predictor:(Estimator.Ewma { alpha = 0.5 }) ())
      ~plan:single_plan
  in
  (* Seeded at the offline ACEC: 10 -> 0.5*14 + 0.5*10 = 12. *)
  let est = Estimator.observe est ~consumed:[| 14. |] in
  check_floats "ewma step" [| 12. |] (Estimator.estimates est);
  (* Observations beyond the WCEC (an overrun run) clamp to it. *)
  let est = Estimator.observe est ~consumed:[| 100. |] in
  check_floats "clamped to wcec" [| 20. |] (Estimator.estimates est);
  (* The fold is pure: the pre-observation state is untouched. *)
  let fresh = Estimator.create (config ()) ~plan:single_plan in
  let _ = Estimator.observe fresh ~consumed:[| 3. |] in
  check_floats "observe does not mutate" [| 10. |] (Estimator.estimates fresh)

let test_drift_exactly_at_threshold_keeps () =
  let est = Estimator.create (config ~threshold:0.1 ()) ~plan:single_plan in
  (* alpha = 1: estimate = last sample = 11, drift = |11-10|/10 = 0.1. *)
  let est = Estimator.observe est ~consumed:[| 11. |] in
  Alcotest.(check (float 1e-15)) "drift at threshold" 0.1 (Estimator.drift est);
  (match Estimator.decide est with
  | _, Estimator.Keep -> ()
  | _ -> Alcotest.fail "drift exactly at the threshold must not re-solve");
  (* One ulp past the threshold fires. *)
  let est = Estimator.observe est ~consumed:[| 11.001 |] in
  match Estimator.decide est with
  | _, Estimator.Resolve acecs -> check_floats "resolve target" [| 11.001 |] acecs
  | _ -> Alcotest.fail "drift past the threshold must re-solve"

let test_budget_exhaustion () =
  let est = Estimator.create (config ~budget:1 ()) ~plan:single_plan in
  let est = Estimator.observe est ~consumed:[| 15. |] in
  let est, d1 = Estimator.decide est in
  let acecs = match d1 with
    | Estimator.Resolve a -> a
    | _ -> Alcotest.fail "first drift event should resolve"
  in
  let est = Estimator.committed est ~acecs in
  Alcotest.(check int) "budget spent" 1 (Estimator.resolves_done est);
  (* Hysteresis 0: the trigger re-arms as soon as drift <= threshold,
     which holds right after the commit (drift is 0 vs the new
     baseline). *)
  let est, d2 = Estimator.decide est in
  (match d2 with
  | Estimator.Keep -> ()
  | _ -> Alcotest.fail "no drift right after commit");
  Alcotest.(check bool) "re-armed" true (Estimator.armed est);
  (* Drift again: the budget is spent, so the estimator reports
     exhaustion and the caller stays on the static plan. *)
  let est = Estimator.observe est ~consumed:[| 19.9 |] in
  match Estimator.decide est with
  | _, Estimator.Exhausted -> ()
  | _ -> Alcotest.fail "over-budget drift must report Exhausted"

let test_hysteresis_disarms_and_rearms () =
  let est =
    Estimator.create (config ~threshold:0.1 ~hysteresis:0.5 ()) ~plan:single_plan
  in
  let est = Estimator.observe est ~consumed:[| 15. |] in
  let est, d = Estimator.decide est in
  let acecs = match d with
    | Estimator.Resolve a -> a
    | _ -> Alcotest.fail "should resolve"
  in
  let est = Estimator.committed est ~acecs in
  Alcotest.(check bool) "disarmed after commit" false (Estimator.armed est);
  (* Drift 0.08 vs the new baseline of 15: above the 0.05 re-arm level,
     so the trigger stays disarmed and nothing fires even at the next
     check... *)
  let est = Estimator.observe est ~consumed:[| 16.2 |] in
  let est, d = Estimator.decide est in
  (match d with Estimator.Keep -> () | _ -> Alcotest.fail "disarmed: keep");
  Alcotest.(check bool) "still disarmed" false (Estimator.armed est);
  (* ...until drift falls to the re-arm level (15.6 -> 0.04 < 0.05). *)
  let est = Estimator.observe est ~consumed:[| 15.6 |] in
  let est, d = Estimator.decide est in
  (match d with Estimator.Keep -> () | _ -> Alcotest.fail "re-arm check keeps");
  Alcotest.(check bool) "re-armed below the hysteresis level" true
    (Estimator.armed est);
  (* Armed again: the next over-threshold drift fires. *)
  let est = Estimator.observe est ~consumed:[| 19.9 |] in
  match Estimator.decide est with
  | _, Estimator.Resolve _ -> ()
  | _ -> Alcotest.fail "re-armed trigger must fire"

let test_plan_with_acecs_structurally_identical () =
  let plan = Plan.expand three_task_set in
  let n = Task_set.size plan.Plan.task_set in
  let acecs =
    Array.init n (fun i ->
        let t = Task_set.task plan.Plan.task_set i in
        (* Deliberately out of range: must clamp into [bcec, wcec]. *)
        if i = 0 then t.Task.wcec *. 2. else t.Task.acec *. 0.9)
  in
  let plan' = Estimator.plan_with_acecs plan ~acecs in
  Alcotest.(check int) "same order length" (Array.length plan.Plan.order)
    (Array.length plan'.Plan.order);
  Array.iteri
    (fun k (s : Lepts_preempt.Sub_instance.t) ->
      let s' = plan'.Plan.order.(k) in
      Alcotest.(check bool) "same segment" true
        (s.Lepts_preempt.Sub_instance.task = s'.Lepts_preempt.Sub_instance.task
        && s.Lepts_preempt.Sub_instance.release
           = s'.Lepts_preempt.Sub_instance.release
        && s.Lepts_preempt.Sub_instance.boundary
           = s'.Lepts_preempt.Sub_instance.boundary))
    plan.Plan.order;
  let t0 = Task_set.task plan'.Plan.task_set 0 in
  Alcotest.(check (float 0.)) "clamped to wcec" t0.Task.wcec t0.Task.acec

(* --- consumed-cycle accounting ------------------------------------------- *)

let test_consumed_matches_totals_clean () =
  let plan = Plan.expand three_task_set in
  let schedule = acs_schedule plan in
  let totals = Sampler.fixed plan ~value:`Acec in
  let o = Event_sim.run ~schedule ~policy:Policy.Greedy ~totals () in
  Array.iteri
    (fun i per_instance ->
      let expect = Array.fold_left ( +. ) 0. per_instance in
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "task %d consumed = its totals" i)
        expect o.Outcome.consumed.(i))
    totals

let no_faults plan =
  { Event_sim.release_offsets =
      Array.map (Array.map (fun _ -> 0.)) plan.Plan.instance_subs;
    enforce_budget = false;
    deny_transition = (fun ~task:_ ~instance:_ ~sub:_ ~now:_ ~requested:_ -> false) }

let test_consumed_counts_overrun_residue_once () =
  let plan = Plan.expand three_task_set in
  let schedule = acs_schedule plan in
  (* Every instance takes 1.5x its WCEC; with budget enforcement off
     the residue beyond the quota sum executes at v_max. The consumed
     cycles must equal the actual totals exactly — the residue counted
     once, not once per quota and once at escalation. *)
  let totals =
    Array.map (Array.map (fun w -> w *. 1.5)) (Sampler.fixed plan ~value:`Wcec)
  in
  let o =
    Event_sim.run ~faults:(no_faults plan) ~schedule ~policy:Policy.Greedy
      ~totals ()
  in
  Array.iteri
    (fun i per_instance ->
      let expect = Array.fold_left ( +. ) 0. per_instance in
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "task %d consumed = overrun totals" i)
        expect o.Outcome.consumed.(i))
    totals

let test_consumed_excludes_shed_residue () =
  let plan = Plan.expand three_task_set in
  let schedule = acs_schedule plan in
  let totals = Sampler.fixed plan ~value:`Acec in
  (* Shed instance 0 of task 0 at its first dispatch: its cycles must
     not appear in the consumed observation at all. *)
  let control (d : Event_sim.dispatch) =
    if d.Event_sim.d_task = 0 && d.Event_sim.d_instance = 0 then Event_sim.Shed
    else Event_sim.Run d.Event_sim.d_base_voltage
  in
  let o = Event_sim.run ~control ~schedule ~policy:Policy.Greedy ~totals () in
  Alcotest.(check int) "one instance shed" 1 o.Outcome.shed_instances;
  let expect =
    Array.fold_left ( +. ) 0. totals.(0) -. totals.(0).(0)
  in
  Alcotest.(check (float 1e-6)) "shed residue not consumed" expect
    o.Outcome.consumed.(0)

(* --- the adaptive campaign ----------------------------------------------- *)

let drifting_spec =
  (* Heavy overruns: the actual mean rises well above the offline ACEC,
     so the estimator must drift and re-solve. *)
  { Fault_injector.seed = 7; overrun_prob = 0.4; overrun_factor = 1.8;
    jitter_prob = 0.; jitter_frac = 0.; denial_prob = 0. }

let adaptive_config ?(budget = 8) () =
  { Adaptive.estimator =
      { Estimator.predictor = Estimator.Ewma { alpha = 0.3 };
        drift_threshold = 0.05; hysteresis = 0.; resolve_budget = budget };
    resolve_every = 10;
    structure = Solver.Fast }

let run_point ~jobs ?(budget = 8) () =
  let plan = Plan.expand three_task_set in
  let schedule = acs_schedule plan in
  Adaptive.run ~rounds:60 ~jobs ~config:(adaptive_config ~budget ())
    ~spec:drifting_spec ~schedule ~policy:Policy.Greedy ~seed:11 ()

let test_adaptive_loop_resolves_and_observes_each_round_once () =
  let c = Metrics.counter Metrics.default "lepts_adapt_observations_total" in
  let before = Metrics.counter_value c in
  let p = run_point ~jobs:1 () in
  (* Every round folded exactly once, re-solve plan swaps included —
     the double-counting audit for mid-run schedule replacement. *)
  Alcotest.(check int) "one observation per round" 60
    (Metrics.counter_value c - before);
  Alcotest.(check bool) "estimator re-solved" true (p.Adaptive.counters.Adaptive.resolves >= 1);
  Alcotest.(check int) "no failures" 0 p.Adaptive.counters.Adaptive.resolve_failures;
  Alcotest.(check bool) "drift events cover resolves" true
    (p.Adaptive.counters.Adaptive.drift_events >= p.Adaptive.counters.Adaptive.resolves)

let test_adaptive_budget_zero_falls_back_to_static () =
  let p = run_point ~jobs:1 ~budget:0 () in
  Alcotest.(check int) "no resolves" 0 p.Adaptive.counters.Adaptive.resolves;
  Alcotest.(check bool) "exhaustion counted" true
    (p.Adaptive.counters.Adaptive.exhausted >= 1);
  (* Without a single re-solve the adaptive arm runs the static
     schedule throughout: the two summaries must agree bit for bit. *)
  Alcotest.(check int64) "fallback is the static arm"
    (Int64.bits_of_float p.Adaptive.static_summary.Lepts_sim.Runner.mean_energy)
    (Int64.bits_of_float p.Adaptive.adaptive_summary.Lepts_sim.Runner.mean_energy)

let test_adaptive_bit_identical_across_jobs () =
  let a = run_point ~jobs:1 () and b = run_point ~jobs:4 () in
  let bits s =
    List.map Int64.bits_of_float
      [ s.Lepts_sim.Runner.mean_energy; s.Lepts_sim.Runner.stddev_energy;
        s.Lepts_sim.Runner.min_energy; s.Lepts_sim.Runner.max_energy;
        s.Lepts_sim.Runner.p95_energy; s.Lepts_sim.Runner.p99_energy ]
  in
  Alcotest.(check (list int64)) "static summary bits" (bits a.Adaptive.static_summary)
    (bits b.Adaptive.static_summary);
  Alcotest.(check (list int64)) "adaptive summary bits"
    (bits a.Adaptive.adaptive_summary) (bits b.Adaptive.adaptive_summary);
  Alcotest.(check (array int64)) "estimates bits"
    (Array.map Int64.bits_of_float a.Adaptive.estimates)
    (Array.map Int64.bits_of_float b.Adaptive.estimates);
  Alcotest.(check int) "same resolves" a.Adaptive.counters.Adaptive.resolves
    b.Adaptive.counters.Adaptive.resolves;
  Alcotest.(check int) "same drift events" a.Adaptive.counters.Adaptive.drift_events
    b.Adaptive.counters.Adaptive.drift_events

let test_config_validation () =
  let bad c =
    Alcotest.check_raises "rejected" (Invalid_argument "x") (fun () ->
        try Estimator.validate c with Invalid_argument _ -> raise (Invalid_argument "x"))
  in
  bad (config ~predictor:(Estimator.Ewma { alpha = 0. }) ());
  bad (config ~predictor:(Estimator.Ewma { alpha = Float.nan }) ());
  bad (config ~predictor:(Estimator.Linear_rate { window = 0 }) ());
  bad (config ~threshold:0. ());
  bad (config ~hysteresis:1.5 ());
  bad (config ~budget:(-1) ());
  Estimator.validate (config ())

let suite =
  [ Alcotest.test_case "zero-observation start predicts offline ACEC" `Quick
      test_zero_observation_start;
    Alcotest.test_case "single observation: linear rate = last value" `Quick
      test_single_observation_linear_is_last_value;
    Alcotest.test_case "EWMA fold, clamping, purity" `Quick test_ewma_fold_and_clamp;
    Alcotest.test_case "drift exactly at threshold keeps the plan" `Quick
      test_drift_exactly_at_threshold_keeps;
    Alcotest.test_case "re-solve budget exhaustion" `Quick test_budget_exhaustion;
    Alcotest.test_case "hysteresis disarms then re-arms" `Quick
      test_hysteresis_disarms_and_rearms;
    Alcotest.test_case "plan_with_acecs keeps the structure" `Quick
      test_plan_with_acecs_structurally_identical;
    Alcotest.test_case "consumed = totals on a clean round" `Quick
      test_consumed_matches_totals_clean;
    Alcotest.test_case "overrun residue consumed exactly once" `Quick
      test_consumed_counts_overrun_residue_once;
    Alcotest.test_case "shed residue never consumed" `Quick
      test_consumed_excludes_shed_residue;
    Alcotest.test_case "adaptive loop observes each round once and re-solves"
      `Quick test_adaptive_loop_resolves_and_observes_each_round_once;
    Alcotest.test_case "budget 0 falls back to the static plan" `Quick
      test_adaptive_budget_zero_falls_back_to_static;
    Alcotest.test_case "adaptive run bit-identical at -j1 vs -j4" `Quick
      test_adaptive_bit_identical_across_jobs;
    Alcotest.test_case "estimator config validation" `Quick test_config_validation ]
