(* Command-line interface for the lepts library: reproduce the paper's
   experiments, inspect schedules, and run one-off task sets. *)

module Model = Lepts_power.Model
module Plan = Lepts_preempt.Plan
module Task_set = Lepts_task.Task_set
module Solver = Lepts_core.Solver
module Static_schedule = Lepts_core.Static_schedule
module Objective = Lepts_core.Objective
module Validate = Lepts_core.Validate
module Experiments = Lepts_experiments

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  Arg.(value & flag & info [ "verbose" ] ~doc:"Enable debug logging.")

let power_of ~v_min ~v_max = Model.ideal ~v_min ~v_max ()

let v_min_arg =
  Arg.(value & opt float 0.5 & info [ "v-min" ] ~docv:"VOLTS" ~doc:"Minimum supply voltage.")

let v_max_arg =
  Arg.(value & opt float 4.0 & info [ "v-max" ] ~docv:"VOLTS" ~doc:"Maximum supply voltage.")

let rounds_arg default =
  Arg.(value & opt int default
       & info [ "rounds" ] ~docv:"N" ~doc:"Hyper-periods simulated per schedule.")

let seed_arg =
  Arg.(value & opt int 2005 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for the Monte-Carlo rounds (results are \
                 bit-identical for every value; 0 = one per core).")

let resolve_jobs jobs =
  if jobs < 0 then invalid_arg "--jobs must be non-negative"
  else if jobs = 0 then Lepts_par.Pool.default_jobs ()
  else jobs

let solver_jobs_arg =
  Arg.(value & opt int 1
       & info [ "solver-jobs" ] ~docv:"N"
           ~doc:"Worker domains for the NLP multi-start solves (results are \
                 bit-identical for every value; 0 = one per core).")

let warm_start_arg =
  Arg.(value & flag
       & info [ "warm-start" ]
           ~doc:"Run each ACS solve as one continuation descent seeded from \
                 the WCS solution instead of the full multi-start. Faster on \
                 sweeps and never worse than the seed, but it may settle in \
                 a different local optimum than the cold multi-start, so the \
                 flag is part of the checkpoint fingerprint. Results remain \
                 bit-identical for every -j / --solver-jobs value.")

let exact_solve_arg =
  Arg.(value & flag
       & info [ "exact-solve" ]
           ~doc:"Solve with the dense reference kernels instead of the \
                 structure-exploiting fast path (see DESIGN.md §12). The \
                 two paths produce bit-identical schedules — this flag \
                 exists as an audit escape hatch and for CI's parity diff \
                 — but the exact path is much slower on large plans.")

let structure_of exact_solve =
  if exact_solve then Solver.Exact else Solver.Fast

let progress line =
  print_endline line;
  flush stdout

(* Timing varies run to run, so throughput reporting goes to stderr:
   stdout stays byte-identical across reruns and across -j values. *)
let print_stats ~label stats =
  Format.eprintf "  [%s] %a@." label Lepts_par.Pool.pp_stats stats

(* --- checkpoint / resume ------------------------------------------------ *)

module Checkpoint = Lepts_robust.Checkpoint
module Drain = Lepts_serve.Drain

let checkpoint_arg =
  Arg.(value & opt (some string) None
       & info [ "checkpoint" ] ~docv:"FILE"
           ~doc:"Save completed work units here as the run progresses \
                 (atomic write-rename). If FILE already holds a \
                 checkpoint of the same run, its units are reused. \
                 SIGTERM/SIGINT drain gracefully: save, then exit 3.")

let resume_arg =
  Arg.(value & opt (some string) None
       & info [ "resume" ] ~docv:"FILE"
           ~doc:"Resume from the checkpoint in FILE (error if absent or \
                 written by a run with different parameters) and keep \
                 checkpointing to it. The completed run's output is \
                 bit-identical to an uninterrupted one's.")

(* Open the checkpoint session a command's [--checkpoint]/[--resume]
   flags ask for. The fingerprint pins every result-affecting
   parameter, so [--resume] with different flags is refused instead of
   splicing incompatible result streams. Returns the session (if any)
   paired with its path, for the drain message. *)
let session_of ~checkpoint ~resume ~fingerprint =
  match (checkpoint, resume) with
  | None, None -> Ok None
  | Some _, Some _ ->
    Error "--checkpoint and --resume are mutually exclusive (--resume \
           alone both loads and keeps saving)"
  | Some path, None ->
    Result.map (fun s -> Some (s, path))
      (Checkpoint.start ~path ~resume:false ~fingerprint)
  | None, Some path ->
    Result.map (fun s -> Some (s, path))
      (Checkpoint.start ~path ~resume:true ~fingerprint)

(* Run a checkpointable command body: open the session, arm the drain
   flag when checkpointing, and map a graceful drain to exit 3. The
   body receives the optional session and a [should_stop] poll. *)
let with_session ~checkpoint ~resume ~fingerprint body =
  match session_of ~checkpoint ~resume ~fingerprint with
  | Error msg ->
    Printf.eprintf "checkpoint: %s\n%!" msg;
    2
  | Ok None -> (
    try body None (fun () -> false)
    with Checkpoint.Drained -> 3)
  | Ok (Some (session, path)) -> (
    Drain.install ();
    try body (Some session) Drain.requested
    with Checkpoint.Drained ->
      Printf.eprintf
        "drained: checkpoint saved to %s; continue with --resume %s\n%!" path
        path;
      3)

(* --- observability ------------------------------------------------------ *)

let telemetry_arg =
  Arg.(value & opt (some string) None
       & info [ "telemetry" ] ~docv:"FILE"
           ~doc:"Write a machine-readable run report here: convergence \
                 traces of every captured NLP solve, profiling spans and \
                 the metrics snapshot. Format by suffix: .csv = \
                 convergence rows, .prom/.txt = Prometheus text, \
                 anything else = JSON. Capture is observational — \
                 results are bit-identical with or without it.")

(* Wraps a command body with the observability lifecycle: enable spans,
   reset the default registry so the report covers exactly this run,
   hand the body a telemetry collector, then write the report and/or
   print the span profile. Everything lands on stderr or in FILE —
   stdout stays byte-identical with an unobserved run (CI diffs stdout
   across -j values). When neither profiling nor capture is requested
   this is a pass-through. *)
let with_observability ~command ~profile ~telemetry_file body =
  if (not profile) && telemetry_file = None then body None
  else begin
    Lepts_obs.Span.set_enabled true;
    Lepts_obs.Span.reset ();
    Lepts_obs.Metrics.reset Lepts_obs.Metrics.default;
    let collector = Lepts_obs.Telemetry.collector () in
    let t0 = Unix.gettimeofday () in
    let code = body (Some collector) in
    let elapsed = Unix.gettimeofday () -. t0 in
    let report =
      Lepts_obs.Export.report ~command ~argv:(Array.to_list Sys.argv)
        ~elapsed_s:elapsed ~metrics:Lepts_obs.Metrics.default
        ~telemetry:collector ()
    in
    Option.iter
      (fun path ->
        let data =
          if Filename.check_suffix path ".csv" then
            Lepts_obs.Export.convergence_csv report
          else if
            Filename.check_suffix path ".prom"
            || Filename.check_suffix path ".txt"
          then Lepts_obs.Export.to_prometheus report
          else Lepts_obs.Export.to_json report
        in
        let oc = open_out path in
        output_string oc data;
        close_out oc;
        let dropped = report.Lepts_obs.Export.dropped_solves in
        Printf.eprintf "telemetry: wrote %s (%d solves captured%s)\n%!" path
          (List.length report.Lepts_obs.Export.solves)
          (if dropped > 0 then Printf.sprintf ", %d dropped" dropped else ""))
      telemetry_file;
    if profile then begin
      Printf.eprintf "\nprofile: %s (%.2fs wall)\n%!" command elapsed;
      Format.eprintf "%a%!" Lepts_obs.Span.pp_report
        report.Lepts_obs.Export.spans
    end;
    code
  end

(* --- motivation -------------------------------------------------------- *)

let motivation_cmd ~profile =
  let run verbose =
    setup_logs verbose;
    with_observability ~command:"motivation" ~profile ~telemetry_file:None
    @@ fun _telemetry ->
    match Experiments.Motivation.run () with
    | Error e -> Format.printf "error: %a@." Solver.pp_error e; 1
    | Ok report ->
      print_endline "Motivational example (paper Table 1, Figs 1-2):";
      Lepts_util.Table.print (Experiments.Motivation.to_table report);
      0
  in
  Cmd.v
    (Cmd.info "motivation" ~doc:"Reproduce the paper's motivational example (Table 1, Figs 1-2).")
    Term.(const run $ verbose_arg)

(* --- fig6a ------------------------------------------------------------- *)

let fig6a_cmd ~profile =
  let run verbose sets rounds seed jobs solver_jobs warm_start v_min v_max
      checkpoint resume telemetry_file =
    setup_logs verbose;
    let jobs = resolve_jobs jobs in
    let solver_jobs = resolve_jobs solver_jobs in
    let power = power_of ~v_min ~v_max in
    let config =
      { Experiments.Fig6a.paper_config with sets_per_point = sets; rounds; seed }
    in
    let fingerprint =
      Checkpoint.fingerprint
        ~parts:
          [ "fig6a"; string_of_int sets; string_of_int rounds;
            string_of_int seed; string_of_bool warm_start;
            string_of_float v_min; string_of_float v_max ]
    in
    with_observability ~command:"fig6a" ~profile ~telemetry_file
    @@ fun telemetry ->
    with_session ~checkpoint ~resume ~fingerprint
    @@ fun session should_stop ->
    let t0 = Unix.gettimeofday () in
    let points =
      Experiments.Fig6a.run ~progress ~jobs ~solver_jobs ~warm_start ?telemetry
        ?checkpoint:session ~should_stop config ~power
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    print_endline "Fig 6(a): ACS improvement over WCS, random task sets:";
    Lepts_util.Table.print (Experiments.Fig6a.to_table points);
    let total_sets = List.length points * sets in
    Printf.eprintf
      "throughput: %d points (%d sets, %d rounds each) in %.1fs — %.2f sets/s at -j %d\n%!"
      (List.length points) total_sets rounds elapsed
      (float_of_int total_sets /. Float.max elapsed 1e-9)
      jobs;
    0
  in
  let sets =
    Arg.(value & opt int 10
         & info [ "sets" ] ~docv:"N" ~doc:"Random task sets per (tasks, ratio) point (paper: 100).")
  in
  Cmd.v
    (Cmd.info "fig6a" ~doc:"Reproduce Fig 6(a): improvement vs task count and BCEC/WCEC ratio.")
    Term.(const run $ verbose_arg $ sets $ rounds_arg 1000 $ seed_arg $ jobs_arg
          $ solver_jobs_arg $ warm_start_arg $ v_min_arg $ v_max_arg
          $ checkpoint_arg $ resume_arg $ telemetry_arg)

(* --- fig6b ------------------------------------------------------------- *)

let fig6b_cmd ~profile =
  let run verbose rounds seed jobs warm_start v_min v_max no_gap checkpoint
      resume telemetry_file =
    setup_logs verbose;
    let jobs = resolve_jobs jobs in
    let power = power_of ~v_min ~v_max in
    let config =
      { Experiments.Fig6b.paper_config with rounds; seed; include_gap = not no_gap }
    in
    let fingerprint =
      Checkpoint.fingerprint
        ~parts:
          [ "fig6b"; string_of_int rounds; string_of_int seed;
            string_of_bool (not no_gap); string_of_bool warm_start;
            string_of_float v_min; string_of_float v_max ]
    in
    with_observability ~command:"fig6b" ~profile ~telemetry_file
    @@ fun telemetry ->
    with_session ~checkpoint ~resume ~fingerprint
    @@ fun session should_stop ->
    let points =
      Experiments.Fig6b.run ~progress ~jobs ~warm_start ?telemetry
        ?checkpoint:session ~should_stop config ~power
    in
    print_endline "Fig 6(b): ACS improvement over WCS, real-life applications:";
    Lepts_util.Table.print (Experiments.Fig6b.to_table points);
    0
  in
  let no_gap =
    Arg.(value & flag & info [ "no-gap" ] ~doc:"Skip the (slow) GAP avionics task set.")
  in
  Cmd.v
    (Cmd.info "fig6b" ~doc:"Reproduce Fig 6(b): improvement on the CNC and GAP task sets.")
    Term.(const run $ verbose_arg $ rounds_arg 1000 $ seed_arg $ jobs_arg
          $ warm_start_arg $ v_min_arg $ v_max_arg $ no_gap $ checkpoint_arg
          $ resume_arg $ telemetry_arg)

(* --- schedule ---------------------------------------------------------- *)

let schedule_cmd ~profile =
  let run verbose v_min v_max exact_solve =
    setup_logs verbose;
    with_observability ~command:"schedule" ~profile ~telemetry_file:None
    @@ fun _telemetry ->
    let power = power_of ~v_min ~v_max in
    let ts = Lepts_workloads.Cnc.task_set ~power ~ratio:0.1 () in
    let plan = Plan.expand ts in
    Format.printf "CNC fully preemptive plan:@.%a@." Plan.pp_timeline plan;
    (match Solver.solve_acs ~structure:(structure_of exact_solve) ~plan ~power () with
    | Error e -> Format.printf "error: %a@." Solver.pp_error e
    | Ok (schedule, stats) ->
      Format.printf "%a@." Static_schedule.pp schedule;
      Format.printf "predicted avg energy: %g, worst: %g, feasible: %b@."
        (Static_schedule.predicted_energy schedule ~mode:Objective.Average)
        (Static_schedule.predicted_energy schedule ~mode:Objective.Worst)
        (Validate.is_feasible schedule);
      Format.printf "solver: %d outer, %d inner iterations@."
        stats.Solver.outer_iterations stats.Solver.inner_iterations);
    0
  in
  Cmd.v
    (Cmd.info "schedule"
       ~doc:"Expand and solve the CNC task set; print the plan and the ACS schedule.")
    Term.(const run $ verbose_arg $ v_min_arg $ v_max_arg $ exact_solve_arg)

(* --- random ------------------------------------------------------------ *)

let random_cmd ~profile =
  let run verbose n ratio rounds seed jobs solver_jobs warm_start v_min v_max
      checkpoint resume telemetry_file =
    setup_logs verbose;
    let jobs = resolve_jobs jobs in
    let solver_jobs = resolve_jobs solver_jobs in
    let power = power_of ~v_min ~v_max in
    let rng = Lepts_prng.Xoshiro256.create ~seed in
    let config = Lepts_workloads.Random_gen.default_config ~n_tasks:n ~ratio in
    let fingerprint =
      Checkpoint.fingerprint
        ~parts:
          [ "random"; string_of_int n; string_of_float ratio;
            string_of_int rounds; string_of_int seed;
            string_of_bool warm_start; string_of_float v_min;
            string_of_float v_max ]
    in
    with_observability ~command:"random" ~profile ~telemetry_file
    @@ fun telemetry ->
    with_session ~checkpoint ~resume ~fingerprint
    @@ fun session should_stop ->
    (* No timing in this output on purpose: CI diffs [-j 1] against
       [-j 4] to enforce the bit-identity guarantee. *)
    (match Lepts_workloads.Random_gen.generate config ~power ~rng with
    | Error msg -> Format.printf "generation failed: %s@." msg; ()
    | Ok ts -> (
      Format.printf "task set: %a@." Task_set.pp ts;
      match
        Experiments.Improvement.measure ~rounds ~jobs ~solver_jobs ~warm_start
          ?telemetry ~telemetry_tag:"random" ?checkpoint:session ~should_stop
          ~task_set:ts ~power ~sim_seed:(seed + 1) ()
      with
      | Error e -> Format.printf "error: %a@." Solver.pp_error e
      | Ok r -> Format.printf "%a@." Experiments.Improvement.pp r));
    0
  in
  let n =
    Arg.(value & opt int 5 & info [ "tasks"; "n" ] ~docv:"N" ~doc:"Number of tasks.")
  in
  let ratio =
    Arg.(value & opt float 0.1 & info [ "ratio" ] ~docv:"R" ~doc:"BCEC/WCEC ratio.")
  in
  Cmd.v
    (Cmd.info "random" ~doc:"Generate one random task set and measure ACS vs WCS.")
    Term.(const run $ verbose_arg $ n $ ratio $ rounds_arg 1000 $ seed_arg $ jobs_arg
          $ solver_jobs_arg $ warm_start_arg $ v_min_arg $ v_max_arg
          $ checkpoint_arg $ resume_arg $ telemetry_arg)

(* --- policies ---------------------------------------------------------- *)

let policies_cmd ~profile =
  let run verbose rounds seed v_min v_max =
    setup_logs verbose;
    with_observability ~command:"policies" ~profile ~telemetry_file:None
    @@ fun _telemetry ->
    let power = power_of ~v_min ~v_max in
    let ts = Lepts_workloads.Cnc.task_set ~power ~ratio:0.1 () in
    (match Experiments.Policies.run ~rounds ~task_set:ts ~power ~seed () with
    | Error e -> Format.printf "error: %a@." Solver.pp_error e
    | Ok cells ->
      print_endline "Policy ablation on the CNC task set (ratio 0.1):";
      Lepts_util.Table.print (Experiments.Policies.to_table cells));
    0
  in
  Cmd.v
    (Cmd.info "policies"
       ~doc:"Ablate online policies (max-speed / static / greedy) on both schedules.")
    Term.(const run $ verbose_arg $ rounds_arg 500 $ seed_arg $ v_min_arg $ v_max_arg)

(* --- ablations ---------------------------------------------------------- *)

let ablations_cmd ~profile =
  let run verbose rounds seed jobs warm_start v_min v_max =
    setup_logs verbose;
    let jobs = resolve_jobs jobs in
    with_observability ~command:"ablations" ~profile ~telemetry_file:None
    @@ fun _telemetry ->
    let power = power_of ~v_min ~v_max in
    let ts = Lepts_workloads.Cnc.task_set ~power ~ratio:0.1 () in
    let show title = function
      | Error e -> Format.printf "%s: error: %a@." title Solver.pp_error e
      | Ok table ->
        Printf.printf "\n%s:\n" title;
        Lepts_util.Table.print table
    in
    show "NLP formulations (slack vs paper-literal)"
      (Experiments.Ablations.formulations ~jobs ~warm_start ~task_set:ts ~power ());
    show "Objectives (WCS vs ACS vs stochastic)"
      (Experiments.Ablations.objectives ~rounds ~jobs ~warm_start ~task_set:ts
         ~power ~seed ());
    show "Voltage quantization"
      (Experiments.Ablations.quantization ~rounds ~jobs ~warm_start ~task_set:ts
         ~power ~seed ());
    show "Scheduling structures (preemptive vs non-preemptive vs YDS bound)"
      (Experiments.Ablations.structures ~jobs ~warm_start ~task_set:ts ~power ());
    (match
       Experiments.Distribution_sweep.run ~rounds ~jobs ~task_set:ts ~power ~seed ()
     with
    | Error e -> Format.printf "distribution sweep: error: %a@." Solver.pp_error e
    | Ok points ->
      print_endline "\nWorkload distribution shapes:";
      Lepts_util.Table.print (Experiments.Distribution_sweep.to_table points));
    (match
       Experiments.Transition_sweep.run ~rounds ~jobs ~task_set:ts ~power ~seed ()
     with
    | Error e -> Format.printf "transition sweep: error: %a@." Solver.pp_error e
    | Ok points ->
      print_endline "\nVoltage-transition overhead:";
      Lepts_util.Table.print (Experiments.Transition_sweep.to_table points));
    0
  in
  Cmd.v
    (Cmd.info "ablations"
       ~doc:"Run the design-choice ablations from DESIGN.md on the CNC task set.")
    Term.(const run $ verbose_arg $ rounds_arg 500 $ seed_arg $ jobs_arg
          $ warm_start_arg $ v_min_arg $ v_max_arg)

(* --- utilization sweep --------------------------------------------------- *)

let utilization_cmd ~profile =
  let run verbose rounds seed jobs v_min v_max =
    setup_logs verbose;
    let jobs = resolve_jobs jobs in
    with_observability ~command:"utilization" ~profile ~telemetry_file:None
    @@ fun _telemetry ->
    let power = power_of ~v_min ~v_max in
    let ts = Lepts_workloads.Cnc.task_set ~power ~ratio:0.1 () in
    let points =
      Experiments.Utilization_sweep.run ~rounds ~jobs ~task_set:ts ~power ~seed ()
    in
    print_endline "ACS improvement vs worst-case utilization (CNC, ratio 0.1):";
    Lepts_util.Table.print (Experiments.Utilization_sweep.to_table points);
    0
  in
  Cmd.v
    (Cmd.info "utilization"
       ~doc:"Sweep worst-case utilization and measure the ACS gain (extension).")
    Term.(const run $ verbose_arg $ rounds_arg 400 $ seed_arg $ jobs_arg $ v_min_arg
          $ v_max_arg)

(* --- faults ------------------------------------------------------------- *)

let faults_cmd ~profile =
  let run verbose n ratio rounds seed jobs v_min v_max exact_solve overrun_prob
      overrun_factor jitter_prob jitter_frac denial_prob no_shed no_escalate
      adaptive estimator_kind ewma_alpha window drift_threshold hysteresis
      resolve_every resolve_budget fail_on_degraded checkpoint resume
      telemetry_file =
    setup_logs verbose;
    let jobs = resolve_jobs jobs in
    let adaptive_config =
      let predictor =
        match estimator_kind with
        | `Ewma -> Lepts_sim.Estimator.Ewma { alpha = ewma_alpha }
        | `Linear -> Lepts_sim.Estimator.Linear_rate { window }
      in
      { Lepts_robust.Adaptive.estimator =
          { Lepts_sim.Estimator.predictor; drift_threshold; hysteresis;
            resolve_budget };
        resolve_every;
        structure = structure_of exact_solve }
    in
    (* Malformed estimator parameters are a usage error (exit 2, like
       --chaos), caught before any solving starts. *)
    (match
       (if adaptive then Lepts_sim.Estimator.validate adaptive_config.estimator;
        if adaptive && resolve_every < 1 then
          invalid_arg "--resolve-every must be >= 1")
     with
    | () -> ()
    | exception Invalid_argument msg -> prerr_endline ("lepts faults: " ^ msg); exit 2);
    let power = power_of ~v_min ~v_max in
    let workload_result =
      if n = 0 then Ok (Lepts_workloads.Cnc.task_set ~power ~ratio ())
      else
        let rng = Lepts_prng.Xoshiro256.create ~seed in
        Lepts_workloads.Random_gen.generate
          (Lepts_workloads.Random_gen.default_config ~n_tasks:n ~ratio)
          ~power ~rng
    in
    with_observability ~command:"faults" ~profile ~telemetry_file
    @@ fun telemetry ->
    match workload_result with
    | Error msg -> Format.printf "generation failed: %s@." msg; 1
    | Ok ts -> (
      let plan = Plan.expand ts in
      match
        Lepts_robust.Robust_solver.solve ~structure:(structure_of exact_solve)
          ?telemetry ~plan ~power ()
      with
      | Error e -> Format.printf "error: %a@." Solver.pp_error e; 1
      | Ok (schedule, diagnostics) ->
        Format.printf "%a@." Lepts_robust.Robust_solver.pp_diagnostics diagnostics;
        let spec =
          { Lepts_robust.Fault_injector.seed; overrun_prob; overrun_factor;
            jitter_prob; jitter_frac; denial_prob }
        in
        let containment =
          { Lepts_robust.Containment.shed = not no_shed;
            escalate_early = not no_escalate }
        in
        Format.printf "fault spec: %a@.containment: %a@."
          Lepts_robust.Fault_injector.pp_spec spec
          Lepts_robust.Containment.pp_config containment;
        (* The schedule itself is part of the fingerprint: resuming a
           campaign against a different schedule (changed solver, say)
           must be refused, not silently spliced. *)
        let fingerprint =
          Checkpoint.fingerprint
            ~parts:
              [ "faults"; string_of_int n; string_of_float ratio;
                string_of_int rounds; string_of_int seed;
                string_of_float overrun_prob; string_of_float overrun_factor;
                string_of_float jitter_prob; string_of_float jitter_frac;
                string_of_float denial_prob; string_of_bool (not no_shed);
                string_of_bool (not no_escalate);
                Checkpoint.hash_floats schedule.Static_schedule.end_times;
                Checkpoint.hash_floats schedule.Static_schedule.quotas ]
        in
        with_session ~checkpoint ~resume ~fingerprint
        @@ fun session should_stop ->
        Printf.eprintf "campaign throughput (-j %d):\n%!" jobs;
        let report =
          Lepts_robust.Campaign.run ~rounds ~jobs ~on_stats:print_stats
            ~containment ?checkpoint:session ~should_stop ~spec ~schedule
            ~policy:Lepts_dvs.Policy.Greedy ~seed:(seed + 1) ()
        in
        Printf.printf "\nRobustness report (%d rounds per arm, greedy policy):\n"
          rounds;
        Lepts_util.Table.print (Lepts_robust.Campaign.to_table report);
        if adaptive then begin
          (* The adaptive sweep is a single chained unit of work (each
             epoch's schedule depends on the previous one), so it is
             not checkpointed — like the continuation sweeps, it reruns
             whole on resume. doc/ADAPTATION.md explains. *)
          Printf.eprintf "adaptive sweep throughput (-j %d):\n%!" jobs;
          let points =
            Lepts_robust.Adaptive.sweep ~rounds ~jobs
              ~config:adaptive_config ~on_stats:print_stats ~spec ~schedule
              ~policy:Lepts_dvs.Policy.Greedy ~seed:(seed + 2) ()
          in
          Printf.printf
            "\nAdaptive workload estimation (static vs adaptive ACS, %d \
             rounds per arm):\n"
            rounds;
          Lepts_util.Table.print (Lepts_robust.Adaptive.to_table points);
          List.iter
            (fun (p : Lepts_robust.Adaptive.point) ->
              let mean_ratio =
                let s = ref 0. in
                Array.iteri
                  (fun i e -> s := !s +. (e /. Float.max p.initial.(i) 1e-12))
                  p.estimates;
                !s /. float_of_int (Array.length p.estimates)
              in
              Printf.printf
                "  %-16s final drift %.3f, mean estimate/offline ratio %.2f, \
                 %d/%d re-solve budget used\n"
                p.label p.final_drift mean_ratio p.counters.resolves
                adaptive_config.estimator.resolve_budget)
            points
        end;
        if fail_on_degraded
           && diagnostics.Lepts_robust.Robust_solver.chosen
              <> Lepts_robust.Robust_solver.Acs
        then begin
          Printf.eprintf
            "fail-on-degraded: schedule came from %s, not acs\n%!"
            (Lepts_robust.Robust_solver.stage_name
               diagnostics.Lepts_robust.Robust_solver.chosen);
          4
        end
        else 0)
  in
  let n =
    Arg.(value & opt int 0
         & info [ "tasks"; "n" ] ~docv:"N"
             ~doc:"Number of random tasks; 0 (default) uses the CNC task set.")
  in
  let ratio =
    Arg.(value & opt float 0.1 & info [ "ratio" ] ~docv:"R" ~doc:"BCEC/WCEC ratio.")
  in
  let overrun_prob =
    Arg.(value & opt float 0.05
         & info [ "overrun-prob" ] ~docv:"P"
             ~doc:"Per-instance probability of a WCEC overrun.")
  in
  let overrun_factor =
    Arg.(value & opt float 1.5
         & info [ "overrun-factor" ] ~docv:"F"
             ~doc:"Actual cycles = F * WCEC on an overrun (F >= 1).")
  in
  let jitter_prob =
    Arg.(value & opt float 0.05
         & info [ "jitter-prob" ] ~docv:"P"
             ~doc:"Per-instance probability of release jitter.")
  in
  let jitter_frac =
    Arg.(value & opt float 0.1
         & info [ "jitter-frac" ] ~docv:"F"
             ~doc:"Maximum jitter as a fraction of the period.")
  in
  let denial_prob =
    Arg.(value & opt float 0.05
         & info [ "denial-prob" ] ~docv:"P"
             ~doc:"Per-dispatch probability that a voltage change is denied.")
  in
  let no_shed =
    Arg.(value & flag
         & info [ "no-shed" ]
             ~doc:"Containment escalates to v_max but never sheds residual work.")
  in
  let no_escalate =
    Arg.(value & flag
         & info [ "no-escalate" ]
             ~doc:"Containment only acts once the budget is fully exhausted.")
  in
  let fail_on_degraded =
    Arg.(value & flag
         & info [ "fail-on-degraded" ]
             ~doc:"Exit with code 4 when the solve pipeline fell through to \
                   a WCS or RM fallback schedule (the campaign still runs \
                   and the report is still printed). For CI gates that must \
                   distinguish a degraded-but-running system from a healthy \
                   one.")
  in
  let adaptive =
    Arg.(value & flag
         & info [ "adaptive" ]
             ~doc:"After the robustness report, run the static-vs-adaptive \
                   ACS sweep (doc/ADAPTATION.md): fold each round's \
                   observed per-task cycles into an online ACEC estimator \
                   and incrementally re-solve the schedule when the \
                   estimate drifts past --drift-threshold. Output is \
                   bit-identical for every -j value (CI-gated). The sweep \
                   is a chained unit of work and is not checkpointed.")
  in
  let estimator_kind =
    Arg.(value & opt (enum [ ("ewma", `Ewma); ("linear", `Linear) ]) `Ewma
         & info [ "estimator" ] ~docv:"KIND"
             ~doc:"ACEC predictor: $(b,ewma) (exponentially weighted moving \
                   average) or $(b,linear) (linear-rate extrapolation over \
                   the last --estimator-window observations).")
  in
  let ewma_alpha =
    Arg.(value & opt float 0.2
         & info [ "ewma-alpha" ] ~docv:"A"
             ~doc:"EWMA smoothing factor in (0, 1]; larger forgets faster.")
  in
  let window =
    Arg.(value & opt int 8
         & info [ "estimator-window" ] ~docv:"N"
             ~doc:"Observation window of the linear-rate predictor (>= 1).")
  in
  let drift_threshold =
    Arg.(value & opt float 0.1
         & info [ "drift-threshold" ] ~docv:"T"
             ~doc:"Relative ACEC drift that triggers an incremental \
                   re-solve (strictly greater-than; drift exactly at T \
                   keeps the plan).")
  in
  let hysteresis =
    Arg.(value & opt float 0.5
         & info [ "hysteresis" ] ~docv:"H"
             ~doc:"In [0, 1]: after a re-solve the trigger re-arms only \
                   once drift falls to T*(1-H) or below; 0 disables.")
  in
  let resolve_every =
    Arg.(value & opt int 25
         & info [ "resolve-every" ] ~docv:"K"
             ~doc:"Drift-check cadence in rounds (the adaptive epoch \
                   length; re-solves only happen at epoch boundaries).")
  in
  let resolve_budget =
    Arg.(value & opt int 8
         & info [ "resolve-budget" ] ~docv:"B"
             ~doc:"Maximum incremental re-solves per arm; once spent, the \
                   run continues on its last schedule and further drift \
                   events are counted as exhausted.")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Run a fault-injection campaign (WCEC overruns, release jitter, \
             denied voltage transitions) and print a robustness report, \
             optionally followed by the adaptive-estimator sweep \
             (--adaptive).")
    Term.(const run $ verbose_arg $ n $ ratio $ rounds_arg 500 $ seed_arg
          $ jobs_arg $ v_min_arg $ v_max_arg $ exact_solve_arg $ overrun_prob
          $ overrun_factor $ jitter_prob $ jitter_frac $ denial_prob $ no_shed
          $ no_escalate $ adaptive $ estimator_kind $ ewma_alpha $ window
          $ drift_threshold $ hysteresis $ resolve_every $ resolve_budget
          $ fail_on_degraded $ checkpoint_arg $ resume_arg $ telemetry_arg)

(* --- serve --------------------------------------------------------------- *)

let serve_cmd ~profile =
  let run verbose input socket_path spool_dir replay_path journal_path
      accept_backlog read_timeout_ms max_line_bytes idle_exit_ms jobs shards
      high_water wave max_retries backoff max_crashes threshold cooldown probes
      v_min v_max cache_path snapshot_every health_every max_cache_entries
      cache_stats chaos_spec fail_on_degraded telemetry_file =
    setup_logs verbose;
    let jobs = resolve_jobs jobs in
    let power = power_of ~v_min ~v_max in
    let chaos =
      match chaos_spec with
      | None -> Ok None
      | Some spec ->
        Result.map
          (fun p -> Some (Lepts_serve.Chaos.create ~profile:p))
          (Lepts_serve.Chaos.of_string spec)
    in
    let modes =
      List.length
        (List.filter Option.is_some [ socket_path; spool_dir; replay_path ])
    in
    match chaos with
    | Error msg ->
      prerr_endline ("lepts serve: " ^ msg);
      2
    | Ok _ when modes > 1 ->
      prerr_endline
        "lepts serve: --socket, --spool and --replay are mutually exclusive";
      2
    | Ok _ when max_cache_entries < 0 ->
      prerr_endline "lepts serve: --max-cache-entries must be >= 0";
      2
    | Ok chaos -> (
      with_observability ~command:"serve" ~profile ~telemetry_file
      @@ fun _telemetry ->
      Drain.install ();
      let config =
        { Lepts_serve.Daemon.service =
            { Lepts_serve.Service.jobs; shards; high_water; wave; max_retries;
              backoff_base = backoff; max_worker_crashes = max_crashes;
              breaker =
                { Lepts_serve.Breaker.failure_threshold = threshold; cooldown;
                  probes } };
          cache_path; snapshot_every; health_every; journal_path;
          max_cache_entries =
            (if max_cache_entries = 0 then None else Some max_cache_entries) }
      in
      let finish (result : Lepts_serve.Daemon.result) =
        prerr_endline
          ("lepts serve: "
          ^ Lepts_serve.Daemon.start_name result.Lepts_serve.Daemon.start);
        let report = result.Lepts_serve.Daemon.report in
        Lepts_serve.Service.print_report report;
        if cache_stats then
          print_endline
            (Lepts_serve.Daemon.cache_stats_line
               ~cache:result.Lepts_serve.Daemon.cache);
        Option.iter print_endline result.Lepts_serve.Daemon.chaos_line;
        if report.Lepts_serve.Service.drained then 3
        else if
          fail_on_degraded
          && (report.Lepts_serve.Service.degraded
             || List.exists
                  (fun (o : Lepts_serve.Service.outcome) ->
                    o.Lepts_serve.Service.degraded)
                  report.Lepts_serve.Service.outcomes)
        then 4
        else 0
      in
      let source =
        match (socket_path, spool_dir, replay_path) with
        | Some path, _, _ ->
          Some
            (Lepts_serve.Transport.socket ~accept_backlog ~read_timeout_ms
               ~max_line_bytes ~idle_exit_ms ?chaos ~path ())
        | None, Some dir, _ ->
          Some
            (Lepts_serve.Transport.spool ~max_line_bytes ~idle_exit_ms ?chaos
               ~dir ())
        | None, None, Some path -> Some (Lepts_serve.Transport.replay ~path)
        | None, None, None -> None
      in
      match source with
      | Some (Error msg) ->
        prerr_endline ("lepts serve: " ^ msg);
        2
      | Some (Ok source) ->
        let result =
          Fun.protect
            ~finally:(fun () -> Lepts_serve.Transport.close source)
            (fun () ->
              Lepts_serve.Daemon.run_source ~config ~power ?chaos
                ~should_stop:Drain.requested ~source ())
        in
        finish result
      | None ->
        let lines =
          let ic =
            match input with None -> stdin | Some path -> open_in path
          in
          let rec read acc =
            match input_line ic with
            | line -> read (line :: acc)
            | exception End_of_file -> List.rev acc
          in
          let lines = read [] in
          (match input with Some _ -> close_in ic | None -> ());
          List.filter (fun l -> String.trim l <> "") lines
        in
        finish
          (Lepts_serve.Daemon.run ~config ~power ?chaos
             ~should_stop:Drain.requested ~lines ()))
  in
  let input =
    Arg.(value & opt (some string) None
         & info [ "input"; "i" ] ~docv:"FILE"
             ~doc:"Read NDJSON requests from FILE (default: stdin). One \
                   flat JSON object per line, e.g. \
                   {\"id\":\"r1\",\"tasks\":4,\"ratio\":0.3,\"seed\":7}. \
                   Ignored when --socket, --spool or --replay selects a \
                   live ingress.")
  in
  let socket_path =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Serve as a long-running daemon on a Unix-domain socket \
                   at PATH: clients connect and stream NDJSON requests; \
                   responses go to stdout as they complete. Mutually \
                   exclusive with --spool and --replay. A stale socket \
                   file from a killed daemon is replaced; a live one is a \
                   bind conflict (exit 2).")
  in
  let spool_dir =
    Arg.(value & opt (some string) None
         & info [ "spool" ] ~docv:"DIR"
             ~doc:"Serve as a long-running daemon watching DIR: files \
                   dropped there are consumed (then deleted) as NDJSON \
                   request batches, in lexicographic name order. Names \
                   starting with '.' or ending in .tmp/.part are skipped, \
                   so writers can rename into place atomically. The \
                   file-fed replacement for repeated one-shot batch runs.")
  in
  let replay_path =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"JOURNAL"
             ~doc:"Re-serve the arrival journal recorded by --journal: \
                   every batch, arrival stamp and transport rejection is \
                   replayed exactly, so the report byte-matches the live \
                   run's. The CI determinism pin for live ingress.")
  in
  let journal_path =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"FILE"
             ~doc:"Record every polled arrival batch to FILE (atomic \
                   snapshots, same cadence as --snapshot-every) for later \
                   --replay.")
  in
  let accept_backlog =
    Arg.(value & opt int 16
         & info [ "accept-backlog" ] ~docv:"N"
             ~doc:"Pending-connection queue length for --socket (the \
                   listen(2) backlog).")
  in
  let read_timeout_ms =
    Arg.(value & opt int 5000
         & info [ "read-timeout-ms" ] ~docv:"MS"
             ~doc:"With --socket: a connection holding a partial line \
                   longer than this is rejected and closed (the buffered \
                   bytes are reported as a rejected line).")
  in
  let max_line_bytes =
    Arg.(value & opt int 65536
         & info [ "max-line-bytes" ] ~docv:"N"
             ~doc:"Longest accepted NDJSON line on a live ingress; longer \
                   lines are rejected with a diagnostic, not truncated.")
  in
  let idle_exit_ms =
    Arg.(value & opt int 0
         & info [ "idle-exit-ms" ] ~docv:"MS"
             ~doc:"With --socket or --spool: exit cleanly after this long \
                   with no connections and no arrivals; 0 (default) serves \
                   forever. Lets soak tests and scripted runs terminate \
                   without a signal.")
  in
  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"N"
             ~doc:"Request-queue shards. Requests are partitioned by a \
                   content hash of their id; each shard has its own \
                   circuit breaker and high-water mark, so one failing \
                   client family degrades one shard, not the service.")
  in
  let high_water =
    Arg.(value & opt int 64
         & info [ "high-water" ] ~docv:"N"
             ~doc:"Per-shard admission high-water mark: valid requests \
                   hashing to a shard beyond its first N are load-shed.")
  in
  let wave =
    Arg.(value & opt int 8
         & info [ "wave" ] ~docv:"N"
             ~doc:"Requests solved between circuit-breaker folds. Part of \
                   the service semantics, so results are identical for \
                   every -j value.")
  in
  let max_retries =
    Arg.(value & opt int 1
         & info [ "max-retries" ] ~docv:"N"
             ~doc:"Solver-failure retries per request.")
  in
  let backoff =
    Arg.(value & opt float 0.
         & info [ "backoff" ] ~docv:"SECONDS"
             ~doc:"Base retry delay, doubled per retry with deterministic \
                   per-request jitter; 0 disables sleeping.")
  in
  let max_crashes =
    Arg.(value & opt int 2
         & info [ "max-crashes" ] ~docv:"N"
             ~doc:"Worker restarts granted per request before it is failed \
                   and the service marked degraded.")
  in
  let threshold =
    Arg.(value & opt int 3
         & info [ "breaker-threshold" ] ~docv:"N"
             ~doc:"Consecutive ACS failures that open the circuit.")
  in
  let cooldown =
    Arg.(value & opt int 8
         & info [ "breaker-cooldown" ] ~docv:"N"
             ~doc:"Requests an open circuit waits before half-open probing.")
  in
  let probes =
    Arg.(value & opt int 1
         & info [ "breaker-probes" ] ~docv:"N"
             ~doc:"ACS probe slots per half-open episode.")
  in
  let cache_path =
    Arg.(value & opt (some string) None
         & info [ "cache" ] ~docv:"FILE"
             ~doc:"Persist the content-addressed schedule cache to FILE \
                   (atomic snapshots). On startup a valid snapshot is \
                   loaded and previously-solved task sets are served from \
                   it byte-identically; a corrupt or mismatched snapshot \
                   is refused with a diagnostic and the daemon starts \
                   cold.")
  in
  let snapshot_every =
    Arg.(value & opt int 8
         & info [ "snapshot-every" ] ~docv:"WAVES"
             ~doc:"Waves between periodic cache snapshots (with --cache).")
  in
  let health_every =
    Arg.(value & opt int 0
         & info [ "health-every" ] ~docv:"WAVES"
             ~doc:"Emit a one-line health report (cache hit rate, shard \
                   backlogs, breaker states) to stderr every N waves; 0 \
                   disables.")
  in
  let max_cache_entries =
    Arg.(value & opt int 0
         & info [ "max-cache-entries" ] ~docv:"N"
             ~doc:"Bound the schedule cache to N entries, evicting \
                   deterministically (second-chance, fallback entries \
                   first) when full; 0 (default) leaves it unbounded. A \
                   warm snapshot with a different bound is truncated to \
                   this one, never refused.")
  in
  let cache_stats =
    Arg.(value & flag
         & info [ "cache-stats" ]
             ~doc:"Append a {\"cache\": ...} trailer with \
                   hit/miss/stale/upgrade/eviction counters to stdout. \
                   Off by default: the counters differ between cold and \
                   warm runs, so they would break byte-identical report \
                   comparison.")
  in
  let chaos_spec =
    Arg.(value & opt (some string) None
         & info [ "chaos" ] ~docv:"PROFILE"
             ~doc:"Inject deterministic faults: comma-separated key=value \
                   pairs among crash=P, slow=P, slow-ms=N, drop=P, \
                   cut=P, stall=P, stall-ms=N, flip=P, corrupt=0|1, \
                   seed=N — e.g. \
                   'crash=0.2,slow=0.1,drop=0.1,cut=0.1,corrupt=1,seed=7'. \
                   cut/stall target live socket connections and flip \
                   corrupts spool files; all are keyed by the seed, so \
                   fixed seeds reproduce the same faults on every run.")
  in
  let fail_on_degraded =
    Arg.(value & flag
         & info [ "fail-on-degraded" ]
             ~doc:"Exit with code 4 when any request was served by a \
                   WCS/RM fallback schedule or the service exhausted a \
                   request's worker restarts.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve NDJSON solve requests through the supervised pipeline — \
             one-shot from a file/stdin, or long-running on a Unix-domain \
             socket (--socket) or watched spool directory (--spool): \
             sharded admission control with per-shard circuit breakers, \
             end-to-end request deadlines (budget_ms, charged while \
             queued), coalescing of identical in-flight requests, a \
             persistent bounded content-addressed schedule cache with warm \
             restart, bounded retries with backoff, optional chaos \
             injection, an arrival journal for byte-identical offline \
             replay (--journal/--replay), and graceful drain on \
             SIGTERM/SIGINT (exit 3; bind failure exits 2). Output is one \
             JSON line per request plus a summary, byte-identical for \
             every -j value — and across a warm restart.")
    Term.(const run $ verbose_arg $ input $ socket_path $ spool_dir
          $ replay_path $ journal_path $ accept_backlog $ read_timeout_ms
          $ max_line_bytes $ idle_exit_ms $ jobs_arg $ shards $ high_water
          $ wave $ max_retries $ backoff $ max_crashes $ threshold $ cooldown
          $ probes $ v_min_arg $ v_max_arg $ cache_path $ snapshot_every
          $ health_every $ max_cache_entries $ cache_stats $ chaos_spec
          $ fail_on_degraded $ telemetry_arg)

(* --- export -------------------------------------------------------------- *)

let export_cmd ~profile =
  let run verbose n ratio seed v_min v_max exact_solve out =
    setup_logs verbose;
    with_observability ~command:"export" ~profile ~telemetry_file:None
    @@ fun _telemetry ->
    let power = power_of ~v_min ~v_max in
    let ts =
      if n = 0 then Lepts_workloads.Cnc.task_set ~power ~ratio ()
      else
        let rng = Lepts_prng.Xoshiro256.create ~seed in
        match
          Lepts_workloads.Random_gen.generate
            (Lepts_workloads.Random_gen.default_config ~n_tasks:n ~ratio)
            ~power ~rng
        with
        | Ok ts -> ts
        | Error msg -> failwith msg
    in
    let plan = Plan.expand ts in
    (match Solver.solve_acs ~structure:(structure_of exact_solve) ~plan ~power () with
    | Error e -> Format.printf "error: %a@." Solver.pp_error e
    | Ok (schedule, _) ->
      let csv = Lepts_core.Export.schedule_to_csv schedule in
      (match out with
      | None -> print_string csv
      | Some path ->
        let oc = open_out path in
        output_string oc csv;
        close_out oc;
        Printf.printf "wrote %s (%d sub-instances)\n" path
          (Lepts_core.Static_schedule.size schedule)));
    0
  in
  let n =
    Arg.(value & opt int 0
         & info [ "tasks"; "n" ] ~docv:"N"
             ~doc:"Number of random tasks; 0 (default) exports the CNC schedule.")
  in
  let ratio =
    Arg.(value & opt float 0.1 & info [ "ratio" ] ~docv:"R" ~doc:"BCEC/WCEC ratio.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the CSV here instead of stdout.")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export an ACS schedule as CSV (the firmware tables).")
    Term.(const run $ verbose_arg $ n $ ratio $ seed_arg $ v_min_arg $ v_max_arg
          $ exact_solve_arg $ out)

let commands ~profile =
  [ motivation_cmd ~profile; fig6a_cmd ~profile; fig6b_cmd ~profile;
    schedule_cmd ~profile; random_cmd ~profile; policies_cmd ~profile;
    ablations_cmd ~profile; utilization_cmd ~profile; faults_cmd ~profile;
    serve_cmd ~profile; export_cmd ~profile ]

(* [lepts profile <cmd> ...] is the whole command tree again, with the
   span profiler enabled and a per-path wall-clock report printed to
   stderr on exit. Stdout is unchanged. *)
let profile_cmd =
  Cmd.group
    (Cmd.info "profile"
       ~doc:"Run any lepts command with hierarchical profiling spans \
             enabled; a per-phase wall-clock report goes to stderr when \
             the command finishes.")
    (commands ~profile:true)

let main_cmd =
  let doc = "low-energy preemptive task scheduling (DATE 2005 reproduction)" in
  Cmd.group (Cmd.info "lepts" ~version:"1.0.0" ~doc)
    (commands ~profile:false @ [ profile_cmd ])

let () = exit (Cmd.eval' main_cmd)
