(* Benchmark & reproduction harness.

   Phase 1 regenerates every table and figure of the paper's evaluation
   (at a reduced-but-same-shape scale; the `lepts` CLI runs the full
   protocol) and prints the rows the paper reports.

   Phase 2 runs Bechamel micro-benchmarks, one per experiment
   (plus ablations of the design choices called out in DESIGN.md), and
   prints estimated wall-clock time per run. *)

open Bechamel
module Model = Lepts_power.Model
module Plan = Lepts_preempt.Plan
module Solver = Lepts_core.Solver
module Static_schedule = Lepts_core.Static_schedule
module Objective = Lepts_core.Objective
module Experiments = Lepts_experiments

let power = Model.ideal ~v_min:0.5 ~v_max:4. ()

let section title =
  Printf.printf "\n=== %s ===\n%!" title

(* ---------------------------------------------------------------------- *)
(* Phase 1: regenerate every table / figure.                              *)
(* ---------------------------------------------------------------------- *)

let regenerate_motivation () =
  section "Table 1 / Figs 1-2: motivational example (paper vs measured)";
  match Experiments.Motivation.run () with
  | Error e -> Format.printf "error: %a@." Solver.pp_error e
  | Ok report -> Lepts_util.Table.print (Experiments.Motivation.to_table report)

let regenerate_fig6a () =
  section "Fig 6(a): random task sets (reduced scale; paper: 100 sets, 1000 rounds)";
  let config =
    { Experiments.Fig6a.paper_config with sets_per_point = 3; rounds = 100 }
  in
  let points =
    Experiments.Fig6a.run ~progress:(fun s -> Printf.printf "  %s\n%!" s) config ~power
  in
  Lepts_util.Table.print (Experiments.Fig6a.to_table points);
  print_endline
    "paper shape: improvement grows with workload variation (ratio 0.1 >> 0.9),\n\
     peaking around 60% (10 tasks, ratio 0.1); near zero at ratio 0.9."

let regenerate_fig6b () =
  section "Fig 6(b): CNC and GAP applications (reduced rounds)";
  let config = { Experiments.Fig6b.paper_config with rounds = 100 } in
  let points =
    Experiments.Fig6b.run ~progress:(fun s -> Printf.printf "  %s\n%!" s) config ~power
  in
  Lepts_util.Table.print (Experiments.Fig6b.to_table points);
  print_endline
    "paper shape: CNC up to ~41% and GAP up to ~30% at ratio 0.1, decaying as\n\
     the ratio approaches 1."

let regenerate_design_ablations () =
  section "Ablations: DESIGN.md design choices (CNC, ratio 0.1)";
  let ts = Lepts_workloads.Cnc.task_set ~power ~ratio:0.1 () in
  let show title = function
    | Error e -> Format.printf "%s: error: %a@." title Solver.pp_error e
    | Ok table ->
      Printf.printf "%s:\n" title;
      Lepts_util.Table.print table
  in
  show "NLP formulations" (Experiments.Ablations.formulations ~task_set:ts ~power ());
  show "Objectives"
    (Experiments.Ablations.objectives ~rounds:200 ~task_set:ts ~power ~seed:3 ());
  show "Voltage quantization"
    (Experiments.Ablations.quantization ~rounds:200 ~task_set:ts ~power ~seed:3 ());
  show "Structures"
    (Experiments.Ablations.structures ~task_set:ts ~power ());
  section "Extension: utilization sweep (CNC, ratio 0.1)";
  Lepts_util.Table.print
    (Experiments.Utilization_sweep.to_table
       (Experiments.Utilization_sweep.run ~rounds:200 ~task_set:ts ~power ~seed:3 ()));
  section "Extension: workload distribution shapes (CNC, ratio 0.1)";
  (match Experiments.Distribution_sweep.run ~rounds:200 ~task_set:ts ~power ~seed:3 () with
  | Error e -> Format.printf "error: %a@." Solver.pp_error e
  | Ok points -> Lepts_util.Table.print (Experiments.Distribution_sweep.to_table points));
  section "Extension: voltage-transition overhead (CNC, ratio 0.1)";
  match Experiments.Transition_sweep.run ~rounds:200 ~task_set:ts ~power ~seed:3 () with
  | Error e -> Format.printf "error: %a@." Solver.pp_error e
  | Ok points -> Lepts_util.Table.print (Experiments.Transition_sweep.to_table points)

let parallel_speedup () =
  section "Parallel campaign engine: fig6a reduced sweep at -j 1 vs -j 4";
  let config =
    { Experiments.Fig6a.paper_config with
      task_counts = [ 4; 6 ]; ratios = [ 0.1 ]; sets_per_point = 4; rounds = 100 }
  in
  let time jobs =
    let t0 = Unix.gettimeofday () in
    let points = Experiments.Fig6a.run ~jobs config ~power in
    (Unix.gettimeofday () -. t0, points)
  in
  let t_seq, seq_points = time 1 in
  let t_par, par_points = time 4 in
  let identical =
    List.for_all2
      (fun (a : Experiments.Fig6a.point) (b : Experiments.Fig6a.point) ->
        a = b)
      seq_points par_points
  in
  Printf.printf
    "  -j 1: %6.2fs   -j 4: %6.2fs   speedup: %.2fx   bit-identical: %b\n"
    t_seq t_par (t_seq /. Float.max t_par 1e-9) identical;
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "  (%d core(s) available; speedup saturates at min(jobs, cores), and with\n\
    \   jobs > cores the domains time-slice one core and every minor-GC\n\
    \   stop-the-world barrier pays a scheduler round-trip, so expect a\n\
    \   slowdown there — the numbers above are only meaningful on >= 4 cores)\n"
    cores

let regenerate_policy_ablation () =
  section "Ablation: offline schedule x online policy (CNC, ratio 0.1)";
  let ts = Lepts_workloads.Cnc.task_set ~power ~ratio:0.1 () in
  match Experiments.Policies.run ~rounds:200 ~task_set:ts ~power ~seed:7 () with
  | Error e -> Format.printf "error: %a@." Solver.pp_error e
  | Ok cells -> Lepts_util.Table.print (Experiments.Policies.to_table cells)

(* ---------------------------------------------------------------------- *)
(* Phase 2: Bechamel micro-benchmarks.                                    *)
(* ---------------------------------------------------------------------- *)

let cnc_plan = lazy (Plan.expand (Lepts_workloads.Cnc.task_set ~power ~ratio:0.1 ()))

let cnc_schedules =
  lazy
    (let plan = Lazy.force cnc_plan in
     let wcs, _ = Result.get_ok (Solver.solve_wcs ~plan ~power ()) in
     let acs, _ =
       Result.get_ok
         (Solver.solve_acs
            ~warm_starts:[ (wcs.Static_schedule.end_times, wcs.Static_schedule.quotas) ]
            ~plan ~power ())
     in
     (wcs, acs))

let random_set n =
  lazy
    (let rng = Lepts_prng.Xoshiro256.create ~seed:(100 + n) in
     Result.get_ok
       (Lepts_workloads.Random_gen.generate
          (Lepts_workloads.Random_gen.default_config ~n_tasks:n ~ratio:0.1)
          ~power ~rng))

let rand5 = random_set 5

let bench_tests () =
  let motivation =
    Test.make ~name:"motivation (Table 1 / Figs 1-2)"
      (Staged.stage (fun () -> Result.get_ok (Experiments.Motivation.run ())))
  in
  let fig6a_point =
    Test.make ~name:"fig6a point (n=4, ratio=0.1, 1 set, 50 rounds)"
      (Staged.stage (fun () ->
           let rng = Lepts_prng.Xoshiro256.create ~seed:17 in
           let ts =
             Result.get_ok
               (Lepts_workloads.Random_gen.generate
                  (Lepts_workloads.Random_gen.default_config ~n_tasks:4 ~ratio:0.1)
                  ~power ~rng)
           in
           Result.get_ok
             (Experiments.Improvement.measure ~rounds:50 ~task_set:ts ~power
                ~sim_seed:3 ())))
  in
  let fig6b_cnc =
    Test.make ~name:"fig6b CNC point (ratio=0.1, 50 rounds)"
      (Staged.stage (fun () ->
           let ts = Lepts_workloads.Cnc.task_set ~power ~ratio:0.1 () in
           Result.get_ok
             (Experiments.Improvement.measure ~rounds:50 ~task_set:ts ~power
                ~sim_seed:5 ())))
  in
  let expand =
    Test.make ~name:"fully preemptive expansion (rand n=5)"
      (Staged.stage (fun () -> Plan.expand (Lazy.force rand5)))
  in
  let solve_wcs =
    Test.make ~name:"WCS solve (CNC, 32 subs)"
      (Staged.stage (fun () ->
           Result.get_ok (Solver.solve_wcs ~plan:(Lazy.force cnc_plan) ~power ())))
  in
  let solve_acs =
    Test.make ~name:"ACS solve (CNC, 32 subs)"
      (Staged.stage (fun () ->
           Result.get_ok (Solver.solve_acs ~plan:(Lazy.force cnc_plan) ~power ())))
  in
  let gradient_adjoint =
    Test.make ~name:"objective adjoint gradient (CNC)"
      (Staged.stage (fun () ->
           let plan = Lazy.force cnc_plan in
           let _, acs = Lazy.force cnc_schedules in
           let totals = Objective.instance_totals Objective.Average plan in
           Objective.eval_with_gradient ~plan ~power ~totals
             ~e:acs.Static_schedule.end_times ~w_hat:acs.Static_schedule.quotas))
  in
  let gradient_numdiff =
    Test.make ~name:"objective numerical gradient (CNC)"
      (Staged.stage (fun () ->
           let plan = Lazy.force cnc_plan in
           let _, acs = Lazy.force cnc_schedules in
           let totals = Objective.instance_totals Objective.Average plan in
           let m = Plan.size plan in
           let f x =
             Objective.eval ~plan ~power ~totals ~e:(Array.sub x 0 m)
               ~w_hat:(Array.sub x m m)
           in
           Lepts_optim.Numdiff.gradient ~f
             (Array.append acs.Static_schedule.end_times acs.Static_schedule.quotas)))
  in
  let event_sim =
    Test.make ~name:"event-driven simulation (CNC, 1 hyper-period)"
      (Staged.stage (fun () ->
           let _, acs = Lazy.force cnc_schedules in
           let rng = Lepts_prng.Xoshiro256.create ~seed:23 in
           let totals = Lepts_sim.Sampler.instance_totals (Lazy.force cnc_plan) ~rng in
           Lepts_sim.Event_sim.run ~schedule:acs ~policy:Lepts_dvs.Policy.Greedy ~totals ()))
  in
  let sequence_sim =
    Test.make ~name:"closed-form executor (CNC, 1 hyper-period)"
      (Staged.stage (fun () ->
           let _, acs = Lazy.force cnc_schedules in
           let totals = Lepts_sim.Sampler.fixed (Lazy.force cnc_plan) ~value:`Acec in
           Lepts_sim.Sequence.run ~schedule:acs ~totals))
  in
  [ motivation; fig6a_point; fig6b_cnc; expand; solve_wcs; solve_acs;
    gradient_adjoint; gradient_numdiff; event_sim; sequence_sim ]

let run_benchmarks () =
  section "Bechamel micro-benchmarks (time per run)";
  (* Force shared fixtures so setup cost cannot contaminate the runs. *)
  ignore (Lazy.force cnc_plan);
  ignore (Lazy.force cnc_schedules);
  ignore (Lazy.force rand5);
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 2.) ~kde:None () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyses = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let time_ns =
            match Analyze.OLS.estimates ols_result with
            | Some (t :: _) -> t
            | Some [] | None -> Float.nan
          in
          Printf.printf "  %-48s %12.3f ms/run\n%!" name (time_ns /. 1e6))
        analyses)
    (bench_tests ())

(* ---------------------------------------------------------------------- *)
(* Phase 3: solver-kernel benchmarks (time + allocation), --json mode.    *)
(* ---------------------------------------------------------------------- *)

(* The allocating reference paths are kept in {!Lepts_core.Objective}
   precisely so this group can put a number on the workspace kernels:
   same inputs, alloc vs workspace, ns/op and minor-words/op side by
   side — plus full multi-start solves at three plan sizes and the
   sequential-vs-parallel multi-start wall clock. *)

module Workspace = Lepts_core.Workspace

let motivation_plan = lazy (Plan.expand (Experiments.Motivation.task_set ()))
let rand8 = random_set 8
let rand8_plan = lazy (Plan.expand (Lazy.force rand8))

type kernel_row = { row_name : string; ns_per_op : float; minor_words_per_op : float }

(* (name, thunk, allocation repetitions): time comes from a Bechamel
   OLS fit; allocation per op is measured directly as the
   [Gc.minor_words] delta over [reps] calls, which is exact even for
   the sub-microsecond kernels where the OLS allocation estimate is
   too noisy to resolve zero. *)
let solver_kernel_cases () =
  let plan = Lazy.force cnc_plan in
  let _, acs = Lazy.force cnc_schedules in
  let totals = Objective.instance_totals Objective.Average plan in
  let e = acs.Static_schedule.end_times and w_hat = acs.Static_schedule.quotas in
  let ws = Workspace.create plan in
  let m = Plan.size plan in
  let de = Array.make m 0. and dwq = Array.make m 0. in
  let solve_of plan_lazy () =
    ignore (Result.get_ok (Solver.solve_acs ~plan:(Lazy.force plan_lazy) ~power ()))
  in
  [ ( "objective eval, alloc (CNC, 32 subs)",
      (fun () -> ignore (Objective.eval ~plan ~power ~totals ~e ~w_hat)),
      10_000 );
    ( "objective eval, workspace (CNC, 32 subs)",
      (fun () -> ignore (Objective.eval_ws ws ~power ~totals ~e ~w_hat)),
      10_000 );
    ( "adjoint gradient, alloc (CNC, 32 subs)",
      (fun () -> ignore (Objective.eval_with_gradient ~plan ~power ~totals ~e ~w_hat)),
      10_000 );
    ( "adjoint gradient, workspace (CNC, 32 subs)",
      (fun () ->
        ignore (Objective.eval_with_gradient_ws ws ~power ~totals ~e ~w_hat ~de ~dwq)),
      10_000 );
    ( Printf.sprintf "ACS solve (motivation, %d subs)"
        (Plan.size (Lazy.force motivation_plan)),
      solve_of motivation_plan, 20 );
    ("ACS solve (CNC, 32 subs)", solve_of cnc_plan, 2);
    ( Printf.sprintf "ACS solve (random n=8, %d subs)"
        (Plan.size (Lazy.force rand8_plan)),
      solve_of rand8_plan, 1 ) ]

let minor_words_per_op ~reps f =
  f ();
  (* warm-up: fixture laziness, first-call effects *)
  let before = Gc.minor_words () in
  for _ = 1 to reps do
    f ()
  done;
  (Gc.minor_words () -. before) /. float_of_int reps

let run_solver_kernel_benchmarks ~quick () =
  ignore (Lazy.force cnc_plan);
  ignore (Lazy.force cnc_schedules);
  ignore (Lazy.force motivation_plan);
  ignore (Lazy.force rand8_plan);
  let cfg =
    if quick then Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:None ()
    else Benchmark.cfg ~limit:300 ~quota:(Time.second 2.) ~kde:None ()
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.map
    (fun (name, thunk, reps) ->
      let reps = if quick then max 1 (reps / 10) else reps in
      let test = Test.make ~name (Staged.stage thunk) in
      let results = Benchmark.all cfg instances test in
      let times = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      let ns =
        match Hashtbl.find_opt times name with
        | None -> Float.nan
        | Some ols_result -> (
          match Analyze.OLS.estimates ols_result with
          | Some (v :: _) -> v
          | Some [] | None -> Float.nan)
      in
      { row_name = name; ns_per_op = ns;
        minor_words_per_op = minor_words_per_op ~reps thunk })
    (solver_kernel_cases ())

(* Wall clock of the same deterministic multi-start solve at -j 1 vs
   -j 4 (three independent starts: greedy, ALAP, plus the WCS warm
   start). Timing goes to the JSON / stderr only; the schedules are
   asserted equal, which is the cheap end of the bit-identity tests. *)
let parallel_solve_measurement () =
  let plan = Lazy.force cnc_plan in
  let wcs, _ = Lazy.force cnc_schedules in
  let warm = [ (wcs.Static_schedule.end_times, wcs.Static_schedule.quotas) ] in
  let solve jobs =
    let t0 = Unix.gettimeofday () in
    let schedule, stats =
      Result.get_ok (Solver.solve_acs ~jobs ~warm_starts:warm ~plan ~power ())
    in
    (Unix.gettimeofday () -. t0, schedule, stats)
  in
  let t_seq, seq_schedule, seq_stats = solve 1 in
  let t_par, par_schedule, _ = solve 4 in
  let identical =
    seq_schedule.Static_schedule.end_times = par_schedule.Static_schedule.end_times
    && seq_schedule.Static_schedule.quotas = par_schedule.Static_schedule.quotas
  in
  (t_seq, t_par, seq_stats.Solver.objective, identical)

(* Telemetry overhead: the same deterministic ACS solve with and
   without a convergence sink, best-of-[reps] wall clock each way. The
   per-iteration cost is the wall-clock delta divided by the number of
   records actually pushed (every inner iteration of every start), and
   the two solves are compared bit-for-bit — the capture must be free
   of observable effect, and CI additionally bounds its cost via
   [--max-telemetry-overhead-ns]. *)
let telemetry_overhead_measurement ~quick () =
  let plan = Lazy.force cnc_plan in
  let reps = if quick then 3 else 8 in
  let time ~mk =
    let best = ref infinity in
    let result = ref None in
    for _ = 1 to reps do
      let telemetry = mk () in
      let t0 = Unix.gettimeofday () in
      let r = Result.get_ok (Solver.solve_acs ?telemetry ~plan ~power ()) in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      result := Some (r, telemetry)
    done;
    (!best, Option.get !result)
  in
  let off_s, ((off_sched, off_stats), _) = time ~mk:(fun () -> None) in
  let on_s, ((on_sched, on_stats), sink) =
    time ~mk:(fun () ->
        (* Default ring capacity: [pushed] counts every record whether
           or not the ring wrapped, so the denominator stays exact. *)
        Some (Lepts_obs.Telemetry.solve_sink ~label:"bench" ()))
  in
  let bits = Array.map Int64.bits_of_float in
  let bit_identical =
    Int64.bits_of_float off_stats.Solver.objective
    = Int64.bits_of_float on_stats.Solver.objective
    && bits off_sched.Static_schedule.end_times
       = bits on_sched.Static_schedule.end_times
    && bits off_sched.Static_schedule.quotas = bits on_sched.Static_schedule.quotas
  in
  let records =
    match sink with
    | None -> 0
    | Some s ->
      Array.fold_left
        (fun acc (st : Lepts_obs.Telemetry.start) ->
          acc + Lepts_obs.Telemetry.pushed st.Lepts_obs.Telemetry.s_ring)
        0 s.Lepts_obs.Telemetry.starts
  in
  let overhead_ns =
    (on_s -. off_s) *. 1e9 /. float_of_int (max 1 records)
  in
  (off_s, on_s, records, overhead_ns, bit_identical)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float x = if Float.is_finite x then Printf.sprintf "%.3f" x else "null"

let emit_solver_json ~path ~quick rows (t_seq, t_par, objective, identical)
    (tel_off_s, tel_on_s, tel_records, tel_overhead_ns, tel_identical) =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"schema\": \"lepts-bench-solver/1\",\n";
  out "  \"quick\": %b,\n" quick;
  out "  \"benchmarks\": [\n";
  List.iteri
    (fun i r ->
      out "    {\"name\": \"%s\", \"ns_per_op\": %s, \"minor_words_per_op\": %s}%s\n"
        (json_escape r.row_name) (json_float r.ns_per_op)
        (json_float r.minor_words_per_op)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ],\n";
  out "  \"parallel_solve\": {\n";
  out "    \"plan\": \"CNC (32 subs), 3 starts\",\n";
  out "    \"jobs\": 4,\n";
  out "    \"seq_s\": %s,\n" (json_float t_seq);
  out "    \"par_s\": %s,\n" (json_float t_par);
  out "    \"speedup\": %s,\n" (json_float (t_seq /. Float.max t_par 1e-9));
  out "    \"objective\": %s,\n" (json_float objective);
  out "    \"bit_identical\": %b\n" identical;
  out "  },\n";
  out "  \"telemetry\": {\n";
  out "    \"plan\": \"CNC (32 subs), ACS solve\",\n";
  out "    \"off_s\": %s,\n" (json_float tel_off_s);
  out "    \"on_s\": %s,\n" (json_float tel_on_s);
  out "    \"records\": %d,\n" tel_records;
  out "    \"overhead_ns_per_inner_iteration\": %s,\n" (json_float tel_overhead_ns);
  out "    \"bit_identical\": %b\n" tel_identical;
  out "  }\n";
  out "}\n";
  close_out oc

let print_solver_kernel_rows rows =
  section "Solver kernels (time and minor allocation per run)";
  List.iter
    (fun r ->
      Printf.printf "  %-44s %12.1f ns/run %12.1f minor words/run\n%!" r.row_name
        r.ns_per_op r.minor_words_per_op)
    rows

let run_solver_json ~path ~quick ~max_telemetry_overhead_ns () =
  let rows = run_solver_kernel_benchmarks ~quick () in
  print_solver_kernel_rows rows;
  let par = parallel_solve_measurement () in
  let t_seq, t_par, _, identical = par in
  Printf.printf
    "  parallel multi-start: -j 1 %.2fs, -j 4 %.2fs (%.2fx), identical: %b\n%!"
    t_seq t_par (t_seq /. Float.max t_par 1e-9) identical;
  let tel = telemetry_overhead_measurement ~quick () in
  let tel_off, tel_on, tel_records, tel_overhead, tel_identical = tel in
  Printf.printf
    "  telemetry: off %.3fs, on %.3fs — %.1f ns per inner iteration (%d records), \
     identical: %b\n%!"
    tel_off tel_on tel_overhead tel_records tel_identical;
  emit_solver_json ~path ~quick rows par tel;
  Printf.printf "wrote %s\n%!" path;
  if not tel_identical then begin
    prerr_endline "FAIL: solver results differ with telemetry enabled";
    exit 1
  end;
  match max_telemetry_overhead_ns with
  | Some budget when tel_overhead > budget ->
    Printf.eprintf
      "FAIL: telemetry overhead %.1f ns/inner-iteration exceeds the %.1f ns budget\n%!"
      tel_overhead budget;
    exit 1
  | _ -> ()

let () =
  (* `--json PATH [--quick] [--max-telemetry-overhead-ns N]` runs only
     the solver-kernel group and writes the machine-readable summary
     (the CI smoke step); no arguments runs the full reproduction +
     benchmark pipeline. *)
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let rec find_opt_value flag = function
    | f :: v :: _ when f = flag -> Some v
    | _ :: rest -> find_opt_value flag rest
    | [] -> None
  in
  let json_path args = find_opt_value "--json" args in
  let max_telemetry_overhead_ns =
    Option.map float_of_string (find_opt_value "--max-telemetry-overhead-ns" args)
  in
  match json_path args with
  | Some path -> run_solver_json ~path ~quick ~max_telemetry_overhead_ns ()
  | None ->
    regenerate_motivation ();
    regenerate_fig6a ();
    regenerate_fig6b ();
    regenerate_policy_ablation ();
    regenerate_design_ablations ();
    parallel_speedup ();
    run_benchmarks ();
    print_solver_kernel_rows (run_solver_kernel_benchmarks ~quick:false ());
    print_endline "\nbench: done"
