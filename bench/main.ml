(* Benchmark & reproduction harness.

   Phase 1 regenerates every table and figure of the paper's evaluation
   (at a reduced-but-same-shape scale; the `lepts` CLI runs the full
   protocol) and prints the rows the paper reports.

   Phase 2 runs Bechamel micro-benchmarks, one per experiment
   (plus ablations of the design choices called out in DESIGN.md), and
   prints estimated wall-clock time per run. *)

open Bechamel
module Model = Lepts_power.Model
module Plan = Lepts_preempt.Plan
module Solver = Lepts_core.Solver
module Static_schedule = Lepts_core.Static_schedule
module Objective = Lepts_core.Objective
module Experiments = Lepts_experiments
module Pool = Lepts_par.Pool

let power = Model.ideal ~v_min:0.5 ~v_max:4. ()

let section title =
  Printf.printf "\n=== %s ===\n%!" title

(* ---------------------------------------------------------------------- *)
(* Phase 1: regenerate every table / figure.                              *)
(* ---------------------------------------------------------------------- *)

let regenerate_motivation () =
  section "Table 1 / Figs 1-2: motivational example (paper vs measured)";
  match Experiments.Motivation.run () with
  | Error e -> Format.printf "error: %a@." Solver.pp_error e
  | Ok report -> Lepts_util.Table.print (Experiments.Motivation.to_table report)

let regenerate_fig6a () =
  section "Fig 6(a): random task sets (reduced scale; paper: 100 sets, 1000 rounds)";
  let config =
    { Experiments.Fig6a.paper_config with sets_per_point = 3; rounds = 100 }
  in
  let points =
    Experiments.Fig6a.run ~progress:(fun s -> Printf.printf "  %s\n%!" s) config ~power
  in
  Lepts_util.Table.print (Experiments.Fig6a.to_table points);
  print_endline
    "paper shape: improvement grows with workload variation (ratio 0.1 >> 0.9),\n\
     peaking around 60% (10 tasks, ratio 0.1); near zero at ratio 0.9."

let regenerate_fig6b () =
  section "Fig 6(b): CNC and GAP applications (reduced rounds)";
  let config = { Experiments.Fig6b.paper_config with rounds = 100 } in
  let points =
    Experiments.Fig6b.run ~progress:(fun s -> Printf.printf "  %s\n%!" s) config ~power
  in
  Lepts_util.Table.print (Experiments.Fig6b.to_table points);
  print_endline
    "paper shape: CNC up to ~41% and GAP up to ~30% at ratio 0.1, decaying as\n\
     the ratio approaches 1."

let regenerate_design_ablations () =
  section "Ablations: DESIGN.md design choices (CNC, ratio 0.1)";
  let ts = Lepts_workloads.Cnc.task_set ~power ~ratio:0.1 () in
  let show title = function
    | Error e -> Format.printf "%s: error: %a@." title Solver.pp_error e
    | Ok table ->
      Printf.printf "%s:\n" title;
      Lepts_util.Table.print table
  in
  show "NLP formulations" (Experiments.Ablations.formulations ~task_set:ts ~power ());
  show "Objectives"
    (Experiments.Ablations.objectives ~rounds:200 ~task_set:ts ~power ~seed:3 ());
  show "Voltage quantization"
    (Experiments.Ablations.quantization ~rounds:200 ~task_set:ts ~power ~seed:3 ());
  show "Structures"
    (Experiments.Ablations.structures ~task_set:ts ~power ());
  section "Extension: utilization sweep (CNC, ratio 0.1)";
  Lepts_util.Table.print
    (Experiments.Utilization_sweep.to_table
       (Experiments.Utilization_sweep.run ~rounds:200 ~task_set:ts ~power ~seed:3 ()));
  section "Extension: workload distribution shapes (CNC, ratio 0.1)";
  (match Experiments.Distribution_sweep.run ~rounds:200 ~task_set:ts ~power ~seed:3 () with
  | Error e -> Format.printf "error: %a@." Solver.pp_error e
  | Ok points -> Lepts_util.Table.print (Experiments.Distribution_sweep.to_table points));
  section "Extension: voltage-transition overhead (CNC, ratio 0.1)";
  match Experiments.Transition_sweep.run ~rounds:200 ~task_set:ts ~power ~seed:3 () with
  | Error e -> Format.printf "error: %a@." Solver.pp_error e
  | Ok points -> Lepts_util.Table.print (Experiments.Transition_sweep.to_table points)

let parallel_speedup () =
  section "Parallel campaign engine: fig6a reduced sweep at -j 1 vs -j 4";
  let config =
    { Experiments.Fig6a.paper_config with
      task_counts = [ 4; 6 ]; ratios = [ 0.1 ]; sets_per_point = 4; rounds = 100 }
  in
  let time jobs =
    let t0 = Unix.gettimeofday () in
    let points = Experiments.Fig6a.run ~jobs config ~power in
    (Unix.gettimeofday () -. t0, points)
  in
  let t_seq, seq_points = time 1 in
  let t_par, par_points = time 4 in
  let identical =
    List.for_all2
      (fun (a : Experiments.Fig6a.point) (b : Experiments.Fig6a.point) ->
        a = b)
      seq_points par_points
  in
  Printf.printf
    "  -j 1: %6.2fs   -j 4: %6.2fs   speedup: %.2fx   bit-identical: %b\n"
    t_seq t_par (t_seq /. Float.max t_par 1e-9) identical;
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "  (%d core(s) available; speedup saturates at min(jobs, cores), and with\n\
    \   jobs > cores the domains time-slice one core and every minor-GC\n\
    \   stop-the-world barrier pays a scheduler round-trip, so expect a\n\
    \   slowdown there — the numbers above are only meaningful on >= 4 cores)\n"
    cores

let regenerate_policy_ablation () =
  section "Ablation: offline schedule x online policy (CNC, ratio 0.1)";
  let ts = Lepts_workloads.Cnc.task_set ~power ~ratio:0.1 () in
  match Experiments.Policies.run ~rounds:200 ~task_set:ts ~power ~seed:7 () with
  | Error e -> Format.printf "error: %a@." Solver.pp_error e
  | Ok cells -> Lepts_util.Table.print (Experiments.Policies.to_table cells)

(* ---------------------------------------------------------------------- *)
(* Phase 2: Bechamel micro-benchmarks.                                    *)
(* ---------------------------------------------------------------------- *)

let cnc_plan = lazy (Plan.expand (Lepts_workloads.Cnc.task_set ~power ~ratio:0.1 ()))

let cnc_schedules =
  lazy
    (let plan = Lazy.force cnc_plan in
     let wcs, _ = Result.get_ok (Solver.solve_wcs ~plan ~power ()) in
     let acs, _ =
       Result.get_ok
         (Solver.solve_acs
            ~warm_starts:[ (wcs.Static_schedule.end_times, wcs.Static_schedule.quotas) ]
            ~plan ~power ())
     in
     (wcs, acs))

let random_set n =
  lazy
    (let rng = Lepts_prng.Xoshiro256.create ~seed:(100 + n) in
     Result.get_ok
       (Lepts_workloads.Random_gen.generate
          (Lepts_workloads.Random_gen.default_config ~n_tasks:n ~ratio:0.1)
          ~power ~rng))

let rand5 = random_set 5

let bench_tests () =
  let motivation =
    Test.make ~name:"motivation (Table 1 / Figs 1-2)"
      (Staged.stage (fun () -> Result.get_ok (Experiments.Motivation.run ())))
  in
  let fig6a_point =
    Test.make ~name:"fig6a point (n=4, ratio=0.1, 1 set, 50 rounds)"
      (Staged.stage (fun () ->
           let rng = Lepts_prng.Xoshiro256.create ~seed:17 in
           let ts =
             Result.get_ok
               (Lepts_workloads.Random_gen.generate
                  (Lepts_workloads.Random_gen.default_config ~n_tasks:4 ~ratio:0.1)
                  ~power ~rng)
           in
           Result.get_ok
             (Experiments.Improvement.measure ~rounds:50 ~task_set:ts ~power
                ~sim_seed:3 ())))
  in
  let fig6b_cnc =
    Test.make ~name:"fig6b CNC point (ratio=0.1, 50 rounds)"
      (Staged.stage (fun () ->
           let ts = Lepts_workloads.Cnc.task_set ~power ~ratio:0.1 () in
           Result.get_ok
             (Experiments.Improvement.measure ~rounds:50 ~task_set:ts ~power
                ~sim_seed:5 ())))
  in
  let expand =
    Test.make ~name:"fully preemptive expansion (rand n=5)"
      (Staged.stage (fun () -> Plan.expand (Lazy.force rand5)))
  in
  let solve_wcs =
    Test.make ~name:"WCS solve (CNC, 32 subs)"
      (Staged.stage (fun () ->
           Result.get_ok (Solver.solve_wcs ~plan:(Lazy.force cnc_plan) ~power ())))
  in
  let solve_acs =
    Test.make ~name:"ACS solve (CNC, 32 subs)"
      (Staged.stage (fun () ->
           Result.get_ok (Solver.solve_acs ~plan:(Lazy.force cnc_plan) ~power ())))
  in
  let gradient_adjoint =
    Test.make ~name:"objective adjoint gradient (CNC)"
      (Staged.stage (fun () ->
           let plan = Lazy.force cnc_plan in
           let _, acs = Lazy.force cnc_schedules in
           let totals = Objective.instance_totals Objective.Average plan in
           Objective.eval_with_gradient ~plan ~power ~totals
             ~e:acs.Static_schedule.end_times ~w_hat:acs.Static_schedule.quotas))
  in
  let gradient_numdiff =
    Test.make ~name:"objective numerical gradient (CNC)"
      (Staged.stage (fun () ->
           let plan = Lazy.force cnc_plan in
           let _, acs = Lazy.force cnc_schedules in
           let totals = Objective.instance_totals Objective.Average plan in
           let m = Plan.size plan in
           let f x =
             Objective.eval ~plan ~power ~totals ~e:(Array.sub x 0 m)
               ~w_hat:(Array.sub x m m)
           in
           Lepts_optim.Numdiff.gradient ~f
             (Array.append acs.Static_schedule.end_times acs.Static_schedule.quotas)))
  in
  let event_sim =
    Test.make ~name:"event-driven simulation (CNC, 1 hyper-period)"
      (Staged.stage (fun () ->
           let _, acs = Lazy.force cnc_schedules in
           let rng = Lepts_prng.Xoshiro256.create ~seed:23 in
           let totals = Lepts_sim.Sampler.instance_totals (Lazy.force cnc_plan) ~rng in
           Lepts_sim.Event_sim.run ~schedule:acs ~policy:Lepts_dvs.Policy.Greedy ~totals ()))
  in
  let sequence_sim =
    Test.make ~name:"closed-form executor (CNC, 1 hyper-period)"
      (Staged.stage (fun () ->
           let _, acs = Lazy.force cnc_schedules in
           let totals = Lepts_sim.Sampler.fixed (Lazy.force cnc_plan) ~value:`Acec in
           Lepts_sim.Sequence.run ~schedule:acs ~totals))
  in
  [ motivation; fig6a_point; fig6b_cnc; expand; solve_wcs; solve_acs;
    gradient_adjoint; gradient_numdiff; event_sim; sequence_sim ]

let run_benchmarks () =
  section "Bechamel micro-benchmarks (time per run)";
  (* Force shared fixtures so setup cost cannot contaminate the runs. *)
  ignore (Lazy.force cnc_plan);
  ignore (Lazy.force cnc_schedules);
  ignore (Lazy.force rand5);
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 2.) ~kde:None () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyses = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let time_ns =
            match Analyze.OLS.estimates ols_result with
            | Some (t :: _) -> t
            | Some [] | None -> Float.nan
          in
          Printf.printf "  %-48s %12.3f ms/run\n%!" name (time_ns /. 1e6))
        analyses)
    (bench_tests ())

(* ---------------------------------------------------------------------- *)
(* Phase 3: solver-kernel benchmarks (time + allocation), --json mode.    *)
(* ---------------------------------------------------------------------- *)

(* The allocating reference paths are kept in {!Lepts_core.Objective}
   precisely so this group can put a number on the workspace kernels:
   same inputs, alloc vs workspace, ns/op and minor-words/op side by
   side — plus full multi-start solves at three plan sizes and the
   sequential-vs-parallel multi-start wall clock. *)

module Workspace = Lepts_core.Workspace

let motivation_plan = lazy (Plan.expand (Experiments.Motivation.task_set ()))
let rand8 = random_set 8
let rand8_plan = lazy (Plan.expand (Lazy.force rand8))

(* The huge case: ~2000 sub-instances, a scale the pre-PR-8 solver
   never touched. [default_config] caps expansion at 1000 sub-instances,
   so the cap is raised explicitly; seed 104 is the first seed whose
   draw is RM-schedulable at this size. *)
let rand16_plan =
  lazy
    (let rng = Lepts_prng.Xoshiro256.create ~seed:104 in
     let config =
       { (Lepts_workloads.Random_gen.default_config ~n_tasks:16 ~ratio:0.1) with
         Lepts_workloads.Random_gen.max_sub_instances = 2600 }
     in
     Plan.expand
       (Result.get_ok (Lepts_workloads.Random_gen.generate config ~power ~rng)))

(* ns/op of the "ACS solve (random n=8, 660 subs)" kernel row as
   recorded in BENCH_solver.json before the structure-exploiting solve
   path landed. [--min-huge-speedup] gates the current fast-path time
   against this constant: CI machines differ from the recording one, so
   the floor is set conservatively below the locally measured ratio. *)
let seed_acs_n8_ns = 3.37e9

type kernel_row = { row_name : string; ns_per_op : float; minor_words_per_op : float }

(* (name, thunk, allocation repetitions): time comes from a Bechamel
   OLS fit; allocation per op is measured directly as the
   [Gc.minor_words] delta over [reps] calls, which is exact even for
   the sub-microsecond kernels where the OLS allocation estimate is
   too noisy to resolve zero. *)
let solver_kernel_cases () =
  let plan = Lazy.force cnc_plan in
  let _, acs = Lazy.force cnc_schedules in
  let totals = Objective.instance_totals Objective.Average plan in
  let e = acs.Static_schedule.end_times and w_hat = acs.Static_schedule.quotas in
  let ws = Workspace.create plan in
  let m = Plan.size plan in
  let de = Array.make m 0. and dwq = Array.make m 0. in
  let solve_of plan_lazy () =
    ignore (Result.get_ok (Solver.solve_acs ~plan:(Lazy.force plan_lazy) ~power ()))
  in
  [ ( "objective eval, alloc (CNC, 32 subs)",
      (fun () -> ignore (Objective.eval ~plan ~power ~totals ~e ~w_hat)),
      10_000 );
    ( "objective eval, workspace (CNC, 32 subs)",
      (fun () -> ignore (Objective.eval_ws ws ~power ~totals ~e ~w_hat)),
      10_000 );
    ( "adjoint gradient, alloc (CNC, 32 subs)",
      (fun () -> ignore (Objective.eval_with_gradient ~plan ~power ~totals ~e ~w_hat)),
      10_000 );
    ( "adjoint gradient, workspace (CNC, 32 subs)",
      (fun () ->
        ignore (Objective.eval_with_gradient_ws ws ~power ~totals ~e ~w_hat ~de ~dwq)),
      10_000 );
    ( Printf.sprintf "ACS solve (motivation, %d subs)"
        (Plan.size (Lazy.force motivation_plan)),
      solve_of motivation_plan, 20 );
    ("ACS solve (CNC, 32 subs)", solve_of cnc_plan, 2);
    ( Printf.sprintf "ACS solve (random n=8, %d subs)"
        (Plan.size (Lazy.force rand8_plan)),
      solve_of rand8_plan, 1 ) ]

let minor_words_per_op ~reps f =
  f ();
  (* warm-up: fixture laziness, first-call effects *)
  let before = Gc.minor_words () in
  for _ = 1 to reps do
    f ()
  done;
  (Gc.minor_words () -. before) /. float_of_int reps

let run_solver_kernel_benchmarks ~quick () =
  ignore (Lazy.force cnc_plan);
  ignore (Lazy.force cnc_schedules);
  ignore (Lazy.force motivation_plan);
  ignore (Lazy.force rand8_plan);
  let cfg =
    if quick then Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:None ()
    else Benchmark.cfg ~limit:300 ~quota:(Time.second 2.) ~kde:None ()
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.map
    (fun (name, thunk, reps) ->
      let reps = if quick then max 1 (reps / 10) else reps in
      let test = Test.make ~name (Staged.stage thunk) in
      let results = Benchmark.all cfg instances test in
      let times = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      let ns =
        match Hashtbl.find_opt times name with
        | None -> Float.nan
        | Some ols_result -> (
          match Analyze.OLS.estimates ols_result with
          | Some (v :: _) -> v
          | Some [] | None -> Float.nan)
      in
      { row_name = name; ns_per_op = ns;
        minor_words_per_op = minor_words_per_op ~reps thunk })
    (solver_kernel_cases ())

(* ----- multi-start parallelism ---------------------------------------- *)

(* Three measurements of the same deterministic multi-start solves, all
   asserted bit-identical across configurations:

   - [stream]: many short pool-saturating solves back-to-back at
     jobs = 4 — the serve-wave / campaign shape where the old per-call
     domain spawn/join dominated. [speedup] compares the spawn-per-call
     path ({!Pool.run_ephemeral}) against the persistent pool at the
     SAME job count, so it isolates the fixed bug and is meaningful on
     any machine; [vs_sequential] additionally needs >= jobs cores to
     exceed 1 and is only asserted in CI (multi-core runners).
   - [saturated]: one large CNC solve with the same 10-candidate start
     list. Solve-dominated, so spawn overhead is invisible here — kept
     to show exactly that.
   - [legacy]: the original 3-start CNC case, for continuity with
     older JSON snapshots. *)

let blend a b alpha =
  Array.mapi (fun i x -> (alpha *. x) +. ((1. -. alpha) *. b.(i))) a

(* Ten start candidates for a jobs = 4 pool: greedy + ALAP (implicit)
   plus the plan's WCS and ACS optima and six convex blends of the two.
   Both endpoints are repaired schedules, so every per-instance quota
   sum sits at its WCEC and each blend is a valid warm start. *)
let saturating_warm_starts plan =
  let wcs, _ = Result.get_ok (Solver.solve_wcs ~plan ~power ()) in
  let acs, _ =
    Result.get_ok
      (Solver.solve_acs
         ~warm_starts:[ (wcs.Static_schedule.end_times, wcs.Static_schedule.quotas) ]
         ~plan ~power ())
  in
  let pair (s : Static_schedule.t) =
    (s.Static_schedule.end_times, s.Static_schedule.quotas)
  in
  pair wcs :: pair acs
  :: List.map
       (fun k ->
         let alpha = float_of_int k /. 7. in
         ( blend wcs.Static_schedule.end_times acs.Static_schedule.end_times alpha,
           blend wcs.Static_schedule.quotas acs.Static_schedule.quotas alpha ))
       [ 1; 2; 3; 4; 5; 6 ]

type par_row = {
  par_plan : string;
  par_jobs : int;
  par_solves : int;
  seq_s : float;
  spawn_s : float;
  pool_s : float;
  par_objective : float;
  par_identical : bool;
}

let par_speedup r = r.spawn_s /. Float.max r.pool_s 1e-9
let par_vs_sequential r = r.seq_s /. Float.max r.pool_s 1e-9

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let best_of reps f =
  let best_t = ref infinity and last = ref None in
  for _ = 1 to reps do
    let t, r = time f in
    if t < !best_t then best_t := t;
    last := Some r
  done;
  (!best_t, Option.get !last)

let schedule_bits (s : Static_schedule.t) =
  ( Array.map Int64.bits_of_float s.Static_schedule.end_times,
    Array.map Int64.bits_of_float s.Static_schedule.quotas )

(* Runs [solves] consecutive multi-start solves in each of three modes —
   sequential, spawn-per-call at [jobs], persistent pool at [jobs] —
   best-of-[reps] each, and checks the final schedules bit-identical. *)
let parallel_measurement ~name ~plan ~solves ~reps () =
  let warm = saturating_warm_starts plan in
  let run jobs =
    let last = ref None in
    for _ = 1 to solves do
      last := Some (Result.get_ok (Solver.solve_acs ~jobs ~warm_starts:warm ~plan ~power ()))
    done;
    Option.get !last
  in
  let seq_s, (seq_schedule, seq_stats) = best_of reps (fun () -> run 1) in
  Pool.set_reuse false;
  let spawn_s, _ =
    Fun.protect ~finally:(fun () -> Pool.set_reuse true)
      (fun () -> best_of reps (fun () -> run 4))
  in
  let pool_s, (pool_schedule, _) = best_of reps (fun () -> run 4) in
  { par_plan = name; par_jobs = 4; par_solves = solves; seq_s; spawn_s; pool_s;
    par_objective = seq_stats.Solver.objective;
    par_identical = schedule_bits seq_schedule = schedule_bits pool_schedule }

let stream_measurement ~quick () =
  let solves = if quick then 30 else 100 in
  let plan = Lazy.force motivation_plan in
  parallel_measurement
    ~name:
      (Printf.sprintf "motivation (%d subs), 10 starts x %d solves"
         (Plan.size plan) solves)
    ~plan ~solves ~reps:(if quick then 2 else 3) ()

let saturated_measurement ~quick () =
  parallel_measurement ~name:"CNC (32 subs), 10 starts"
    ~plan:(Lazy.force cnc_plan) ~solves:1 ~reps:(if quick then 1 else 2) ()

(* The original 3-start measurement (greedy + ALAP + WCS warm start),
   sequential vs persistent pool. *)
let legacy_measurement () =
  let plan = Lazy.force cnc_plan in
  let wcs, _ = Lazy.force cnc_schedules in
  let warm = [ (wcs.Static_schedule.end_times, wcs.Static_schedule.quotas) ] in
  let solve jobs =
    time (fun () ->
        Result.get_ok (Solver.solve_acs ~jobs ~warm_starts:warm ~plan ~power ()))
  in
  let t_seq, (seq_schedule, seq_stats) = solve 1 in
  let t_par, (par_schedule, _) = solve 4 in
  ( t_seq, t_par, seq_stats.Solver.objective,
    schedule_bits seq_schedule = schedule_bits par_schedule )

(* ----- warm-start continuation ---------------------------------------- *)

type warm_row = {
  warm_plan : string;
  cold_s : float;
  warm_s : float;
  close_per_point : bool;
      (** every warm point within 5% of its cold counterpart — the same
          bound the test suite pins. Warm's hard guarantee is
          never-worse than its {e seed} (the previous point's solution),
          not than the cold multi-start of the same point, so a warm
          point can lose a basin race cold wins; 5% bounds the loss. *)
  total_never_worse : bool;  (** summed over the sweep, warm <= cold *)
  first_identical : bool;  (** first point is always cold in both *)
}

let warm_speedup r = r.cold_s /. Float.max r.warm_s 1e-9

(* Cold vs warm CNC ratio sweep: point [i] continued from point [i-1]
   via {!Solver.resolve_incremental}. Per-point warm stays within 5% of
   cold, the sweep total must not regress, and the always-cold first
   point must agree bit for bit. *)
let continuation_measurement ~quick () =
  let ratios =
    if quick then [ 0.1; 0.5; 0.9 ]
    else [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9 ]
  in
  let build ~ratio = Lepts_workloads.Cnc.task_set ~power ~ratio () in
  let cold =
    Result.get_ok (Experiments.Continuation.run ~warm:false ~ratios ~build ~power ())
  in
  let warm =
    Result.get_ok (Experiments.Continuation.run ~warm:true ~ratios ~build ~power ())
  in
  let energy (p : Experiments.Continuation.point) =
    p.Experiments.Continuation.predicted_energy
  in
  let total l =
    List.fold_left (fun acc p -> acc +. energy p) 0.
      l.Experiments.Continuation.points
  in
  let first l = energy (List.hd l.Experiments.Continuation.points) in
  { warm_plan =
      Printf.sprintf "CNC ratio sweep, %d points" (List.length ratios);
    cold_s = cold.Experiments.Continuation.total_s;
    warm_s = warm.Experiments.Continuation.total_s;
    close_per_point =
      List.for_all2
        (fun c w -> energy w <= (energy c *. 1.05) +. 1e-9)
        cold.Experiments.Continuation.points warm.Experiments.Continuation.points;
    total_never_worse = total warm <= total cold +. 1e-9;
    first_identical =
      Int64.bits_of_float (first cold) = Int64.bits_of_float (first warm) }

type fig6a_warm = {
  f6_plan : string;
  f6_cold_s : float;
  f6_warm_s : float;
  f6_cold_misses : int;
  f6_warm_misses : int;  (** both must be 0: warm-started schedules
                             still meet every deadline *)
}

(* Cold vs warm reduced Fig-6a sweep: with [--warm-start] each set's ACS
   solve is one continuation descent from its WCS solution instead of
   the full multi-start. Misses must stay zero either way. *)
let fig6a_warm_measurement ~quick () =
  let config =
    { Experiments.Fig6a.paper_config with
      task_counts = (if quick then [ 4 ] else [ 4; 6 ]);
      ratios = [ 0.1 ];
      sets_per_point = (if quick then 2 else 3);
      rounds = (if quick then 30 else 50) }
  in
  let t_cold, cold = time (fun () -> Experiments.Fig6a.run config ~power) in
  let t_warm, warm =
    time (fun () -> Experiments.Fig6a.run ~warm_start:true config ~power)
  in
  let misses points =
    List.fold_left
      (fun acc (p : Experiments.Fig6a.point) ->
        acc + p.Experiments.Fig6a.total_misses)
      0 points
  in
  { f6_plan =
      Printf.sprintf "fig6a reduced sweep (%d points)" (List.length cold);
    f6_cold_s = t_cold; f6_warm_s = t_warm;
    f6_cold_misses = misses cold; f6_warm_misses = misses warm }

(* ----- structure-exploiting huge solves -------------------------------- *)

type huge_row = {
  huge_name : string;
  huge_subs : int;
  huge_fast_s : float;
  huge_exact_s : float option;
      (** dense reference kernels; skipped on the largest case, where
          only the fast path is meant to run *)
  huge_objective : float;
  huge_identical : bool;  (** fast vs exact schedules, bit for bit;
                              vacuously true when exact is skipped *)
}

let huge_speedup_vs_seed r = seed_acs_n8_ns /. Float.max (r.huge_fast_s *. 1e9) 1e-9

(* Full ACS multi-start solves at the two largest plan sizes, fast path
   vs the dense reference kernels. The two paths must agree bit for bit
   (the whole point of keeping threshold-by-sort in the fast projection
   — see DESIGN.md §12), so correctness is asserted here as well as in
   the test suite; the n=8 fast time also feeds [--min-huge-speedup]. *)
let huge_measurement ~quick () =
  let reps = if quick then 1 else 2 in
  let solve structure plan () =
    Result.get_ok (Solver.solve_acs ~structure ~plan ~power ())
  in
  let measure ?(exact = true) plan_lazy =
    let plan = Lazy.force plan_lazy in
    let fast_s, (fast_sched, fast_stats) =
      best_of reps (solve Solver.Fast plan)
    in
    let huge_exact_s, huge_identical =
      if exact then
        let exact_s, (exact_sched, _) = best_of reps (solve Solver.Exact plan) in
        (Some exact_s, schedule_bits fast_sched = schedule_bits exact_sched)
      else (None, true)
    in
    { huge_name = Printf.sprintf "ACS solve (%d subs)" (Plan.size plan);
      huge_subs = Plan.size plan; huge_fast_s = fast_s; huge_exact_s;
      huge_objective = fast_stats.Solver.objective; huge_identical }
  in
  (measure rand8_plan, measure ~exact:false rand16_plan)

(* ----- adaptive estimator smoke sweep ---------------------------------- *)

type adaptive_row = {
  ad_label : string;
  ad_static_mean : float;
  ad_adaptive_mean : float;
  ad_improvement_pct : float;
  ad_resolves : int;
  ad_drift_events : int;
  ad_identical : bool;  (** -j 1 vs -j 4, summaries and estimates bit for bit *)
}

(* Static-ACS vs adaptive-ACS under a drifting workload (overruns push
   the observed mean above the offline ACEC; the bimodal arm sits far
   below it) — the smoke version of `lepts faults --adaptive`. The
   energy delta is recorded in BENCH_solver.json without a gating floor
   yet; the -j bit-identity, like every other parallel path's, is
   asserted. *)
let adaptive_measurement ~quick () =
  let plan = Lazy.force cnc_plan in
  let schedule, _ = Result.get_ok (Solver.solve_acs ~plan ~power ()) in
  let spec =
    { Lepts_robust.Fault_injector.seed = 2005; overrun_prob = 0.1;
      overrun_factor = 1.5; jitter_prob = 0.05; jitter_frac = 0.1;
      denial_prob = 0.05 }
  in
  let rounds = if quick then 120 else 300 in
  let config =
    { Lepts_robust.Adaptive.estimator = Lepts_sim.Estimator.default_config;
      resolve_every = 10; structure = Solver.Fast }
  in
  let sweep jobs =
    Lepts_robust.Adaptive.sweep ~rounds ~jobs ~config ~spec ~schedule
      ~policy:Lepts_dvs.Policy.Greedy ~seed:2007 ()
  in
  let summary_bits (s : Lepts_sim.Runner.summary) =
    List.map Int64.bits_of_float
      [ s.Lepts_sim.Runner.mean_energy; s.Lepts_sim.Runner.p95_energy;
        s.Lepts_sim.Runner.p99_energy; s.Lepts_sim.Runner.max_energy ]
  in
  List.map2
    (fun (p : Lepts_robust.Adaptive.point) (q : Lepts_robust.Adaptive.point) ->
      { ad_label = p.Lepts_robust.Adaptive.label;
        ad_static_mean =
          p.Lepts_robust.Adaptive.static_summary.Lepts_sim.Runner.mean_energy;
        ad_adaptive_mean =
          p.Lepts_robust.Adaptive.adaptive_summary.Lepts_sim.Runner.mean_energy;
        ad_improvement_pct = p.Lepts_robust.Adaptive.improvement_pct;
        ad_resolves =
          p.Lepts_robust.Adaptive.counters.Lepts_robust.Adaptive.resolves;
        ad_drift_events =
          p.Lepts_robust.Adaptive.counters.Lepts_robust.Adaptive.drift_events;
        ad_identical =
          summary_bits p.Lepts_robust.Adaptive.static_summary
            = summary_bits q.Lepts_robust.Adaptive.static_summary
          && summary_bits p.Lepts_robust.Adaptive.adaptive_summary
             = summary_bits q.Lepts_robust.Adaptive.adaptive_summary
          && Array.map Int64.bits_of_float p.Lepts_robust.Adaptive.estimates
             = Array.map Int64.bits_of_float q.Lepts_robust.Adaptive.estimates
          && p.Lepts_robust.Adaptive.counters = q.Lepts_robust.Adaptive.counters })
    (sweep 1) (sweep 4)

type serve_row = {
  sv_requests : int;  (** NDJSON lines per run *)
  sv_cold_s : float;  (** best-of wall clock, fresh cache *)
  sv_warm_s : float;  (** best-of wall clock, cache warmed by one run *)
  sv_coalesced : int;  (** duplicates served by an in-flight solve (cold) *)
  sv_identical : bool;  (** -j 1 vs -j 4 cold reports, byte for byte *)
}

let serve_cold_rps r = float_of_int r.sv_requests /. Float.max r.sv_cold_s 1e-9
let serve_warm_rps r = float_of_int r.sv_requests /. Float.max r.sv_warm_s 1e-9

(* Serve-engine throughput: one fixed NDJSON batch through the full
   admission → route → coalesce → solve → fold pipeline, cold
   (fresh cache each rep) and warm (cache populated by one priming
   run, so every request replays a stored schedule). The batch mixes
   duplicate content (coalescing), a ratio ladder on a shared family
   (warm chaining) and distinct seeds (real solves). [warm_rps] is the
   daemon's steady-state ceiling and carries the CI floor; the cold
   -j 1 and -j 4 reports are byte-diffed — the determinism contract
   the socket-soak job relies on. *)
let serve_measurement ~quick () =
  let module Service = Lepts_serve.Service in
  let module Cache = Lepts_serve.Cache in
  let n = if quick then 24 else 96 in
  (* Each wave of 8 carries one 3-request ratio ladder on a shared
     family (chained, each solve warm-starting the next), one
     content-identical pair (coalesced onto a single solve) and three
     solo solves; seeds shift per wave so the cold run keeps solving
     past the first wave. *)
  let lines =
    List.init n (fun i ->
        let wave_i = i / 8 and k = i mod 8 in
        let tasks, seed, ratio =
          if k < 3 then (3, 11 + wave_i, [| 0.1; 0.3; 0.5 |].(k))
          else if k < 5 then (2, 41 + wave_i, 0.2)
          else (2, (100 * (k - 4)) + wave_i, 0.4)
        in
        Printf.sprintf
          {|{"id":"bench-%d","tasks":%d,"ratio":%g,"seed":%d,"rounds":0}|}
          i tasks ratio seed)
  in
  let fresh () = Cache.create ~fingerprint:"bench" () in
  let run ~jobs ~cache () =
    let config =
      { Service.default_config with Service.jobs; wave = 8; high_water = n }
    in
    Service.run ~config ~power ~cache ~lines ()
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let reps = if quick then 2 else 4 in
  let cold_s = ref infinity in
  let cold_report = ref None in
  for _ = 1 to reps do
    let dt, r = time (fun () -> run ~jobs:4 ~cache:(fresh ()) ()) in
    if dt < !cold_s then cold_s := dt;
    cold_report := Some r
  done;
  let warm_cache = fresh () in
  ignore (run ~jobs:4 ~cache:warm_cache ());
  let warm_s = ref infinity in
  for _ = 1 to reps do
    let dt, _ = time (fun () -> run ~jobs:4 ~cache:warm_cache ()) in
    if dt < !warm_s then warm_s := dt
  done;
  let render report =
    let path = Filename.temp_file "lepts-bench-serve" ".ndjson" in
    let oc = open_out path in
    Service.print_report ~oc report;
    close_out oc;
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove path;
    s
  in
  let r1 = run ~jobs:1 ~cache:(fresh ()) () in
  let r4 = run ~jobs:4 ~cache:(fresh ()) () in
  { sv_requests = n; sv_cold_s = !cold_s; sv_warm_s = !warm_s;
    sv_coalesced =
      (match !cold_report with
      | Some r -> r.Service.coalesced
      | None -> 0);
    sv_identical = render r1 = render r4 }

(* Telemetry overhead: the same deterministic ACS solve with and
   without a convergence sink, best-of-[reps] wall clock each way. The
   per-iteration cost is the wall-clock delta divided by the number of
   records actually pushed (every inner iteration of every start), and
   the two solves are compared bit-for-bit — the capture must be free
   of observable effect, and CI additionally bounds its cost via
   [--max-telemetry-overhead-ns]. *)
let telemetry_overhead_measurement ~quick () =
  let plan = Lazy.force cnc_plan in
  let reps = if quick then 3 else 8 in
  let time ~mk =
    let best = ref infinity in
    let result = ref None in
    for _ = 1 to reps do
      let telemetry = mk () in
      let t0 = Unix.gettimeofday () in
      let r = Result.get_ok (Solver.solve_acs ?telemetry ~plan ~power ()) in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      result := Some (r, telemetry)
    done;
    (!best, Option.get !result)
  in
  let off_s, ((off_sched, off_stats), _) = time ~mk:(fun () -> None) in
  let on_s, ((on_sched, on_stats), sink) =
    time ~mk:(fun () ->
        (* Default ring capacity: [pushed] counts every record whether
           or not the ring wrapped, so the denominator stays exact. *)
        Some (Lepts_obs.Telemetry.solve_sink ~label:"bench" ()))
  in
  let bits = Array.map Int64.bits_of_float in
  let bit_identical =
    Int64.bits_of_float off_stats.Solver.objective
    = Int64.bits_of_float on_stats.Solver.objective
    && bits off_sched.Static_schedule.end_times
       = bits on_sched.Static_schedule.end_times
    && bits off_sched.Static_schedule.quotas = bits on_sched.Static_schedule.quotas
  in
  let records =
    match sink with
    | None -> 0
    | Some s ->
      Array.fold_left
        (fun acc (st : Lepts_obs.Telemetry.start) ->
          acc + Lepts_obs.Telemetry.pushed st.Lepts_obs.Telemetry.s_ring)
        0 s.Lepts_obs.Telemetry.starts
  in
  let overhead_ns =
    (on_s -. off_s) *. 1e9 /. float_of_int (max 1 records)
  in
  (off_s, on_s, records, overhead_ns, bit_identical)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float x = if Float.is_finite x then Printf.sprintf "%.3f" x else "null"

let emit_par_row oc key r =
  let out fmt = Printf.fprintf oc fmt in
  out "  \"%s\": {\n" key;
  out "    \"plan\": \"%s\",\n" (json_escape r.par_plan);
  out "    \"jobs\": %d,\n" r.par_jobs;
  out "    \"solves\": %d,\n" r.par_solves;
  out "    \"seq_s\": %s,\n" (json_float r.seq_s);
  out "    \"spawn_s\": %s,\n" (json_float r.spawn_s);
  out "    \"pool_s\": %s,\n" (json_float r.pool_s);
  out "    \"speedup\": %s,\n" (json_float (par_speedup r));
  out "    \"vs_sequential\": %s,\n" (json_float (par_vs_sequential r));
  out "    \"objective\": %s,\n" (json_float r.par_objective);
  out "    \"bit_identical\": %b\n" r.par_identical;
  out "  },\n"

let emit_huge_row oc ~last r =
  let out fmt = Printf.fprintf oc fmt in
  out "    {\"plan\": \"%s\", \"subs\": %d, \"fast_s\": %s, \"exact_s\": %s, "
    (json_escape r.huge_name) r.huge_subs (json_float r.huge_fast_s)
    (match r.huge_exact_s with Some s -> json_float s | None -> "null");
  out "\"speedup_vs_seed\": %s, \"objective\": %s, \"bit_identical\": %b}%s\n"
    (json_float (huge_speedup_vs_seed r)) (json_float r.huge_objective)
    r.huge_identical
    (if last then "" else ",")

let emit_solver_json ~path ~quick rows ~stream ~saturated
    ~legacy:(t_seq, t_par, objective, identical) ~continuation ~fig6a
    ~huge:(huge_n8, huge_n16) ~adaptive ~serve
    (tel_off_s, tel_on_s, tel_records, tel_overhead_ns, tel_identical) =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"schema\": \"lepts-bench-solver/5\",\n";
  out "  \"quick\": %b,\n" quick;
  out "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
  out "  \"benchmarks\": [\n";
  List.iteri
    (fun i r ->
      out "    {\"name\": \"%s\", \"ns_per_op\": %s, \"minor_words_per_op\": %s}%s\n"
        (json_escape r.row_name) (json_float r.ns_per_op)
        (json_float r.minor_words_per_op)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ],\n";
  (* [speedup] is spawn-per-call vs persistent pool at the same job
     count (the bug this JSON tracks — machine-independent);
     [vs_sequential] needs >= jobs cores to exceed 1. *)
  emit_par_row oc "parallel_solve" stream;
  emit_par_row oc "parallel_solve_saturated" saturated;
  out "  \"parallel_solve_legacy\": {\n";
  out "    \"plan\": \"CNC (32 subs), 3 starts\",\n";
  out "    \"jobs\": 4,\n";
  out "    \"seq_s\": %s,\n" (json_float t_seq);
  out "    \"par_s\": %s,\n" (json_float t_par);
  out "    \"speedup\": %s,\n" (json_float (t_seq /. Float.max t_par 1e-9));
  out "    \"objective\": %s,\n" (json_float objective);
  out "    \"bit_identical\": %b\n" identical;
  out "  },\n";
  out "  \"warm_start\": {\n";
  out "    \"continuation\": {\n";
  out "      \"plan\": \"%s\",\n" (json_escape continuation.warm_plan);
  out "      \"cold_s\": %s,\n" (json_float continuation.cold_s);
  out "      \"warm_s\": %s,\n" (json_float continuation.warm_s);
  out "      \"speedup\": %s,\n" (json_float (warm_speedup continuation));
  out "      \"close_per_point\": %b,\n" continuation.close_per_point;
  out "      \"total_never_worse\": %b,\n" continuation.total_never_worse;
  out "      \"first_point_bit_identical\": %b\n" continuation.first_identical;
  out "    },\n";
  out "    \"fig6a\": {\n";
  out "      \"plan\": \"%s\",\n" (json_escape fig6a.f6_plan);
  out "      \"cold_s\": %s,\n" (json_float fig6a.f6_cold_s);
  out "      \"warm_s\": %s,\n" (json_float fig6a.f6_warm_s);
  out "      \"speedup\": %s,\n"
    (json_float (fig6a.f6_cold_s /. Float.max fig6a.f6_warm_s 1e-9));
  out "      \"cold_misses\": %d,\n" fig6a.f6_cold_misses;
  out "      \"warm_misses\": %d\n" fig6a.f6_warm_misses;
  out "    }\n";
  out "  },\n";
  (* [speedup_vs_seed] divides the recorded pre-PR-8 n=8 solve time by
     the measured fast-path wall clock, so it understates the true gain
     on machines slower than the recording one. *)
  out "  \"huge_solve\": {\n";
  out "    \"seed_acs_n8_ns\": %s,\n" (json_float seed_acs_n8_ns);
  out "    \"cases\": [\n";
  emit_huge_row oc ~last:false huge_n8;
  emit_huge_row oc ~last:true huge_n16;
  out "    ]\n";
  out "  },\n";
  (* Energy delta recorded, not gated: improvement depends on how far
     the drifting workload sits from the offline ACEC, so no floor yet.
     [bit_identical] compares the -j 1 and -j 4 sweeps and IS gated. *)
  out "  \"adaptive\": {\n";
  out "    \"plan\": \"CNC (32 subs), static vs adaptive ACS\",\n";
  out "    \"arms\": [\n";
  List.iteri
    (fun i r ->
      out "      {\"label\": \"%s\", \"static_mean_energy\": %s, "
        (json_escape r.ad_label) (json_float r.ad_static_mean);
      out "\"adaptive_mean_energy\": %s, \"improvement_pct\": %s, "
        (json_float r.ad_adaptive_mean) (json_float r.ad_improvement_pct);
      out "\"resolves\": %d, \"drift_events\": %d, \"bit_identical\": %b}%s\n"
        r.ad_resolves r.ad_drift_events r.ad_identical
        (if i = List.length adaptive - 1 then "" else ","))
    adaptive;
  out "    ]\n";
  out "  },\n";
  (* [warm_rps] is the steady-state daemon ceiling (every request a
     cache hit) and carries the [--min-serve-throughput] floor;
     [bit_identical] byte-diffs the cold -j 1 and -j 4 reports. *)
  out "  \"serve_throughput\": {\n";
  out "    \"plan\": \"%d NDJSON requests (tasks 2-3), -j 4, waves of 8\",\n"
    serve.sv_requests;
  out "    \"requests\": %d,\n" serve.sv_requests;
  out "    \"cold_s\": %s,\n" (json_float serve.sv_cold_s);
  out "    \"warm_s\": %s,\n" (json_float serve.sv_warm_s);
  out "    \"cold_rps\": %s,\n" (json_float (serve_cold_rps serve));
  out "    \"warm_rps\": %s,\n" (json_float (serve_warm_rps serve));
  out "    \"coalesced\": %d,\n" serve.sv_coalesced;
  out "    \"bit_identical\": %b\n" serve.sv_identical;
  out "  },\n";
  out "  \"telemetry\": {\n";
  out "    \"plan\": \"CNC (32 subs), ACS solve\",\n";
  out "    \"off_s\": %s,\n" (json_float tel_off_s);
  out "    \"on_s\": %s,\n" (json_float tel_on_s);
  out "    \"records\": %d,\n" tel_records;
  out "    \"overhead_ns_per_inner_iteration\": %s,\n" (json_float tel_overhead_ns);
  out "    \"bit_identical\": %b\n" tel_identical;
  out "  }\n";
  out "}\n";
  close_out oc

let print_solver_kernel_rows rows =
  section "Solver kernels (time and minor allocation per run)";
  List.iter
    (fun r ->
      Printf.printf "  %-44s %12.1f ns/run %12.1f minor words/run\n%!" r.row_name
        r.ns_per_op r.minor_words_per_op)
    rows

let print_par_row label r =
  Printf.printf
    "  %s: seq %.3fs, spawn -j %d %.3fs, pool -j %d %.3fs — spawn/pool %.2fx, \
     seq/pool %.2fx, identical: %b\n%!"
    label r.seq_s r.par_jobs r.spawn_s r.par_jobs r.pool_s (par_speedup r)
    (par_vs_sequential r) r.par_identical

let print_huge_row r =
  Printf.printf
    "  huge %s: fast %.3fs%s — %.1fx vs recorded seed, identical: %b\n%!"
    r.huge_name r.huge_fast_s
    (match r.huge_exact_s with
    | Some s -> Printf.sprintf ", exact %.3fs" s
    | None -> "")
    (huge_speedup_vs_seed r) r.huge_identical

let run_solver_json ~path ~quick ~max_telemetry_overhead_ns ~min_parallel_speedup
    ~min_vs_sequential ~min_warm_speedup ~min_huge_speedup
    ~min_serve_throughput () =
  let rows = run_solver_kernel_benchmarks ~quick () in
  print_solver_kernel_rows rows;
  let stream = stream_measurement ~quick () in
  print_par_row stream.par_plan stream;
  let saturated = saturated_measurement ~quick () in
  print_par_row saturated.par_plan saturated;
  let legacy = legacy_measurement () in
  let t_seq, t_par, _, legacy_identical = legacy in
  Printf.printf
    "  CNC 3 starts (legacy): -j 1 %.2fs, -j 4 %.2fs (%.2fx), identical: %b\n%!"
    t_seq t_par (t_seq /. Float.max t_par 1e-9) legacy_identical;
  let continuation = continuation_measurement ~quick () in
  Printf.printf
    "  warm continuation (%s): cold %.2fs, warm %.2fs (%.2fx), close per point: \
     %b, total never worse: %b\n%!"
    continuation.warm_plan continuation.cold_s continuation.warm_s
    (warm_speedup continuation) continuation.close_per_point
    continuation.total_never_worse;
  let fig6a = fig6a_warm_measurement ~quick () in
  Printf.printf
    "  warm fig6a (%s): cold %.2fs, warm %.2fs (%.2fx), misses %d/%d\n%!"
    fig6a.f6_plan fig6a.f6_cold_s fig6a.f6_warm_s
    (fig6a.f6_cold_s /. Float.max fig6a.f6_warm_s 1e-9)
    fig6a.f6_cold_misses fig6a.f6_warm_misses;
  let ((huge_n8, huge_n16) as huge) = huge_measurement ~quick () in
  print_huge_row huge_n8;
  print_huge_row huge_n16;
  let adaptive = adaptive_measurement ~quick () in
  List.iter
    (fun r ->
      Printf.printf
        "  adaptive %s: static %.4f, adaptive %.4f (%+.1f%%), %d resolves, \
         %d drift events, identical: %b\n%!"
        r.ad_label r.ad_static_mean r.ad_adaptive_mean r.ad_improvement_pct
        r.ad_resolves r.ad_drift_events r.ad_identical)
    adaptive;
  let serve = serve_measurement ~quick () in
  Printf.printf
    "  serve: %d requests — cold %.3fs (%.1f req/s), warm %.3fs (%.1f req/s), \
     coalesced %d, identical: %b\n%!"
    serve.sv_requests serve.sv_cold_s (serve_cold_rps serve) serve.sv_warm_s
    (serve_warm_rps serve) serve.sv_coalesced serve.sv_identical;
  let tel = telemetry_overhead_measurement ~quick () in
  let tel_off, tel_on, tel_records, tel_overhead, tel_identical = tel in
  Printf.printf
    "  telemetry: off %.3fs, on %.3fs — %.1f ns per inner iteration (%d records), \
     identical: %b\n%!"
    tel_off tel_on tel_overhead tel_records tel_identical;
  emit_solver_json ~path ~quick rows ~stream ~saturated ~legacy ~continuation
    ~fig6a ~huge ~adaptive ~serve tel;
  Printf.printf "wrote %s\n%!" path;
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  if not tel_identical then
    fail "solver results differ with telemetry enabled";
  if not (stream.par_identical && saturated.par_identical && legacy_identical)
  then fail "parallel multi-start results are not bit-identical";
  if not (List.for_all (fun r -> r.ad_identical) adaptive) then
    fail "adaptive estimator sweep differs between -j 1 and -j 4";
  if not continuation.close_per_point then
    fail "a warm continuation point ended >5%% worse than its cold counterpart";
  if not continuation.total_never_worse then
    fail "the warm continuation sweep's total energy regressed vs cold";
  if not continuation.first_identical then
    fail "cold-vs-warm continuation sweeps differ on the always-cold first point";
  if fig6a.f6_cold_misses <> 0 || fig6a.f6_warm_misses <> 0 then
    fail "fig6a sweep produced deadline misses (%d cold, %d warm)"
      fig6a.f6_cold_misses fig6a.f6_warm_misses;
  (match max_telemetry_overhead_ns with
  | Some budget when tel_overhead > budget ->
    fail "telemetry overhead %.1f ns/inner-iteration exceeds the %.1f ns budget"
      tel_overhead budget
  | _ -> ());
  (match min_parallel_speedup with
  | Some floor when par_speedup stream < floor ->
    fail "spawn-vs-pool speedup %.2fx below the %.2fx floor"
      (par_speedup stream) floor
  | _ -> ());
  (* Asserted on the saturated CNC solve (solve-dominated, so the
     number reflects actual parallel descent work, not dispatch). *)
  (match min_vs_sequential with
  | Some floor when par_vs_sequential saturated < floor ->
    fail "pool-vs-sequential speedup %.2fx below the %.2fx floor (%d cores)"
      (par_vs_sequential saturated) floor
      (Domain.recommended_domain_count ())
  | _ -> ());
  (match min_warm_speedup with
  | Some floor when warm_speedup continuation < floor ->
    fail "warm continuation speedup %.2fx below the %.2fx floor"
      (warm_speedup continuation) floor
  | _ -> ());
  if not (huge_n8.huge_identical && huge_n16.huge_identical) then
    fail "fast and exact solve paths disagree on a huge instance";
  (match min_huge_speedup with
  | Some floor when huge_speedup_vs_seed huge_n8 < floor ->
    fail "huge-solve speedup %.2fx vs the recorded seed below the %.2fx floor"
      (huge_speedup_vs_seed huge_n8) floor
  | _ -> ());
  if not serve.sv_identical then
    fail "serve reports differ between -j 1 and -j 4";
  (* Gated on the warm (all-cache-hit) rate: it measures the serve
     engine itself — admission, routing, cache replay, folding — not
     NLP solve time, so it is comparatively machine-stable. *)
  (match min_serve_throughput with
  | Some floor when serve_warm_rps serve < floor ->
    fail "warm serve throughput %.1f req/s below the %.1f req/s floor"
      (serve_warm_rps serve) floor
  | _ -> ());
  if !failures <> [] then begin
    List.iter (fun s -> Printf.eprintf "FAIL: %s\n%!" s) (List.rev !failures);
    exit 1
  end

let () =
  (* `--json PATH [--quick] [--max-telemetry-overhead-ns N]
     [--min-parallel-speedup X] [--min-vs-sequential X]
     [--min-warm-speedup X] [--min-huge-speedup X]
     [--min-serve-throughput X]` runs only the
     solver-kernel group and writes the machine-readable summary (the
     CI smoke step), failing when a floor is violated; no arguments
     runs the full reproduction + benchmark pipeline.
     [--min-vs-sequential] should only be set on machines with >= 4
     cores — spawn-vs-pool, the warm floor and the huge-solve floor are
     meaningful anywhere ([--min-huge-speedup] compares against the
     recorded pre-PR-8 seed time, so set it well below the expected
     gain to absorb machine differences). *)
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let rec find_opt_value flag = function
    | f :: v :: _ when f = flag -> Some v
    | _ :: rest -> find_opt_value flag rest
    | [] -> None
  in
  let float_flag flag = Option.map float_of_string (find_opt_value flag args) in
  let json_path args = find_opt_value "--json" args in
  let max_telemetry_overhead_ns = float_flag "--max-telemetry-overhead-ns" in
  match json_path args with
  | Some path ->
    run_solver_json ~path ~quick ~max_telemetry_overhead_ns
      ~min_parallel_speedup:(float_flag "--min-parallel-speedup")
      ~min_vs_sequential:(float_flag "--min-vs-sequential")
      ~min_warm_speedup:(float_flag "--min-warm-speedup")
      ~min_huge_speedup:(float_flag "--min-huge-speedup")
      ~min_serve_throughput:(float_flag "--min-serve-throughput") ()
  | None ->
    regenerate_motivation ();
    regenerate_fig6a ();
    regenerate_fig6b ();
    regenerate_policy_ablation ();
    regenerate_design_ablations ();
    parallel_speedup ();
    run_benchmarks ();
    print_solver_kernel_rows (run_solver_kernel_benchmarks ~quick:false ());
    print_endline "\nbench: done"
