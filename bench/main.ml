(* Benchmark & reproduction harness.

   Phase 1 regenerates every table and figure of the paper's evaluation
   (at a reduced-but-same-shape scale; the `lepts` CLI runs the full
   protocol) and prints the rows the paper reports.

   Phase 2 runs Bechamel micro-benchmarks, one per experiment
   (plus ablations of the design choices called out in DESIGN.md), and
   prints estimated wall-clock time per run. *)

open Bechamel
module Model = Lepts_power.Model
module Plan = Lepts_preempt.Plan
module Solver = Lepts_core.Solver
module Static_schedule = Lepts_core.Static_schedule
module Objective = Lepts_core.Objective
module Experiments = Lepts_experiments

let power = Model.ideal ~v_min:0.5 ~v_max:4. ()

let section title =
  Printf.printf "\n=== %s ===\n%!" title

(* ---------------------------------------------------------------------- *)
(* Phase 1: regenerate every table / figure.                              *)
(* ---------------------------------------------------------------------- *)

let regenerate_motivation () =
  section "Table 1 / Figs 1-2: motivational example (paper vs measured)";
  match Experiments.Motivation.run () with
  | Error e -> Format.printf "error: %a@." Solver.pp_error e
  | Ok report -> Lepts_util.Table.print (Experiments.Motivation.to_table report)

let regenerate_fig6a () =
  section "Fig 6(a): random task sets (reduced scale; paper: 100 sets, 1000 rounds)";
  let config =
    { Experiments.Fig6a.paper_config with sets_per_point = 3; rounds = 100 }
  in
  let points =
    Experiments.Fig6a.run ~progress:(fun s -> Printf.printf "  %s\n%!" s) config ~power
  in
  Lepts_util.Table.print (Experiments.Fig6a.to_table points);
  print_endline
    "paper shape: improvement grows with workload variation (ratio 0.1 >> 0.9),\n\
     peaking around 60% (10 tasks, ratio 0.1); near zero at ratio 0.9."

let regenerate_fig6b () =
  section "Fig 6(b): CNC and GAP applications (reduced rounds)";
  let config = { Experiments.Fig6b.paper_config with rounds = 100 } in
  let points =
    Experiments.Fig6b.run ~progress:(fun s -> Printf.printf "  %s\n%!" s) config ~power
  in
  Lepts_util.Table.print (Experiments.Fig6b.to_table points);
  print_endline
    "paper shape: CNC up to ~41% and GAP up to ~30% at ratio 0.1, decaying as\n\
     the ratio approaches 1."

let regenerate_design_ablations () =
  section "Ablations: DESIGN.md design choices (CNC, ratio 0.1)";
  let ts = Lepts_workloads.Cnc.task_set ~power ~ratio:0.1 () in
  let show title = function
    | Error e -> Format.printf "%s: error: %a@." title Solver.pp_error e
    | Ok table ->
      Printf.printf "%s:\n" title;
      Lepts_util.Table.print table
  in
  show "NLP formulations" (Experiments.Ablations.formulations ~task_set:ts ~power);
  show "Objectives"
    (Experiments.Ablations.objectives ~rounds:200 ~task_set:ts ~power ~seed:3 ());
  show "Voltage quantization"
    (Experiments.Ablations.quantization ~rounds:200 ~task_set:ts ~power ~seed:3 ());
  show "Structures"
    (Experiments.Ablations.structures ~task_set:ts ~power);
  section "Extension: utilization sweep (CNC, ratio 0.1)";
  Lepts_util.Table.print
    (Experiments.Utilization_sweep.to_table
       (Experiments.Utilization_sweep.run ~rounds:200 ~task_set:ts ~power ~seed:3 ()));
  section "Extension: workload distribution shapes (CNC, ratio 0.1)";
  (match Experiments.Distribution_sweep.run ~rounds:200 ~task_set:ts ~power ~seed:3 () with
  | Error e -> Format.printf "error: %a@." Solver.pp_error e
  | Ok points -> Lepts_util.Table.print (Experiments.Distribution_sweep.to_table points));
  section "Extension: voltage-transition overhead (CNC, ratio 0.1)";
  match Experiments.Transition_sweep.run ~rounds:200 ~task_set:ts ~power ~seed:3 () with
  | Error e -> Format.printf "error: %a@." Solver.pp_error e
  | Ok points -> Lepts_util.Table.print (Experiments.Transition_sweep.to_table points)

let parallel_speedup () =
  section "Parallel campaign engine: fig6a reduced sweep at -j 1 vs -j 4";
  let config =
    { Experiments.Fig6a.paper_config with
      task_counts = [ 4; 6 ]; ratios = [ 0.1 ]; sets_per_point = 4; rounds = 100 }
  in
  let time jobs =
    let t0 = Unix.gettimeofday () in
    let points = Experiments.Fig6a.run ~jobs config ~power in
    (Unix.gettimeofday () -. t0, points)
  in
  let t_seq, seq_points = time 1 in
  let t_par, par_points = time 4 in
  let identical =
    List.for_all2
      (fun (a : Experiments.Fig6a.point) (b : Experiments.Fig6a.point) ->
        a = b)
      seq_points par_points
  in
  Printf.printf
    "  -j 1: %6.2fs   -j 4: %6.2fs   speedup: %.2fx   bit-identical: %b\n"
    t_seq t_par (t_seq /. Float.max t_par 1e-9) identical;
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "  (%d core(s) available; speedup saturates at min(jobs, cores), and with\n\
    \   jobs > cores the domains time-slice one core and every minor-GC\n\
    \   stop-the-world barrier pays a scheduler round-trip, so expect a\n\
    \   slowdown there — the numbers above are only meaningful on >= 4 cores)\n"
    cores

let regenerate_policy_ablation () =
  section "Ablation: offline schedule x online policy (CNC, ratio 0.1)";
  let ts = Lepts_workloads.Cnc.task_set ~power ~ratio:0.1 () in
  match Experiments.Policies.run ~rounds:200 ~task_set:ts ~power ~seed:7 () with
  | Error e -> Format.printf "error: %a@." Solver.pp_error e
  | Ok cells -> Lepts_util.Table.print (Experiments.Policies.to_table cells)

(* ---------------------------------------------------------------------- *)
(* Phase 2: Bechamel micro-benchmarks.                                    *)
(* ---------------------------------------------------------------------- *)

let cnc_plan = lazy (Plan.expand (Lepts_workloads.Cnc.task_set ~power ~ratio:0.1 ()))

let cnc_schedules =
  lazy
    (let plan = Lazy.force cnc_plan in
     let wcs, _ = Result.get_ok (Solver.solve_wcs ~plan ~power ()) in
     let acs, _ =
       Result.get_ok
         (Solver.solve_acs
            ~warm_starts:[ (wcs.Static_schedule.end_times, wcs.Static_schedule.quotas) ]
            ~plan ~power ())
     in
     (wcs, acs))

let random_set n =
  lazy
    (let rng = Lepts_prng.Xoshiro256.create ~seed:(100 + n) in
     Result.get_ok
       (Lepts_workloads.Random_gen.generate
          (Lepts_workloads.Random_gen.default_config ~n_tasks:n ~ratio:0.1)
          ~power ~rng))

let rand5 = random_set 5

let bench_tests () =
  let motivation =
    Test.make ~name:"motivation (Table 1 / Figs 1-2)"
      (Staged.stage (fun () -> Result.get_ok (Experiments.Motivation.run ())))
  in
  let fig6a_point =
    Test.make ~name:"fig6a point (n=4, ratio=0.1, 1 set, 50 rounds)"
      (Staged.stage (fun () ->
           let rng = Lepts_prng.Xoshiro256.create ~seed:17 in
           let ts =
             Result.get_ok
               (Lepts_workloads.Random_gen.generate
                  (Lepts_workloads.Random_gen.default_config ~n_tasks:4 ~ratio:0.1)
                  ~power ~rng)
           in
           Result.get_ok
             (Experiments.Improvement.measure ~rounds:50 ~task_set:ts ~power
                ~sim_seed:3 ())))
  in
  let fig6b_cnc =
    Test.make ~name:"fig6b CNC point (ratio=0.1, 50 rounds)"
      (Staged.stage (fun () ->
           let ts = Lepts_workloads.Cnc.task_set ~power ~ratio:0.1 () in
           Result.get_ok
             (Experiments.Improvement.measure ~rounds:50 ~task_set:ts ~power
                ~sim_seed:5 ())))
  in
  let expand =
    Test.make ~name:"fully preemptive expansion (rand n=5)"
      (Staged.stage (fun () -> Plan.expand (Lazy.force rand5)))
  in
  let solve_wcs =
    Test.make ~name:"WCS solve (CNC, 32 subs)"
      (Staged.stage (fun () ->
           Result.get_ok (Solver.solve_wcs ~plan:(Lazy.force cnc_plan) ~power ())))
  in
  let solve_acs =
    Test.make ~name:"ACS solve (CNC, 32 subs)"
      (Staged.stage (fun () ->
           Result.get_ok (Solver.solve_acs ~plan:(Lazy.force cnc_plan) ~power ())))
  in
  let gradient_adjoint =
    Test.make ~name:"objective adjoint gradient (CNC)"
      (Staged.stage (fun () ->
           let plan = Lazy.force cnc_plan in
           let _, acs = Lazy.force cnc_schedules in
           let totals = Objective.instance_totals Objective.Average plan in
           Objective.eval_with_gradient ~plan ~power ~totals
             ~e:acs.Static_schedule.end_times ~w_hat:acs.Static_schedule.quotas))
  in
  let gradient_numdiff =
    Test.make ~name:"objective numerical gradient (CNC)"
      (Staged.stage (fun () ->
           let plan = Lazy.force cnc_plan in
           let _, acs = Lazy.force cnc_schedules in
           let totals = Objective.instance_totals Objective.Average plan in
           let m = Plan.size plan in
           let f x =
             Objective.eval ~plan ~power ~totals ~e:(Array.sub x 0 m)
               ~w_hat:(Array.sub x m m)
           in
           Lepts_optim.Numdiff.gradient ~f
             (Array.append acs.Static_schedule.end_times acs.Static_schedule.quotas)))
  in
  let event_sim =
    Test.make ~name:"event-driven simulation (CNC, 1 hyper-period)"
      (Staged.stage (fun () ->
           let _, acs = Lazy.force cnc_schedules in
           let rng = Lepts_prng.Xoshiro256.create ~seed:23 in
           let totals = Lepts_sim.Sampler.instance_totals (Lazy.force cnc_plan) ~rng in
           Lepts_sim.Event_sim.run ~schedule:acs ~policy:Lepts_dvs.Policy.Greedy ~totals ()))
  in
  let sequence_sim =
    Test.make ~name:"closed-form executor (CNC, 1 hyper-period)"
      (Staged.stage (fun () ->
           let _, acs = Lazy.force cnc_schedules in
           let totals = Lepts_sim.Sampler.fixed (Lazy.force cnc_plan) ~value:`Acec in
           Lepts_sim.Sequence.run ~schedule:acs ~totals))
  in
  [ motivation; fig6a_point; fig6b_cnc; expand; solve_wcs; solve_acs;
    gradient_adjoint; gradient_numdiff; event_sim; sequence_sim ]

let run_benchmarks () =
  section "Bechamel micro-benchmarks (time per run)";
  (* Force shared fixtures so setup cost cannot contaminate the runs. *)
  ignore (Lazy.force cnc_plan);
  ignore (Lazy.force cnc_schedules);
  ignore (Lazy.force rand5);
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 2.) ~kde:None () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyses = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let time_ns =
            match Analyze.OLS.estimates ols_result with
            | Some (t :: _) -> t
            | Some [] | None -> Float.nan
          in
          Printf.printf "  %-48s %12.3f ms/run\n%!" name (time_ns /. 1e6))
        analyses)
    (bench_tests ())

let () =
  regenerate_motivation ();
  regenerate_fig6a ();
  regenerate_fig6b ();
  regenerate_policy_ablation ();
  regenerate_design_ablations ();
  parallel_speedup ();
  run_benchmarks ();
  print_endline "\nbench: done"
