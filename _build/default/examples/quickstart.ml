(* Quickstart: define a task set, compute the ACS voltage schedule, and
   simulate it.

   Run with: dune exec examples/quickstart.exe *)

module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Plan = Lepts_preempt.Plan
module Model = Lepts_power.Model
module Solver = Lepts_core.Solver
module Static_schedule = Lepts_core.Static_schedule
module Objective = Lepts_core.Objective
module Validate = Lepts_core.Validate

let () =
  (* 1. A processor: ideal delay model (cycle time inversely
     proportional to voltage), V in [0.5, 4] volts. *)
  let power = Model.ideal ~v_min:0.5 ~v_max:4.0 () in

  (* 2. Three periodic tasks. Periods are in milliseconds, workloads in
     megacycles; BCEC/WCEC = 0.1 means execution cycles usually sit far
     below the worst case — exactly the regime the paper targets. *)
  let task_set =
    Task_set.create
      [ Task.with_ratio ~name:"sensor" ~period:4 ~wcec:4.0 ~ratio:0.1;
        Task.with_ratio ~name:"control" ~period:6 ~wcec:5.0 ~ratio:0.1;
        Task.with_ratio ~name:"telemetry" ~period:12 ~wcec:8.0 ~ratio:0.1 ]
  in

  (* 3. Expand one hyper-period into the fully preemptive plan
     (paper Figs 3-4). *)
  let plan = Plan.expand task_set in
  Format.printf "@[<v>%a@]@." Plan.pp_timeline plan;

  (* 4. Solve both schedules: the WCEC-only baseline (WCS) and the
     average-case-aware schedule (ACS). *)
  let wcs, _ = Result.get_ok (Solver.solve_wcs ~plan ~power ()) in
  let acs, _ =
    Result.get_ok
      (Solver.solve_acs
         ~warm_starts:[ (wcs.Static_schedule.end_times, wcs.Static_schedule.quotas) ]
         ~plan ~power ())
  in
  Format.printf "%a@." Static_schedule.pp acs;
  assert (Validate.is_feasible acs);

  (* 5. Predicted energies (closed form) and a sampled simulation. *)
  Format.printf "predicted average-case energy: WCS %.1f vs ACS %.1f@."
    (Static_schedule.predicted_energy wcs ~mode:Objective.Average)
    (Static_schedule.predicted_energy acs ~mode:Objective.Average);
  let simulate schedule =
    Lepts_sim.Runner.simulate ~rounds:500 ~schedule ~policy:Lepts_dvs.Policy.Greedy
      ~rng:(Lepts_prng.Xoshiro256.create ~seed:42) ()
  in
  let sw = simulate wcs and sa = simulate acs in
  Format.printf "simulated (500 hyper-periods): WCS %a@." Lepts_sim.Runner.pp_summary sw;
  Format.printf "simulated (500 hyper-periods): ACS %a@." Lepts_sim.Runner.pp_summary sa;
  Format.printf "runtime energy saving: %.1f %%@."
    (100. *. (sw.mean_energy -. sa.mean_energy) /. sw.mean_energy);

  (* 6. Visualise one hyper-period: who ran when, and how fast (digits
     are voltage levels; '.' is idle). *)
  let totals = Lepts_sim.Sampler.fixed plan ~value:`Acec in
  let _, trace =
    Lepts_sim.Event_sim.run_traced ~schedule:acs ~policy:Lepts_dvs.Policy.Greedy ~totals
      ()
  in
  Format.printf "@.ACS execution on the average workload:@.%a"
    (Lepts_sim.Trace.pp_gantt ?width:None ~n_tasks:3) trace
