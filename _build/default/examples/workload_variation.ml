(* How the benefit of average-case-aware scheduling depends on workload
   variability — the central claim of the paper.

   Sweeps the BCEC/WCEC ratio on one random task set: at 0.1 execution
   cycles usually sit far below the worst case (lots of dynamic slack
   to exploit), at 0.9 they are almost fixed (nothing to exploit).

   Run with: dune exec examples/workload_variation.exe *)

module Model = Lepts_power.Model
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Experiments = Lepts_experiments

let () =
  let power = Model.ideal ~v_min:0.5 ~v_max:4.0 () in
  let table =
    Lepts_util.Table.create
      ~header:[ "BCEC/WCEC"; "WCS energy"; "ACS energy"; "improvement" ]
  in
  List.iter
    (fun ratio ->
      (* Same periods and WCECs at every ratio; only the workload
         variability changes. *)
      let task_set =
        Task_set.create
          [ Task.with_ratio ~name:"audio" ~period:10 ~wcec:8.0 ~ratio;
            Task.with_ratio ~name:"video" ~period:30 ~wcec:30.0 ~ratio;
            Task.with_ratio ~name:"network" ~period:60 ~wcec:40.0 ~ratio;
            Task.with_ratio ~name:"ui" ~period:60 ~wcec:20.0 ~ratio ]
      in
      let task_set =
        Task_set.scale_wcec_to_utilization task_set ~power ~target:0.7
      in
      match
        Experiments.Improvement.measure ~rounds:400 ~task_set ~power ~sim_seed:5 ()
      with
      | Error e ->
        Format.printf "ratio %.1f: %a@." ratio Lepts_core.Solver.pp_error e
      | Ok r ->
        Lepts_util.Table.add_row table
          [ Lepts_util.Table.float_cell ~decimals:1 ratio;
            Lepts_util.Table.float_cell ~decimals:1 r.Experiments.Improvement.wcs_energy;
            Lepts_util.Table.float_cell ~decimals:1 r.Experiments.Improvement.acs_energy;
            Lepts_util.Table.percent_cell r.Experiments.Improvement.improvement_pct ])
    [ 0.1; 0.3; 0.5; 0.7; 0.9 ];
  print_endline "ACS vs WCS as workload variability shrinks:";
  Lepts_util.Table.print table
