(* The GAP generic avionics platform (Locke et al., RTSS 1991) — the
   second real-life application in the paper's Fig 6(b), and the
   largest workload in this repository (~1200 sub-instances).

   Run with: dune exec examples/gap_avionics.exe
   (takes a couple of minutes: the NLP has ~2500 variables) *)

module Model = Lepts_power.Model
module Task_set = Lepts_task.Task_set
module Plan = Lepts_preempt.Plan
module Solver = Lepts_core.Solver
module Static_schedule = Lepts_core.Static_schedule
module Objective = Lepts_core.Objective

let () =
  let power = Model.ideal ~v_min:0.5 ~v_max:4.0 () in
  let task_set = Lepts_workloads.Gap.task_set ~power ~ratio:0.1 () in
  Format.printf "GAP task set (%d tasks): %a@." (Task_set.size task_set)
    Task_set.pp task_set;
  let plan = Plan.expand task_set in
  Format.printf "plan: %d sub-instances over %g ms@." (Plan.size plan)
    (Plan.hyper_period plan);
  match Solver.solve_wcs ~plan ~power () with
  | Error e -> Format.printf "WCS failed: %a@." Solver.pp_error e
  | Ok (wcs, _) -> (
    let warm = [ (wcs.Static_schedule.end_times, wcs.Static_schedule.quotas) ] in
    match Solver.solve_acs ~warm_starts:warm ~plan ~power () with
    | Error e -> Format.printf "ACS failed: %a@." Solver.pp_error e
    | Ok (acs, _) ->
      let avg s = Static_schedule.predicted_energy s ~mode:Objective.Average in
      Format.printf "predicted average energy: WCS %.0f vs ACS %.0f (%.1f %% lower)@."
        (avg wcs) (avg acs)
        (100. *. (avg wcs -. avg acs) /. avg wcs);
      let simulate schedule =
        Lepts_sim.Runner.simulate ~rounds:100 ~schedule
          ~policy:Lepts_dvs.Policy.Greedy
          ~rng:(Lepts_prng.Xoshiro256.create ~seed:17) ()
      in
      let sw = simulate wcs and sa = simulate acs in
      Format.printf "simulated: WCS %a@.           ACS %a@."
        Lepts_sim.Runner.pp_summary sw Lepts_sim.Runner.pp_summary sa;
      Format.printf "runtime saving on sampled workloads: %.1f %%@."
        (100. *. (sw.mean_energy -. sa.mean_energy) /. sw.mean_energy))
