(* Why doesn't the improvement grow with task count in our Fig 6(a)?
   (EXPERIMENTS.md discusses the gap.)

   Hypothesis: period structure. On an arbitrary grid, more tasks mean
   many more preemption segments, each end-time boxed inside a small
   segment — little freedom for ACS to exploit. On a harmonic grid
   (each period divides the next) the expansion stays coarse and the
   end-times keep room to move.

   This example measures ACS-over-WCS improvement on the paper's
   default divisors-of-600 grid vs a harmonic {10, 20, 40, 80, 160}
   grid, at ratio 0.1.

   Run with: dune exec examples/harmonic_periods.exe   (a few minutes) *)

module Model = Lepts_power.Model
module Random_gen = Lepts_workloads.Random_gen
module Improvement = Lepts_experiments.Improvement

let measure_grid ~grid ~n_tasks ~sets ~power =
  let improvements = ref [] in
  for set = 0 to sets - 1 do
    let rng = Lepts_prng.Xoshiro256.create ~seed:(9_000 + (100 * n_tasks) + set) in
    let config =
      { (Random_gen.default_config ~n_tasks ~ratio:0.1) with
        Random_gen.period_grid = grid }
    in
    match Random_gen.generate config ~power ~rng with
    | Error _ -> ()
    | Ok ts -> (
      match Improvement.measure ~rounds:100 ~task_set:ts ~power ~sim_seed:set () with
      | Error _ -> ()
      | Ok r -> improvements := r.Improvement.improvement_pct :: !improvements)
  done;
  match !improvements with
  | [] -> Float.nan
  | xs -> Lepts_util.Stats.mean (Array.of_list xs)

let () =
  let power = Model.ideal ~v_min:0.5 ~v_max:4. () in
  let default_grid = (Random_gen.default_config ~n_tasks:2 ~ratio:0.1).Random_gen.period_grid in
  let harmonic = [| 10; 20; 40; 80; 160 |] in
  let table =
    Lepts_util.Table.create
      ~header:[ "tasks"; "default grid"; "harmonic grid" ]
  in
  List.iter
    (fun n ->
      let d = measure_grid ~grid:default_grid ~n_tasks:n ~sets:4 ~power in
      let h = measure_grid ~grid:harmonic ~n_tasks:n ~sets:4 ~power in
      Lepts_util.Table.add_row table
        [ string_of_int n;
          Lepts_util.Table.percent_cell d;
          Lepts_util.Table.percent_cell h ])
    [ 2; 4; 6; 8; 10 ];
  print_endline "ACS improvement over WCS at ratio 0.1 (4 sets, 100 rounds):";
  Lepts_util.Table.print table;
  print_endline
    "If the harmonic column grows with task count while the default one\n\
     flattens, the Fig 6(a) task-count gap is (at least partly) a period-\n\
     structure effect, not an algorithmic one."
