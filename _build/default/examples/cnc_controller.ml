(* The CNC machine controller (Kim et al., RTSS 1996) — the first
   real-life application in the paper's Fig 6(b).

   Shows the full workflow on a published task set: schedulability
   analysis, both schedules, policy ablation, and the ratio sweep.

   Run with: dune exec examples/cnc_controller.exe *)

module Model = Lepts_power.Model
module Task_set = Lepts_task.Task_set
module Rm = Lepts_task.Rm
module Plan = Lepts_preempt.Plan
module Experiments = Lepts_experiments

let () =
  let power = Model.ideal ~v_min:0.5 ~v_max:4.0 () in
  let task_set = Lepts_workloads.Cnc.task_set ~power ~ratio:0.1 () in
  Format.printf "CNC task set: %a@." Task_set.pp task_set;
  Format.printf "utilization at v_max: %.3f, RM-schedulable: %b@."
    (Task_set.utilization task_set ~power)
    (Rm.schedulable task_set ~power);
  let plan = Plan.expand task_set in
  Format.printf "fully preemptive plan: %d sub-instances over %g ms@."
    (Plan.size plan) (Plan.hyper_period plan);

  (* Policy ablation: where do the savings come from? *)
  (match Experiments.Policies.run ~rounds:300 ~task_set ~power ~seed:7 () with
  | Error e -> Format.printf "error: %a@." Lepts_core.Solver.pp_error e
  | Ok cells ->
    print_endline "\nEnergy by (schedule, online policy):";
    Lepts_util.Table.print (Experiments.Policies.to_table cells));

  (* Ratio sweep: the CNC series of the paper's Fig 6(b). *)
  print_endline "\nImprovement vs BCEC/WCEC ratio (Fig 6(b), CNC series):";
  let config =
    { Experiments.Fig6b.quick_config with rounds = 300; include_gap = false }
  in
  let points = Experiments.Fig6b.run config ~power in
  Lepts_util.Table.print (Experiments.Fig6b.to_table points)
