examples/quickstart.ml: Format Lepts_core Lepts_dvs Lepts_power Lepts_preempt Lepts_prng Lepts_sim Lepts_task Result
