examples/quickstart.mli:
