examples/cnc_controller.mli:
