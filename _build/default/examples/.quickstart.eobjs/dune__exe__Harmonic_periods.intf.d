examples/harmonic_periods.mli:
