examples/workload_variation.mli:
