examples/gap_avionics.mli:
