examples/harmonic_periods.ml: Array Float Lepts_experiments Lepts_power Lepts_prng Lepts_util Lepts_workloads List
