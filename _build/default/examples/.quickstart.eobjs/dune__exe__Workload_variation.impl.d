examples/workload_variation.ml: Format Lepts_core Lepts_experiments Lepts_power Lepts_task Lepts_util List
