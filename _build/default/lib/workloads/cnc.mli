(** The CNC (computerised numerical control) controller task set.

    Reconstructed from Kim, Ryu, Hong, Saksena, Choi & Shin, "Visual
    assessment of a real-time system design: a case study on a CNC
    controller" (RTSS 1996) — the real-life application the paper
    evaluates in Fig. 6(b). Eight periodic tasks; worst-case execution
    times are taken as measured at maximum processor speed.

    One tick in this library is 1 ms; the CNC periods (2.4 / 4.8 /
    9.6 ms) are therefore expressed on a 0.1 ms grid by scaling every
    period and WCET by 10 — voltage schedules and energy ratios are
    invariant under a common time scaling. *)

val names : string array
val periods_ms : float array
(** Published periods, milliseconds. *)

val wcet_ms : float array
(** Published worst-case execution times at maximum speed,
    milliseconds. *)

val task_set :
  power:Lepts_power.Model.t ->
  ratio:float ->
  ?utilization:float ->
  unit ->
  Lepts_task.Task_set.t
(** Build the task set for a BCEC/WCEC [ratio]. WCECs are derived from
    the published WCETs via the power model's maximum speed and then
    scaled to the target [utilization] (default 0.7, the paper's
    setting for comparability across ratios). *)
