module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Model = Lepts_power.Model

let names =
  [| "timer_interrupt"; "radar_tracking_filter"; "rwr_contact_mgmt";
     "data_bus_poll"; "weapon_aiming"; "radar_target_update"; "nav_update";
     "display_graphic"; "display_hook_update"; "tracking_target_update";
     "weapon_release"; "nav_steering_cmds"; "display_stores_update";
     "display_keyset"; "display_status_update"; "bet_e_status_update";
     "nav_status" |]

(* Locke, Vogel & Mesler (RTSS 1991), with the 59 ms navigation period
   rounded to 60 ms and the 1000 ms housekeeping periods to 200 ms to
   bound the hyper-period (see DESIGN.md). *)
let periods_ms =
  [| 25; 25; 25; 40; 50; 50; 60; 80; 80; 100; 200; 200; 200; 200; 200; 200; 200 |]

let wcet_ms =
  [| 1.; 2.; 5.; 1.; 3.; 5.; 8.; 9.; 2.; 5.; 3.; 3.; 1.; 1.; 3.; 1.; 1. |]

let task_set ~power ~ratio ?(utilization = 0.7) () =
  let t_cycle = Model.cycle_time power ~v:power.Model.v_max in
  let tasks =
    Array.to_list
      (Array.mapi
         (fun i name ->
           let wcec = wcet_ms.(i) /. t_cycle in
           Task.with_ratio ~name ~period:periods_ms.(i) ~wcec ~ratio)
         names)
  in
  Task_set.scale_wcec_to_utilization (Task_set.create tasks) ~power ~target:utilization
