(** The GAP (generic avionics platform) task set.

    Reconstructed from Locke, Vogel & Mesler, "Building a predictable
    avionics platform in Ada: a case study" (RTSS 1991) — the second
    real-life application of the paper's Fig. 6(b). Seventeen periodic
    tasks of an avionics mission computer.

    Two departures from the published table, both documented in
    DESIGN.md: the 59 ms navigation update period is rounded to 60 ms
    and the 1000 ms housekeeping periods to 200 ms, so the hyper-period
    (and with it the fully preemptive expansion) stays within the
    paper's own one-thousand-sub-instance cap; energy ratios are
    insensitive to these roundings because utilisation is rescaled to
    the experiment's target anyway. *)

val names : string array
val periods_ms : int array
val wcet_ms : float array

val task_set :
  power:Lepts_power.Model.t ->
  ratio:float ->
  ?utilization:float ->
  unit ->
  Lepts_task.Task_set.t
(** Same conventions as {!Cnc.task_set}. *)
