(** Random task-set generation following the paper's §4 protocol.

    For a given task count: periods are drawn uniformly from a grid
    inside [[10, t_max]]; per-task utilisations are drawn with UUniFast
    and converted to WCECs, then rescaled so that the worst-case
    utilisation at maximum speed is the target (70 %); BCEC is
    [ratio * WCEC] and ACEC the midpoint, matching the BCEC/WCEC sweep
    of Fig. 6. Task sets that are not RM-schedulable at maximum speed,
    or whose fully preemptive expansion exceeds the sub-instance cap
    (the paper's "maximum one thousand sub-instances"), are
    resampled. *)

type config = {
  n_tasks : int;
  ratio : float;  (** BCEC / WCEC *)
  utilization : float;  (** target worst-case utilisation at v_max *)
  period_grid : int array;
      (** candidate periods; defaults to the divisors of 600 that are
          >= 10, bounding every hyper-period by 600 ticks (the paper
          draws "between 10 and t_max" — the grid keeps hyper-periods
          finite, a detail the paper leaves unstated) *)
  max_sub_instances : int;
  max_attempts : int;
}

val default_config : n_tasks:int -> ratio:float -> config
(** [utilization = 0.7], divisors-of-600 grid, [max_sub_instances =
    1000], [max_attempts = 500]. *)

val uunifast :
  rng:Lepts_prng.Xoshiro256.t -> n:int -> total:float -> float array
(** The UUniFast algorithm (Bini & Buttazzo): [n] non-negative
    utilisations summing to [total], uniformly distributed over the
    simplex. Exposed for tests. *)

val generate :
  config ->
  power:Lepts_power.Model.t ->
  rng:Lepts_prng.Xoshiro256.t ->
  (Lepts_task.Task_set.t, string) result
(** One schedulable task set, or [Error] after [max_attempts]
    rejections (pathological configurations only). *)
