module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Model = Lepts_power.Model
module Rng = Lepts_prng.Xoshiro256

type config = {
  n_tasks : int;
  ratio : float;
  utilization : float;
  period_grid : int array;
  max_sub_instances : int;
  max_attempts : int;
}

let divisors_of_600 =
  List.filter (fun d -> 600 mod d = 0 && d >= 10) (List.init 600 (fun i -> i + 1))

let default_config ~n_tasks ~ratio =
  { n_tasks; ratio; utilization = 0.7;
    period_grid = Array.of_list divisors_of_600;
    max_sub_instances = 1000; max_attempts = 500 }

let uunifast ~rng ~n ~total =
  if n <= 0 then invalid_arg "Random_gen.uunifast: n must be positive";
  if total < 0. then invalid_arg "Random_gen.uunifast: negative total";
  let u = Array.make n 0. in
  let sum = ref total in
  for i = 0 to n - 2 do
    let next = !sum *. (Rng.float rng ** (1. /. float_of_int (n - 1 - i))) in
    u.(i) <- !sum -. next;
    sum := next
  done;
  u.(n - 1) <- !sum;
  u

let attempt config ~power ~rng =
  let periods =
    Array.init config.n_tasks (fun _ ->
        Lepts_prng.Dist.uniform_choice rng config.period_grid)
  in
  let utils = uunifast ~rng ~n:config.n_tasks ~total:config.utilization in
  let t_cycle = Model.cycle_time power ~v:power.Model.v_max in
  let tasks =
    Array.to_list
      (Array.mapi
         (fun i period ->
           (* Guard against degenerate zero-utilisation draws. *)
           let u = Float.max utils.(i) 1e-4 in
           let wcec = u *. float_of_int period /. t_cycle in
           Task.with_ratio
             ~name:(Printf.sprintf "task%d" (i + 1))
             ~period ~wcec ~ratio:config.ratio)
         periods)
  in
  let ts = Task_set.create tasks in
  let ts = Task_set.scale_wcec_to_utilization ts ~power ~target:config.utilization in
  if not (Lepts_task.Rm.schedulable ts ~power) then Error `Unschedulable
  else if Lepts_preempt.Plan.sub_instance_count ts > config.max_sub_instances then
    Error `Too_many_sub_instances
  else Ok ts

let generate config ~power ~rng =
  if config.n_tasks <= 0 then invalid_arg "Random_gen.generate: n_tasks";
  if config.ratio < 0. || config.ratio > 1. then
    invalid_arg "Random_gen.generate: ratio out of [0, 1]";
  let rec go attempts_left =
    if attempts_left = 0 then
      Error
        (Printf.sprintf
           "no schedulable task set with <= %d sub-instances in %d attempts"
           config.max_sub_instances config.max_attempts)
    else
      match attempt config ~power ~rng with
      | Ok ts -> Ok ts
      | Error (`Unschedulable | `Too_many_sub_instances) -> go (attempts_left - 1)
  in
  go config.max_attempts
