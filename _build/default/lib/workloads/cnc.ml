module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Model = Lepts_power.Model

let names =
  [| "console_key_in"; "console_key_out"; "x_axis_control"; "y_axis_control";
     "interpolator"; "position_update"; "status_display"; "command_parser" |]

(* Kim et al. (RTSS'96), Table: four 2.4 ms servo/console tasks, the
   570 us interpolation pipeline at 2.4/4.8 ms, and the slow 9.6 ms
   command path. *)
let periods_ms = [| 2.4; 2.4; 2.4; 2.4; 2.4; 4.8; 4.8; 9.6 |]
let wcet_ms = [| 0.035; 0.04; 0.165; 0.165; 0.57; 0.57; 0.57; 0.894 |]

(* Periods land on integer ticks after a x10 time scaling. *)
let tick_scale = 10.

let task_set ~power ~ratio ?(utilization = 0.7) () =
  let t_cycle = Model.cycle_time power ~v:power.Model.v_max in
  let tasks =
    Array.to_list
      (Array.mapi
         (fun i name ->
           let period =
             let p = periods_ms.(i) *. tick_scale in
             let rounded = int_of_float (Float.round p) in
             assert (Float.abs (p -. float_of_int rounded) < 1e-9);
             rounded
           in
           let wcec = wcet_ms.(i) *. tick_scale /. t_cycle in
           Task.with_ratio ~name ~period ~wcec ~ratio)
         names)
  in
  Task_set.scale_wcec_to_utilization (Task_set.create tasks) ~power ~target:utilization
