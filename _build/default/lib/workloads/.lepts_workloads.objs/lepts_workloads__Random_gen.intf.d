lib/workloads/random_gen.mli: Lepts_power Lepts_prng Lepts_task
