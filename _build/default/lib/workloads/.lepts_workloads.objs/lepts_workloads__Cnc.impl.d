lib/workloads/cnc.ml: Array Float Lepts_power Lepts_task
