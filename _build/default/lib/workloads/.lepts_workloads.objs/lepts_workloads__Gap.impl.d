lib/workloads/gap.ml: Array Lepts_power Lepts_task
