lib/workloads/cnc.mli: Lepts_power Lepts_task
