lib/workloads/random_gen.ml: Array Float Lepts_power Lepts_preempt Lepts_prng Lepts_task List Printf
