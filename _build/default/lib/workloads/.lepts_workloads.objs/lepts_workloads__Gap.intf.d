lib/workloads/gap.mli: Lepts_power Lepts_task
