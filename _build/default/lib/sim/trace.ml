type span = {
  task : int;
  instance : int;
  from_time : float;
  to_time : float;
  voltage : float;
}

type t = { spans : span list; horizon : float }

let busy_time t =
  List.fold_left (fun acc s -> acc +. (s.to_time -. s.from_time)) 0. t.spans

let energy t ~c_eff =
  List.fold_left
    (fun acc s ->
      let cycles = s.voltage *. (s.to_time -. s.from_time) in
      acc +. (c_eff *. s.voltage *. s.voltage *. cycles))
    0. t.spans

let utilization t = if t.horizon <= 0. then 0. else busy_time t /. t.horizon

let pp_gantt ?(width = 72) ~n_tasks ppf t =
  if t.horizon <= 0. then Format.fprintf ppf "(empty trace)@."
  else begin
    let v_max =
      List.fold_left (fun m s -> Float.max m s.voltage) 1e-9 t.spans
    in
    let rows = Array.init n_tasks (fun _ -> Bytes.make width '.') in
    List.iter
      (fun s ->
        if s.task >= 0 && s.task < n_tasks then begin
          let c0 = int_of_float (s.from_time /. t.horizon *. float_of_int width) in
          let c1 = int_of_float (Float.ceil (s.to_time /. t.horizon *. float_of_int width)) in
          let level = 1 + int_of_float (8. *. s.voltage /. v_max) in
          let ch = Char.chr (Char.code '0' + min 9 level) in
          for c = max 0 c0 to min (width - 1) (c1 - 1) do
            Bytes.set rows.(s.task) c ch
          done
        end)
      t.spans;
    Array.iteri
      (fun i row -> Format.fprintf ppf "T%-2d |%s|@." (i + 1) (Bytes.to_string row))
      rows;
    Format.fprintf ppf "     0%s%g@."
      (String.make (max 1 (width - 6)) ' ')
      t.horizon
  end
