module Plan = Lepts_preempt.Plan
module Sub = Lepts_preempt.Sub_instance
module Model = Lepts_power.Model
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Static_schedule = Lepts_core.Static_schedule
module Policy = Lepts_dvs.Policy

let tiny = 1e-9

type instance_state = {
  task : int;
  instance : int;
  release : float;
  deadline : float;
  subs : int array;  (** order indices of this instance's sub-instances *)
  mutable remaining : float;  (** actual cycles still to execute *)
  mutable sub_pos : int;  (** current position in [subs] *)
  mutable quota_remaining : float;  (** unused quota of the current sub *)
  mutable finish : float;  (** nan until completed *)
}

let build_instances (schedule : Static_schedule.t) ~totals =
  let plan = schedule.Static_schedule.plan in
  let ts = plan.Plan.task_set in
  let states = ref [] in
  Array.iteri
    (fun i per_instance ->
      let period = float_of_int (Task_set.task ts i).Task.period in
      Array.iteri
        (fun j subs ->
          let quota_sum =
            Array.fold_left
              (fun acc k -> acc +. schedule.Static_schedule.quotas.(k))
              0. subs
          in
          let first_quota =
            if Array.length subs = 0 then 0.
            else schedule.Static_schedule.quotas.(subs.(0))
          in
          let release = float_of_int j *. period in
          (* Cap at the quota sum: the budgeted worst case. An instance
             with no actual work completes at its release. *)
          let remaining = Float.min totals.(i).(j) quota_sum in
          states :=
            { task = i; instance = j; release;
              deadline = float_of_int (j + 1) *. period;
              subs;
              remaining = (if remaining <= tiny then 0. else remaining);
              sub_pos = 0;
              quota_remaining = first_quota;
              finish = (if remaining <= tiny then release else Float.nan) }
            :: !states)
        per_instance)
    plan.Plan.instance_subs;
  Array.of_list (List.rev !states)

(* Advance to the first sub-instance with unused quota; [None] means
   every quota is exhausted but actual work remains (possible only
   within the repair tolerance — the residue then runs at maximum
   speed). *)
let current_sub (schedule : Static_schedule.t) st =
  while st.quota_remaining <= tiny && st.sub_pos < Array.length st.subs - 1 do
    st.sub_pos <- st.sub_pos + 1;
    st.quota_remaining <- schedule.Static_schedule.quotas.(st.subs.(st.sub_pos))
  done;
  if st.quota_remaining > tiny then Some st.subs.(st.sub_pos) else None

(* Budget-enforced readiness (the paper's model): an instance may only
   execute its current sub-instance once that sub-instance's segment
   has been released — a task whose quota is exhausted suspends until
   its next segment, leaving the planned room to lower-priority
   tasks. *)
let ready_time (schedule : Static_schedule.t) st =
  if st.remaining <= tiny then infinity
  else
    match current_sub schedule st with
    | Some k -> schedule.Static_schedule.plan.Plan.order.(k).Sub.release
    | None -> st.release

type transition = { time_per_volt : float; energy_per_volt : float }

let run_traced ?transition ~(schedule : Static_schedule.t) ~policy ~totals () =
  let spans = ref [] in
  let last_voltage = ref Float.nan in
  let plan = schedule.Static_schedule.plan in
  let power = schedule.Static_schedule.power in
  let static_v = Policy.worst_case_voltages schedule in
  let states = build_instances schedule ~totals in
  let energy = ref 0. in
  let now = ref 0. in
  let guard = ref (10_000 + (100 * Array.length states * Array.length plan.Plan.order)) in
  let running = ref true in
  let pick_ready () =
    Array.fold_left
      (fun best st ->
        if st.remaining > tiny && ready_time schedule st <= !now +. tiny then
          match best with
          | None -> Some st
          | Some b ->
            if st.task < b.task || (st.task = b.task && st.instance < b.instance)
            then Some st
            else best
        else best)
      None states
  in
  let next_event ~pred =
    Array.fold_left
      (fun acc st ->
        let r = ready_time schedule st in
        if pred st && r > !now +. tiny then Float.min acc r else acc)
      infinity states
  in
  while !running && !guard > 0 do
    decr guard;
    match pick_ready () with
    | None ->
      let next = next_event ~pred:(fun _ -> true) in
      if Float.is_finite next then now := next else running := false
    | Some st ->
      let v, cycles_target =
        match current_sub schedule st with
        | Some k ->
          ( Policy.dispatch_voltage policy ~schedule ~static_v ~sub:k ~now:!now
              ~quota_remaining:st.quota_remaining,
            Float.min st.remaining st.quota_remaining )
        | None -> (power.Model.v_max, st.remaining)
      in
      (* Voltage-transition overhead: stall and pay for the swing. *)
      (match transition with
      | Some { time_per_volt; energy_per_volt }
        when (not (Float.is_nan !last_voltage)) && Float.abs (v -. !last_voltage) > 1e-9
        ->
        let dv = Float.abs (v -. !last_voltage) in
        energy := !energy +. (energy_per_volt *. dv);
        now := !now +. (time_per_volt *. dv)
      | Some _ | None -> ());
      last_voltage := v;
      let cycle_time = Model.cycle_time power ~v in
      let time_needed = cycles_target *. cycle_time in
      (* A strictly higher-priority instance becoming ready preempts. *)
      let preempt_at = next_event ~pred:(fun other -> other.task < st.task) in
      let run_until = Float.min (!now +. time_needed) preempt_at in
      let executed =
        if run_until >= !now +. time_needed then cycles_target
        else (run_until -. !now) /. cycle_time
      in
      energy := !energy +. Model.energy power ~v ~cycles:executed;
      if run_until > !now then
        spans :=
          { Trace.task = st.task; instance = st.instance; from_time = !now;
            to_time = run_until; voltage = v }
          :: !spans;
      st.remaining <- st.remaining -. executed;
      st.quota_remaining <- st.quota_remaining -. executed;
      now := run_until;
      if st.remaining <= tiny then begin
        st.remaining <- 0.;
        st.finish <- !now
      end
  done;
  let finish_times =
    Array.map (Array.map (fun _ -> Float.nan)) plan.Plan.instance_subs
  in
  let misses = ref 0 in
  Array.iter
    (fun st ->
      finish_times.(st.task).(st.instance) <- st.finish;
      if Float.is_nan st.finish || st.finish > st.deadline +. (1e-6 *. st.deadline)
      then incr misses)
    states;
  ( { Outcome.energy = !energy; deadline_misses = !misses; finish_times },
    { Trace.spans = List.rev !spans; horizon = Plan.hyper_period plan } )

let run ?transition ~schedule ~policy ~totals () =
  fst (run_traced ?transition ~schedule ~policy ~totals ())
