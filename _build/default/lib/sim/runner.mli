(** Multi-hyper-period simulation driver.

    Frame-based systems restart identically every hyper-period (all
    instances complete within it), so rounds are independent draws of
    the per-instance workloads. *)

type summary = {
  rounds : int;
  mean_energy : float;  (** per hyper-period *)
  stddev_energy : float;
  min_energy : float;
  max_energy : float;
  deadline_misses : int;  (** summed over all rounds *)
}

val simulate :
  ?rounds:int ->
  ?dist:Sampler.distribution ->
  schedule:Lepts_core.Static_schedule.t ->
  policy:Lepts_dvs.Policy.t ->
  rng:Lepts_prng.Xoshiro256.t ->
  unit ->
  summary
(** [simulate ~schedule ~policy ~rng ()] runs [rounds] (default 1000,
    the paper's setting) hyper-periods through {!Event_sim} with fresh
    workload draws from [dist] (default the paper's truncated
    normal). *)

val pp_summary : Format.formatter -> summary -> unit
