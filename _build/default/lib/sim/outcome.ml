type t = {
  energy : float;
  deadline_misses : int;
  finish_times : float array array;
}

let completed t = t.deadline_misses = 0

let pp ppf t =
  Format.fprintf ppf "energy=%g misses=%d" t.energy t.deadline_misses
