(** Event-driven rate-monotonic simulation of one hyper-period with
    online DVS.

    This is the ground truth for the experiments: a preemptive
    dispatcher where the running instance executes its sub-instance
    quotas in order and the online {!Lepts_dvs.Policy} picks the
    voltage at every dispatch (start {e and} resume).

    Scheduling is {e budget-enforced} rate-monotonic, matching the
    paper's formulation (its [s >= r] constraints): an instance may
    execute its current sub-instance only once that sub-instance's
    segment is released, so a task whose current quota is exhausted
    suspends until its next segment instead of stealing the room the
    static schedule reserved for lower-priority tasks. Without this
    rule a higher-priority task running ahead of its plan can push a
    lower-priority task past its worst-case window and break the
    deadline guarantee (the test suite demonstrates this).

    Under budget enforcement the event-driven execution coincides with
    the closed-form {!Sequence} executor whenever both are given the
    same per-instance workloads — a property the tests check — but this
    module makes no such assumption and remains correct for policies
    other than greedy reclamation. *)

type transition = {
  time_per_volt : float;  (** stall per volt of voltage change (ms/V) *)
  energy_per_volt : float;  (** switching energy per volt of change *)
}
(** Voltage-transition overhead model. The paper ignores transitions
    ("the increase of energy consumption is negligible when the
    transition time is small comparing with the task execution time",
    citing Mochocki et al.); passing a [transition] lets the simulator
    quantify that claim: every change of the supply voltage stalls the
    processor for [time_per_volt * |dV|] and costs
    [energy_per_volt * |dV|]. *)

val run :
  ?transition:transition ->
  schedule:Lepts_core.Static_schedule.t ->
  policy:Lepts_dvs.Policy.t ->
  totals:float array array ->
  unit ->
  Outcome.t
(** [run ~schedule ~policy ~totals] executes one hyper-period in which
    instance [(i, j)] requires [totals.(i).(j)] actual cycles
    (necessarily [<= wcec_i] for the guarantees to hold; larger values
    are capped at the quota sum, matching hardware that enforces
    worst-case budgets). Deadline misses are recorded, not fatal. *)

val run_traced :
  ?transition:transition ->
  schedule:Lepts_core.Static_schedule.t ->
  policy:Lepts_dvs.Policy.t ->
  totals:float array array ->
  unit ->
  Outcome.t * Trace.t
(** Like {!run}, additionally recording every execution span (task,
    interval, voltage) for visualisation and debugging. *)
