lib/sim/outcome.ml: Format
