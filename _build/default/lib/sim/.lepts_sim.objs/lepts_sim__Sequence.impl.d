lib/sim/sequence.ml: Array Float Lepts_core Lepts_preempt Lepts_task Outcome
