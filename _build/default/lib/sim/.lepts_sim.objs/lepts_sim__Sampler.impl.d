lib/sim/sampler.ml: Array Lepts_preempt Lepts_prng Lepts_task
