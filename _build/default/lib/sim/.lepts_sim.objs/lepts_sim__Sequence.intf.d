lib/sim/sequence.mli: Lepts_core Outcome
