lib/sim/outcome.mli: Format
