lib/sim/runner.ml: Array Event_sim Format Lepts_core Lepts_util Outcome Sampler
