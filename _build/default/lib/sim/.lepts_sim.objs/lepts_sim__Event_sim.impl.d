lib/sim/event_sim.ml: Array Float Lepts_core Lepts_dvs Lepts_power Lepts_preempt Lepts_task List Outcome Trace
