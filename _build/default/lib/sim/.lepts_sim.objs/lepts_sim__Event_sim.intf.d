lib/sim/event_sim.mli: Lepts_core Lepts_dvs Outcome Trace
