lib/sim/runner.mli: Format Lepts_core Lepts_dvs Lepts_prng Sampler
