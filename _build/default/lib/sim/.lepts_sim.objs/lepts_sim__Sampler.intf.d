lib/sim/sampler.mli: Lepts_preempt Lepts_prng
