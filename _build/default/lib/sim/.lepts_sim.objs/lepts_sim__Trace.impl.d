lib/sim/trace.ml: Array Bytes Char Float Format List String
