(** Execution traces: what ran when, and at which voltage.

    Produced by {!Event_sim.run_traced}; useful for debugging schedules
    and for the examples' visualisations. *)

type span = {
  task : int;  (** priority level *)
  instance : int;
  from_time : float;
  to_time : float;
  voltage : float;
}

type t = { spans : span list;  (** in increasing start order *) horizon : float }

val busy_time : t -> float
(** Total processor-busy time. *)

val energy : t -> c_eff:float -> float
(** Energy recomputed from the spans (cross-check against the
    simulator's accounting): [sum c_eff * v^2 * cycles] where cycles
    follow from span length and voltage under the ideal model is not
    assumed — this uses [v^2 * (span length) * v / c0]... — instead the
    simulator's own per-span cycle count is not stored, so this is
    provided for the {e ideal} model only via [cycles = v * dt / c0]
    with [c0 = 1]. Use the simulator outcome for authoritative
    energy. *)

val utilization : t -> float
(** [busy_time / horizon]. *)

val pp_gantt : ?width:int -> n_tasks:int -> Format.formatter -> t -> unit
(** ASCII Gantt chart, one row per task, [width] columns (default 72)
    spanning the horizon. Cells show a digit proportional to the span's
    voltage ('1'..'9' after normalising to the maximum voltage seen),
    '.' for idle. *)
