(** Order-faithful executor: runs the hyper-period assuming the
    fully-preemptive total order is followed exactly (each sub-instance
    waits for its segment release).

    This is the closed-form model the NLP objective optimises — on the
    ACEC workload its energy equals
    [Static_schedule.predicted_energy ~mode:Average] to machine
    precision, which the test suite exploits. The event-driven
    {!Event_sim} is the ground truth used by the experiments. *)

val run :
  schedule:Lepts_core.Static_schedule.t ->
  totals:float array array ->
  Outcome.t
(** Greedy-reclamation execution in total order (only the greedy
    policy is meaningful here; use {!Event_sim} for others). *)
