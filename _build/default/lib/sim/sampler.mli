(** Actual-workload sampling for simulation.

    Following the paper's §4, the execution cycles of each task
    instance vary between BCEC and WCEC as a normal distribution with
    mean ACEC; we use sigma = (WCEC - BCEC) / 6 so the truncation
    interval spans ±3 sigma (see {!Lepts_task.Task.sigma}). *)

type distribution =
  | Truncated_normal
      (** the paper's §4 protocol: N(ACEC, sigma) truncated to
          [[BCEC, WCEC]] *)
  | Uniform  (** uniform on [[BCEC, WCEC]] *)
  | Bimodal of { p_large : float }
      (** the paper's {e motivation} ("tasks that normally require a
          small number of cycles but occasionally a large number"):
          with probability [p_large] draw near the WCEC (uniform on the
          top decile of [[BCEC, WCEC]]), otherwise near the BCEC
          (uniform on the bottom quartile) *)

val instance_totals :
  ?dist:distribution ->
  Lepts_preempt.Plan.t ->
  rng:Lepts_prng.Xoshiro256.t ->
  float array array
(** One fresh draw of actual cycles for every instance in the
    hyper-period, indexed [.(task).(instance)]. [dist] defaults to
    [Truncated_normal]. *)

val fixed : Lepts_preempt.Plan.t -> value:[ `Acec | `Wcec | `Bcec ] -> float array array
(** Deterministic workloads: every instance takes exactly the given
    per-task statistic. Used for sanity experiments and tests. *)
