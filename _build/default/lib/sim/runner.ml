type summary = {
  rounds : int;
  mean_energy : float;
  stddev_energy : float;
  min_energy : float;
  max_energy : float;
  deadline_misses : int;
}

let simulate ?(rounds = 1000) ?dist ~schedule ~policy ~rng () =
  if rounds <= 0 then invalid_arg "Runner.simulate: rounds must be positive";
  let plan = schedule.Lepts_core.Static_schedule.plan in
  let energies = Array.make rounds 0. in
  let misses = ref 0 in
  for r = 0 to rounds - 1 do
    let totals = Sampler.instance_totals ?dist plan ~rng in
    let outcome = Event_sim.run ~schedule ~policy ~totals () in
    energies.(r) <- outcome.Outcome.energy;
    misses := !misses + outcome.Outcome.deadline_misses
  done;
  let min_energy, max_energy = Lepts_util.Stats.min_max energies in
  { rounds;
    mean_energy = Lepts_util.Stats.mean energies;
    stddev_energy = Lepts_util.Stats.stddev energies;
    min_energy; max_energy;
    deadline_misses = !misses }

let pp_summary ppf s =
  Format.fprintf ppf "rounds=%d mean=%.4g sd=%.3g min=%.4g max=%.4g misses=%d"
    s.rounds s.mean_energy s.stddev_energy s.min_energy s.max_energy s.deadline_misses
