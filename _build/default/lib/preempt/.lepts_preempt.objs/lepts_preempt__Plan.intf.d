lib/preempt/plan.mli: Format Lepts_task Sub_instance
