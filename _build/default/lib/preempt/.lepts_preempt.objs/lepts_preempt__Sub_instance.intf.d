lib/preempt/sub_instance.mli: Format
