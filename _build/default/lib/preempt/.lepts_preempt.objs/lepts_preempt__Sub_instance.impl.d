lib/preempt/sub_instance.ml: Format Printf
