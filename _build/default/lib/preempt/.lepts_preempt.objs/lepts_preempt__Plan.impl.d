lib/preempt/plan.ml: Array Float Format Int Lepts_task List Set Sub_instance
