type t = {
  index : int;
  task : int;
  instance : int;
  segment : int;
  release : float;
  boundary : float;
  deadline : float;
}

let label t = Printf.sprintf "T%d.%d.%d" (t.task + 1) (t.instance + 1) (t.segment + 1)

let pp ppf t =
  Format.fprintf ppf "%s[%g,%g)@@%g" (label t) t.release t.boundary t.deadline
