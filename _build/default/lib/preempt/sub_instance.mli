(** A sub-instance of a task instance in the fully preemptive schedule.

    The fully preemptive schedule (paper Figs 3–4) splits every task
    instance at each release of a higher-priority task strictly inside
    its [[release, deadline)] window, because with voltage scaling the
    instance {e may} be executing at any point of its window and would
    be preempted there. Each resulting segment is a sub-instance
    [T_{i,j,k}]; the static schedule assigns it an end-time and a
    worst-case workload quota. *)

type t = {
  index : int;  (** position in the total order (0-based) *)
  task : int;  (** priority level of the parent task (0 = highest) *)
  instance : int;  (** instance number of the parent task (0-based) *)
  segment : int;  (** sub-instance number within the instance (0-based) *)
  release : float;  (** segment start: earliest time it may execute *)
  boundary : float;  (** segment end: a release of a higher-priority
                         task (or the parent deadline); the static
                         end-time must not exceed it *)
  deadline : float;  (** absolute deadline of the parent instance *)
}

val pp : Format.formatter -> t -> unit

val label : t -> string
(** ["T3.1.2"]-style identifier (1-based, matching the paper's
    notation). *)
