(** Non-linear program description.

    A problem has the shape

    {v
      minimise    f(x)
      subject to  g_i(x) <= 0        (inequality constraints)
                  x in S             (set with cheap projection)
    v}

    Equality constraints are expressed as pairs of inequalities or,
    preferably, folded into the projection (the scheduling NLPs put the
    per-instance workload-sum equalities in the projection as simplex
    blocks).

    Constraint gradients use an accumulation interface so that sparse
    constraints (the scheduling NLPs have thousands of 2–3-coefficient
    linear constraints) cost O(nnz), not O(dim), inside the solver. *)

type constraint_ = {
  name : string;  (** for diagnostics *)
  value : Lepts_linalg.Vec.t -> float;  (** g(x); feasible iff <= 0 *)
  add_gradient : x:Lepts_linalg.Vec.t -> scale:float -> into:Lepts_linalg.Vec.t -> unit;
      (** [add_gradient ~x ~scale ~into] performs
          [into <- into + scale * grad g(x)]. *)
}

type t = {
  dim : int;
  objective : Lepts_linalg.Vec.t -> float;
  gradient : Lepts_linalg.Vec.t -> Lepts_linalg.Vec.t;
  inequalities : constraint_ list;
  project : Lepts_linalg.Vec.t -> Lepts_linalg.Vec.t;
}

val unconstrained :
  dim:int ->
  objective:(Lepts_linalg.Vec.t -> float) ->
  gradient:(Lepts_linalg.Vec.t -> Lepts_linalg.Vec.t) ->
  t
(** Problem with no inequalities and the identity projection. *)

val with_numerical_gradient :
  dim:int ->
  objective:(Lepts_linalg.Vec.t -> float) ->
  ?inequalities:constraint_ list ->
  ?project:(Lepts_linalg.Vec.t -> Lepts_linalg.Vec.t) ->
  unit ->
  t
(** Convenience constructor that differentiates the objective
    numerically (central differences). Intended for tests and the
    paper-literal formulation; production paths supply analytic
    gradients. *)

val linear_constraint :
  name:string -> coeffs:(int * float) list -> bound:float -> constraint_
(** [linear_constraint ~coeffs ~bound] is the constraint
    [sum_i c_i * x_i <= bound] written with a sparse coefficient
    list. *)

val nonlinear_constraint :
  name:string ->
  value:(Lepts_linalg.Vec.t -> float) ->
  gradient:(Lepts_linalg.Vec.t -> Lepts_linalg.Vec.t) ->
  constraint_
(** Wrap a dense-gradient constraint in the accumulation interface. *)

val constraint_gradient : constraint_ -> Lepts_linalg.Vec.t -> Lepts_linalg.Vec.t
(** Dense gradient of one constraint (testing helper). *)

val max_violation : t -> Lepts_linalg.Vec.t -> float
(** Largest positive constraint value at [x] (0 when feasible). *)
