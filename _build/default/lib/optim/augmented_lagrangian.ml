module Vec = Lepts_linalg.Vec

type report = {
  x : Vec.t;
  value : float;
  max_violation : float;
  outer_iterations : int;
  inner_iterations : int;
  converged : bool;
}

let log_src = Logs.Src.create "lepts.optim.al" ~doc:"augmented Lagrangian solver"

module Log = (val Logs.src_log log_src : Logs.LOG)

let solve ?(max_outer = 30) ?(max_inner = 1500) ?(feas_tol = 1e-7) ?(step_tol = 1e-10)
    ?(mu0 = 10.) ?(mu_growth = 5.) (problem : Nlp.t) ~x0 =
  let constraints = Array.of_list problem.inequalities in
  let m = Array.length constraints in
  if m = 0 then begin
    let r =
      Projected_gradient.minimize ~max_iter:max_inner ~tol:step_tol
        ~f:problem.objective ~grad:problem.gradient ~project:problem.project ~x0 ()
    in
    { x = r.x; value = r.value; max_violation = 0.;
      outer_iterations = 0; inner_iterations = r.iterations; converged = r.converged }
  end
  else begin
    let lambda = Array.make m 0. in
    let mu = ref mu0 in
    let x = ref (problem.project (Vec.copy x0)) in
    let inner_total = ref 0 in
    let outer = ref 0 in
    let violation = ref infinity in
    let finished = ref false in
    while (not !finished) && !outer < max_outer do
      incr outer;
      let mu_now = !mu in
      let lag x =
        let acc = ref (problem.objective x) in
        for i = 0 to m - 1 do
          let t = lambda.(i) +. (mu_now *. constraints.(i).value x) in
          if t > 0. then
            acc := !acc +. (((t *. t) -. (lambda.(i) *. lambda.(i))) /. (2. *. mu_now))
          else acc := !acc -. (lambda.(i) *. lambda.(i) /. (2. *. mu_now))
        done;
        !acc
      in
      let lag_grad x =
        let g = problem.gradient x in
        for i = 0 to m - 1 do
          let t = lambda.(i) +. (mu_now *. constraints.(i).value x) in
          if t > 0. then constraints.(i).add_gradient ~x ~scale:t ~into:g
        done;
        g
      in
      let r =
        Projected_gradient.minimize ~max_iter:max_inner ~tol:step_tol ~f:lag
          ~grad:lag_grad ~project:problem.project ~x0:!x ()
      in
      inner_total := !inner_total + r.iterations;
      x := r.x;
      let previous_violation = !violation in
      violation := 0.;
      for i = 0 to m - 1 do
        let gi = constraints.(i).value !x in
        violation := Float.max !violation gi;
        lambda.(i) <- Float.max 0. (lambda.(i) +. (mu_now *. gi))
      done;
      Log.debug (fun f ->
          f "outer %d: f=%g violation=%g mu=%g" !outer (problem.objective !x)
            !violation mu_now);
      if !violation <= feas_tol then finished := true
      else if !violation > 0.5 *. previous_violation then mu := !mu *. mu_growth
    done;
    { x = !x; value = problem.objective !x; max_violation = !violation;
      outer_iterations = !outer; inner_iterations = !inner_total;
      converged = !violation <= feas_tol }
  end
