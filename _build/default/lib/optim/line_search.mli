(** Backtracking line searches. *)

type result = { step : float; value : float; evals : int }

val backtracking :
  ?c1:float ->
  ?shrink:float ->
  ?max_steps:int ->
  f:(Lepts_linalg.Vec.t -> float) ->
  x:Lepts_linalg.Vec.t ->
  fx:float ->
  dir:Lepts_linalg.Vec.t ->
  slope:float ->
  init:float ->
  unit ->
  result option
(** Armijo backtracking: starting from step [init], shrink by [shrink]
    (default 0.5) until
    [f (x + step * dir) <= fx + c1 * step * slope]
    where [slope] must be the directional derivative [grad f . dir] and
    negative. Returns [None] if no acceptable step is found within
    [max_steps] (default 40) halvings. *)
