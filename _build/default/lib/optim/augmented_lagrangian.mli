(** Augmented-Lagrangian method for inequality-constrained NLPs.

    For a problem [min f(x) s.t. g_i(x) <= 0, x in S] the augmented
    Lagrangian (Rockafellar form) is

    {v
      L(x; lambda, mu) =
        f(x) + 1/(2 mu) * sum_i ( max(0, lambda_i + mu g_i(x))^2
                                  - lambda_i^2 )
    v}

    Each outer iteration minimises [L] over [S] with the projected
    spectral-gradient inner solver, then updates the multipliers
    [lambda_i <- max (0, lambda_i + mu g_i(x))] and increases the
    penalty [mu] when feasibility stalls. *)

type report = {
  x : Lepts_linalg.Vec.t;
  value : float;  (** original objective at [x] *)
  max_violation : float;  (** largest positive g_i(x) *)
  outer_iterations : int;
  inner_iterations : int;  (** total over all outer rounds *)
  converged : bool;  (** feasibility and inner tolerance both met *)
}

val solve :
  ?max_outer:int ->
  ?max_inner:int ->
  ?feas_tol:float ->
  ?step_tol:float ->
  ?mu0:float ->
  ?mu_growth:float ->
  Nlp.t ->
  x0:Lepts_linalg.Vec.t ->
  report
(** Defaults: [max_outer = 30], [max_inner = 1500] (per outer round),
    [feas_tol = 1e-7], [step_tol = 1e-10], [mu0 = 10.],
    [mu_growth = 5.]. Problems with no inequality constraints collapse
    to a single projected-gradient solve. *)
