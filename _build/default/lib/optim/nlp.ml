module Vec = Lepts_linalg.Vec

type constraint_ = {
  name : string;
  value : Vec.t -> float;
  add_gradient : x:Vec.t -> scale:float -> into:Vec.t -> unit;
}

type t = {
  dim : int;
  objective : Vec.t -> float;
  gradient : Vec.t -> Vec.t;
  inequalities : constraint_ list;
  project : Vec.t -> Vec.t;
}

let unconstrained ~dim ~objective ~gradient =
  { dim; objective; gradient; inequalities = []; project = Fun.id }

let with_numerical_gradient ~dim ~objective ?(inequalities = []) ?(project = Fun.id) () =
  { dim; objective;
    gradient = (fun x -> Numdiff.gradient ~f:objective x);
    inequalities; project }

let linear_constraint ~name ~coeffs ~bound =
  let value x =
    List.fold_left (fun acc (i, c) -> acc +. (c *. x.(i))) (-.bound) coeffs
  in
  let add_gradient ~x:_ ~scale ~into =
    List.iter (fun (i, c) -> into.(i) <- into.(i) +. (scale *. c)) coeffs
  in
  { name; value; add_gradient }

let nonlinear_constraint ~name ~value ~gradient =
  let add_gradient ~x ~scale ~into = Vec.axpy_ip scale (gradient x) ~into in
  { name; value; add_gradient }

let constraint_gradient c x =
  let g = Vec.zeros (Vec.dim x) in
  c.add_gradient ~x ~scale:1. ~into:g;
  g

let max_violation t x =
  List.fold_left (fun acc c -> Float.max acc (c.value x)) 0. t.inequalities
