module Vec = Lepts_linalg.Vec

type report = {
  x : Vec.t;
  value : float;
  gradient_norm : float;
  iterations : int;
  converged : bool;
}

(* Standard two-loop recursion over the [m] most recent (s, y) pairs.
   [pairs] is ordered most recent first. *)
let two_loop pairs g =
  match pairs with
  | [] -> Vec.scale (-1.) g
  | (s_last, y_last) :: _ ->
    let q = Vec.copy g in
    let alphas =
      List.map
        (fun (s, y) ->
          let rho = 1. /. Vec.dot y s in
          let alpha = rho *. Vec.dot s q in
          Vec.axpy_ip (-.alpha) y ~into:q;
          (alpha, rho, s, y))
        pairs
    in
    let gamma = Vec.dot s_last y_last /. Vec.dot y_last y_last in
    let r = Vec.scale gamma q in
    List.iter
      (fun (alpha, rho, s, y) ->
        let beta = rho *. Vec.dot y r in
        Vec.axpy_ip (alpha -. beta) s ~into:r)
      (List.rev alphas);
    Vec.scale (-1.) r

let minimize ?(memory = 8) ?(max_iter = 500) ?(grad_tol = 1e-8) ~f ~grad ~x0 () =
  let x = ref (Vec.copy x0) in
  let fx = ref (f !x) in
  let g = ref (grad !x) in
  let pairs = ref [] in
  let iterations = ref 0 in
  let converged = ref (Vec.norm_inf !g <= grad_tol) in
  (try
     while (not !converged) && !iterations < max_iter do
       incr iterations;
       let dir =
         let d = two_loop !pairs !g in
         if Vec.dot d !g < 0. then d else Vec.scale (-1.) !g
       in
       let slope = Vec.dot dir !g in
       let init = if !pairs = [] then 1. /. Float.max 1. (Vec.norm2 !g) else 1. in
       match Line_search.backtracking ~f ~x:!x ~fx:!fx ~dir ~slope ~init () with
       | None -> raise Exit
       | Some { step; value; _ } ->
         let x_next = Vec.axpy step dir !x in
         let g_next = grad x_next in
         let s = Vec.sub x_next !x in
         let y = Vec.sub g_next !g in
         if Vec.dot s y > 1e-12 *. Vec.norm2 s *. Vec.norm2 y then begin
           pairs := (s, y) :: !pairs;
           if List.length !pairs > memory then
             pairs := List.filteri (fun i _ -> i < memory) !pairs
         end;
         x := x_next;
         fx := value;
         g := g_next;
         converged := Vec.norm_inf !g <= grad_tol
     done
   with Exit -> ());
  { x = !x; value = !fx; gradient_norm = Vec.norm_inf !g;
    iterations = !iterations; converged = !converged }
