(** Euclidean projections onto the feasible sets used by the scheduler
    NLPs. *)

val box : lo:Lepts_linalg.Vec.t -> hi:Lepts_linalg.Vec.t -> Lepts_linalg.Vec.t -> Lepts_linalg.Vec.t
(** Componentwise clamp onto [{x : lo <= x <= hi}]. Requires
    [lo.(i) <= hi.(i)] for all [i]. *)

val simplex : total:float -> Lepts_linalg.Vec.t -> Lepts_linalg.Vec.t
(** Projection onto the scaled simplex [{x : x >= 0, sum x = total}]
    (Held, Wolfe & Crowder; the standard sort-based O(n log n)
    algorithm). Requires [total >= 0.] and a non-empty vector. *)

val blocks :
  (Lepts_linalg.Vec.t -> Lepts_linalg.Vec.t) array ->
  offsets:(int * int) array ->
  Lepts_linalg.Vec.t ->
  Lepts_linalg.Vec.t
(** [blocks projs ~offsets x] applies [projs.(k)] to the slice
    [x.[off, off+len)] given by [offsets.(k) = (off, len)]. Slices must
    be disjoint; coordinates not covered by any slice pass through
    unchanged. *)
