(** Limited-memory BFGS for smooth unconstrained minimisation.

    Used for the unconstrained inner problems and as a reference solver
    in tests. For the constrained scheduling NLPs see
    {!Projected_gradient} and {!Augmented_lagrangian}. *)

type report = {
  x : Lepts_linalg.Vec.t;  (** final iterate *)
  value : float;  (** objective at [x] *)
  gradient_norm : float;  (** infinity norm of the gradient at [x] *)
  iterations : int;
  converged : bool;  (** [true] iff the gradient tolerance was met *)
}

val minimize :
  ?memory:int ->
  ?max_iter:int ->
  ?grad_tol:float ->
  f:(Lepts_linalg.Vec.t -> float) ->
  grad:(Lepts_linalg.Vec.t -> Lepts_linalg.Vec.t) ->
  x0:Lepts_linalg.Vec.t ->
  unit ->
  report
(** Two-loop-recursion L-BFGS with Armijo backtracking. [memory]
    defaults to 8, [max_iter] to 500, [grad_tol] to [1e-8] (infinity
    norm). Falls back to steepest descent whenever the L-BFGS direction
    is not a descent direction. *)
