module Vec = Lepts_linalg.Vec

type result = { step : float; value : float; evals : int }

let backtracking ?(c1 = 1e-4) ?(shrink = 0.5) ?(max_steps = 40) ~f ~x ~fx ~dir ~slope
    ~init () =
  if slope >= 0. then None
  else
    let rec go step evals =
      if evals > max_steps then None
      else
        let candidate = Vec.axpy step dir x in
        let value = f candidate in
        if Float.is_finite value && value <= fx +. (c1 *. step *. slope) then
          Some { step; value; evals }
        else go (step *. shrink) (evals + 1)
    in
    go init 1
