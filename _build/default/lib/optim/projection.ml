module Vec = Lepts_linalg.Vec

let box ~lo ~hi x =
  if Vec.dim lo <> Vec.dim x || Vec.dim hi <> Vec.dim x then
    invalid_arg "Projection.box: dimension mismatch";
  Array.mapi
    (fun i v ->
      assert (lo.(i) <= hi.(i));
      Lepts_util.Num_ext.clamp ~lo:lo.(i) ~hi:hi.(i) v)
    x

(* Sort-based simplex projection: find the threshold tau such that
   sum max(0, x_i - tau) = total, then shift-and-clip. *)
let simplex ~total x =
  if total < 0. then invalid_arg "Projection.simplex: negative total";
  let n = Vec.dim x in
  if n = 0 then invalid_arg "Projection.simplex: empty vector";
  let sorted = Array.copy x in
  Array.sort (fun a b -> Float.compare b a) sorted;
  let cumulative = ref 0. and tau = ref ((sorted.(0) -. total)) and k = ref 1 in
  (for i = 0 to n - 1 do
     cumulative := !cumulative +. sorted.(i);
     let candidate = (!cumulative -. total) /. float_of_int (i + 1) in
     if sorted.(i) > candidate then begin
       tau := candidate;
       k := i + 1
     end
   done);
  ignore !k;
  Array.map (fun v -> Float.max 0. (v -. !tau)) x

let blocks projs ~offsets x =
  if Array.length projs <> Array.length offsets then
    invalid_arg "Projection.blocks: arity mismatch";
  let out = Vec.copy x in
  Array.iteri
    (fun kidx (off, len) ->
      if off < 0 || len < 0 || off + len > Vec.dim x then
        invalid_arg "Projection.blocks: slice out of range";
      let slice = Array.sub x off len in
      let projected = projs.(kidx) slice in
      if Array.length projected <> len then
        invalid_arg "Projection.blocks: projection changed slice length";
      Array.blit projected 0 out off len)
    offsets;
  out
