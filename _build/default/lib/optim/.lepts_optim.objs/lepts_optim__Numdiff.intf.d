lib/optim/numdiff.mli: Lepts_linalg
