lib/optim/nlp.ml: Array Float Fun Lepts_linalg List Numdiff
