lib/optim/line_search.mli: Lepts_linalg
