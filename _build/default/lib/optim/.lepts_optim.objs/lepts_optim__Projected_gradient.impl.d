lib/optim/projected_gradient.ml: Array Float Lepts_linalg
