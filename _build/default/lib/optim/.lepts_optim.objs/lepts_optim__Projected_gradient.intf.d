lib/optim/projected_gradient.mli: Lepts_linalg
