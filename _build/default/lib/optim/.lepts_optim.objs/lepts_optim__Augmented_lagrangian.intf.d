lib/optim/augmented_lagrangian.mli: Lepts_linalg Nlp
