lib/optim/projection.ml: Array Float Lepts_linalg Lepts_util
