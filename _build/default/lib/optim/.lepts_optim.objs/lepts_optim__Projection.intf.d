lib/optim/projection.mli: Lepts_linalg
