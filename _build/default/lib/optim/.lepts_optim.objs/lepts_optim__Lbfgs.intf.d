lib/optim/lbfgs.mli: Lepts_linalg
