lib/optim/augmented_lagrangian.ml: Array Float Lepts_linalg Logs Nlp Projected_gradient
