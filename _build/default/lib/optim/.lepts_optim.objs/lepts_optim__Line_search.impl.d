lib/optim/line_search.ml: Float Lepts_linalg
