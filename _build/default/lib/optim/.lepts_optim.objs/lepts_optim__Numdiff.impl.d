lib/optim/numdiff.ml: Array Float Lepts_linalg
