lib/optim/nlp.mli: Lepts_linalg
