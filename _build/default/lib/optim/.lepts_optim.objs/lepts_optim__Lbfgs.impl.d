lib/optim/lbfgs.ml: Float Lepts_linalg Line_search List
