module Plan = Lepts_preempt.Plan
module Solver = Lepts_core.Solver
module Static_schedule = Lepts_core.Static_schedule
module Policy = Lepts_dvs.Policy
module Runner = Lepts_sim.Runner
module Rng = Lepts_prng.Xoshiro256

type cell = {
  schedule : string;
  policy : Policy.t;
  mean_energy : float;
  misses : int;
}

let run ?(rounds = 500) ~task_set ~power ~seed () =
  let plan = Plan.expand task_set in
  match Solver.solve_wcs ~plan ~power () with
  | Error _ as err -> err
  | Ok (wcs, _) -> (
    let warm = [ (wcs.Static_schedule.end_times, wcs.Static_schedule.quotas) ] in
    match Solver.solve_acs ~warm_starts:warm ~plan ~power () with
    | Error _ as err -> err
    | Ok (acs, _) ->
      let cells =
        List.concat_map
          (fun (name, schedule) ->
            List.map
              (fun policy ->
                let summary =
                  Runner.simulate ~rounds ~schedule ~policy
                    ~rng:(Rng.create ~seed) ()
                in
                { schedule = name; policy;
                  mean_energy = summary.Runner.mean_energy;
                  misses = summary.Runner.deadline_misses })
              Policy.all)
          [ ("WCS", wcs); ("ACS", acs) ]
      in
      Ok cells)

let to_table cells =
  let table =
    Lepts_util.Table.create ~header:[ "schedule"; "policy"; "mean energy"; "misses" ]
  in
  List.iter
    (fun c ->
      Lepts_util.Table.add_row table
        [ c.schedule;
          Format.asprintf "%a" Policy.pp c.policy;
          Lepts_util.Table.float_cell ~decimals:1 c.mean_energy;
          string_of_int c.misses ])
    cells;
  table
