(** Ablations of the design choices DESIGN.md calls out.

    Each function runs one comparison on a given task set and returns a
    printable table:

    - {!formulations}: the production slack-parametrised NLP vs the
      paper-literal constrained formulation (predicted energy and
      solve time);
    - {!objectives}: ACS (ACEC point) vs the stochastic
      probability-weighted objective vs WCS, judged by simulated mean
      energy;
    - {!quantization}: continuous greedy reclamation vs discrete
      voltage levels of varying granularity;
    - {!structures}: preemptive vs non-preemptive plans on the same
      task set (where the non-preemptive one is schedulable), plus the
      YDS lower bound for context. *)

val formulations :
  task_set:Lepts_task.Task_set.t ->
  power:Lepts_power.Model.t ->
  (Lepts_util.Table.t, Lepts_core.Solver.error) result

val objectives :
  ?rounds:int ->
  task_set:Lepts_task.Task_set.t ->
  power:Lepts_power.Model.t ->
  seed:int ->
  unit ->
  (Lepts_util.Table.t, Lepts_core.Solver.error) result

val quantization :
  ?rounds:int ->
  ?steps:int list ->
  task_set:Lepts_task.Task_set.t ->
  power:Lepts_power.Model.t ->
  seed:int ->
  unit ->
  (Lepts_util.Table.t, Lepts_core.Solver.error) result

val structures :
  task_set:Lepts_task.Task_set.t ->
  power:Lepts_power.Model.t ->
  (Lepts_util.Table.t, Lepts_core.Solver.error) result
