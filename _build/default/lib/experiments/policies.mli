(** Ablation: how much of the saving comes from the online policy vs
    the offline schedule (the paper's Fig. 1(a) vs 1(b) contrast,
    generalised).

    For a single task set, measures the mean runtime energy of each
    (schedule, policy) pair over the same workload draws:

    - schedules: WCS and ACS;
    - policies: max-speed (no DVS), static worst-case voltages (offline
      DVS only), greedy reclamation (offline + online DVS). *)

type cell = {
  schedule : string;  (** "WCS" | "ACS" *)
  policy : Lepts_dvs.Policy.t;
  mean_energy : float;
  misses : int;
}

val run :
  ?rounds:int ->
  task_set:Lepts_task.Task_set.t ->
  power:Lepts_power.Model.t ->
  seed:int ->
  unit ->
  (cell list, Lepts_core.Solver.error) result

val to_table : cell list -> Lepts_util.Table.t
