lib/experiments/motivation.mli: Lepts_core Lepts_power Lepts_task Lepts_util
