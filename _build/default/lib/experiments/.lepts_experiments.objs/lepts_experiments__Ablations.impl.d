lib/experiments/ablations.ml: Lepts_core Lepts_dvs Lepts_power Lepts_preempt Lepts_prng Lepts_sim Lepts_util List Printf Unix
