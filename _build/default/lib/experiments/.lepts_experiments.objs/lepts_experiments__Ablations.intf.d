lib/experiments/ablations.mli: Lepts_core Lepts_power Lepts_task Lepts_util
