lib/experiments/policies.mli: Lepts_core Lepts_dvs Lepts_power Lepts_task Lepts_util
