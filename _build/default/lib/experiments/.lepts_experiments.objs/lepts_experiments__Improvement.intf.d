lib/experiments/improvement.mli: Format Lepts_core Lepts_power Lepts_task
