lib/experiments/fig6a.ml: Array Float Improvement Lepts_prng Lepts_util Lepts_workloads List Printf
