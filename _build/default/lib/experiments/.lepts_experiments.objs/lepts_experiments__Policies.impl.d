lib/experiments/policies.ml: Format Lepts_core Lepts_dvs Lepts_preempt Lepts_prng Lepts_sim Lepts_util List
