lib/experiments/fig6b.ml: Improvement Lepts_util Lepts_workloads List Printf
