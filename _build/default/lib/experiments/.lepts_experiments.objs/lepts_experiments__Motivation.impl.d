lib/experiments/motivation.ml: Array Lepts_core Lepts_dvs Lepts_power Lepts_preempt Lepts_task Lepts_util Printf String
