lib/experiments/utilization_sweep.mli: Lepts_power Lepts_task Lepts_util
