lib/experiments/distribution_sweep.mli: Lepts_core Lepts_power Lepts_sim Lepts_task Lepts_util
