lib/experiments/transition_sweep.mli: Lepts_core Lepts_power Lepts_task Lepts_util
