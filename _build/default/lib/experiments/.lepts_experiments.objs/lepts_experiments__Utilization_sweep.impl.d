lib/experiments/utilization_sweep.ml: Improvement Lepts_task Lepts_util List
