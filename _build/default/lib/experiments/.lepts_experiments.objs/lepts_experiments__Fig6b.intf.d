lib/experiments/fig6b.mli: Lepts_power Lepts_util
