lib/experiments/distribution_sweep.ml: Lepts_core Lepts_dvs Lepts_preempt Lepts_prng Lepts_sim Lepts_util List
