lib/experiments/fig6a.mli: Lepts_power Lepts_util
