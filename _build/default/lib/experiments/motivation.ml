module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Plan = Lepts_preempt.Plan
module Model = Lepts_power.Model
module Solver = Lepts_core.Solver
module Static_schedule = Lepts_core.Static_schedule
module Objective = Lepts_core.Objective
module Policy = Lepts_dvs.Policy

type report = {
  wcs_end_times : float array;
  acs_end_times : float array;
  wcs_avg_energy : float;
  acs_avg_energy : float;
  wcs_worst_energy : float;
  acs_worst_energy : float;
  improvement_pct : float;
  worst_penalty_pct : float;
  acs_worst_voltages : float array;
}

let task_set () =
  Task_set.create
    [ Task.create ~name:"task1" ~period:20 ~wcec:20. ~acec:10. ~bcec:0.;
      Task.create ~name:"task2" ~period:20 ~wcec:20. ~acec:10. ~bcec:0.;
      Task.create ~name:"task3" ~period:20 ~wcec:20. ~acec:10. ~bcec:0. ]

let power () = Model.ideal ~v_min:1. ~v_max:4. ~c0:1. ~c_eff:1. ()

let run () =
  let power = power () in
  let plan = Plan.expand (task_set ()) in
  match Solver.solve_wcs ~plan ~power () with
  | Error _ as err -> err
  | Ok (wcs, _) -> (
    let warm = [ (wcs.Static_schedule.end_times, wcs.Static_schedule.quotas) ] in
    match Solver.solve_acs ~warm_starts:warm ~plan ~power () with
    | Error _ as err -> err
    | Ok (acs, _) ->
      let avg s = Static_schedule.predicted_energy s ~mode:Objective.Average in
      let worst s = Static_schedule.predicted_energy s ~mode:Objective.Worst in
      let wcs_avg = avg wcs and acs_avg = avg acs in
      let wcs_worst = worst wcs and acs_worst = worst acs in
      Ok
        { wcs_end_times = Array.copy wcs.Static_schedule.end_times;
          acs_end_times = Array.copy acs.Static_schedule.end_times;
          wcs_avg_energy = wcs_avg;
          acs_avg_energy = acs_avg;
          wcs_worst_energy = wcs_worst;
          acs_worst_energy = acs_worst;
          improvement_pct = 100. *. (wcs_avg -. acs_avg) /. wcs_avg;
          worst_penalty_pct = 100. *. (acs_worst -. wcs_worst) /. wcs_worst;
          acs_worst_voltages = Policy.worst_case_voltages acs })

let to_table r =
  let table =
    Lepts_util.Table.create ~header:[ "quantity"; "WCS"; "ACS"; "paper" ]
  in
  let row name wcs acs paper = Lepts_util.Table.add_row table [ name; wcs; acs; paper ] in
  let ends e =
    String.concat "/" (Array.to_list (Array.map (Printf.sprintf "%.2f") e))
  in
  row "end-times (ms)" (ends r.wcs_end_times) (ends r.acs_end_times)
    "6.7/13.3/20 vs 10/15/20";
  row "avg-case energy" (Printf.sprintf "%.1f" r.wcs_avg_energy)
    (Printf.sprintf "%.1f" r.acs_avg_energy) "ACS ~24% lower";
  row "worst-case energy" (Printf.sprintf "%.1f" r.wcs_worst_energy)
    (Printf.sprintf "%.1f" r.acs_worst_energy) "ACS ~33% higher";
  row "improvement (avg)" "-" (Printf.sprintf "%.1f %%" r.improvement_pct) "24 %";
  row "penalty (worst)" "-" (Printf.sprintf "%.1f %%" r.worst_penalty_pct) "33 %";
  row "ACS worst voltages (V)" "-" (ends r.acs_worst_voltages) "2/4/4";
  table
