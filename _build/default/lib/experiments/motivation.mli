(** The paper's motivational example (Table 1, Figs 1–2).

    Three tasks sharing a 20 ms frame, each with WCEC 20 Mcycles and
    ACEC 10 Mcycles, on an ideal-delay processor with V in [1 V, 4 V]
    and unit constants. The reconstruction reproduces every number
    recoverable from the paper:

    - the optimal worst-case (WCS) schedule ends tasks at 6.67 / 13.33
      / 20 ms, all at 3 V, worst-case energy 540;
    - greedy reclamation under it on the average workload finishes
      tasks at 3.33 / 8.3 / 14.1 ms, energy ~159 (paper Fig. 1(b));
    - the ACS schedule ends tasks at 10 / 15 / 20 ms, average-case
      energy 120 — a ~24 % improvement (paper Fig. 2);
    - the same schedule under worst-case workloads needs 4 V for tasks
      2 and 3 and consumes 720 — a 33 % worst-case penalty (paper
      Fig. 1(c)). *)

type report = {
  wcs_end_times : float array;
  acs_end_times : float array;
  wcs_avg_energy : float;  (** greedy runtime on ACEC, WCS schedule *)
  acs_avg_energy : float;
  wcs_worst_energy : float;
  acs_worst_energy : float;
  improvement_pct : float;  (** average case, ACS vs WCS *)
  worst_penalty_pct : float;  (** worst case, ACS vs WCS *)
  acs_worst_voltages : float array;  (** per task, worst case *)
}

val task_set : unit -> Lepts_task.Task_set.t
val power : unit -> Lepts_power.Model.t

val run : unit -> (report, Lepts_core.Solver.error) result
val to_table : report -> Lepts_util.Table.t
