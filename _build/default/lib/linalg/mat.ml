type t = { rows : int; cols : int; data : float array }

let create ~rows ~cols x = { rows; cols; data = Array.make (rows * cols) x }

let identity n =
  let m = create ~rows:n ~cols:n 0. in
  for i = 0 to n - 1 do
    m.data.((i * n) + i) <- 1.
  done;
  m

let of_rows rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then invalid_arg "Mat.of_rows: empty";
  let cols = Array.length rows_arr.(0) in
  Array.iter
    (fun r -> if Array.length r <> cols then invalid_arg "Mat.of_rows: ragged rows")
    rows_arr;
  { rows; cols; data = Array.concat (Array.to_list (Array.map Array.copy rows_arr)) }

let dims m = (m.rows, m.cols)
let get m i j = m.data.((i * m.cols) + j)
let set m i j x = m.data.((i * m.cols) + j) <- x

let mul_vec m v =
  if Array.length v <> m.cols then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init m.rows (fun i ->
      let acc = ref 0. in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (get m i j *. v.(j))
      done;
      !acc)

let transpose m =
  let r = create ~rows:m.cols ~cols:m.rows 0. in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      set r j i (get m i j)
    done
  done;
  r

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: dimension mismatch";
  let r = create ~rows:a.rows ~cols:b.cols 0. in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0. then
        for j = 0 to b.cols - 1 do
          set r i j (get r i j +. (aik *. get b k j))
        done
    done
  done;
  r

(* Gaussian elimination with partial pivoting on an augmented copy. *)
let solve a b =
  if a.rows <> a.cols then invalid_arg "Mat.solve: matrix not square";
  if Array.length b <> a.rows then invalid_arg "Mat.solve: rhs dimension mismatch";
  let n = a.rows in
  let m = { rows = n; cols = n; data = Array.copy a.data } in
  let x = Array.copy b in
  for col = 0 to n - 1 do
    let pivot = ref col in
    for i = col + 1 to n - 1 do
      if Float.abs (get m i col) > Float.abs (get m !pivot col) then pivot := i
    done;
    if Float.abs (get m !pivot col) < 1e-12 then failwith "Mat.solve: singular matrix";
    if !pivot <> col then begin
      for j = 0 to n - 1 do
        let t = get m col j in
        set m col j (get m !pivot j);
        set m !pivot j t
      done;
      let t = x.(col) in
      x.(col) <- x.(!pivot);
      x.(!pivot) <- t
    end;
    for i = col + 1 to n - 1 do
      let f = get m i col /. get m col col in
      if f <> 0. then begin
        for j = col to n - 1 do
          set m i j (get m i j -. (f *. get m col j))
        done;
        x.(i) <- x.(i) -. (f *. x.(col))
      end
    done
  done;
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (get m i j *. x.(j))
    done;
    x.(i) <- !acc /. get m i i
  done;
  x
