(** Dense row-major matrices.

    Used mainly to express quadratic test problems for the optimizer
    and for the linear systems in regression-style tests. *)

type t

val create : rows:int -> cols:int -> float -> t
val identity : int -> t
val of_rows : float array array -> t
(** Rows are copied; every row must have the same length. *)

val dims : t -> int * int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val mul_vec : t -> Vec.t -> Vec.t
val transpose : t -> t
val mul : t -> t -> t

val solve : t -> Vec.t -> Vec.t
(** [solve a b] solves [a x = b] for square [a] by Gaussian elimination
    with partial pivoting. Raises [Failure] on a (numerically) singular
    matrix. [a] and [b] are not modified. *)
