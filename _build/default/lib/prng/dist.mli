(** Random variates used by the workload generators.

    The paper draws actual execution cycles from a normal distribution
    with mean ACEC, truncated to the interval [[BCEC, WCEC]]. *)

val normal : Xoshiro256.t -> mu:float -> sigma:float -> float
(** One draw from N(mu, sigma^2) via the Box–Muller transform.
    [sigma] must be non-negative; [sigma = 0.] returns [mu]. *)

val truncated_normal :
  Xoshiro256.t -> mu:float -> sigma:float -> lo:float -> hi:float -> float
(** Draw from N(mu, sigma^2) conditioned on the interval [[lo, hi]],
    by rejection. Requires [lo <= hi]. When [sigma = 0.] the result is
    [mu] clamped to the interval. To stay O(1) even for extreme
    parameters, after 1000 rejected draws the sample falls back to
    clamping, which is indistinguishable in our parameter regimes
    (the interval always contains [mu]). *)

val uniform_choice : Xoshiro256.t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)
