type t = { mutable state : int64 }

let create seed = { state = seed }
let copy t = { state = t.state }

(* Constants from the reference implementation (Vigna). *)
let gamma = 0x9E3779B97F4A7C15L
let mul1 = 0xBF58476D1CE4E5B9L
let mul2 = 0x94D049BB133111EBL

let next t =
  t.state <- Int64.add t.state gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) mul1 in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) mul2 in
  Int64.logxor z (Int64.shift_right_logical z 31)
