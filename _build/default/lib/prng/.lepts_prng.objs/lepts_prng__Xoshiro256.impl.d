lib/prng/xoshiro256.ml: Int64 Splitmix64
