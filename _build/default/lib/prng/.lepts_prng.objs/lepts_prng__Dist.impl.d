lib/prng/dist.ml: Array Float Lepts_util Xoshiro256
