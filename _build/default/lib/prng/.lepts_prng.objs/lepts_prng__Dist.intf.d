lib/prng/dist.mli: Xoshiro256
