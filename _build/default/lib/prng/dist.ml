let normal rng ~mu ~sigma =
  if sigma < 0. then invalid_arg "Dist.normal: negative sigma";
  if sigma = 0. then mu
  else
    (* Box–Muller; u1 is kept away from 0 so that log is finite. *)
    let u1 = Float.max (Xoshiro256.float rng) 0x1.0p-60 in
    let u2 = Xoshiro256.float rng in
    let r = sqrt (-2. *. log u1) in
    mu +. (sigma *. r *. cos (2. *. Float.pi *. u2))

let truncated_normal rng ~mu ~sigma ~lo ~hi =
  if lo > hi then invalid_arg "Dist.truncated_normal: lo > hi";
  if sigma = 0. then Lepts_util.Num_ext.clamp ~lo ~hi mu
  else
    let rec draw attempts =
      if attempts = 0 then Lepts_util.Num_ext.clamp ~lo ~hi (normal rng ~mu ~sigma)
      else
        let x = normal rng ~mu ~sigma in
        if x >= lo && x <= hi then x else draw (attempts - 1)
    in
    draw 1000

let uniform_choice rng xs =
  if Array.length xs = 0 then invalid_arg "Dist.uniform_choice: empty array";
  xs.(Xoshiro256.int rng ~bound:(Array.length xs))
