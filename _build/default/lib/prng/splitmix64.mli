(** SplitMix64 pseudo-random generator (Steele, Lea & Flood 2014).

    A tiny, fast, well-distributed 64-bit generator. Its main role here
    is seeding {!Xoshiro256}, but it is a perfectly good generator on
    its own for non-cryptographic simulation work. *)

type t

val create : int64 -> t
(** [create seed] initialises the state from any 64-bit seed (including
    0). *)

val next : t -> int64
(** [next t] advances the state and returns the next 64-bit output. *)

val copy : t -> t
(** Independent copy of the current state. *)
