module Plan = Lepts_preempt.Plan
module Sub = Lepts_preempt.Sub_instance

type t = {
  plan : Plan.t;
  power : Lepts_power.Model.t;
  end_times : float array;
  quotas : float array;
}

let create ~plan ~power ~end_times ~quotas =
  let m = Array.length plan.Plan.order in
  if Array.length end_times <> m || Array.length quotas <> m then
    invalid_arg "Static_schedule.create: vector length mismatch";
  Array.iter
    (fun q -> if q < 0. then invalid_arg "Static_schedule.create: negative quota")
    quotas;
  { plan; power; end_times = Array.copy end_times; quotas = Array.copy quotas }

let size t = Array.length t.end_times

let avg_workloads t =
  let totals = Objective.instance_totals Objective.Average t.plan in
  let w = Array.make (size t) 0. in
  Array.iteri
    (fun i per_instance ->
      Array.iteri
        (fun j idxs ->
          let quotas = Array.map (fun k -> t.quotas.(k)) idxs in
          let dist = Waterfall.distribute ~quotas ~total:totals.(i).(j) in
          Array.iteri (fun pos k -> w.(k) <- dist.(pos)) idxs)
        per_instance)
    t.plan.Plan.instance_subs;
  w

let predicted_energy t ~mode =
  let totals = Objective.instance_totals mode t.plan in
  Objective.eval ~plan:t.plan ~power:t.power ~totals ~e:t.end_times ~w_hat:t.quotas

let quota_of_instance t ~task ~instance =
  Array.fold_left
    (fun acc k -> acc +. t.quotas.(k))
    0.
    t.plan.Plan.instance_subs.(task).(instance)

let pp ppf t =
  Format.fprintf ppf "static schedule (%d sub-instances)@." (size t);
  Array.iteri
    (fun k (sub : Sub.t) ->
      Format.fprintf ppf "  %-9s r=%-6g b=%-6g e=%-8.4g q=%-8.4g@." (Sub.label sub)
        sub.Sub.release sub.Sub.boundary t.end_times.(k) t.quotas.(k))
    t.plan.Plan.order
