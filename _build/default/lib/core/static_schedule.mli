(** The artefact of offline voltage scheduling: a per-sub-instance
    end-time and worst-case workload quota.

    These two vectors are exactly what the paper passes from the
    offline phase to the online DVS phase ("only the end-time and the
    worst-case workload variables will be passed to the online DVS
    phase"). *)

type t = {
  plan : Lepts_preempt.Plan.t;
  power : Lepts_power.Model.t;
  end_times : float array;  (** e_k, indexed by total-order position *)
  quotas : float array;  (** worst-case workloads w-hat_k *)
}

val create :
  plan:Lepts_preempt.Plan.t ->
  power:Lepts_power.Model.t ->
  end_times:float array ->
  quotas:float array ->
  t
(** Basic structural checks (lengths, non-negative quotas); semantic
    feasibility is checked by {!Validate}. *)

val size : t -> int

val avg_workloads : t -> float array
(** The ACEC waterfall split [w-bar] implied by the quotas. *)

val predicted_energy : t -> mode:Objective.mode -> float
(** Closed-form runtime energy under greedy reclamation when all
    instances take their ACEC ([Average]) or WCEC ([Worst]). *)

val quota_of_instance : t -> task:int -> instance:int -> float
(** Sum of the quotas of one instance (should equal the task WCEC). *)

val pp : Format.formatter -> t -> unit
(** Table of sub-instances with windows, quotas and implied worst-case
    voltages. *)
