module Plan = Lepts_preempt.Plan
module Sub = Lepts_preempt.Sub_instance
module Model = Lepts_power.Model
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Vec = Lepts_linalg.Vec
module Nlp = Lepts_optim.Nlp
module Al = Lepts_optim.Augmented_lagrangian
module Projection = Lepts_optim.Projection
module Numdiff = Lepts_optim.Numdiff

let make_constraints (plan : Plan.t) ~power =
  let m = Array.length plan.Plan.order in
  let t_max = Model.cycle_time power ~v:power.Model.v_max in
  let constraints = ref [] in
  for k = 0 to m - 1 do
    let sub = plan.Plan.order.(k) in
    constraints :=
      Nlp.linear_constraint
        ~name:(Printf.sprintf "fit-release:%s" (Sub.label sub))
        ~coeffs:[ (m + k, t_max); (k, -1.) ]
        ~bound:(-.sub.Sub.release)
      :: !constraints;
    if k > 0 then
      constraints :=
        Nlp.linear_constraint
          ~name:(Printf.sprintf "fit-chain:%s" (Sub.label sub))
          ~coeffs:[ (m + k, t_max); (k, -1.); (k - 1, 1.) ]
          ~bound:0.
        :: !constraints
  done;
  List.rev !constraints

let make_projection (plan : Plan.t) =
  let m = Array.length plan.Plan.order in
  let ts = plan.Plan.task_set in
  fun x ->
    let out = Vec.copy x in
    Array.iter
      (fun (sub : Sub.t) ->
        out.(sub.Sub.index) <-
          Lepts_util.Num_ext.clamp ~lo:sub.Sub.release ~hi:sub.Sub.boundary
            x.(sub.Sub.index))
      plan.Plan.order;
    Array.iteri
      (fun i per_instance ->
        let wcec = (Task_set.task ts i).Task.wcec in
        Array.iter
          (fun idxs ->
            let slice = Array.map (fun k -> x.(m + k)) idxs in
            let projected = Projection.simplex ~total:wcec slice in
            Array.iteri (fun pos k -> out.(m + k) <- projected.(pos)) idxs)
          per_instance)
      plan.Plan.instance_subs;
    out

let solve ?(max_outer = 40) ?(max_inner = 2000) ~mode ~(plan : Plan.t) ~power () =
  match Solver.initial_point ~plan ~power with
  | Error _ as err -> err
  | Ok (e0, q0) ->
    let m = Array.length plan.Plan.order in
    let totals = Objective.instance_totals mode plan in
    let unpack x = (Array.sub x 0 m, Array.sub x m m) in
    let objective x =
      let e, w_hat = unpack x in
      Objective.eval ~plan ~power ~totals ~e ~w_hat
    in
    let gradient =
      match power.Model.delay with
      | Model.Ideal _ ->
        fun x ->
          let e, w_hat = unpack x in
          let _, de, dq = Objective.eval_with_gradient ~plan ~power ~totals ~e ~w_hat in
          Array.append de dq
      | Model.Alpha _ -> fun x -> Numdiff.gradient ~f:objective x
    in
    let problem =
      { Nlp.dim = 2 * m; objective; gradient;
        inequalities = make_constraints plan ~power;
        project = make_projection plan }
    in
    let report = Al.solve ~max_outer ~max_inner problem ~x0:(Array.append e0 q0) in
    let e, q = unpack report.Al.x in
    (match Solver.repair ~plan ~power ~e ~q with
    | Error _ as err -> err
    | Ok (e, q) ->
      let schedule = Static_schedule.create ~plan ~power ~end_times:e ~quotas:q in
      Ok
        ( schedule,
          { Solver.objective = Static_schedule.predicted_energy schedule ~mode;
            max_violation = report.Al.max_violation;
            outer_iterations = report.Al.outer_iterations;
            inner_iterations = report.Al.inner_iterations } ))
