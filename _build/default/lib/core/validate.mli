(** Independent feasibility checking of a static schedule.

    The solver's own constraints are one encoding of feasibility; this
    module re-derives it from first principles by simulating the
    worst-case execution (every instance takes its WCEC, the online
    policy stretches each quota to its end-time) and checking:

    - every instance's quotas sum to its WCEC;
    - end-times stay within their segment boundaries and deadlines;
    - the worst-case voltage of every dispatched sub-instance is within
      [[v_min, v_max]] (below [v_min] is allowed — the processor simply
      runs at [v_min] and idles);
    - the worst-case finish of each instance meets its deadline. *)

type violation = {
  where : string;  (** sub-instance label or instance id *)
  what : string;  (** human-readable description *)
}

val check : ?tol:float -> Static_schedule.t -> (unit, violation list) result
(** [check schedule] is [Ok ()] when the schedule is worst-case
    feasible within relative tolerance [tol] (default [1e-6]). *)

val is_feasible : ?tol:float -> Static_schedule.t -> bool

val pp_violation : Format.formatter -> violation -> unit
