let check quotas total =
  if total < 0. then invalid_arg "Waterfall: negative total";
  Array.iter (fun q -> if q < 0. then invalid_arg "Waterfall: negative quota") quotas

let distribute ~quotas ~total =
  check quotas total;
  let remaining = ref total in
  Array.map
    (fun q ->
      let w = Float.min q !remaining in
      remaining := !remaining -. w;
      w)
    quotas

let partial_index ~quotas ~total =
  let dist = distribute ~quotas ~total in
  let rec find k =
    if k >= Array.length dist then None
    else if dist.(k) > 0. && dist.(k) < quotas.(k) then Some k
    else find (k + 1)
  in
  find 0

(* Derivative structure: sub-instances before the partial one satisfy
   w_k = q_k (dw_k/dq_k = 1); the partial one satisfies
   w_p = total - sum_{l<p} q_l (dw_p/dq_l = -1 for l < p); later ones
   are 0 with zero derivative. At kinks we take the fully-filled
   branch. *)
let backward ~quotas ~total ~adjoint =
  check quotas total;
  if Array.length adjoint <> Array.length quotas then
    invalid_arg "Waterfall.backward: adjoint length mismatch";
  let out = Array.make (Array.length quotas) 0. in
  let remaining = ref total in
  (try
     for k = 0 to Array.length quotas - 1 do
       let q = quotas.(k) in
       if !remaining >= q then begin
         (* fully filled: w_k = q_k *)
         out.(k) <- out.(k) +. adjoint.(k);
         remaining := !remaining -. q
       end
       else begin
         if !remaining > 0. then
           (* partial: w_k = total - sum of earlier quotas *)
           for l = 0 to k - 1 do
             out.(l) <- out.(l) -. adjoint.(k)
           done;
         raise Exit
       end
     done
   with Exit -> ());
  out
