(** The Yao–Demers–Shenker optimal continuous voltage schedule.

    YDS (FOCS 1995) computes, for a set of jobs with release times,
    deadlines and workloads, the preemptive EDF speed schedule that
    minimises energy for {e any} convex power function — by repeatedly
    peeling off the {e critical interval}, the interval [[a, b]]
    maximising the intensity
    [sum of workloads of jobs contained in [a, b] / (b - a)].

    It is not directly comparable to the paper's schedulers (it assumes
    EDF rather than fixed RM priorities and optimises only the
    worst case), but it provides two valuable reference points:

    - a {b lower bound} on the worst-case energy of any feasible
      schedule of the same job set, used to judge how much the RM
      segment structure costs (an ablation bench);
    - an independent correctness oracle: WCS worst-case energy must
      never beat the YDS bound.

    This implementation is O(n^2) in the number of jobs per peel and
    O(n^3) overall — ample for hyper-period job sets. *)

type job = {
  release : float;
  deadline : float;  (** must exceed [release] *)
  work : float;  (** megacycles; must be positive *)
}

type segment = {
  from_time : float;
  to_time : float;
  speed : float;  (** megacycles per millisecond *)
}

val schedule : job list -> segment list
(** The optimal speed profile, as maximal constant-speed segments in
    increasing time order (idle gaps are omitted). Raises
    [Invalid_argument] on malformed jobs. *)

val energy : power:Lepts_power.Model.t -> job list -> float
(** Energy of the YDS profile under the given power model: each
    segment's speed is converted to the voltage achieving it and priced
    at [c_eff * v^2 * work]. Speeds above the model's maximum frequency
    are priced at the voltage they would require (the bound is still
    valid for comparison). *)

val of_task_set : Lepts_task.Task_set.t -> job list
(** One hyper-period of WCEC jobs: instance [j] of task [i] becomes a
    job released at [j * period] with deadline [(j+1) * period] and
    work [wcec_i]. *)

val lower_bound : power:Lepts_power.Model.t -> Lepts_task.Task_set.t -> float
(** [energy ~power (of_task_set ts)]: the YDS worst-case energy lower
    bound for one hyper-period of [ts]. *)
