module Model = Lepts_power.Model
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set

type job = { release : float; deadline : float; work : float }
type segment = { from_time : float; to_time : float; speed : float }

let validate jobs =
  List.iter
    (fun j ->
      if j.work <= 0. then invalid_arg "Yds.schedule: non-positive work";
      if j.deadline <= j.release then invalid_arg "Yds.schedule: empty window")
    jobs

(* Map a collapsed-time coordinate back to original time by re-inserting
   the previously removed critical intervals ([removed] is sorted by
   original start; the coordinate only grows during the walk). *)
let expand removed x =
  List.fold_left (fun o (s, e) -> if s <= o then o +. (e -. s) else o) x removed

let insert_removed removed (a, b) =
  List.sort (fun (s1, _) (s2, _) -> Float.compare s1 s2) ((a, b) :: removed)

(* One peel: the interval [a, b] over current-coordinate endpoints
   maximising contained-work / length. *)
let critical_interval jobs =
  let endpoints =
    List.sort_uniq Float.compare
      (List.concat_map (fun j -> [ j.release; j.deadline ]) jobs)
  in
  let best = ref None in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if b > a then begin
            let contained =
              List.fold_left
                (fun acc j ->
                  if j.release >= a -. 1e-12 && j.deadline <= b +. 1e-12 then
                    acc +. j.work
                  else acc)
                0. jobs
            in
            if contained > 0. then begin
              let intensity = contained /. (b -. a) in
              match !best with
              | Some (_, _, i) when i >= intensity -> ()
              | _ -> best := Some (a, b, intensity)
            end
          end)
        endpoints)
    endpoints;
  !best

(* Collapse [a, b] to the single point [a] in current coordinates. *)
let collapse jobs (a, b) =
  let width = b -. a in
  let shrink t = if t >= b then t -. width else Float.min t a in
  List.filter_map
    (fun j ->
      if j.release >= a -. 1e-12 && j.deadline <= b +. 1e-12 then None
      else
        let release = shrink j.release and deadline = shrink j.deadline in
        Some { j with release; deadline })
    jobs

(* Subtract the (disjoint, sorted) removed intervals from [a, b],
   yielding the pieces that actually execute at the peel's speed. *)
let subtract_removed removed (a, b) =
  let pieces = ref [] in
  let cursor = ref a in
  List.iter
    (fun (s, e) ->
      if e > !cursor && s < b then begin
        if s > !cursor then pieces := (!cursor, Float.min s b) :: !pieces;
        cursor := Float.max !cursor e
      end)
    removed;
  if !cursor < b then pieces := (!cursor, b) :: !pieces;
  List.rev !pieces

let schedule jobs =
  validate jobs;
  let rec peel jobs removed acc =
    match critical_interval jobs with
    | None -> acc
    | Some (a, b, intensity) ->
      let orig_a = expand removed a and orig_b = expand removed b in
      let pieces = subtract_removed removed (orig_a, orig_b) in
      let segments =
        List.map (fun (s, e) -> { from_time = s; to_time = e; speed = intensity }) pieces
      in
      (* The removed set must stay disjoint for [expand] to be correct:
         record the pieces, not the enclosing interval. *)
      let removed = List.fold_left insert_removed removed pieces in
      peel (collapse jobs (a, b)) removed (segments @ acc)
  in
  let segments = peel jobs [] [] in
  List.sort (fun s1 s2 -> Float.compare s1.from_time s2.from_time) segments

let energy ~power jobs =
  List.fold_left
    (fun acc seg ->
      let work = seg.speed *. (seg.to_time -. seg.from_time) in
      if work <= 0. then acc
      else
        (* Voltage achieving this speed: cycles per time = speed. *)
        let v = Model.voltage_for power ~cycles:work ~duration:(seg.to_time -. seg.from_time) in
        let v = Float.max v power.Model.v_min in
        acc +. Model.energy power ~v ~cycles:work)
    0. (schedule jobs)

let of_task_set ts =
  let hyper = Task_set.hyper_period ts in
  List.concat
    (List.init (Task_set.size ts) (fun i ->
         let task = Task_set.task ts i in
         List.init (hyper / task.Task.period) (fun j ->
             { release = float_of_int (j * task.Task.period);
               deadline = float_of_int ((j + 1) * task.Task.period);
               work = task.Task.wcec })))

let lower_bound ~power ts = energy ~power (of_task_set ts)
