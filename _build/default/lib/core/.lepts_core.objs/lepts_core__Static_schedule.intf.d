lib/core/static_schedule.mli: Format Lepts_power Lepts_preempt Objective
