lib/core/literal_nlp.ml: Array Lepts_linalg Lepts_optim Lepts_power Lepts_preempt Lepts_task Lepts_util List Objective Printf Solver Static_schedule
