lib/core/waterfall.mli:
