lib/core/export.ml: Array Buffer Float Lepts_power Lepts_preempt List Printf Static_schedule String
