lib/core/yds.mli: Lepts_power Lepts_task
