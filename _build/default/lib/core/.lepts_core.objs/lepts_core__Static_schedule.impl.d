lib/core/static_schedule.ml: Array Format Lepts_power Lepts_preempt Objective Waterfall
