lib/core/validate.ml: Array Float Format Lepts_power Lepts_preempt Lepts_task Lepts_util List Printf Result Static_schedule
