lib/core/yds.ml: Float Lepts_power Lepts_task List
