lib/core/solver.ml: Array Float Format Lepts_linalg Lepts_optim Lepts_power Lepts_preempt Lepts_prng Lepts_task Lepts_util List Logs Objective Static_schedule
