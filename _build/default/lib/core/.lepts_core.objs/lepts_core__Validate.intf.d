lib/core/validate.mli: Format Static_schedule
