lib/core/solver.mli: Format Lepts_power Lepts_preempt Objective Static_schedule
