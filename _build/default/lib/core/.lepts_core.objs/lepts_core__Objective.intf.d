lib/core/objective.mli: Lepts_power Lepts_preempt
