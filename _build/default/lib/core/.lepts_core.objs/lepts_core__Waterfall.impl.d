lib/core/waterfall.ml: Array Float
