lib/core/literal_nlp.mli: Lepts_power Lepts_preempt Objective Solver Static_schedule
