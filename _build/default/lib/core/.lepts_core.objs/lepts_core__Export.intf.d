lib/core/export.mli: Lepts_power Lepts_preempt Static_schedule
