lib/core/objective.ml: Array Float Lepts_power Lepts_preempt Lepts_task Lepts_util List Waterfall
