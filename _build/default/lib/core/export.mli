(** Exporting static schedules for consumption outside OCaml.

    The runtime only needs two numbers per sub-instance (end-time and
    worst-case quota); these exports are the tables a firmware build
    would embed. *)

val schedule_to_csv : Static_schedule.t -> string
(** One row per sub-instance, in total order:
    [index,label,task,instance,segment,release,boundary,deadline,end_time,quota,worst_voltage].
    Floats are printed with enough digits to round-trip. *)

val schedule_to_rows : Static_schedule.t -> string list list
(** The same data as lists of cells (header excluded), for callers that
    want a different serialisation. *)

val csv_header : string

val schedule_of_csv :
  plan:Lepts_preempt.Plan.t ->
  power:Lepts_power.Model.t ->
  string ->
  (Static_schedule.t, string) result
(** Parse a CSV produced by {!schedule_to_csv} back into a schedule for
    the given plan (the plan itself is reconstructed from the task set,
    not the file). Checks the header, the row count and the sub-instance
    indices; returns a descriptive [Error] on any mismatch. The
    round-trip is exact ({!schedule_to_csv} prints floats with 17
    significant digits). *)
