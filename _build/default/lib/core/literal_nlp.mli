(** The paper-literal NLP formulation, kept for cross-validation.

    {!Solver} optimises a slack reparametrisation in which the paper's
    ordering constraints hold by construction. This module instead
    writes the NLP the way §3.2 of the paper states it — decision
    variables are the end-times and worst-case workloads themselves,
    with explicit linear inequality constraints

    - release fit: [t_max * w-hat_k <= e_k - r_k],
    - chain fit: [t_max * w-hat_k <= e_k - e_(k-1)],

    a box [r_k <= e_k <= b_k] and one [sum = WCEC] simplex per instance
    (the paper's eqns 8–11), solved with the generic augmented
    Lagrangian in {!Lepts_optim}. On small instances both formulations
    must agree; the test suite and an ablation bench check that. The
    slack formulation is the production path because the literal one
    scales poorly (its feasibility-restoration steps fight the chain
    constraints; see DESIGN.md §5). *)

val solve :
  ?max_outer:int ->
  ?max_inner:int ->
  mode:Objective.mode ->
  plan:Lepts_preempt.Plan.t ->
  power:Lepts_power.Model.t ->
  unit ->
  (Static_schedule.t * Solver.stats, Solver.error) result
(** Solve the literal formulation from the greedy worst-case initial
    point. Same result conventions as {!Solver.solve}. *)
