module Plan = Lepts_preempt.Plan
module Sub = Lepts_preempt.Sub_instance
module Model = Lepts_power.Model
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set

type violation = { where : string; what : string }

let pp_violation ppf v = Format.fprintf ppf "%s: %s" v.where v.what

let check ?(tol = 1e-6) (schedule : Static_schedule.t) =
  let plan = schedule.Static_schedule.plan in
  let power = schedule.Static_schedule.power in
  let e = schedule.Static_schedule.end_times in
  let q = schedule.Static_schedule.quotas in
  let ts = plan.Plan.task_set in
  let violations = ref [] in
  let report where fmt =
    Format.kasprintf (fun what -> violations := { where; what } :: !violations) fmt
  in
  (* Quota sums per instance. *)
  Array.iteri
    (fun i per_instance ->
      let wcec = (Task_set.task ts i).Task.wcec in
      Array.iteri
        (fun j idxs ->
          let total = Array.fold_left (fun acc k -> acc +. q.(k)) 0. idxs in
          if not (Lepts_util.Num_ext.approx_equal ~eps:tol total wcec) then
            report
              (Printf.sprintf "T%d.%d" (i + 1) (j + 1))
              "quotas sum to %g, WCEC is %g" total wcec)
        per_instance)
    plan.Plan.instance_subs;
  (* Worst-case execution: every dispatched sub-instance stretches its
     full quota to its end-time. *)
  let cursor = ref 0. in
  Array.iter
    (fun (sub : Sub.t) ->
      let k = sub.Sub.index in
      let label = Sub.label sub in
      let scale = Float.max 1. sub.Sub.deadline in
      if e.(k) > sub.Sub.boundary +. (tol *. scale) then
        report label "end-time %g exceeds segment boundary %g" e.(k) sub.Sub.boundary;
      if e.(k) > sub.Sub.deadline +. (tol *. scale) then
        report label "end-time %g exceeds deadline %g" e.(k) sub.Sub.deadline;
      if q.(k) > 0. then begin
        let start = Float.max sub.Sub.release !cursor in
        let window = e.(k) -. start in
        if window <= 0. then
          report label "worst-case window is %g (start %g, end %g)" window start e.(k)
        else begin
          let v = Model.voltage_for power ~cycles:q.(k) ~duration:window in
          if v > power.Model.v_max *. (1. +. tol) then
            report label "worst-case voltage %.4g exceeds v_max %.4g" v
              power.Model.v_max
        end;
        (* Below v_min the processor runs at v_min and finishes early;
           the worst-case finish is still bounded by the end-time. *)
        cursor := Float.max !cursor (Float.min e.(k) (start +. window))
      end)
    plan.Plan.order;
  match List.rev !violations with [] -> Ok () | vs -> Error vs

let is_feasible ?tol schedule = Result.is_ok (check ?tol schedule)
