module Plan = Lepts_preempt.Plan
module Sub = Lepts_preempt.Sub_instance
module Model = Lepts_power.Model

let csv_header =
  "index,label,task,instance,segment,release,boundary,deadline,end_time,quota,worst_voltage"

let float_cell x = Printf.sprintf "%.17g" x

(* Worst-case voltages, recomputed here rather than importing the DVS
   layer (which depends on this library). *)
let worst_voltages (s : Static_schedule.t) =
  let power = s.Static_schedule.power in
  let m = Array.length s.Static_schedule.end_times in
  let v = Array.make m 0. in
  let cursor = ref 0. in
  Array.iter
    (fun (sub : Sub.t) ->
      let k = sub.Sub.index in
      if s.Static_schedule.quotas.(k) > 0. then begin
        let start = Float.max sub.Sub.release !cursor in
        let window = s.Static_schedule.end_times.(k) -. start in
        v.(k) <-
          (if window <= 0. then power.Model.v_max
           else
             Model.voltage_for_clamped power ~cycles:s.Static_schedule.quotas.(k)
               ~duration:window);
        cursor := s.Static_schedule.end_times.(k)
      end)
    s.Static_schedule.plan.Plan.order;
  v

let schedule_to_rows (s : Static_schedule.t) =
  let v = worst_voltages s in
  Array.to_list
    (Array.map
       (fun (sub : Sub.t) ->
         let k = sub.Sub.index in
         [ string_of_int k; Sub.label sub; string_of_int (sub.Sub.task + 1);
           string_of_int (sub.Sub.instance + 1); string_of_int (sub.Sub.segment + 1);
           float_cell sub.Sub.release; float_cell sub.Sub.boundary;
           float_cell sub.Sub.deadline;
           float_cell s.Static_schedule.end_times.(k);
           float_cell s.Static_schedule.quotas.(k); float_cell v.(k) ])
       s.Static_schedule.plan.Plan.order)

let schedule_to_csv s =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf csv_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," row);
      Buffer.add_char buf '\n')
    (schedule_to_rows s);
  Buffer.contents buf

let schedule_of_csv ~plan ~power csv =
  let lines =
    String.split_on_char '\n' csv |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty input"
  | header :: rows ->
    if String.trim header <> csv_header then Error "unrecognised header"
    else begin
      let m = Array.length plan.Plan.order in
      if List.length rows <> m then
        Error
          (Printf.sprintf "expected %d rows for this plan, found %d" m
             (List.length rows))
      else begin
        let end_times = Array.make m 0. and quotas = Array.make m 0. in
        let problem = ref None in
        List.iteri
          (fun row_idx line ->
            match String.split_on_char ',' line with
            | idx :: _label :: _task :: _inst :: _seg :: _r :: _b :: _d :: e :: q :: _
              -> (
              match
                (int_of_string_opt idx, float_of_string_opt e, float_of_string_opt q)
              with
              | Some k, Some e, Some q when k >= 0 && k < m ->
                end_times.(k) <- e;
                quotas.(k) <- q
              | _ ->
                if !problem = None then
                  problem := Some (Printf.sprintf "malformed row %d" (row_idx + 2)))
            | _ ->
              if !problem = None then
                problem := Some (Printf.sprintf "malformed row %d" (row_idx + 2)))
          rows;
        match !problem with
        | Some msg -> Error msg
        | None -> (
          try Ok (Static_schedule.create ~plan ~power ~end_times ~quotas)
          with Invalid_argument msg -> Error msg)
      end
    end
