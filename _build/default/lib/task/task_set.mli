(** An RM-prioritised set of periodic tasks.

    Tasks are stored in priority order: index 0 is the highest
    priority. Rate-monotonic priorities are assigned at construction
    (shorter period = higher priority; ties keep the input order, which
    matches the paper's "priorities of two tasks are the same if they
    have the same period" resolved by an arbitrary fixed order). *)

type t = private { tasks : Task.t array }

val create : Task.t list -> t
(** Sorts by RM priority. Raises [Invalid_argument] on an empty list or
    duplicate task names. *)

val of_array : Task.t array -> t
val size : t -> int
val task : t -> int -> Task.t
(** [task t i] is the task at priority level [i] (0 = highest). *)

val tasks : t -> Task.t array
(** Copy of the priority-ordered task array. *)

val hyper_period : t -> int
(** LCM of all periods, in ticks. *)

val instance_count : t -> int
(** Total number of task instances in one hyper-period. *)

val utilization : t -> power:Lepts_power.Model.t -> float
(** Worst-case processor utilisation at maximum speed:
    [sum_i wcec_i * cycle_time(v_max) / period_i]. *)

val scale_wcec_to_utilization :
  t -> power:Lepts_power.Model.t -> target:float -> t
(** Multiply every task's cycle counts (WCEC, ACEC, BCEC) by the common
    factor that brings {!utilization} to [target] — the paper's "WCEC
    adjusted such that processor utilisation is about 70 % at maximum
    speed". Requires [target > 0.]. *)

val pp : Format.formatter -> t -> unit
