(** A periodic hard real-time task.

    Periods are integer "ticks" so that hyper-periods are exact LCMs;
    one tick is one millisecond throughout the library. Workloads are
    in megacycles. The relative deadline equals the period (implicit
    deadlines, as in the paper). *)

type t = private {
  name : string;
  period : int;  (** period = relative deadline, in ticks (ms) *)
  wcec : float;  (** worst-case execution cycles (Mcycles) *)
  acec : float;  (** average-case execution cycles *)
  bcec : float;  (** best-case execution cycles *)
}

val create : name:string -> period:int -> wcec:float -> acec:float -> bcec:float -> t
(** Validates [period > 0], [0 <= bcec <= acec <= wcec] and
    [wcec > 0]; raises [Invalid_argument] otherwise. *)

val with_ratio : name:string -> period:int -> wcec:float -> ratio:float -> t
(** [with_ratio ~wcec ~ratio] builds a task with
    [bcec = ratio * wcec] and [acec = (bcec + wcec) / 2] — the
    protocol used for the paper's experiments where only the
    BCEC/WCEC ratio is swept. Requires [0 <= ratio <= 1]. *)

val sigma : t -> float
(** Standard deviation of the actual-cycle distribution:
    [(wcec - bcec) / 6], so that the [[bcec, wcec]] interval spans
    ±3 sigma around a mean between the two (matching the "normal
    distribution with mean ACEC" protocol of the paper's §4). *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
