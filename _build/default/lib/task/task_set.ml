type t = { tasks : Task.t array }

let check_names tasks =
  let module S = Set.Make (String) in
  let _ =
    Array.fold_left
      (fun seen (task : Task.t) ->
        if S.mem task.name seen then
          invalid_arg
            (Printf.sprintf "Task_set.create: duplicate task name %S" task.name)
        else S.add task.name seen)
      S.empty tasks
  in
  ()

let of_array arr =
  if Array.length arr = 0 then invalid_arg "Task_set.create: empty task set";
  check_names arr;
  (* Stable sort keeps the input order for equal periods. *)
  let sorted = Array.copy arr in
  let keyed = Array.mapi (fun i task -> (i, task)) sorted in
  Array.sort
    (fun (i, (a : Task.t)) (j, (b : Task.t)) ->
      match compare a.period b.period with 0 -> compare i j | c -> c)
    keyed;
  { tasks = Array.map snd keyed }

let create list = of_array (Array.of_list list)
let size t = Array.length t.tasks
let task t i = t.tasks.(i)
let tasks t = Array.copy t.tasks

let hyper_period t =
  Lepts_util.Num_ext.lcm_list
    (Array.to_list (Array.map (fun (task : Task.t) -> task.period) t.tasks))

let instance_count t =
  let h = hyper_period t in
  Array.fold_left (fun acc (task : Task.t) -> acc + (h / task.period)) 0 t.tasks

let utilization t ~power =
  Array.fold_left
    (fun acc (task : Task.t) ->
      acc
      +. Lepts_power.Model.max_frequency_utilization power ~cycles:task.wcec
           ~period:(float_of_int task.period))
    0. t.tasks

let scale_wcec_to_utilization t ~power ~target =
  if target <= 0. then invalid_arg "Task_set.scale_wcec_to_utilization: target";
  let current = utilization t ~power in
  let factor = target /. current in
  let scaled =
    Array.map
      (fun (task : Task.t) ->
        Task.create ~name:task.name ~period:task.period ~wcec:(task.wcec *. factor)
          ~acec:(task.acec *. factor) ~bcec:(task.bcec *. factor))
      t.tasks
  in
  { tasks = scaled }

let pp ppf t =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_array ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") Task.pp)
    t.tasks
