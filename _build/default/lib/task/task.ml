type t = { name : string; period : int; wcec : float; acec : float; bcec : float }

let create ~name ~period ~wcec ~acec ~bcec =
  if period <= 0 then invalid_arg "Task.create: period must be positive";
  if wcec <= 0. then invalid_arg "Task.create: wcec must be positive";
  if bcec < 0. then invalid_arg "Task.create: bcec must be non-negative";
  if not (bcec <= acec && acec <= wcec) then
    invalid_arg "Task.create: need bcec <= acec <= wcec";
  { name; period; wcec; acec; bcec }

let with_ratio ~name ~period ~wcec ~ratio =
  if ratio < 0. || ratio > 1. then invalid_arg "Task.with_ratio: ratio out of [0, 1]";
  let bcec = ratio *. wcec in
  create ~name ~period ~wcec ~acec:((bcec +. wcec) /. 2.) ~bcec

let sigma t = (t.wcec -. t.bcec) /. 6.

let pp ppf t =
  Format.fprintf ppf "%s(T=%d, W=%g, A=%g, B=%g)" t.name t.period t.wcec t.acec t.bcec

let equal a b =
  String.equal a.name b.name && a.period = b.period && a.wcec = b.wcec
  && a.acec = b.acec && a.bcec = b.bcec
