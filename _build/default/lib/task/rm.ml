let wcet ts ~power i =
  let task = Task_set.task ts i in
  Lepts_power.Model.min_duration power ~cycles:task.Task.wcec

let response_time ts ~power i =
  let deadline = float_of_int (Task_set.task ts i).Task.period in
  let own = wcet ts ~power i in
  (* Fixed-point iteration; response times only grow, so exceeding the
     deadline is a definitive "no". *)
  let interference r =
    let acc = ref 0. in
    for j = 0 to i - 1 do
      let period = float_of_int (Task_set.task ts j).Task.period in
      acc := !acc +. (Float.of_int (int_of_float (Float.ceil (r /. period))) *. wcet ts ~power j)
    done;
    !acc
  in
  let rec iterate r guard =
    if guard = 0 then None
    else
      let r' = own +. interference r in
      if r' > deadline then None
      else if Lepts_util.Num_ext.approx_equal ~eps:1e-12 r r' then Some r'
      else iterate r' (guard - 1)
  in
  iterate own 10_000

let schedulable ts ~power =
  let n = Task_set.size ts in
  let rec go i = i >= n || (Option.is_some (response_time ts ~power i) && go (i + 1)) in
  go 0

let breakdown_utilization ~n =
  if n <= 0 then invalid_arg "Rm.breakdown_utilization: n must be positive";
  let nf = float_of_int n in
  nf *. ((2. ** (1. /. nf)) -. 1.)
