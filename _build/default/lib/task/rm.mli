(** Rate-monotonic schedulability analysis.

    Used to validate generated task sets before handing them to the
    voltage scheduler: the NLP is only feasible when the set is
    RM-schedulable at maximum speed. *)

val response_time : Task_set.t -> power:Lepts_power.Model.t -> int -> float option
(** [response_time ts ~power i] is the worst-case response time of the
    task at priority level [i], running every task at [v_max], by the
    standard fixed-point iteration
    [R = C_i + sum_{j < i} ceil(R / T_j) * C_j].
    [None] if the iteration exceeds the deadline (unschedulable). *)

val schedulable : Task_set.t -> power:Lepts_power.Model.t -> bool
(** [true] iff every task's worst-case response time is within its
    deadline at maximum speed. *)

val breakdown_utilization : n:int -> float
(** The Liu–Layland bound [n (2^{1/n} - 1)]: any task set with
    utilisation below this is RM-schedulable regardless of periods. *)
