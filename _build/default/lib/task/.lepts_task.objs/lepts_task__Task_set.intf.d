lib/task/task_set.mli: Format Lepts_power Task
