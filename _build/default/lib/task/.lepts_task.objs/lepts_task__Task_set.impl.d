lib/task/task_set.ml: Array Format Lepts_power Lepts_util Printf Set String Task
