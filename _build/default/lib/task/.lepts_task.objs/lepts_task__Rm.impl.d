lib/task/rm.ml: Float Lepts_power Lepts_util Option Task Task_set
