lib/task/task.ml: Format String
