lib/task/rm.mli: Lepts_power Task_set
