lib/power/model.mli:
