lib/power/levels.mli:
