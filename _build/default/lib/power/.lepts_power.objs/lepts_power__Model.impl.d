lib/power/model.ml: Float Lepts_util
