lib/power/levels.ml: Array Float List
