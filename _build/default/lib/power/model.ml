type delay =
  | Ideal of { c0 : float }
  | Alpha of { k : float; v_th : float; alpha : float }

type t = { delay : delay; c_eff : float; v_min : float; v_max : float }

let create ?(c_eff = 1.) ?(v_min = 1.) ?(v_max = 4.) delay =
  if c_eff <= 0. then invalid_arg "Power.Model.create: c_eff must be positive";
  if v_min <= 0. || v_min > v_max then
    invalid_arg "Power.Model.create: need 0 < v_min <= v_max";
  (match delay with
  | Ideal { c0 } -> if c0 <= 0. then invalid_arg "Power.Model.create: c0 must be positive"
  | Alpha { k; v_th; alpha } ->
    if k <= 0. then invalid_arg "Power.Model.create: k must be positive";
    if v_th < 0. then invalid_arg "Power.Model.create: v_th must be non-negative";
    if alpha < 1. then invalid_arg "Power.Model.create: alpha must be >= 1";
    if v_min <= v_th then invalid_arg "Power.Model.create: v_min must exceed v_th");
  { delay; c_eff; v_min; v_max }

let ideal ?c_eff ?v_min ?v_max ?(c0 = 1.) () = create ?c_eff ?v_min ?v_max (Ideal { c0 })

let cycle_time t ~v =
  match t.delay with
  | Ideal { c0 } ->
    if v <= 0. then invalid_arg "Power.Model.cycle_time: voltage must be positive";
    c0 /. v
  | Alpha { k; v_th; alpha } ->
    if v <= v_th then invalid_arg "Power.Model.cycle_time: voltage must exceed v_th";
    k *. v /. ((v -. v_th) ** alpha)

let exec_time t ~v ~cycles = cycles *. cycle_time t ~v
let energy t ~v ~cycles = t.c_eff *. v *. v *. cycles

let voltage_for t ~cycles ~duration =
  if cycles <= 0. then invalid_arg "Power.Model.voltage_for: cycles must be positive";
  if duration <= 0. then invalid_arg "Power.Model.voltage_for: duration must be positive";
  match t.delay with
  | Ideal { c0 } -> c0 *. cycles /. duration
  | Alpha { v_th; _ } ->
    (* exec_time is strictly decreasing in v on (v_th, inf): bisect. *)
    let target = duration in
    let lo = ref (v_th +. 1e-12) and hi = ref (Float.max t.v_max 1.) in
    while exec_time t ~v:!hi ~cycles > target do
      hi := !hi *. 2.;
      if !hi > 1e9 then invalid_arg "Power.Model.voltage_for: duration unreachable"
    done;
    for _ = 1 to 200 do
      let mid = 0.5 *. (!lo +. !hi) in
      if exec_time t ~v:mid ~cycles > target then lo := mid else hi := mid
    done;
    0.5 *. (!lo +. !hi)

let voltage_for_clamped t ~cycles ~duration =
  Lepts_util.Num_ext.clamp ~lo:t.v_min ~hi:t.v_max (voltage_for t ~cycles ~duration)

let min_duration t ~cycles = exec_time t ~v:t.v_max ~cycles

let max_frequency_utilization t ~cycles ~period =
  if period <= 0. then invalid_arg "Power.Model.max_frequency_utilization: period";
  min_duration t ~cycles /. period
