(** Processor voltage / delay / energy model (paper eqns 1–3).

    Units used throughout the library:
    - time in milliseconds,
    - workload in megacycles,
    - voltage in volts,
    - energy in the unit fixed by [c_eff] (we use [c_eff] = 1 nF-scale
      so that energy is "nJ-per-Mcycle·V²"; only ratios matter in the
      paper's experiments).

    Two delay models are provided:
    - {e Ideal}: cycle time [c0 / v] — the simplification used in the
      paper's motivational example ("clock cycle time is inversely
      proportional to the supply voltage");
    - {e Alpha}: the full CMOS alpha-power law
      [t_cycle = k * v / (v - v_th)^alpha] with [1 <= alpha <= 2].

    In both, the energy of executing [w] cycles at voltage [v] is
    [c_eff * v^2 * w]. *)

type delay =
  | Ideal of { c0 : float }
      (** [c0] is the cycle-time × voltage product (ms·V/Mcycle). *)
  | Alpha of { k : float; v_th : float; alpha : float }
      (** CMOS alpha-power delay; requires [v_th >= 0.],
          [alpha >= 1.]. *)

type t = private {
  delay : delay;
  c_eff : float;  (** effective switching capacitance *)
  v_min : float;
  v_max : float;
}

val create : ?c_eff:float -> ?v_min:float -> ?v_max:float -> delay -> t
(** Defaults: [c_eff = 1.], [v_min = 1.], [v_max = 4.] (the
    motivational-example processor). Raises [Invalid_argument] on
    non-positive capacitance, a non-positive voltage range, [v_min >
    v_max], or (for {e Alpha}) [v_min <= v_th]. *)

val ideal : ?c_eff:float -> ?v_min:float -> ?v_max:float -> ?c0:float -> unit -> t
(** Ideal-delay model; [c0] defaults to 1. *)

val cycle_time : t -> v:float -> float
(** Time of one megacycle at voltage [v]. Requires [v > 0.] (and
    [v > v_th] for the alpha model). *)

val exec_time : t -> v:float -> cycles:float -> float
(** [cycles * cycle_time v]. *)

val energy : t -> v:float -> cycles:float -> float
(** [c_eff * v^2 * cycles]. *)

val voltage_for : t -> cycles:float -> duration:float -> float
(** [voltage_for t ~cycles ~duration] is the (unique) voltage at which
    [cycles] complete in exactly [duration]; it is {e not} clamped to
    the voltage range. Requires [cycles > 0.] and [duration > 0.]. For
    the alpha model this is computed by bisection to relative precision
    [1e-12]. *)

val voltage_for_clamped : t -> cycles:float -> duration:float -> float
(** {!voltage_for} clamped into [[v_min, v_max]]. The caller is
    responsible for checking feasibility when the unclamped value
    exceeds [v_max]. *)

val min_duration : t -> cycles:float -> float
(** Fastest possible execution time: [exec_time ~v:v_max]. *)

val max_frequency_utilization : t -> cycles:float -> period:float -> float
(** Utilisation contribution [min_duration / period] of a task with the
    given worst-case [cycles] and [period]. *)
