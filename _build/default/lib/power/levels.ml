type t = { levels : float array }

let create vs =
  if vs = [] then invalid_arg "Power.Levels.create: empty level list";
  List.iter
    (fun v -> if v <= 0. then invalid_arg "Power.Levels.create: non-positive level")
    vs;
  let sorted = List.sort_uniq Float.compare vs in
  { levels = Array.of_list sorted }

let of_range ~v_min ~v_max ~steps =
  if steps < 2 then invalid_arg "Power.Levels.of_range: need at least 2 steps";
  if v_min <= 0. || v_min >= v_max then invalid_arg "Power.Levels.of_range: bad range";
  let h = (v_max -. v_min) /. float_of_int (steps - 1) in
  create (List.init steps (fun i -> v_min +. (h *. float_of_int i)))

let levels t = Array.copy t.levels

(* Binary search for the first index with level >= v. *)
let lower_bound t v =
  let lo = ref 0 and hi = ref (Array.length t.levels) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.levels.(mid) < v then lo := mid + 1 else hi := mid
  done;
  !lo

let round_up t v =
  let i = lower_bound t v in
  if i >= Array.length t.levels then None else Some t.levels.(i)

let round_down t v =
  let i = lower_bound t v in
  if i < Array.length t.levels && t.levels.(i) = v then Some v
  else if i = 0 then None
  else Some t.levels.(i - 1)

let quantize_for_deadline t v =
  match round_up t v with
  | Some level -> level
  | None -> t.levels.(Array.length t.levels - 1)
