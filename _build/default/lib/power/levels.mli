(** Discrete voltage levels (extension over the paper, which assumes a
    continuous range).

    Real DVS processors expose a finite set of (voltage, frequency)
    operating points; a continuous schedule is realised by rounding
    each requested voltage {e up} to the next available level, which
    preserves every deadline guarantee. *)

type t

val create : float list -> t
(** [create vs] builds a level set from the given voltages. Duplicates
    are removed; raises [Invalid_argument] if the list is empty or
    contains a non-positive voltage. *)

val of_range : v_min:float -> v_max:float -> steps:int -> t
(** [steps] equally spaced levels covering [[v_min, v_max]]
    inclusive. Requires [steps >= 2]. *)

val levels : t -> float array
(** The levels in increasing order. *)

val round_up : t -> float -> float option
(** Smallest level [>= v], or [None] if [v] exceeds the top level. *)

val round_down : t -> float -> float option
(** Largest level [<= v], or [None] if [v] is below the bottom level. *)

val quantize_for_deadline : t -> float -> float
(** [quantize_for_deadline t v] is the level used to realise a
    continuous request [v]: the smallest level [>= v], or the top
    level when [v] is above it (the caller must have established
    worst-case feasibility at [v <= v_max] separately). Requests below
    the bottom level get the bottom level. *)
