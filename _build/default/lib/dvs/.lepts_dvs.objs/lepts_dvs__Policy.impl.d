lib/dvs/policy.ml: Array Float Format Lepts_core Lepts_power Lepts_preempt
