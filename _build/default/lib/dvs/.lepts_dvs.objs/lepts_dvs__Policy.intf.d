lib/dvs/policy.mli: Format Lepts_core Lepts_power
