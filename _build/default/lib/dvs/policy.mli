(** Online voltage-selection policies.

    The offline phase hands the runtime a static schedule (end-times
    and worst-case quotas per sub-instance). At every dispatch of a
    sub-instance the policy picks the supply voltage. *)

type t =
  | Greedy
      (** Greedy slack reclamation (the paper's online phase): run at
          the voltage that finishes the {e remaining worst-case quota}
          of the current sub-instance exactly at its static end-time.
          Tasks that finish early hand their slack to whatever runs
          next. *)
  | Static_voltage
      (** Use the voltage planned for the worst case, never reclaiming
          slack; early finishes leave the processor idle. The
          "offline schedule without runtime DVS" reference point. *)
  | Max_speed
      (** Always run at [v_max] (no DVS at all). *)
  | Greedy_quantized of Lepts_power.Levels.t
      (** Greedy reclamation on a processor with a finite set of
          voltage levels (an extension over the paper, which assumes a
          continuous range): each greedy request is rounded {e up} to
          the next available level, preserving every deadline
          guarantee at a small energy cost. *)

val worst_case_voltages : Lepts_core.Static_schedule.t -> float array
(** The per-sub-instance voltage of the worst-case execution: each
    dispatched sub-instance stretches its full quota from its
    worst-case start (previous end-time or release) to its end-time.
    Sub-instances with zero quota get 0. Used by [Static_voltage] and
    by reports. *)

val dispatch_voltage :
  t ->
  schedule:Lepts_core.Static_schedule.t ->
  static_v:float array ->
  sub:int ->
  now:float ->
  quota_remaining:float ->
  float
(** Voltage to run at when dispatching sub-instance [sub] at time
    [now] with [quota_remaining] of its worst-case quota not yet
    executed. Always within [[v_min, v_max]]; if the end-time is
    already past (only possible through floating-point corner cases)
    the result is [v_max]. Requires [quota_remaining > 0.]. *)

val pp : Format.formatter -> t -> unit

val all : t list
(** The three continuous policies ([Greedy], [Static_voltage],
    [Max_speed]); quantized policies carry a level set and are
    constructed explicitly. *)
