module Model = Lepts_power.Model
module Plan = Lepts_preempt.Plan
module Sub = Lepts_preempt.Sub_instance
module Static_schedule = Lepts_core.Static_schedule

type t =
  | Greedy
  | Static_voltage
  | Max_speed
  | Greedy_quantized of Lepts_power.Levels.t

let all = [ Greedy; Static_voltage; Max_speed ]

let pp ppf = function
  | Greedy -> Format.fprintf ppf "greedy"
  | Static_voltage -> Format.fprintf ppf "static"
  | Max_speed -> Format.fprintf ppf "max-speed"
  | Greedy_quantized levels ->
    Format.fprintf ppf "greedy-quantized(%d levels)"
      (Array.length (Lepts_power.Levels.levels levels))

let worst_case_voltages (schedule : Static_schedule.t) =
  let plan = schedule.Static_schedule.plan in
  let power = schedule.Static_schedule.power in
  let e = schedule.Static_schedule.end_times in
  let q = schedule.Static_schedule.quotas in
  let m = Array.length e in
  let v = Array.make m 0. in
  let cursor = ref 0. in
  for k = 0 to m - 1 do
    let sub = plan.Plan.order.(k) in
    if q.(k) > 0. then begin
      let start = Float.max sub.Sub.release !cursor in
      let window = e.(k) -. start in
      v.(k) <-
        (if window <= 0. then power.Model.v_max
         else Model.voltage_for_clamped power ~cycles:q.(k) ~duration:window);
      cursor := e.(k)
    end
  done;
  v

let dispatch_voltage t ~schedule ~static_v ~sub ~now ~quota_remaining =
  let power = schedule.Static_schedule.power in
  if quota_remaining <= 0. then invalid_arg "Policy.dispatch_voltage: empty quota";
  match t with
  | Max_speed -> power.Model.v_max
  | Static_voltage -> if static_v.(sub) > 0. then static_v.(sub) else power.Model.v_max
  | Greedy ->
    let window = schedule.Static_schedule.end_times.(sub) -. now in
    if window <= 0. then power.Model.v_max
    else Model.voltage_for_clamped power ~cycles:quota_remaining ~duration:window
  | Greedy_quantized levels ->
    let window = schedule.Static_schedule.end_times.(sub) -. now in
    let continuous =
      if window <= 0. then power.Model.v_max
      else Model.voltage_for_clamped power ~cycles:quota_remaining ~duration:window
    in
    Lepts_power.Levels.quantize_for_deadline levels continuous
