type t = { header : string list; mutable rows : string list list }

let create ~header = { header; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.header then
    invalid_arg "Table.add_row: cell count does not match header";
  t.rows <- cells :: t.rows

let column_widths t =
  let widths = List.map String.length t.header in
  List.fold_left
    (fun acc row -> List.map2 (fun w cell -> max w (String.length cell)) acc row)
    widths (List.rev t.rows)

let pad_left width s = String.make (max 0 (width - String.length s)) ' ' ^ s

let render t =
  let widths = column_widths t in
  let buf = Buffer.create 256 in
  let emit_row cells =
    let padded = List.map2 pad_left widths cells in
    Buffer.add_string buf (String.concat " | " padded);
    Buffer.add_char buf '\n'
  in
  emit_row t.header;
  let rule = List.map (fun w -> String.make w '-') widths in
  Buffer.add_string buf (String.concat "-+-" rule);
  Buffer.add_char buf '\n';
  List.iter emit_row (List.rev t.rows);
  Buffer.contents buf

let print t = print_string (render t)

let float_cell ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let percent_cell ?(decimals = 1) x = Printf.sprintf "%.*f %%" decimals x
