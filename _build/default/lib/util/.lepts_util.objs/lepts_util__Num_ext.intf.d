lib/util/num_ext.mli:
