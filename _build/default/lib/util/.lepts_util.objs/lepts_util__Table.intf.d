lib/util/table.mli:
