lib/util/num_ext.ml: Array Float List
