lib/util/stats.ml: Array Float Num_ext Printf
