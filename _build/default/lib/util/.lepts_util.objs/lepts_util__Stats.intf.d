lib/util/stats.mli:
