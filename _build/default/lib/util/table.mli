(** Plain-text table rendering for experiment reports.

    Tables are rendered with a header row, a separator, and
    right-aligned numeric-looking cells, e.g.

    {v
    tasks | ratio | improvement
    ------+-------+------------
        2 |  0.10 |      31.2 %
    v} *)

type t

val create : header:string list -> t
(** [create ~header] starts a table with the given column names. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row. Raises [Invalid_argument] if the
    number of cells differs from the header width. *)

val render : t -> string
(** Render the table, including a trailing newline. *)

val print : t -> unit
(** [print t] writes {!render} to [stdout]. *)

val float_cell : ?decimals:int -> float -> string
(** Format a float with a fixed number of decimals (default 2). *)

val percent_cell : ?decimals:int -> float -> string
(** Format a fraction [x] as a percentage string ["12.3 %"] where the
    input is already expressed in percent units. *)
