let rec gcd a b =
  let a = abs a and b = abs b in
  if b = 0 then a else gcd b (a mod b)

let lcm a b =
  let a = abs a and b = abs b in
  if a = 0 || b = 0 then 0
  else
    let g = gcd a b in
    let q = a / g in
    if q > max_int / b then invalid_arg "Num_ext.lcm: overflow" else q * b

let lcm_list = List.fold_left lcm 1

let clamp ~lo ~hi x =
  assert (lo <= hi);
  if x < lo then lo else if x > hi then hi else x

let approx_equal ?(eps = 1e-9) a b =
  let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= (eps *. scale)

let is_finite x = Float.is_finite x

(* Kahan summation: the compensation term recovers the low-order bits
   lost when adding a small element to a large running total. *)
let sum xs =
  let total = ref 0. and comp = ref 0. in
  for i = 0 to Array.length xs - 1 do
    let y = xs.(i) -. !comp in
    let t = !total +. y in
    comp := (t -. !total) -. y;
    total := t
  done;
  !total

let fmin a b = if Float.is_nan a || Float.is_nan b then Float.nan else Float.min a b
let fmax a b = if Float.is_nan a || Float.is_nan b then Float.nan else Float.max a b

let divide num ~by = if by = 0. then raise Division_by_zero else num /. by
