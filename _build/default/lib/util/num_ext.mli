(** Small numeric helpers shared across the library. *)

val gcd : int -> int -> int
(** [gcd a b] is the greatest common divisor of [abs a] and [abs b].
    [gcd 0 0 = 0]. *)

val lcm : int -> int -> int
(** [lcm a b] is the least common multiple of [abs a] and [abs b].
    [lcm 0 _ = 0]. Raises [Invalid_argument] on overflow. *)

val lcm_list : int list -> int
(** [lcm_list xs] folds {!lcm} over [xs]; the lcm of the empty list is 1. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] is [x] restricted to the interval [[lo, hi]].
    Requires [lo <= hi]. *)

val approx_equal : ?eps:float -> float -> float -> bool
(** [approx_equal ?eps a b] compares floats with absolute-or-relative
    tolerance [eps] (default [1e-9]):
    [|a - b| <= eps * max 1. (max |a| |b|)]. *)

val is_finite : float -> bool
(** [is_finite x] is [true] iff [x] is neither infinite nor NaN. *)

val sum : float array -> float
(** Left-to-right (Kahan-compensated) sum of an array. *)

val fmin : float -> float -> float
(** Minimum of two floats, propagating neither NaN silently: if either
    argument is NaN the result is NaN. *)

val fmax : float -> float -> float
(** Maximum, with the same NaN behaviour as {!fmin}. *)

val divide : float -> by:float -> float
(** [divide num ~by] is [num /. by], raising [Division_by_zero] when
    [by = 0.] instead of returning an infinity. *)
