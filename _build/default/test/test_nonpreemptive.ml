(* Non-preemptive plans: the paper's motivational setting generalised
   to multiple periods. The same NLP machinery applies; feasibility is
   simply harder because whole jobs must fit between end-times. *)

open Lepts_core
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Plan = Lepts_preempt.Plan
module Sub = Lepts_preempt.Sub_instance
module Model = Lepts_power.Model

let power = Model.ideal ~v_min:1. ~v_max:4. ()

let test_equal_periods_same_as_preemptive () =
  (* With one shared period the preemptive expansion has no splits, so
     both constructions coincide. *)
  let ts =
    Task_set.create
      [ Task.create ~name:"t1" ~period:20 ~wcec:20. ~acec:10. ~bcec:0.;
        Task.create ~name:"t2" ~period:20 ~wcec:20. ~acec:10. ~bcec:0.;
        Task.create ~name:"t3" ~period:20 ~wcec:20. ~acec:10. ~bcec:0. ]
  in
  let p = Plan.expand ts and np = Plan.expand_nonpreemptive ts in
  Alcotest.(check int) "same size" (Plan.size p) (Plan.size np);
  Array.iteri
    (fun k (s : Sub.t) ->
      let s' = np.Plan.order.(k) in
      Alcotest.(check int) "same task order" s.Sub.task s'.Sub.task;
      Alcotest.(check (float 0.)) "same release" s.Sub.release s'.Sub.release)
    p.Plan.order

let test_one_sub_per_instance () =
  let ts =
    Task_set.create
      [ Task.create ~name:"a" ~period:4 ~wcec:1. ~acec:0.5 ~bcec:0.;
        Task.create ~name:"b" ~period:8 ~wcec:2. ~acec:1. ~bcec:0. ]
  in
  let np = Plan.expand_nonpreemptive ts in
  Alcotest.(check int) "3 jobs" 3 (Plan.size np);
  Array.iter
    (Array.iter (fun idxs -> Alcotest.(check int) "singleton" 1 (Array.length idxs)))
    np.Plan.instance_subs;
  Array.iter
    (fun (s : Sub.t) ->
      Alcotest.(check (float 0.)) "boundary is deadline" s.Sub.deadline s.Sub.boundary)
    np.Plan.order

let test_edf_order () =
  (* At a common release, the shorter-deadline job runs first. *)
  let ts =
    Task_set.create
      [ Task.create ~name:"long" ~period:12 ~wcec:2. ~acec:1. ~bcec:0.;
        Task.create ~name:"short" ~period:4 ~wcec:1. ~acec:0.5 ~bcec:0. ]
  in
  let np = Plan.expand_nonpreemptive ts in
  (* RM priority order puts "short" at level 0; at release 0 its
     deadline (4) precedes "long"'s (12). *)
  Alcotest.(check int) "EDF first at t=0" 0 np.Plan.order.(0).Sub.task;
  Alcotest.(check (float 0.)) "its deadline" 4. np.Plan.order.(0).Sub.deadline

let test_motivation_nonpreemptive_solve () =
  (* The paper's motivational example is natively non-preemptive; the
     solver must reproduce the same (10, 15, 20) optimum through the
     non-preemptive constructor too. *)
  let ts =
    Task_set.create
      [ Task.create ~name:"t1" ~period:20 ~wcec:20. ~acec:10. ~bcec:0.;
        Task.create ~name:"t2" ~period:20 ~wcec:20. ~acec:10. ~bcec:0.;
        Task.create ~name:"t3" ~period:20 ~wcec:20. ~acec:10. ~bcec:0. ]
  in
  let plan = Plan.expand_nonpreemptive ts in
  let wcs, _ = Result.get_ok (Solver.solve_wcs ~plan ~power ()) in
  let acs, _ =
    Result.get_ok
      (Solver.solve_acs
         ~warm_starts:[ (wcs.Static_schedule.end_times, wcs.Static_schedule.quotas) ]
         ~plan ~power ())
  in
  Alcotest.(check (float 0.05)) "e1" 10. acs.Static_schedule.end_times.(0);
  Alcotest.(check (float 0.05)) "e2" 15. acs.Static_schedule.end_times.(1);
  Alcotest.(check (float 0.05)) "e3" 20. acs.Static_schedule.end_times.(2)

let test_multi_period_solve_and_execute () =
  let power = Model.ideal ~v_min:0.5 ~v_max:4. () in
  let ts =
    Task_set.create
      [ Task.with_ratio ~name:"a" ~period:10 ~wcec:6. ~ratio:0.2;
        Task.with_ratio ~name:"b" ~period:20 ~wcec:10. ~ratio:0.2 ]
  in
  let plan = Plan.expand_nonpreemptive ts in
  let acs, _ = Result.get_ok (Solver.solve_acs ~plan ~power ()) in
  Alcotest.(check bool) "feasible" true (Validate.is_feasible acs);
  (* The order-faithful executor is exact for non-preemptive plans. *)
  List.iter
    (fun value ->
      let totals = Lepts_sim.Sampler.fixed plan ~value in
      let o = Lepts_sim.Sequence.run ~schedule:acs ~totals in
      Alcotest.(check int) "meets deadlines" 0 o.Lepts_sim.Outcome.deadline_misses)
    [ `Bcec; `Acec; `Wcec ]

let test_nonpreemptive_harder_than_preemptive () =
  (* A set schedulable preemptively but not non-preemptively: a long
     low-priority job spanning several short-task periods. *)
  let power = Model.ideal ~v_min:0.5 ~v_max:4. () in
  let ts =
    Task_set.create
      [ Task.with_ratio ~name:"fast" ~period:4 ~wcec:4. ~ratio:0.5;
        Task.with_ratio ~name:"bulk" ~period:16 ~wcec:28. ~ratio:0.5 ]
  in
  (* Preemptive: fits (utilisation = 4/16 + 28/64 < 1 at v_max). *)
  (match Solver.solve_wcs ~plan:(Plan.expand ts) ~power () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "preemptive should fit: %a" Solver.pp_error e);
  (* Non-preemptive: the 7 ms bulk job cannot run without making some
     4 ms-deadline job miss. *)
  match Solver.solve_wcs ~plan:(Plan.expand_nonpreemptive ts) ~power () with
  | Error Solver.Unschedulable -> ()
  | Error (Solver.Solver_stalled _) -> ()
  | Ok (s, _) ->
    (* If a schedule comes back it must at least be validated
       infeasible — but really the initial fill should have failed. *)
    Alcotest.(check bool) "must not validate" false (Validate.is_feasible s)

let suite =
  [ ("equal periods = preemptive", `Quick, test_equal_periods_same_as_preemptive);
    ("one sub-instance per job", `Quick, test_one_sub_per_instance);
    ("EDF order at common release", `Quick, test_edf_order);
    ("motivational example (non-preemptive)", `Quick, test_motivation_nonpreemptive_solve);
    ("multi-period solve & execute", `Quick, test_multi_period_solve_and_execute);
    ("non-preemptive harder", `Quick, test_nonpreemptive_harder_than_preemptive) ]
