open Lepts_task

let power = Lepts_power.Model.ideal ~v_min:1. ~v_max:4. ()

let mk ?(name = "t") ~period ~wcec () =
  Task.create ~name ~period ~wcec ~acec:(wcec /. 2.) ~bcec:0.

let test_task_create_valid () =
  let t = Task.create ~name:"x" ~period:10 ~wcec:5. ~acec:3. ~bcec:1. in
  Alcotest.(check string) "name" "x" t.Task.name;
  Alcotest.(check int) "period" 10 t.Task.period

let test_task_create_invalid () =
  let expect msg f = Alcotest.check_raises msg (Invalid_argument msg) f in
  expect "Task.create: period must be positive" (fun () ->
      ignore (Task.create ~name:"x" ~period:0 ~wcec:1. ~acec:1. ~bcec:1.));
  expect "Task.create: wcec must be positive" (fun () ->
      ignore (Task.create ~name:"x" ~period:1 ~wcec:0. ~acec:0. ~bcec:0.));
  expect "Task.create: need bcec <= acec <= wcec" (fun () ->
      ignore (Task.create ~name:"x" ~period:1 ~wcec:1. ~acec:2. ~bcec:0.));
  expect "Task.create: need bcec <= acec <= wcec" (fun () ->
      ignore (Task.create ~name:"x" ~period:1 ~wcec:2. ~acec:1. ~bcec:1.5));
  expect "Task.create: bcec must be non-negative" (fun () ->
      ignore (Task.create ~name:"x" ~period:1 ~wcec:1. ~acec:0.5 ~bcec:(-0.1)))

let test_with_ratio () =
  let t = Task.with_ratio ~name:"x" ~period:10 ~wcec:20. ~ratio:0.1 in
  Alcotest.(check (float 1e-12)) "bcec" 2. t.Task.bcec;
  Alcotest.(check (float 1e-12)) "acec midpoint" 11. t.Task.acec;
  Alcotest.check_raises "ratio range"
    (Invalid_argument "Task.with_ratio: ratio out of [0, 1]") (fun () ->
      ignore (Task.with_ratio ~name:"x" ~period:1 ~wcec:1. ~ratio:1.5))

let test_sigma () =
  let t = Task.with_ratio ~name:"x" ~period:10 ~wcec:20. ~ratio:0.1 in
  (* sigma = (wcec - bcec) / 6 = 18/6 = 3, so [bcec, wcec] is +-3 sigma. *)
  Alcotest.(check (float 1e-12)) "sigma" 3. (Task.sigma t)

let test_task_set_priority_order () =
  let ts =
    Task_set.create
      [ mk ~name:"slow" ~period:30 ~wcec:1. ();
        mk ~name:"fast" ~period:5 ~wcec:1. ();
        mk ~name:"mid" ~period:10 ~wcec:1. () ]
  in
  Alcotest.(check string) "highest" "fast" (Task_set.task ts 0).Task.name;
  Alcotest.(check string) "middle" "mid" (Task_set.task ts 1).Task.name;
  Alcotest.(check string) "lowest" "slow" (Task_set.task ts 2).Task.name

let test_task_set_stable_ties () =
  let ts =
    Task_set.create
      [ mk ~name:"a" ~period:10 ~wcec:1. (); mk ~name:"b" ~period:10 ~wcec:1. () ]
  in
  Alcotest.(check string) "input order kept" "a" (Task_set.task ts 0).Task.name

let test_task_set_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Task_set.create: empty task set")
    (fun () -> ignore (Task_set.create []));
  Alcotest.check_raises "duplicate names"
    (Invalid_argument "Task_set.create: duplicate task name \"a\"") (fun () ->
      ignore
        (Task_set.create [ mk ~name:"a" ~period:5 ~wcec:1. (); mk ~name:"a" ~period:7 ~wcec:1. () ]))

let test_hyper_period () =
  let ts =
    Task_set.create
      [ mk ~name:"a" ~period:4 ~wcec:1. (); mk ~name:"b" ~period:6 ~wcec:1. ();
        mk ~name:"c" ~period:8 ~wcec:1. () ]
  in
  Alcotest.(check int) "lcm" 24 (Task_set.hyper_period ts);
  Alcotest.(check int) "instances" (6 + 4 + 3) (Task_set.instance_count ts)

let test_utilization () =
  (* cycle time at v_max = 0.25; U = 0.25 * (4/4 + 8/8) = 0.5. *)
  let ts =
    Task_set.create
      [ mk ~name:"a" ~period:4 ~wcec:4. (); mk ~name:"b" ~period:8 ~wcec:8. () ]
  in
  Alcotest.(check (float 1e-12)) "utilization" 0.5 (Task_set.utilization ts ~power)

let test_scale_to_utilization () =
  let ts =
    Task_set.create
      [ mk ~name:"a" ~period:4 ~wcec:4. (); mk ~name:"b" ~period:8 ~wcec:8. () ]
  in
  let scaled = Task_set.scale_wcec_to_utilization ts ~power ~target:0.7 in
  Alcotest.(check (float 1e-9)) "reaches target" 0.7
    (Task_set.utilization scaled ~power);
  (* Ratios are preserved. *)
  let t = Task_set.task scaled 0 in
  Alcotest.(check (float 1e-9)) "acec scaled too" (t.Task.wcec /. 2.) t.Task.acec

let test_response_time_single () =
  (* One task: response time is its own WCET. *)
  let ts = Task_set.create [ mk ~name:"a" ~period:10 ~wcec:8. () ] in
  match Rm.response_time ts ~power 0 with
  | None -> Alcotest.fail "schedulable"
  | Some r -> Alcotest.(check (float 1e-9)) "own wcet" 2. r

let test_response_time_interference () =
  (* Classic: T1 (P=4, C=1), T2 (P=10, C=4): R2 = 4 + ceil(R2/4)*1 -> 7?
     iterate: R=4 -> 4+1*1? ceil(4/4)=1 -> 5; ceil(5/4)=2 -> 6; ceil(6/4)=2 -> 6. *)
  let ts =
    Task_set.create
      [ mk ~name:"hi" ~period:4 ~wcec:4. (); mk ~name:"lo" ~period:10 ~wcec:16. () ]
  in
  (match Rm.response_time ts ~power 1 with
  | None -> Alcotest.fail "schedulable"
  | Some r -> Alcotest.(check (float 1e-9)) "fixed point" 6. r);
  Alcotest.(check bool) "whole set schedulable" true (Rm.schedulable ts ~power)

let test_unschedulable () =
  (* Utilization > 1 at max speed. *)
  let ts =
    Task_set.create
      [ mk ~name:"a" ~period:4 ~wcec:10. (); mk ~name:"b" ~period:4 ~wcec:10. () ]
  in
  Alcotest.(check bool) "unschedulable" false (Rm.schedulable ts ~power)

let test_breakdown_utilization () =
  Alcotest.(check (float 1e-12)) "n=1" 1. (Rm.breakdown_utilization ~n:1);
  Alcotest.(check (float 1e-6)) "n=2" 0.828427 (Rm.breakdown_utilization ~n:2);
  (* Limit is ln 2. *)
  Alcotest.(check (float 1e-3)) "n=1000" (log 2.) (Rm.breakdown_utilization ~n:1000)

let test_liu_layland_consistency () =
  (* Any set below the bound must pass response-time analysis. *)
  let rng = Lepts_prng.Xoshiro256.create ~seed:5 in
  for _ = 1 to 30 do
    let n = 2 + Lepts_prng.Xoshiro256.int rng ~bound:4 in
    let bound = Rm.breakdown_utilization ~n in
    let tasks =
      List.init n (fun i ->
          let period = 5 * (1 + Lepts_prng.Xoshiro256.int rng ~bound:20) in
          let u = bound /. float_of_int n *. 0.95 in
          let wcec = u *. float_of_int period *. 4. (* v_max / c0 *) in
          mk ~name:(Printf.sprintf "t%d" i) ~period ~wcec ())
    in
    let ts = Task_set.create tasks in
    if not (Rm.schedulable ts ~power) then
      Alcotest.failf "Liu-Layland set rejected (n=%d)" n
  done

let suite =
  [ ("task create valid", `Quick, test_task_create_valid);
    ("task create invalid", `Quick, test_task_create_invalid);
    ("with_ratio", `Quick, test_with_ratio);
    ("sigma", `Quick, test_sigma);
    ("priority order", `Quick, test_task_set_priority_order);
    ("stable ties", `Quick, test_task_set_stable_ties);
    ("task set validation", `Quick, test_task_set_validation);
    ("hyper period", `Quick, test_hyper_period);
    ("utilization", `Quick, test_utilization);
    ("scale to utilization", `Quick, test_scale_to_utilization);
    ("response time single", `Quick, test_response_time_single);
    ("response time interference", `Quick, test_response_time_interference);
    ("unschedulable detected", `Quick, test_unschedulable);
    ("breakdown utilization", `Quick, test_breakdown_utilization);
    ("Liu-Layland consistency", `Quick, test_liu_layland_consistency) ]
