open Lepts_core
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Plan = Lepts_preempt.Plan
module Model = Lepts_power.Model
module Policy = Lepts_dvs.Policy

let power = Model.ideal ~v_min:1. ~v_max:4. ()

let plan3 () =
  Plan.expand
    (Task_set.create
       [ Task.create ~name:"t1" ~period:20 ~wcec:20. ~acec:10. ~bcec:0.;
         Task.create ~name:"t2" ~period:20 ~wcec:20. ~acec:10. ~bcec:0.;
         Task.create ~name:"t3" ~period:20 ~wcec:20. ~acec:10. ~bcec:0. ])

let acs_schedule () =
  Static_schedule.create ~plan:(plan3 ()) ~power ~end_times:[| 10.; 15.; 20. |]
    ~quotas:[| 20.; 20.; 20. |]

let test_worst_case_voltages () =
  let v = Policy.worst_case_voltages (acs_schedule ()) in
  (* 20 cycles in 10 ms -> 2 V; then 20 in 5 ms -> 4 V twice. *)
  Alcotest.(check (array (float 1e-9))) "2/4/4" [| 2.; 4.; 4. |] v

let test_worst_case_voltages_zero_quota () =
  let s =
    Static_schedule.create ~plan:(plan3 ()) ~power ~end_times:[| 10.; 10.; 20. |]
      ~quotas:[| 20.; 0.; 20. |]
  in
  let v = Policy.worst_case_voltages s in
  Alcotest.(check (float 0.)) "zero for empty" 0. v.(1);
  (* Third sub chains from the first's end-time, not the empty one. *)
  Alcotest.(check (float 1e-9)) "20 cycles in [10,20]" 2. v.(2)

let test_greedy_dispatch_full_window () =
  let s = acs_schedule () in
  let static_v = Policy.worst_case_voltages s in
  let v =
    Policy.dispatch_voltage Policy.Greedy ~schedule:s ~static_v ~sub:0 ~now:0.
      ~quota_remaining:20.
  in
  Alcotest.(check (float 1e-9)) "plan voltage at plan start" 2. v

let test_greedy_dispatch_with_slack () =
  let s = acs_schedule () in
  let static_v = Policy.worst_case_voltages s in
  (* Sub 1 (end 15) dispatched early at t=5 with full quota: stretches
     to 2 V instead of its worst-case 4 V. *)
  let v =
    Policy.dispatch_voltage Policy.Greedy ~schedule:s ~static_v ~sub:1 ~now:5.
      ~quota_remaining:20.
  in
  Alcotest.(check (float 1e-9)) "slack lowers voltage" 2. v

let test_greedy_clamps () =
  let s = acs_schedule () in
  let static_v = Policy.worst_case_voltages s in
  let low =
    Policy.dispatch_voltage Policy.Greedy ~schedule:s ~static_v ~sub:2 ~now:0.
      ~quota_remaining:0.1
  in
  Alcotest.(check (float 1e-9)) "clamped at v_min" 1. low;
  let late =
    Policy.dispatch_voltage Policy.Greedy ~schedule:s ~static_v ~sub:0 ~now:25.
      ~quota_remaining:5.
  in
  Alcotest.(check (float 1e-9)) "past end-time runs at v_max" 4. late

let test_static_policy () =
  let s = acs_schedule () in
  let static_v = Policy.worst_case_voltages s in
  let v =
    Policy.dispatch_voltage Policy.Static_voltage ~schedule:s ~static_v ~sub:1
      ~now:2. ~quota_remaining:20.
  in
  Alcotest.(check (float 1e-9)) "ignores slack" 4. v

let test_max_speed_policy () =
  let s = acs_schedule () in
  let static_v = Policy.worst_case_voltages s in
  let v =
    Policy.dispatch_voltage Policy.Max_speed ~schedule:s ~static_v ~sub:2 ~now:0.
      ~quota_remaining:1.
  in
  Alcotest.(check (float 1e-9)) "always v_max" 4. v

let test_empty_quota_rejected () =
  let s = acs_schedule () in
  let static_v = Policy.worst_case_voltages s in
  Alcotest.check_raises "empty quota"
    (Invalid_argument "Policy.dispatch_voltage: empty quota") (fun () ->
      ignore
        (Policy.dispatch_voltage Policy.Greedy ~schedule:s ~static_v ~sub:0 ~now:0.
           ~quota_remaining:0.))

let test_policy_printers () =
  let names = List.map (Format.asprintf "%a" Policy.pp) Policy.all in
  Alcotest.(check (list string)) "names" [ "greedy"; "static"; "max-speed" ] names

let suite =
  [ ("worst-case voltages", `Quick, test_worst_case_voltages);
    ("worst-case voltages with zero quota", `Quick, test_worst_case_voltages_zero_quota);
    ("greedy at plan start", `Quick, test_greedy_dispatch_full_window);
    ("greedy exploits slack", `Quick, test_greedy_dispatch_with_slack);
    ("greedy clamps to range", `Quick, test_greedy_clamps);
    ("static policy ignores slack", `Quick, test_static_policy);
    ("max-speed policy", `Quick, test_max_speed_policy);
    ("empty quota rejected", `Quick, test_empty_quota_rejected);
    ("policy printers", `Quick, test_policy_printers) ]
