open Lepts_power

let check_float eps = Alcotest.(check (float eps))

let ideal = Model.ideal ~v_min:1. ~v_max:4. ()

let test_ideal_cycle_time () =
  check_float 1e-12 "1V" 1. (Model.cycle_time ideal ~v:1.);
  check_float 1e-12 "2V halves" 0.5 (Model.cycle_time ideal ~v:2.);
  check_float 1e-12 "4V quarters" 0.25 (Model.cycle_time ideal ~v:4.)

let test_ideal_exec_time () =
  check_float 1e-12 "20 Mcycles at 2V" 10. (Model.exec_time ideal ~v:2. ~cycles:20.)

let test_energy_quadratic () =
  check_float 1e-12 "E = w v^2" 80. (Model.energy ideal ~v:2. ~cycles:20.);
  (* Doubling voltage quadruples energy. *)
  check_float 1e-12 "4x" 320. (Model.energy ideal ~v:4. ~cycles:20.)

let test_voltage_for_ideal () =
  check_float 1e-12 "inverse of exec_time" 2.
    (Model.voltage_for ideal ~cycles:20. ~duration:10.);
  (* Round trip at random points. *)
  let rng = Lepts_prng.Xoshiro256.create ~seed:3 in
  for _ = 1 to 100 do
    let v = Lepts_prng.Xoshiro256.uniform rng ~lo:0.5 ~hi:5. in
    let w = Lepts_prng.Xoshiro256.uniform rng ~lo:0.1 ~hi:100. in
    let d = Model.exec_time ideal ~v ~cycles:w in
    check_float 1e-9 "roundtrip" v (Model.voltage_for ideal ~cycles:w ~duration:d)
  done

let test_voltage_for_clamped () =
  check_float 1e-12 "below range" 1.
    (Model.voltage_for_clamped ideal ~cycles:1. ~duration:100.);
  check_float 1e-12 "above range" 4.
    (Model.voltage_for_clamped ideal ~cycles:100. ~duration:1.)

let test_min_duration () =
  check_float 1e-12 "at v_max" 5. (Model.min_duration ideal ~cycles:20.)

let test_utilization () =
  check_float 1e-12 "u" 0.25
    (Model.max_frequency_utilization ideal ~cycles:20. ~period:20.)

let test_invalid_args () =
  Alcotest.check_raises "bad c_eff"
    (Invalid_argument "Power.Model.create: c_eff must be positive") (fun () ->
      ignore (Model.ideal ~c_eff:0. ()));
  Alcotest.check_raises "bad range"
    (Invalid_argument "Power.Model.create: need 0 < v_min <= v_max") (fun () ->
      ignore (Model.ideal ~v_min:3. ~v_max:2. ()));
  Alcotest.check_raises "bad cycles"
    (Invalid_argument "Power.Model.voltage_for: cycles must be positive") (fun () ->
      ignore (Model.voltage_for ideal ~cycles:0. ~duration:1.));
  Alcotest.check_raises "bad duration"
    (Invalid_argument "Power.Model.voltage_for: duration must be positive") (fun () ->
      ignore (Model.voltage_for ideal ~cycles:1. ~duration:0.))

let alpha = Model.create ~v_min:1. ~v_max:4. (Model.Alpha { k = 1.; v_th = 0.5; alpha = 1.5 })

let test_alpha_monotone () =
  (* Cycle time strictly decreases with voltage above threshold. *)
  let prev = ref infinity in
  List.iter
    (fun v ->
      let ct = Model.cycle_time alpha ~v in
      Alcotest.(check bool) "decreasing" true (ct < !prev);
      prev := ct)
    [ 1.; 1.5; 2.; 3.; 4. ]

let test_alpha_voltage_for_roundtrip () =
  let rng = Lepts_prng.Xoshiro256.create ~seed:4 in
  for _ = 1 to 50 do
    let v = Lepts_prng.Xoshiro256.uniform rng ~lo:1. ~hi:4. in
    let w = Lepts_prng.Xoshiro256.uniform rng ~lo:0.5 ~hi:50. in
    let d = Model.exec_time alpha ~v ~cycles:w in
    let v' = Model.voltage_for alpha ~cycles:w ~duration:d in
    if Float.abs (v -. v') > 1e-6 then Alcotest.failf "alpha roundtrip %g vs %g" v v'
  done

let test_alpha_validation () =
  Alcotest.check_raises "v_min below v_th"
    (Invalid_argument "Power.Model.create: v_min must exceed v_th") (fun () ->
      ignore (Model.create ~v_min:0.4 (Model.Alpha { k = 1.; v_th = 0.5; alpha = 1.5 })));
  Alcotest.check_raises "alpha < 1"
    (Invalid_argument "Power.Model.create: alpha must be >= 1") (fun () ->
      ignore (Model.create (Model.Alpha { k = 1.; v_th = 0.1; alpha = 0.5 })));
  Alcotest.check_raises "voltage at threshold"
    (Invalid_argument "Power.Model.cycle_time: voltage must exceed v_th") (fun () ->
      ignore (Model.cycle_time alpha ~v:0.5))

let test_levels_create () =
  let l = Levels.create [ 2.; 1.; 2.; 3. ] in
  Alcotest.(check bool) "sorted dedup" true (Levels.levels l = [| 1.; 2.; 3. |]);
  Alcotest.check_raises "empty" (Invalid_argument "Power.Levels.create: empty level list")
    (fun () -> ignore (Levels.create []));
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Power.Levels.create: non-positive level") (fun () ->
      ignore (Levels.create [ 1.; 0. ]))

let test_levels_of_range () =
  let l = Levels.of_range ~v_min:1. ~v_max:3. ~steps:5 in
  Alcotest.(check bool) "grid" true (Levels.levels l = [| 1.; 1.5; 2.; 2.5; 3. |])

let test_levels_rounding () =
  let l = Levels.create [ 1.; 2.; 3. ] in
  Alcotest.(check (option (float 0.))) "round up mid" (Some 2.) (Levels.round_up l 1.5);
  Alcotest.(check (option (float 0.))) "round up exact" (Some 2.) (Levels.round_up l 2.);
  Alcotest.(check (option (float 0.))) "round up above" None (Levels.round_up l 3.5);
  Alcotest.(check (option (float 0.))) "round down mid" (Some 1.) (Levels.round_down l 1.5);
  Alcotest.(check (option (float 0.))) "round down exact" (Some 2.) (Levels.round_down l 2.);
  Alcotest.(check (option (float 0.))) "round down below" None (Levels.round_down l 0.5)

let test_levels_quantize () =
  let l = Levels.create [ 1.; 2.; 3. ] in
  Alcotest.(check (float 0.)) "normal" 2. (Levels.quantize_for_deadline l 1.2);
  Alcotest.(check (float 0.)) "below bottom" 1. (Levels.quantize_for_deadline l 0.3);
  Alcotest.(check (float 0.)) "above top saturates" 3. (Levels.quantize_for_deadline l 9.)

let test_quantized_never_slower () =
  (* Rounding a voltage request up never lengthens execution. *)
  let l = Levels.of_range ~v_min:1. ~v_max:4. ~steps:7 in
  let rng = Lepts_prng.Xoshiro256.create ~seed:6 in
  for _ = 1 to 200 do
    let v = Lepts_prng.Xoshiro256.uniform rng ~lo:1. ~hi:4. in
    let vq = Levels.quantize_for_deadline l v in
    Alcotest.(check bool) "not slower" true
      (Model.cycle_time ideal ~v:vq <= Model.cycle_time ideal ~v +. 1e-12)
  done

let suite =
  [ ("ideal cycle time", `Quick, test_ideal_cycle_time);
    ("ideal exec time", `Quick, test_ideal_exec_time);
    ("energy quadratic in voltage", `Quick, test_energy_quadratic);
    ("voltage_for ideal roundtrip", `Quick, test_voltage_for_ideal);
    ("voltage_for clamped", `Quick, test_voltage_for_clamped);
    ("min duration", `Quick, test_min_duration);
    ("utilization", `Quick, test_utilization);
    ("invalid arguments", `Quick, test_invalid_args);
    ("alpha model monotone", `Quick, test_alpha_monotone);
    ("alpha voltage_for roundtrip", `Quick, test_alpha_voltage_for_roundtrip);
    ("alpha validation", `Quick, test_alpha_validation);
    ("levels create", `Quick, test_levels_create);
    ("levels of_range", `Quick, test_levels_of_range);
    ("levels rounding", `Quick, test_levels_rounding);
    ("levels quantize", `Quick, test_levels_quantize);
    ("quantized never slower", `Quick, test_quantized_never_slower) ]
