open Lepts_core

let check_arr name expected actual =
  Alcotest.(check (array (float 1e-9))) name expected actual

(* The paper's Fig 5 example: ACEC 15, WCEC 30 split over three
   sub-instances of quota 10 each -> executed 10 / 5 / 0. *)
let test_paper_fig5 () =
  check_arr "fig5" [| 10.; 5.; 0. |]
    (Waterfall.distribute ~quotas:[| 10.; 10.; 10. |] ~total:15.)

let test_total_zero () =
  check_arr "all zero" [| 0.; 0. |] (Waterfall.distribute ~quotas:[| 3.; 4. |] ~total:0.)

let test_total_equals_sum () =
  check_arr "all full" [| 3.; 4. |] (Waterfall.distribute ~quotas:[| 3.; 4. |] ~total:7.)

let test_total_exceeds_sum () =
  (* Overflow beyond the quota sum is dropped (callers bound totals by
     the WCEC). *)
  check_arr "capped" [| 3.; 4. |] (Waterfall.distribute ~quotas:[| 3.; 4. |] ~total:100.)

let test_zero_quotas_passthrough () =
  check_arr "zeros skipped" [| 0.; 5.; 0.; 2. |]
    (Waterfall.distribute ~quotas:[| 0.; 5.; 0.; 3. |] ~total:7.)

let test_empty () =
  check_arr "empty" [||] (Waterfall.distribute ~quotas:[||] ~total:0.)

let test_invalid () =
  Alcotest.check_raises "negative total" (Invalid_argument "Waterfall: negative total")
    (fun () -> ignore (Waterfall.distribute ~quotas:[| 1. |] ~total:(-1.)));
  Alcotest.check_raises "negative quota" (Invalid_argument "Waterfall: negative quota")
    (fun () -> ignore (Waterfall.distribute ~quotas:[| -1. |] ~total:1.))

let test_partial_index () =
  Alcotest.(check (option int)) "middle" (Some 1)
    (Waterfall.partial_index ~quotas:[| 10.; 10.; 10. |] ~total:15.);
  Alcotest.(check (option int)) "none when exact" None
    (Waterfall.partial_index ~quotas:[| 10.; 10. |] ~total:10.);
  Alcotest.(check (option int)) "none when empty" None
    (Waterfall.partial_index ~quotas:[| 10. |] ~total:0.)

(* Invariants under random inputs. *)
let qcheck_tests =
  let gen =
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 8) (float_range 0. 20.))
        (float_range 0. 200.))
  in
  [ QCheck2.Test.make ~count:500 ~name:"waterfall conservation and order" gen
      (fun (quotas_list, total) ->
        let quotas = Array.of_list quotas_list in
        let quota_sum = Array.fold_left ( +. ) 0. quotas in
        let total = Float.min total quota_sum in
        let dist = Waterfall.distribute ~quotas ~total in
        let dist_sum = Array.fold_left ( +. ) 0. dist in
        (* conservation *)
        Float.abs (dist_sum -. total) < 1e-9
        (* bounded by quotas *)
        && Array.for_all2 (fun w q -> w >= -1e-12 && w <= q +. 1e-12) dist quotas
        (* prefix-greedy: a sub-instance executes less than its quota
           only if everything after it executes nothing *)
        &&
        let rec check k seen_partial =
          if k >= Array.length dist then true
          else if seen_partial then dist.(k) = 0. && check (k + 1) true
          else check (k + 1) (dist.(k) < quotas.(k) -. 1e-12)
        in
        check 0 false);
    QCheck2.Test.make ~count:300 ~name:"waterfall backward matches finite differences"
      gen
      (fun (quotas_list, total) ->
        let quotas = Array.of_list quotas_list in
        let quota_sum = Array.fold_left ( +. ) 0. quotas in
        let total = Float.min total (0.9 *. quota_sum) in
        let n = Array.length quotas in
        let adjoint = Array.init n (fun i -> 1. +. float_of_int i) in
        let back = Waterfall.backward ~quotas ~total ~adjoint in
        (* Compare against numerical J^T adjoint away from kinks. *)
        let h = 1e-6 in
        let ok = ref true in
        for l = 0 to n - 1 do
          let bump delta =
            let q' = Array.copy quotas in
            q'.(l) <- Float.max 0. (q'.(l) +. delta);
            let d = Waterfall.distribute ~quotas:q' ~total in
            Array.to_list d
          in
          let plus = bump h and minus = bump (-.h) in
          let fd =
            List.fold_left2
              (fun acc (p, m) a -> acc +. (a *. (p -. m) /. (2. *. h)))
              0.
              (List.combine plus minus)
              (Array.to_list adjoint)
          in
          (* Skip kink neighbourhoods where the two-sided difference
             straddles a boundary. *)
          let near_kink =
            let cum = ref 0. in
            let flag = ref false in
            Array.iteri
              (fun k q ->
                if k < l then cum := !cum +. q
                else if k = l then begin
                  if Float.abs (total -. !cum -. q) < 10. *. h
                     || Float.abs (total -. !cum) < 10. *. h || q < 10. *. h
                  then flag := true
                end)
              quotas;
            (* later kinks: partial boundary after l *)
            let cum2 = ref 0. in
            Array.iteri
              (fun _ q ->
                cum2 := !cum2 +. q;
                if Float.abs (total -. !cum2) < 10. *. h then flag := true)
              quotas;
            !flag
          in
          if (not near_kink) && Float.abs (fd -. back.(l)) > 1e-4 then ok := false
        done;
        !ok) ]

let suite =
  [ ("paper Fig 5", `Quick, test_paper_fig5);
    ("zero total", `Quick, test_total_zero);
    ("exact total", `Quick, test_total_equals_sum);
    ("overflow capped", `Quick, test_total_exceeds_sum);
    ("zero quotas skipped", `Quick, test_zero_quotas_passthrough);
    ("empty quotas", `Quick, test_empty);
    ("invalid inputs", `Quick, test_invalid);
    ("partial index", `Quick, test_partial_index) ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
