open Lepts_core
module Model = Lepts_power.Model
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set

let power = Model.ideal ~v_min:0.1 ~v_max:10. ()

let seg = Alcotest.testable
    (fun ppf (s : Yds.segment) ->
      Format.fprintf ppf "[%g,%g)@%g" s.Yds.from_time s.to_time s.speed)
    (fun a b ->
      Float.abs (a.Yds.from_time -. b.Yds.from_time) < 1e-9
      && Float.abs (a.Yds.to_time -. b.Yds.to_time) < 1e-9
      && Float.abs (a.Yds.speed -. b.Yds.speed) < 1e-9)

let test_single_job () =
  let segs = Yds.schedule [ { Yds.release = 2.; deadline = 10.; work = 4. } ] in
  Alcotest.(check (list seg)) "uniform over window"
    [ { Yds.from_time = 2.; to_time = 10.; speed = 0.5 } ]
    segs

let test_disjoint_jobs () =
  let segs =
    Yds.schedule
      [ { Yds.release = 0.; deadline = 2.; work = 4. };
        { Yds.release = 5.; deadline = 10.; work = 5. } ]
  in
  Alcotest.(check (list seg)) "two plateaus"
    [ { Yds.from_time = 0.; to_time = 2.; speed = 2. };
      { Yds.from_time = 5.; to_time = 10.; speed = 1. } ]
    segs

let test_nested_jobs () =
  (* Classic example: outer job [0,10] w=10, inner [2,4] w=6. Critical
     interval [2,4] at speed 3; the outer job spreads over the
     remaining 8 time units at 1.25. *)
  let segs =
    Yds.schedule
      [ { Yds.release = 0.; deadline = 10.; work = 10. };
        { Yds.release = 2.; deadline = 4.; work = 6. } ]
  in
  Alcotest.(check (list seg)) "peel then spread"
    [ { Yds.from_time = 0.; to_time = 2.; speed = 1.25 };
      { Yds.from_time = 2.; to_time = 4.; speed = 3. };
      { Yds.from_time = 4.; to_time = 10.; speed = 1.25 } ]
    segs

let test_identical_jobs_merge () =
  let segs =
    Yds.schedule
      [ { Yds.release = 0.; deadline = 4.; work = 2. };
        { Yds.release = 0.; deadline = 4.; work = 6. } ]
  in
  Alcotest.(check (list seg)) "merged" [ { Yds.from_time = 0.; to_time = 4.; speed = 2. } ] segs

let test_validation () =
  Alcotest.check_raises "bad work" (Invalid_argument "Yds.schedule: non-positive work")
    (fun () -> ignore (Yds.schedule [ { Yds.release = 0.; deadline = 1.; work = 0. } ]));
  Alcotest.check_raises "bad window" (Invalid_argument "Yds.schedule: empty window")
    (fun () -> ignore (Yds.schedule [ { Yds.release = 1.; deadline = 1.; work = 1. } ]))

let total_work segs =
  List.fold_left
    (fun acc (s : Yds.segment) -> acc +. (s.Yds.speed *. (s.to_time -. s.from_time)))
    0. segs

let test_work_conservation_random () =
  let rng = Lepts_prng.Xoshiro256.create ~seed:31 in
  for _ = 1 to 30 do
    let n = 1 + Lepts_prng.Xoshiro256.int rng ~bound:8 in
    let jobs =
      List.init n (fun _ ->
          let release = Lepts_prng.Xoshiro256.uniform rng ~lo:0. ~hi:50. in
          let len = Lepts_prng.Xoshiro256.uniform rng ~lo:1. ~hi:30. in
          let work = Lepts_prng.Xoshiro256.uniform rng ~lo:0.5 ~hi:20. in
          { Yds.release; deadline = release +. len; work })
    in
    let segs = Yds.schedule jobs in
    let want = List.fold_left (fun acc j -> acc +. j.Yds.work) 0. jobs in
    if Float.abs (total_work segs -. want) > 1e-6 then
      Alcotest.failf "work not conserved: %g vs %g" (total_work segs) want;
    (* Segments are disjoint and ordered. *)
    let rec check_order = function
      | (a : Yds.segment) :: (b :: _ as rest) ->
        if a.to_time > b.Yds.from_time +. 1e-9 then Alcotest.fail "overlap";
        check_order rest
      | [ _ ] | [] -> ()
    in
    check_order segs
  done

let test_peeled_intensities_decrease () =
  (* Intensities are non-increasing across peels, so the highest speed
     segment is the first critical interval: here [2,4]. *)
  let segs =
    Yds.schedule
      [ { Yds.release = 0.; deadline = 10.; work = 5. };
        { Yds.release = 2.; deadline = 4.; work = 8. } ]
  in
  let top = List.fold_left (fun m (s : Yds.segment) -> Float.max m s.Yds.speed) 0. segs in
  Alcotest.(check (float 1e-9)) "peak speed" 4. top

let test_lower_bound_vs_wcs () =
  (* The YDS energy (EDF, job-level optimal) must lower-bound the WCS
     worst-case energy (RM, segment-constrained). *)
  let power = Model.ideal ~v_min:0.5 ~v_max:4. () in
  let ts =
    Task_set.scale_wcec_to_utilization
      (Task_set.create
         [ Task.with_ratio ~name:"a" ~period:4 ~wcec:4. ~ratio:0.5;
           Task.with_ratio ~name:"b" ~period:6 ~wcec:5. ~ratio:0.5;
           Task.with_ratio ~name:"c" ~period:12 ~wcec:8. ~ratio:0.5 ])
      ~power ~target:0.7
  in
  let bound = Yds.lower_bound ~power ts in
  let plan = Lepts_preempt.Plan.expand ts in
  let wcs, stats = Result.get_ok (Solver.solve_wcs ~plan ~power ()) in
  ignore wcs;
  Alcotest.(check bool) "YDS <= WCS worst energy" true
    (bound <= stats.Solver.objective +. 1e-6);
  Alcotest.(check bool) "bound positive" true (bound > 0.)

let test_motivation_bound_tight () =
  (* Equal-period tasks: YDS = uniform speed = the WCS optimum, so the
     bound is tight (540). *)
  let power = Model.ideal ~v_min:1. ~v_max:4. () in
  let ts =
    Task_set.create
      [ Task.create ~name:"t1" ~period:20 ~wcec:20. ~acec:10. ~bcec:0.;
        Task.create ~name:"t2" ~period:20 ~wcec:20. ~acec:10. ~bcec:0.;
        Task.create ~name:"t3" ~period:20 ~wcec:20. ~acec:10. ~bcec:0. ]
  in
  Alcotest.(check (float 0.5)) "tight on uniform case" 540.
    (Yds.lower_bound ~power ts)

let suite =
  [ ("single job", `Quick, test_single_job);
    ("disjoint jobs", `Quick, test_disjoint_jobs);
    ("nested jobs (classic)", `Quick, test_nested_jobs);
    ("identical windows merge", `Quick, test_identical_jobs_merge);
    ("validation", `Quick, test_validation);
    ("work conservation (random)", `Quick, test_work_conservation_random);
    ("peak speed is first peel", `Quick, test_peeled_intensities_decrease);
    ("lower-bounds WCS", `Quick, test_lower_bound_vs_wcs);
    ("tight on the motivational example", `Quick, test_motivation_bound_tight) ]
