test/test_prng.ml: Alcotest Array Dist Float Int64 Lepts_prng Lepts_util List Splitmix64 Xoshiro256
