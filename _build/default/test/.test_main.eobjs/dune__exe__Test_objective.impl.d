test/test_objective.ml: Alcotest Array Float Lepts_core Lepts_optim Lepts_power Lepts_preempt Lepts_prng Lepts_task Objective Solver
