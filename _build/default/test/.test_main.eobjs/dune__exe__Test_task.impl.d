test/test_task.ml: Alcotest Lepts_power Lepts_prng Lepts_task List Printf Rm Task Task_set
