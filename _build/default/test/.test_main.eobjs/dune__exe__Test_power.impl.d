test/test_power.ml: Alcotest Float Lepts_power Lepts_prng Levels List Model
