test/test_optim.ml: Alcotest Array Augmented_lagrangian Float Fun Lbfgs Lepts_linalg Lepts_optim Lepts_prng Line_search Nlp Numdiff Projected_gradient Projection
