test/test_sim.ml: Alcotest Array Float Lepts_core Lepts_dvs Lepts_power Lepts_preempt Lepts_prng Lepts_sim Lepts_task List Objective Result Solver Static_schedule
