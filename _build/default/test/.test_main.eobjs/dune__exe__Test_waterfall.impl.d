test/test_waterfall.ml: Alcotest Array Float Lepts_core List QCheck2 QCheck_alcotest Waterfall
