test/test_nonpreemptive.ml: Alcotest Array Lepts_core Lepts_power Lepts_preempt Lepts_sim Lepts_task List Result Solver Static_schedule Validate
