test/test_util.ml: Alcotest Array Float Lepts_util List Num_ext Stats String Table
