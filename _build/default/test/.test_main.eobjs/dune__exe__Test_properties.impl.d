test/test_properties.ml: Alcotest Array Export Float Lazy Lepts_core Lepts_dvs Lepts_power Lepts_preempt Lepts_prng Lepts_sim Lepts_task Lepts_workloads List Objective Solver Static_schedule Validate
