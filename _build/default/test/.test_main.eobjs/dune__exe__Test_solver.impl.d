test/test_solver.ml: Alcotest Array Lepts_core Lepts_power Lepts_preempt Lepts_prng Lepts_task Lepts_workloads List Objective Result Solver Static_schedule Validate
