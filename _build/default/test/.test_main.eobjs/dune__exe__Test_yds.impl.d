test/test_yds.ml: Alcotest Float Format Lepts_core Lepts_power Lepts_preempt Lepts_prng Lepts_task List Result Solver Yds
