test/test_experiments.ml: Alcotest Array Float Format Lepts_core Lepts_dvs Lepts_experiments Lepts_power Lepts_util List String
