test/test_preempt.ml: Alcotest Array Format Fun Lepts_preempt Lepts_task List Plan String Sub_instance
