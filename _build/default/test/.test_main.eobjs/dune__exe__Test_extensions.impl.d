test/test_extensions.ml: Alcotest Array Float Format Lepts_core Lepts_dvs Lepts_power Lepts_preempt Lepts_prng Lepts_sim Lepts_task Literal_nlp Objective Result Solver Static_schedule Validate
