test/test_dvs.ml: Alcotest Array Format Lepts_core Lepts_dvs Lepts_power Lepts_preempt Lepts_task List Static_schedule
