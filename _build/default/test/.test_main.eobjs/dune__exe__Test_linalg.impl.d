test/test_linalg.ml: Alcotest Array Float Lepts_linalg Lepts_prng Mat Vec
