test/test_validate.ml: Alcotest Format Lepts_core Lepts_power Lepts_preempt Lepts_task List Static_schedule String Validate
