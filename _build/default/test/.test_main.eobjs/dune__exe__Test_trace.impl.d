test/test_trace.ml: Alcotest Format Lepts_core Lepts_dvs Lepts_power Lepts_preempt Lepts_sim Lepts_task List Result Solver Static_schedule String
