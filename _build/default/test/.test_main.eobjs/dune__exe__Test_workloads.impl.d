test/test_workloads.ml: Alcotest Array Float Lepts_power Lepts_preempt Lepts_prng Lepts_task Lepts_workloads Result
