test/test_ablations.ml: Alcotest Float Lepts_core Lepts_experiments Lepts_power Lepts_task Lepts_util List String
