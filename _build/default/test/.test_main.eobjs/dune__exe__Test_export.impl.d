test/test_export.ml: Alcotest Array Export Lepts_core Lepts_dvs Lepts_power Lepts_preempt Lepts_task List Static_schedule String
