open Lepts_core
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Plan = Lepts_preempt.Plan
module Model = Lepts_power.Model

let power = Model.ideal ~v_min:1. ~v_max:4. ()

let schedule () =
  let ts =
    Task_set.create
      [ Task.create ~name:"t1" ~period:20 ~wcec:20. ~acec:10. ~bcec:0.;
        Task.create ~name:"t2" ~period:20 ~wcec:20. ~acec:10. ~bcec:0.;
        Task.create ~name:"t3" ~period:20 ~wcec:20. ~acec:10. ~bcec:0. ]
  in
  Static_schedule.create ~plan:(Plan.expand ts) ~power ~end_times:[| 10.; 15.; 20. |]
    ~quotas:[| 20.; 20.; 20. |]

let test_row_count () =
  let rows = Export.schedule_to_rows (schedule ()) in
  Alcotest.(check int) "one per sub-instance" 3 (List.length rows);
  List.iter
    (fun row ->
      Alcotest.(check int) "column count"
        (List.length (String.split_on_char ',' Export.csv_header))
        (List.length row))
    rows

let test_csv_shape () =
  let csv = Export.schedule_to_csv (schedule ()) in
  let lines = String.split_on_char '\n' csv |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "header + 3 rows" 4 (List.length lines);
  Alcotest.(check string) "header first" Export.csv_header (List.hd lines)

let test_values_roundtrip () =
  let rows = Export.schedule_to_rows (schedule ()) in
  match rows with
  | first :: _ ->
    Alcotest.(check string) "label" "T1.1.1" (List.nth first 1);
    Alcotest.(check (float 1e-12)) "end time" 10. (float_of_string (List.nth first 8));
    Alcotest.(check (float 1e-12)) "quota" 20. (float_of_string (List.nth first 9));
    (* Worst-case voltage of the first sub-instance: 20 cycles over
       [0, 10] -> 2 V. *)
    Alcotest.(check (float 1e-12)) "voltage" 2. (float_of_string (List.nth first 10))
  | [] -> Alcotest.fail "no rows"

let test_voltages_match_policy () =
  let s = schedule () in
  let rows = Export.schedule_to_rows s in
  let from_policy = Lepts_dvs.Policy.worst_case_voltages s in
  List.iteri
    (fun k row ->
      Alcotest.(check (float 1e-9)) "agrees with dvs layer" from_policy.(k)
        (float_of_string (List.nth row 10)))
    rows

let suite =
  [ ("row count and arity", `Quick, test_row_count);
    ("csv shape", `Quick, test_csv_shape);
    ("values round-trip", `Quick, test_values_roundtrip);
    ("voltages match policy layer", `Quick, test_voltages_match_policy) ]

let test_csv_roundtrip () =
  let s = schedule () in
  let csv = Export.schedule_to_csv s in
  match Export.schedule_of_csv ~plan:s.Static_schedule.plan ~power csv with
  | Error msg -> Alcotest.failf "roundtrip failed: %s" msg
  | Ok s' ->
    Alcotest.(check (array (float 0.))) "end times" s.Static_schedule.end_times
      s'.Static_schedule.end_times;
    Alcotest.(check (array (float 0.))) "quotas" s.Static_schedule.quotas
      s'.Static_schedule.quotas

let test_csv_import_rejects () =
  let s = schedule () in
  let reject name input =
    match Export.schedule_of_csv ~plan:s.Static_schedule.plan ~power input with
    | Ok _ -> Alcotest.failf "%s accepted" name
    | Error _ -> ()
  in
  reject "empty" "";
  reject "bad header" "nope\n1,2,3\n";
  reject "row count" (Export.csv_header ^ "\n");
  (* Corrupt the first data row's index field. *)
  let good = Export.schedule_to_csv s in
  let corrupted =
    match String.split_on_char '\n' good with
    | header :: row :: rest ->
      String.concat "\n" (header :: ("x" ^ String.sub row 1 (String.length row - 1)) :: rest)
    | _ -> assert false
  in
  reject "corrupted row" corrupted

let suite =
  suite
  @ [ ("csv round-trip", `Quick, test_csv_roundtrip);
      ("csv import validation", `Quick, test_csv_import_rejects) ]
