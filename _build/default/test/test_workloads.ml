module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Model = Lepts_power.Model
module Random_gen = Lepts_workloads.Random_gen
module Cnc = Lepts_workloads.Cnc
module Gap = Lepts_workloads.Gap

let power = Model.ideal ~v_min:0.5 ~v_max:4. ()

let test_uunifast_sum () =
  let rng = Lepts_prng.Xoshiro256.create ~seed:1 in
  for _ = 1 to 100 do
    let n = 1 + Lepts_prng.Xoshiro256.int rng ~bound:10 in
    let u = Random_gen.uunifast ~rng ~n ~total:0.7 in
    let sum = Array.fold_left ( +. ) 0. u in
    Alcotest.(check (float 1e-9)) "sums to total" 0.7 sum;
    Array.iter (fun x -> if x < 0. then Alcotest.failf "negative utilisation %g" x) u
  done

let test_uunifast_marginals () =
  (* E[u_i] = total / n for every i (exchangeability). *)
  let rng = Lepts_prng.Xoshiro256.create ~seed:2 in
  let n = 4 and total = 1.0 and rounds = 20_000 in
  let sums = Array.make n 0. in
  for _ = 1 to rounds do
    let u = Random_gen.uunifast ~rng ~n ~total in
    Array.iteri (fun i x -> sums.(i) <- sums.(i) +. x) u
  done;
  Array.iter
    (fun s ->
      let mean = s /. float_of_int rounds in
      if Float.abs (mean -. (total /. float_of_int n)) > 0.01 then
        Alcotest.failf "biased marginal %g" mean)
    sums

let test_generate_properties () =
  let rng = Lepts_prng.Xoshiro256.create ~seed:7 in
  for n = 2 to 6 do
    let config = Random_gen.default_config ~n_tasks:n ~ratio:0.5 in
    match Random_gen.generate config ~power ~rng with
    | Error msg -> Alcotest.failf "generation failed: %s" msg
    | Ok ts ->
      Alcotest.(check int) "task count" n (Task_set.size ts);
      Alcotest.(check (float 1e-6)) "utilization" 0.7 (Task_set.utilization ts ~power);
      Alcotest.(check bool) "schedulable" true (Lepts_task.Rm.schedulable ts ~power);
      Alcotest.(check bool) "sub-instance cap" true
        (Lepts_preempt.Plan.sub_instance_count ts <= 1000);
      Array.iter
        (fun (t : Task.t) ->
          Alcotest.(check (float 1e-9)) "ratio respected" (0.5 *. t.Task.wcec) t.Task.bcec;
          Alcotest.(check (float 1e-9)) "acec midpoint"
            ((t.Task.bcec +. t.Task.wcec) /. 2.) t.Task.acec)
        (Task_set.tasks ts)
  done

let test_generate_deterministic () =
  let gen seed =
    let rng = Lepts_prng.Xoshiro256.create ~seed in
    Result.get_ok (Random_gen.generate (Random_gen.default_config ~n_tasks:4 ~ratio:0.1) ~power ~rng)
  in
  let a = gen 42 and b = gen 42 in
  Alcotest.(check bool) "same seed, same set" true
    (Array.for_all2 Task.equal (Task_set.tasks a) (Task_set.tasks b))

let test_generate_invalid () =
  let rng = Lepts_prng.Xoshiro256.create ~seed:1 in
  Alcotest.check_raises "bad n" (Invalid_argument "Random_gen.generate: n_tasks")
    (fun () ->
      ignore (Random_gen.generate (Random_gen.default_config ~n_tasks:0 ~ratio:0.1) ~power ~rng));
  Alcotest.check_raises "bad ratio"
    (Invalid_argument "Random_gen.generate: ratio out of [0, 1]") (fun () ->
      ignore
        (Random_gen.generate
           { (Random_gen.default_config ~n_tasks:2 ~ratio:0.1) with ratio = 2. }
           ~power ~rng))

let test_cnc_shape () =
  let ts = Cnc.task_set ~power ~ratio:0.1 () in
  Alcotest.(check int) "8 tasks" 8 (Task_set.size ts);
  Alcotest.(check (float 1e-6)) "70% utilization" 0.7 (Task_set.utilization ts ~power);
  Alcotest.(check bool) "schedulable" true (Lepts_task.Rm.schedulable ts ~power);
  Alcotest.(check int) "hyper-period 96 ticks" 96 (Task_set.hyper_period ts)

let test_cnc_period_structure () =
  let ts = Cnc.task_set ~power ~ratio:0.5 () in
  let periods =
    Array.to_list (Array.map (fun (t : Task.t) -> t.Task.period) (Task_set.tasks ts))
  in
  (* Priority order: five 2.4 ms tasks, two 4.8 ms, one 9.6 ms. *)
  Alcotest.(check (list int)) "periods" [ 24; 24; 24; 24; 24; 48; 48; 96 ] periods

let test_gap_shape () =
  let ts = Gap.task_set ~power ~ratio:0.1 () in
  Alcotest.(check int) "17 tasks" 17 (Task_set.size ts);
  Alcotest.(check (float 1e-6)) "70% utilization" 0.7 (Task_set.utilization ts ~power);
  Alcotest.(check bool) "schedulable" true (Lepts_task.Rm.schedulable ts ~power);
  Alcotest.(check int) "hyper-period 1200 ms" 1200 (Task_set.hyper_period ts)

let test_published_tables_consistent () =
  Alcotest.(check int) "cnc arrays" (Array.length Cnc.names) (Array.length Cnc.periods_ms);
  Alcotest.(check int) "cnc wcet" (Array.length Cnc.names) (Array.length Cnc.wcet_ms);
  Alcotest.(check int) "gap arrays" (Array.length Gap.names) (Array.length Gap.periods_ms);
  Alcotest.(check int) "gap wcet" (Array.length Gap.names) (Array.length Gap.wcet_ms)

let test_ratio_sweep_changes_only_variability () =
  (* WCECs are identical across ratios; only BCEC/ACEC move. *)
  let a = Cnc.task_set ~power ~ratio:0.1 () in
  let b = Cnc.task_set ~power ~ratio:0.9 () in
  Array.iter2
    (fun (ta : Task.t) (tb : Task.t) ->
      Alcotest.(check (float 1e-9)) "same wcec" ta.Task.wcec tb.Task.wcec;
      Alcotest.(check bool) "more variability at 0.1" true (ta.Task.bcec < tb.Task.bcec))
    (Task_set.tasks a) (Task_set.tasks b)

let suite =
  [ ("uunifast sums", `Quick, test_uunifast_sum);
    ("uunifast marginals", `Quick, test_uunifast_marginals);
    ("generator properties", `Quick, test_generate_properties);
    ("generator determinism", `Quick, test_generate_deterministic);
    ("generator validation", `Quick, test_generate_invalid);
    ("CNC shape", `Quick, test_cnc_shape);
    ("CNC period structure", `Quick, test_cnc_period_structure);
    ("GAP shape", `Quick, test_gap_shape);
    ("published tables consistent", `Quick, test_published_tables_consistent);
    ("ratio sweeps only variability", `Quick, test_ratio_sweep_changes_only_variability) ]
