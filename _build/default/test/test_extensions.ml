(* Extensions beyond the paper's headline algorithm: the paper-literal
   NLP formulation, the probability-weighted (stochastic) objective,
   and discrete voltage levels. *)

open Lepts_core
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Plan = Lepts_preempt.Plan
module Model = Lepts_power.Model
module Policy = Lepts_dvs.Policy
module Levels = Lepts_power.Levels

let power = Model.ideal ~v_min:1. ~v_max:4. ()

let motivation_plan () =
  Plan.expand
    (Task_set.create
       [ Task.create ~name:"t1" ~period:20 ~wcec:20. ~acec:10. ~bcec:0.;
         Task.create ~name:"t2" ~period:20 ~wcec:20. ~acec:10. ~bcec:0.;
         Task.create ~name:"t3" ~period:20 ~wcec:20. ~acec:10. ~bcec:0. ])

let preemptive_plan () =
  let power = Model.ideal ~v_min:0.5 ~v_max:4. () in
  ( Plan.expand
      (Task_set.scale_wcec_to_utilization
         (Task_set.create
            [ Task.with_ratio ~name:"a" ~period:4 ~wcec:4. ~ratio:0.1;
              Task.with_ratio ~name:"b" ~period:6 ~wcec:5. ~ratio:0.1;
              Task.with_ratio ~name:"c" ~period:12 ~wcec:8. ~ratio:0.1 ])
         ~power ~target:0.7),
    power )

let test_literal_nlp_matches_slack_formulation () =
  (* Both formulations encode the same mathematical program; on the
     motivational example both must find the (10, 15, 20) optimum. *)
  let plan = motivation_plan () in
  match Literal_nlp.solve ~mode:Objective.Average ~plan ~power () with
  | Error e -> Alcotest.failf "literal solve failed: %a" Solver.pp_error e
  | Ok (schedule, stats) ->
    Alcotest.(check bool) "feasible" true (Validate.is_feasible schedule);
    Alcotest.(check (float 0.2)) "e1" 10. schedule.Static_schedule.end_times.(0);
    Alcotest.(check (float 0.2)) "e2" 15. schedule.Static_schedule.end_times.(1);
    Alcotest.(check (float 0.2)) "e3" 20. schedule.Static_schedule.end_times.(2);
    Alcotest.(check (float 1.)) "same optimum as slack form" 120. stats.Solver.objective

let test_literal_nlp_wcs () =
  let plan = motivation_plan () in
  match Literal_nlp.solve ~mode:Objective.Worst ~plan ~power () with
  | Error e -> Alcotest.failf "literal WCS failed: %a" Solver.pp_error e
  | Ok (schedule, stats) ->
    Alcotest.(check bool) "feasible" true (Validate.is_feasible schedule);
    Alcotest.(check (float 1.)) "worst optimum 540" 540. stats.Solver.objective;
    ignore schedule

let test_literal_nlp_preemptive_agreement () =
  (* On a small preemptive instance, both formulations should land
     within a few percent of each other. *)
  let plan, power = preemptive_plan () in
  let slack, slack_stats = Result.get_ok (Solver.solve_acs ~plan ~power ()) in
  match Literal_nlp.solve ~mode:Objective.Average ~plan ~power () with
  | Error e -> Alcotest.failf "literal solve failed: %a" Solver.pp_error e
  | Ok (literal, literal_stats) ->
    Alcotest.(check bool) "both feasible" true
      (Validate.is_feasible slack && Validate.is_feasible literal);
    let gap =
      Float.abs (slack_stats.Solver.objective -. literal_stats.Solver.objective)
      /. slack_stats.Solver.objective
    in
    if gap > 0.10 then
      Alcotest.failf "formulations disagree: slack %g vs literal %g"
        slack_stats.Solver.objective literal_stats.Solver.objective

let test_stochastic_solver_feasible () =
  let plan, power = preemptive_plan () in
  match Solver.solve_stochastic ~scenarios:8 ~seed:3 ~plan ~power () with
  | Error e -> Alcotest.failf "stochastic solve failed: %a" Solver.pp_error e
  | Ok (schedule, stats) ->
    Alcotest.(check bool) "feasible" true (Validate.is_feasible schedule);
    Alcotest.(check bool) "violation resolved" true (stats.Solver.max_violation < 1e-3)

let test_stochastic_close_to_acs_on_simulation () =
  (* The stochastic objective optimises exactly what the simulation
     measures, so it must perform at least comparably to ACS. *)
  let plan, power = preemptive_plan () in
  let wcs, _ = Result.get_ok (Solver.solve_wcs ~plan ~power ()) in
  let warm = [ (wcs.Static_schedule.end_times, wcs.Static_schedule.quotas) ] in
  let acs, _ = Result.get_ok (Solver.solve_acs ~warm_starts:warm ~plan ~power ()) in
  let sto, _ =
    Result.get_ok (Solver.solve_stochastic ~warm_starts:warm ~scenarios:12 ~seed:5 ~plan ~power ())
  in
  let mean schedule =
    (Lepts_sim.Runner.simulate ~rounds:300 ~schedule ~policy:Policy.Greedy
       ~rng:(Lepts_prng.Xoshiro256.create ~seed:11) ())
      .Lepts_sim.Runner.mean_energy
  in
  let e_acs = mean acs and e_sto = mean sto in
  (* Allow 10% slack: both optimise closely related objectives. *)
  Alcotest.(check bool) "stochastic competitive with ACS" true
    (e_sto <= 1.10 *. e_acs)

let test_stochastic_deterministic () =
  let plan, power = preemptive_plan () in
  let run () =
    let s, _ = Result.get_ok (Solver.solve_stochastic ~scenarios:4 ~seed:9 ~plan ~power ()) in
    s.Static_schedule.end_times
  in
  Alcotest.(check (array (float 1e-12))) "same seed, same schedule" (run ()) (run ())

let test_stochastic_invalid () =
  let plan, power = preemptive_plan () in
  Alcotest.check_raises "scenarios positive"
    (Invalid_argument "Solver.solve_stochastic: scenarios") (fun () ->
      ignore (Solver.solve_stochastic ~scenarios:0 ~plan ~power ()))

let test_quantized_policy_energy_and_deadlines () =
  let plan, power = preemptive_plan () in
  let acs, _ = Result.get_ok (Solver.solve_acs ~plan ~power ()) in
  let levels = Levels.of_range ~v_min:0.5 ~v_max:4. ~steps:8 in
  let rng () = Lepts_prng.Xoshiro256.create ~seed:21 in
  let continuous =
    Lepts_sim.Runner.simulate ~rounds:200 ~schedule:acs ~policy:Policy.Greedy
      ~rng:(rng ()) ()
  in
  let quantized =
    Lepts_sim.Runner.simulate ~rounds:200 ~schedule:acs
      ~policy:(Policy.Greedy_quantized levels) ~rng:(rng ()) ()
  in
  Alcotest.(check int) "quantized meets deadlines" 0
    quantized.Lepts_sim.Runner.deadline_misses;
  Alcotest.(check bool) "quantized costs at least continuous" true
    (quantized.mean_energy >= continuous.mean_energy -. 1e-9);
  (* With 8 levels the overhead should stay moderate. *)
  Alcotest.(check bool) "overhead bounded" true
    (quantized.mean_energy <= 1.6 *. continuous.mean_energy)

let test_quantized_worst_case () =
  let plan, power = preemptive_plan () in
  let acs, _ = Result.get_ok (Solver.solve_acs ~plan ~power ()) in
  let levels = Levels.of_range ~v_min:0.5 ~v_max:4. ~steps:5 in
  let totals = Lepts_sim.Sampler.fixed plan ~value:`Wcec in
  let o =
    Lepts_sim.Event_sim.run ~schedule:acs ~policy:(Policy.Greedy_quantized levels)
      ~totals ()
  in
  Alcotest.(check int) "worst case meets deadlines" 0 o.Lepts_sim.Outcome.deadline_misses

let test_quantized_pp () =
  let levels = Levels.of_range ~v_min:1. ~v_max:4. ~steps:4 in
  Alcotest.(check string) "printer" "greedy-quantized(4 levels)"
    (Format.asprintf "%a" Policy.pp (Policy.Greedy_quantized levels))

let suite =
  [ ("literal NLP: ACS motivation", `Quick, test_literal_nlp_matches_slack_formulation);
    ("literal NLP: WCS motivation", `Quick, test_literal_nlp_wcs);
    ("literal NLP: preemptive agreement", `Slow, test_literal_nlp_preemptive_agreement);
    ("stochastic solver feasible", `Slow, test_stochastic_solver_feasible);
    ("stochastic competitive with ACS", `Slow, test_stochastic_close_to_acs_on_simulation);
    ("stochastic deterministic", `Slow, test_stochastic_deterministic);
    ("quantized policy energy & deadlines", `Quick, test_quantized_policy_energy_and_deadlines);
    ("quantized worst case", `Quick, test_quantized_worst_case);
    ("quantized printer", `Quick, test_quantized_pp) ]
