open Lepts_linalg

let check_float = Alcotest.(check (float 1e-9))
let vec = Alcotest.testable Vec.pp (Vec.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9))

let test_vec_basics () =
  Alcotest.check vec "add" [| 4.; 6. |] (Vec.add [| 1.; 2. |] [| 3.; 4. |]);
  Alcotest.check vec "sub" [| -2.; -2. |] (Vec.sub [| 1.; 2. |] [| 3.; 4. |]);
  Alcotest.check vec "scale" [| 2.; 4. |] (Vec.scale 2. [| 1.; 2. |]);
  Alcotest.check vec "axpy" [| 5.; 8. |] (Vec.axpy 2. [| 1.; 2. |] [| 3.; 4. |]);
  check_float "dot" 11. (Vec.dot [| 1.; 2. |] [| 3.; 4. |]);
  check_float "norm2" 5. (Vec.norm2 [| 3.; 4. |]);
  check_float "norm_inf" 4. (Vec.norm_inf [| 3.; -4. |]);
  check_float "dist2" 5. (Vec.dist2 [| 0.; 0. |] [| 3.; 4. |])

let test_vec_axpy_ip () =
  let y = [| 3.; 4. |] in
  Vec.axpy_ip 2. [| 1.; 2. |] ~into:y;
  Alcotest.check vec "in place" [| 5.; 8. |] y

let test_vec_mismatch () =
  Alcotest.check_raises "dot mismatch"
    (Invalid_argument "Vec.dot: dimension mismatch (2 vs 3)") (fun () ->
      ignore (Vec.dot [| 1.; 2. |] [| 1.; 2.; 3. |]))

let test_vec_helpers () =
  check_float "max_elt" 7. (Vec.max_elt [| 2.; 7.; 1. |]);
  Alcotest.check vec "concat" [| 1.; 2.; 3. |] (Vec.concat [ [| 1. |]; [| 2.; 3. |] ]);
  Alcotest.check vec "map" [| 1.; 4. |] (Vec.map (fun x -> x *. x) [| 1.; 2. |]);
  Alcotest.check vec "map2" [| 3.; 8. |]
    (Vec.map2 (fun a b -> a *. b) [| 1.; 2. |] [| 3.; 4. |])

let test_mat_identity () =
  let i3 = Mat.identity 3 in
  let v = [| 1.; 2.; 3. |] in
  Alcotest.check vec "I v = v" v (Mat.mul_vec i3 v)

let test_mat_mul_vec () =
  let m = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.check vec "Mv" [| 5.; 11. |] (Mat.mul_vec m [| 1.; 2. |])

let test_mat_transpose () =
  let m = Mat.of_rows [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let t = Mat.transpose m in
  Alcotest.(check (pair int int)) "dims" (3, 2) (Mat.dims t);
  Alcotest.(check (float 0.)) "element" 6. (Mat.get t 2 1)

let test_mat_mul () =
  let a = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Mat.of_rows [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let c = Mat.mul a b in
  Alcotest.(check (float 0.)) "swap columns" 2. (Mat.get c 0 0);
  Alcotest.(check (float 0.)) "swap columns" 1. (Mat.get c 0 1)

let test_solve_simple () =
  let a = Mat.of_rows [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let b = [| 5.; 10. |] in
  let x = Mat.solve a b in
  Alcotest.check vec "residual" b (Mat.mul_vec a x)

let test_solve_pivoting () =
  (* Requires row exchange: leading zero pivot. *)
  let a = Mat.of_rows [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let x = Mat.solve a [| 2.; 3. |] in
  Alcotest.check vec "permuted solve" [| 3.; 2. |] x

let test_solve_singular () =
  let a = Mat.of_rows [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" (Failure "Mat.solve: singular matrix") (fun () ->
      ignore (Mat.solve a [| 1.; 1. |]))

let test_solve_random_roundtrip () =
  let rng = Lepts_prng.Xoshiro256.create ~seed:33 in
  for _ = 1 to 20 do
    let n = 1 + Lepts_prng.Xoshiro256.int rng ~bound:8 in
    let a =
      Mat.of_rows
        (Array.init n (fun i ->
             Array.init n (fun j ->
                 Lepts_prng.Xoshiro256.uniform rng ~lo:(-1.) ~hi:1.
                 +. if i = j then float_of_int n else 0.)))
    in
    let x_true = Array.init n (fun _ -> Lepts_prng.Xoshiro256.uniform rng ~lo:(-5.) ~hi:5.) in
    let b = Mat.mul_vec a x_true in
    let x = Mat.solve a b in
    if Vec.dist2 x x_true > 1e-8 then Alcotest.failf "roundtrip failed (n=%d)" n
  done

let suite =
  [ ("vec basics", `Quick, test_vec_basics);
    ("vec axpy in place", `Quick, test_vec_axpy_ip);
    ("vec dimension mismatch", `Quick, test_vec_mismatch);
    ("vec helpers", `Quick, test_vec_helpers);
    ("mat identity", `Quick, test_mat_identity);
    ("mat mul_vec", `Quick, test_mat_mul_vec);
    ("mat transpose", `Quick, test_mat_transpose);
    ("mat mul", `Quick, test_mat_mul);
    ("solve simple", `Quick, test_solve_simple);
    ("solve with pivoting", `Quick, test_solve_pivoting);
    ("solve singular", `Quick, test_solve_singular);
    ("solve random roundtrip", `Quick, test_solve_random_roundtrip) ]
