module Rng = Lepts_prng.Xoshiro256
module Random_gen = Lepts_workloads.Random_gen
module Checkpoint = Lepts_robust.Checkpoint

type config = {
  task_counts : int list;
  ratios : float list;
  sets_per_point : int;
  rounds : int;
  seed : int;
}

let paper_config =
  { task_counts = [ 2; 4; 6; 8; 10 ]; ratios = [ 0.1; 0.5; 0.9 ];
    sets_per_point = 100; rounds = 1000; seed = 2005 }

let quick_config = { paper_config with sets_per_point = 3; rounds = 200 }

type point = {
  n_tasks : int;
  ratio : float;
  mean_improvement_pct : float;
  stddev_improvement_pct : float;
  sets_measured : int;
  total_misses : int;
}

(* Checkpoint codec for one set's measurement: absent (generation or
   solve failed) or the full Improvement record, floats bit-exact. *)
let set_fields = function
  | None -> [ "none" ]
  | Some (r : Improvement.t) ->
    [ "ok";
      Checkpoint.float_field r.Improvement.wcs_energy;
      Checkpoint.float_field r.Improvement.acs_energy;
      Checkpoint.float_field r.Improvement.improvement_pct;
      string_of_int r.Improvement.wcs_misses;
      string_of_int r.Improvement.acs_misses;
      string_of_int r.Improvement.sub_instances ]

let set_of_fields = function
  | [ "none" ] -> None
  | [ "ok"; we; ae; imp; wm; am; subs ] ->
    Some
      { Improvement.wcs_energy = Checkpoint.float_of_field we;
        acs_energy = Checkpoint.float_of_field ae;
        improvement_pct = Checkpoint.float_of_field imp;
        wcs_misses = int_of_string wm; acs_misses = int_of_string am;
        sub_instances = int_of_string subs }
  | fields ->
    failwith
      (Printf.sprintf "Fig6a: set entry has %d fields" (List.length fields))

let run_point ?(jobs = 1) ?(solver_jobs = 1) ?(warm_start = false) ?telemetry
    ?checkpoint ?should_stop config ~power ~n_tasks ~ratio =
  Lepts_obs.Span.with_ ~name:"fig6a:point" @@ fun () ->
  (* Pool workers open their spans with the point's path as explicit
     parent, so the merged span tree is identical for every [jobs]. *)
  let span_parent =
    match Lepts_obs.Span.current () with Some p -> p | None -> ""
  in
  (* Task sets are independent (per-set seeds), so the whole
     generate → solve → simulate pipeline of each set can run on its
     own domain; results come back indexed by set, and the reduction
     below walks them in set order — bit-identical for every [jobs]. *)
  let one_set set =
    Lepts_obs.Span.with_ ~parent:span_parent ~name:"set" @@ fun () ->
    (* One generator stream per (n, ratio, set) triple so points are
       independent and reproducible. *)
    let gen_seed =
      config.seed + (1_000_000 * n_tasks) + (10_000 * int_of_float (ratio *. 100.))
      + set
    in
    let rng = Rng.create ~seed:gen_seed in
    let gen_config = Random_gen.default_config ~n_tasks ~ratio in
    match Random_gen.generate gen_config ~power ~rng with
    | Error _ -> None
    | Ok task_set -> (
      match
        Improvement.measure ~rounds:config.rounds ~solver_jobs ~warm_start ?telemetry
          ~telemetry_tag:
            (Printf.sprintf "fig6a:n%d:r%.1f:set%d" n_tasks ratio set)
          ~task_set ~power ~sim_seed:(gen_seed + 7919) ()
      with
      | Error _ -> None
      | Ok r -> Some r)
  in
  (* Sets flow through the checkpointable driver, one section per
     (task count, ratio) point so keys never collide across points.
     [chunk:1] saves after every completed set — a set is the expensive
     unit here (generate + two NLP solves + simulations), so a crash
     loses at most one. *)
  let results =
    Checkpoint.map_indices ?session:checkpoint ?should_stop ~chunk:1
      ~section:(Printf.sprintf "set:n%d:r%g" n_tasks ratio)
      ~encode:set_fields ~decode:set_of_fields ~jobs ~n:config.sets_per_point
      ~f:one_set ()
  in
  let measured = List.filter_map Fun.id (Array.to_list results) in
  let arr = Array.of_list (List.map (fun r -> r.Improvement.improvement_pct) measured) in
  let misses =
    List.fold_left
      (fun acc r -> acc + r.Improvement.wcs_misses + r.Improvement.acs_misses)
      0 measured
  in
  { n_tasks; ratio;
    mean_improvement_pct = (if Array.length arr = 0 then Float.nan else Lepts_util.Stats.mean arr);
    stddev_improvement_pct = (if Array.length arr < 2 then 0. else Lepts_util.Stats.stddev arr);
    sets_measured = Array.length arr;
    total_misses = misses }

let run ?(progress = fun _ -> ()) ?(jobs = 1) ?(solver_jobs = 1)
    ?(warm_start = false) ?telemetry ?checkpoint ?should_stop config ~power =
  List.concat_map
    (fun n_tasks ->
      List.map
        (fun ratio ->
          let point =
            run_point ~jobs ~solver_jobs ~warm_start ?telemetry ?checkpoint
              ?should_stop config ~power ~n_tasks ~ratio
          in
          progress
            (Printf.sprintf "fig6a: n=%d ratio=%.1f -> %.1f%% (%d sets)" n_tasks
               ratio point.mean_improvement_pct point.sets_measured);
          point)
        config.ratios)
    config.task_counts

let to_table points =
  let table =
    Lepts_util.Table.create
      ~header:[ "tasks"; "BCEC/WCEC"; "improvement"; "stddev"; "sets"; "misses" ]
  in
  List.iter
    (fun p ->
      Lepts_util.Table.add_row table
        [ string_of_int p.n_tasks;
          Lepts_util.Table.float_cell ~decimals:1 p.ratio;
          Lepts_util.Table.percent_cell p.mean_improvement_pct;
          Lepts_util.Table.percent_cell p.stddev_improvement_pct;
          string_of_int p.sets_measured;
          string_of_int p.total_misses ])
    points;
  table
