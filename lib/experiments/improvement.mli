(** The paper's core measurement: percentage energy improvement of ACS
    over WCS at runtime.

    For one task set: solve WCS, solve ACS (warm-started from the WCS
    solution, which the ACS NLP can always fall back to), then simulate
    both schedules over the same sampled workload sequence with greedy
    online reclamation, and compare mean energies per hyper-period. *)

type t = {
  wcs_energy : float;  (** mean per hyper-period *)
  acs_energy : float;
  improvement_pct : float;  (** 100 * (wcs - acs) / wcs *)
  wcs_misses : int;
  acs_misses : int;
  sub_instances : int;
}

val measure :
  ?rounds:int ->
  ?jobs:int ->
  ?solver_jobs:int ->
  ?strong_baseline:bool ->
  ?warm_start:bool ->
  ?telemetry:Lepts_obs.Telemetry.collector ->
  ?telemetry_tag:string ->
  ?checkpoint:Lepts_robust.Checkpoint.session ->
  ?should_stop:(unit -> bool) ->
  task_set:Lepts_task.Task_set.t ->
  power:Lepts_power.Model.t ->
  sim_seed:int ->
  unit ->
  (t, Lepts_core.Solver.error) result
(** [measure ~task_set ~power ~sim_seed ()] runs the full pipeline on
    one task set. Both schedules are simulated with the same workload
    RNG seed (paired comparison). [rounds] defaults to 1000
    hyper-periods, the paper's setting. [jobs] (default 1) parallelises
    the simulation rounds across domains; [solver_jobs] (default 1)
    parallelises the multi-start NLP solves
    ({!Lepts_core.Solver.solve}). The result is bit-identical for every
    value of either (see {!Lepts_sim.Runner.simulate}).

    [strong_baseline] (default false) additionally warm-starts the WCS
    solve from the ACS solution (selected purely by worst-case energy).
    The default matches the paper's baseline — a worst-case-only solve
    whose average-case behaviour is incidental; the strong variant
    removes that arbitrariness and measures only the gain from knowing
    the workload distribution (see EXPERIMENTS.md).

    [warm_start] (default false) replaces the three-start ACS
    multi-start with one {!Lepts_core.Solver.solve_warm} continuation
    descent from the WCS solution — measurably faster on sweeps and
    never worse than that seed, but it may settle in a different local
    optimum than the cold multi-start, so results are comparable only
    within one setting of the flag (sweep checkpoints fingerprint
    it). Still bit-identical for every [jobs] / [solver_jobs] value.

    [telemetry] registers one convergence sink per NLP solve this
    measurement runs (labels ["wcs"] / ["acs"], suffixed with
    [":" ^ telemetry_tag] when a tag is given so sweep callers can tell
    their solves apart). Strictly observational — results are
    bit-identical with or without it.

    [checkpoint] persists completed simulation rounds (sections
    ["wcs-rounds"] / ["acs-rounds"]) so a killed measurement resumes
    without recomputing them; the NLP solves rerun on resume but are
    deterministic, so the resumed result is bit-identical. Do {e not}
    share one session between several [measure] calls — the sections
    would collide; sweeps checkpoint at their own unit instead
    ({!Fig6a}, {!Fig6b}). [should_stop] is polled between chunks and
    raises {!Lepts_robust.Checkpoint.Drained} after saving. *)

val pp : Format.formatter -> t -> unit
