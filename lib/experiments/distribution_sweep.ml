module Plan = Lepts_preempt.Plan
module Solver = Lepts_core.Solver
module Static_schedule = Lepts_core.Static_schedule
module Policy = Lepts_dvs.Policy
module Runner = Lepts_sim.Runner
module Sampler = Lepts_sim.Sampler
module Rng = Lepts_prng.Xoshiro256

type point = {
  label : string;
  dist : Sampler.distribution;
  wcs_energy : float;
  acs_energy : float;
  improvement_pct : float;
  misses : int;
}

let distributions =
  [ ("truncated normal (paper)", Sampler.Truncated_normal);
    ("uniform", Sampler.Uniform);
    ("bimodal p=0.1 (abstract)", Sampler.Bimodal { p_large = 0.1 });
    ("bimodal p=0.3", Sampler.Bimodal { p_large = 0.3 }) ]

let run ?(rounds = 400) ?(jobs = 1) ~task_set ~power ~seed () =
  let plan = Plan.expand task_set in
  match Solver.solve_wcs ~jobs ~plan ~power () with
  | Error _ as err -> err
  | Ok (wcs, _) -> (
    let warm = [ (wcs.Static_schedule.end_times, wcs.Static_schedule.quotas) ] in
    match Solver.solve_acs ~jobs ~warm_starts:warm ~plan ~power () with
    | Error _ as err -> err
    | Ok (acs, _) ->
      (* The distributions replay the two (immutable) schedules through
         independent simulations with their own RNGs, so each runs on
         its own domain; results come back in distribution order,
         bit-identical for every [jobs]. *)
      let dists = Array.of_list distributions in
      let one i =
        let label, dist = dists.(i) in
        let simulate schedule =
          Runner.simulate ~rounds ~dist ~schedule ~policy:Policy.Greedy
            ~rng:(Rng.create ~seed) ()
        in
        let sw = simulate wcs and sa = simulate acs in
        { label; dist;
          wcs_energy = sw.Runner.mean_energy;
          acs_energy = sa.Runner.mean_energy;
          improvement_pct =
            100. *. (sw.Runner.mean_energy -. sa.Runner.mean_energy)
            /. sw.Runner.mean_energy;
          misses = sw.Runner.deadline_misses + sa.Runner.deadline_misses }
      in
      let results, _ = Lepts_par.Pool.run ~jobs ~n:(Array.length dists) ~f:one in
      Ok (Array.to_list results))

let to_table points =
  let table =
    Lepts_util.Table.create
      ~header:[ "workload distribution"; "WCS"; "ACS"; "improvement"; "misses" ]
  in
  List.iter
    (fun p ->
      Lepts_util.Table.add_row table
        [ p.label;
          Lepts_util.Table.float_cell ~decimals:1 p.wcs_energy;
          Lepts_util.Table.float_cell ~decimals:1 p.acs_energy;
          Lepts_util.Table.percent_cell p.improvement_pct;
          string_of_int p.misses ])
    points;
  table
