module Plan = Lepts_preempt.Plan
module Solver = Lepts_core.Solver

type point = {
  ratio : float;
  predicted_energy : float;
  solve_s : float;
  outer_iterations : int;
  inner_iterations : int;
  continued : bool;
}

type t = { points : point list; total_s : float; warm : bool }

let run ?(warm = false) ?jobs ?(mode = Lepts_core.Objective.Average) ~ratios
    ~build ~power () =
  if ratios = [] then invalid_arg "Continuation.run: ratios must be non-empty";
  let t0 = Unix.gettimeofday () in
  let rec go prev acc = function
    | [] -> Ok (List.rev acc)
    | ratio :: rest -> (
      let plan = Plan.expand (build ~ratio) in
      let t1 = Unix.gettimeofday () in
      let solved =
        match prev with
        | Some p when warm ->
          Solver.resolve_incremental ?jobs ~mode ~prev:p ~plan ~power ()
        | _ -> Solver.solve ?jobs ~mode ~plan ~power ()
      in
      match solved with
      | Error _ as err -> err
      | Ok (schedule, stats) ->
        let point =
          { ratio; predicted_energy = stats.Solver.objective;
            solve_s = Unix.gettimeofday () -. t1;
            outer_iterations = stats.Solver.outer_iterations;
            inner_iterations = stats.Solver.inner_iterations;
            continued = (warm && prev <> None) }
        in
        go (Some schedule) (point :: acc) rest)
  in
  match go None [] ratios with
  | Error _ as err -> err
  | Ok points -> Ok { points; total_s = Unix.gettimeofday () -. t0; warm }

let to_table r =
  let table =
    Lepts_util.Table.create
      ~header:[ "BCEC/WCEC"; "energy"; "solve (s)"; "outer"; "inner"; "seeded" ]
  in
  List.iter
    (fun p ->
      Lepts_util.Table.add_row table
        [ Lepts_util.Table.float_cell ~decimals:1 p.ratio;
          Lepts_util.Table.float_cell p.predicted_energy;
          Lepts_util.Table.float_cell p.solve_s;
          string_of_int p.outer_iterations;
          string_of_int p.inner_iterations;
          string_of_bool p.continued ])
    r.points;
  table
