(** Quantifying the paper's "voltage transition overhead is negligible"
    assumption (§3, citing Mochocki et al.).

    Replays the same workload draws through the event simulator with
    increasing per-transition stall time and switching energy, and
    reports the energy inflation and any deadline misses. For realistic
    overheads (tens of microseconds per volt against millisecond-scale
    executions) the effect should be well under a percent — which is
    exactly the paper's claim; the sweep also shows where it breaks. *)

type point = {
  time_per_volt : float;  (** ms of stall per volt of change *)
  mean_energy : float;
  energy_inflation_pct : float;  (** vs the zero-overhead run *)
  deadline_misses : int;
}

val run :
  ?overheads:float list ->
  ?energy_per_volt_ratio:float ->
  ?rounds:int ->
  ?jobs:int ->
  task_set:Lepts_task.Task_set.t ->
  power:Lepts_power.Model.t ->
  seed:int ->
  unit ->
  (point list, Lepts_core.Solver.error) result
(** [run ~task_set ~power ~seed ()] solves the ACS schedule once, then
    simulates it under each overhead (default
    [0.; 0.001; 0.01; 0.05] ms/V; switching energy =
    [energy_per_volt_ratio] (default 0.1) energy units per volt).
    [jobs] (default 1) parallelises the solver's multi-start and the
    independent overhead replays; the point list is bit-identical for
    every value. *)

val to_table : point list -> Lepts_util.Table.t
