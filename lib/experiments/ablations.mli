(** Ablations of the design choices DESIGN.md calls out.

    Each function runs one comparison on a given task set and returns a
    printable table:

    - {!formulations}: the production slack-parametrised NLP vs the
      paper-literal constrained formulation (predicted energy and
      solve time);
    - {!objectives}: ACS (ACEC point) vs the stochastic
      probability-weighted objective vs WCS, judged by simulated mean
      energy;
    - {!quantization}: continuous greedy reclamation vs discrete
      voltage levels of varying granularity;
    - {!structures}: preemptive vs non-preemptive plans on the same
      task set (where the non-preemptive one is schedulable), plus the
      YDS lower bound for context.

    Every comparison accepts [jobs] (default 1): it parallelises the
    solver's multi-start and, where a simulation is involved, the
    simulation rounds — tables are bit-identical for every value.

    Every comparison also accepts [warm_start] (default [false]): each
    ACS-style solve becomes one continuation descent from a fresh WCS
    solution ({!Lepts_core.Solver.solve_warm}) instead of the cold
    multi-start — faster, never worse than the WCS seed, but a distinct
    configuration (fewer basins explored), so persisted results must
    key on the flag (the CLI folds [--warm-start] into its checkpoint
    fingerprint). *)

val formulations :
  ?jobs:int ->
  ?warm_start:bool ->
  task_set:Lepts_task.Task_set.t ->
  power:Lepts_power.Model.t ->
  unit ->
  (Lepts_util.Table.t, Lepts_core.Solver.error) result

val objectives :
  ?rounds:int ->
  ?jobs:int ->
  ?warm_start:bool ->
  task_set:Lepts_task.Task_set.t ->
  power:Lepts_power.Model.t ->
  seed:int ->
  unit ->
  (Lepts_util.Table.t, Lepts_core.Solver.error) result
(** [warm_start] here reuses the WCS arm the table already solves as the
    continuation seed, so it costs nothing extra. *)

val quantization :
  ?rounds:int ->
  ?steps:int list ->
  ?jobs:int ->
  ?warm_start:bool ->
  task_set:Lepts_task.Task_set.t ->
  power:Lepts_power.Model.t ->
  seed:int ->
  unit ->
  (Lepts_util.Table.t, Lepts_core.Solver.error) result

val structures :
  ?jobs:int ->
  ?warm_start:bool ->
  task_set:Lepts_task.Task_set.t ->
  power:Lepts_power.Model.t ->
  unit ->
  (Lepts_util.Table.t, Lepts_core.Solver.error) result
