(** Ablations of the design choices DESIGN.md calls out.

    Each function runs one comparison on a given task set and returns a
    printable table:

    - {!formulations}: the production slack-parametrised NLP vs the
      paper-literal constrained formulation (predicted energy and
      solve time);
    - {!objectives}: ACS (ACEC point) vs the stochastic
      probability-weighted objective vs WCS, judged by simulated mean
      energy;
    - {!quantization}: continuous greedy reclamation vs discrete
      voltage levels of varying granularity;
    - {!structures}: preemptive vs non-preemptive plans on the same
      task set (where the non-preemptive one is schedulable), plus the
      YDS lower bound for context.

    Every comparison accepts [jobs] (default 1): it parallelises the
    solver's multi-start and, where a simulation is involved, the
    simulation rounds — tables are bit-identical for every value. *)

val formulations :
  ?jobs:int ->
  task_set:Lepts_task.Task_set.t ->
  power:Lepts_power.Model.t ->
  unit ->
  (Lepts_util.Table.t, Lepts_core.Solver.error) result

val objectives :
  ?rounds:int ->
  ?jobs:int ->
  ?warm_start:bool ->
  task_set:Lepts_task.Task_set.t ->
  power:Lepts_power.Model.t ->
  seed:int ->
  unit ->
  (Lepts_util.Table.t, Lepts_core.Solver.error) result
(** [warm_start] (default false) solves the ACS arm as one continuation
    descent from the WCS solution ({!Lepts_core.Solver.solve_warm})
    instead of the warm-listed multi-start — faster, never worse than
    the WCS seed, but a distinct configuration (fewer basins
    explored). *)

val quantization :
  ?rounds:int ->
  ?steps:int list ->
  ?jobs:int ->
  task_set:Lepts_task.Task_set.t ->
  power:Lepts_power.Model.t ->
  seed:int ->
  unit ->
  (Lepts_util.Table.t, Lepts_core.Solver.error) result

val structures :
  ?jobs:int ->
  task_set:Lepts_task.Task_set.t ->
  power:Lepts_power.Model.t ->
  unit ->
  (Lepts_util.Table.t, Lepts_core.Solver.error) result
