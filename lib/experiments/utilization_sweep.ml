module Task_set = Lepts_task.Task_set

type point = {
  utilization : float;
  improvement_pct : float;
  wcs_energy : float;
  acs_energy : float;
}

let run ?(utilizations = [ 0.3; 0.5; 0.7; 0.9 ]) ?(rounds = 400) ?(jobs = 1)
    ~task_set ~power ~seed () =
  (* Each utilisation point is an independent scale → solve → simulate
     pipeline, so the points run on their own domains; results come
     back indexed by point and are reduced in sweep order, making the
     output bit-identical for every [jobs]. *)
  let points = Array.of_list utilizations in
  let one i =
    let u = points.(i) in
    let scaled = Task_set.scale_wcec_to_utilization task_set ~power ~target:u in
    match Improvement.measure ~rounds ~task_set:scaled ~power ~sim_seed:seed () with
    | Error _ -> None
    | Ok r ->
      Some
        { utilization = u;
          improvement_pct = r.Improvement.improvement_pct;
          wcs_energy = r.Improvement.wcs_energy;
          acs_energy = r.Improvement.acs_energy }
  in
  let results, _ = Lepts_par.Pool.run ~jobs ~n:(Array.length points) ~f:one in
  List.filter_map Fun.id (Array.to_list results)

let to_table points =
  let table =
    Lepts_util.Table.create
      ~header:[ "utilization"; "WCS energy"; "ACS energy"; "improvement" ]
  in
  List.iter
    (fun p ->
      Lepts_util.Table.add_row table
        [ Lepts_util.Table.float_cell ~decimals:2 p.utilization;
          Lepts_util.Table.float_cell ~decimals:1 p.wcs_energy;
          Lepts_util.Table.float_cell ~decimals:1 p.acs_energy;
          Lepts_util.Table.percent_cell p.improvement_pct ])
    points;
  table
