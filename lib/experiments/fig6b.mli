(** Fig. 6(b): improvement of ACS over WCS on the real-life CNC and GAP
    task sets, by BCEC/WCEC ratio. *)

type config = {
  ratios : float list;  (** paper: [0.1; 0.5; 0.9] *)
  rounds : int;  (** hyper-periods per simulation; paper: 1000 *)
  seed : int;
  include_gap : bool;
      (** the GAP NLP has ~1200 sub-instances and takes tens of seconds
          per solve; benches may skip it *)
}

val paper_config : config
val quick_config : config

type point = {
  application : string;  (** "CNC" or "GAP" *)
  ratio : float;
  improvement_pct : float;
  misses : int;
}

val run :
  ?progress:(string -> unit) ->
  ?jobs:int ->
  ?warm_start:bool ->
  ?telemetry:Lepts_obs.Telemetry.collector ->
  ?checkpoint:Lepts_robust.Checkpoint.session ->
  ?should_stop:(unit -> bool) ->
  config ->
  power:Lepts_power.Model.t ->
  point list
(** [jobs] (default 1) parallelises each measurement's simulation
    rounds; results are bit-identical for every value. [warm_start]
    (default false) runs each cell's ACS solve as a continuation from
    its WCS solution ({!Improvement.measure}); the flag changes
    results, so checkpoint fingerprints must include it. Within a
    cell the WCS→ACS continuation is the only warm chain — cells stay
    independent so checkpointed cells resume bit-identically (see
    EXPERIMENTS.md on continuation order). [telemetry]
    captures convergence traces of the NLP solves (labels like
    [acs:fig6b:CNC:r0.5]); points run under [fig6b:point] spans.

    [checkpoint] saves each completed (application, ratio) cell
    (section ["point"]) so a killed sweep resumes without re-solving
    finished cells; [progress] lines are emitted after the sweep
    completes, in cell order, so stdout is byte-identical across
    resume. [should_stop] is polled between cells and raises
    {!Lepts_robust.Checkpoint.Drained} after saving. *)

val to_table : point list -> Lepts_util.Table.t
