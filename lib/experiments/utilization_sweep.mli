(** Sensitivity of the ACS gain to worst-case processor utilisation.

    The paper fixes utilisation at 70 %; this extension sweeps it. Two
    regimes bound the effect: at low utilisation even WCS has abundant
    static slack (both schedules approach the energy floor), while near
    100 % there is no room to move end-times at all — the interesting
    regime is in between. *)

type point = {
  utilization : float;
  improvement_pct : float;
  wcs_energy : float;
  acs_energy : float;
}

val run :
  ?utilizations:float list ->
  ?rounds:int ->
  ?jobs:int ->
  task_set:Lepts_task.Task_set.t ->
  power:Lepts_power.Model.t ->
  seed:int ->
  unit ->
  point list
(** [run ~task_set ~power ~seed ()] rescales [task_set]'s cycle counts
    to each utilisation (default [0.3; 0.5; 0.7; 0.9]) and measures the
    improvement of ACS over WCS (default 400 hyper-periods).
    Utilisations whose scaled set is unschedulable are skipped. [jobs]
    (default 1) runs the independent utilisation points on up to that
    many domains; the point list is bit-identical for every value. *)

val to_table : point list -> Lepts_util.Table.t
