(** How the ACS gain depends on the {e shape} of the workload
    distribution, not just its support.

    The paper's abstract motivates ACS with "tasks that normally
    require a small number of cycles but occasionally a large number"
    — a bimodal distribution — while its evaluation samples a truncated
    normal. This extension measures the improvement under truncated
    normal, uniform and bimodal workloads on the same task set and
    schedules: the more mass sits far below the WCEC, the more slack
    greedy reclamation finds, and the more the end-time placement
    matters. *)

type point = {
  label : string;
  dist : Lepts_sim.Sampler.distribution;
  wcs_energy : float;
  acs_energy : float;
  improvement_pct : float;
  misses : int;
}

val run :
  ?rounds:int ->
  ?jobs:int ->
  task_set:Lepts_task.Task_set.t ->
  power:Lepts_power.Model.t ->
  seed:int ->
  unit ->
  (point list, Lepts_core.Solver.error) result
(** Solves WCS and ACS once, then simulates both under each
    distribution with paired seeds (default 400 rounds each). [jobs]
    (default 1) parallelises the solver's multi-start and the
    independent per-distribution replays; the point list is
    bit-identical for every value. *)

val to_table : point list -> Lepts_util.Table.t
