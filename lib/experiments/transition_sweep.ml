module Plan = Lepts_preempt.Plan
module Solver = Lepts_core.Solver
module Policy = Lepts_dvs.Policy
module Event_sim = Lepts_sim.Event_sim
module Sampler = Lepts_sim.Sampler
module Rng = Lepts_prng.Xoshiro256

type point = {
  time_per_volt : float;
  mean_energy : float;
  energy_inflation_pct : float;
  deadline_misses : int;
}

let run ?(overheads = [ 0.; 0.001; 0.01; 0.05 ]) ?(energy_per_volt_ratio = 0.1)
    ?(rounds = 300) ?(jobs = 1) ~task_set ~power ~seed () =
  let plan = Plan.expand task_set in
  match Solver.solve_acs ~jobs ~plan ~power () with
  | Error _ as err -> err
  | Ok (schedule, _) ->
    (* Same workload draws for every overhead level. *)
    let rng = Rng.create ~seed in
    let draws = List.init rounds (fun _ -> Sampler.instance_totals plan ~rng) in
    let measure transition =
      let energy = ref 0. and misses = ref 0 in
      List.iter
        (fun totals ->
          let o = Event_sim.run ?transition ~schedule ~policy:Policy.Greedy ~totals () in
          energy := !energy +. o.Lepts_sim.Outcome.energy;
          misses := !misses + o.Lepts_sim.Outcome.deadline_misses)
        draws;
      (!energy /. float_of_int rounds, !misses)
    in
    let baseline, _ = measure None in
    (* The overhead levels replay the same (immutable) draws through
       independent simulations, so they run on their own domains;
       results come back in overhead order, bit-identical for every
       [jobs]. *)
    let levels = Array.of_list overheads in
    let one i =
      let time_per_volt = levels.(i) in
      let transition =
        if time_per_volt = 0. then None
        else
          Some { Event_sim.time_per_volt; energy_per_volt = energy_per_volt_ratio }
      in
      let mean_energy, deadline_misses = measure transition in
      { time_per_volt; mean_energy;
        energy_inflation_pct = 100. *. (mean_energy -. baseline) /. baseline;
        deadline_misses }
    in
    let results, _ = Lepts_par.Pool.run ~jobs ~n:(Array.length levels) ~f:one in
    Ok (Array.to_list results)

let to_table points =
  let table =
    Lepts_util.Table.create
      ~header:[ "stall (ms/V)"; "mean energy"; "inflation"; "misses" ]
  in
  List.iter
    (fun p ->
      Lepts_util.Table.add_row table
        [ Printf.sprintf "%.3f" p.time_per_volt;
          Lepts_util.Table.float_cell p.mean_energy;
          Lepts_util.Table.percent_cell p.energy_inflation_pct;
          string_of_int p.deadline_misses ])
    points;
  table
