type config = { ratios : float list; rounds : int; seed : int; include_gap : bool }

let paper_config = { ratios = [ 0.1; 0.5; 0.9 ]; rounds = 1000; seed = 2005; include_gap = true }
let quick_config = { paper_config with rounds = 100 }

type point = {
  application : string;
  ratio : float;
  improvement_pct : float;
  misses : int;
}

let applications config =
  ("CNC", fun ~power ~ratio -> Lepts_workloads.Cnc.task_set ~power ~ratio ())
  ::
  (if config.include_gap then
     [ ("GAP", fun ~power ~ratio -> Lepts_workloads.Gap.task_set ~power ~ratio ()) ]
   else [])

let run ?(progress = fun _ -> ()) ?(jobs = 1) ?telemetry config ~power =
  (* Few points here (two applications, three ratios): parallelism
     lives inside each measurement, across its simulation rounds. *)
  List.concat_map
    (fun (name, build) ->
      List.filter_map
        (fun ratio ->
          Lepts_obs.Span.with_ ~name:"fig6b:point" @@ fun () ->
          let task_set = build ~power ~ratio in
          match
            Improvement.measure ~rounds:config.rounds ~jobs ?telemetry
              ~telemetry_tag:(Printf.sprintf "fig6b:%s:r%.1f" name ratio)
              ~task_set ~power
              ~sim_seed:(config.seed + int_of_float (ratio *. 1000.)) ()
          with
          | Error _ ->
            progress (Printf.sprintf "fig6b: %s ratio=%.1f -> solver failed" name ratio);
            None
          | Ok r ->
            progress
              (Printf.sprintf "fig6b: %s ratio=%.1f -> %.1f%%" name ratio
                 r.Improvement.improvement_pct);
            Some
              { application = name; ratio;
                improvement_pct = r.Improvement.improvement_pct;
                misses = r.Improvement.wcs_misses + r.Improvement.acs_misses })
        config.ratios)
    (applications config)

let to_table points =
  let table =
    Lepts_util.Table.create ~header:[ "application"; "BCEC/WCEC"; "improvement"; "misses" ]
  in
  List.iter
    (fun p ->
      Lepts_util.Table.add_row table
        [ p.application;
          Lepts_util.Table.float_cell ~decimals:1 p.ratio;
          Lepts_util.Table.percent_cell p.improvement_pct;
          string_of_int p.misses ])
    points;
  table
