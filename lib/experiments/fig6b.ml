type config = { ratios : float list; rounds : int; seed : int; include_gap : bool }

let paper_config = { ratios = [ 0.1; 0.5; 0.9 ]; rounds = 1000; seed = 2005; include_gap = true }
let quick_config = { paper_config with rounds = 100 }

type point = {
  application : string;
  ratio : float;
  improvement_pct : float;
  misses : int;
}

let applications config =
  ("CNC", fun ~power ~ratio -> Lepts_workloads.Cnc.task_set ~power ~ratio ())
  ::
  (if config.include_gap then
     [ ("GAP", fun ~power ~ratio -> Lepts_workloads.Gap.task_set ~power ~ratio ()) ]
   else [])

(* Checkpoint codec for one (application, ratio) cell: absent when the
   solver failed, otherwise the full point. Application names are
   whitespace-free, so they are valid entry fields as-is. *)
let point_fields = function
  | None -> [ "none" ]
  | Some p ->
    [ "ok"; p.application;
      Lepts_robust.Checkpoint.float_field p.ratio;
      Lepts_robust.Checkpoint.float_field p.improvement_pct;
      string_of_int p.misses ]

let point_of_fields = function
  | [ "none" ] -> None
  | [ "ok"; application; ratio; imp; misses ] ->
    Some
      { application;
        ratio = Lepts_robust.Checkpoint.float_of_field ratio;
        improvement_pct = Lepts_robust.Checkpoint.float_of_field imp;
        misses = int_of_string misses }
  | fields ->
    failwith
      (Printf.sprintf "Fig6b: point entry has %d fields" (List.length fields))

let run ?(progress = fun _ -> ()) ?(jobs = 1) ?(warm_start = false) ?telemetry
    ?checkpoint ?should_stop config ~power =
  (* Few points here (two applications, three ratios): parallelism
     lives inside each measurement, across its simulation rounds — the
     cell map itself stays sequential. Cells flow through the
     checkpoint driver (one cell per chunk), and progress lines are
     emitted only after the map completes, so a resumed run's stdout
     is byte-identical to an uninterrupted one's. *)
  let cells =
    Array.of_list
      (List.concat_map
         (fun (name, build) ->
           List.map (fun ratio -> (name, build, ratio)) config.ratios)
         (applications config))
  in
  let one i =
    let name, build, ratio = cells.(i) in
    Lepts_obs.Span.with_ ~name:"fig6b:point" @@ fun () ->
    let task_set = build ~power ~ratio in
    match
      Improvement.measure ~rounds:config.rounds ~jobs ~warm_start ?telemetry
        ~telemetry_tag:(Printf.sprintf "fig6b:%s:r%.1f" name ratio)
        ~task_set ~power
        ~sim_seed:(config.seed + int_of_float (ratio *. 1000.)) ()
    with
    | Error _ -> None
    | Ok r ->
      Some
        { application = name; ratio;
          improvement_pct = r.Improvement.improvement_pct;
          misses = r.Improvement.wcs_misses + r.Improvement.acs_misses }
  in
  let results =
    Lepts_robust.Checkpoint.map_indices ?session:checkpoint ?should_stop
      ~chunk:1 ~section:"point" ~encode:point_fields ~decode:point_of_fields
      ~jobs:1 ~n:(Array.length cells) ~f:one ()
  in
  Array.iteri
    (fun i res ->
      let name, _, ratio = cells.(i) in
      match res with
      | None ->
        progress
          (Printf.sprintf "fig6b: %s ratio=%.1f -> solver failed" name ratio)
      | Some p ->
        progress
          (Printf.sprintf "fig6b: %s ratio=%.1f -> %.1f%%" name ratio
             p.improvement_pct))
    results;
  List.filter_map Fun.id (Array.to_list results)

let to_table points =
  let table =
    Lepts_util.Table.create ~header:[ "application"; "BCEC/WCEC"; "improvement"; "misses" ]
  in
  List.iter
    (fun p ->
      Lepts_util.Table.add_row table
        [ p.application;
          Lepts_util.Table.float_cell ~decimals:1 p.ratio;
          Lepts_util.Table.percent_cell p.improvement_pct;
          string_of_int p.misses ])
    points;
  table
