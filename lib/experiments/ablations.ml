module Plan = Lepts_preempt.Plan
module Solver = Lepts_core.Solver
module Literal_nlp = Lepts_core.Literal_nlp
module Static_schedule = Lepts_core.Static_schedule
module Objective = Lepts_core.Objective
module Yds = Lepts_core.Yds
module Policy = Lepts_dvs.Policy
module Runner = Lepts_sim.Runner
module Rng = Lepts_prng.Xoshiro256
module Table = Lepts_util.Table

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* The ACS arm shared by the ablations: the cold multi-start, or — with
   [warm_start] — one {!Solver.solve_warm} continuation seeded from a
   fresh WCS solve (the same reduction {!objectives} uses). *)
let solve_acs_arm ~jobs ~warm_start ~plan ~power () =
  if warm_start then
    match Solver.solve_wcs ~jobs ~plan ~power () with
    | Error _ as err -> err
    | Ok (wcs, _) ->
      Solver.solve_warm ~jobs ~mode:Objective.Average ~prev:wcs ~plan ~power ()
  else Solver.solve_acs ~jobs ~plan ~power ()

let formulations ?(jobs = 1) ?(warm_start = false) ~task_set ~power () =
  let plan = Plan.expand task_set in
  let slack, slack_t =
    time (fun () -> solve_acs_arm ~jobs ~warm_start ~plan ~power ())
  in
  match slack with
  | Error _ as err -> err
  | Ok (_, slack_stats) -> (
    let literal, literal_t =
      time (fun () -> Literal_nlp.solve ~mode:Objective.Average ~plan ~power ())
    in
    match literal with
    | Error _ as err -> err
    | Ok (_, literal_stats) ->
      let table =
        Table.create ~header:[ "formulation"; "avg energy"; "violation"; "time (s)" ]
      in
      Table.add_row table
        [ "slack (production)";
          Table.float_cell slack_stats.Solver.objective;
          Printf.sprintf "%.1e" slack_stats.Solver.max_violation;
          Table.float_cell slack_t ];
      Table.add_row table
        [ "literal (paper eqns)";
          Table.float_cell literal_stats.Solver.objective;
          Printf.sprintf "%.1e" literal_stats.Solver.max_violation;
          Table.float_cell literal_t ];
      Ok table)

let simulate ?(jobs = 1) ~rounds ~schedule ~policy ~seed () =
  Runner.simulate ~rounds ~jobs ~schedule ~policy ~rng:(Rng.create ~seed) ()

let objectives ?(rounds = 500) ?(jobs = 1) ?(warm_start = false) ~task_set
    ~power ~seed () =
  let plan = Plan.expand task_set in
  match Solver.solve_wcs ~jobs ~plan ~power () with
  | Error _ as err -> err
  | Ok (wcs, _) -> (
    let warm = [ (wcs.Static_schedule.end_times, wcs.Static_schedule.quotas) ] in
    let acs_result =
      if warm_start then
        Solver.solve_warm ~jobs ~mode:Lepts_core.Objective.Average ~prev:wcs
          ~plan ~power ()
      else Solver.solve_acs ~jobs ~warm_starts:warm ~plan ~power ()
    in
    match acs_result with
    | Error _ as err -> err
    | Ok (acs, _) -> (
      match
        Solver.solve_stochastic ~jobs ~warm_starts:warm ~scenarios:12 ~seed ~plan
          ~power ()
      with
      | Error _ as err -> err
      | Ok (stochastic, _) ->
        let table =
          Table.create ~header:[ "objective"; "sim mean energy"; "misses" ]
        in
        List.iter
          (fun (name, schedule) ->
            let s =
              simulate ~jobs ~rounds ~schedule ~policy:Policy.Greedy ~seed:(seed + 1) ()
            in
            Table.add_row table
              [ name; Table.float_cell s.Runner.mean_energy;
                string_of_int s.Runner.deadline_misses ])
          [ ("WCS (worst-case point)", wcs); ("ACS (ACEC point)", acs);
            ("stochastic (12 scenarios)", stochastic) ];
        Ok table))

let quantization ?(rounds = 500) ?(steps = [ 4; 8; 16 ]) ?(jobs = 1)
    ?(warm_start = false) ~task_set ~power ~seed () =
  let plan = Plan.expand task_set in
  match solve_acs_arm ~jobs ~warm_start ~plan ~power () with
  | Error _ as err -> err
  | Ok (acs, _) ->
    let table = Table.create ~header:[ "voltage levels"; "sim mean energy"; "overhead" ] in
    let continuous = simulate ~jobs ~rounds ~schedule:acs ~policy:Policy.Greedy ~seed () in
    Table.add_row table
      [ "continuous"; Table.float_cell continuous.Runner.mean_energy; "-" ];
    List.iter
      (fun n ->
        let levels =
          Lepts_power.Levels.of_range ~v_min:power.Lepts_power.Model.v_min
            ~v_max:power.Lepts_power.Model.v_max ~steps:n
        in
        let s =
          simulate ~jobs ~rounds ~schedule:acs ~policy:(Policy.Greedy_quantized levels)
            ~seed ()
        in
        Table.add_row table
          [ string_of_int n;
            Table.float_cell s.Runner.mean_energy;
            Table.percent_cell
              (100. *. (s.Runner.mean_energy -. continuous.Runner.mean_energy)
               /. continuous.Runner.mean_energy) ])
      steps;
    Ok table

let structures ?(jobs = 1) ?(warm_start = false) ~task_set ~power () =
  let preemptive = Plan.expand task_set in
  match solve_acs_arm ~jobs ~warm_start ~plan:preemptive ~power () with
  | Error _ as err -> err
  | Ok (p_acs, p_stats) ->
    let table =
      Table.create ~header:[ "structure"; "sub-instances"; "avg energy" ]
    in
    Table.add_row table
      [ "preemptive (RM segments)";
        string_of_int (Plan.size preemptive);
        Table.float_cell p_stats.Solver.objective ];
    (match
       solve_acs_arm ~jobs ~warm_start
         ~plan:(Plan.expand_nonpreemptive task_set) ~power ()
     with
    | Error _ ->
      Table.add_row table [ "non-preemptive"; "-"; "unschedulable" ]
    | Ok (_, np_stats) ->
      Table.add_row table
        [ "non-preemptive";
          string_of_int (Plan.size (Plan.expand_nonpreemptive task_set));
          Table.float_cell np_stats.Solver.objective ]);
    Table.add_row table
      [ "YDS bound (EDF, worst-case)"; "-";
        Table.float_cell (Yds.lower_bound ~power task_set) ];
    ignore p_acs;
    Ok table
