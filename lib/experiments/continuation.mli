(** Warm-start continuation sweep over BCEC/WCEC ratios.

    Neighbouring ratios of the same application share plan structure
    (the ratio only rescales BCEC/ACEC), so each point's solve can
    continue from the previous point's solution
    ({!Lepts_core.Solver.resolve_incremental}) instead of restarting
    the full multi-start. This module runs one ratio sweep either cold
    or warm and reports per-point solve times — the bench compares the
    two to quantify the sweep-level win.

    Deliberately {e not} checkpointed: chaining point [i] from point
    [i-1] makes points order-dependent, which is incompatible with the
    checkpointed sweeps' resume-any-subset guarantee. Fig6a/Fig6b
    therefore warm-start only {e within} a measurement (ACS from WCS)
    and keep cells independent; cross-point chaining lives here, where
    the whole sweep is one unit (see EXPERIMENTS.md). *)

type point = {
  ratio : float;
  predicted_energy : float;  (** solver objective at this point *)
  solve_s : float;  (** wall-clock of this point's solve *)
  outer_iterations : int;
  inner_iterations : int;  (** 0/0 = the warm seed was kept as-is *)
  continued : bool;  (** seeded from the previous point's solution *)
}

type t = { points : point list; total_s : float; warm : bool }

val run :
  ?warm:bool ->
  ?jobs:int ->
  ?mode:Lepts_core.Objective.mode ->
  ratios:float list ->
  build:(ratio:float -> Lepts_task.Task_set.t) ->
  power:Lepts_power.Model.t ->
  unit ->
  (t, Lepts_core.Solver.error) result
(** Solves [build ~ratio] for each ratio in list order. [warm]
    (default false) seeds each solve from the previous point's
    schedule; the first point is always cold, so a warm and a cold
    sweep agree bit-for-bit on it. [jobs] parallelises the multi-start
    of cold solves (and of structural-fallback cases); warm
    continuations are a single descent. [mode] defaults to
    {!Lepts_core.Objective.Average} (ACS). Fails with the first
    point's solver error, if any. *)

val to_table : t -> Lepts_util.Table.t
