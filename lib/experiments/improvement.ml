module Plan = Lepts_preempt.Plan
module Solver = Lepts_core.Solver
module Static_schedule = Lepts_core.Static_schedule
module Runner = Lepts_sim.Runner
module Policy = Lepts_dvs.Policy
module Rng = Lepts_prng.Xoshiro256

type t = {
  wcs_energy : float;
  acs_energy : float;
  improvement_pct : float;
  wcs_misses : int;
  acs_misses : int;
  sub_instances : int;
}

(* On small plans the paper-literal NLP formulation is cheap and
   occasionally escapes local minima the slack formulation falls into
   (and vice versa); take the better of the two by predicted energy. *)
let refine_with_literal ~mode ~plan ~power (best : Lepts_core.Static_schedule.t) =
  if Plan.size plan > 120 then best
  else
    match Lepts_core.Literal_nlp.solve ~mode ~plan ~power () with
    | Error _ -> best
    | Ok (candidate, _) ->
      if
        Lepts_core.Static_schedule.predicted_energy candidate ~mode
        < Lepts_core.Static_schedule.predicted_energy best ~mode
        && Lepts_core.Validate.is_feasible candidate
      then candidate
      else best

let measure ?(rounds = 1000) ?(jobs = 1) ?(solver_jobs = 1) ?(strong_baseline = false)
    ?(warm_start = false) ?telemetry ?(telemetry_tag = "") ?checkpoint ?should_stop
    ~task_set ~power ~sim_seed () =
  if rounds <= 0 then invalid_arg "Improvement.measure: rounds must be positive";
  (* One convergence sink per NLP this measurement runs, labelled by
     the caller's tag so a sweep's solves stay distinguishable. *)
  let sink kind =
    match telemetry with
    | None -> None
    | Some collector ->
      Lepts_obs.Telemetry.register collector
        ~label:(if telemetry_tag = "" then kind else kind ^ ":" ^ telemetry_tag)
  in
  let plan = Plan.expand task_set in
  match Solver.solve_wcs ?telemetry:(sink "wcs") ~jobs:solver_jobs ~plan ~power () with
  | Error _ as err -> err
  | Ok (wcs, _) -> (
    let wcs = refine_with_literal ~mode:Lepts_core.Objective.Worst ~plan ~power wcs in
    let warm =
      [ (wcs.Static_schedule.end_times, wcs.Static_schedule.quotas) ]
    in
    match
      (* [warm_start] trades the three-start ACS multi-start for one
         continuation descent from the WCS solution — faster on
         sweeps, never worse than that seed, but possibly a different
         local optimum than the cold pick, so callers fingerprint the
         flag. *)
      if warm_start then
        Solver.solve_warm ?telemetry:(sink "acs") ~jobs:solver_jobs
          ~mode:Lepts_core.Objective.Average ~prev:wcs ~plan ~power ()
      else
        Solver.solve_acs ?telemetry:(sink "acs") ~jobs:solver_jobs
          ~warm_starts:warm ~plan ~power ()
    with
    | Error _ as err -> err
    | Ok (acs, _) ->
      let acs =
        refine_with_literal ~mode:Lepts_core.Objective.Average ~plan ~power acs
      in
      (* [strong_baseline] cross-pollinates: the ACS point also seeds
         the worst-case solve, so among near-optimal worst-case
         schedules the baseline picks one whose runtime behaviour is
         good. The paper's baseline is worst-case-only (its average
         behaviour is incidental), which is the default here; the
         strong variant isolates the pure distribution-awareness gain
         and is used by the ablations. WCS is selected purely by
         worst-case energy either way. *)
      let wcs =
        if not strong_baseline then wcs
        else
          match
            Solver.solve_wcs ~jobs:solver_jobs
              ~warm_starts:
                [ (wcs.Static_schedule.end_times, wcs.Static_schedule.quotas);
                  (acs.Static_schedule.end_times, acs.Static_schedule.quotas) ]
              ~plan ~power ()
          with
          | Ok (improved, _) ->
            refine_with_literal ~mode:Lepts_core.Objective.Worst ~plan ~power improved
          | Error _ -> wcs
      in
      (* Both simulations flow through the checkpointable driver: with
         a session, completed rounds land on disk per chunk (sections
         "wcs-rounds" / "acs-rounds") and a resumed measurement reuses
         them; without one this is exactly {!Runner.simulate}. The
         solves above rerun on resume — they are deterministic, so the
         resumed result is still bit-identical. *)
      let simulate ~section schedule =
        let rng = Rng.create ~seed:sim_seed in
        let results =
          Lepts_robust.Checkpoint.map_indices ?session:checkpoint ?should_stop
            ~section ~encode:Lepts_robust.Checkpoint.round_result_fields
            ~decode:Lepts_robust.Checkpoint.round_result_of_fields ~jobs
            ~n:rounds
            ~f:(fun r ->
              Runner.round ~schedule ~policy:Policy.Greedy ~rng ~round:r ())
            ()
        in
        let summary = Runner.summarize results in
        Runner.record_metrics summary;
        summary
      in
      let sw = simulate ~section:"wcs-rounds" wcs in
      let sa = simulate ~section:"acs-rounds" acs in
      Ok
        { wcs_energy = sw.Runner.mean_energy;
          acs_energy = sa.Runner.mean_energy;
          improvement_pct =
            100. *. (sw.Runner.mean_energy -. sa.Runner.mean_energy)
            /. sw.Runner.mean_energy;
          wcs_misses = sw.Runner.deadline_misses;
          acs_misses = sa.Runner.deadline_misses;
          sub_instances = Plan.size plan })

let pp ppf r =
  Format.fprintf ppf "wcs=%.4g acs=%.4g improvement=%.1f%% misses=%d/%d subs=%d"
    r.wcs_energy r.acs_energy r.improvement_pct r.wcs_misses r.acs_misses
    r.sub_instances
