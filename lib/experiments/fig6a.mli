(** Fig. 6(a): improvement of ACS over WCS on random task sets, by task
    count and BCEC/WCEC ratio.

    The paper's full protocol: task counts 2..10, ratios 0.1 / 0.5 /
    0.9, one hundred random task sets per count, one thousand
    hyper-periods per simulation, 70 % worst-case utilisation. The
    harness exposes the scale as parameters so the bench can run a
    reduced (but same-shape) version by default. *)

type config = {
  task_counts : int list;  (** paper: [2; 4; 6; 8; 10] *)
  ratios : float list;  (** paper: [0.1; 0.5; 0.9] *)
  sets_per_point : int;  (** paper: 100 *)
  rounds : int;  (** hyper-periods simulated per set; paper: 1000 *)
  seed : int;
}

val paper_config : config
val quick_config : config
(** 3 sets per point, 200 rounds: minutes instead of hours, same
    qualitative shape. *)

type point = {
  n_tasks : int;
  ratio : float;
  mean_improvement_pct : float;
  stddev_improvement_pct : float;
  sets_measured : int;  (** sets that produced a schedulable pair *)
  total_misses : int;  (** deadline misses across all simulations;
                           must be 0 *)
}

val run :
  ?progress:(string -> unit) ->
  ?jobs:int ->
  ?solver_jobs:int ->
  ?warm_start:bool ->
  ?telemetry:Lepts_obs.Telemetry.collector ->
  ?checkpoint:Lepts_robust.Checkpoint.session ->
  ?should_stop:(unit -> bool) ->
  config ->
  power:Lepts_power.Model.t ->
  point list
(** Runs the sweep; [progress] (default ignore) receives one line per
    completed point. [jobs] (default 1) runs the task sets of each
    point on a {!Lepts_par.Pool} of domains — per-set seeds make sets
    independent, and per-set results are reduced in set order, so the
    points are bit-identical for every [jobs] value. [solver_jobs]
    (default 1) additionally parallelises each set's WCS/ACS
    multi-start solves ({!Lepts_core.Solver.solve}); also
    bit-identical for every value. Prefer [jobs] (coarser units) when
    there are many sets; [solver_jobs] helps when a few large sets
    dominate.

    [warm_start] (default false) runs each set's ACS solve as one
    continuation descent from its WCS solution instead of the full
    multi-start ({!Improvement.measure}) — measurably faster, never
    worse than the WCS seed, but a different configuration: include
    the flag in checkpoint fingerprints. Warm chains never cross sets
    or ratios here — each (count, ratio, set) triple generates a
    different task set, so there is nothing valid to continue from
    (see EXPERIMENTS.md on continuation order).

    [telemetry] captures convergence traces of the per-set NLP solves
    (labels like [acs:fig6a:n4:r0.5:set2]); the sweep also runs under
    [fig6a:point] / [fig6a:point/set] profiling spans whose merged tree
    is identical for every [jobs] value.

    [checkpoint] makes the sweep crash-safe at set granularity: every
    completed set's measurement is saved (section [set:n<N>:r<R>], one
    save per set), and a resumed sweep recomputes only the missing
    sets — the final points are bit-identical to an uninterrupted
    run's. [should_stop] is polled between sets; when it fires the
    session is saved and {!Lepts_robust.Checkpoint.Drained} raised. *)

val to_table : point list -> Lepts_util.Table.t
(** Rows: one per (task count, ratio) — the series of the paper's
    figure. *)
