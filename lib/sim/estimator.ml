module Plan = Lepts_preempt.Plan
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set

let eps = 1e-12

type predictor = Ewma of { alpha : float } | Linear_rate of { window : int }

type config = {
  predictor : predictor;
  drift_threshold : float;
  hysteresis : float;
  resolve_budget : int;
}

let default_config =
  { predictor = Ewma { alpha = 0.2 };
    drift_threshold = 0.10;
    hysteresis = 0.5;
    resolve_budget = 8 }

let validate c =
  let bad field v =
    invalid_arg (Printf.sprintf "Estimator.config: %s = %g out of range" field v)
  in
  (match c.predictor with
  | Ewma { alpha } ->
    if Float.is_nan alpha || alpha <= 0. || alpha > 1. then bad "alpha" alpha
  | Linear_rate { window } ->
    if window < 1 then bad "window" (float_of_int window));
  if
    Float.is_nan c.drift_threshold
    || (not (Float.is_finite c.drift_threshold))
    || c.drift_threshold <= 0.
  then bad "drift_threshold" c.drift_threshold;
  if Float.is_nan c.hysteresis || c.hysteresis < 0. || c.hysteresis > 1. then
    bad "hysteresis" c.hysteresis;
  if c.resolve_budget < 0 then bad "resolve_budget" (float_of_int c.resolve_budget)

(* Per-task predictor state. [ewma] doubles as the seed (the offline
   ACEC) before the first observation; [window] is a ring of the last
   N per-instance samples, oldest at [(count - n_kept) mod cap]. *)
type t = {
  config : config;
  bcec : float array;
  wcec : float array;
  initial : float array;  (* the plan's configured ACECs *)
  instances : float array;  (* per-task instance count in the hyper-period *)
  applied : float array;  (* drift baseline: ACECs of the current schedule *)
  ewma : float array;
  window : float array array;  (* task-major rings, length = window cap *)
  count : int;  (* observations folded *)
  resolves_done : int;
  armed : bool;
}

let create config ~plan =
  validate config;
  let ts = plan.Plan.task_set in
  let n = Task_set.size ts in
  let stat f = Array.init n (fun i -> f (Task_set.task ts i)) in
  let cap = match config.predictor with Ewma _ -> 1 | Linear_rate { window } -> window in
  { config;
    bcec = stat (fun t -> t.Task.bcec);
    wcec = stat (fun t -> t.Task.wcec);
    initial = stat (fun t -> t.Task.acec);
    instances =
      Array.init n (fun i ->
          float_of_int (Array.length plan.Plan.instance_subs.(i)));
    applied = stat (fun t -> t.Task.acec);
    ewma = stat (fun t -> t.Task.acec);
    window = Array.init n (fun _ -> Array.make cap 0.);
    count = 0;
    resolves_done = 0;
    armed = true }

let observations t = t.count
let resolves_done t = t.resolves_done
let armed t = t.armed
let applied t = Array.copy t.applied

let observe t ~consumed =
  let n = Array.length t.applied in
  if Array.length consumed <> n then
    invalid_arg
      (Printf.sprintf "Estimator.observe: %d consumed entries for %d tasks"
         (Array.length consumed) n);
  let sample i = consumed.(i) /. t.instances.(i) in
  match t.config.predictor with
  | Ewma { alpha } ->
    let ewma =
      Array.mapi
        (fun i s -> (alpha *. sample i) +. ((1. -. alpha) *. s))
        t.ewma
    in
    { t with ewma; count = t.count + 1 }
  | Linear_rate { window = cap } ->
    let window =
      Array.mapi
        (fun i ring ->
          let ring = Array.copy ring in
          ring.(t.count mod cap) <- sample i;
          ring)
        t.window
    in
    { t with window; count = t.count + 1 }

let clamp t i v = Float.min t.wcec.(i) (Float.max t.bcec.(i) v)

let raw_estimate t i =
  match t.config.predictor with
  | Ewma _ -> if t.count = 0 then t.initial.(i) else t.ewma.(i)
  | Linear_rate { window = cap } ->
    let n_kept = min t.count cap in
    if n_kept = 0 then t.initial.(i)
    else
      let ring = t.window.(i) in
      let last = ring.((t.count - 1) mod cap) in
      if n_kept = 1 then last
      else
        let oldest = ring.((t.count - n_kept) mod cap) in
        (* One-step linear-rate extrapolation: continue the window's
           mean slope for one more round. A single observation has no
           slope, so the predictor is last-value there. *)
        last +. ((last -. oldest) /. float_of_int (n_kept - 1))

let estimates t = Array.init (Array.length t.applied) (fun i -> clamp t i (raw_estimate t i))

let drift t =
  let d = ref 0. in
  Array.iteri
    (fun i a ->
      let e = clamp t i (raw_estimate t i) in
      d := Float.max !d (Float.abs (e -. a) /. Float.max a eps))
    t.applied;
  !d

type decision = Keep | Resolve of float array | Exhausted

let decide t =
  let d = drift t in
  let thr = t.config.drift_threshold in
  if not t.armed then
    (* Hysteresis: the trigger re-arms only once drift has fallen back
       to the re-arm level, so an estimate oscillating around the
       threshold cannot fire a re-solve per oscillation. *)
    let re_arm = thr *. (1. -. t.config.hysteresis) in
    if d <= re_arm then ({ t with armed = true }, Keep) else (t, Keep)
  else if d > thr then
    if t.resolves_done >= t.config.resolve_budget then (t, Exhausted)
    else (t, Resolve (estimates t))
  else (t, Keep)

let committed t ~acecs =
  { t with
    applied = Array.copy acecs;
    resolves_done = t.resolves_done + 1;
    armed = false }

let plan_with_acecs plan ~acecs =
  let ts = plan.Plan.task_set in
  let n = Task_set.size ts in
  if Array.length acecs <> n then
    invalid_arg
      (Printf.sprintf "Estimator.plan_with_acecs: %d ACECs for %d tasks"
         (Array.length acecs) n);
  let tasks =
    Array.init n (fun i ->
        let task = Task_set.task ts i in
        let acec =
          Float.min task.Task.wcec (Float.max task.Task.bcec acecs.(i))
        in
        Task.create ~name:task.Task.name ~period:task.Task.period
          ~wcec:task.Task.wcec ~acec ~bcec:task.Task.bcec)
  in
  (* [tasks] is already in RM priority order and the sort is stable, so
     the rebuilt set keeps the exact order — the expansion is
     structurally identical to [plan]'s. *)
  Plan.expand (Task_set.of_array tasks)

let pp ppf t =
  Format.fprintf ppf "obs=%d drift=%.4f resolves=%d%s" t.count (drift t)
    t.resolves_done
    (if t.armed then "" else " (disarmed)")
