type summary = {
  rounds : int;
  mean_energy : float;
  stddev_energy : float;
  min_energy : float;
  max_energy : float;
  p95_energy : float;
  p99_energy : float;
  deadline_misses : int;
  shed_instances : int;
}

let simulate ?(rounds = 1000) ?dist ?scenario ?control ~schedule ~policy ~rng () =
  if rounds <= 0 then invalid_arg "Runner.simulate: rounds must be positive";
  let plan = schedule.Lepts_core.Static_schedule.plan in
  let energies = Array.make rounds 0. in
  let misses = ref 0 and shed = ref 0 in
  for r = 0 to rounds - 1 do
    let totals = Sampler.instance_totals ?dist plan ~rng in
    let totals, faults =
      match scenario with
      | None -> (totals, None)
      | Some perturb -> perturb ~round:r ~totals
    in
    let outcome = Event_sim.run ?faults ?control ~schedule ~policy ~totals () in
    energies.(r) <- outcome.Outcome.energy;
    misses := !misses + outcome.Outcome.deadline_misses;
    shed := !shed + outcome.Outcome.shed_instances
  done;
  let min_energy, max_energy = Lepts_util.Stats.min_max energies in
  { rounds;
    mean_energy = Lepts_util.Stats.mean energies;
    stddev_energy = Lepts_util.Stats.stddev energies;
    min_energy; max_energy;
    p95_energy = Lepts_util.Stats.percentile energies ~p:95.;
    p99_energy = Lepts_util.Stats.percentile energies ~p:99.;
    deadline_misses = !misses;
    shed_instances = !shed }

let pp_summary ppf s =
  Format.fprintf ppf
    "rounds=%d mean=%.4g sd=%.3g min=%.4g max=%.4g p95=%.4g p99=%.4g misses=%d"
    s.rounds s.mean_energy s.stddev_energy s.min_energy s.max_energy s.p95_energy
    s.p99_energy s.deadline_misses;
  if s.shed_instances > 0 then Format.fprintf ppf " shed=%d" s.shed_instances
