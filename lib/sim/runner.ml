module Rng = Lepts_prng.Xoshiro256
module Pool = Lepts_par.Pool
module Metrics = Lepts_obs.Metrics

(* Built-in instrumentation: aggregate simulation counters in the
   default registry (DESIGN.md §9). Bumped once per [simulate] call
   from the caller's domain, after the pool has joined — the per-round
   hot path is untouched. *)
let m_rounds =
  Metrics.counter ~help:"simulation rounds executed" Metrics.default
    "lepts_sim_rounds_total"

let m_misses =
  Metrics.counter ~help:"deadline misses across all simulated rounds"
    Metrics.default "lepts_sim_deadline_misses_total"

let m_shed =
  Metrics.counter ~help:"instances shed by containment across all rounds"
    Metrics.default "lepts_sim_shed_instances_total"

type summary = {
  rounds : int;
  mean_energy : float;
  stddev_energy : float;
  min_energy : float;
  max_energy : float;
  p95_energy : float;
  p99_energy : float;
  deadline_misses : int;
  shed_instances : int;
}

type round_result = { energy : float; misses : int; shed : int }

let round_rng ~rng ~round = Rng.split_key rng ~key:round

let summarize results =
  let rounds = Array.length results in
  if rounds = 0 then invalid_arg "Runner.summarize: no rounds";
  let energies = Array.map (fun r -> r.energy) results in
  let misses = Array.fold_left (fun acc r -> acc + r.misses) 0 results in
  let shed = Array.fold_left (fun acc r -> acc + r.shed) 0 results in
  let min_energy, max_energy = Lepts_util.Stats.min_max energies in
  { rounds;
    mean_energy = Lepts_util.Stats.mean energies;
    (* A single round carries no spread information: report the honest
       "unknown" rather than the old misleading 0. *)
    stddev_energy = (if rounds < 2 then Float.nan else Lepts_util.Stats.stddev energies);
    min_energy; max_energy;
    p95_energy = Lepts_util.Stats.percentile energies ~p:95.;
    p99_energy = Lepts_util.Stats.percentile energies ~p:99.;
    deadline_misses = misses;
    shed_instances = shed }

let round ?dist ?scenario ?control ~schedule ~policy ~rng ~round:r () =
  (* The round's generator depends only on ([rng]'s state, r), so the
     energies array is identical whichever domain computes which
     round — the parallel path is bit-identical by construction. *)
  let plan = schedule.Lepts_core.Static_schedule.plan in
  let round_rng = round_rng ~rng ~round:r in
  let totals = Sampler.instance_totals ?dist plan ~rng:round_rng in
  let totals, faults =
    match scenario with
    | None -> (totals, None)
    | Some perturb -> perturb ~round:r ~totals
  in
  let outcome = Event_sim.run ?faults ?control ~schedule ~policy ~totals () in
  { energy = outcome.Outcome.energy;
    misses = outcome.Outcome.deadline_misses;
    shed = outcome.Outcome.shed_instances }

let record_metrics summary =
  Metrics.incr ~by:summary.rounds m_rounds;
  Metrics.incr ~by:summary.deadline_misses m_misses;
  Metrics.incr ~by:summary.shed_instances m_shed

let simulate ?(rounds = 1000) ?(jobs = 1) ?on_stats ?dist ?scenario ?control ~schedule
    ~policy ~rng () =
  if rounds <= 0 then invalid_arg "Runner.simulate: rounds must be positive";
  let one_round r = round ?dist ?scenario ?control ~schedule ~policy ~rng ~round:r () in
  let results, stats = Pool.run ~jobs ~n:rounds ~f:one_round in
  Option.iter (fun f -> f stats) on_stats;
  let summary = summarize results in
  record_metrics summary;
  summary

let pp_summary ppf s =
  Format.fprintf ppf
    "rounds=%d mean=%.4g sd=%.3g min=%.4g max=%.4g p95=%.4g p99=%.4g misses=%d"
    s.rounds s.mean_energy s.stddev_energy s.min_energy s.max_energy s.p95_energy
    s.p99_energy s.deadline_misses;
  if s.shed_instances > 0 then Format.fprintf ppf " shed=%d" s.shed_instances
