module Plan = Lepts_preempt.Plan
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set

type distribution = Truncated_normal | Uniform | Bimodal of { p_large : float }

let draw dist rng (task : Task.t) =
  let lo = task.Task.bcec and hi = task.Task.wcec in
  match dist with
  | Truncated_normal ->
    Lepts_prng.Dist.truncated_normal rng ~mu:task.Task.acec ~sigma:(Task.sigma task)
      ~lo ~hi
  | Uniform -> Lepts_prng.Xoshiro256.uniform rng ~lo ~hi
  | Bimodal { p_large } ->
    let span = hi -. lo in
    if Lepts_prng.Xoshiro256.float rng < p_large then
      Lepts_prng.Xoshiro256.uniform rng ~lo:(hi -. (0.1 *. span)) ~hi
    else Lepts_prng.Xoshiro256.uniform rng ~lo ~hi:(lo +. (0.25 *. span))

let instance_totals ?(dist = Truncated_normal) (plan : Plan.t) ~rng =
  (* One decorrelated base per call ([split] advances [rng], so
     successive calls draw fresh hyper-periods), then one child stream
     per instance keyed by its flat index. Each instance's variates
     therefore depend only on (base state, instance index) — never on
     traversal order, nor on how many variates other instances'
     rejection loops consumed. The historical implementation threaded
     one shared stream through [Array.mapi], silently coupling every
     draw to plan traversal order. *)
  let base = Lepts_prng.Xoshiro256.split rng in
  let offset = Array.make (Array.length plan.Plan.instance_subs) 0 in
  for i = 1 to Array.length offset - 1 do
    offset.(i) <- offset.(i - 1) + Array.length plan.Plan.instance_subs.(i - 1)
  done;
  Array.mapi
    (fun i per_instance ->
      let task = Task_set.task plan.Plan.task_set i in
      Array.mapi
        (fun j _ ->
          draw dist (Lepts_prng.Xoshiro256.split_key base ~key:(offset.(i) + j)) task)
        per_instance)
    plan.Plan.instance_subs

let fixed (plan : Plan.t) ~value =
  Array.mapi
    (fun i per_instance ->
      let task = Task_set.task plan.Plan.task_set i in
      let x =
        match value with
        | `Acec -> task.Task.acec
        | `Wcec -> task.Task.wcec
        | `Bcec -> task.Task.bcec
      in
      Array.map (fun _ -> x) per_instance)
    plan.Plan.instance_subs
