module Plan = Lepts_preempt.Plan
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Static_schedule = Lepts_core.Static_schedule
module Objective = Lepts_core.Objective

let run ~(schedule : Static_schedule.t) ~totals =
  let plan = schedule.Static_schedule.plan in
  let trace =
    Objective.trace ~plan ~power:schedule.Static_schedule.power ~totals
      ~e:schedule.Static_schedule.end_times ~w_hat:schedule.Static_schedule.quotas
  in
  let ts = plan.Plan.task_set in
  let misses = ref 0 in
  let finish_times =
    Array.mapi
      (fun i per_instance ->
        let period = float_of_int (Task_set.task ts i).Task.period in
        Array.mapi
          (fun j subs ->
            let release = float_of_int j *. period in
            let deadline = float_of_int (j + 1) *. period in
            (* Finish = last sub-instance that actually executed. *)
            let finish =
              Array.fold_left
                (fun acc k ->
                  if trace.Objective.exec_workloads.(k) > 0. then
                    Float.max acc trace.Objective.finish_times.(k)
                  else acc)
                release subs
            in
            if finish > deadline +. (1e-6 *. deadline) then incr misses;
            finish)
          per_instance)
      plan.Plan.instance_subs
  in
  let consumed =
    Array.map
      (Array.fold_left
         (fun acc subs ->
           Array.fold_left
             (fun acc k -> acc +. trace.Objective.exec_workloads.(k))
             acc subs)
         0.)
      plan.Plan.instance_subs
  in
  { Outcome.energy = trace.Objective.energy; deadline_misses = !misses;
    shed_instances = 0; finish_times; consumed }
