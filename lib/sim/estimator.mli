(** Online per-task ACEC estimation (the adaptive half of the loop).

    The paper fixes each task's average-case execution cycles (ACEC)
    offline and solves the ACS schedule once. When the actual workload
    distribution drifts — the fault injector's overruns push the mean
    up, or a bimodal distribution keeps it far below the configured
    ACEC — that offline point grows stale and the schedule stretches
    the wrong segments. This module closes the loop: it folds the
    per-task cycles actually consumed in each simulated hyper-period
    ({!Outcome.t}'s [consumed] field) into a per-task predictor, and tells the
    caller when the predicted ACEC has drifted far enough from the one
    the current schedule was solved with to be worth an incremental
    re-solve ({!Lepts_core.Solver.resolve_incremental}).

    Two predictors are provided, in the style of the Dysta scheduler's
    [*_pred_linear_rate] hooks (SNIPPETS.md §3):

    - {e EWMA}: [s <- alpha * x + (1 - alpha) * s], seeded with the
      offline ACEC so a zero-observation estimator predicts exactly
      the static configuration;
    - {e linear rate over the last N}: a one-step linear extrapolation
      from the window's endpoints,
      [last + (last - oldest) / (n - 1)]; with a single observation
      the slope is zero and the predictor degenerates to
      last-value.

    Estimates are always clamped into the task's [[BCEC, WCEC]]
    interval — the invariant {!Lepts_task.Task.create} enforces — so a
    committed estimate always yields a valid task set and a plan
    structurally identical to the original ({!plan_with_acecs}), which
    is precisely the cheap [solve_warm] path of
    [Solver.resolve_incremental].

    {2 Determinism contract}

    A value of type {!t} is immutable and every function here is pure:
    the state after round [r] is a fold of the rounds' [consumed]
    arrays in round order, and those arrays are themselves
    deterministic per round. Callers that simulate rounds in parallel
    must therefore fold observations in round index order (as
    {!Lepts_robust.Adaptive} does, epoch by epoch) — then the whole
    adaptive run is bit-identical for every [-j], which CI gates.
    See doc/ADAPTATION.md. *)

type predictor =
  | Ewma of { alpha : float }
      (** exponentially weighted moving average with smoothing factor
          [alpha] in (0, 1]; larger alpha forgets faster *)
  | Linear_rate of { window : int }
      (** one-step linear extrapolation over the last [window >= 1]
          observations *)

type config = {
  predictor : predictor;
  drift_threshold : float;
      (** relative drift (vs the ACEC the current schedule was solved
          with) that triggers a re-solve; strictly greater-than, so
          drift exactly at the threshold keeps the plan *)
  hysteresis : float;
      (** in [[0, 1]]: after a re-solve the trigger is disarmed until
          drift falls to [drift_threshold * (1 - hysteresis)] or
          below; 0 disables hysteresis *)
  resolve_budget : int;
      (** maximum number of re-solves per run; once spent, further
          drift events report [Exhausted] and the run continues on
          the last committed schedule *)
}

val default_config : config
(** EWMA with [alpha = 0.2], threshold 0.10, hysteresis 0.5,
    budget 8. *)

val validate : config -> unit
(** Raises [Invalid_argument] naming the offending field: [alpha] must
    lie in (0, 1], [window >= 1], [drift_threshold > 0] and finite,
    [hysteresis] in [[0, 1]], [resolve_budget >= 0]. Rejects NaN. *)

type t
(** Immutable estimator state. *)

val create : config -> plan:Lepts_preempt.Plan.t -> t
(** Fresh state for [plan]'s task set: zero observations, estimates
    and applied ACECs both equal to the plan's configured ACECs,
    trigger armed, full budget. Validates [config]. *)

val observe : t -> consumed:float array -> t
(** Fold one round's observation. [consumed.(i)] is the total cycles
    task [i] actually executed during the round
    ({!Outcome.t}'s [consumed]); the per-task sample fed to the
    predictor is
    [consumed.(i) / instances_i], the mean per-instance cycles.
    Raises [Invalid_argument] when the array length does not match the
    task count. *)

val observations : t -> int
(** Rounds folded so far. *)

val estimates : t -> float array
(** Current per-task ACEC predictions, clamped into
    [[BCEC, WCEC]]. With zero observations this is the plan's
    configured ACECs. Fresh array, caller-owned. *)

val applied : t -> float array
(** The per-task ACECs the current schedule was solved with (the
    drift baseline). Fresh array, caller-owned. *)

val drift : t -> float
(** Maximum over tasks of
    [|estimate - applied| / max applied eps] — the relative deviation
    the threshold is compared against. *)

val armed : t -> bool
(** Whether the drift trigger is armed (see [hysteresis]). *)

val resolves_done : t -> int

type decision =
  | Keep  (** drift within threshold (or trigger disarmed) *)
  | Resolve of float array
      (** drift exceeded the threshold with budget remaining: re-solve
          with these per-task ACECs (clamped {!estimates}), then
          {!committed} *)
  | Exhausted
      (** drift exceeded the threshold but the re-solve budget is
          spent: keep the current schedule and count the refusal *)

val decide : t -> t * decision
(** Drift-check the current state. The returned state only updates the
    hysteresis arming (a disarmed trigger re-arms once drift has
    fallen back to [threshold * (1 - hysteresis)] or below); folding
    and committing remain separate so a failed re-solve can simply
    keep the old state and retry at the next check. *)

val committed : t -> acecs:float array -> t
(** Record a successful re-solve against [acecs]: the drift baseline
    becomes [acecs], one unit of budget is consumed and the trigger is
    disarmed until re-armed by {!decide}. *)

val plan_with_acecs :
  Lepts_preempt.Plan.t -> acecs:float array -> Lepts_preempt.Plan.t
(** Re-expand [plan]'s task set with each task's ACEC replaced by
    [acecs.(i)] clamped into [[bcec_i, wcec_i]]. Periods, priorities,
    WCEC and BCEC are untouched, so the result is structurally
    identical to [plan] (same sub-instance order and windows) — the
    precondition for [Solver.resolve_incremental]'s warm
    continuation path. *)

val pp : Format.formatter -> t -> unit
(** One line: observations, drift, resolves done, armed flag. *)
