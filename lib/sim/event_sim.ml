module Plan = Lepts_preempt.Plan
module Sub = Lepts_preempt.Sub_instance
module Model = Lepts_power.Model
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Static_schedule = Lepts_core.Static_schedule
module Policy = Lepts_dvs.Policy

let tiny = 1e-9

type instance_state = {
  task : int;
  instance : int;
  release : float;
  deadline : float;
  subs : int array;  (** order indices of this instance's sub-instances *)
  mutable remaining : float;  (** actual cycles still to execute *)
  mutable sub_pos : int;  (** current position in [subs] *)
  mutable quota_remaining : float;  (** unused quota of the current sub *)
  mutable finish : float;  (** nan until completed *)
  mutable shed : bool;  (** true once containment dropped the residue *)
}

type faults = {
  release_offsets : float array array;
  enforce_budget : bool;
  deny_transition :
    task:int -> instance:int -> sub:int -> now:float -> requested:float -> bool;
}

type dispatch = {
  d_task : int;
  d_instance : int;
  d_sub : int option;
  d_now : float;
  d_deadline : float;
  d_quota_remaining : float;
  d_budget_remaining : float;
  d_work_remaining : float;
  d_base_voltage : float;
}

type action = Run of float | Shed

let build_instances ?faults (schedule : Static_schedule.t) ~totals =
  let plan = schedule.Static_schedule.plan in
  let ts = plan.Plan.task_set in
  let enforce_budget =
    match faults with None -> true | Some f -> f.enforce_budget
  in
  let offset i j =
    match faults with None -> 0. | Some f -> f.release_offsets.(i).(j)
  in
  let states = ref [] in
  Array.iteri
    (fun i per_instance ->
      let period = float_of_int (Task_set.task ts i).Task.period in
      Array.iteri
        (fun j subs ->
          let quota_sum =
            Array.fold_left
              (fun acc k -> acc +. schedule.Static_schedule.quotas.(k))
              0. subs
          in
          let first_quota =
            if Array.length subs = 0 then 0.
            else schedule.Static_schedule.quotas.(subs.(0))
          in
          let release = (float_of_int j *. period) +. offset i j in
          (* Cap at the quota sum: the budgeted worst case. An instance
             with no actual work completes at its release. Fault
             scenarios may disable the cap to model WCEC overruns; the
             excess then executes past the budget (see [current_sub]'s
             [None] branch) unless a containment policy sheds it. *)
          let remaining =
            if enforce_budget then Float.min totals.(i).(j) quota_sum
            else totals.(i).(j)
          in
          states :=
            { task = i; instance = j; release;
              deadline = float_of_int (j + 1) *. period;
              subs;
              remaining = (if remaining <= tiny then 0. else remaining);
              sub_pos = 0;
              quota_remaining = first_quota;
              finish = (if remaining <= tiny then release else Float.nan);
              shed = false }
            :: !states)
        per_instance)
    plan.Plan.instance_subs;
  Array.of_list (List.rev !states)

(* Advance to the first sub-instance with unused quota; [None] means
   every quota is exhausted but actual work remains (within the repair
   tolerance in normal operation, or a genuine WCEC overrun under fault
   injection — the residue then runs at maximum speed). *)
let current_sub (schedule : Static_schedule.t) st =
  while st.quota_remaining <= tiny && st.sub_pos < Array.length st.subs - 1 do
    st.sub_pos <- st.sub_pos + 1;
    st.quota_remaining <- schedule.Static_schedule.quotas.(st.subs.(st.sub_pos))
  done;
  if st.quota_remaining > tiny then Some st.subs.(st.sub_pos) else None

(* Budget-enforced readiness (the paper's model): an instance may only
   execute its current sub-instance once that sub-instance's segment
   has been released — a task whose quota is exhausted suspends until
   its next segment, leaving the planned room to lower-priority
   tasks. Release jitter can push an instance's arrival past its first
   segment's release, hence the [max] with the instance arrival. *)
let ready_time (schedule : Static_schedule.t) st =
  if st.remaining <= tiny then infinity
  else
    match current_sub schedule st with
    | Some k ->
      Float.max schedule.Static_schedule.plan.Plan.order.(k).Sub.release st.release
    | None -> st.release

(* Unused quota left in this instance's budget: the current
   sub-instance's remainder plus every later segment's full quota. *)
let budget_remaining (schedule : Static_schedule.t) st =
  let acc = ref (Float.max 0. st.quota_remaining) in
  for pos = st.sub_pos + 1 to Array.length st.subs - 1 do
    acc := !acc +. schedule.Static_schedule.quotas.(st.subs.(pos))
  done;
  !acc

type transition = { time_per_volt : float; energy_per_volt : float }

let run_traced ?transition ?faults ?control ~(schedule : Static_schedule.t)
    ~policy ~totals () =
  let spans = ref [] in
  let last_voltage = ref Float.nan in
  let plan = schedule.Static_schedule.plan in
  let power = schedule.Static_schedule.power in
  let static_v = Policy.worst_case_voltages schedule in
  let states = build_instances ?faults schedule ~totals in
  let energy = ref 0. in
  (* Per-task executed cycles. Bumped only where [executed] is charged
     below — the one place work leaves an instance — so a shed residue
     (dropped without running) is never counted and an overrun residue
     (executing past the budget in the [None]-sub branch) is counted
     exactly once. The estimator's observations depend on this
     single-accounting invariant; see the regression tests. *)
  let consumed = Array.make (Array.length plan.Plan.instance_subs) 0. in
  let now = ref 0. in
  let guard = ref (10_000 + (100 * Array.length states * Array.length plan.Plan.order)) in
  let running = ref true in
  let pick_ready () =
    Array.fold_left
      (fun best st ->
        if st.remaining > tiny && ready_time schedule st <= !now +. tiny then
          match best with
          | None -> Some st
          | Some b ->
            if st.task < b.task || (st.task = b.task && st.instance < b.instance)
            then Some st
            else best
        else best)
      None states
  in
  let next_event ~pred =
    Array.fold_left
      (fun acc st ->
        let r = ready_time schedule st in
        if pred st && r > !now +. tiny then Float.min acc r else acc)
      infinity states
  in
  while !running && !guard > 0 do
    decr guard;
    match pick_ready () with
    | None ->
      let next = next_event ~pred:(fun _ -> true) in
      if Float.is_finite next then now := next else running := false
    | Some st -> (
      let sub = current_sub schedule st in
      let base_voltage, cycles_target =
        match sub with
        | Some k ->
          ( Policy.dispatch_voltage policy ~schedule ~static_v ~sub:k ~now:!now
              ~quota_remaining:st.quota_remaining,
            Float.min st.remaining st.quota_remaining )
        | None -> (power.Model.v_max, st.remaining)
      in
      let action =
        match control with
        | None -> Run base_voltage
        | Some decide ->
          decide
            { d_task = st.task; d_instance = st.instance; d_sub = sub;
              d_now = !now; d_deadline = st.deadline;
              d_quota_remaining = st.quota_remaining;
              d_budget_remaining = budget_remaining schedule st;
              d_work_remaining = st.remaining; d_base_voltage = base_voltage }
      in
      match action with
      | Shed ->
        (* Containment dropped the residue: the instance stops consuming
           processor time. Its finish time stays nan, so it is counted
           as a deadline miss (it never completed). *)
        st.remaining <- 0.;
        st.shed <- true
      | Run v ->
        (* A voltage-transition fault pins the processor at the previous
           level for this dispatch. *)
        let v =
          match (faults, sub) with
          | Some f, Some k
            when (not (Float.is_nan !last_voltage))
                 && Float.abs (v -. !last_voltage) > 1e-9
                 && f.deny_transition ~task:st.task ~instance:st.instance ~sub:k
                      ~now:!now ~requested:v -> !last_voltage
          | _ -> v
        in
        (* Voltage-transition overhead: stall and pay for the swing. *)
        (match transition with
        | Some { time_per_volt; energy_per_volt }
          when (not (Float.is_nan !last_voltage))
               && Float.abs (v -. !last_voltage) > 1e-9 ->
          let dv = Float.abs (v -. !last_voltage) in
          energy := !energy +. (energy_per_volt *. dv);
          now := !now +. (time_per_volt *. dv)
        | Some _ | None -> ());
        last_voltage := v;
        let cycle_time = Model.cycle_time power ~v in
        let time_needed = cycles_target *. cycle_time in
        (* A strictly higher-priority instance becoming ready preempts. *)
        let preempt_at = next_event ~pred:(fun other -> other.task < st.task) in
        let run_until = Float.min (!now +. time_needed) preempt_at in
        let executed =
          if run_until >= !now +. time_needed then cycles_target
          else (run_until -. !now) /. cycle_time
        in
        energy := !energy +. Model.energy power ~v ~cycles:executed;
        consumed.(st.task) <- consumed.(st.task) +. executed;
        if run_until > !now then
          spans :=
            { Trace.task = st.task; instance = st.instance; from_time = !now;
              to_time = run_until; voltage = v }
            :: !spans;
        st.remaining <- st.remaining -. executed;
        st.quota_remaining <- st.quota_remaining -. executed;
        now := run_until;
        if st.remaining <= tiny then begin
          st.remaining <- 0.;
          st.finish <- !now
        end)
  done;
  let finish_times =
    Array.map (Array.map (fun _ -> Float.nan)) plan.Plan.instance_subs
  in
  let misses = ref 0 and shed = ref 0 in
  Array.iter
    (fun st ->
      finish_times.(st.task).(st.instance) <- st.finish;
      if st.shed then incr shed;
      if Float.is_nan st.finish || st.finish > st.deadline +. (1e-6 *. st.deadline)
      then incr misses)
    states;
  ( { Outcome.energy = !energy; deadline_misses = !misses;
      shed_instances = !shed; finish_times; consumed },
    { Trace.spans = List.rev !spans; horizon = Plan.hyper_period plan } )

let run ?transition ?faults ?control ~schedule ~policy ~totals () =
  fst (run_traced ?transition ?faults ?control ~schedule ~policy ~totals ())
