(** Multi-hyper-period simulation driver.

    Frame-based systems restart identically every hyper-period (all
    instances complete within it), so rounds are independent draws of
    the per-instance workloads.

    {2 Stream discipline and parallel determinism}

    Round [r] simulates with the generator
    [Xoshiro256.split_key rng ~key:r] — a pure function of the caller's
    generator state and the round index. [simulate] never advances
    [rng], rounds never share a stream, and {!Sampler.instance_totals}
    keys each instance's draws the same way below the round, so the
    per-round energy sequence depends only on (generator state,
    arguments). Rounds are therefore embarrassingly parallel: with
    [jobs > 1] they are computed by a {!Lepts_par.Pool} of domains and
    reduced in round order, producing {e bit-identical} summaries to
    the sequential path for the same seed (asserted by the test
    suite). *)

type summary = {
  rounds : int;
  mean_energy : float;  (** per hyper-period *)
  stddev_energy : float;
      (** [nan] when [rounds = 1]: a single round carries no spread
          information (historically reported as a misleading 0) *)
  min_energy : float;
  max_energy : float;
  p95_energy : float;  (** 95th percentile of per-round energy *)
  p99_energy : float;  (** 99th percentile of per-round energy *)
  deadline_misses : int;  (** summed over all rounds *)
  shed_instances : int;
      (** instances shed by a containment [control] hook, summed over
          all rounds; 0 outside fault-injection campaigns *)
}

type round_result = { energy : float; misses : int; shed : int }
(** One round's contribution to a {!summary}. *)

val round_rng : rng:Lepts_prng.Xoshiro256.t -> round:int -> Lepts_prng.Xoshiro256.t
(** The generator {!simulate} gives round [round]:
    [Xoshiro256.split_key rng ~key:round], leaving [rng] untouched.
    Exposed so campaign engines ({!Lepts_robust.Campaign}) can replay
    exactly the draws a [simulate] call with the same [rng] would
    make. *)

val summarize : round_result array -> summary
(** Ordered reduction of per-round outcomes (index = round) into a
    {!summary}. Raises [Invalid_argument] on an empty array. *)

val round :
  ?dist:Sampler.distribution ->
  ?scenario:
    (round:int ->
    totals:float array array ->
    float array array * Event_sim.faults option) ->
  ?control:(Event_sim.dispatch -> Event_sim.action) ->
  schedule:Lepts_core.Static_schedule.t ->
  policy:Lepts_dvs.Policy.t ->
  rng:Lepts_prng.Xoshiro256.t ->
  round:int ->
  unit ->
  round_result
(** One hyper-period, exactly as {!simulate} would run round [round]:
    a pure function of ([rng]'s state, arguments). Exposed so
    checkpointed drivers ({!Lepts_robust.Checkpoint.map_indices}) can
    compute individual rounds and resume a campaign from the units
    already on disk. Does not touch the built-in metrics — callers
    assembling a summary themselves should pass it to
    {!record_metrics} once. *)

val record_metrics : summary -> unit
(** Bump the built-in simulation counters ([lepts_sim_rounds_total],
    misses, shed) by a summary's totals — what {!simulate} does
    internally. For drivers that obtain rounds via {!round} (including
    checkpoint-resumed ones, so a resumed run reports the same
    aggregate counters as an uninterrupted one). *)

val simulate :
  ?rounds:int ->
  ?jobs:int ->
  ?on_stats:(Lepts_par.Pool.stats -> unit) ->
  ?dist:Sampler.distribution ->
  ?scenario:
    (round:int ->
    totals:float array array ->
    float array array * Event_sim.faults option) ->
  ?control:(Event_sim.dispatch -> Event_sim.action) ->
  schedule:Lepts_core.Static_schedule.t ->
  policy:Lepts_dvs.Policy.t ->
  rng:Lepts_prng.Xoshiro256.t ->
  unit ->
  summary
(** [simulate ~schedule ~policy ~rng ()] runs [rounds] (default 1000,
    the paper's setting) hyper-periods through {!Event_sim} with fresh
    workload draws from [dist] (default the paper's truncated normal).

    [jobs] (default 1) is the number of worker domains; the summary is
    bit-identical for every [jobs] value. [on_stats] receives the
    pool's throughput/utilization report after the rounds complete.

    [scenario] maps each round's sampled workloads to (possibly
    perturbed) workloads plus an optional fault scenario — the hook
    {!Lepts_robust.Fault_injector} plugs into; [control] is passed
    through to {!Event_sim.run} (containment). With [jobs = 1] rounds
    run in order on the calling domain, so stateful hooks behave as
    they always have; with [jobs > 1] the hooks are called
    concurrently and in no particular order, so they must be pure or
    thread-safe — {!Lepts_robust.Campaign} builds per-round hooks
    instead and merges their counters in round order. *)

val pp_summary : Format.formatter -> summary -> unit
