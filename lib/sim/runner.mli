(** Multi-hyper-period simulation driver.

    Frame-based systems restart identically every hyper-period (all
    instances complete within it), so rounds are independent draws of
    the per-instance workloads. *)

type summary = {
  rounds : int;
  mean_energy : float;  (** per hyper-period *)
  stddev_energy : float;
  min_energy : float;
  max_energy : float;
  p95_energy : float;  (** 95th percentile of per-round energy *)
  p99_energy : float;  (** 99th percentile of per-round energy *)
  deadline_misses : int;  (** summed over all rounds *)
  shed_instances : int;
      (** instances shed by a containment [control] hook, summed over
          all rounds; 0 outside fault-injection campaigns *)
}

val simulate :
  ?rounds:int ->
  ?dist:Sampler.distribution ->
  ?scenario:
    (round:int ->
    totals:float array array ->
    float array array * Event_sim.faults option) ->
  ?control:(Event_sim.dispatch -> Event_sim.action) ->
  schedule:Lepts_core.Static_schedule.t ->
  policy:Lepts_dvs.Policy.t ->
  rng:Lepts_prng.Xoshiro256.t ->
  unit ->
  summary
(** [simulate ~schedule ~policy ~rng ()] runs [rounds] (default 1000,
    the paper's setting) hyper-periods through {!Event_sim} with fresh
    workload draws from [dist] (default the paper's truncated normal).

    [scenario] maps each round's sampled workloads to (possibly
    perturbed) workloads plus an optional fault scenario — the hook
    {!Lepts_robust.Fault_injector} plugs into; [control] is passed
    through to {!Event_sim.run} (containment). With both absent the
    summaries are identical to the historical behaviour. *)

val pp_summary : Format.formatter -> summary -> unit
