(** Event-driven rate-monotonic simulation of one hyper-period with
    online DVS.

    This is the ground truth for the experiments: a preemptive
    dispatcher where the running instance executes its sub-instance
    quotas in order and the online {!Lepts_dvs.Policy} picks the
    voltage at every dispatch (start {e and} resume).

    Scheduling is {e budget-enforced} rate-monotonic, matching the
    paper's formulation (its [s >= r] constraints): an instance may
    execute its current sub-instance only once that sub-instance's
    segment is released, so a task whose current quota is exhausted
    suspends until its next segment instead of stealing the room the
    static schedule reserved for lower-priority tasks. Without this
    rule a higher-priority task running ahead of its plan can push a
    lower-priority task past its worst-case window and break the
    deadline guarantee (the test suite demonstrates this).

    Under budget enforcement the event-driven execution coincides with
    the closed-form {!Sequence} executor whenever both are given the
    same per-instance workloads — a property the tests check — but this
    module makes no such assumption and remains correct for policies
    other than greedy reclamation.

    {2 Fault model}

    The optional [faults] argument perturbs the execution to study how
    the schedule degrades when the paper's assumptions are violated
    (see {!Lepts_robust.Fault_injector} for the seeded generator):

    - {e release jitter}: instance arrivals are delayed by
      [release_offsets];
    - {e WCEC overruns}: with [enforce_budget = false], actual cycles
      beyond the budgeted quota sum are executed instead of capped —
      the residue runs at [v_max] once every quota is exhausted, unless
      a [control] hook sheds it;
    - {e voltage-transition faults}: [deny_transition] may refuse a
      requested voltage change, pinning the processor at the previous
      level for that dispatch.

    The optional [control] hook observes every dispatch (including the
    wrapped policy's voltage choice) and may override the voltage or
    shed the instance's residual work — the mechanism behind
    {!Lepts_robust.Containment}. With both arguments absent the
    behaviour is exactly the historical one. *)

type transition = {
  time_per_volt : float;  (** stall per volt of voltage change (ms/V) *)
  energy_per_volt : float;  (** switching energy per volt of change *)
}
(** Voltage-transition overhead model. The paper ignores transitions
    ("the increase of energy consumption is negligible when the
    transition time is small comparing with the task execution time",
    citing Mochocki et al.); passing a [transition] lets the simulator
    quantify that claim: every change of the supply voltage stalls the
    processor for [time_per_volt * |dV|] and costs
    [energy_per_volt * |dV|]. *)

type faults = {
  release_offsets : float array array;
      (** non-negative arrival delay per instance, indexed
          [.(task).(instance)] *)
  enforce_budget : bool;
      (** [true] (the default behaviour) caps each instance's actual
          cycles at its quota sum; [false] lets WCEC overruns execute *)
  deny_transition :
    task:int -> instance:int -> sub:int -> now:float -> requested:float -> bool;
      (** consulted once per dispatch that requests a voltage change;
          returning [true] keeps the previous voltage for this
          dispatch *)
}
(** A concrete fault scenario for one hyper-period. *)

type dispatch = {
  d_task : int;
  d_instance : int;
  d_sub : int option;  (** order index; [None] once every quota is spent *)
  d_now : float;
  d_deadline : float;  (** the instance's absolute deadline *)
  d_quota_remaining : float;
  d_budget_remaining : float;
      (** unused quota across this and all later segments *)
  d_work_remaining : float;  (** actual cycles still to execute *)
  d_base_voltage : float;  (** what the wrapped policy chose *)
}
(** What a {e control} hook sees at each dispatch. *)

type action =
  | Run of float  (** execute at this voltage *)
  | Shed  (** drop the instance's residual work (counts as a miss) *)

val run :
  ?transition:transition ->
  ?faults:faults ->
  ?control:(dispatch -> action) ->
  schedule:Lepts_core.Static_schedule.t ->
  policy:Lepts_dvs.Policy.t ->
  totals:float array array ->
  unit ->
  Outcome.t
(** [run ~schedule ~policy ~totals] executes one hyper-period in which
    instance [(i, j)] requires [totals.(i).(j)] actual cycles
    (necessarily [<= wcec_i] for the guarantees to hold; larger values
    are capped at the quota sum, matching hardware that enforces
    worst-case budgets — unless [faults] disables enforcement).
    Deadline misses are recorded, not fatal. *)

val run_traced :
  ?transition:transition ->
  ?faults:faults ->
  ?control:(dispatch -> action) ->
  schedule:Lepts_core.Static_schedule.t ->
  policy:Lepts_dvs.Policy.t ->
  totals:float array array ->
  unit ->
  Outcome.t * Trace.t
(** Like {!run}, additionally recording every execution span (task,
    interval, voltage) for visualisation and debugging. *)
