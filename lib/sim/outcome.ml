type t = {
  energy : float;
  deadline_misses : int;
  shed_instances : int;
  finish_times : float array array;
  consumed : float array;
}

let completed t = t.deadline_misses = 0

let pp ppf t =
  if t.shed_instances = 0 then
    Format.fprintf ppf "energy=%g misses=%d" t.energy t.deadline_misses
  else
    Format.fprintf ppf "energy=%g misses=%d shed=%d" t.energy t.deadline_misses
      t.shed_instances
