(** Actual-workload sampling for simulation.

    Following the paper's §4, the execution cycles of each task
    instance vary between BCEC and WCEC as a normal distribution with
    mean ACEC; we use sigma = (WCEC - BCEC) / 6 so the truncation
    interval spans ±3 sigma (see {!Lepts_task.Task.sigma}). *)

type distribution =
  | Truncated_normal
      (** the paper's §4 protocol: N(ACEC, sigma) truncated to
          [[BCEC, WCEC]] *)
  | Uniform  (** uniform on [[BCEC, WCEC]] *)
  | Bimodal of { p_large : float }
      (** the paper's {e motivation} ("tasks that normally require a
          small number of cycles but occasionally a large number"):
          with probability [p_large] draw near the WCEC (uniform on the
          top decile of [[BCEC, WCEC]]), otherwise near the BCEC
          (uniform on the bottom quartile) *)

val draw : distribution -> Lepts_prng.Xoshiro256.t -> Lepts_task.Task.t -> float
(** One actual-cycles variate for a single task, on [[bcec, wcec]]. *)

val instance_totals :
  ?dist:distribution ->
  Lepts_preempt.Plan.t ->
  rng:Lepts_prng.Xoshiro256.t ->
  float array array
(** One fresh draw of actual cycles for every instance in the
    hyper-period, indexed [.(task).(instance)]. [dist] defaults to
    [Truncated_normal].

    Stream discipline: the call advances [rng] once (via
    {!Lepts_prng.Xoshiro256.split}) to obtain a base stream, and
    instance [(i, j)] draws from the child
    [split_key base ~key:flat(i, j)], where [flat] is the instance's
    index in task-major order. Every draw is thus a pure function of
    (base state, instance index), independent of traversal order and of
    how many variates other instances consumed — the property the
    deterministic parallel {!Runner} relies on, asserted by a
    regression test against a permuted traversal. *)

val fixed : Lepts_preempt.Plan.t -> value:[ `Acec | `Wcec | `Bcec ] -> float array array
(** Deterministic workloads: every instance takes exactly the given
    per-task statistic. Used for sanity experiments and tests. *)
