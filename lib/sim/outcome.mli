(** Result of simulating one hyper-period. *)

type t = {
  energy : float;  (** total energy consumed by task execution *)
  deadline_misses : int;  (** instances that completed after their
                              deadline (or not at all) *)
  shed_instances : int;
      (** instances whose residual work a containment policy dropped
          (always counted as deadline misses too, since they never
          completed); 0 outside fault-injection runs *)
  finish_times : float array array;
      (** completion time per instance, indexed [.(task).(instance)];
          [nan] for instances that never completed *)
}

val completed : t -> bool
(** [true] iff no deadline was missed. *)

val pp : Format.formatter -> t -> unit
