(** Result of simulating one hyper-period. *)

type t = {
  energy : float;  (** total energy consumed by task execution *)
  deadline_misses : int;  (** instances that completed after their
                              deadline (or not at all) *)
  shed_instances : int;
      (** instances whose residual work a containment policy dropped
          (always counted as deadline misses too, since they never
          completed); 0 outside fault-injection runs *)
  finish_times : float array array;
      (** completion time per instance, indexed [.(task).(instance)];
          [nan] for instances that never completed *)
  consumed : float array;
      (** cycles each task {e actually executed} during the round,
          indexed by priority level — the observation stream for
          {!Estimator}. Accounted at the single dispatch-execution
          point of the simulator, so a shed instance contributes only
          the cycles it ran before the drop (never its residue) and a
          WCEC overrun's residue is counted exactly once, as it
          executes at [v_max]. *)
}

val completed : t -> bool
(** [true] iff no deadline was missed. *)

val pp : Format.formatter -> t -> unit
