(** Chunked fork-join domain pool for embarrassingly parallel index
    spaces (OCaml 5 [Domain], no external dependencies).

    [run ~jobs ~n ~f] computes [Array.init n f] with up to [jobs]
    domains pulling chunks of indices from a shared atomic queue. Each
    result lands at its own index, so the caller's reduction order is
    the sequential one no matter which domain computed what or in what
    order chunks were claimed — the building block behind the
    bit-identical parallel simulation paths ({!Lepts_sim.Runner},
    {!Lepts_robust.Campaign}, the Fig 6 sweeps).

    [f] must therefore be safe to call from several domains at once
    (no shared mutable state beyond what it owns per index). *)

type stats = {
  jobs : int;  (** domains actually used (capped at [n]) *)
  items : int;  (** [n] *)
  elapsed_s : float;  (** wall-clock of the whole call *)
  per_domain_items : int array;  (** indices computed by each domain *)
  per_domain_busy_s : float array;
      (** per-domain wall time between its first and last chunk;
          [busy / elapsed] is that domain's utilization *)
}

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val run : jobs:int -> n:int -> f:(int -> 'a) -> 'a array * stats
(** Requires [jobs >= 1] and [n >= 0] (raises [Invalid_argument]
    otherwise). [jobs = 1] runs sequentially on the calling domain, in
    index order, spawning nothing. An exception raised by [f] is
    re-raised on the caller after all domains have drained. *)

val throughput : stats -> float
(** Items per second ([items / elapsed_s]; 0 when elapsed is 0). *)

val pp_stats : Format.formatter -> stats -> unit
(** One line: items, wall time, items/sec and, when [jobs > 1], the
    per-domain item counts and utilization. *)
