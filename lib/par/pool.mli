(** Persistent chunked fork-join domain pool for embarrassingly
    parallel index spaces (OCaml 5 [Domain], no external dependencies).

    Workers are spawned {e once} — by {!create} or on first use of a
    {!shared} pool — and then parked on a condition variable between
    batches. {!submit} publishes a batch (an index space [n] and a
    function [f]), wakes the workers, participates as worker 0, and
    waits for completion; short batches no longer pay a
    [Domain.spawn]/[join] round-trip per call, which is what made
    parallel multi-start solves {e slower} than sequential ones before
    the pool became persistent.

    Each batch pulls chunks of indices off a shared atomic queue and
    every result lands at its own index, so the caller's reduction
    order is the sequential one no matter which domain computed what —
    the building block behind the bit-identical parallel paths
    ({!Lepts_core.Solver} multi-start, {!Lepts_sim.Runner},
    {!Lepts_robust.Campaign}, the Fig 6 sweeps, [lepts serve] waves).

    [f] must be safe to call from several domains at once (no shared
    mutable state beyond what it owns per index). A nested {!run} or
    {!submit} from inside [f] runs sequentially on the calling worker
    instead of deadlocking on the pool it is already occupying —
    results are unchanged, only the extra parallelism is declined. *)

type stats = {
  jobs : int;  (** domains actually used (capped at [n] by {!run}) *)
  items : int;  (** [n] *)
  elapsed_s : float;  (** wall-clock of the whole batch *)
  per_domain_items : int array;  (** indices computed by each domain *)
  per_domain_busy_s : float array;
      (** per-domain time spent inside [f] (summed per chunk, excluding
          queue-wait and park time); [busy / elapsed] is that domain's
          utilisation *)
}

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

(** {2 Persistent pools} *)

type t
(** A pool of [jobs] workers: the creating domain plus [jobs - 1]
    spawned domains that live until {!shutdown}. *)

val create : jobs:int -> t
(** Spawns [jobs - 1] worker domains (raises [Invalid_argument] when
    [jobs < 1]). [jobs = 1] spawns nothing; its submits run
    sequentially on the caller. *)

val size : t -> int
(** The pool's worker count, including the submitting domain. *)

val submit : t -> n:int -> f:(int -> 'a) -> 'a array * stats
(** Computes [Array.init n f] on the pool's workers. Blocks until the
    batch completes; concurrent submitters are serialised, and the
    submitting domain works too, so a 1-worker pool degrades to a
    plain sequential loop. An exception raised by [f] stops further
    chunk claims, is re-raised here after the batch drains, and leaves
    the pool fully usable for the next [submit]. Raises
    [Invalid_argument] when [n < 0] or after {!shutdown}. *)

val shutdown : t -> unit
(** Joins the pool's worker domains. Idempotent; subsequent {!submit}s
    raise. Shared pools (below) are shut down automatically at exit —
    don't shut them down by hand. *)

val shared : jobs:int -> t
(** The process-wide pool with exactly [jobs] workers, created on
    first use and reused by every later caller (including {!run});
    joined automatically at process exit. *)

(** {2 Compatibility wrapper} *)

val run : jobs:int -> n:int -> f:(int -> 'a) -> 'a array * stats
(** [run ~jobs ~n ~f] computes [Array.init n f] like {!submit}, on the
    {!shared} pool of [min jobs (max 1 n)] workers. Requires
    [jobs >= 1] and [n >= 0] (raises [Invalid_argument] otherwise).
    [jobs = 1] runs sequentially on the calling domain, in index
    order, touching no pool. An exception raised by [f] is re-raised
    on the caller after all workers have drained. *)

val run_ephemeral : jobs:int -> n:int -> f:(int -> 'a) -> 'a array * stats
(** The pre-pool behaviour: spawn [jobs - 1] fresh domains for this
    one call and join them before returning. Same results and the same
    validation as {!run}; kept as the measurable baseline for the
    spawn-per-call overhead the persistent pool removes (see the bench
    [parallel_solve] section). *)

val set_reuse : bool -> unit
(** Benchmark/test hook, default [true]: [set_reuse false] makes
    {!run} take the {!run_ephemeral} path so higher-level workloads
    can be timed with and without pool reuse. Not for production
    use. *)

(** {2 Reporting} *)

val throughput : stats -> float
(** Items per second ([items / elapsed_s]; 0 when elapsed is 0). *)

val pp_stats : Format.formatter -> stats -> unit
(** One line: items, wall time, items/sec and, when [jobs > 1], the
    per-domain item counts and utilisation. *)
