type stats = {
  jobs : int;
  items : int;
  elapsed_s : float;
  per_domain_items : int array;
  per_domain_busy_s : float array;
}

let default_jobs () = Domain.recommended_domain_count ()

let throughput s = if s.elapsed_s > 0. then float_of_int s.items /. s.elapsed_s else 0.

let pp_stats ppf s =
  Format.fprintf ppf "%d items in %.2fs (%.0f/s) on %d domain(s)" s.items s.elapsed_s
    (throughput s) s.jobs;
  if s.jobs > 1 then begin
    Format.fprintf ppf " [";
    Array.iteri
      (fun d n ->
        let util =
          if s.elapsed_s > 0. then 100. *. s.per_domain_busy_s.(d) /. s.elapsed_s
          else 0.
        in
        Format.fprintf ppf "%sd%d: %d @@ %.0f%%" (if d = 0 then "" else "; ") d n util)
      s.per_domain_items;
    Format.fprintf ppf "]"
  end

let run_sequential ~n ~f =
  let t0 = Unix.gettimeofday () in
  let results = Array.init n f in
  let elapsed = Unix.gettimeofday () -. t0 in
  ( results,
    { jobs = 1; items = n; elapsed_s = elapsed; per_domain_items = [| n |];
      per_domain_busy_s = [| elapsed |] } )

let run ~jobs ~n ~f =
  if jobs < 1 then invalid_arg "Pool.run: jobs must be positive";
  if n < 0 then invalid_arg "Pool.run: n must be non-negative";
  let jobs = min jobs (max 1 n) in
  if jobs = 1 then run_sequential ~n ~f
  else begin
    let results = Array.make n None in
    (* Chunks several indices per queue pop: one atomic op amortized
       over the chunk, while ~8 chunks per domain keep the tail
       balanced when per-item cost is uneven. *)
    let chunk = max 1 (n / (jobs * 8)) in
    let next = Atomic.make 0 in
    let error = Atomic.make None in
    let items = Array.make jobs 0 in
    let busy = Array.make jobs 0. in
    let worker d () =
      let t0 = Unix.gettimeofday () in
      let rec loop () =
        let lo = Atomic.fetch_and_add next chunk in
        if lo < n && Atomic.get error = None then begin
          let hi = min n (lo + chunk) in
          (try
             for i = lo to hi - 1 do
               results.(i) <- Some (f i)
             done;
             items.(d) <- items.(d) + (hi - lo)
           with e -> ignore (Atomic.compare_and_set error None (Some e)));
          loop ()
        end
      in
      loop ();
      busy.(d) <- Unix.gettimeofday () -. t0
    in
    let t0 = Unix.gettimeofday () in
    let domains = Array.init (jobs - 1) (fun d -> Domain.spawn (worker (d + 1))) in
    worker 0 ();
    Array.iter Domain.join domains;
    let elapsed = Unix.gettimeofday () -. t0 in
    (match Atomic.get error with Some e -> raise e | None -> ());
    let out =
      Array.map (function Some v -> v | None -> assert false (* every index claimed *))
        results
    in
    ( out,
      { jobs; items = n; elapsed_s = elapsed; per_domain_items = items;
        per_domain_busy_s = busy } )
  end
