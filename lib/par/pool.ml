type stats = {
  jobs : int;
  items : int;
  elapsed_s : float;
  per_domain_items : int array;
  per_domain_busy_s : float array;
}

let default_jobs () = Domain.recommended_domain_count ()

let throughput s = if s.elapsed_s > 0. then float_of_int s.items /. s.elapsed_s else 0.

let pp_stats ppf s =
  Format.fprintf ppf "%d items in %.2fs (%.0f/s) on %d domain(s)" s.items s.elapsed_s
    (throughput s) s.jobs;
  if s.jobs > 1 then begin
    Format.fprintf ppf " [";
    Array.iteri
      (fun d n ->
        let util =
          if s.elapsed_s > 0. then 100. *. s.per_domain_busy_s.(d) /. s.elapsed_s
          else 0.
        in
        Format.fprintf ppf "%sd%d: %d @@ %.0f%%" (if d = 0 then "" else "; ") d n util)
      s.per_domain_items;
    Format.fprintf ppf "]"
  end

let now () = Unix.gettimeofday ()

let run_sequential ~n ~f =
  let t0 = now () in
  let results = Array.init n f in
  let elapsed = now () -. t0 in
  ( results,
    { jobs = 1; items = n; elapsed_s = elapsed; per_domain_items = [| n |];
      per_domain_busy_s = [| elapsed |] } )

(* A batch: the chunked atomic index queue, type-erased into a closure
   that computes one index and stores the result at that index on the
   caller's side. *)
type job = {
  j_n : int;
  j_chunk : int;
  j_next : int Atomic.t;
  j_run : int -> unit;
  j_error : exn option Atomic.t;
}

type t = {
  size : int;  (** worker count including the submitting domain *)
  lock : Mutex.t;  (** guards [epoch], [job], [finished], [stop] *)
  work : Condition.t;  (** workers park here between batches *)
  idle : Condition.t;  (** the submitter waits here for batch completion *)
  submit_lock : Mutex.t;  (** serialises whole submits (and shutdown) *)
  mutable epoch : int;
  mutable job : job option;
  mutable finished : int;
  mutable stop : bool;
  mutable closed : bool;
  items : int array;
  busy : float array;
  mutable domains : unit Domain.t array;
}

(* Set on pool worker domains (and on the submitting domain while it
   drains its own batch): a nested [run]/[submit] from inside [f] would
   otherwise deadlock waiting for workers that are busy running [f]
   itself, so it degrades to the sequential path — same results by the
   indexed-reduction invariant, just no extra parallelism. *)
let in_pool_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let in_worker () = Domain.DLS.get in_pool_worker

(* Drain the batch from worker [d]: claim chunks off the atomic queue
   until the index space is exhausted or some worker failed. Busy time
   accumulates per chunk — the time actually spent inside [f] — so
   [per_domain_busy_s / elapsed_s] is a real utilisation, not the
   whole-worker wall time (which includes queue-wait and, on a
   persistent pool, would always read ~100%). *)
let drain (t : t) d (j : job) =
  let rec loop () =
    let lo = Atomic.fetch_and_add j.j_next j.j_chunk in
    if lo < j.j_n && Atomic.get j.j_error = None then begin
      let hi = min j.j_n (lo + j.j_chunk) in
      let c0 = now () in
      (try
         for i = lo to hi - 1 do
           j.j_run i
         done;
         t.items.(d) <- t.items.(d) + (hi - lo)
       with e -> ignore (Atomic.compare_and_set j.j_error None (Some e)));
      t.busy.(d) <- t.busy.(d) +. (now () -. c0);
      loop ()
    end
  in
  loop ()

let worker t d () =
  Domain.DLS.set in_pool_worker true;
  let seen = ref 0 in
  Mutex.lock t.lock;
  let rec loop () =
    if t.stop then Mutex.unlock t.lock
    else if t.epoch = !seen then begin
      Condition.wait t.work t.lock;
      loop ()
    end
    else begin
      seen := t.epoch;
      let j = match t.job with Some j -> j | None -> assert false in
      Mutex.unlock t.lock;
      drain t d j;
      Mutex.lock t.lock;
      t.finished <- t.finished + 1;
      if t.finished = t.size - 1 then Condition.broadcast t.idle;
      loop ()
    end
  in
  loop ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be positive";
  let t =
    { size = jobs; lock = Mutex.create (); work = Condition.create ();
      idle = Condition.create (); submit_lock = Mutex.create (); epoch = 0;
      job = None; finished = 0; stop = false; closed = false;
      items = Array.make jobs 0; busy = Array.make jobs 0.; domains = [||] }
  in
  t.domains <- Array.init (jobs - 1) (fun d -> Domain.spawn (worker t (d + 1)));
  t

let size t = t.size

let submit t ~n ~f =
  if n < 0 then invalid_arg "Pool.submit: n must be non-negative";
  if t.size = 1 || n = 0 || in_worker () then begin
    if t.closed then invalid_arg "Pool.submit: pool is shut down";
    run_sequential ~n ~f
  end
  else begin
    let results = Array.make n None in
    let chunk = max 1 (n / (t.size * 8)) in
    let j =
      { j_n = n; j_chunk = chunk; j_next = Atomic.make 0;
        j_run = (fun i -> results.(i) <- Some (f i));
        j_error = Atomic.make None }
    in
    Mutex.lock t.submit_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.submit_lock) @@ fun () ->
    if t.closed then invalid_arg "Pool.submit: pool is shut down";
    Array.fill t.items 0 t.size 0;
    Array.fill t.busy 0 t.size 0.;
    let t0 = now () in
    Mutex.lock t.lock;
    t.job <- Some j;
    t.epoch <- t.epoch + 1;
    t.finished <- 0;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    (* The submitting domain participates as worker 0. [drain] never
       raises ([f] failures land in [j_error]), so the flag restore is
       unconditional. *)
    let saved = Domain.DLS.get in_pool_worker in
    Domain.DLS.set in_pool_worker true;
    drain t 0 j;
    Domain.DLS.set in_pool_worker saved;
    Mutex.lock t.lock;
    while t.finished < t.size - 1 do
      Condition.wait t.idle t.lock
    done;
    t.job <- None;
    Mutex.unlock t.lock;
    let elapsed = now () -. t0 in
    (match Atomic.get j.j_error with Some e -> raise e | None -> ());
    let out =
      Array.map (function Some v -> v | None -> assert false (* every index claimed *))
        results
    in
    ( out,
      { jobs = t.size; items = n; elapsed_s = elapsed;
        per_domain_items = Array.copy t.items;
        per_domain_busy_s = Array.copy t.busy } )
  end

let shutdown t =
  Mutex.lock t.submit_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.submit_lock) @@ fun () ->
  if not t.closed then begin
    t.closed <- true;
    Mutex.lock t.lock;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.domains;
    t.domains <- [||]
  end

(* --- Shared pools behind the [run] wrapper ----------------------------- *)

(* One process-wide pool per worker count, created on first use and
   joined at exit. [run] clamps [jobs] to [n] exactly as the historical
   per-call API did, so the handful of distinct clamped counts a
   process uses each get one pool — workers spawn once, not per call. *)
let registry : (int, t) Hashtbl.t = Hashtbl.create 8

let registry_lock = Mutex.create ()

let at_exit_installed = ref false

let shutdown_shared () =
  Mutex.lock registry_lock;
  let pools = Hashtbl.fold (fun _ p acc -> p :: acc) registry [] in
  Hashtbl.reset registry;
  Mutex.unlock registry_lock;
  List.iter shutdown pools

let shared ~jobs =
  if jobs < 1 then invalid_arg "Pool.shared: jobs must be positive";
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) @@ fun () ->
  match Hashtbl.find_opt registry jobs with
  | Some p when not p.closed -> p
  | _ ->
    let p = create ~jobs in
    Hashtbl.replace registry jobs p;
    if not !at_exit_installed then begin
      at_exit_installed := true;
      at_exit shutdown_shared
    end;
    p

(* Pre-pool behaviour, kept as a measurable baseline: spawn [jobs - 1]
   fresh domains, drain the same chunked queue, join. This is the
   spawn/join-per-call overhead the persistent pool removes — the bench
   quantifies the win by running the same workload both ways. *)
let run_ephemeral ~jobs ~n ~f =
  if jobs < 1 then invalid_arg "Pool.run: jobs must be positive";
  if n < 0 then invalid_arg "Pool.run: n must be non-negative";
  let jobs = min jobs (max 1 n) in
  if jobs = 1 then run_sequential ~n ~f
  else begin
    let results = Array.make n None in
    let chunk = max 1 (n / (jobs * 8)) in
    let next = Atomic.make 0 in
    let error = Atomic.make None in
    let items = Array.make jobs 0 in
    let busy = Array.make jobs 0. in
    let worker d () =
      let rec loop () =
        let lo = Atomic.fetch_and_add next chunk in
        if lo < n && Atomic.get error = None then begin
          let hi = min n (lo + chunk) in
          let c0 = now () in
          (try
             for i = lo to hi - 1 do
               results.(i) <- Some (f i)
             done;
             items.(d) <- items.(d) + (hi - lo)
           with e -> ignore (Atomic.compare_and_set error None (Some e)));
          busy.(d) <- busy.(d) +. (now () -. c0);
          loop ()
        end
      in
      loop ()
    in
    let t0 = now () in
    let domains = Array.init (jobs - 1) (fun d -> Domain.spawn (worker (d + 1))) in
    worker 0 ();
    Array.iter Domain.join domains;
    let elapsed = now () -. t0 in
    (match Atomic.get error with Some e -> raise e | None -> ());
    let out =
      Array.map (function Some v -> v | None -> assert false (* every index claimed *))
        results
    in
    ( out,
      { jobs; items = n; elapsed_s = elapsed; per_domain_items = items;
        per_domain_busy_s = busy } )
  end

(* Benchmark hook: [set_reuse false] reroutes [run] onto the
   spawn-per-call path so the same higher-level workload (e.g. a
   multi-start solve) can be timed with and without pool reuse. *)
let reuse = Atomic.make true

let set_reuse b = Atomic.set reuse b

let run ~jobs ~n ~f =
  if jobs < 1 then invalid_arg "Pool.run: jobs must be positive";
  if n < 0 then invalid_arg "Pool.run: n must be non-negative";
  if not (Atomic.get reuse) then run_ephemeral ~jobs ~n ~f
  else begin
    let jobs = min jobs (max 1 n) in
    if jobs = 1 || in_worker () then run_sequential ~n ~f
    else submit (shared ~jobs) ~n ~f
  end
