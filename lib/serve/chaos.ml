module Rng = Lepts_prng.Xoshiro256

let log_src = Logs.Src.create "lepts.serve.chaos" ~doc:"service chaos harness"

module Log = (val Logs.src_log log_src : Logs.LOG)

type profile = {
  seed : int;
  crash_prob : float;
  slow_prob : float;
  slow_ms : int;
  drop_prob : float;
  corrupt_snapshot : bool;
  cut_prob : float;
  stall_prob : float;
  stall_ms : int;
  flip_prob : float;
}

let zero =
  { seed = 2005; crash_prob = 0.; slow_prob = 0.; slow_ms = 1; drop_prob = 0.;
    corrupt_snapshot = false; cut_prob = 0.; stall_prob = 0.; stall_ms = 1;
    flip_prob = 0. }

(* Per-field validation in the Fault_injector style: probabilities are
   checked with a negated [>=]-conjunction so NaN fails every check
   instead of slipping through a naive [p < 0. || p > 1.]. *)
let validate p =
  let reject field value rule =
    invalid_arg
      (Printf.sprintf "Chaos: %s = %s must be %s" field value rule)
  in
  let prob field v =
    if not (v >= 0. && v <= 1.) then
      reject field (string_of_float v) "in [0, 1]"
  in
  prob "crash" p.crash_prob;
  prob "slow" p.slow_prob;
  prob "drop" p.drop_prob;
  prob "cut" p.cut_prob;
  prob "stall" p.stall_prob;
  prob "flip" p.flip_prob;
  if p.slow_ms < 0 then reject "slow-ms" (string_of_int p.slow_ms) ">= 0";
  if p.stall_ms < 0 then reject "stall-ms" (string_of_int p.stall_ms) ">= 0"

let pp_profile ppf p =
  Format.fprintf ppf
    "seed=%d crash=%g slow=%g@@%dms drop=%g corrupt=%b cut=%g stall=%g@@%dms \
     flip=%g"
    p.seed p.crash_prob p.slow_prob p.slow_ms p.drop_prob p.corrupt_snapshot
    p.cut_prob p.stall_prob p.stall_ms p.flip_prob

(* Profile strings: comma-separated [key=value] pairs, e.g.
   ["crash=0.2,slow=0.1,slow-ms=2,drop=0.1,corrupt=1,seed=7"]. *)
let of_string s =
  let parse_field acc pair =
    match acc with
    | Error _ as e -> e
    | Ok p -> (
      match String.index_opt pair '=' with
      | None ->
        Error (Printf.sprintf "chaos profile: %S is not a key=value pair" pair)
      | Some i -> (
        let k = String.sub pair 0 i in
        let v = String.sub pair (i + 1) (String.length pair - i - 1) in
        let float_v () =
          match float_of_string_opt v with
          | Some f -> Ok f
          | None ->
            Error
              (Printf.sprintf "chaos profile: %s = %S is not a number" k v)
        in
        let int_v () =
          match int_of_string_opt v with
          | Some n -> Ok n
          | None ->
            Error
              (Printf.sprintf "chaos profile: %s = %S is not an integer" k v)
        in
        match k with
        | "seed" -> Result.map (fun n -> { p with seed = n }) (int_v ())
        | "crash" -> Result.map (fun f -> { p with crash_prob = f }) (float_v ())
        | "slow" -> Result.map (fun f -> { p with slow_prob = f }) (float_v ())
        | "slow-ms" -> Result.map (fun n -> { p with slow_ms = n }) (int_v ())
        | "drop" -> Result.map (fun f -> { p with drop_prob = f }) (float_v ())
        | "corrupt" ->
          Result.map
            (fun n -> { p with corrupt_snapshot = n <> 0 })
            (int_v ())
        | "cut" -> Result.map (fun f -> { p with cut_prob = f }) (float_v ())
        | "stall" -> Result.map (fun f -> { p with stall_prob = f }) (float_v ())
        | "stall-ms" -> Result.map (fun n -> { p with stall_ms = n }) (int_v ())
        | "flip" -> Result.map (fun f -> { p with flip_prob = f }) (float_v ())
        | _ -> Error (Printf.sprintf "chaos profile: unknown key %S" k)))
  in
  if String.trim s = "" then Error "chaos profile: empty"
  else
    match
      List.fold_left parse_field (Ok zero)
        (String.split_on_char ',' (String.trim s))
    with
    | Error _ as e -> e
    | Ok p -> (
      match validate p with
      | () -> Ok p
      | exception Invalid_argument msg -> Error msg)

type t = {
  profile : profile;
  rng : Rng.t;  (* never advanced: children are derived with split_key *)
  crashes : int Atomic.t;
  slowed : int Atomic.t;
  dropped : int Atomic.t;
  cuts : int Atomic.t;
  stalls : int Atomic.t;
  flips : int Atomic.t;
}

let create ~profile =
  validate profile;
  { profile; rng = Rng.create ~seed:profile.seed;
    crashes = Atomic.make 0; slowed = Atomic.make 0; dropped = Atomic.make 0;
    cuts = Atomic.make 0; stalls = Atomic.make 0; flips = Atomic.make 0 }

let profile t = t.profile

(* FNV-1a of a decision tag, reduced to a non-negative int: the
   split_key key. Every injection decision is a pure function of
   (profile.seed, tag) — independent of arrival order, worker domain
   and core count — so a fixed-seed chaos run is reproducible. *)
let fnv tag =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    tag;
  (* Mask to 62 bits: [logand max_int] can still exceed OCaml's native
     int range, and a negative key would crash the modulo users. *)
  Int64.to_int (Int64.logand !h 0x3FFFFFFFFFFFFFFFL)

let draw t tag = Rng.float (Rng.split_key t.rng ~key:(fnv tag))

(* Drop injection: requests vanish before admission, as if the network
   ate them. Keyed by line index so the decision survives any change
   to the line's content. *)
let drop_line t ~index =
  t.profile.drop_prob > 0.
  && draw t (Printf.sprintf "drop:%d" index) < t.profile.drop_prob
  && begin
       Atomic.incr t.dropped;
       Log.info (fun f -> f "chaos: dropped request line %d" (index + 1));
       true
     end

let filter_lines t lines =
  if t.profile.drop_prob <= 0. then lines
  else List.filteri (fun i _ -> not (drop_line t ~index:i)) lines

(* Transport ingress injections. Decisions are keyed by the arrival
   sequence number — the same key the journal records — so a fixed-seed
   run injects the same transport faults whatever the socket timing
   was, and the offline journal replay (which carries the post-fault
   arrivals) never re-injects them. *)

(* Connection cut mid-line: [Some k] truncates the line to its first
   [k] bytes (at least one survives, so the partial-line path sees
   actual debris) and the transport must treat the connection as
   dropped by the peer. *)
let cut_line t ~seq ~len =
  if t.profile.cut_prob <= 0. || len < 2 then None
  else if draw t (Printf.sprintf "cut:%d" seq) >= t.profile.cut_prob then None
  else begin
    let at = 1 + (fnv (Printf.sprintf "cut-at:%d" seq) mod (len - 1)) in
    Atomic.incr t.cuts;
    Log.info (fun f ->
        f "chaos: cut connection mid-line at arrival %d, byte %d/%d" seq at len);
    Some at
  end

(* Slow client: the transport sleeps [stall_ms] before consuming the
   arrival, exercising the read-timeout bookkeeping without mocking
   the clock. *)
let stall t ~seq =
  if t.profile.stall_prob <= 0. then None
  else if draw t (Printf.sprintf "stall:%d" seq) >= t.profile.stall_prob then
    None
  else begin
    Atomic.incr t.stalls;
    Some t.profile.stall_ms
  end

(* Spool-file corruption: flip one bit of the file contents before the
   transport parses it, keyed by the file's basename. The damaged line
   must then fail request parsing (or framing) through the real
   rejection path. *)
let flip_spool t ~name contents =
  let len = String.length contents in
  if t.profile.flip_prob <= 0. || len = 0 then contents
  else if draw t ("flip:" ^ name) >= t.profile.flip_prob then contents
  else begin
    let pos = fnv ("flip-at:" ^ name) mod len in
    let bytes = Bytes.of_string contents in
    Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 0x01));
    Atomic.incr t.flips;
    Log.warn (fun f ->
        f "chaos: flipped a bit of spool file %s at offset %d" name pos);
    Bytes.to_string bytes
  end

(* Worker-side injection, composed into the service's [before_solve]
   hook: runs on the worker domain, so counters are atomic and draws
   use only the domain-safe [split_key]. A crash here exercises the
   supervision loop exactly like a real worker exception. *)
let before_solve t ~attempt (req : Request.t) =
  if t.profile.slow_prob > 0. then begin
    let tag = Printf.sprintf "slow:%s:%d" req.Request.id attempt in
    if draw t tag < t.profile.slow_prob then begin
      Atomic.incr t.slowed;
      Unix.sleepf (float_of_int t.profile.slow_ms /. 1000.)
    end
  end;
  if t.profile.crash_prob > 0. then begin
    let tag = Printf.sprintf "crash:%s:%d" req.Request.id attempt in
    if draw t tag < t.profile.crash_prob then begin
      Atomic.incr t.crashes;
      failwith
        (Printf.sprintf "chaos: injected worker crash (%s, attempt %d)"
           req.Request.id attempt)
    end
  end

(* Snapshot corruption: flip one bit of the file at a seed-keyed
   offset. The daemon then re-loads the snapshot and must refuse it —
   the checksum check is the thing under test. *)
let corrupt_file t ~path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    contents
  with
  | exception Sys_error msg -> Error msg
  | contents when String.length contents = 0 -> Error (path ^ ": empty file")
  | contents ->
    let len = String.length contents in
    let pos = fnv (Printf.sprintf "corrupt:%d" t.profile.seed) mod len in
    let bytes = Bytes.of_string contents in
    Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 0x01));
    let tmp = path ^ ".chaos" in
    let oc = open_out_bin tmp in
    output_bytes oc bytes;
    close_out oc;
    Sys.rename tmp path;
    Log.warn (fun f -> f "chaos: flipped a bit of %s at offset %d" path pos);
    Ok pos

let report_json t ~snapshot =
  Printf.sprintf
    "{\"chaos\":{\"seed\":%d,\"crashes\":%d,\"slowed\":%d,\"dropped\":%d,\
     \"cuts\":%d,\"stalls\":%d,\"flips\":%d,\"snapshot\":\"%s\"}}"
    t.profile.seed (Atomic.get t.crashes) (Atomic.get t.slowed)
    (Atomic.get t.dropped) (Atomic.get t.cuts) (Atomic.get t.stalls)
    (Atomic.get t.flips) snapshot
