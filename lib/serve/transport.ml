module Checkpoint = Lepts_robust.Checkpoint

let log_src =
  Logs.Src.create "lepts.serve.transport" ~doc:"serve ingress transports"

module Log = (val Logs.src_log log_src : Logs.LOG)

type arrival = {
  a_seq : int;
  a_at_ms : int;
  a_payload : (string, string) result;
}

type batch = {
  b_now_ms : int;
  b_arrivals : arrival list;
  b_closed : bool;
  b_drain : bool;
}

(* --- the arrival journal --------------------------------------------------- *)

module Journal = struct
  let magic = "lepts-arrivals"
  let version = 1

  type t = { mutable batches_rev : batch list; mutable count : int }

  let create () = { batches_rev = []; count = 0 }

  let record t b =
    t.batches_rev <- b :: t.batches_rev;
    t.count <- t.count + 1

  let batches t = t.count

  (* Journals pin no run parameters — the engine's determinism is a
     function of the recorded arrivals alone — so the fingerprint is a
     constant and only guards against handing the loader a different
     kind of snapshot. *)
  let fingerprint = Checkpoint.fingerprint ~parts:[ "lepts-arrivals" ]

  let body t =
    List.concat_map
      (fun b ->
        Printf.sprintf "batch %d %d %d" b.b_now_ms
          (if b.b_closed then 1 else 0)
          (if b.b_drain then 1 else 0)
        :: List.map
             (fun a ->
               match a.a_payload with
               | Ok line -> Printf.sprintf "ok %d %d %s" a.a_seq a.a_at_ms line
               | Error diag ->
                 Printf.sprintf "err %d %d %s" a.a_seq a.a_at_ms diag)
             b.b_arrivals)
      (List.rev t.batches_rev)

  let save t ~path =
    Checkpoint.Snapshot.write ~path
      (Checkpoint.Snapshot.render ~magic ~version ~fingerprint ~body:(body t))

  (* Body parsing for {!replay}: a [batch] line opens a batch, [ok] and
     [err] lines append arrivals to the open one. Splitting on spaces
     and re-joining the tail is lossless, so raw request lines with any
     internal spacing round-trip exactly. *)
  let parse_body ~path lines =
    let fail fmt =
      Printf.ksprintf (fun m -> Error (Printf.sprintf "%s: %s" path m)) fmt
    in
    let flush cur acc =
      match cur with
      | None -> acc
      | Some (b, arr_rev) -> { b with b_arrivals = List.rev arr_rev } :: acc
    in
    let rec go cur acc = function
      | [] -> Ok (List.rev (flush cur acc))
      | line :: rest -> (
        match String.split_on_char ' ' line with
        | [ "batch"; now; closed; drain ] -> (
          match
            (int_of_string_opt now, int_of_string_opt closed,
             int_of_string_opt drain)
          with
          | Some now, Some closed, Some drain
            when (closed = 0 || closed = 1) && (drain = 0 || drain = 1) ->
            let b =
              { b_now_ms = now; b_arrivals = []; b_closed = closed = 1;
                b_drain = drain = 1 }
            in
            go (Some (b, [])) (flush cur acc) rest
          | _ -> fail "malformed batch line %S" line)
        | (("ok" | "err") as tag) :: seq :: at :: (_ :: _ as payload) -> (
          match (cur, int_of_string_opt seq, int_of_string_opt at) with
          | Some (b, arr_rev), Some seq, Some at ->
            let payload = String.concat " " payload in
            let a =
              { a_seq = seq; a_at_ms = at;
                a_payload =
                  (if tag = "ok" then Ok payload else Error payload) }
            in
            go (Some (b, a :: arr_rev)) acc rest
          | None, _, _ -> fail "arrival line before any batch line: %S" line
          | _ -> fail "malformed arrival line %S" line)
        | _ -> fail "malformed line %S" line)
    in
    go None [] lines

  let load ~path =
    match Checkpoint.Snapshot.read ~path ~magic ~version with
    | Error _ as e -> e
    | Ok (file_fp, body) ->
      if file_fp <> fingerprint then
        Error (Checkpoint.Snapshot.mismatch ~path ~file_fp ~run_fp:fingerprint)
      else parse_body ~path body
end

(* --- live sources ---------------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  cn : int;  (* connection number, for log lines *)
  buf : Buffer.t;
  mutable last_rx_ms : int;
}

type sock_state = {
  listen : Unix.file_descr;
  sock_path : string;
  mutable conns : conn list;  (* in accept order *)
}

type live_kind = Socket of sock_state | Spool of { dir : string; poll_ms : int }

type live = {
  kind : live_kind;
  read_timeout_ms : int;
  max_line_bytes : int;
  idle_exit_ms : int;
  chaos : Chaos.t option;
  t0 : float;
  mutable next_seq : int;  (* next arrival sequence number *)
  mutable next_line : int;  (* ingress lines seen (drop-injection key) *)
  mutable next_cn : int;
  mutable last_activity_ms : int;
  mutable l_closed : bool;
}

type source =
  | Lines of { mutable sent : bool; lines : string list }
  | Replay of { mutable rest : batch list; mutable last_now : int }
  | Live of live

let of_lines lines = Lines { sent = false; lines }

let now_ms l = int_of_float ((Unix.gettimeofday () -. l.t0) *. 1000.)

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let is_blank line = String.trim line = ""

(* One complete ingress line: drop injection (keyed by the ingress line
   counter, before a sequence number is spent), then stall and cut
   injections (keyed by the sequence number the arrival will carry),
   then size check. Returns the arrivals accumulator (newest first) and
   whether a chaos cut killed the connection. *)
let ingest_line l acc line =
  let line = strip_cr line in
  if is_blank line then (acc, false)
  else begin
    let index = l.next_line in
    l.next_line <- l.next_line + 1;
    match l.chaos with
    | Some ch when Chaos.drop_line ch ~index -> (acc, false)
    | chaos ->
      let seq = l.next_seq in
      l.next_seq <- seq + 1;
      Option.iter
        (fun ch ->
          Option.iter
            (fun ms -> Unix.sleepf (float_of_int ms /. 1000.))
            (Chaos.stall ch ~seq))
        chaos;
      let at = now_ms l in
      let cut =
        Option.bind chaos (fun ch ->
            Chaos.cut_line ch ~seq ~len:(String.length line))
      in
      (match cut with
      | Some k ->
        ( { a_seq = seq; a_at_ms = at;
            a_payload =
              Error
                (Printf.sprintf "connection closed mid-line after %d bytes" k) }
          :: acc,
          true )
      | None ->
        if String.length line > l.max_line_bytes then
          ( { a_seq = seq; a_at_ms = at;
              a_payload =
                Error
                  (Printf.sprintf "oversized line: %d bytes exceeds limit %d"
                     (String.length line) l.max_line_bytes) }
            :: acc,
            false )
        else
          ({ a_seq = seq; a_at_ms = at; a_payload = Ok line } :: acc, false))
  end

(* A transport-level rejection that still consumes a sequence number —
   partial line at disconnect, read timeout, unframable oversized
   buffer. Replayed as [err] journal lines. *)
let reject_arrival l acc diag =
  let seq = l.next_seq in
  l.next_seq <- seq + 1;
  { a_seq = seq; a_at_ms = now_ms l; a_payload = Error diag } :: acc

(* --- socket ---------------------------------------------------------------- *)

let close_conn c = try Unix.close c.fd with Unix.Unix_error _ -> ()

(* Pull every complete line out of a connection's buffer. *)
let drain_conn_buffer l conn acc =
  let contents = Buffer.contents conn.buf in
  Buffer.clear conn.buf;
  let n = String.length contents in
  let acc = ref acc and start = ref 0 and cut = ref false in
  (try
     for i = 0 to n - 1 do
       if contents.[i] = '\n' then begin
         let line = String.sub contents !start (i - !start) in
         start := i + 1;
         let acc', killed = ingest_line l !acc line in
         acc := acc';
         if killed then begin
           cut := true;
           raise Exit
         end
       end
     done
   with Exit -> ());
  if not !cut && !start < n then
    Buffer.add_substring conn.buf contents !start (n - !start);
  (!acc, !cut)

let socket_poll l s ~slice =
  let acc = ref [] in
  let fds = s.listen :: List.map (fun c -> c.fd) s.conns in
  let readable =
    match Unix.select fds [] [] slice with
    | r, _, _ -> r
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
  in
  let now = now_ms l in
  (* Accept every queued connection. *)
  if List.mem s.listen readable then begin
    let rec accept_all () =
      match Unix.accept ~cloexec:true s.listen with
      | fd, _ ->
        Unix.set_nonblock fd;
        let cn = l.next_cn in
        l.next_cn <- cn + 1;
        l.last_activity_ms <- now;
        Log.info (fun f -> f "socket: accepted connection %d" cn);
        s.conns <-
          s.conns @ [ { fd; cn; buf = Buffer.create 256; last_rx_ms = now } ];
        accept_all ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception Unix.Unix_error (e, _, _) ->
        Log.warn (fun f -> f "socket: accept failed: %s" (Unix.error_message e))
    in
    accept_all ()
  end;
  (* Read the ready connections, in accept order. *)
  let chunk = Bytes.create 4096 in
  let keep =
    List.filter_map
      (fun conn ->
        let ready = List.mem conn.fd readable in
        let closed = ref false in
        if ready then begin
          let rec read_all () =
            match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
            | 0 -> closed := true
            | got ->
              Buffer.add_subbytes conn.buf chunk 0 got;
              conn.last_rx_ms <- now_ms l;
              l.last_activity_ms <- conn.last_rx_ms;
              read_all ()
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
              ->
              ()
            | exception Unix.Unix_error (_, _, _) -> closed := true
          in
          read_all ();
          let acc', cut = drain_conn_buffer l conn !acc in
          acc := acc';
          if cut then begin
            Log.info (fun f ->
                f "socket: connection %d dropped by chaos cut" conn.cn);
            Buffer.clear conn.buf;
            closed := true
          end
        end;
        if !closed then begin
          if Buffer.length conn.buf > 0 then
            acc :=
              reject_arrival l !acc
                (Printf.sprintf "connection closed mid-line after %d bytes"
                   (Buffer.length conn.buf));
          close_conn conn;
          Log.info (fun f -> f "socket: connection %d closed" conn.cn);
          None
        end
        else if
          Buffer.length conn.buf > l.max_line_bytes
        then begin
          (* Unframable: the line already exceeds the limit and no
             newline arrived — reject and drop the connection, there is
             no way to find the next frame boundary. *)
          acc :=
            reject_arrival l !acc
              (Printf.sprintf "oversized line: %d bytes exceeds limit %d"
                 (Buffer.length conn.buf) l.max_line_bytes);
          close_conn conn;
          Log.warn (fun f ->
              f "socket: connection %d rejected for an oversized line" conn.cn);
          None
        end
        else if
          Buffer.length conn.buf > 0
          && now_ms l - conn.last_rx_ms >= l.read_timeout_ms
        then begin
          acc :=
            reject_arrival l !acc
              (Printf.sprintf "read timed out with %d buffered bytes"
                 (Buffer.length conn.buf));
          close_conn conn;
          Log.warn (fun f ->
              f "socket: connection %d timed out mid-line" conn.cn);
          None
        end
        else Some conn)
      s.conns
  in
  s.conns <- keep;
  List.rev !acc

(* --- spool ----------------------------------------------------------------- *)

let spool_file name =
  String.length name > 0
  && name.[0] <> '.'
  && (not (Filename.check_suffix name ".tmp"))
  && not (Filename.check_suffix name ".part")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let spool_poll l dir =
  let names =
    match Sys.readdir dir with
    | names ->
      let names = Array.to_list names in
      List.sort String.compare (List.filter spool_file names)
    | exception Sys_error msg ->
      Log.warn (fun f -> f "spool: cannot scan %s: %s" dir msg);
      []
  in
  let acc = ref [] in
  List.iter
    (fun name ->
      let path = Filename.concat dir name in
      match
        if Sys.is_directory path then None
        else begin
          let contents = read_file path in
          Sys.remove path;
          Some contents
        end
      with
      | None -> ()
      | exception Sys_error msg ->
        Log.warn (fun f -> f "spool: skipping %s: %s" name msg)
      | Some contents ->
        l.last_activity_ms <- now_ms l;
        let contents =
          match l.chaos with
          | None -> contents
          | Some ch -> Chaos.flip_spool ch ~name contents
        in
        Log.info (fun f ->
            f "spool: consumed %s (%d bytes)" name (String.length contents));
        List.iter
          (fun line ->
            let acc', _cut = ingest_line l !acc line in
            acc := acc')
          (String.split_on_char '\n' contents))
    names;
  List.rev !acc

(* --- source construction and polling --------------------------------------- *)

let make_live ~kind ~read_timeout_ms ~max_line_bytes ~idle_exit_ms ~chaos =
  { kind; read_timeout_ms; max_line_bytes; idle_exit_ms; chaos;
    t0 = Unix.gettimeofday (); next_seq = 1; next_line = 0; next_cn = 0;
    last_activity_ms = 0; l_closed = false }

let socket ?(accept_backlog = 16) ?(read_timeout_ms = 5000)
    ?(max_line_bytes = 65536) ?(idle_exit_ms = 0) ?chaos ~path () =
  if accept_backlog < 1 then Error "socket: accept backlog must be >= 1"
  else if read_timeout_ms < 1 then Error "socket: read timeout must be >= 1 ms"
  else if max_line_bytes < 2 then Error "socket: line limit must be >= 2 bytes"
  else begin
    (* A socket file may be left behind by a killed daemon. A stale one
       (nobody listening) is replaced; a live one is a genuine bind
       conflict and refused. *)
    if Sys.file_exists path then begin
      let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let live =
        match Unix.connect probe (Unix.ADDR_UNIX path) with
        | () -> true
        | exception Unix.Unix_error _ -> false
      in
      (try Unix.close probe with Unix.Unix_error _ -> ());
      if not live then begin
        Log.warn (fun f -> f "socket: removing stale socket file %s" path);
        try Sys.remove path with Sys_error _ -> ()
      end
    end;
    let listen = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match
      Unix.bind listen (Unix.ADDR_UNIX path);
      Unix.listen listen accept_backlog;
      Unix.set_nonblock listen
    with
    | () ->
      Log.info (fun f ->
          f "socket: listening on %s (backlog %d)" path accept_backlog);
      Ok
        (Live
           (make_live
              ~kind:(Socket { listen; sock_path = path; conns = [] })
              ~read_timeout_ms ~max_line_bytes ~idle_exit_ms ~chaos))
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close listen with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot bind socket %s: %s" path
           (Unix.error_message e))
  end

let spool ?(poll_ms = 50) ?(max_line_bytes = 65536) ?(idle_exit_ms = 0) ?chaos
    ~dir () =
  if poll_ms < 1 then Error "spool: poll interval must be >= 1 ms"
  else if max_line_bytes < 2 then Error "spool: line limit must be >= 2 bytes"
  else if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (Printf.sprintf "spool directory %s does not exist" dir)
  else
    Ok
      (Live
         (make_live
            ~kind:(Spool { dir; poll_ms })
            ~read_timeout_ms:max_int ~max_line_bytes ~idle_exit_ms ~chaos))

let replay ~path =
  match Journal.load ~path with
  | Error _ as e -> e
  | Ok batches -> Ok (Replay { rest = batches; last_now = 0 })

let live_poll l ~pending =
  if l.l_closed then
    { b_now_ms = now_ms l; b_arrivals = []; b_closed = true; b_drain = false }
  else begin
    let arrivals =
      match l.kind with
      | Socket s ->
        let slice = if pending then 0. else 0.05 in
        socket_poll l s ~slice
      | Spool sp ->
        let got = spool_poll l sp.dir in
        if got = [] && not pending then
          Unix.sleepf (float_of_int (Int.min sp.poll_ms 100) /. 1000.);
        got
    in
    let now = now_ms l in
    let open_conns =
      match l.kind with Socket s -> s.conns <> [] | Spool _ -> false
    in
    if
      l.idle_exit_ms > 0 && arrivals = [] && (not open_conns)
      && now - l.last_activity_ms >= l.idle_exit_ms
    then begin
      Log.info (fun f ->
          f "idle for %d ms with no connections: closing ingress"
            (now - l.last_activity_ms));
      l.l_closed <- true
    end;
    { b_now_ms = now; b_arrivals = arrivals; b_closed = l.l_closed;
      b_drain = false }
  end

let poll source ~pending =
  match source with
  | Lines st ->
    if st.sent then
      { b_now_ms = 0; b_arrivals = []; b_closed = true; b_drain = false }
    else begin
      st.sent <- true;
      { b_now_ms = 0;
        b_arrivals =
          List.mapi
            (fun i line -> { a_seq = i + 1; a_at_ms = 0; a_payload = Ok line })
            st.lines;
        b_closed = true; b_drain = false }
    end
  | Replay st -> (
    match st.rest with
    | [] ->
      { b_now_ms = st.last_now; b_arrivals = []; b_closed = true;
        b_drain = false }
    | b :: tl ->
      st.rest <- tl;
      st.last_now <- b.b_now_ms;
      b)
  | Live l -> live_poll l ~pending

let close source =
  match source with
  | Lines _ | Replay _ -> ()
  | Live l ->
    (match l.kind with
    | Socket s ->
      List.iter close_conn s.conns;
      s.conns <- [];
      (try Unix.close s.listen with Unix.Unix_error _ -> ());
      (try Sys.remove s.sock_path with Sys_error _ -> ())
    | Spool _ -> ());
    l.l_closed <- true
