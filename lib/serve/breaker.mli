(** Circuit breaker for the ACS solve stage.

    The ACS stage is the expensive, occasionally-stalling part of the
    {!Lepts_robust.Robust_solver} pipeline. When it keeps failing there
    is no point burning its full iteration budget on every request —
    the breaker trips and routes requests straight to the WCS/RM
    fallback chain until the stage has had time to recover.

    {2 State machine}

    {v
      Closed --[threshold consecutive failures]--> Open
      Open   --[cooldown ticks elapsed]----------> Half_open
      Half_open --[probe succeeds]---------------> Closed
      Half_open --[probe fails]------------------> Open
    v}

    Time is a {e logical clock} supplied by the caller — the service
    engine uses its processed-request count — so breaker behaviour is a
    pure function of the observation sequence, never of wall time.
    That is what lets the test suite pin the exact transition sequence
    and lets a parallel service stay bit-identical to a sequential
    one.

    Every transition is counted in {!Lepts_obs.Metrics.default} under
    [lepts_breaker_transitions_total{to=...}]. Not domain-safe: the
    service engine confines each breaker to the fold on the calling
    domain. *)

type state = Closed | Open | Half_open

val state_name : state -> string
(** ["closed"] / ["open"] / ["half-open"]. *)

type config = {
  failure_threshold : int;
      (** consecutive ACS failures that trip Closed → Open; >= 1 *)
  cooldown : int;
      (** logical ticks an open circuit waits before probing; >= 1 *)
  probes : int;
      (** ACS attempts allowed per half-open episode; >= 1 *)
}

val default_config : config
(** [failure_threshold = 3], [cooldown = 8], [probes = 1]. *)

type t

val create : ?config:config -> unit -> t
(** A fresh breaker in [Closed]. Raises [Invalid_argument] on a
    non-positive config field. *)

val state : t -> state
(** Current position in the state machine. Read-only: unlike
    {!plan_route} it never consumes a half-open probe slot, so health
    reporting can poll it freely. *)

val plan_route : t -> now:int -> bool
(** [plan_route t ~now] decides whether the next request should attempt
    the ACS stage ([true]) or skip straight to the fallback chain
    ([false]). Closed always routes to ACS. Open routes to the
    fallback until [cooldown] ticks after it tripped, then transitions
    to [Half_open] and hands out up to [probes] ACS slots. Consumes a
    probe slot in [Half_open], so call it exactly once per request, in
    request order. *)

val observe : t -> now:int -> routed_acs:bool -> ok:bool -> unit
(** [observe t ~now ~routed_acs ~ok] folds one request outcome into the
    breaker. [ok] means the ACS stage itself produced the schedule.
    Outcomes of requests that were routed around ACS
    ([routed_acs = false]) carry no information about the stage and
    leave the state untouched. *)

val transitions : t -> (int * state) list
(** Chronological transition log [(logical time, new state)], the
    initial [Closed] excluded. *)
