(** Service-layer chaos harness: deterministic fault injection for the
    [lepts serve] daemon, in the discipline of
    {!Lepts_robust.Fault_injector}.

    Every injection decision is a pure function of the profile seed and
    a content tag (request id and attempt for crashes and slowdowns,
    line index for drops), drawn through the non-advancing, domain-safe
    {!Lepts_prng.Xoshiro256.split_key} — so a fixed-seed chaos run
    injects the same faults at the same places whatever [jobs] is, and
    two runs of the same profile over the same input produce
    byte-identical reports. That is what the CI chaos-smoke job diffs
    for.

    Injections exercise the real resilience machinery rather than
    bypassing it: a crash is an exception raised in the service's
    [before_solve] hook on the worker domain (handled by the
    supervision loop like any worker crash), a drop removes the request
    before admission, and snapshot corruption flips one bit of the
    written cache file so the daemon's validating reload must refuse
    it. *)

type profile = {
  seed : int;
  crash_prob : float;  (** per solve attempt; in [0, 1] *)
  slow_prob : float;  (** per solve attempt; in [0, 1] *)
  slow_ms : int;  (** injected delay per slowdown, milliseconds; >= 0 *)
  drop_prob : float;  (** per input line, before admission; in [0, 1] *)
  corrupt_snapshot : bool;
      (** flip one bit of the final cache snapshot, then verify the
          daemon refuses to load it *)
  cut_prob : float;
      (** per arrival: drop the connection mid-line, leaving a partial
          line the transport must reject with a diagnostic; in [0, 1] *)
  stall_prob : float;
      (** per arrival: a slow client — the transport stalls [stall_ms]
          before consuming the bytes; in [0, 1] *)
  stall_ms : int;  (** injected delay per stall, milliseconds; >= 0 *)
  flip_prob : float;
      (** per spool file: flip one bit of its contents before parsing,
          so the damaged line goes through the real rejection path;
          in [0, 1] *)
}

val zero : profile
(** [seed = 2005], every fault off. *)

val validate : profile -> unit
(** Raises [Invalid_argument] naming the offending field. NaN
    probabilities are rejected. *)

val of_string : string -> (profile, string) result
(** Parse a profile string of comma-separated [key=value] pairs over
    {!zero}: ["crash=0.2,slow=0.1,slow-ms=2,drop=0.1,corrupt=1,seed=7"].
    Keys: [seed], [crash], [slow], [slow-ms], [drop], [corrupt]
    (0 or 1), [cut], [stall], [stall-ms], [flip]. The error message
    names the offending pair. *)

val pp_profile : Format.formatter -> profile -> unit
(** Render a profile in the [key=value] syntax {!of_string} parses. *)

type t
(** A live harness: the profile plus atomic injection counters
    (worker-domain crashes and slowdowns commute across domains). *)

val create : profile:profile -> t
(** Raises [Invalid_argument] on an invalid profile. *)

val profile : t -> profile
(** The (validated) profile this harness injects from. *)

val filter_lines : t -> string list -> string list
(** Drop injection, keyed by line index. Identity when
    [drop_prob = 0]. *)

val drop_line : t -> index:int -> bool
(** One drop decision (the primitive {!filter_lines} folds): [true]
    means the line at [index] vanishes before admission — the live
    transports apply it per arrival, before a sequence number is
    assigned, so a dropped line never reaches the journal. *)

val cut_line : t -> seq:int -> len:int -> int option
(** Connection-cut injection for arrival [seq] carrying a [len]-byte
    line: [Some k] means the peer vanished after [k] bytes ([1 <= k <
    len]) and the transport must reject the partial line through its
    real disconnect path. [None] for [len < 2]. *)

val stall : t -> seq:int -> int option
(** Slow-client injection: [Some ms] asks the transport to stall that
    many milliseconds before consuming arrival [seq]. *)

val flip_spool : t -> name:string -> string -> string
(** Spool corruption: maybe flip one bit of a spool file's [contents]
    (keyed by basename [name]) before the transport parses it. *)

val before_solve : t -> attempt:int -> Request.t -> unit
(** Worker-side injection hook, composed into
    {!Service.run}'s [before_solve]: may sleep [slow_ms] and may raise
    to simulate a worker crash. Domain-safe. *)

val corrupt_file : t -> path:string -> (int, string) result
(** Flip one bit of [path] at a seed-keyed offset (atomically, via a
    sibling temp file). Returns the corrupted offset. *)

val report_json : t -> snapshot:string -> string
(** One-line [{"chaos": ...}] report trailer: seed, injection counts,
    and the daemon's verdict on the [snapshot] corruption check
    (e.g. ["ok"], ["corrupted+refused"], ["skipped"]). Contains no
    paths or timing, so fixed-seed runs emit identical trailers. *)
