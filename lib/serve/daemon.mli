(** The persistent [lepts serve] daemon: {!Service} plus the machinery
    that makes restarts cheap and failures observable.

    {2 Lifecycle}

    {e Cold start} — no snapshot at [cache_path] (or no path): the
    daemon begins with an empty {!Cache}. {e Warm restart} — a valid
    snapshot is loaded and every previously-solved task set is served
    from it, byte-identically to the uninterrupted run (the cache holds
    exact IEEE-754 bits and hits replay the recorded outcome and
    breaker signal). A corrupt or mismatched snapshot is {e refused}
    with a diagnostic naming the failed check (magic / version /
    checksum / fingerprint) and the daemon falls back to a cold start —
    it never trusts bytes that fail a check and never crashes on
    restart debris. A snapshot whose size bound differs from
    [max_cache_entries] is {e not} refused: the daemon's bound wins and
    excess entries are truncated deterministically in eviction order.
    {e Drain} — [should_stop] (or the transport's drain flag) is
    honoured at the next poll; the final snapshot is written either
    way, so the next start is warm.

    Snapshots are written every [snapshot_every] waves and once after
    the run, via {!Lepts_robust.Checkpoint.Snapshot}'s atomic
    write-rename — a [kill -9] at any point leaves the previous intact.
    With [journal_path] set, the arrival journal is saved on the same
    cadence: after a kill, everything up to the last completed wave
    replays offline byte-identically via {!Transport.replay}.

    {2 Observability}

    Gauges in {!Lepts_obs.Metrics.default}:
    [lepts_serve_cache_entries], [lepts_breaker_state{shard}]
    (0 closed / 1 open / 2 half-open), and
    [lepts_serve_shard_backlog{shard}]. With [health_every > 0], a
    one-line health report (wave, processed, backlog, expired and
    coalesced counts, cache hit/stale/upgrade/eviction counters,
    per-shard breaker states and depths) goes to stderr every
    [health_every] waves — stderr, so the NDJSON report on stdout stays
    byte-comparable.

    {2 Chaos}

    With [chaos] attached, requests may be dropped before admission,
    solves slowed or crashed on the worker domain, and the final
    snapshot corrupted and re-validated (then restored) — see {!Chaos}.
    Transport-level faults (connection cuts, stalls, spool bit flips)
    are injected by the transport itself when it is constructed with
    the same chaos handle. The injections go through the real
    supervision, shedding and validation paths; nothing is mocked. *)

type config = {
  service : Service.config;
  cache_path : string option;  (** snapshot location; [None] disables *)
  snapshot_every : int;  (** waves between periodic snapshots; >= 1 *)
  health_every : int;  (** waves between health lines; 0 disables *)
  journal_path : string option;
      (** arrival-journal location; [None] disables journaling *)
  max_cache_entries : int option;
      (** cache size bound; [None] leaves it unbounded (or adopts a
          loaded snapshot's recorded bound) *)
}

val default_config : config
(** {!Service.default_config}, no cache path, [snapshot_every = 8],
    [health_every = 0], no journal, unbounded cache. *)

type start =
  | Cold
  | Warm of int  (** entries loaded from the snapshot *)
  | Refused of string  (** snapshot diagnostic; served cold instead *)

val start_name : start -> string
(** ["cold"] / ["warm"] / ["refused"] — the stable tag used in logs and
    the NDJSON report (the refusal diagnostic is reported separately). *)

type result = {
  report : Service.report;
  start : start;
  cache : Cache.t;  (** post-run cache (inspectable in tests) *)
  chaos_line : string option;
      (** the [{"chaos": ...}] trailer, when chaos was attached *)
}

val cache_stats_line : cache:Cache.t -> string
(** One [{"cache": ...}] JSON line with the entry count and
    hit/miss/stale/insert/upgrade/eviction counters — the optional
    report trailer behind the CLI's [--cache-stats] flag. Off by
    default because the counters differ between cold and warm runs,
    which would break the byte-identical-report contract. *)

val run_source :
  ?config:config ->
  ?power:Lepts_power.Model.t ->
  ?chaos:Chaos.t ->
  ?before_solve:(attempt:int -> Request.t -> unit) ->
  ?should_stop:(unit -> bool) ->
  source:Transport.source ->
  unit ->
  result
(** One daemon run over a transport source: load-or-create the cache,
    serve via {!Service.run_source} until the source closes or a drain
    strikes, snapshot (and journal) periodically and at the end. The
    cache fingerprint pins the [power] model (exact voltage rail bits),
    so a snapshot written under another model is refused.
    [before_solve] composes after chaos injection. Note that a live
    source takes its own [?chaos] at construction for transport-level
    faults — this function's [chaos] drives only solve-time and
    snapshot-corruption injection (and, through {!run}, batch-mode
    line drops). *)

val run :
  ?config:config ->
  ?power:Lepts_power.Model.t ->
  ?chaos:Chaos.t ->
  ?before_solve:(attempt:int -> Request.t -> unit) ->
  ?should_stop:(unit -> bool) ->
  lines:string list ->
  unit ->
  result
(** One daemon run over a fixed batch of NDJSON lines: chaos line drops
    (when configured), then {!run_source} over {!Transport.of_lines}.
    Kept as a thin replay wrapper so existing batch callers and tests
    are unaffected; new long-running deployments should prefer
    {!run_source} with a socket transport, or the CLI's [--spool] mode
    for file-fed batch work. *)
