module Checkpoint = Lepts_robust.Checkpoint
module Metrics = Lepts_obs.Metrics
module Model = Lepts_power.Model

let log_src = Logs.Src.create "lepts.serve.daemon" ~doc:"persistent serve daemon"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  service : Service.config;
  cache_path : string option;
  snapshot_every : int;
  health_every : int;
  journal_path : string option;
  max_cache_entries : int option;
}

let default_config =
  { service = Service.default_config; cache_path = None; snapshot_every = 8;
    health_every = 0; journal_path = None; max_cache_entries = None }

type start = Cold | Warm of int | Refused of string

let start_name = function
  | Cold -> "cold"
  | Warm n -> Printf.sprintf "warm (%d cached schedule(s))" n
  | Refused _ -> "cold (snapshot refused)"

type result = {
  report : Service.report;
  start : start;
  cache : Cache.t;
  chaos_line : string option;
}

(* The cache-level fingerprint pins every daemon parameter that changes
   responses — today, the power model (exact IEEE-754 bits of its
   voltage rails). [jobs], [shards] and the breaker thresholds change
   scheduling of work, never a schedule, so they are deliberately
   absent: a snapshot stays warm across a re-tuned deployment. The
   cache size bound is likewise absent — {!Cache.load} reconciles a
   differently-bounded snapshot by deterministic truncation instead of
   refusing it. *)
let cache_fingerprint ~power =
  Checkpoint.fingerprint
    ~parts:
      [ "lepts-serve-cache";
        Checkpoint.float_field power.Model.v_min;
        Checkpoint.float_field power.Model.v_max ]

(* Warm start: validate and load the snapshot if one exists. A corrupt
   or mismatched snapshot is refused with its diagnostic and the
   daemon falls back to a cold start — it must never trust bytes that
   fail a check, and never crash because a restart found debris. *)
let start_cache ~path_opt ~max_entries ~fingerprint =
  let fresh () = Cache.create ?max_entries ~fingerprint () in
  match path_opt with
  | None -> (Cold, fresh ())
  | Some path ->
    if not (Sys.file_exists path) then begin
      Log.info (fun f -> f "%s: no snapshot, cold start" path);
      (Cold, fresh ())
    end
    else (
      match Cache.load ?max_entries ~path ~fingerprint () with
      | Ok cache -> (Warm (Cache.size cache), cache)
      | Error msg ->
        Log.err (fun f -> f "refusing cache snapshot: %s" msg);
        (Refused msg, fresh ()))

let g_entries =
  Metrics.gauge ~help:"schedules held by the serve cache" Metrics.default
    "lepts_serve_cache_entries"

let shard_gauges shards =
  Array.init shards (fun i ->
      let labels = [ ("shard", string_of_int i) ] in
      ( Metrics.gauge ~help:"breaker state (0 closed, 1 open, 2 half-open)"
          ~labels Metrics.default "lepts_breaker_state",
        Metrics.gauge ~help:"admitted requests not yet processed" ~labels
          Metrics.default "lepts_serve_shard_backlog" ))

let state_code = function
  | Breaker.Closed -> 0.
  | Breaker.Open -> 1.
  | Breaker.Half_open -> 2.

let health_line ~cache (p : Service.progress) =
  let stats = Cache.stats cache in
  Printf.sprintf
    "health wave=%d processed=%d backlog=%d expired=%d coalesced=%d \
     cache{entries=%d,hits=%d,hit_rate=%.2f,stale=%d,upgrades=%d,\
     evictions=%d} shards=[%s]"
    p.Service.p_wave p.Service.p_processed p.Service.p_backlog
    p.Service.p_expired p.Service.p_coalesced stats.Cache.entries
    stats.Cache.s_hits (Cache.hit_rate cache) stats.Cache.s_stale
    stats.Cache.s_upgrades stats.Cache.s_evictions
    (String.concat ","
       (List.map
          (fun (i, st, backlog) ->
            Printf.sprintf "%d:%s:%d" i (Breaker.state_name st) backlog)
          p.Service.p_shards))

let cache_stats_line ~cache =
  let s = Cache.stats cache in
  Printf.sprintf
    "{\"cache\":{\"entries\":%d,\"hits\":%d,\"misses\":%d,\"stale\":%d,\
     \"inserts\":%d,\"upgrades\":%d,\"evictions\":%d}}"
    s.Cache.entries s.Cache.s_hits s.Cache.s_misses s.Cache.s_stale
    s.Cache.s_inserts s.Cache.s_upgrades s.Cache.s_evictions

let run_source ?(config = default_config) ?(power = Model.ideal ()) ?chaos
    ?before_solve ?(should_stop = fun () -> false) ~source () =
  if config.snapshot_every < 1 then
    invalid_arg "Daemon.run: snapshot_every must be >= 1";
  if config.health_every < 0 then
    invalid_arg "Daemon.run: health_every must be >= 0";
  let fingerprint = cache_fingerprint ~power in
  let start, cache =
    start_cache ~path_opt:config.cache_path
      ~max_entries:config.max_cache_entries ~fingerprint
  in
  Log.info (fun f -> f "daemon start: %s" (start_name start));
  let journal =
    Option.map (fun _ -> Transport.Journal.create ()) config.journal_path
  in
  let save_journal () =
    match (journal, config.journal_path) with
    | Some j, Some path -> Transport.Journal.save j ~path
    | _ -> ()
  in
  let before_solve ~attempt req =
    Option.iter (fun ch -> Chaos.before_solve ch ~attempt req) chaos;
    Option.iter (fun f -> f ~attempt req) before_solve
  in
  let gauges = shard_gauges config.service.Service.shards in
  let after_wave (p : Service.progress) =
    Metrics.set g_entries (float_of_int (Cache.size cache));
    List.iter
      (fun (i, st, backlog) ->
        let g_state, g_backlog = gauges.(i) in
        Metrics.set g_state (state_code st);
        Metrics.set g_backlog (float_of_int backlog))
      p.Service.p_shards;
    (* Periodic snapshot: the persistence that makes a kill -9 at any
       wave boundary recoverable. Atomic write-rename, so a crash
       mid-save leaves the previous snapshot intact. The arrival
       journal is saved on the same cadence — after a kill, everything
       up to the last completed wave replays offline. *)
    if p.Service.p_wave mod config.snapshot_every = 0 then begin
      Option.iter (fun path -> Cache.save cache ~path) config.cache_path;
      save_journal ()
    end;
    if config.health_every > 0 && p.Service.p_wave mod config.health_every = 0
    then prerr_endline (health_line ~cache p)
  in
  let report =
    Service.run_source ~config:config.service ~power ~cache ?journal
      ~before_solve ~after_wave ~should_stop ~source ()
  in
  Option.iter (fun path -> Cache.save cache ~path) config.cache_path;
  save_journal ();
  (* Chaos epilogue: corrupt the final snapshot and verify the daemon's
     own validating loader refuses it — then restore the good bytes so
     the next restart still comes up warm. *)
  let chaos_line =
    Option.map
      (fun ch ->
        let verdict =
          match (config.cache_path, (Chaos.profile ch).Chaos.corrupt_snapshot)
          with
          | None, _ | _, false -> "skipped"
          | Some path, true -> (
            match Chaos.corrupt_file ch ~path with
            | Error msg ->
              Log.err (fun f -> f "chaos: corruption failed: %s" msg);
              "corrupt-error"
            | Ok _ -> (
              match
                Cache.load ?max_entries:config.max_cache_entries ~path
                  ~fingerprint ()
              with
              | Error msg ->
                Log.info (fun f ->
                    f "chaos: corrupted snapshot refused as expected: %s" msg);
                Cache.save cache ~path;
                "corrupted+refused"
              | Ok _ ->
                Log.err (fun f ->
                    f "chaos: corrupted snapshot was ACCEPTED — checksum hole");
                "corrupted+accepted"))
        in
        Chaos.report_json ch ~snapshot:verdict)
      chaos
  in
  { report; start; cache; chaos_line }

let run ?config ?power ?chaos ?before_solve ?should_stop ~lines () =
  (* Chaos line drops happen here, before the transport, exactly as
     earlier releases did for batch mode; live transports instead take
     a [?chaos] at construction and drop at ingress. *)
  let lines =
    match chaos with None -> lines | Some ch -> Chaos.filter_lines ch lines
  in
  run_source ?config ?power ?chaos ?before_solve ?should_stop
    ~source:(Transport.of_lines lines) ()
