module Metrics = Lepts_obs.Metrics

let log_src = Logs.Src.create "lepts.serve.breaker" ~doc:"ACS circuit breaker"

module Log = (val Logs.src_log log_src : Logs.LOG)

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type config = { failure_threshold : int; cooldown : int; probes : int }

let default_config = { failure_threshold = 3; cooldown = 8; probes = 1 }

let m_transition state =
  Metrics.counter ~help:"circuit breaker state transitions"
    ~labels:[ ("to", state_name state) ]
    Metrics.default "lepts_breaker_transitions_total"

let () =
  List.iter (fun s -> ignore (m_transition s)) [ Closed; Open; Half_open ]

type t = {
  config : config;
  mutable state : state;
  mutable consecutive_failures : int;
  mutable opened_at : int;  (* logical time of the last Closed/Half_open -> Open *)
  mutable probes_left : int;  (* ACS slots remaining in this half-open episode *)
  mutable log : (int * state) list;  (* reverse chronological *)
}

let create ?(config = default_config) () =
  if config.failure_threshold < 1 then
    invalid_arg "Breaker.create: failure_threshold must be >= 1";
  if config.cooldown < 1 then invalid_arg "Breaker.create: cooldown must be >= 1";
  if config.probes < 1 then invalid_arg "Breaker.create: probes must be >= 1";
  { config; state = Closed; consecutive_failures = 0; opened_at = 0;
    probes_left = 0; log = [] }

let state t = t.state

let transition t ~now next =
  Log.info (fun f ->
      f "t=%d: %s -> %s" now (state_name t.state) (state_name next));
  t.state <- next;
  t.log <- (now, next) :: t.log;
  Metrics.incr (m_transition next)

let plan_route t ~now =
  match t.state with
  | Closed -> true
  | Open ->
    if now - t.opened_at >= t.config.cooldown then begin
      transition t ~now Half_open;
      t.probes_left <- t.config.probes - 1;
      true
    end
    else false
  | Half_open ->
    if t.probes_left > 0 then begin
      t.probes_left <- t.probes_left - 1;
      true
    end
    else false

let trip t ~now =
  t.opened_at <- now;
  t.consecutive_failures <- 0;
  transition t ~now Open

let observe t ~now ~routed_acs ~ok =
  if routed_acs then
    match t.state with
    | Closed ->
      if ok then t.consecutive_failures <- 0
      else begin
        t.consecutive_failures <- t.consecutive_failures + 1;
        if t.consecutive_failures >= t.config.failure_threshold then
          trip t ~now
      end
    | Half_open ->
      (* One verdict decides the episode: a failed probe re-opens even
         if sibling probes are still in flight; a successful probe
         closes. *)
      if ok then begin
        t.consecutive_failures <- 0;
        transition t ~now Closed
      end
      else trip t ~now
    | Open ->
      (* A probe that was planned in Half_open but folded after a
         sibling re-opened the circuit: already accounted for. *)
      ()

let transitions t = List.rev t.log
