type t = {
  id : string;
  tasks : int;
  ratio : float;
  seed : int;
  rounds : int;
  budget_ms : int option;
  acs_max_outer : int option;
}

exception Bad of string

(* A strict parser for one flat JSON object — the only shape the wire
   format admits. Strictness is the point: a typoed key or an
   out-of-range value must reject the request at admission, not mutate
   the job it describes. *)
let of_json line =
  let n = String.length line in
  let pos = ref 0 in
  let err fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match line.[!pos] with ' ' | '\t' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some d when d = c -> incr pos
    | Some d -> err "expected '%c' at position %d, found '%c'" c !pos d
    | None -> err "expected '%c' at position %d, found end of line" c !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then err "unterminated string";
      match line.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        if !pos >= n then err "unterminated escape";
        (match line.[!pos] with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | c -> err "unsupported escape '\\%c'" c);
        incr pos;
        go ()
      | c ->
        Buffer.add_char buf c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number ~field =
    skip_ws ();
    let start = !pos in
    while
      !pos < n
      && (match line.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr pos
    done;
    if !pos = start then err "field %S: expected a number at position %d" field start;
    let s = String.sub line start (!pos - start) in
    match float_of_string_opt s with
    | Some f -> f
    | None -> err "field %S: malformed number %S" field s
  in
  let int_of ~field v =
    if Float.is_integer v && Float.abs v <= 1e9 then int_of_float v
    else err "field %S: expected an integer, got %s" field (string_of_float v)
  in
  let id = ref None and tasks = ref None and ratio = ref None in
  let seed = ref None and rounds = ref None in
  let budget_ms = ref None and acs_max_outer = ref None in
  let set slot ~field v =
    match !slot with
    | Some _ -> err "duplicate field %S" field
    | None -> slot := Some v
  in
  try
    expect '{';
    skip_ws ();
    (if peek () = Some '}' then incr pos
     else
       let rec members () =
         let key = parse_string () in
         expect ':';
         (match key with
         | "id" -> set id ~field:key (parse_string ())
         | "tasks" -> set tasks ~field:key (int_of ~field:key (parse_number ~field:key))
         | "ratio" -> set ratio ~field:key (parse_number ~field:key)
         | "seed" -> set seed ~field:key (int_of ~field:key (parse_number ~field:key))
         | "rounds" ->
           set rounds ~field:key (int_of ~field:key (parse_number ~field:key))
         | "budget_ms" ->
           set budget_ms ~field:key (int_of ~field:key (parse_number ~field:key))
         | "acs_max_outer" ->
           set acs_max_outer ~field:key
             (int_of ~field:key (parse_number ~field:key))
         | other -> err "unknown field %S" other);
         skip_ws ();
         match peek () with
         | Some ',' ->
           incr pos;
           skip_ws ();
           members ()
         | Some '}' -> incr pos
         | Some c -> err "expected ',' or '}' at position %d, found '%c'" !pos c
         | None -> err "unterminated object"
       in
       members ());
    skip_ws ();
    if !pos <> n then err "trailing input after object at position %d" !pos;
    let id =
      match !id with
      | None -> err "missing required field \"id\""
      | Some "" -> err "field \"id\": must be non-empty"
      | Some s -> s
    in
    let tasks = Option.value !tasks ~default:0 in
    if tasks < 0 || tasks > 64 then
      err "field \"tasks\": %d out of range [0, 64]" tasks;
    let ratio = Option.value !ratio ~default:0.1 in
    if not (Float.is_finite ratio) || ratio < 0. || ratio > 1. then
      err "field \"ratio\": %s out of range [0, 1]" (string_of_float ratio);
    let seed = Option.value !seed ~default:0 in
    let rounds = Option.value !rounds ~default:0 in
    if rounds < 0 then err "field \"rounds\": %d must be >= 0" rounds;
    Option.iter
      (fun b -> if b <= 0 then err "field \"budget_ms\": %d must be > 0" b)
      !budget_ms;
    Option.iter
      (fun m -> if m < 0 then err "field \"acs_max_outer\": %d must be >= 0" m)
      !acs_max_outer;
    Ok
      { id; tasks; ratio; seed; rounds; budget_ms = !budget_ms;
        acs_max_outer = !acs_max_outer }
  with Bad msg -> Error msg

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shortest decimal rendering that parses back to the exact same
   IEEE-754 value: [%g] alone loses bits (e.g. 0.1 +. 0.2), which
   would break the of_json∘to_json round-trip the cache key relies
   on. *)
let float_json x =
  let exact s = float_of_string s = x in
  let g = Printf.sprintf "%g" x in
  if exact g then g
  else
    let p15 = Printf.sprintf "%.15g" x in
    if exact p15 then p15 else Printf.sprintf "%.17g" x

let to_json r =
  let fields = ref [] in
  let add s = fields := s :: !fields in
  add (Printf.sprintf "\"id\":\"%s\"" (escape r.id));
  if r.tasks <> 0 then add (Printf.sprintf "\"tasks\":%d" r.tasks);
  if r.ratio <> 0.1 then add (Printf.sprintf "\"ratio\":%s" (float_json r.ratio));
  if r.seed <> 0 then add (Printf.sprintf "\"seed\":%d" r.seed);
  if r.rounds <> 0 then add (Printf.sprintf "\"rounds\":%d" r.rounds);
  Option.iter (fun b -> add (Printf.sprintf "\"budget_ms\":%d" b)) r.budget_ms;
  Option.iter
    (fun m -> add (Printf.sprintf "\"acs_max_outer\":%d" m))
    r.acs_max_outer;
  "{" ^ String.concat "," (List.rev !fields) ^ "}"

let pp ppf r = Format.pp_print_string ppf (to_json r)
