(** Solve-job requests for the scheduling service.

    One request per line, as a {e flat} JSON object (NDJSON). The
    parser is deliberately minimal — string and number fields only, no
    nesting — because the service's wire format is under our control
    and the toolchain has no JSON dependency:

    {v
      {"id": "cnc-1", "ratio": 0.3, "rounds": 100}
      {"id": "rnd-7", "tasks": 8, "ratio": 0.5, "seed": 42}
    v}

    Unknown fields are rejected (a typo must not silently change a
    job), as are duplicate fields and values out of range — malformed
    lines are shed at admission and counted, never guessed at. *)

type t = {
  id : string;  (** request identifier, echoed in the response *)
  tasks : int;
      (** task count for a {!Lepts_workloads.Random_gen} set;
          [0] (default) solves the CNC controller set *)
  ratio : float;  (** BCEC/WCEC ratio, in [[0, 1]]; default 0.1 *)
  seed : int;  (** generation/simulation seed; default 0 *)
  rounds : int;
      (** post-solve simulation rounds; [0] (default) = solve only *)
  budget_ms : int option;
      (** end-to-end deadline, in milliseconds, charged from arrival:
          time spent queued counts against it (a request that expires
          while queued is shed with status [expired], never
          dispatched), and the remainder is the wall cap applied to
          each NLP stage of the solve pipeline *)
  acs_max_outer : int option;
      (** override for the ACS stage's outer-iteration budget; [0]
          fails the stage deterministically (the fault-injection hook
          the breaker tests use) *)
}

val of_json : string -> (t, string) result
(** Parse one NDJSON line. [Error] carries a human-readable reason
    naming the offending field. *)

val to_json : t -> string
(** Canonical one-line re-encoding (defaults omitted); [of_json] of
    the result round-trips. *)

val pp : Format.formatter -> t -> unit
(** Debug rendering (the canonical JSON form, via {!to_json}). *)
