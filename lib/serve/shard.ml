type t = {
  index : int;
  breaker : Breaker.t;
  mutable clock : int;
  mutable admitted : int;
  mutable shed : int;
  mutable processed : int;
  mutable expired : int;
}

type stat = {
  shard : int;
  s_admitted : int;
  s_shed : int;
  s_processed : int;
  s_expired : int;
  transitions : (int * Breaker.state) list;
}

let create ~config ~index =
  { index; breaker = Breaker.create ~config (); clock = 0; admitted = 0;
    shed = 0; processed = 0; expired = 0 }

(* Expired requests left the queue without being processed, so they
   no longer count against the shard's admission backlog. *)
let backlog t = t.admitted - t.processed - t.expired

let stat t =
  { shard = t.index; s_admitted = t.admitted; s_shed = t.shed;
    s_processed = t.processed; s_expired = t.expired;
    transitions = Breaker.transitions t.breaker }

(* Content-addressed routing: FNV-1a of the request id, reduced mod the
   shard count. The same id lands on the same shard in every run and
   every process — shard assignment is part of the deterministic
   service semantics, not an artifact of arrival order or core count. *)
let of_id ~shards id =
  if shards < 1 then invalid_arg "Shard.of_id: shards must be >= 1";
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    id;
  Int64.to_int (Int64.rem (Int64.logand !h Int64.max_int) (Int64.of_int shards))
