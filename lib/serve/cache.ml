module Checkpoint = Lepts_robust.Checkpoint
module Metrics = Lepts_obs.Metrics

let log_src = Logs.Src.create "lepts.serve.cache" ~doc:"content-addressed schedule cache"

module Log = (val Logs.src_log log_src : Logs.LOG)

let magic = "lepts-cache"
let snapshot_version = 1

type provenance = Authoritative | Fallback

let provenance_name = function Authoritative -> "acs" | Fallback -> "fallback"

let provenance_of_name = function
  | "acs" -> Some Authoritative
  | "fallback" -> Some Fallback
  | _ -> None

type entry = {
  stage : string;
  mean_energy : float option;
  attempts : int;
  crashes : int;
  provenance : provenance;
}

type t = {
  fingerprint : string;
  table : (string, entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable stale : int;
  mutable inserts : int;
  mutable upgrades : int;
}

type stats = {
  entries : int;
  s_hits : int;
  s_misses : int;
  s_stale : int;
  s_inserts : int;
  s_upgrades : int;
}

let m_hits =
  Metrics.counter ~help:"requests served from the schedule cache" Metrics.default
    "lepts_cache_hits_total"

let m_misses =
  Metrics.counter ~help:"cache lookups that found no entry" Metrics.default
    "lepts_cache_misses_total"

let m_stale =
  Metrics.counter
    ~help:"cache lookups that found only a fallback-provenance entry"
    Metrics.default "lepts_cache_stale_total"

let m_inserts =
  Metrics.counter ~help:"entries inserted into the schedule cache"
    Metrics.default "lepts_cache_inserts_total"

let m_saves =
  Metrics.counter ~help:"cache snapshots written" Metrics.default
    "lepts_cache_saves_total"

let m_warm_loads =
  Metrics.counter ~help:"cache snapshots loaded at startup" Metrics.default
    "lepts_cache_warm_loads_total"

let create ~fingerprint =
  { fingerprint; table = Hashtbl.create 256; hits = 0; misses = 0; stale = 0;
    inserts = 0; upgrades = 0 }

let fingerprint t = t.fingerprint
let size t = Hashtbl.length t.table

let stats t =
  { entries = Hashtbl.length t.table; s_hits = t.hits; s_misses = t.misses;
    s_stale = t.stale; s_inserts = t.inserts; s_upgrades = t.upgrades }

let hit_rate t =
  let looked = t.hits + t.misses + t.stale in
  if looked = 0 then 0. else float_of_int t.hits /. float_of_int looked

(* The content address of a request: every field that changes the
   response, and nothing else — the id in particular is excluded, so a
   million clients submitting the same task set share one entry. *)
let key (req : Request.t) =
  Checkpoint.fingerprint
    ~parts:
      [ "request"; string_of_int req.Request.tasks;
        Checkpoint.float_field req.Request.ratio;
        string_of_int req.Request.seed; string_of_int req.Request.rounds;
        (match req.Request.budget_ms with None -> "-" | Some b -> string_of_int b);
        (match req.Request.acs_max_outer with
        | None -> "-"
        | Some m -> string_of_int m) ]

let find t ~key =
  match Hashtbl.find_opt t.table key with
  | Some e when e.provenance = Authoritative ->
    t.hits <- t.hits + 1;
    Metrics.incr m_hits;
    `Hit e
  | Some e ->
    t.stale <- t.stale + 1;
    Metrics.incr m_stale;
    `Stale e
  | None ->
    t.misses <- t.misses + 1;
    Metrics.incr m_misses;
    `Miss

let store t ~key entry =
  match Hashtbl.find_opt t.table key with
  | Some old when old.provenance = Authoritative ->
    (* Never demote: an authoritative entry is the full-ACS answer for
       this content and stays, whatever a later (possibly degraded)
       solve of the same content produced. *)
    ()
  | Some _ ->
    if entry.provenance = Authoritative then begin
      t.upgrades <- t.upgrades + 1;
      Hashtbl.replace t.table key entry
    end
  | None ->
    t.inserts <- t.inserts + 1;
    Metrics.incr m_inserts;
    Hashtbl.replace t.table key entry

(* --- persistence ----------------------------------------------------------- *)

let entry_line key e =
  Printf.sprintf "entry %s %s %s %s %d %d" key (provenance_name e.provenance)
    e.stage
    (match e.mean_energy with
    | None -> "-"
    | Some x -> Checkpoint.float_field x)
    e.attempts e.crashes

let save t ~path =
  let sorted =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table [])
  in
  let body = List.map (fun (k, e) -> entry_line k e) sorted in
  Checkpoint.Snapshot.write ~path
    (Checkpoint.Snapshot.render ~magic ~version:snapshot_version
       ~fingerprint:t.fingerprint ~body);
  Metrics.incr m_saves

let entry_of_line ~path line =
  let fail fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "%s: %s" path m)) fmt
  in
  match String.split_on_char ' ' line with
  | [ "entry"; key; prov; stage; energy; attempts; crashes ] -> (
    match
      ( provenance_of_name prov, int_of_string_opt attempts,
        int_of_string_opt crashes )
    with
    | Some provenance, Some attempts, Some crashes -> (
      let energy_result =
        if energy = "-" then Ok None
        else
          match Int64.of_string_opt ("0x" ^ energy) with
          | Some bits -> Ok (Some (Int64.float_of_bits bits))
          | None -> Error ()
      in
      match energy_result with
      | Error () -> fail "malformed energy field %S in line %S" energy line
      | Ok mean_energy ->
        if key = "" || stage = "" then fail "malformed line %S" line
        else Ok (key, { stage; mean_energy; attempts; crashes; provenance }))
    | _ -> fail "malformed line %S" line)
  | _ -> fail "malformed line %S" line

let load ~path ~fingerprint:run_fp =
  match Checkpoint.Snapshot.read ~path ~magic ~version:snapshot_version with
  | Error _ as e -> e
  | Ok (file_fp, body) ->
    if file_fp <> run_fp then
      Error (Checkpoint.Snapshot.mismatch ~path ~file_fp ~run_fp)
    else
      let t = create ~fingerprint:run_fp in
      let rec fill = function
        | [] ->
          Metrics.incr m_warm_loads;
          Log.info (fun f ->
              f "%s: warm start with %d cached schedule(s)" path (size t));
          Ok t
        | line :: rest -> (
          match entry_of_line ~path line with
          | Error _ as e -> e
          | Ok (key, entry) ->
            Hashtbl.replace t.table key entry;
            fill rest)
      in
      fill body
