module Checkpoint = Lepts_robust.Checkpoint
module Metrics = Lepts_obs.Metrics

let log_src = Logs.Src.create "lepts.serve.cache" ~doc:"content-addressed schedule cache"

module Log = (val Logs.src_log log_src : Logs.LOG)

let magic = "lepts-cache"
let snapshot_version = 2

type provenance = Authoritative | Fallback

let provenance_name = function Authoritative -> "acs" | Fallback -> "fallback"

let provenance_of_name = function
  | "acs" -> Some Authoritative
  | "fallback" -> Some Fallback
  | _ -> None

type entry = {
  stage : string;
  mean_energy : float option;
  attempts : int;
  crashes : int;
  provenance : provenance;
  schedule : (float array * float array) option;
}

(* One stored entry plus its eviction bookkeeping. [last_hit] is the
   logical wave number of the last touch (insert, upgrade or hit) and
   [chance] the second-chance bit — both persisted, so a warm restart
   resumes the exact eviction order the uninterrupted run was in. *)
type slot = { e : entry; mutable last_hit : int; mutable chance : bool }

type t = {
  fingerprint : string;
  table : (string, slot) Hashtbl.t;
  max_entries : int option;
  mutable hits : int;
  mutable misses : int;
  mutable stale : int;
  mutable inserts : int;
  mutable upgrades : int;
  mutable evictions : int;
}

type stats = {
  entries : int;
  s_hits : int;
  s_misses : int;
  s_stale : int;
  s_inserts : int;
  s_upgrades : int;
  s_evictions : int;
}

let m_hits =
  Metrics.counter ~help:"requests served from the schedule cache" Metrics.default
    "lepts_cache_hits_total"

let m_misses =
  Metrics.counter ~help:"cache lookups that found no entry" Metrics.default
    "lepts_cache_misses_total"

let m_stale =
  Metrics.counter
    ~help:"cache lookups that found only a fallback-provenance entry"
    Metrics.default "lepts_cache_stale_total"

let m_inserts =
  Metrics.counter ~help:"entries inserted into the schedule cache"
    Metrics.default "lepts_cache_inserts_total"

let m_evicted =
  Metrics.counter ~help:"cache entries evicted to stay under the size bound"
    Metrics.default "lepts_serve_evicted_total"

let m_saves =
  Metrics.counter ~help:"cache snapshots written" Metrics.default
    "lepts_cache_saves_total"

let m_warm_loads =
  Metrics.counter ~help:"cache snapshots loaded at startup" Metrics.default
    "lepts_cache_warm_loads_total"

let create ?max_entries ~fingerprint () =
  Option.iter
    (fun m ->
      if m < 1 then invalid_arg "Cache.create: max_entries must be >= 1")
    max_entries;
  { fingerprint; table = Hashtbl.create 256; max_entries; hits = 0; misses = 0;
    stale = 0; inserts = 0; upgrades = 0; evictions = 0 }

let fingerprint t = t.fingerprint
let size t = Hashtbl.length t.table
let max_entries t = t.max_entries

let stats t =
  { entries = Hashtbl.length t.table; s_hits = t.hits; s_misses = t.misses;
    s_stale = t.stale; s_inserts = t.inserts; s_upgrades = t.upgrades;
    s_evictions = t.evictions }

let hit_rate t =
  let looked = t.hits + t.misses + t.stale in
  if looked = 0 then 0. else float_of_int t.hits /. float_of_int looked

(* The content address of a request: every field that changes the
   response, and nothing else — the id in particular is excluded, so a
   million clients submitting the same task set share one entry. *)
let key (req : Request.t) =
  Checkpoint.fingerprint
    ~parts:
      [ "request"; string_of_int req.Request.tasks;
        Checkpoint.float_field req.Request.ratio;
        string_of_int req.Request.seed; string_of_int req.Request.rounds;
        (match req.Request.budget_ms with None -> "-" | Some b -> string_of_int b);
        (match req.Request.acs_max_outer with
        | None -> "-"
        | Some m -> string_of_int m) ]

(* The family address: the key with the ratio blinded. Requests in the
   same family differ only in their BCEC/WCEC ratio — the near-identical
   shape the engine chains through the warm continuation. *)
let family_key (req : Request.t) =
  Checkpoint.fingerprint
    ~parts:
      [ "family"; string_of_int req.Request.tasks;
        string_of_int req.Request.seed; string_of_int req.Request.rounds;
        (match req.Request.budget_ms with None -> "-" | Some b -> string_of_int b);
        (match req.Request.acs_max_outer with
        | None -> "-"
        | Some m -> string_of_int m) ]

let touch slot ~wave =
  slot.last_hit <- wave;
  slot.chance <- true

let find ?(wave = 0) t ~key =
  match Hashtbl.find_opt t.table key with
  | Some slot when slot.e.provenance = Authoritative ->
    t.hits <- t.hits + 1;
    Metrics.incr m_hits;
    touch slot ~wave;
    `Hit slot.e
  | Some slot ->
    t.stale <- t.stale + 1;
    Metrics.incr m_stale;
    touch slot ~wave;
    `Stale slot.e
  | None ->
    t.misses <- t.misses + 1;
    Metrics.incr m_misses;
    `Miss

(* Deterministic second-chance eviction. Candidates are ordered by
   (provenance: fallback first, last-hit wave, key); the scan clears
   each set second-chance bit and evicts the first candidate found
   without one — two passes bound the scan, since the first pass clears
   every bit it meets. The order is a pure function of cache content,
   so equal runs evict identical keys (the CI warm-restart byte-diff
   depends on it). *)
let eviction_order t =
  let rank p = match p with Fallback -> 0 | Authoritative -> 1 in
  List.sort
    (fun (k1, s1) (k2, s2) ->
      match compare (rank s1.e.provenance) (rank s2.e.provenance) with
      | 0 -> (
        match compare s1.last_hit s2.last_hit with
        | 0 -> String.compare k1 k2
        | c -> c)
      | c -> c)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table [])

let evict_one t =
  let order = eviction_order t in
  let rec scan = function
    | [] -> None
    | (k, slot) :: rest ->
      if slot.chance then begin
        slot.chance <- false;
        scan rest
      end
      else Some k
  in
  let victim =
    match scan order with
    | Some k -> Some k
    | None -> (
      (* Every slot had its chance bit set; the first pass cleared them
         all, so the head of the order is now evictable. *)
      match order with [] -> None | (k, _) :: _ -> Some k)
  in
  Option.iter
    (fun k ->
      Hashtbl.remove t.table k;
      t.evictions <- t.evictions + 1;
      Metrics.incr m_evicted;
      Log.info (fun f -> f "evicted cache entry %s" k))
    victim

let store ?(wave = 0) t ~key entry =
  match Hashtbl.find_opt t.table key with
  | Some old when old.e.provenance = Authoritative ->
    (* Never demote: an authoritative entry is the full-ACS answer for
       this content and stays, whatever a later (possibly degraded)
       solve of the same content produced. *)
    ()
  | Some old ->
    if entry.provenance = Authoritative then begin
      t.upgrades <- t.upgrades + 1;
      old.last_hit <- wave;
      old.chance <- true;
      Hashtbl.replace t.table key { old with e = entry }
    end
  | None ->
    (match t.max_entries with
    | Some bound when Hashtbl.length t.table >= bound -> evict_one t
    | _ -> ());
    t.inserts <- t.inserts + 1;
    Metrics.incr m_inserts;
    Hashtbl.replace t.table key { e = entry; last_hit = wave; chance = true }

(* --- persistence ----------------------------------------------------------- *)

let floats_field = function
  | [||] -> "-"
  | xs ->
    String.concat ","
      (Array.to_list (Array.map Checkpoint.float_field xs))

let floats_of_field = function
  | "-" -> Some [||]
  | s -> (
    let parts = String.split_on_char ',' s in
    match
      List.map
        (fun p ->
          match Int64.of_string_opt ("0x" ^ p) with
          | Some bits -> Int64.float_of_bits bits
          | None -> raise Exit)
        parts
    with
    | xs -> Some (Array.of_list xs)
    | exception Exit -> None)

let entry_line key slot =
  let e = slot.e in
  let ets, qs =
    match e.schedule with
    | None -> ("-", "-")
    | Some (ets, qs) when Array.length ets = 0 || Array.length qs = 0 ->
      ("-", "-")
    | Some (ets, qs) -> (floats_field ets, floats_field qs)
  in
  Printf.sprintf "entry %s %s %s %s %d %d %d %d %s %s" key
    (provenance_name e.provenance) e.stage
    (match e.mean_energy with
    | None -> "-"
    | Some x -> Checkpoint.float_field x)
    e.attempts e.crashes slot.last_hit
    (if slot.chance then 1 else 0)
    ets qs

let save t ~path =
  let sorted =
    List.sort
      (fun (k1, _) (k2, _) -> String.compare k1 k2)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table [])
  in
  let bound_line =
    Printf.sprintf "bound %s"
      (match t.max_entries with None -> "-" | Some m -> string_of_int m)
  in
  let body = bound_line :: List.map (fun (k, s) -> entry_line k s) sorted in
  Checkpoint.Snapshot.write ~path
    (Checkpoint.Snapshot.render ~magic ~version:snapshot_version
       ~fingerprint:t.fingerprint ~body);
  Metrics.incr m_saves

let entry_of_line ~path line =
  let fail fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "%s: %s" path m)) fmt
  in
  match String.split_on_char ' ' line with
  | [ "entry"; key; prov; stage; energy; attempts; crashes; last_hit; chance;
      ets; qs ] -> (
    match
      ( provenance_of_name prov, int_of_string_opt attempts,
        int_of_string_opt crashes, int_of_string_opt last_hit,
        int_of_string_opt chance )
    with
    | Some provenance, Some attempts, Some crashes, Some last_hit, Some chance
      when chance = 0 || chance = 1 -> (
      let energy_result =
        if energy = "-" then Ok None
        else
          match Int64.of_string_opt ("0x" ^ energy) with
          | Some bits -> Ok (Some (Int64.float_of_bits bits))
          | None -> Error ()
      in
      match energy_result with
      | Error () -> fail "malformed energy field %S in line %S" energy line
      | Ok mean_energy -> (
        match (floats_of_field ets, floats_of_field qs) with
        | Some ets, Some qs ->
          let schedule =
            if Array.length ets = 0 || Array.length ets <> Array.length qs
            then None
            else Some (ets, qs)
          in
          if key = "" || stage = "" then fail "malformed line %S" line
          else
            Ok
              ( key,
                { e =
                    { stage; mean_energy; attempts; crashes; provenance;
                      schedule };
                  last_hit; chance = chance = 1 } )
        | _ -> fail "malformed schedule field in line %S" line))
    | _ -> fail "malformed line %S" line)
  | _ -> fail "malformed line %S" line

(* Deterministic truncation for a snapshot holding more entries than
   the loading daemon's bound allows: retained entries are the ones the
   eviction order would keep — authoritative before fallback, then most
   recently hit, then key order — so two daemons loading the same
   oversized snapshot under the same bound keep identical entries. *)
let truncate_to_bound t =
  match t.max_entries with
  | None -> ()
  | Some bound ->
    let excess = Hashtbl.length t.table - bound in
    if excess > 0 then begin
      Log.warn (fun f ->
          f "snapshot holds %d entries over this daemon's bound of %d: \
             truncating deterministically"
            excess bound);
      let order = eviction_order t in
      List.iteri
        (fun i (k, _) ->
          if i < excess then begin
            Hashtbl.remove t.table k;
            t.evictions <- t.evictions + 1;
            Metrics.incr m_evicted
          end)
        order
    end

let load ?max_entries ~path ~fingerprint:run_fp () =
  match Checkpoint.Snapshot.read ~path ~magic ~version:snapshot_version with
  | Error _ as e -> e
  | Ok (file_fp, body) ->
    if file_fp <> run_fp then
      Error (Checkpoint.Snapshot.mismatch ~path ~file_fp ~run_fp)
    else (
      match body with
      | [] -> Error (Printf.sprintf "%s: missing bound line" path)
      | bound_line :: entries -> (
        let bound =
          match String.split_on_char ' ' bound_line with
          | [ "bound"; "-" ] -> Ok None
          | [ "bound"; m ] -> (
            match int_of_string_opt m with
            | Some m when m >= 1 -> Ok (Some m)
            | _ -> Error ())
          | _ -> Error ()
        in
        match bound with
        | Error () ->
          Error (Printf.sprintf "%s: malformed bound line %S" path bound_line)
        | Ok snapshot_bound ->
          (* The loading daemon's own bound wins; absent one, adopt the
             snapshot's, so save-load-save round-trips the bound. *)
          let max_entries =
            match max_entries with Some _ -> max_entries | None -> snapshot_bound
          in
          let t = create ?max_entries ~fingerprint:run_fp () in
          let rec fill = function
            | [] ->
              truncate_to_bound t;
              Metrics.incr m_warm_loads;
              Log.info (fun f ->
                  f "%s: warm start with %d cached schedule(s)" path (size t));
              Ok t
            | line :: rest -> (
              match entry_of_line ~path line with
              | Error _ as e -> e
              | Ok (key, slot) ->
                Hashtbl.replace t.table key slot;
                fill rest)
          in
          fill entries))
