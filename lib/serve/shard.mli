(** Per-shard service state: one request-queue partition of the domain
    pool, with its own circuit breaker, logical clock and admission
    counters.

    Requests are assigned to shards by {!of_id} — a content hash of the
    request id — so a flood of failing requests from one client family
    trips {e that shard's} breaker and sheds above {e that shard's}
    high-water mark while the other shards keep serving at full ACS
    quality. Each shard's logical clock ticks once per request folded
    into it, so breaker behaviour stays a pure function of the shard's
    own observation sequence: bit-identical for every [jobs] value and
    unaffected by traffic on sibling shards. *)

type t = {
  index : int;
  breaker : Breaker.t;
  mutable clock : int;  (** logical time: requests folded into this shard *)
  mutable admitted : int;
  mutable shed : int;
  mutable processed : int;
  mutable expired : int;
      (** admitted requests whose deadline lapsed while queued — shed
          at dispatch, never solved, no breaker observation *)
}

type stat = {
  shard : int;
  s_admitted : int;
  s_shed : int;
  s_processed : int;
  s_expired : int;
  transitions : (int * Breaker.state) list;
      (** the shard breaker's transition log, logical-clock stamped *)
}

val create : config:Breaker.config -> index:int -> t
(** A fresh shard at position [index] with its own breaker (built from
    [config]), logical clock at zero and all counters cleared. *)

val backlog : t -> int
(** Admitted requests not yet processed or expired. *)

val stat : t -> stat
(** Immutable snapshot of the shard's counters and its breaker's
    transition log, for the report trailer and health lines. *)

val of_id : shards:int -> string -> int
(** Deterministic shard assignment: FNV-1a of the id mod [shards].
    Raises [Invalid_argument] when [shards < 1]. *)
