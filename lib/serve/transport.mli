(** Ingress transports for the serve daemon: where request lines come
    from, stamped and sequenced so any live run can be replayed offline
    byte-identically.

    A {!source} produces {!batch}es of {!arrival}s. The engine
    ({!Service.run_source}) polls the source once per wave boundary,
    admits whatever arrived, and processes one wave — so the transport
    never blocks the solve pipeline and the engine never busy-waits on
    a quiet socket (a poll with no pending backlog parks in [select]
    for a bounded slice).

    {2 Sources}

    - {!of_lines} — the batch compatibility path: every line arrives at
      once, at time zero ({!Service.run} and {!Daemon.run} are thin
      wrappers over it; new deployments should prefer [--spool] or
      [--socket]).
    - {!socket} — NDJSON over a Unix-domain stream socket, with a
      bounded accept backlog, per-connection read timeouts, and
      partial-line / oversized-line rejection with diagnostics.
    - {!spool} — a watched spool directory for environments without
      sockets: drop a file of NDJSON lines in, the daemon consumes and
      deletes it (write-then-rename on the producer side keeps partial
      files invisible).
    - {!replay} — re-produce the exact batch sequence an
      {!module-Journal} recorded, including arrival stamps and
      transport-level rejections. This is how CI pins determinism for
      a nondeterministic ingress: live run journals, offline replay
      must byte-diff clean.

    {2 Time and determinism}

    Wall time enters the engine only through [b_now_ms] and [a_at_ms] —
    both journaled — so deadline-expiry decisions are a pure function
    of the journal, not of the replaying host's clock. Transport chaos
    (connection cuts, stalls, spool flips — see {!Chaos}) fires at
    ingress, {e before} the journal records the surviving arrivals, so
    a replay observes the faults' effects without re-injecting them. *)

type arrival = {
  a_seq : int;  (** global arrival sequence number, counted from 1 *)
  a_at_ms : int;  (** arrival stamp, milliseconds since source start *)
  a_payload : (string, string) result;
      (** [Ok line] — a complete NDJSON line; [Error diag] — a
          transport-level rejection (partial line at disconnect, read
          timeout with buffered debris, oversized line), which the
          engine reports as a rejected outcome for ["line-<seq>"] *)
}

type batch = {
  b_now_ms : int;  (** the poll's time stamp — the wave's notion of now *)
  b_arrivals : arrival list;  (** in sequence order; may be empty *)
  b_closed : bool;  (** no further arrivals will ever come *)
  b_drain : bool;
      (** replay of a recorded drain: the engine must stop exactly
          here, as the live run did *)
}

type source

val of_lines : string list -> source
(** All lines arrive in one batch at time zero, already closed —
    the batch compatibility source. Sequence numbers are line numbers
    (from 1). *)

val socket :
  ?accept_backlog:int ->
  ?read_timeout_ms:int ->
  ?max_line_bytes:int ->
  ?idle_exit_ms:int ->
  ?chaos:Chaos.t ->
  path:string ->
  unit ->
  (source, string) result
(** Listen on a Unix-domain stream socket at [path]. [Error] names the
    bind failure (the CLI maps it to exit 2); a stale socket file with
    no listener behind it is silently replaced, a live one is refused
    as already in use.

    [accept_backlog] (default 16) bounds the kernel accept queue.
    [read_timeout_ms] (default 5000) rejects a connection's buffered
    partial line when no byte arrives for that long. [max_line_bytes]
    (default 65536) rejects oversized lines with a diagnostic (the
    connection is closed — the remainder cannot be framed).
    [idle_exit_ms] (default 0 = never) closes the source after that
    long with no connections and no traffic, which is how tests and
    soak jobs terminate a daemon without signals. *)

val spool :
  ?poll_ms:int ->
  ?max_line_bytes:int ->
  ?idle_exit_ms:int ->
  ?chaos:Chaos.t ->
  dir:string ->
  unit ->
  (source, string) result
(** Watch directory [dir] for spool files: each poll consumes (reads
    and deletes) every regular file whose name does not start with
    ['.'] or end in [".tmp"] or [".part"], in lexicographic name order,
    one arrival per non-blank line. Producers should write-then-rename
    so partial files are never picked up. [Error] when [dir] is not a
    writable directory. [poll_ms] (default 50) is the scan interval;
    [max_line_bytes] and [idle_exit_ms] as for {!socket}. *)

val replay : path:string -> (source, string) result
(** Re-produce the batches recorded in the arrival journal at [path]
    ([lepts-arrivals/1] snapshot framing). [Error] names the failed
    framing check or malformed body line. *)

val poll : source -> pending:bool -> batch
(** Produce the next batch. [pending] is whether the engine already
    holds unprocessed backlog: when [false] a live source may park in
    [select]/sleep for a bounded slice (~50 ms) waiting for traffic;
    when [true] it only sweeps what is immediately available. Once a
    source reports [b_closed = true] with no arrivals, every later
    poll does too. *)

val close : source -> unit
(** Release descriptors; for {!socket}, unlink the socket path.
    Idempotent. *)

(** The arrival journal: every batch the engine processed, with stamps
    and transport rejections, in {!Lepts_robust.Checkpoint.Snapshot}
    framing ([lepts-arrivals/1], atomic write-rename). Body lines:
    {v
    batch <now_ms> <closed:0|1> <drain:0|1>
    ok <seq> <at_ms> <raw request line>
    err <seq> <at_ms> <diagnostic>
    v} *)
module Journal : sig
  val magic : string
  (** ["lepts-arrivals"]. *)

  val version : int
  (** [1]. *)

  type t

  val create : unit -> t
  (** An empty journal. *)

  val record : t -> batch -> unit
  (** Append one batch (the engine records exactly the batches it acted
      on, so replay reproduces its wave boundaries). *)

  val batches : t -> int
  (** Batches recorded so far. *)

  val save : t -> path:string -> unit
  (** Atomic snapshot write; safe to call every wave. *)
end
