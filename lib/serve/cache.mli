(** Content-addressed schedule cache: the paper's value proposition —
    an offline-computed schedule reused across many hyperperiods —
    lifted to the service layer. Identical task sets are solved once
    and served forever; a hit skips the ACS solve entirely and replays
    the recorded outcome byte-identically.

    {2 Keying}

    The {!key} of a request is a {!Lepts_robust.Checkpoint.fingerprint}
    of every field that changes the response — [tasks], [ratio] (exact
    IEEE-754 bits), [seed], [rounds], [budget_ms], [acs_max_outer] —
    and nothing else. The request [id] in particular is excluded:
    a million embedded clients submitting the same task set share one
    entry. Parameters of the hosting daemon that change results (the
    power model) are pinned by the cache-level {!fingerprint} instead,
    so a snapshot written under one power model is refused by a daemon
    running another.

    {2 Provenance}

    Every entry records the provenance of its schedule: [Authoritative]
    (the full ACS solve produced it) or [Fallback] (a WCS/RM stage
    below ACS did). Only authoritative entries are served — a degraded
    result must never be replayed as the real answer once the solver
    has recovered. Fallback entries are still stored (they upgrade in
    place when a later solve of the same content wins at ACS) and
    lookups that find one report [`Stale], so the engine re-solves.
    An authoritative entry is never demoted.

    {2 Persistence}

    Snapshots use the {!Lepts_robust.Checkpoint.Snapshot} framing
    ([lepts-cache/1]): atomic write-rename, checksummed, fingerprinted;
    floats stored as exact IEEE-754 bits so a warm-started daemon
    serves the bit-identical response an uninterrupted one would.
    Corrupt or mismatched snapshots are refused with a diagnostic
    naming the failed check (magic / version / checksum / fingerprint).

    Not domain-safe: the service engine confines all lookups and stores
    to the sequential plan/fold phases on the coordinating domain. *)

type provenance =
  | Authoritative  (** the full ACS solve produced the schedule *)
  | Fallback  (** a WCS/RM stage below ACS produced it *)

val provenance_name : provenance -> string
(** ["acs"] / ["fallback"]. *)

type entry = {
  stage : string;  (** winning pipeline stage name *)
  mean_energy : float option;  (** post-solve simulation mean, if any *)
  attempts : int;  (** attempts the recorded solve took *)
  crashes : int;  (** worker crashes the recorded solve absorbed *)
  provenance : provenance;
}

type t

type stats = {
  entries : int;
  s_hits : int;
  s_misses : int;
  s_stale : int;  (** lookups that found only a fallback entry *)
  s_inserts : int;
  s_upgrades : int;  (** fallback entries upgraded to authoritative *)
}

val create : fingerprint:string -> t
(** An empty cache pinned to a configuration [fingerprint]
    ({!Lepts_robust.Checkpoint.fingerprint} of the daemon parameters
    that change results — the power model, not [jobs]). *)

val fingerprint : t -> string
(** The configuration fingerprint the cache was created (or loaded)
    with — the one snapshots embed and {!load} checks. *)

val size : t -> int
(** Entries currently stored, whatever their provenance. *)

val stats : t -> stats
(** Lookup/insert counters since creation (warm-loaded entries count
    in [entries] but not in [s_inserts]). *)

val hit_rate : t -> float
(** Hits over all lookups ([0.] before the first lookup). *)

val key : Request.t -> string
(** Content address of a request (see module docs). *)

val find : t -> key:string -> [ `Hit of entry | `Stale of entry | `Miss ]
(** [`Hit] only for authoritative entries; [`Stale] reports a
    fallback-provenance entry the caller must not serve. Counted in
    [lepts_cache_{hits,misses,stale}_total]. *)

val store : t -> key:string -> entry -> unit
(** Insert or upgrade (see provenance rules above). *)

val save : t -> path:string -> unit
(** Atomic snapshot ([lepts-cache/1]). Entries are written sorted by
    key, so equal caches produce byte-identical files. Counted in
    [lepts_cache_saves_total]. *)

val load : path:string -> fingerprint:string -> (t, string) result
(** Validate and load a snapshot. The error message names the failed
    check — magic, version, checksum or fingerprint — or the malformed
    entry line. Counted in [lepts_cache_warm_loads_total] on
    success. *)
