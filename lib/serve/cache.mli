(** Content-addressed schedule cache: the paper's value proposition —
    an offline-computed schedule reused across many hyperperiods —
    lifted to the service layer. Identical task sets are solved once
    and served forever; a hit skips the ACS solve entirely and replays
    the recorded outcome byte-identically.

    {2 Keying}

    The {!key} of a request is a {!Lepts_robust.Checkpoint.fingerprint}
    of every field that changes the response — [tasks], [ratio] (exact
    IEEE-754 bits), [seed], [rounds], [budget_ms], [acs_max_outer] —
    and nothing else. The request [id] in particular is excluded:
    a million embedded clients submitting the same task set share one
    entry. Parameters of the hosting daemon that change results (the
    power model) are pinned by the cache-level {!fingerprint} instead,
    so a snapshot written under one power model is refused by a daemon
    running another. {!family_key} additionally blinds the ratio — the
    address of the near-identical family the engine warm-chains.

    {2 Provenance}

    Every entry records the provenance of its schedule: [Authoritative]
    (the full ACS solve produced it) or [Fallback] (a WCS/RM stage
    below ACS did). Only authoritative entries are served — a degraded
    result must never be replayed as the real answer once the solver
    has recovered. Fallback entries are still stored (they upgrade in
    place when a later solve of the same content wins at ACS) and
    lookups that find one report [`Stale], so the engine re-solves.
    An authoritative entry is never demoted.

    {2 Bounded size}

    A cache created (or loaded) with [max_entries] never exceeds it:
    inserting into a full cache first evicts exactly one entry, chosen
    by a deterministic second-chance scan ordered by (provenance —
    fallback first, last-hit wave, key). Every touch (insert, upgrade,
    hit) sets the entry's second-chance bit and stamps its wave; the
    scan clears bits until it finds one already clear. The order is a
    pure function of cache content, so equal runs evict identical keys
    and a warm restart under eviction pressure still byte-matches the
    uninterrupted run. Evictions are counted in [stats] and in
    [lepts_serve_evicted_total].

    {2 Persistence}

    Snapshots use the {!Lepts_robust.Checkpoint.Snapshot} framing
    ([lepts-cache/2]): atomic write-rename, checksummed, fingerprinted;
    floats (including the cached schedule vectors that seed warm
    chains) stored as exact IEEE-754 bits so a warm-started daemon
    serves the bit-identical response an uninterrupted one would. The
    size bound and per-entry eviction state round-trip through the
    snapshot. Corrupt or mismatched snapshots are refused with a
    diagnostic naming the failed check (magic / version / checksum /
    fingerprint).

    Not domain-safe: the service engine confines all lookups and stores
    to the sequential plan/fold phases on the coordinating domain. *)

type provenance =
  | Authoritative  (** the full ACS solve produced the schedule *)
  | Fallback  (** a WCS/RM stage below ACS produced it *)

val provenance_name : provenance -> string
(** ["acs"] / ["fallback"]. *)

type entry = {
  stage : string;  (** winning pipeline stage name *)
  mean_energy : float option;  (** post-solve simulation mean, if any *)
  attempts : int;  (** attempts the recorded solve took *)
  crashes : int;  (** worker crashes the recorded solve absorbed *)
  provenance : provenance;
  schedule : (float array * float array) option;
      (** the solved [(end_times, quotas)] vectors, exact bits — the
          seed a warm chain rebuilds its previous schedule from *)
}

type t

type stats = {
  entries : int;
  s_hits : int;
  s_misses : int;
  s_stale : int;  (** lookups that found only a fallback entry *)
  s_inserts : int;
  s_upgrades : int;  (** fallback entries upgraded to authoritative *)
  s_evictions : int;  (** entries evicted to stay under [max_entries] *)
}

val create : ?max_entries:int -> fingerprint:string -> unit -> t
(** An empty cache pinned to a configuration [fingerprint]
    ({!Lepts_robust.Checkpoint.fingerprint} of the daemon parameters
    that change results — the power model, not [jobs]). [max_entries]
    (default: unbounded) caps the stored entries; raises
    [Invalid_argument] when [< 1]. *)

val fingerprint : t -> string
(** The configuration fingerprint the cache was created (or loaded)
    with — the one snapshots embed and {!load} checks. *)

val size : t -> int
(** Entries currently stored, whatever their provenance. *)

val max_entries : t -> int option
(** The size bound, if any. *)

val stats : t -> stats
(** Lookup/insert/eviction counters since creation (warm-loaded
    entries count in [entries] but not in [s_inserts]). *)

val hit_rate : t -> float
(** Hits over all lookups ([0.] before the first lookup). *)

val key : Request.t -> string
(** Content address of a request (see module docs). *)

val family_key : Request.t -> string
(** The content address with the ratio blinded: equal for requests that
    differ only in [ratio] — the warm-chain grouping key. *)

val find : ?wave:int -> t -> key:string -> [ `Hit of entry | `Stale of entry | `Miss ]
(** [`Hit] only for authoritative entries; [`Stale] reports a
    fallback-provenance entry the caller must not serve. A found entry
    is touched (its last-hit stamp set to [wave], default 0, and its
    second-chance bit set). Counted in
    [lepts_cache_{hits,misses,stale}_total]. *)

val store : ?wave:int -> t -> key:string -> entry -> unit
(** Insert or upgrade (see provenance rules above), touching the entry
    with [wave]. A full bounded cache evicts one entry first. *)

val save : t -> path:string -> unit
(** Atomic snapshot ([lepts-cache/2]): the size bound, then entries
    sorted by key with their eviction state, so equal caches produce
    byte-identical files. Counted in [lepts_cache_saves_total]. *)

val load :
  ?max_entries:int -> path:string -> fingerprint:string -> unit -> (t, string) result
(** Validate and load a snapshot. The error message names the failed
    check — magic, version, checksum or fingerprint — or the malformed
    body line. [max_entries] overrides the snapshot's recorded bound
    (absent, the snapshot's bound is adopted — so save→load→save is
    byte-identical); a snapshot holding more entries than the effective
    bound is truncated deterministically in eviction order, never
    refused. Counted in [lepts_cache_warm_loads_total] on success. *)
