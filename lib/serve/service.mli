(** The scheduling service: a supervised, admission-controlled queue of
    solve jobs in front of the resilient pipeline.

    Requests arrive as NDJSON lines ({!Request}), are admitted up to a
    high-water mark (the rest are shed — predictable degradation beats
    an unbounded queue), and are processed in fixed-size {e waves}:

    + routes are planned for the whole wave from the {!Breaker} state,
      in request order;
    + the wave's solves run on a {!Lepts_par.Pool} of [jobs] domains —
      each solve is a pure function of (request, route);
    + outcomes are folded back into the breaker in request order, one
      logical-clock tick per request.

    Because routing reads only pre-wave breaker state and folding is
    sequential, the report is {e bit-identical for every [jobs]
    value} — the property the CI determinism job diffs for.

    Supervision: a worker exception (the solve must never take the
    service down) is caught, counted, and the request retried up to
    [max_worker_crashes] times before it is failed and the service
    marked degraded. Solver-level failures are retried up to
    [max_retries] times with exponential backoff and deterministic
    per-request jitter. A drain request ([should_stop], typically
    {!Drain.requested}) is honoured at the next wave boundary; the
    unprocessed tail is reported as such, never silently dropped. *)

type config = {
  jobs : int;  (** worker domains per wave; >= 1 *)
  high_water : int;
      (** admission high-water mark: requests beyond the first
          [high_water] valid ones are shed; >= 1 *)
  wave : int;
      (** wave size — requests solved between breaker folds; >= 1.
          Part of the service semantics (routes are planned per wave),
          so it is {e not} derived from [jobs]. *)
  max_retries : int;  (** solver-failure retries per request; >= 0 *)
  backoff_base : float;
      (** base retry delay, seconds; doubled per retry, scaled by a
          deterministic per-request jitter in [[0.5, 1.5)]. [0]
          disables sleeping (tests, CI). *)
  max_worker_crashes : int;
      (** worker restarts granted per request before it is failed and
          the service marked degraded; >= 0 *)
  breaker : Breaker.config;
}

val default_config : config
(** [jobs = 1], [high_water = 64], [wave = 8], [max_retries = 1],
    [backoff_base = 0.], [max_worker_crashes = 2],
    {!Breaker.default_config}. *)

type status =
  | Done of { stage : string; mean_energy : float option }
      (** solved; [stage] is the winning pipeline stage, [mean_energy]
          the post-solve simulation mean when [rounds > 0] *)
  | Failed of string  (** all retries/restarts exhausted *)
  | Rejected of string  (** malformed NDJSON line (never admitted) *)
  | Shed  (** load-shed at admission (above the high-water mark) *)
  | Drained  (** admitted but unprocessed when a drain arrived *)

type outcome = {
  id : string;
      (** request id, or ["line-<n>"] for lines that did not parse *)
  status : status;
  attempts : int;  (** solve attempts made; 0 when never processed *)
  crashes : int;  (** worker crashes absorbed by this request *)
  routed_acs : bool;  (** whether the wave plan routed it to ACS *)
  degraded : bool;
      (** processed but not by ACS (fallback schedule or failure) *)
}

type report = {
  outcomes : outcome list;  (** one per input line, in input order *)
  admitted : int;
  processed : int;
  shed : int;
  rejected : int;
  drained : bool;  (** a drain interrupted processing *)
  degraded : bool;  (** some request exhausted its worker restarts *)
  transitions : (int * Breaker.state) list;
      (** the breaker's transition log, logical-clock stamped *)
}

val run :
  ?config:config ->
  ?power:Lepts_power.Model.t ->
  ?before_solve:(attempt:int -> Request.t -> unit) ->
  ?should_stop:(unit -> bool) ->
  lines:string list ->
  unit ->
  report
(** [run ~lines ()] serves one batch of NDJSON request lines.

    [power] defaults to {!Lepts_power.Model.ideal}. [before_solve] is
    the supervision test hook, called on the worker domain before every
    solve attempt (attempts count from 1 across retries and restarts);
    an exception it raises is handled exactly like a worker crash, so
    it must be domain-safe. [should_stop] (default: never) is polled
    at wave boundaries.

    Deterministic in (config minus [jobs], lines) — and bit-identical
    across [jobs] — provided the requests themselves solve
    deterministically (no [budget_ms] wall caps racing real time).

    Counters in {!Lepts_obs.Metrics.default}:
    [lepts_serve_requests_total], [..._rejected_total],
    [..._admitted_total], [..._shed_total], [..._processed_total],
    [..._retries_total], [..._worker_restarts_total],
    [..._degraded_total], [..._drained_total] — plus the breaker's
    [lepts_breaker_transitions_total{to}]. *)

val print_report : ?oc:out_channel -> report -> unit
(** NDJSON: one object per outcome in input order, then one
    [{"summary": ...}] trailer with the admission counts and breaker
    transition log. Contains no timing, so two runs over the same
    input are byte-identical whatever [jobs] was. *)

val pp_status : Format.formatter -> status -> unit
