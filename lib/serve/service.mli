(** The scheduling service: a supervised, admission-controlled queue of
    solve jobs in front of the resilient pipeline.

    Requests arrive through a {!Transport.source} — a fixed batch of
    NDJSON lines, a Unix-domain socket, a watched spool directory or a
    replayed arrival journal — and are partitioned into {!Shard}s by a
    content hash of the request id. Each shard has its own circuit
    breaker, logical clock and admission high-water mark (requests
    above it are shed — predictable degradation beats an unbounded
    queue), so a flood of failures from one client family degrades one
    shard while the others keep serving. Admitted requests are
    processed in fixed-size {e waves}:

    + each queued request's end-to-end deadline ([budget_ms], charged
      from its arrival stamp) is checked first: a request that expired
      while queued is shed with status {!Expired} — it is never
      dispatched, never solves and never observes the breaker;
    + routes are planned for the rest of the wave from each shard's
      {!Breaker} state, in request order; ACS-routed requests then
      consult the schedule {!Cache} (when one is attached) and replay
      an authoritative hit without solving;
    + content-identical solve slots (same {!Cache.key} and route) are
      {e coalesced}: one solve runs, and its result fans out to every
      waiter; near-identical requests (equal {!Cache.family_key} —
      same content except the ratio) in one wave are chained in ratio
      order on one worker so each solve warm-starts the next through
      the continuation path, with a cached family member contributing
      its stored schedule as the seed;
    + the remaining work runs on a {!Lepts_par.Pool} of [jobs]
      domains — each unit is a pure function of its (requests, routes);
    + outcomes are folded back into the shard breakers in request
      order, one shard-clock tick per dispatched request; a cache hit
      folds as a successful ACS observation, and fresh schedules are
      stored back with their provenance and exact solution vectors
      (never overwriting an authoritative entry with a degraded one).

    Because routing reads only pre-wave breaker state, cache traffic is
    confined to the sequential plan/fold phases, folding is sequential,
    and every time comparison uses the transport's recorded arrival
    stamps (never a wall clock read by the engine), the report is
    {e bit-identical for every [jobs] value} — and replaying a live
    run's arrival journal offline reproduces its report byte-for-byte.
    Both properties are what the CI determinism and socket-soak jobs
    diff for.

    Supervision: a worker exception (the solve must never take the
    service down) is caught, counted, and the request retried up to
    [max_worker_crashes] times before it is failed and the service
    marked degraded. Solver-level failures are retried up to
    [max_retries] times with exponential backoff and deterministic
    per-request jitter. A drain request ([should_stop], typically
    {!Drain.requested}, or the transport's drain flag) is honoured at
    the next poll; the unprocessed tail is reported as such, never
    silently dropped. *)

type config = {
  jobs : int;  (** worker domains per wave; >= 1 *)
  shards : int;
      (** request-queue partitions, each with its own breaker, clock
          and high-water mark; >= 1 *)
  high_water : int;
      (** per-shard admission high-water mark: valid requests hashing
          to a shard beyond its first [high_water] are shed; >= 1 *)
  wave : int;
      (** wave size — requests solved between breaker folds; >= 1.
          Part of the service semantics (routes are planned per wave),
          so it is {e not} derived from [jobs]. *)
  max_retries : int;  (** solver-failure retries per request; >= 0 *)
  backoff_base : float;
      (** base retry delay, seconds; doubled per retry, scaled by a
          deterministic per-request jitter in [[0.5, 1.5)]. [0]
          disables sleeping (tests, CI). *)
  max_worker_crashes : int;
      (** worker restarts granted per request before it is failed and
          the service marked degraded; >= 0 *)
  breaker : Breaker.config;
}

val default_config : config
(** [jobs = 1], [shards = 1], [high_water = 64], [wave = 8],
    [max_retries = 1], [backoff_base = 0.], [max_worker_crashes = 2],
    {!Breaker.default_config}. *)

type status =
  | Done of { stage : string; mean_energy : float option }
      (** solved; [stage] is the winning pipeline stage, [mean_energy]
          the post-solve simulation mean when [rounds > 0] *)
  | Failed of string  (** all retries/restarts exhausted *)
  | Rejected of string
      (** malformed NDJSON line, or a transport-level rejection
          (partial line at connection close, oversized line, read
          timeout) — never admitted *)
  | Shed  (** load-shed at admission (above the high-water mark) *)
  | Expired
      (** admitted, but its [budget_ms] deadline lapsed while queued —
          shed at dispatch, never solved *)
  | Drained  (** admitted but unprocessed when a drain arrived *)

type outcome = {
  id : string;
      (** request id, or ["line-<n>"] for lines that did not parse *)
  status : status;
  attempts : int;  (** solve attempts made; 0 when never processed *)
  crashes : int;  (** worker crashes absorbed by this request *)
  routed_acs : bool;  (** whether the wave plan routed it to ACS *)
  degraded : bool;
      (** processed but not by ACS (fallback schedule or failure) *)
}

type report = {
  outcomes : outcome list;  (** one per input line, in arrival order *)
  admitted : int;
  processed : int;
  shed : int;
  rejected : int;
  expired : int;  (** deadline lapsed in queue — shed at dispatch *)
  coalesced : int;
      (** requests served by a content-identical in-flight solve *)
  drained : bool;  (** a drain interrupted processing *)
  degraded : bool;  (** some request exhausted its worker restarts *)
  shards : Shard.stat list;
      (** per-shard admission counters and breaker transition logs, in
          shard order *)
}

type progress = {
  p_wave : int;  (** waves completed so far (counts from 1) *)
  p_processed : int;  (** requests folded so far *)
  p_backlog : int;  (** admitted requests not yet processed *)
  p_expired : int;  (** deadline-expired requests shed so far *)
  p_coalesced : int;  (** coalesced requests served so far *)
  p_shards : (int * Breaker.state * int) list;
      (** per shard: (index, breaker state, backlog) *)
}

val run_source :
  ?config:config ->
  ?power:Lepts_power.Model.t ->
  ?cache:Cache.t ->
  ?journal:Transport.Journal.t ->
  ?before_solve:(attempt:int -> Request.t -> unit) ->
  ?after_wave:(progress -> unit) ->
  ?should_stop:(unit -> bool) ->
  source:Transport.source ->
  unit ->
  report
(** [run_source ~source ()] serves requests from a transport source
    until it closes (or a drain strikes), polling it between waves.

    [power] defaults to {!Lepts_power.Model.ideal}. [cache] (default:
    none) attaches a schedule cache: ACS-routed requests whose content
    key holds an authoritative entry are served from it without
    solving, and fresh schedules are stored back with their provenance
    and exact solution vectors. The caller is responsible for the cache
    fingerprint matching [power] — {!Daemon} pins it. [journal]
    (default: none) records every batch the engine acted on, exactly as
    polled, so {!Transport.replay} reproduces the run's wave boundaries
    and arrival stamps byte-identically. [before_solve] is the
    supervision test hook, called on the worker domain before every
    solve attempt (attempts count from 1 across retries and restarts);
    an exception it raises is handled exactly like a worker crash, so
    it must be domain-safe. It is never called for expired, cache-hit
    or coalesced-follower requests. [after_wave] (default: none) is
    called on the coordinating domain after each wave's fold with a
    {!progress} snapshot — the daemon's periodic-snapshot and
    health-report hook; it must not mutate the cache. [should_stop]
    (default: never) is polled once per event-loop iteration, with the
    same effect as the transport's drain flag.

    Deterministic in (config minus [jobs], the polled batch sequence,
    cache contents) — and bit-identical across [jobs] — provided the
    requests themselves solve deterministically (no [budget_ms] wall
    caps racing real time inside the solver). A cache warmed by a
    previous identical run changes which requests are solved but not
    the report: hits replay the recorded outcome and fold the same
    breaker signal the original solve did.

    Counters in {!Lepts_obs.Metrics.default}:
    [lepts_serve_requests_total], [..._rejected_total],
    [..._admitted_total], [..._shed_total], [..._processed_total],
    [..._retries_total], [..._worker_restarts_total],
    [..._degraded_total], [..._drained_total], [..._expired_total],
    [..._coalesced_total]; histograms
    [lepts_serve_admission_to_dispatch_ms] and
    [lepts_serve_dispatch_to_done_ms] — plus the breaker's
    [lepts_breaker_transitions_total{to}] and the cache's
    [lepts_cache_*] family. *)

val run :
  ?config:config ->
  ?power:Lepts_power.Model.t ->
  ?cache:Cache.t ->
  ?before_solve:(attempt:int -> Request.t -> unit) ->
  ?after_wave:(progress -> unit) ->
  ?should_stop:(unit -> bool) ->
  lines:string list ->
  unit ->
  report
(** [run ~lines ()] serves one fixed batch of NDJSON request lines:
    {!run_source} over {!Transport.of_lines}. All lines arrive in one
    batch stamped at time zero, so no deadline can expire — batch-mode
    reports are unchanged from previous releases. Kept as the
    replay-friendly entry point for tests and one-shot CLI batches;
    long-running callers should prefer {!run_source} with a socket or
    spool transport. *)

val print_report : ?oc:out_channel -> report -> unit
(** NDJSON: one object per outcome in arrival order, then one
    [{"summary": ...}] trailer with the admission counts (including
    [expired]) and per-shard breaker transition logs. Contains no
    timing, no cache traffic counts and no coalescing counts (a warm
    restart serves duplicates from the cache instead of coalescing
    them, and the trailer must stay byte-identical across that
    difference), so two runs over the same arrivals are byte-identical
    whatever [jobs] was — and whether the cache was cold or warm. *)

val pp_status : Format.formatter -> status -> unit
(** Human-readable status — the winning stage and simulated mean for
    [Done], the reason for [Failed] — for logs and test messages. *)
