(** The scheduling service: a supervised, admission-controlled queue of
    solve jobs in front of the resilient pipeline.

    Requests arrive as NDJSON lines ({!Request}) and are partitioned
    into {!Shard}s by a content hash of the request id. Each shard has
    its own circuit breaker, logical clock and admission high-water
    mark (requests above it are shed — predictable degradation beats an
    unbounded queue), so a flood of failures from one client family
    degrades one shard while the others keep serving. Admitted requests
    are processed in fixed-size {e waves}:

    + routes are planned for the whole wave from each shard's
      {!Breaker} state, in request order; ACS-routed requests then
      consult the schedule {!Cache} (when one is attached) and replay
      an authoritative hit without solving;
    + the remaining solves run on a {!Lepts_par.Pool} of [jobs]
      domains — each solve is a pure function of (request, route);
    + outcomes are folded back into the shard breakers in request
      order, one shard-clock tick per request; a cache hit folds as a
      successful ACS observation, and fresh schedules are stored with
      their provenance (never overwriting an authoritative entry with
      a degraded one).

    Because routing reads only pre-wave breaker state, cache traffic is
    confined to the sequential plan/fold phases, and folding is
    sequential, the report is {e bit-identical for every [jobs]
    value} — and a warm-started daemon replaying cached schedules
    produces the byte-identical report an uninterrupted run would.
    Both properties are what the CI determinism and warm-restart jobs
    diff for.

    Supervision: a worker exception (the solve must never take the
    service down) is caught, counted, and the request retried up to
    [max_worker_crashes] times before it is failed and the service
    marked degraded. Solver-level failures are retried up to
    [max_retries] times with exponential backoff and deterministic
    per-request jitter. A drain request ([should_stop], typically
    {!Drain.requested}) is honoured at the next wave boundary; the
    unprocessed tail is reported as such, never silently dropped. *)

type config = {
  jobs : int;  (** worker domains per wave; >= 1 *)
  shards : int;
      (** request-queue partitions, each with its own breaker, clock
          and high-water mark; >= 1 *)
  high_water : int;
      (** per-shard admission high-water mark: valid requests hashing
          to a shard beyond its first [high_water] are shed; >= 1 *)
  wave : int;
      (** wave size — requests solved between breaker folds; >= 1.
          Part of the service semantics (routes are planned per wave),
          so it is {e not} derived from [jobs]. *)
  max_retries : int;  (** solver-failure retries per request; >= 0 *)
  backoff_base : float;
      (** base retry delay, seconds; doubled per retry, scaled by a
          deterministic per-request jitter in [[0.5, 1.5)]. [0]
          disables sleeping (tests, CI). *)
  max_worker_crashes : int;
      (** worker restarts granted per request before it is failed and
          the service marked degraded; >= 0 *)
  breaker : Breaker.config;
}

val default_config : config
(** [jobs = 1], [shards = 1], [high_water = 64], [wave = 8],
    [max_retries = 1], [backoff_base = 0.], [max_worker_crashes = 2],
    {!Breaker.default_config}. *)

type status =
  | Done of { stage : string; mean_energy : float option }
      (** solved; [stage] is the winning pipeline stage, [mean_energy]
          the post-solve simulation mean when [rounds > 0] *)
  | Failed of string  (** all retries/restarts exhausted *)
  | Rejected of string  (** malformed NDJSON line (never admitted) *)
  | Shed  (** load-shed at admission (above the high-water mark) *)
  | Drained  (** admitted but unprocessed when a drain arrived *)

type outcome = {
  id : string;
      (** request id, or ["line-<n>"] for lines that did not parse *)
  status : status;
  attempts : int;  (** solve attempts made; 0 when never processed *)
  crashes : int;  (** worker crashes absorbed by this request *)
  routed_acs : bool;  (** whether the wave plan routed it to ACS *)
  degraded : bool;
      (** processed but not by ACS (fallback schedule or failure) *)
}

type report = {
  outcomes : outcome list;  (** one per input line, in input order *)
  admitted : int;
  processed : int;
  shed : int;
  rejected : int;
  drained : bool;  (** a drain interrupted processing *)
  degraded : bool;  (** some request exhausted its worker restarts *)
  shards : Shard.stat list;
      (** per-shard admission counters and breaker transition logs, in
          shard order *)
}

type progress = {
  p_wave : int;  (** waves completed so far (counts from 1) *)
  p_processed : int;  (** requests folded so far *)
  p_backlog : int;  (** admitted requests not yet processed *)
  p_shards : (int * Breaker.state * int) list;
      (** per shard: (index, breaker state, backlog) *)
}

val run :
  ?config:config ->
  ?power:Lepts_power.Model.t ->
  ?cache:Cache.t ->
  ?before_solve:(attempt:int -> Request.t -> unit) ->
  ?after_wave:(progress -> unit) ->
  ?should_stop:(unit -> bool) ->
  lines:string list ->
  unit ->
  report
(** [run ~lines ()] serves one batch of NDJSON request lines.

    [power] defaults to {!Lepts_power.Model.ideal}. [cache] (default:
    none) attaches a schedule cache: ACS-routed requests whose content
    key holds an authoritative entry are served from it without
    solving, and fresh schedules are stored back with their provenance.
    The caller is responsible for the cache fingerprint matching
    [power] — {!Daemon} pins it. [before_solve] is the supervision test
    hook, called on the worker domain before every solve attempt
    (attempts count from 1 across retries and restarts); an exception
    it raises is handled exactly like a worker crash, so it must be
    domain-safe. [after_wave] (default: none) is called on the
    coordinating domain after each wave's fold with a {!progress}
    snapshot — the daemon's periodic-snapshot and health-report hook;
    it must not mutate the cache. [should_stop] (default: never) is
    polled at wave boundaries.

    Deterministic in (config minus [jobs], lines, cache contents) —
    and bit-identical across [jobs] — provided the requests themselves
    solve deterministically (no [budget_ms] wall caps racing real
    time). A cache warmed by a previous identical run changes which
    requests are solved but not the report: hits replay the recorded
    outcome and fold the same breaker signal the original solve did.

    Counters in {!Lepts_obs.Metrics.default}:
    [lepts_serve_requests_total], [..._rejected_total],
    [..._admitted_total], [..._shed_total], [..._processed_total],
    [..._retries_total], [..._worker_restarts_total],
    [..._degraded_total], [..._drained_total] — plus the breaker's
    [lepts_breaker_transitions_total{to}] and the cache's
    [lepts_cache_*] family. *)

val print_report : ?oc:out_channel -> report -> unit
(** NDJSON: one object per outcome in input order, then one
    [{"summary": ...}] trailer with the admission counts and per-shard
    breaker transition logs. Contains no timing and no cache traffic
    counts, so two runs over the same input are byte-identical whatever
    [jobs] was — and whether the cache was cold or warm. *)

val pp_status : Format.formatter -> status -> unit
(** Human-readable status — the winning stage and simulated mean for
    [Done], the reason for [Failed] — for logs and test messages. *)
