let log_src = Logs.Src.create "lepts.serve.drain" ~doc:"graceful drain flag"

module Log = (val Logs.src_log log_src : Logs.LOG)

let flag = Atomic.make false
let installed = ref false

let requested () = Atomic.get flag
let request () = Atomic.set flag true
let reset () = Atomic.set flag false

let handle signal =
  (* Async-signal-safe: set the flag, restore default disposition so a
     second signal kills the process outright. Logging here would not
     be safe; the engines log when they notice the flag. *)
  Atomic.set flag true;
  Sys.set_signal signal Sys.Signal_default

let install () =
  if not !installed then begin
    installed := true;
    List.iter
      (fun s ->
        try Sys.set_signal s (Sys.Signal_handle handle)
        with Invalid_argument _ | Sys_error _ -> ())
      [ Sys.sigterm; Sys.sigint ];
    Log.debug (fun f -> f "drain handlers installed (SIGTERM, SIGINT)")
  end
