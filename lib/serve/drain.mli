(** Graceful-drain flag: the bridge between POSIX signals and the
    cooperative [should_stop] hooks of the long-running engines
    ({!Lepts_robust.Checkpoint.map_indices}, {!Service.run}).

    A signal handler may only do async-signal-safe work, so the handler
    installed here just sets an atomic flag; the engines poll it at
    their chunk/wave boundaries, save a checkpoint, and unwind with a
    distinct exit status. Pressing Ctrl-C therefore loses at most one
    chunk of work — and none of the work already on disk. *)

val install : unit -> unit
(** Route [SIGTERM] and [SIGINT] to the drain flag (idempotent). The
    second signal falls back to the default behaviour, so a stuck run
    can still be killed the ordinary way. *)

val requested : unit -> bool
(** [true] once a drain has been requested — by a signal or by
    {!request}. Safe from any domain. *)

val request : unit -> unit
(** Set the flag programmatically (tests, embedding). *)

val reset : unit -> unit
(** Clear the flag (tests). Does not uninstall handlers. *)
