module Pool = Lepts_par.Pool
module Rng = Lepts_prng.Xoshiro256
module Model = Lepts_power.Model
module Plan = Lepts_preempt.Plan
module Runner = Lepts_sim.Runner
module Robust_solver = Lepts_robust.Robust_solver
module Metrics = Lepts_obs.Metrics
module Span = Lepts_obs.Span

let log_src = Logs.Src.create "lepts.serve" ~doc:"scheduling service engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  jobs : int;
  shards : int;
  high_water : int;
  wave : int;
  max_retries : int;
  backoff_base : float;
  max_worker_crashes : int;
  breaker : Breaker.config;
}

let default_config =
  { jobs = 1; shards = 1; high_water = 64; wave = 8; max_retries = 1;
    backoff_base = 0.; max_worker_crashes = 2;
    breaker = Breaker.default_config }

type status =
  | Done of { stage : string; mean_energy : float option }
  | Failed of string
  | Rejected of string
  | Shed
  | Drained

type outcome = {
  id : string;
  status : status;
  attempts : int;
  crashes : int;
  routed_acs : bool;
  degraded : bool;
}

type report = {
  outcomes : outcome list;
  admitted : int;
  processed : int;
  shed : int;
  rejected : int;
  drained : bool;
  degraded : bool;
  shards : Shard.stat list;
}

type progress = {
  p_wave : int;
  p_processed : int;
  p_backlog : int;
  p_shards : (int * Breaker.state * int) list;
}

(* Service counters (DESIGN.md §9). *)
let m_requests =
  Metrics.counter ~help:"request lines received" Metrics.default
    "lepts_serve_requests_total"

let m_rejected =
  Metrics.counter ~help:"request lines rejected by the parser"
    Metrics.default "lepts_serve_rejected_total"

let m_admitted =
  Metrics.counter ~help:"requests admitted below the high-water mark"
    Metrics.default "lepts_serve_admitted_total"

let m_shed =
  Metrics.counter ~help:"requests load-shed at admission" Metrics.default
    "lepts_serve_shed_total"

let m_processed =
  Metrics.counter ~help:"requests processed to completion" Metrics.default
    "lepts_serve_processed_total"

let m_retries =
  Metrics.counter ~help:"solver-failure retries" Metrics.default
    "lepts_serve_retries_total"

let m_restarts =
  Metrics.counter ~help:"worker restarts after a crash" Metrics.default
    "lepts_serve_worker_restarts_total"

let m_degraded =
  Metrics.counter ~help:"requests completed by a stage below ACS"
    Metrics.default "lepts_serve_degraded_total"

let m_drained =
  Metrics.counter ~help:"admitted requests left unprocessed by a drain"
    Metrics.default "lepts_serve_drained_total"

(* Per-request execution result, before the breaker fold. *)
type exec = {
  e_status : status;
  e_attempts : int;
  e_crashes : int;
  e_acs_ok : bool;  (* the ACS stage itself produced the schedule *)
  e_degraded : bool;
  e_crashed_out : bool;  (* exhausted its worker restarts *)
}

let backoff ~config ~attempt (req : Request.t) =
  if config.backoff_base > 0. then begin
    (* Exponential backoff with deterministic jitter: the jitter stream
       is keyed off the request id and attempt number, so two runs of
       the same batch sleep identically — and distinct requests never
       thunder in lockstep. *)
    let rng = Rng.split_key (Rng.create ~seed:(Hashtbl.hash req.Request.id)) ~key:attempt in
    let scale = 0.5 +. Rng.float rng in
    let delay =
      config.backoff_base *. (2. ** float_of_int (attempt - 1)) *. scale
    in
    Unix.sleepf (Float.min delay 5.)
  end

let solve_once ~power ~before_solve ~skip_acs ~attempt (req : Request.t) =
  Option.iter (fun f -> f ~attempt req) before_solve;
  let workload =
    if req.Request.tasks = 0 then
      Ok (Lepts_workloads.Cnc.task_set ~power ~ratio:req.Request.ratio ())
    else
      let rng = Rng.create ~seed:req.Request.seed in
      Lepts_workloads.Random_gen.generate
        (Lepts_workloads.Random_gen.default_config ~n_tasks:req.Request.tasks
           ~ratio:req.Request.ratio)
        ~power ~rng
  in
  match workload with
  | Error msg -> Error ("generation failed: " ^ msg)
  | Ok ts -> (
    let plan = Plan.expand ts in
    let wall =
      Option.map (fun ms -> float_of_int ms /. 1000.) req.Request.budget_ms
    in
    let stage_budget ?max_outer () =
      { Robust_solver.default_budget with
        max_outer =
          Option.value max_outer
            ~default:Robust_solver.default_budget.Robust_solver.max_outer;
        wall_budget =
          (match wall with
          | Some _ -> wall
          | None -> Robust_solver.default_budget.Robust_solver.wall_budget) }
    in
    let solver_config =
      { Robust_solver.acs = stage_budget ?max_outer:req.Request.acs_max_outer ();
        wcs = stage_budget () }
    in
    match Robust_solver.solve ~config:solver_config ~skip_acs ~plan ~power () with
    | Error e ->
      Error (Format.asprintf "%a" Lepts_core.Solver.pp_error e)
    | Ok (schedule, diagnostics) ->
      let mean_energy =
        if req.Request.rounds = 0 then None
        else
          let rng = Rng.create ~seed:req.Request.seed in
          let summary =
            Runner.simulate ~rounds:req.Request.rounds ~schedule
              ~policy:Lepts_dvs.Policy.Greedy ~rng ()
          in
          Some summary.Runner.mean_energy
      in
      Ok (diagnostics, mean_energy))

let process ~config ~power ~before_solve ~skip_acs (req : Request.t) =
  Span.with_ ~name:("serve:" ^ req.Request.id) @@ fun () ->
  let rec go ~attempt ~crashes =
    let result =
      try `R (solve_once ~power ~before_solve ~skip_acs ~attempt req)
      with e -> `Crash (Printexc.to_string e)
    in
    match result with
    | `Crash msg ->
      Log.warn (fun f ->
          f "%s: worker crashed on attempt %d: %s" req.Request.id attempt msg);
      if crashes >= config.max_worker_crashes then
        { e_status = Failed ("worker crashed: " ^ msg); e_attempts = attempt;
          e_crashes = crashes + 1; e_acs_ok = false; e_degraded = true;
          e_crashed_out = true }
      else begin
        Metrics.incr m_restarts;
        go ~attempt:(attempt + 1) ~crashes:(crashes + 1)
      end
    | `R (Error msg) ->
      if attempt <= config.max_retries then begin
        Metrics.incr m_retries;
        Log.info (fun f ->
            f "%s: attempt %d failed (%s), retrying" req.Request.id attempt msg);
        backoff ~config ~attempt req;
        go ~attempt:(attempt + 1) ~crashes
      end
      else
        { e_status = Failed msg; e_attempts = attempt; e_crashes = crashes;
          e_acs_ok = false; e_degraded = true; e_crashed_out = false }
    | `R (Ok (diagnostics, mean_energy)) ->
      let chosen = diagnostics.Robust_solver.chosen in
      let degraded = chosen <> Robust_solver.Acs in
      { e_status =
          Done { stage = Robust_solver.stage_name chosen; mean_energy };
        e_attempts = attempt; e_crashes = crashes;
        e_acs_ok = (chosen = Robust_solver.Acs); e_degraded = degraded;
        e_crashed_out = false }
  in
  go ~attempt:1 ~crashes:0

let no_exec = (* placeholder for requests a drain left unprocessed *)
  { e_status = Drained; e_attempts = 0; e_crashes = 0; e_acs_ok = false;
    e_degraded = false; e_crashed_out = false }

(* A wave slot's plan: run the solver (with or without ACS), or replay
   a cached authoritative schedule without solving at all. *)
type slot_plan = Solve of bool | Cached of Cache.entry

let exec_of_entry (e : Cache.entry) =
  (* Only authoritative entries are ever served, so a cache hit is by
     construction a non-degraded ACS result. *)
  { e_status = Done { stage = e.Cache.stage; mean_energy = e.Cache.mean_energy };
    e_attempts = e.Cache.attempts; e_crashes = e.Cache.crashes;
    e_acs_ok = true; e_degraded = false; e_crashed_out = false }

let run ?(config = default_config) ?(power = Model.ideal ()) ?cache
    ?before_solve ?after_wave ?(should_stop = fun () -> false) ~lines () =
  if config.jobs < 1 then invalid_arg "Service.run: jobs must be >= 1";
  if config.shards < 1 then invalid_arg "Service.run: shards must be >= 1";
  if config.high_water < 1 then
    invalid_arg "Service.run: high_water must be >= 1";
  if config.wave < 1 then invalid_arg "Service.run: wave must be >= 1";
  if config.max_retries < 0 then
    invalid_arg "Service.run: max_retries must be >= 0";
  if config.max_worker_crashes < 0 then
    invalid_arg "Service.run: max_worker_crashes must be >= 0";
  Span.with_ ~name:"serve:batch" @@ fun () ->
  (* One long-lived pool serves every wave of this run (and, being the
     process-wide shared pool for this worker count, every later run
     too): workers spawn once, not once per wave, so short waves no
     longer pay a domain spawn/join round-trip each. *)
  let pool = Pool.shared ~jobs:config.jobs in
  (* Admission: parse every line; assign each valid request to its shard
     by content hash of the id; admit until that shard's high-water
     mark, shed the rest. One pass, in input order — deterministic. *)
  let parsed =
    List.mapi
      (fun i line ->
        Metrics.incr m_requests;
        match Request.of_json line with
        | Ok req -> `Request (i, req)
        | Error msg ->
          Metrics.incr m_rejected;
          Log.info (fun f -> f "line %d rejected: %s" (i + 1) msg);
          `Rejected (i, msg))
      lines
  in
  let valid =
    List.filter_map
      (function `Request (i, r) -> Some (i, r) | `Rejected _ -> None)
      parsed
  in
  let shards =
    Array.init config.shards (fun index ->
        Shard.create ~config:config.breaker ~index)
  in
  let admitted_rev = ref [] in
  let shed_count = ref 0 in
  List.iter
    (fun (line_idx, (req : Request.t)) ->
      let s = Shard.of_id ~shards:config.shards req.Request.id in
      let sh = shards.(s) in
      if Shard.backlog sh < config.high_water then begin
        sh.Shard.admitted <- sh.Shard.admitted + 1;
        admitted_rev := (line_idx, req, s) :: !admitted_rev
      end
      else begin
        sh.Shard.shed <- sh.Shard.shed + 1;
        incr shed_count
      end)
    valid;
  let admitted = Array.of_list (List.rev !admitted_rev) in
  let n = Array.length admitted in
  Metrics.incr ~by:n m_admitted;
  Metrics.incr ~by:!shed_count m_shed;
  if !shed_count > 0 then
    Log.warn (fun f ->
        f "load shedding: %d request(s) above a shard high-water mark (%d)"
          !shed_count config.high_water);
  (* Wave loop. Each shard has its own breaker and logical clock; the
     clock ticks once per request folded into the shard. Routes for a
     wave are planned sequentially before it runs, from the breaker
     state the previous fold left behind, and the cache is consulted
     only for ACS-routed requests — so a warm start serves exactly the
     requests an uninterrupted run solved at ACS, and the breaker state
     sequence (hence the report) is identical whatever [jobs] is. *)
  let results = Array.make n no_exec in
  let routed = Array.make n false in
  let processed = ref 0 in
  let drained = ref false in
  let wave_no = ref 0 in
  let i = ref 0 in
  while !i < n && not !drained do
    if should_stop () then begin
      drained := true;
      Log.warn (fun f ->
          f "drain requested: %d request(s) left unprocessed" (n - !i))
    end
    else begin
      let w = Int.min config.wave (n - !i) in
      incr wave_no;
      (* Plan phase: sequential, in request order. [plan_route] may
         consume a half-open probe slot, so it runs exactly once per
         request; cache lookups happen here, on the coordinating
         domain, only when the plan routed the request to ACS. *)
      let plans =
        Array.init w (fun k ->
            let _, req, s = admitted.(!i + k) in
            let sh = shards.(s) in
            let route =
              Breaker.plan_route sh.Shard.breaker ~now:sh.Shard.clock
            in
            if not route then Solve false
            else
              match cache with
              | None -> Solve true
              | Some c -> (
                match Cache.find c ~key:(Cache.key req) with
                | `Hit e -> Cached e
                | `Stale _ | `Miss -> Solve true))
      in
      (* Solve phase: only the slots the plan did not satisfy from the
         cache go to the pool. *)
      let to_solve =
        Array.of_list
          (List.filter_map
             (fun k ->
               match plans.(k) with Solve _ -> Some k | Cached _ -> None)
             (List.init w Fun.id))
      in
      let solved =
        if Array.length to_solve = 0 then [||]
        else
          fst
            (Pool.submit pool ~n:(Array.length to_solve)
               ~f:(fun j ->
                 let k = to_solve.(j) in
                 let _, req, _ = admitted.(!i + k) in
                 let skip_acs =
                   match plans.(k) with
                   | Solve route -> not route
                   | Cached _ -> assert false
                 in
                 process ~config ~power ~before_solve ~skip_acs req))
      in
      let solved_of = Hashtbl.create 16 in
      Array.iteri (fun j k -> Hashtbl.replace solved_of k j) to_solve;
      (* Fold phase: sequential, in request order. Cache hits fold as
         successful ACS observations — the signal the uninterrupted run
         folded when it solved this content at ACS — and fresh [Done]
         results are stored with their provenance. *)
      for k = 0 to w - 1 do
        let _, req, s = admitted.(!i + k) in
        let sh = shards.(s) in
        sh.Shard.clock <- sh.Shard.clock + 1;
        sh.Shard.processed <- sh.Shard.processed + 1;
        let e, route =
          match plans.(k) with
          | Cached entry -> (exec_of_entry entry, true)
          | Solve route ->
            let e = solved.(Hashtbl.find solved_of k) in
            (match (cache, e.e_status) with
            | Some c, Done { stage; mean_energy } ->
              Cache.store c ~key:(Cache.key req)
                { Cache.stage; mean_energy; attempts = e.e_attempts;
                  crashes = e.e_crashes;
                  provenance =
                    (if e.e_acs_ok then Cache.Authoritative
                     else Cache.Fallback) }
            | _ -> ());
            (e, route)
        in
        Breaker.observe sh.Shard.breaker ~now:sh.Shard.clock
          ~routed_acs:route ~ok:e.e_acs_ok;
        if e.e_degraded && not e.e_crashed_out then Metrics.incr m_degraded;
        results.(!i + k) <- e;
        routed.(!i + k) <- route;
        incr processed
      done;
      i := !i + w;
      Option.iter
        (fun f ->
          f
            { p_wave = !wave_no; p_processed = !processed;
              p_backlog = n - !i;
              p_shards =
                Array.to_list
                  (Array.map
                     (fun sh ->
                       ( sh.Shard.index, Breaker.state sh.Shard.breaker,
                         Shard.backlog sh ))
                     shards) })
        after_wave
    end
  done;
  Metrics.incr ~by:!processed m_processed;
  Metrics.incr ~by:(n - !processed) m_drained;
  (* Reassemble one outcome per input line, in input order. *)
  let admitted_index = Hashtbl.create 16 in
  Array.iteri
    (fun slot (line_idx, _, _) -> Hashtbl.replace admitted_index line_idx slot)
    admitted;
  let outcomes =
    List.map
      (function
        | `Rejected (i, msg) ->
          { id = Printf.sprintf "line-%d" (i + 1); status = Rejected msg;
            attempts = 0; crashes = 0; routed_acs = false; degraded = false }
        | `Request (i, (req : Request.t)) -> (
          match Hashtbl.find_opt admitted_index i with
          | None ->
            { id = req.Request.id; status = Shed; attempts = 0; crashes = 0;
              routed_acs = false; degraded = false }
          | Some slot ->
            let e = results.(slot) in
            { id = req.Request.id; status = e.e_status;
              attempts = e.e_attempts; crashes = e.e_crashes;
              routed_acs = routed.(slot); degraded = e.e_degraded }))
      parsed
  in
  let degraded_service =
    Array.exists (fun e -> e.e_crashed_out) results
  in
  { outcomes; admitted = n; processed = !processed; shed = !shed_count;
    rejected = List.length parsed - List.length valid;
    drained = !drained; degraded = degraded_service;
    shards = Array.to_list (Array.map Shard.stat shards) }

let pp_status ppf = function
  | Done { stage; mean_energy } ->
    Format.fprintf ppf "done (%s%t)" stage (fun ppf ->
        Option.iter (fun e -> Format.fprintf ppf ", mean %.6g" e) mean_energy)
  | Failed msg -> Format.fprintf ppf "failed: %s" msg
  | Rejected msg -> Format.fprintf ppf "rejected: %s" msg
  | Shed -> Format.pp_print_string ppf "shed"
  | Drained -> Format.pp_print_string ppf "drained"

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let outcome_json (o : outcome) =
  let b = Buffer.create 96 in
  Buffer.add_string b (Printf.sprintf "{\"id\":\"%s\"" (json_escape o.id));
  (match o.status with
  | Done { stage; mean_energy } ->
    Buffer.add_string b (Printf.sprintf ",\"status\":\"done\",\"stage\":\"%s\"" stage);
    Option.iter
      (fun e -> Buffer.add_string b (Printf.sprintf ",\"mean_energy\":%.12g" e))
      mean_energy
  | Failed msg ->
    Buffer.add_string b
      (Printf.sprintf ",\"status\":\"failed\",\"reason\":\"%s\"" (json_escape msg))
  | Rejected msg ->
    Buffer.add_string b
      (Printf.sprintf ",\"status\":\"rejected\",\"reason\":\"%s\"" (json_escape msg))
  | Shed -> Buffer.add_string b ",\"status\":\"shed\""
  | Drained -> Buffer.add_string b ",\"status\":\"drained\"");
  (match o.status with
  | Done _ | Failed _ ->
    Buffer.add_string b
      (Printf.sprintf ",\"route\":\"%s\",\"attempts\":%d,\"crashes\":%d"
         (if o.routed_acs then "acs" else "fallback")
         o.attempts o.crashes);
    if o.degraded then Buffer.add_string b ",\"degraded\":true"
  | Rejected _ | Shed | Drained -> ());
  Buffer.add_char b '}';
  Buffer.contents b

let shard_json (s : Shard.stat) =
  let transitions =
    String.concat ","
      (List.map
         (fun (t, st) -> Printf.sprintf "[%d,\"%s\"]" t (Breaker.state_name st))
         s.Shard.transitions)
  in
  Printf.sprintf
    "{\"shard\":%d,\"admitted\":%d,\"shed\":%d,\"processed\":%d,\
     \"breaker\":[%s]}"
    s.Shard.shard s.Shard.s_admitted s.Shard.s_shed s.Shard.s_processed
    transitions

let print_report ?(oc = stdout) r =
  List.iter (fun o -> output_string oc (outcome_json o ^ "\n")) r.outcomes;
  let shards = String.concat "," (List.map shard_json r.shards) in
  output_string oc
    (Printf.sprintf
       "{\"summary\":{\"requests\":%d,\"admitted\":%d,\"processed\":%d,\
        \"shed\":%d,\"rejected\":%d,\"drained\":%b,\"degraded\":%b,\
        \"shards\":[%s]}}\n"
       (List.length r.outcomes) r.admitted r.processed r.shed r.rejected
       r.drained r.degraded shards);
  flush oc
