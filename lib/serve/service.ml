module Pool = Lepts_par.Pool
module Rng = Lepts_prng.Xoshiro256
module Model = Lepts_power.Model
module Plan = Lepts_preempt.Plan
module Runner = Lepts_sim.Runner
module Robust_solver = Lepts_robust.Robust_solver
module Metrics = Lepts_obs.Metrics
module Span = Lepts_obs.Span

let log_src = Logs.Src.create "lepts.serve" ~doc:"scheduling service engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  jobs : int;
  high_water : int;
  wave : int;
  max_retries : int;
  backoff_base : float;
  max_worker_crashes : int;
  breaker : Breaker.config;
}

let default_config =
  { jobs = 1; high_water = 64; wave = 8; max_retries = 1; backoff_base = 0.;
    max_worker_crashes = 2; breaker = Breaker.default_config }

type status =
  | Done of { stage : string; mean_energy : float option }
  | Failed of string
  | Rejected of string
  | Shed
  | Drained

type outcome = {
  id : string;
  status : status;
  attempts : int;
  crashes : int;
  routed_acs : bool;
  degraded : bool;
}

type report = {
  outcomes : outcome list;
  admitted : int;
  processed : int;
  shed : int;
  rejected : int;
  drained : bool;
  degraded : bool;
  transitions : (int * Breaker.state) list;
}

(* Service counters (DESIGN.md §9). *)
let m_requests =
  Metrics.counter ~help:"request lines received" Metrics.default
    "lepts_serve_requests_total"

let m_rejected =
  Metrics.counter ~help:"request lines rejected by the parser"
    Metrics.default "lepts_serve_rejected_total"

let m_admitted =
  Metrics.counter ~help:"requests admitted below the high-water mark"
    Metrics.default "lepts_serve_admitted_total"

let m_shed =
  Metrics.counter ~help:"requests load-shed at admission" Metrics.default
    "lepts_serve_shed_total"

let m_processed =
  Metrics.counter ~help:"requests processed to completion" Metrics.default
    "lepts_serve_processed_total"

let m_retries =
  Metrics.counter ~help:"solver-failure retries" Metrics.default
    "lepts_serve_retries_total"

let m_restarts =
  Metrics.counter ~help:"worker restarts after a crash" Metrics.default
    "lepts_serve_worker_restarts_total"

let m_degraded =
  Metrics.counter ~help:"requests completed by a stage below ACS"
    Metrics.default "lepts_serve_degraded_total"

let m_drained =
  Metrics.counter ~help:"admitted requests left unprocessed by a drain"
    Metrics.default "lepts_serve_drained_total"

(* Per-request execution result, before the breaker fold. *)
type exec = {
  e_status : status;
  e_attempts : int;
  e_crashes : int;
  e_acs_ok : bool;  (* the ACS stage itself produced the schedule *)
  e_degraded : bool;
  e_crashed_out : bool;  (* exhausted its worker restarts *)
}

let backoff ~config ~attempt (req : Request.t) =
  if config.backoff_base > 0. then begin
    (* Exponential backoff with deterministic jitter: the jitter stream
       is keyed off the request id and attempt number, so two runs of
       the same batch sleep identically — and distinct requests never
       thunder in lockstep. *)
    let rng = Rng.split_key (Rng.create ~seed:(Hashtbl.hash req.Request.id)) ~key:attempt in
    let scale = 0.5 +. Rng.float rng in
    let delay =
      config.backoff_base *. (2. ** float_of_int (attempt - 1)) *. scale
    in
    Unix.sleepf (Float.min delay 5.)
  end

let solve_once ~power ~before_solve ~skip_acs ~attempt (req : Request.t) =
  Option.iter (fun f -> f ~attempt req) before_solve;
  let workload =
    if req.Request.tasks = 0 then
      Ok (Lepts_workloads.Cnc.task_set ~power ~ratio:req.Request.ratio ())
    else
      let rng = Rng.create ~seed:req.Request.seed in
      Lepts_workloads.Random_gen.generate
        (Lepts_workloads.Random_gen.default_config ~n_tasks:req.Request.tasks
           ~ratio:req.Request.ratio)
        ~power ~rng
  in
  match workload with
  | Error msg -> Error ("generation failed: " ^ msg)
  | Ok ts -> (
    let plan = Plan.expand ts in
    let wall =
      Option.map (fun ms -> float_of_int ms /. 1000.) req.Request.budget_ms
    in
    let stage_budget ?max_outer () =
      { Robust_solver.default_budget with
        max_outer =
          Option.value max_outer
            ~default:Robust_solver.default_budget.Robust_solver.max_outer;
        wall_budget =
          (match wall with
          | Some _ -> wall
          | None -> Robust_solver.default_budget.Robust_solver.wall_budget) }
    in
    let solver_config =
      { Robust_solver.acs = stage_budget ?max_outer:req.Request.acs_max_outer ();
        wcs = stage_budget () }
    in
    match Robust_solver.solve ~config:solver_config ~skip_acs ~plan ~power () with
    | Error e ->
      Error (Format.asprintf "%a" Lepts_core.Solver.pp_error e)
    | Ok (schedule, diagnostics) ->
      let mean_energy =
        if req.Request.rounds = 0 then None
        else
          let rng = Rng.create ~seed:req.Request.seed in
          let summary =
            Runner.simulate ~rounds:req.Request.rounds ~schedule
              ~policy:Lepts_dvs.Policy.Greedy ~rng ()
          in
          Some summary.Runner.mean_energy
      in
      Ok (diagnostics, mean_energy))

let process ~config ~power ~before_solve ~skip_acs (req : Request.t) =
  Span.with_ ~name:("serve:" ^ req.Request.id) @@ fun () ->
  let rec go ~attempt ~crashes =
    let result =
      try `R (solve_once ~power ~before_solve ~skip_acs ~attempt req)
      with e -> `Crash (Printexc.to_string e)
    in
    match result with
    | `Crash msg ->
      Log.warn (fun f ->
          f "%s: worker crashed on attempt %d: %s" req.Request.id attempt msg);
      if crashes >= config.max_worker_crashes then
        { e_status = Failed ("worker crashed: " ^ msg); e_attempts = attempt;
          e_crashes = crashes + 1; e_acs_ok = false; e_degraded = true;
          e_crashed_out = true }
      else begin
        Metrics.incr m_restarts;
        go ~attempt:(attempt + 1) ~crashes:(crashes + 1)
      end
    | `R (Error msg) ->
      if attempt <= config.max_retries then begin
        Metrics.incr m_retries;
        Log.info (fun f ->
            f "%s: attempt %d failed (%s), retrying" req.Request.id attempt msg);
        backoff ~config ~attempt req;
        go ~attempt:(attempt + 1) ~crashes
      end
      else
        { e_status = Failed msg; e_attempts = attempt; e_crashes = crashes;
          e_acs_ok = false; e_degraded = true; e_crashed_out = false }
    | `R (Ok (diagnostics, mean_energy)) ->
      let chosen = diagnostics.Robust_solver.chosen in
      let degraded = chosen <> Robust_solver.Acs in
      { e_status =
          Done { stage = Robust_solver.stage_name chosen; mean_energy };
        e_attempts = attempt; e_crashes = crashes;
        e_acs_ok = (chosen = Robust_solver.Acs); e_degraded = degraded;
        e_crashed_out = false }
  in
  go ~attempt:1 ~crashes:0

let no_exec = (* placeholder for requests a drain left unprocessed *)
  { e_status = Drained; e_attempts = 0; e_crashes = 0; e_acs_ok = false;
    e_degraded = false; e_crashed_out = false }

let run ?(config = default_config) ?(power = Model.ideal ())
    ?before_solve ?(should_stop = fun () -> false) ~lines () =
  if config.jobs < 1 then invalid_arg "Service.run: jobs must be >= 1";
  if config.high_water < 1 then
    invalid_arg "Service.run: high_water must be >= 1";
  if config.wave < 1 then invalid_arg "Service.run: wave must be >= 1";
  if config.max_retries < 0 then
    invalid_arg "Service.run: max_retries must be >= 0";
  if config.max_worker_crashes < 0 then
    invalid_arg "Service.run: max_worker_crashes must be >= 0";
  Span.with_ ~name:"serve:batch" @@ fun () ->
  (* Admission: parse every line, admit the first [high_water] valid
     requests, shed the rest. One pass, in input order. *)
  let parsed =
    List.mapi
      (fun i line ->
        Metrics.incr m_requests;
        match Request.of_json line with
        | Ok req -> `Request (i, req)
        | Error msg ->
          Metrics.incr m_rejected;
          Log.info (fun f -> f "line %d rejected: %s" (i + 1) msg);
          `Rejected (i, msg))
      lines
  in
  let valid =
    List.filter_map
      (function `Request (i, r) -> Some (i, r) | `Rejected _ -> None)
      parsed
  in
  let admitted_list, shed_list =
    let rec split k acc = function
      | [] -> (List.rev acc, [])
      | rest when k = 0 -> (List.rev acc, rest)
      | x :: rest -> split (k - 1) (x :: acc) rest
    in
    split config.high_water [] valid
  in
  Metrics.incr ~by:(List.length admitted_list) m_admitted;
  Metrics.incr ~by:(List.length shed_list) m_shed;
  if shed_list <> [] then
    Log.warn (fun f ->
        f "load shedding: %d request(s) above the high-water mark (%d)"
          (List.length shed_list) config.high_water);
  let admitted = Array.of_list admitted_list in
  let n = Array.length admitted in
  (* Wave loop. The logical clock ticks once per folded request; routes
     for a wave are planned before it runs, from the breaker state the
     previous fold left behind — identical whatever [jobs] is. *)
  let breaker = Breaker.create ~config:config.breaker () in
  let clock = ref 0 in
  let results = Array.make n no_exec in
  let routed = Array.make n false in
  let processed = ref 0 in
  let drained = ref false in
  let i = ref 0 in
  while !i < n && not !drained do
    if should_stop () then begin
      drained := true;
      Log.warn (fun f ->
          f "drain requested: %d request(s) left unprocessed" (n - !i))
    end
    else begin
      let w = Int.min config.wave (n - !i) in
      let routes = Array.make w true in
      for k = 0 to w - 1 do
        routes.(k) <- Breaker.plan_route breaker ~now:!clock
      done;
      let execs, _stats =
        Pool.run ~jobs:config.jobs ~n:w ~f:(fun k ->
            let _, req = admitted.(!i + k) in
            process ~config ~power ~before_solve ~skip_acs:(not routes.(k)) req)
      in
      for k = 0 to w - 1 do
        incr clock;
        let e = execs.(k) in
        Breaker.observe breaker ~now:!clock ~routed_acs:routes.(k)
          ~ok:e.e_acs_ok;
        if e.e_degraded && not e.e_crashed_out then Metrics.incr m_degraded;
        results.(!i + k) <- e;
        routed.(!i + k) <- routes.(k);
        incr processed
      done;
      i := !i + w
    end
  done;
  Metrics.incr ~by:!processed m_processed;
  Metrics.incr ~by:(n - !processed) m_drained;
  (* Reassemble one outcome per input line, in input order. *)
  let admitted_index = Hashtbl.create 16 in
  Array.iteri
    (fun slot (line_idx, _) -> Hashtbl.replace admitted_index line_idx slot)
    admitted;
  let shed_lines =
    List.fold_left
      (fun acc (line_idx, _) -> line_idx :: acc)
      [] shed_list
  in
  let outcomes =
    List.map
      (function
        | `Rejected (i, msg) ->
          { id = Printf.sprintf "line-%d" (i + 1); status = Rejected msg;
            attempts = 0; crashes = 0; routed_acs = false; degraded = false }
        | `Request (i, (req : Request.t)) -> (
          match Hashtbl.find_opt admitted_index i with
          | None ->
            assert (List.mem i shed_lines);
            { id = req.Request.id; status = Shed; attempts = 0; crashes = 0;
              routed_acs = false; degraded = false }
          | Some slot ->
            let e = results.(slot) in
            { id = req.Request.id; status = e.e_status;
              attempts = e.e_attempts; crashes = e.e_crashes;
              routed_acs = routed.(slot); degraded = e.e_degraded }))
      parsed
  in
  let degraded_service =
    Array.exists (fun e -> e.e_crashed_out) results
  in
  { outcomes; admitted = n; processed = !processed;
    shed = List.length shed_list;
    rejected = List.length parsed - List.length valid;
    drained = !drained; degraded = degraded_service;
    transitions = Breaker.transitions breaker }

let pp_status ppf = function
  | Done { stage; mean_energy } ->
    Format.fprintf ppf "done (%s%t)" stage (fun ppf ->
        Option.iter (fun e -> Format.fprintf ppf ", mean %.6g" e) mean_energy)
  | Failed msg -> Format.fprintf ppf "failed: %s" msg
  | Rejected msg -> Format.fprintf ppf "rejected: %s" msg
  | Shed -> Format.pp_print_string ppf "shed"
  | Drained -> Format.pp_print_string ppf "drained"

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let outcome_json (o : outcome) =
  let b = Buffer.create 96 in
  Buffer.add_string b (Printf.sprintf "{\"id\":\"%s\"" (json_escape o.id));
  (match o.status with
  | Done { stage; mean_energy } ->
    Buffer.add_string b (Printf.sprintf ",\"status\":\"done\",\"stage\":\"%s\"" stage);
    Option.iter
      (fun e -> Buffer.add_string b (Printf.sprintf ",\"mean_energy\":%.12g" e))
      mean_energy
  | Failed msg ->
    Buffer.add_string b
      (Printf.sprintf ",\"status\":\"failed\",\"reason\":\"%s\"" (json_escape msg))
  | Rejected msg ->
    Buffer.add_string b
      (Printf.sprintf ",\"status\":\"rejected\",\"reason\":\"%s\"" (json_escape msg))
  | Shed -> Buffer.add_string b ",\"status\":\"shed\""
  | Drained -> Buffer.add_string b ",\"status\":\"drained\"");
  (match o.status with
  | Done _ | Failed _ ->
    Buffer.add_string b
      (Printf.sprintf ",\"route\":\"%s\",\"attempts\":%d,\"crashes\":%d"
         (if o.routed_acs then "acs" else "fallback")
         o.attempts o.crashes);
    if o.degraded then Buffer.add_string b ",\"degraded\":true"
  | Rejected _ | Shed | Drained -> ());
  Buffer.add_char b '}';
  Buffer.contents b

let print_report ?(oc = stdout) r =
  List.iter (fun o -> output_string oc (outcome_json o ^ "\n")) r.outcomes;
  let transitions =
    String.concat ","
      (List.map
         (fun (t, s) -> Printf.sprintf "[%d,\"%s\"]" t (Breaker.state_name s))
         r.transitions)
  in
  output_string oc
    (Printf.sprintf
       "{\"summary\":{\"requests\":%d,\"admitted\":%d,\"processed\":%d,\
        \"shed\":%d,\"rejected\":%d,\"drained\":%b,\"degraded\":%b,\
        \"breaker\":[%s]}}\n"
       (List.length r.outcomes) r.admitted r.processed r.shed r.rejected
       r.drained r.degraded transitions);
  flush oc
