module Pool = Lepts_par.Pool
module Rng = Lepts_prng.Xoshiro256
module Model = Lepts_power.Model
module Plan = Lepts_preempt.Plan
module Runner = Lepts_sim.Runner
module Robust_solver = Lepts_robust.Robust_solver
module Static_schedule = Lepts_core.Static_schedule
module Metrics = Lepts_obs.Metrics
module Span = Lepts_obs.Span

let log_src = Logs.Src.create "lepts.serve" ~doc:"scheduling service engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  jobs : int;
  shards : int;
  high_water : int;
  wave : int;
  max_retries : int;
  backoff_base : float;
  max_worker_crashes : int;
  breaker : Breaker.config;
}

let default_config =
  { jobs = 1; shards = 1; high_water = 64; wave = 8; max_retries = 1;
    backoff_base = 0.; max_worker_crashes = 2;
    breaker = Breaker.default_config }

type status =
  | Done of { stage : string; mean_energy : float option }
  | Failed of string
  | Rejected of string
  | Shed
  | Expired
  | Drained

type outcome = {
  id : string;
  status : status;
  attempts : int;
  crashes : int;
  routed_acs : bool;
  degraded : bool;
}

type report = {
  outcomes : outcome list;
  admitted : int;
  processed : int;
  shed : int;
  rejected : int;
  expired : int;
  coalesced : int;
  drained : bool;
  degraded : bool;
  shards : Shard.stat list;
}

type progress = {
  p_wave : int;
  p_processed : int;
  p_backlog : int;
  p_expired : int;
  p_coalesced : int;
  p_shards : (int * Breaker.state * int) list;
}

(* Service counters (DESIGN.md §9). *)
let m_requests =
  Metrics.counter ~help:"request lines received" Metrics.default
    "lepts_serve_requests_total"

let m_rejected =
  Metrics.counter ~help:"request lines rejected by the parser or transport"
    Metrics.default "lepts_serve_rejected_total"

let m_admitted =
  Metrics.counter ~help:"requests admitted below the high-water mark"
    Metrics.default "lepts_serve_admitted_total"

let m_shed =
  Metrics.counter ~help:"requests load-shed at admission" Metrics.default
    "lepts_serve_shed_total"

let m_processed =
  Metrics.counter ~help:"requests processed to completion" Metrics.default
    "lepts_serve_processed_total"

let m_retries =
  Metrics.counter ~help:"solver-failure retries" Metrics.default
    "lepts_serve_retries_total"

let m_restarts =
  Metrics.counter ~help:"worker restarts after a crash" Metrics.default
    "lepts_serve_worker_restarts_total"

let m_degraded =
  Metrics.counter ~help:"requests completed by a stage below ACS"
    Metrics.default "lepts_serve_degraded_total"

let m_drained =
  Metrics.counter ~help:"admitted requests left unprocessed by a drain"
    Metrics.default "lepts_serve_drained_total"

let m_expired =
  Metrics.counter
    ~help:"requests whose deadline lapsed while queued (shed at dispatch)"
    Metrics.default "lepts_serve_expired_total"

let m_coalesced =
  Metrics.counter
    ~help:"content-identical in-flight requests served by another's solve"
    Metrics.default "lepts_serve_coalesced_total"

let h_admission_to_dispatch =
  Metrics.histogram ~help:"queue wait from arrival to dispatch decision, ms"
    ~buckets:[| 1.; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1000.; 2500.; 5000. |]
    Metrics.default "lepts_serve_admission_to_dispatch_ms"

let h_dispatch_to_done =
  Metrics.histogram ~help:"worker wall time from dispatch to solved, ms"
    ~buckets:
      [| 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1000.; 2500.; 5000.; 10000. |]
    Metrics.default "lepts_serve_dispatch_to_done_ms"

(* Per-request execution result, before the breaker fold. *)
type exec = {
  e_status : status;
  e_attempts : int;
  e_crashes : int;
  e_acs_ok : bool;  (* the ACS stage itself produced the schedule *)
  e_degraded : bool;
  e_crashed_out : bool;  (* exhausted its worker restarts *)
  e_schedule : (float array * float array) option;
      (* solved (end_times, quotas), for the cache and warm chains *)
  e_ms : float;  (* worker wall ms — observability only, never reported *)
}

let backoff ~config ~attempt (req : Request.t) =
  if config.backoff_base > 0. then begin
    (* Exponential backoff with deterministic jitter: the jitter stream
       is keyed off the request id and attempt number, so two runs of
       the same batch sleep identically — and distinct requests never
       thunder in lockstep. *)
    let rng = Rng.split_key (Rng.create ~seed:(Hashtbl.hash req.Request.id)) ~key:attempt in
    let scale = 0.5 +. Rng.float rng in
    let delay =
      config.backoff_base *. (2. ** float_of_int (attempt - 1)) *. scale
    in
    Unix.sleepf (Float.min delay 5.)
  end

let workload_of ~power (req : Request.t) =
  if req.Request.tasks = 0 then
    Ok (Lepts_workloads.Cnc.task_set ~power ~ratio:req.Request.ratio ())
  else
    let rng = Rng.create ~seed:req.Request.seed in
    Lepts_workloads.Random_gen.generate
      (Lepts_workloads.Random_gen.default_config ~n_tasks:req.Request.tasks
         ~ratio:req.Request.ratio)
      ~power ~rng

let solve_once ~power ~before_solve ~skip_acs ~prev ~wait_ms ~attempt
    (req : Request.t) =
  Option.iter (fun f -> f ~attempt req) before_solve;
  match workload_of ~power req with
  | Error msg -> Error ("generation failed: " ^ msg)
  | Ok ts -> (
    let plan = Plan.expand ts in
    (* [budget_ms] is an end-to-end deadline: the time this request
       already spent queued is charged against the wall budget each NLP
       stage gets. (Dispatch guarantees wait < budget — anything else
       expired in the queue.) *)
    let wall =
      Option.map
        (fun ms -> float_of_int (ms - wait_ms) /. 1000.)
        req.Request.budget_ms
    in
    let stage_budget ?max_outer () =
      { Robust_solver.default_budget with
        max_outer =
          Option.value max_outer
            ~default:Robust_solver.default_budget.Robust_solver.max_outer;
        wall_budget =
          (match wall with
          | Some _ -> wall
          | None -> Robust_solver.default_budget.Robust_solver.wall_budget) }
    in
    let solver_config =
      { Robust_solver.acs = stage_budget ?max_outer:req.Request.acs_max_outer ();
        wcs = stage_budget () }
    in
    match
      Robust_solver.solve ~config:solver_config ~skip_acs ?prev ~plan ~power ()
    with
    | Error e ->
      Error (Format.asprintf "%a" Lepts_core.Solver.pp_error e)
    | Ok (schedule, diagnostics) ->
      let mean_energy =
        if req.Request.rounds = 0 then None
        else
          let rng = Rng.create ~seed:req.Request.seed in
          let summary =
            Runner.simulate ~rounds:req.Request.rounds ~schedule
              ~policy:Lepts_dvs.Policy.Greedy ~rng ()
          in
          Some summary.Runner.mean_energy
      in
      Ok (schedule, diagnostics, mean_energy))

(* Process one request on a worker domain. Returns the exec record plus
   the solved schedule object, which a warm chain threads into the next
   near-identical solve. *)
let process ~config ~power ~before_solve ~skip_acs ~prev ~wait_ms
    (req : Request.t) =
  Span.with_ ~name:("serve:" ^ req.Request.id) @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let rec go ~attempt ~crashes =
    let result =
      try
        `R (solve_once ~power ~before_solve ~skip_acs ~prev ~wait_ms ~attempt
              req)
      with e -> `Crash (Printexc.to_string e)
    in
    match result with
    | `Crash msg ->
      Log.warn (fun f ->
          f "%s: worker crashed on attempt %d: %s" req.Request.id attempt msg);
      if crashes >= config.max_worker_crashes then
        ( { e_status = Failed ("worker crashed: " ^ msg); e_attempts = attempt;
            e_crashes = crashes + 1; e_acs_ok = false; e_degraded = true;
            e_crashed_out = true; e_schedule = None; e_ms = 0. },
          None )
      else begin
        Metrics.incr m_restarts;
        go ~attempt:(attempt + 1) ~crashes:(crashes + 1)
      end
    | `R (Error msg) ->
      if attempt <= config.max_retries then begin
        Metrics.incr m_retries;
        Log.info (fun f ->
            f "%s: attempt %d failed (%s), retrying" req.Request.id attempt msg);
        backoff ~config ~attempt req;
        go ~attempt:(attempt + 1) ~crashes
      end
      else
        ( { e_status = Failed msg; e_attempts = attempt; e_crashes = crashes;
            e_acs_ok = false; e_degraded = true; e_crashed_out = false;
            e_schedule = None; e_ms = 0. },
          None )
    | `R (Ok (schedule, diagnostics, mean_energy)) ->
      let chosen = diagnostics.Robust_solver.chosen in
      let degraded = chosen <> Robust_solver.Acs in
      ( { e_status =
            Done { stage = Robust_solver.stage_name chosen; mean_energy };
          e_attempts = attempt; e_crashes = crashes;
          e_acs_ok = (chosen = Robust_solver.Acs); e_degraded = degraded;
          e_crashed_out = false;
          e_schedule =
            Some
              ( schedule.Static_schedule.end_times,
                schedule.Static_schedule.quotas );
          e_ms = 0. },
        Some schedule )
  in
  let e, sched = go ~attempt:1 ~crashes:0 in
  ({ e with e_ms = (Unix.gettimeofday () -. t0) *. 1000. }, sched)

let no_exec = (* placeholder for requests a drain left unprocessed *)
  { e_status = Drained; e_attempts = 0; e_crashes = 0; e_acs_ok = false;
    e_degraded = false; e_crashed_out = false; e_schedule = None; e_ms = 0. }

let exec_of_entry (e : Cache.entry) =
  (* Only authoritative entries are ever served, so a cache hit is by
     construction a non-degraded ACS result. *)
  { e_status = Done { stage = e.Cache.stage; mean_energy = e.Cache.mean_energy };
    e_attempts = e.Cache.attempts; e_crashes = e.Cache.crashes;
    e_acs_ok = true; e_degraded = false; e_crashed_out = false;
    e_schedule = e.Cache.schedule; e_ms = 0. }

(* Rebuild a cached schedule object to seed a warm chain: regenerate
   the entry's workload (same tasks/seed/ratio, deterministic) and
   attach the stored exact-bits vectors. Any inconsistency simply
   yields no seed — the chain member then solves cold. *)
let seed_schedule ~power (req : Request.t) (ets, qs) =
  match workload_of ~power req with
  | Error _ -> None
  | Ok ts -> (
    let plan = Plan.expand ts in
    match
      Static_schedule.create ~plan ~power ~end_times:ets ~quotas:qs
    with
    | schedule -> Some schedule
    | exception Invalid_argument _ -> None)

(* A dispatched wave slot: shed at dispatch because its deadline
   lapsed in the queue, served from the cache, or sent to a worker
   (with or without the ACS stage). *)
type slot_state =
  | S_expired
  | S_cached of Cache.entry
  | S_solve of bool  (* ACS-routed? *)

(* One unit of pool work: a chain of links executed in order on one
   worker, threading the previous ACS schedule into the next solve. A
   solo request is a one-link chain. *)
type link =
  | L_seed of Request.t * (float array * float array)
      (* cached family member: rebuild its schedule, solve nothing *)
  | L_solve of { l_slot : int; l_req : Request.t; l_route : bool }

type queued = {
  q_seq : int;
  q_req : Request.t;
  q_shard : int;
  q_at_ms : int;
}

let run_source ?(config = default_config) ?(power = Model.ideal ()) ?cache
    ?journal ?before_solve ?after_wave ?(should_stop = fun () -> false)
    ~source () =
  if config.jobs < 1 then invalid_arg "Service.run: jobs must be >= 1";
  if config.shards < 1 then invalid_arg "Service.run: shards must be >= 1";
  if config.high_water < 1 then
    invalid_arg "Service.run: high_water must be >= 1";
  if config.wave < 1 then invalid_arg "Service.run: wave must be >= 1";
  if config.max_retries < 0 then
    invalid_arg "Service.run: max_retries must be >= 0";
  if config.max_worker_crashes < 0 then
    invalid_arg "Service.run: max_worker_crashes must be >= 0";
  Span.with_ ~name:"serve:batch" @@ fun () ->
  (* One long-lived pool serves every wave of this run (and, being the
     process-wide shared pool for this worker count, every later run
     too): workers spawn once, not once per wave. *)
  let pool = Pool.shared ~jobs:config.jobs in
  let shards =
    Array.init config.shards (fun index ->
        Shard.create ~config:config.breaker ~index)
  in
  let queue : queued Queue.t = Queue.create () in
  let outcomes : (int, outcome) Hashtbl.t = Hashtbl.create 64 in
  let record seq o = Hashtbl.replace outcomes seq o in
  let admitted_total = ref 0 in
  let shed_total = ref 0 in
  let rejected_total = ref 0 in
  let processed = ref 0 in
  let expired_total = ref 0 in
  let coalesced_total = ref 0 in
  let drained = ref false in
  let drained_count = ref 0 in
  let degraded_service = ref false in
  let wave_no = ref 0 in
  (* Admission, at arrival: parse, assign to a shard by content hash of
     the id, admit below that shard's high-water mark, shed the rest.
     Transport-level rejections (partial or oversized lines) arrive as
     [Error] payloads and are reported like parse rejections. *)
  let admit (a : Transport.arrival) =
    Metrics.incr m_requests;
    let reject msg =
      Metrics.incr m_rejected;
      incr rejected_total;
      Log.info (fun f -> f "line %d rejected: %s" a.Transport.a_seq msg);
      record a.Transport.a_seq
        { id = Printf.sprintf "line-%d" a.Transport.a_seq;
          status = Rejected msg; attempts = 0; crashes = 0;
          routed_acs = false; degraded = false }
    in
    match a.Transport.a_payload with
    | Error diag -> reject diag
    | Ok line -> (
      match Request.of_json line with
      | Error msg -> reject msg
      | Ok req ->
        let s = Shard.of_id ~shards:config.shards req.Request.id in
        let sh = shards.(s) in
        if Shard.backlog sh < config.high_water then begin
          sh.Shard.admitted <- sh.Shard.admitted + 1;
          incr admitted_total;
          Metrics.incr m_admitted;
          Queue.add
            { q_seq = a.Transport.a_seq; q_req = req; q_shard = s;
              q_at_ms = a.Transport.a_at_ms }
            queue
        end
        else begin
          sh.Shard.shed <- sh.Shard.shed + 1;
          incr shed_total;
          Metrics.incr m_shed;
          Log.warn (fun f ->
              f "load shedding: %s above shard %d's high-water mark (%d)"
                req.Request.id s config.high_water);
          record a.Transport.a_seq
            { id = req.Request.id; status = Shed; attempts = 0; crashes = 0;
              routed_acs = false; degraded = false }
        end)
  in
  (* One wave: dispatch (expiry + route planning + cache lookups,
     sequential), coalesce and chain, solve on the pool, fold
     (sequential, in slot order). [now_ms] is the polled batch's stamp,
     so every time comparison is a pure function of the journal. *)
  let run_wave ~now_ms =
    incr wave_no;
    let w = Int.min config.wave (Queue.length queue) in
    let slots =
      (* explicit front-to-back dequeue — wave membership is part of the
         deterministic service semantics *)
      let rec take n acc =
        if n = 0 then List.rev acc else take (n - 1) (Queue.pop queue :: acc)
      in
      Array.of_list (take w [])
    in
    let wait_of q = now_ms - q.q_at_ms in
    (* Dispatch phase. [plan_route] may consume a half-open probe slot,
       so it runs exactly once per dispatched request; an expired
       request is shed here — it never reaches a worker and never
       observes the breaker. *)
    let states =
      Array.map
        (fun q ->
          let sh = shards.(q.q_shard) in
          let expired =
            match q.q_req.Request.budget_ms with
            | Some b -> now_ms - q.q_at_ms >= b
            | None -> false
          in
          if expired then begin
            sh.Shard.expired <- sh.Shard.expired + 1;
            incr expired_total;
            Metrics.incr m_expired;
            Log.info (fun f ->
                f "%s: deadline expired after %d ms in queue, shedding"
                  q.q_req.Request.id (now_ms - q.q_at_ms));
            record q.q_seq
              { id = q.q_req.Request.id; status = Expired; attempts = 0;
                crashes = 0; routed_acs = false; degraded = false };
            S_expired
          end
          else begin
            Metrics.observe h_admission_to_dispatch
              (float_of_int (wait_of q));
            let route =
              Breaker.plan_route sh.Shard.breaker ~now:sh.Shard.clock
            in
            if not route then S_solve false
            else
              match cache with
              | None -> S_solve true
              | Some c -> (
                match
                  Cache.find ~wave:!wave_no c ~key:(Cache.key q.q_req)
                with
                | `Hit e -> S_cached e
                | `Stale _ | `Miss -> S_solve true)
          end)
        slots
    in
    (* Coalescing: later solve slots with the same content key (and
       route) follow the first — one solve fans out to every waiter. *)
    let keys = Array.map (fun q -> Cache.key q.q_req) slots in
    let leader = Array.init w Fun.id in
    let seen : (string * bool, int) Hashtbl.t = Hashtbl.create 16 in
    for k = 0 to w - 1 do
      match states.(k) with
      | S_solve route -> (
        match Hashtbl.find_opt seen (keys.(k), route) with
        | Some l -> leader.(k) <- l
        | None -> Hashtbl.add seen (keys.(k), route) k)
      | S_expired | S_cached _ -> ()
    done;
    (* Warm chains: ACS-routed leaders of one family (same content
       except the ratio) execute in ratio order on one worker, each
       seeding the next through the continuation path; a cached family
       member contributes its stored schedule as a seed. *)
    let fam : (string, int list) Hashtbl.t = Hashtbl.create 16 in
    for k = w - 1 downto 0 do
      let joins =
        match states.(k) with
        | S_cached e -> e.Cache.schedule <> None
        | S_solve true -> leader.(k) = k
        | S_solve false | S_expired -> false
      in
      if joins then begin
        let fk = Cache.family_key slots.(k).q_req in
        let prev = Option.value (Hashtbl.find_opt fam fk) ~default:[] in
        Hashtbl.replace fam fk (k :: prev)
      end
    done;
    let chained = Array.make w false in
    let units = ref [] (* newest first; order does not affect results *) in
    Hashtbl.iter
      (fun _fk members ->
        let solves =
          List.filter
            (fun k -> match states.(k) with S_solve _ -> true | _ -> false)
            members
        in
        if List.length solves >= 1 && List.length members >= 2 then begin
          let ordered =
            List.sort
              (fun k1 k2 ->
                match
                  compare slots.(k1).q_req.Request.ratio
                    slots.(k2).q_req.Request.ratio
                with
                | 0 -> compare k1 k2
                | c -> c)
              members
          in
          let links =
            List.map
              (fun k ->
                chained.(k) <- true;
                match states.(k) with
                | S_cached e ->
                  L_seed (slots.(k).q_req, Option.get e.Cache.schedule)
                | S_solve route ->
                  L_solve { l_slot = k; l_req = slots.(k).q_req; l_route = route }
                | S_expired -> assert false)
              ordered
          in
          units := Array.of_list links :: !units
        end)
      fam;
    (* Solo units: every un-chained solve leader. *)
    for k = 0 to w - 1 do
      match states.(k) with
      | S_solve route when leader.(k) = k && not chained.(k) ->
        units :=
          [| L_solve { l_slot = k; l_req = slots.(k).q_req; l_route = route } |]
          :: !units
      | _ -> ()
    done;
    let units = Array.of_list !units in
    (* Solve phase: each unit runs its links in order on one worker. *)
    let run_unit links =
      let prev = ref None in
      let out = ref [] in
      Array.iter
        (fun link ->
          match link with
          | L_seed (req, vectors) -> prev := seed_schedule ~power req vectors
          | L_solve { l_slot; l_req; l_route } ->
            let e, sched =
              process ~config ~power ~before_solve ~skip_acs:(not l_route)
                ~prev:(if l_route then !prev else None)
                ~wait_ms:(wait_of slots.(l_slot)) l_req
            in
            prev := (if e.e_acs_ok then sched else None);
            out := (l_slot, e) :: !out)
        links;
      List.rev !out
    in
    let solved =
      if Array.length units = 0 then [||]
      else fst (Pool.submit pool ~n:(Array.length units) ~f:(fun u -> run_unit units.(u)))
    in
    let results = Array.make w no_exec in
    Array.iter
      (List.iter (fun (k, e) -> results.(k) <- e))
      solved;
    (* Fold phase: sequential, in slot order. Cache hits fold as
       successful ACS observations; fresh [Done] results are stored
       with their provenance and schedule; coalesced followers fold
       their leader's signal into their own shard. *)
    for k = 0 to w - 1 do
      let q = slots.(k) in
      let sh = shards.(q.q_shard) in
      match states.(k) with
      | S_expired -> ()
      | S_cached entry ->
        sh.Shard.clock <- sh.Shard.clock + 1;
        sh.Shard.processed <- sh.Shard.processed + 1;
        let e = exec_of_entry entry in
        Breaker.observe sh.Shard.breaker ~now:sh.Shard.clock ~routed_acs:true
          ~ok:true;
        incr processed;
        record q.q_seq
          { id = q.q_req.Request.id; status = e.e_status;
            attempts = e.e_attempts; crashes = e.e_crashes; routed_acs = true;
            degraded = e.e_degraded }
      | S_solve route ->
        sh.Shard.clock <- sh.Shard.clock + 1;
        sh.Shard.processed <- sh.Shard.processed + 1;
        let l = leader.(k) in
        let e = results.(l) in
        if l = k then begin
          Metrics.observe h_dispatch_to_done e.e_ms;
          match (cache, e.e_status) with
          | Some c, Done { stage; mean_energy } ->
            Cache.store ~wave:!wave_no c ~key:keys.(k)
              { Cache.stage; mean_energy; attempts = e.e_attempts;
                crashes = e.e_crashes;
                provenance =
                  (if e.e_acs_ok then Cache.Authoritative else Cache.Fallback);
                schedule = e.e_schedule }
          | _ -> ()
        end
        else begin
          incr coalesced_total;
          Metrics.incr m_coalesced
        end;
        Breaker.observe sh.Shard.breaker ~now:sh.Shard.clock ~routed_acs:route
          ~ok:e.e_acs_ok;
        if e.e_degraded && not e.e_crashed_out then Metrics.incr m_degraded;
        if e.e_crashed_out then degraded_service := true;
        incr processed;
        record q.q_seq
          { id = q.q_req.Request.id; status = e.e_status;
            attempts = e.e_attempts; crashes = e.e_crashes;
            routed_acs = route; degraded = e.e_degraded }
    done;
    Option.iter
      (fun f ->
        f
          { p_wave = !wave_no; p_processed = !processed;
            p_backlog = Queue.length queue; p_expired = !expired_total;
            p_coalesced = !coalesced_total;
            p_shards =
              Array.to_list
                (Array.map
                   (fun sh ->
                     ( sh.Shard.index, Breaker.state sh.Shard.breaker,
                       Shard.backlog sh ))
                   shards) })
      after_wave
  in
  (* Event loop: poll the transport, admit the batch, honour drains,
     process one wave per iteration. Only batches the engine acted on
     are journaled, so replay reproduces the exact wave boundaries —
     including a drain, which is recorded where it struck. *)
  let record_batch b =
    Option.iter (fun j -> Transport.Journal.record j b) journal
  in
  let drain_queue () =
    drained := true;
    Log.warn (fun f ->
        f "drain requested: %d request(s) left unprocessed"
          (Queue.length queue));
    Queue.iter
      (fun q ->
        incr drained_count;
        record q.q_seq
          { id = q.q_req.Request.id; status = Drained; attempts = 0;
            crashes = 0; routed_acs = false; degraded = false })
      queue;
    Queue.clear queue
  in
  let rec loop () =
    let b = Transport.poll source ~pending:(not (Queue.is_empty queue)) in
    List.iter admit b.Transport.b_arrivals;
    if b.Transport.b_drain || should_stop () then begin
      record_batch { b with Transport.b_drain = true };
      drain_queue ()
    end
    else begin
      let work = not (Queue.is_empty queue) in
      if work || b.Transport.b_arrivals <> [] then record_batch b;
      if work then begin
        run_wave ~now_ms:b.Transport.b_now_ms;
        loop ()
      end
      else if not (b.Transport.b_closed && b.Transport.b_arrivals = []) then
        loop ()
    end
  in
  loop ();
  Metrics.incr ~by:!processed m_processed;
  Metrics.incr ~by:!drained_count m_drained;
  (* Reassemble one outcome per arrival, in sequence order. *)
  let outcome_list =
    List.sort compare (Hashtbl.fold (fun seq o acc -> (seq, o) :: acc) outcomes [])
    |> List.map snd
  in
  { outcomes = outcome_list; admitted = !admitted_total;
    processed = !processed; shed = !shed_total; rejected = !rejected_total;
    expired = !expired_total; coalesced = !coalesced_total;
    drained = !drained; degraded = !degraded_service;
    shards = Array.to_list (Array.map Shard.stat shards) }

let run ?config ?power ?cache ?before_solve ?after_wave ?should_stop ~lines ()
    =
  run_source ?config ?power ?cache ?before_solve ?after_wave ?should_stop
    ~source:(Transport.of_lines lines) ()

let pp_status ppf = function
  | Done { stage; mean_energy } ->
    Format.fprintf ppf "done (%s%t)" stage (fun ppf ->
        Option.iter (fun e -> Format.fprintf ppf ", mean %.6g" e) mean_energy)
  | Failed msg -> Format.fprintf ppf "failed: %s" msg
  | Rejected msg -> Format.fprintf ppf "rejected: %s" msg
  | Shed -> Format.pp_print_string ppf "shed"
  | Expired -> Format.pp_print_string ppf "expired"
  | Drained -> Format.pp_print_string ppf "drained"

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let outcome_json (o : outcome) =
  let b = Buffer.create 96 in
  Buffer.add_string b (Printf.sprintf "{\"id\":\"%s\"" (json_escape o.id));
  (match o.status with
  | Done { stage; mean_energy } ->
    Buffer.add_string b (Printf.sprintf ",\"status\":\"done\",\"stage\":\"%s\"" stage);
    Option.iter
      (fun e -> Buffer.add_string b (Printf.sprintf ",\"mean_energy\":%.12g" e))
      mean_energy
  | Failed msg ->
    Buffer.add_string b
      (Printf.sprintf ",\"status\":\"failed\",\"reason\":\"%s\"" (json_escape msg))
  | Rejected msg ->
    Buffer.add_string b
      (Printf.sprintf ",\"status\":\"rejected\",\"reason\":\"%s\"" (json_escape msg))
  | Shed -> Buffer.add_string b ",\"status\":\"shed\""
  | Expired -> Buffer.add_string b ",\"status\":\"expired\""
  | Drained -> Buffer.add_string b ",\"status\":\"drained\"");
  (match o.status with
  | Done _ | Failed _ ->
    Buffer.add_string b
      (Printf.sprintf ",\"route\":\"%s\",\"attempts\":%d,\"crashes\":%d"
         (if o.routed_acs then "acs" else "fallback")
         o.attempts o.crashes);
    if o.degraded then Buffer.add_string b ",\"degraded\":true"
  | Rejected _ | Shed | Expired | Drained -> ());
  Buffer.add_char b '}';
  Buffer.contents b

let shard_json (s : Shard.stat) =
  let transitions =
    String.concat ","
      (List.map
         (fun (t, st) -> Printf.sprintf "[%d,\"%s\"]" t (Breaker.state_name st))
         s.Shard.transitions)
  in
  Printf.sprintf
    "{\"shard\":%d,\"admitted\":%d,\"shed\":%d,\"processed\":%d,\
     \"expired\":%d,\"breaker\":[%s]}"
    s.Shard.shard s.Shard.s_admitted s.Shard.s_shed s.Shard.s_processed
    s.Shard.s_expired transitions

let print_report ?(oc = stdout) r =
  List.iter (fun o -> output_string oc (outcome_json o ^ "\n")) r.outcomes;
  let shards = String.concat "," (List.map shard_json r.shards) in
  output_string oc
    (Printf.sprintf
       "{\"summary\":{\"requests\":%d,\"admitted\":%d,\"processed\":%d,\
        \"shed\":%d,\"rejected\":%d,\"expired\":%d,\"drained\":%b,\
        \"degraded\":%b,\"shards\":[%s]}}\n"
       (List.length r.outcomes) r.admitted r.processed r.shed r.rejected
       r.expired r.drained r.degraded shards);
  flush oc
