module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set

type t = {
  task_set : Task_set.t;
  order : Sub_instance.t array;
  instance_subs : int array array array;
  next_in_instance : int array;
}

(* Successor order-index of each sub-instance within its instance
   (-1 for the last segment), derived once so runtime consumers (e.g.
   the solver's feasibility repair) avoid an O(segments) rescan per
   lookup. *)
let successor_index ~size instance_subs =
  let next = Array.make size (-1) in
  Array.iter
    (Array.iter (fun idxs ->
         for pos = 0 to Array.length idxs - 2 do
           next.(idxs.(pos)) <- idxs.(pos + 1)
         done))
    instance_subs;
  next

(* Split points of instance [j] of task [i]: releases of every
   higher-priority task strictly inside the window, in ticks. *)
let split_points ts ~task ~window_start ~window_end =
  let module ISet = Set.Make (Int) in
  let points = ref ISet.empty in
  for h = 0 to task - 1 do
    let period = (Task_set.task ts h).Task.period in
    (* First multiple of [period] strictly greater than window_start. *)
    let first = ((window_start / period) + 1) * period in
    let r = ref first in
    while !r < window_end do
      points := ISet.add !r !points;
      r := !r + period
    done
  done;
  ISet.elements !points

let segments_of_instance ts ~task ~instance =
  let period = (Task_set.task ts task).Task.period in
  let window_start = instance * period in
  let window_end = window_start + period in
  let cuts = split_points ts ~task ~window_start ~window_end in
  let bounds = (window_start :: cuts) @ [ window_end ] in
  let rec pair = function
    | a :: (b :: _ as rest) -> (a, b) :: pair rest
    | [ _ ] | [] -> []
  in
  pair bounds

let raw_sub_instances ts =
  let n = Task_set.size ts in
  let hyper = Task_set.hyper_period ts in
  let subs = ref [] in
  for i = 0 to n - 1 do
    let period = (Task_set.task ts i).Task.period in
    let instances = hyper / period in
    for j = 0 to instances - 1 do
      let deadline = float_of_int ((j + 1) * period) in
      List.iteri
        (fun k (a, b) ->
          subs :=
            Sub_instance.
              { index = -1; task = i; instance = j; segment = k;
                release = float_of_int a; boundary = float_of_int b; deadline }
            :: !subs)
        (segments_of_instance ts ~task:i ~instance:j)
    done
  done;
  !subs

let sub_instance_count ts =
  let n = Task_set.size ts in
  let hyper = Task_set.hyper_period ts in
  let count = ref 0 in
  for i = 0 to n - 1 do
    let period = (Task_set.task ts i).Task.period in
    for j = 0 to (hyper / period) - 1 do
      count := !count + List.length (segments_of_instance ts ~task:i ~instance:j)
    done
  done;
  !count

let expand ts =
  let subs = raw_sub_instances ts in
  let arr = Array.of_list subs in
  (* Total order: by release, then priority (0 = highest first).
     Segments of one instance have strictly increasing releases, so
     they automatically appear in segment order. *)
  Array.sort
    (fun (a : Sub_instance.t) (b : Sub_instance.t) ->
      match Float.compare a.release b.release with
      | 0 -> (
        match compare a.task b.task with 0 -> compare a.segment b.segment | c -> c)
      | c -> c)
    arr;
  let order = Array.mapi (fun k (s : Sub_instance.t) -> { s with index = k }) arr in
  let n = Task_set.size ts in
  let hyper = Task_set.hyper_period ts in
  let instance_subs =
    Array.init n (fun i ->
        let period = (Task_set.task ts i).Task.period in
        Array.make (hyper / period) [||])
  in
  (* Collect order indices per instance, preserving segment order. *)
  let buckets = Array.init n (fun i ->
      let period = (Task_set.task ts i).Task.period in
      Array.make (hyper / period) []) in
  Array.iter
    (fun (s : Sub_instance.t) ->
      buckets.(s.task).(s.instance) <- s.index :: buckets.(s.task).(s.instance))
    order;
  Array.iteri
    (fun i per_instance ->
      Array.iteri
        (fun j idxs -> instance_subs.(i).(j) <- Array.of_list (List.rev idxs))
        per_instance)
    buckets;
  { task_set = ts; order; instance_subs;
    next_in_instance = successor_index ~size:(Array.length order) instance_subs }

let expand_nonpreemptive ts =
  let n = Task_set.size ts in
  let hyper = Task_set.hyper_period ts in
  let subs = ref [] in
  for i = 0 to n - 1 do
    let period = (Task_set.task ts i).Task.period in
    for j = 0 to (hyper / period) - 1 do
      let release = float_of_int (j * period) in
      let deadline = float_of_int ((j + 1) * period) in
      subs :=
        Sub_instance.
          { index = -1; task = i; instance = j; segment = 0; release;
            boundary = deadline; deadline }
        :: !subs
    done
  done;
  let arr = Array.of_list !subs in
  (* Execution order of the jobs: release, then earliest deadline, then
     priority — the natural non-preemptive dispatch order. *)
  Array.sort
    (fun (a : Sub_instance.t) (b : Sub_instance.t) ->
      match Float.compare a.release b.release with
      | 0 -> (
        match Float.compare a.deadline b.deadline with
        | 0 -> compare a.task b.task
        | c -> c)
      | c -> c)
    arr;
  let order = Array.mapi (fun k (s : Sub_instance.t) -> { s with index = k }) arr in
  let instance_subs =
    Array.init n (fun i ->
        let period = (Task_set.task ts i).Task.period in
        Array.make (hyper / period) [||])
  in
  Array.iter
    (fun (s : Sub_instance.t) ->
      instance_subs.(s.task).(s.instance) <- [| s.index |])
    order;
  { task_set = ts; order; instance_subs;
    next_in_instance = successor_index ~size:(Array.length order) instance_subs }

let hyper_period t = float_of_int (Task_set.hyper_period t.task_set)
let size t = Array.length t.order
let parent_task t (s : Sub_instance.t) = Task_set.task t.task_set s.task

let pp_timeline ppf t =
  Format.fprintf ppf "hyper-period %g, %d sub-instances@." (hyper_period t) (size t);
  Array.iter
    (fun s -> Format.fprintf ppf "  %2d: %a@." s.Sub_instance.index Sub_instance.pp s)
    t.order
