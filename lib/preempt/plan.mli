(** Fully preemptive schedule expansion over one hyper-period.

    Produces the total order of sub-instances used by the scheduling
    NLPs: sub-instances sorted by release time, then by priority
    (higher first), which is exactly the worst-case RM execution order
    of the fully preemptive schedule. *)

type t = private {
  task_set : Lepts_task.Task_set.t;
  order : Sub_instance.t array;  (** total order; [order.(k).index = k] *)
  instance_subs : int array array array;
      (** [instance_subs.(i).(j)] lists the order indices of the
          sub-instances of instance [j] of task [i], in segment
          order. *)
  next_in_instance : int array;
      (** [next_in_instance.(k)] is the order index of the next segment
          of [k]'s instance ([-1] when [k] is the instance's last
          segment) — the O(1) successor lookup behind the solver's
          feasibility repair. *)
}

val expand : Lepts_task.Task_set.t -> t
(** Expand one hyper-period. Instance [j] of task [i] is released at
    [j * period_i] with deadline [(j+1) * period_i] and is split at
    every release of a higher-priority task strictly inside its
    window. *)

val expand_nonpreemptive : Lepts_task.Task_set.t -> t
(** The non-preemptive variant the paper sketches ("it is easy to
    transform the formulation for non-preemptive systems", §1, and the
    whole motivational example): every instance is a single
    sub-instance whose boundary is its deadline, and the total order is
    the execution order of the jobs — by release time, then earliest
    deadline, then priority. The same NLP, online policies and the
    order-faithful {!Lepts_sim.Sequence} executor apply unchanged; the
    event-driven simulator must not be used on such plans (it models a
    preemptive dispatcher). *)

val sub_instance_count : Lepts_task.Task_set.t -> int
(** Number of sub-instances {!expand} would create, without building
    the plan (used to reject task sets with pathological
    hyper-periods, as the paper caps them at one thousand). *)

val hyper_period : t -> float
val size : t -> int

val parent_task : t -> Sub_instance.t -> Lepts_task.Task.t

val pp_timeline : Format.formatter -> t -> unit
(** Multi-line rendering of the expansion, one line per sub-instance —
    the shape of the paper's Fig. 4. *)
