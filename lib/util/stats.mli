(** Descriptive statistics over float arrays. *)

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (divides by [n - 1]). Raises
    [Invalid_argument] for arrays of length < 2, where the sample
    variance is undefined — the historical behaviour returned 0,
    making a single observation look perfectly stable. *)

val stddev : float array -> float
(** Square root of {!variance}; same domain requirement. *)

val min_max : float array -> float * float
(** [(min, max)] of the array. Raises [Invalid_argument] when empty. *)

val percentile : float array -> p:float -> float
(** [percentile xs ~p] is the [p]-th percentile ([0. <= p <= 100.]) using
    linear interpolation between closest ranks. Does not mutate [xs].
    Raises [Invalid_argument] when empty or [p] out of range. *)

val geometric_mean : float array -> float
(** Geometric mean; requires every element to be positive. *)
