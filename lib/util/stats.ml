let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (Printf.sprintf "Stats.%s: empty array" name)

let mean xs =
  check_nonempty "mean" xs;
  Num_ext.sum xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  (* A silent 0. here made 1-round campaigns report stddev = 0 as if
     perfectly stable; the sample variance is simply undefined. *)
  if n < 2 then invalid_arg "Stats.variance: need at least two samples"
  else
    let m = mean xs in
    let devs = Array.map (fun x -> (x -. m) ** 2.) xs in
    Num_ext.sum devs /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let min_max xs =
  check_nonempty "min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0)) xs

let percentile xs ~p =
  check_nonempty "percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let geometric_mean xs =
  check_nonempty "geometric_mean" xs;
  let logs =
    Array.map
      (fun x ->
        if x <= 0. then invalid_arg "Stats.geometric_mean: non-positive element"
        else log x)
      xs
  in
  exp (Num_ext.sum logs /. float_of_int (Array.length xs))
