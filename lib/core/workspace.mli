(** Per-solve scratch buffers for the allocation-free solver kernels.

    One workspace holds every intermediate vector the hot path of an
    augmented-Lagrangian solve needs — sanitized quotas, waterfall
    splits, adjoint step records, the frontier recursion and the
    gradient accumulators — sized once from the plan, so
    {!Objective.eval_ws}, {!Objective.eval_with_gradient_ws} and the
    solver's inner loop evaluate with no per-iteration array
    allocation.

    A workspace is single-owner mutable state: never share one between
    domains (each parallel multi-start candidate creates its own) and
    never read a buffer except through the kernel that just filled it.
    The fields are exposed only so the kernels in [Lepts_core] can use
    them; treat them as private elsewhere. *)

type t = {
  plan : Lepts_preempt.Plan.t;
  m : int;  (** plan size; every per-sub-instance buffer has length m *)
  (* objective kernels *)
  w_hat : float array;  (** sanitized worst-case quotas *)
  w : float array;  (** waterfall split of the actual workloads *)
  dw : float array;  (** adjoint of [w] *)
  (* adjoint step records, struct-of-arrays (prefix [st_len] valid) *)
  st_k : int array;
  st_d : float array;
  st_v : float array;
  st_w : float array;
  st_wq : float array;
  st_clamped : bool array;
  st_guarded : bool array;
  st_sff : bool array;
  mutable st_len : int;
  (* waterfall gather/scatter scratch, length = longest instance *)
  wf_q : float array;
  wf_a : float array;
  wf_out : float array;
  (* solver frontier recursion and gradient accumulators *)
  q : float array;
  e : float array;
  start : float array;
  start_ff : bool array;
  room : float array;
  g : float array;
  de : float array;
  de_i : float array;
  dq_i : float array;
  dg : float array;
  dq : float array;
  ds : float array;
  (* structure-exploiting fast path (DESIGN.md §12) *)
  n_blocks : int;
      (** number of per-instance quota blocks (simplex constraints) *)
  blk_off : int array;
      (** length [n_blocks + 1]; block [b] covers positions
          [blk_off.(b), blk_off.(b+1)) of [blk_idx] *)
  blk_idx : int array;
      (** length [m]; quota coordinate indices in block order — the
          flat form of [plan.instance_subs] *)
  blk_task : int array;  (** length [n_blocks]; owning task per block *)
  blk_buf : float array;  (** gather buffer, length = longest block *)
  blk_scratch : float array;  (** projection scratch, same length *)
  y_prev : float array;
      (** length [2m]; the point the last forward sweep ran at, used to
          find the first dirty index of an incremental re-sweep.
          Initialised to NaN (compares unequal to everything, so the
          first sweep is always full). *)
  pen_prefix : float array;
      (** length [m + 1]; ascending prefix sums of the penalty terms at
          [y_prev], valid while [pen_valid] (multipliers and mu
          unchanged since it was filled) *)
  mutable fwd_valid : bool;
      (** [e]/[start]/[room]/[g]/[q] describe [y_prev] *)
  mutable pen_valid : bool;  (** [pen_prefix] matches [y_prev] *)
}

val create : Lepts_preempt.Plan.t -> t
(** Allocate every buffer for the given plan (a few dozen arrays of the
    plan size — cheap relative to one solve, expensive relative to one
    objective evaluation, so create once per solve and reuse). *)

val plan : t -> Lepts_preempt.Plan.t
val size : t -> int
