module Plan = Lepts_preempt.Plan
module Sub = Lepts_preempt.Sub_instance
module Model = Lepts_power.Model
module Task = Lepts_task.Task
module Task_set = Lepts_task.Task_set
module Vec = Lepts_linalg.Vec
module Projection = Lepts_optim.Projection
module Pg = Lepts_optim.Projected_gradient
module Numdiff = Lepts_optim.Numdiff

type error = Unschedulable | Solver_stalled of string

type stats = {
  objective : float;
  max_violation : float;
  outer_iterations : int;
  inner_iterations : int;
}

let pp_error ppf = function
  | Unschedulable -> Format.fprintf ppf "task set not schedulable at maximum speed"
  | Solver_stalled msg -> Format.fprintf ppf "NLP solver stalled: %s" msg

let log_src = Logs.Src.create "lepts.core.solver" ~doc:"voltage scheduling NLP"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Worst-case rate-monotonic execution at maximum speed: process the
   total order with a running cursor, filling each sub-instance with as
   much of its instance's remaining WCEC as fits before its boundary.
   This is simultaneously the canonical feasible point of the NLP and a
   schedulability check. *)
let initial_point ~(plan : Plan.t) ~power =
  let m = Array.length plan.Plan.order in
  let ts = plan.Plan.task_set in
  let remaining =
    Array.mapi
      (fun i per_instance ->
        let task = Task_set.task ts i in
        Array.map (fun _ -> task.Task.wcec) per_instance)
      plan.Plan.instance_subs
  in
  let e0 = Array.make m 0. and q0 = Array.make m 0. in
  let cursor = ref 0. in
  let feasible = ref true in
  for k = 0 to m - 1 do
    let sub = plan.Plan.order.(k) in
    let start = Float.max sub.Sub.release !cursor in
    let avail = Float.max 0. (sub.Sub.boundary -. start) in
    let rem = remaining.(sub.Sub.task).(sub.Sub.instance) in
    let need = Model.min_duration power ~cycles:(Float.max rem 1e-300) in
    let time = if rem <= 0. then 0. else Float.min avail need in
    let quota = if need <= 0. then 0. else rem *. time /. need in
    q0.(k) <- quota;
    e0.(k) <- start +. time;
    remaining.(sub.Sub.task).(sub.Sub.instance) <- rem -. quota;
    cursor := e0.(k)
  done;
  Array.iter
    (Array.iter (fun rem -> if rem > 1e-9 then feasible := false))
    remaining;
  if !feasible then Ok (e0, q0) else Error Unschedulable

let t_at_vmax power =
  (* Time per megacycle at maximum speed; valid for both delay models. *)
  Model.cycle_time power ~v:power.Model.v_max

(* --- Slack parametrisation -------------------------------------------- *)

(* The decision vector is y = [q_0..q_{M-1}; s_0..s_{M-1}]. *)

type forward = {
  e : float array;  (** derived end-times: the worst-case frontier *)
  start : float array;  (** worst-case start max(r_k, F_{k-1}) *)
  start_from_frontier : bool array;  (** branch of the start max *)
  room : float array;  (** max(0, b_k - start_k) *)
  g : float array;  (** capacity constraint values t q_k + s_k - room_k *)
}

let forward_pass (plan : Plan.t) ~t_max ~q ~s =
  let m = Array.length plan.Plan.order in
  let e = Array.make m 0. and start = Array.make m 0. in
  let start_from_frontier = Array.make m false in
  let room = Array.make m 0. and g = Array.make m 0. in
  let frontier = ref 0. in
  for k = 0 to m - 1 do
    let sub = plan.Plan.order.(k) in
    let from_frontier = !frontier >= sub.Sub.release in
    let st = if from_frontier then !frontier else sub.Sub.release in
    let qk = Float.max 0. q.(k) and sk = Float.max 0. s.(k) in
    start.(k) <- st;
    start_from_frontier.(k) <- from_frontier;
    room.(k) <- Float.max 0. (sub.Sub.boundary -. st);
    g.(k) <- (t_max *. qk) +. sk -. room.(k);
    e.(k) <- st +. (t_max *. qk) +. sk;
    frontier := e.(k)
  done;
  { e; start; start_from_frontier; room; g }

(* Adjoint of the frontier recursion: given dE/de_k (from the runtime
   objective) and dP/dg_k (from the penalty terms), accumulate
   gradients with respect to q and s in one backward sweep. *)
let backward_pass (plan : Plan.t) ~t_max ~fw ~de ~dg ~into_dq ~into_ds =
  let m = Array.length plan.Plan.order in
  let psi = ref 0. in
  (* psi is the adjoint of the frontier F_k flowing from later
     sub-instances. *)
  for k = m - 1 downto 0 do
    let total = de.(k) +. !psi in
    (* e_k = start_k + t q_k + s_k ; g_k = t q_k + s_k - room_k *)
    into_dq.(k) <- into_dq.(k) +. (t_max *. (total +. dg.(k)));
    into_ds.(k) <- into_ds.(k) +. total +. dg.(k);
    (* start_k adjoint: from e_k (weight 1) and from room_k
       (room = b - start when positive, so dg/dstart = +dg). *)
    let dstart = total +. (if fw.room.(k) > 0. then dg.(k) else 0.) in
    psi := if fw.start_from_frontier.(k) then dstart else 0.
  done

let make_projection (plan : Plan.t) ~hyper =
  let m = Array.length plan.Plan.order in
  let ts = plan.Plan.task_set in
  fun y ->
    let out = Vec.copy y in
    Array.iteri
      (fun i per_instance ->
        let wcec = (Task_set.task ts i).Task.wcec in
        Array.iter
          (fun idxs ->
            let slice = Array.map (fun k -> y.(k)) idxs in
            let projected = Projection.simplex ~total:wcec slice in
            Array.iteri (fun pos k -> out.(k) <- projected.(pos)) idxs)
          per_instance)
      plan.Plan.instance_subs;
    for k = m to (2 * m) - 1 do
      out.(k) <- Lepts_util.Num_ext.clamp ~lo:0. ~hi:hyper y.(k)
    done;
    out

(* Final feasibility repair: walk the total order once, capping each
   quota to what fits before its boundary at maximum speed (moving any
   overflow to the instance's next sub-instance) and lifting end-times
   just enough to fit the worst case. The solver converges to within
   the augmented-Lagrangian tolerance, so this moves the solution only
   microscopically — but it makes worst-case feasibility exact. *)
let repair ~(plan : Plan.t) ~power ~e ~q =
  let m = Array.length plan.Plan.order in
  let t_max = t_at_vmax power in
  let e = Array.copy e and q = Array.copy q in
  let next_sub_of_instance k =
    let sub = plan.Plan.order.(k) in
    let idxs = plan.Plan.instance_subs.(sub.Sub.task).(sub.Sub.instance) in
    let rec find pos =
      if pos >= Array.length idxs - 1 then None
      else if idxs.(pos) = k then Some idxs.(pos + 1)
      else find (pos + 1)
    in
    find 0
  in
  let cursor = ref 0. in
  let ok = ref true in
  for k = 0 to m - 1 do
    let sub = plan.Plan.order.(k) in
    q.(k) <- Float.max 0. q.(k);
    let start = Float.max sub.Sub.release !cursor in
    let cap = Float.max 0. ((sub.Sub.boundary -. start) /. t_max) in
    if q.(k) > cap then begin
      let overflow = q.(k) -. cap in
      q.(k) <- cap;
      match next_sub_of_instance k with
      | Some k' -> q.(k') <- q.(k') +. overflow
      | None ->
        (* No later segment to absorb it. Residuals far below the
           validation tolerance are solver noise and are dropped; the
           runtime executor caps actual work at the quota sum anyway. *)
        let wcec = (Task_set.task plan.Plan.task_set sub.Sub.task).Task.wcec in
        if overflow > 1e-6 *. wcec then ok := false
    end;
    let min_end = start +. (t_max *. q.(k)) in
    e.(k) <- Float.min sub.Sub.boundary (Float.max e.(k) min_end);
    (* The cursor (worst-case busy frontier) never regresses: a
       zero-quota sub-instance whose segment ended before the frontier
       gets a vacuous end-time but must not relax its successors. *)
    cursor := Float.max !cursor e.(k)
  done;
  if !ok then Ok (e, q) else Error (Solver_stalled "repair could not place all workload")

(* Latest-feasible ("as late as possible") end-times for given quotas:
   push every end-time right until it hits its segment boundary or the
   worst-case fit of its successor. This is the structure the paper's
   insight points at ("extend the end time of each task to as long as
   that allowed by the worst-case execution scenario") and a valuable
   second starting point for the non-convex NLP. *)
let alap_end_times (plan : Plan.t) ~t_max ~e ~q =
  let m = Array.length plan.Plan.order in
  let out = Array.copy e in
  if m > 0 then begin
    out.(m - 1) <- plan.Plan.order.(m - 1).Sub.boundary;
    for k = m - 2 downto 0 do
      let b = plan.Plan.order.(k).Sub.boundary in
      out.(k) <- Float.max e.(k) (Float.min b (out.(k + 1) -. (t_max *. q.(k + 1))))
    done
  end;
  out

(* Slack vector realising given end-times under the frontier
   recursion. *)
let slacks_for (plan : Plan.t) ~t_max ~e ~q =
  let m = Array.length plan.Plan.order in
  let s = Array.make m 0. in
  let frontier = ref 0. in
  for k = 0 to m - 1 do
    let start = Float.max plan.Plan.order.(k).Sub.release !frontier in
    s.(k) <- Float.max 0. (e.(k) -. start -. (t_max *. q.(k)));
    frontier := start +. (t_max *. q.(k)) +. s.(k)
  done;
  s

(* --- Augmented Lagrangian over the slack parametrisation --------------- *)

(* [totals_list] holds one or more workload scenarios; the objective is
   their mean runtime energy (a single ACEC or WCEC scenario for the
   deterministic modes, a Monte-Carlo sample for the stochastic
   extension). *)
let solve_from ?deadline ~max_outer ~max_inner ~totals_list ~(plan : Plan.t) ~power ~y0 () =
    let m = Array.length plan.Plan.order in
    let t_max = t_at_vmax power in
    let hyper = Plan.hyper_period plan in
    let scenario_count = float_of_int (List.length totals_list) in
    let unpack y = (Array.sub y 0 m, Array.sub y m m) in
    let mean_energy ~e ~w_hat =
      List.fold_left
        (fun acc totals -> acc +. Objective.eval ~plan ~power ~totals ~e ~w_hat)
        0. totals_list
      /. scenario_count
    in
    let energy_of y =
      let q, s = unpack y in
      let fw = forward_pass plan ~t_max ~q ~s in
      mean_energy ~e:fw.e ~w_hat:q
    in
    let analytic = match power.Model.delay with
      | Model.Ideal _ -> true
      | Model.Alpha _ -> false
    in
    let lambda = Array.make m 0. in
    let mu = ref 10. in
    let x = ref (Vec.copy y0) in
    let project = make_projection plan ~hyper in
    let inner_total = ref 0 in
    let outer = ref 0 in
    let violation = ref infinity in
    let finished = ref false in
    let within_deadline () =
      match deadline with None -> true | Some d -> Sys.time () < d
    in
    while (not !finished) && !outer < max_outer && within_deadline () do
      incr outer;
      let mu_now = !mu in
      let lag y =
        let q, s = unpack y in
        let fw = forward_pass plan ~t_max ~q ~s in
        let energy = mean_energy ~e:fw.e ~w_hat:q in
        let penalty = ref 0. in
        for k = 0 to m - 1 do
          let t = lambda.(k) +. (mu_now *. fw.g.(k)) in
          if t > 0. then
            penalty :=
              !penalty +. (((t *. t) -. (lambda.(k) *. lambda.(k))) /. (2. *. mu_now))
          else penalty := !penalty -. (lambda.(k) *. lambda.(k) /. (2. *. mu_now))
        done;
        energy +. !penalty
      in
      let lag_grad_analytic y =
        let q, s = unpack y in
        let fw = forward_pass plan ~t_max ~q ~s in
        (* Mean of the per-scenario objective adjoints. *)
        let de = Array.make m 0. and dq_direct = Array.make m 0. in
        List.iter
          (fun totals ->
            let _, de_i, dq_i =
              Objective.eval_with_gradient ~plan ~power ~totals ~e:fw.e ~w_hat:q
            in
            for k = 0 to m - 1 do
              de.(k) <- de.(k) +. (de_i.(k) /. scenario_count);
              dq_direct.(k) <- dq_direct.(k) +. (dq_i.(k) /. scenario_count)
            done)
          totals_list;
        let dg = Array.make m 0. in
        for k = 0 to m - 1 do
          let t = lambda.(k) +. (mu_now *. fw.g.(k)) in
          if t > 0. then dg.(k) <- t
        done;
        let out_dq = dq_direct and out_ds = Array.make m 0. in
        backward_pass plan ~t_max ~fw ~de ~dg ~into_dq:out_dq ~into_ds:out_ds;
        Array.append out_dq out_ds
      in
      let lag_grad =
        if analytic then lag_grad_analytic else fun y -> Numdiff.gradient ~f:lag y
      in
      let r =
        Pg.minimize ~max_iter:max_inner ~tol:1e-10 ~f:lag ~grad:lag_grad ~project
          ~x0:!x ()
      in
      inner_total := !inner_total + r.Pg.iterations;
      x := r.Pg.x;
      let q, s = unpack !x in
      let fw = forward_pass plan ~t_max ~q ~s in
      let previous_violation = !violation in
      violation := 0.;
      for k = 0 to m - 1 do
        violation := Float.max !violation fw.g.(k);
        lambda.(k) <- Float.max 0. (lambda.(k) +. (mu_now *. fw.g.(k)))
      done;
      Log.debug (fun f ->
          f "outer %d: energy=%g violation=%g mu=%g inner=%d" !outer (energy_of !x)
            !violation mu_now r.Pg.iterations);
      if !violation <= 1e-9 *. hyper then finished := true
      else if !violation > 0.5 *. previous_violation then mu := !mu *. 5.
    done;
    let q, s = unpack !x in
    let fw = forward_pass plan ~t_max ~q ~s in
    (match repair ~plan ~power ~e:fw.e ~q with
    | Error _ as err -> err
    | Ok (e, q) ->
      let schedule = Static_schedule.create ~plan ~power ~end_times:e ~quotas:q in
      let stats =
        { objective =
            List.fold_left
              (fun acc totals ->
                acc
                +. Objective.eval ~plan ~power ~totals ~e:schedule.Static_schedule.end_times
                     ~w_hat:schedule.Static_schedule.quotas)
              0. totals_list
            /. scenario_count;
          max_violation = !violation;
          outer_iterations = !outer;
          inner_iterations = !inner_total }
      in
      Ok (schedule, stats))

(* The NLP is non-convex and piecewise smooth, so a single descent run
   can stall. Each solve therefore starts from several structurally
   distinct feasible points — the greedy (as-soon-as-possible)
   worst-case schedule, its ALAP push-right, and any caller-provided
   warm starts (e.g. the WCS solution when solving ACS) — and keeps the
   best result. *)
let solve_multi_start ?wall_budget ~max_outer ~max_inner ~warm_starts ~totals_list
    ~(plan : Plan.t) ~power () =
  match initial_point ~plan ~power with
  | Error _ as err -> err
  | Ok (e0, q0) ->
    let m = Array.length plan.Plan.order in
    let t_max = t_at_vmax power in
    let deadline = Option.map (fun b -> Sys.time () +. b) wall_budget in
    let point_of_eq (e, q) = Array.append q (slacks_for plan ~t_max ~e ~q) in
    let alap = alap_end_times plan ~t_max ~e:e0 ~q:q0 in
    let candidates =
      Array.append q0 (Array.make m 0.)
      :: point_of_eq (alap, q0)
      :: List.map point_of_eq warm_starts
    in
    let best = ref None in
    (* Keep the most recent failure: when every start fails, the final
       error must say why instead of a generic stall message. *)
    let last_error = ref None in
    List.iteri
      (fun start y0 ->
        let attempt =
          try solve_from ?deadline ~max_outer ~max_inner ~totals_list ~plan ~power ~y0 ()
          with Lepts_optim.Guard.Non_finite what ->
            Error
              (Solver_stalled (Printf.sprintf "non-finite evaluation (%s)" what))
        in
        match attempt with
        | Error err ->
          Log.debug (fun f -> f "start %d failed: %a" start pp_error err);
          last_error := Some err
        | Ok (schedule, stats) -> (
          match !best with
          | Some (_, best_stats) when best_stats.objective <= stats.objective -> ()
          | _ -> best := Some (schedule, stats)))
      candidates;
    (match !best with
    | Some result -> Ok result
    | None ->
      let detail =
        match !last_error with
        | Some (Solver_stalled why) -> ": last failure: " ^ why
        | Some Unschedulable -> ": last failure: unschedulable"
        | None -> ""
      in
      Error
        (Solver_stalled ("no start point produced a feasible schedule" ^ detail)))

let solve ?wall_budget ?(max_outer = 30) ?(max_inner = 2000) ?(warm_starts = [])
    ~mode ~(plan : Plan.t) ~power () =
  let totals_list = [ Objective.instance_totals mode plan ] in
  solve_multi_start ?wall_budget ~max_outer ~max_inner ~warm_starts ~totals_list
    ~plan ~power ()

let solve_stochastic ?(max_outer = 30) ?(max_inner = 2000) ?(warm_starts = [])
    ?(scenarios = 16) ?(seed = 1) ~(plan : Plan.t) ~power () =
  if scenarios <= 0 then invalid_arg "Solver.solve_stochastic: scenarios";
  let rng = Lepts_prng.Xoshiro256.create ~seed in
  let sample () =
    Array.mapi
      (fun i per_instance ->
        let task = Task_set.task plan.Plan.task_set i in
        let sigma = Task.sigma task in
        Array.map
          (fun _ ->
            Lepts_prng.Dist.truncated_normal rng ~mu:task.Task.acec ~sigma
              ~lo:task.Task.bcec ~hi:task.Task.wcec)
          per_instance)
      plan.Plan.instance_subs
  in
  let totals_list = List.init scenarios (fun _ -> sample ()) in
  solve_multi_start ~max_outer ~max_inner ~warm_starts ~totals_list ~plan ~power ()

let solve_acs ?wall_budget ?max_outer ?max_inner ?warm_starts ~plan ~power () =
  solve ?wall_budget ?max_outer ?max_inner ?warm_starts ~mode:Objective.Average
    ~plan ~power ()

let solve_wcs ?wall_budget ?max_outer ?max_inner ?warm_starts ~plan ~power () =
  solve ?wall_budget ?max_outer ?max_inner ?warm_starts ~mode:Objective.Worst
    ~plan ~power ()
